// Differential determinism test for the parallel execution tiers
// (DESIGN.md §8): a run's observable results must be bit-identical at any
// worker count. Every algorithm is driven through the batched publish
// pipeline at parallelism 1 and 8 — on a calm network and under keyed
// fault injection — and the complete deterministic fingerprint (per-kind
// traffic, fault counters, load vectors, delivered matches) is compared.
package cqjoin_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"cqjoin/internal/chaos"
	"cqjoin/internal/engine"
	"cqjoin/internal/exp"
	"cqjoin/internal/workload"
)

// runFingerprint captures every deterministic observable of a run. Trace
// and timing-level observables (delivery interleavings, ip-learning
// events) are deliberately excluded: they are scheduling-dependent by
// nature, and no figure or manifest metric reads them.
type runFingerprint struct {
	Msgs, Hops           map[string]int64
	Bytes                int64
	Drops, Dups, Delayed int64
	Retries, Lost        int64
	TF, TS               []int64
	Notes                []string
}

// parallelScenario publishes sc.Tuples tuples through the batch pipeline
// in 8 sub-batches (with a chaos Step between each when faults are on)
// and returns the run's fingerprint.
func parallelScenario(alg engine.Algorithm, sc exp.Scale, withChaos bool, workers int) runFingerprint {
	exp.SetParallelism(workers)
	r := exp.Setup(engine.Config{Algorithm: alg, MaxRetries: 3, RetryBackoff: 1}, sc, workload.Params{})
	var in *chaos.Injector
	if withChaos {
		// Crash and stale-IP schedules are omitted on purpose: which node
		// a Step picks is deterministic, but ip-learning under concurrent
		// notify deliveries is not, and those paths are already covered by
		// the sequential chaos invariant tests.
		in = chaos.New(r.Eng, chaos.Config{
			Seed:       sc.Seed,
			DropRate:   0.03,
			DupRate:    0.03,
			DelayRate:  0.05,
			MaxDelay:   4,
			KeyedDraws: true,
		})
	}
	r.SubscribeT1(sc.Queries)
	r.ResetMeters()
	batches := 8
	per := sc.Tuples / batches
	if per == 0 {
		per = 1
	}
	for b := 0; b < batches; b++ {
		r.PublishTuples(per)
		if in != nil {
			in.Step()
		}
	}
	if in != nil {
		in.Calm()
	}

	tr := r.Net.Traffic()
	fp := runFingerprint{
		Bytes:   tr.TotalBytes(),
		Retries: tr.TotalRetries(),
		Lost:    tr.TotalLost(),
		TF:      r.Eng.FilteringLoads(),
		TS:      r.Eng.StorageLoads(),
	}
	fp.Msgs, fp.Hops = tr.Snapshot()
	for kind := range fp.Msgs {
		fp.Drops += tr.Drops(kind)
		fp.Dups += tr.Duplicates(kind)
		fp.Delayed += tr.Delayed(kind)
	}
	for _, n := range r.Eng.Notifications() {
		fp.Notes = append(fp.Notes, fmt.Sprintf("%s|%d|%d", n.ContentKey(), n.LeftPubT, n.RightPubT))
	}
	sort.Strings(fp.Notes)
	return fp
}

// TestParallelDeterminism is the acceptance gate for the tentpole: for all
// four algorithms, with and without keyed fault injection, a parallel run
// must produce exactly the sequential run's results.
func TestParallelDeterminism(t *testing.T) {
	defer exp.SetParallelism(0)
	sc := exp.Scale{Nodes: 96, Queries: 120, Tuples: 160, Seed: 42}
	if testing.Short() {
		sc = exp.Scale{Nodes: 64, Queries: 60, Tuples: 80, Seed: 42}
	}
	for _, alg := range []engine.Algorithm{engine.SAI, engine.DAIQ, engine.DAIT, engine.DAIV} {
		for _, withChaos := range []bool{false, true} {
			name := fmt.Sprintf("%s/chaos=%v", alg, withChaos)
			t.Run(name, func(t *testing.T) {
				seq := parallelScenario(alg, sc, withChaos, 1)
				par := parallelScenario(alg, sc, withChaos, 8)
				if len(seq.Notes) == 0 {
					t.Fatalf("scenario delivered no notifications; it exercises nothing")
				}
				if !reflect.DeepEqual(seq.Msgs, par.Msgs) {
					t.Errorf("per-kind message counts diverge:\n seq=%v\n par=%v", seq.Msgs, par.Msgs)
				}
				if !reflect.DeepEqual(seq.Hops, par.Hops) {
					t.Errorf("per-kind hop counts diverge:\n seq=%v\n par=%v", seq.Hops, par.Hops)
				}
				if seq.Bytes != par.Bytes {
					t.Errorf("wire bytes diverge: seq=%d par=%d", seq.Bytes, par.Bytes)
				}
				if seq.Drops != par.Drops || seq.Dups != par.Dups || seq.Delayed != par.Delayed {
					t.Errorf("fault counters diverge: seq=(%d,%d,%d) par=(%d,%d,%d)",
						seq.Drops, seq.Dups, seq.Delayed, par.Drops, par.Dups, par.Delayed)
				}
				if seq.Retries != par.Retries || seq.Lost != par.Lost {
					t.Errorf("retry/lost counters diverge: seq=(%d,%d) par=(%d,%d)",
						seq.Retries, seq.Lost, par.Retries, par.Lost)
				}
				if !reflect.DeepEqual(seq.TF, par.TF) {
					t.Errorf("filtering-load vector diverges")
				}
				if !reflect.DeepEqual(seq.TS, par.TS) {
					t.Errorf("storage-load vector diverges")
				}
				if !reflect.DeepEqual(seq.Notes, par.Notes) {
					t.Errorf("notification sets diverge: seq=%d notes, par=%d notes", len(seq.Notes), len(par.Notes))
				}
			})
		}
	}
}
