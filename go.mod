module cqjoin

go 1.22
