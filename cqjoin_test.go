package cqjoin_test

import (
	"sync"
	"testing"

	"cqjoin"
)

func demoCatalog() *cqjoin.Catalog {
	return cqjoin.MustCatalog(
		cqjoin.MustSchema("Document", "Id", "Title", "Conference", "AuthorId"),
		cqjoin.MustSchema("Authors", "Id", "Name", "Surname"),
		cqjoin.MustSchema("R", "A", "B"),
		cqjoin.MustSchema("S", "D", "E"),
	)
}

func TestClusterQuickstartFlow(t *testing.T) {
	cluster, err := cqjoin.NewCluster(cqjoin.Config{Nodes: 64, Catalog: demoCatalog()})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if cluster.Size() != 64 {
		t.Fatalf("size = %d", cluster.Size())
	}

	var mu sync.Mutex
	var seen []cqjoin.Notification
	cluster.OnNotify(func(n cqjoin.Notification) {
		mu.Lock()
		defer mu.Unlock()
		seen = append(seen, n)
	})

	alice := cluster.Node(0)
	q, err := alice.Subscribe(`
		SELECT D.Title, D.Conference
		FROM Document AS D, Authors AS A
		WHERE D.AuthorId = A.Id AND A.Surname = 'Smith'`)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	bob := cluster.Node(1)
	if _, err := bob.Publish("Authors", 17, "John", "Smith"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if _, err := bob.Publish("Document", 1, "P2P Joins", "ICDE", 17); err != nil {
		t.Fatalf("Publish: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 {
		t.Fatalf("callback saw %d notifications, want 1", len(seen))
	}
	if seen[0].QueryKey != q.Key() {
		t.Fatalf("notification for %s, want %s", seen[0].QueryKey, q.Key())
	}
	if got := cluster.Notifications(); len(got) != 1 {
		t.Fatalf("Notifications() = %d entries", len(got))
	}
	if cluster.Traffic().TotalHops() == 0 {
		t.Fatal("no overlay traffic recorded")
	}
	if cluster.FilteringLoad().Total == 0 || cluster.StorageLoad().Total == 0 {
		t.Fatal("no load recorded")
	}
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := cqjoin.NewCluster(cqjoin.Config{Nodes: 0, Catalog: demoCatalog()}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := cqjoin.NewCluster(cqjoin.Config{Nodes: 4}); err == nil {
		t.Fatal("missing catalog accepted")
	}
}

func TestPublishValueConversions(t *testing.T) {
	cluster, _ := cqjoin.NewCluster(cqjoin.Config{Nodes: 8, Catalog: demoCatalog()})
	n := cluster.Node(0)
	if _, err := n.Publish("R", int64(1), float32(2.5)); err != nil {
		t.Fatalf("numeric conversions: %v", err)
	}
	if _, err := n.Publish("R", cqjoin.N(1), cqjoin.S("x")); err != nil {
		t.Fatalf("Value passthrough: %v", err)
	}
	if _, err := n.Publish("R", 1); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := n.Publish("R", struct{}{}, 1); err == nil {
		t.Fatal("unsupported type accepted")
	}
	if _, err := n.Publish("Nope", 1); err == nil {
		t.Fatal("unknown relation accepted")
	}
}

func TestPublishTuple(t *testing.T) {
	cat := demoCatalog()
	cluster, _ := cqjoin.NewCluster(cqjoin.Config{Nodes: 8, Catalog: cat})
	tu := cqjoin.MustTuple(cat.Lookup("R"), cqjoin.N(1), cqjoin.N(2))
	stamped, err := cluster.Node(0).PublishTuple(tu)
	if err != nil {
		t.Fatalf("PublishTuple: %v", err)
	}
	if stamped.PubT() == 0 {
		t.Fatal("tuple not stamped")
	}
}

func TestJoinLeaveAndOfflineDelivery(t *testing.T) {
	cluster, _ := cqjoin.NewCluster(cqjoin.Config{Nodes: 32, Catalog: demoCatalog()})
	sub := cluster.Node(3)
	key := sub.Key()
	if _, err := sub.Subscribe(`SELECT R.A, S.D FROM R, S WHERE R.B = S.E`); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	pub := cluster.Node(7)
	if _, err := pub.Publish("R", 1, 7); err != nil {
		t.Fatal(err)
	}
	sub.Leave()
	if sub.Alive() {
		t.Fatal("still alive after Leave")
	}
	if _, err := pub.Publish("S", 2, 7); err != nil {
		t.Fatal(err)
	}
	if got := cluster.Notifications(); len(got) != 0 {
		t.Fatalf("offline subscriber received: %v", got)
	}
	if cluster.NodeByKey(key) != nil {
		t.Fatal("NodeByKey returned departed peer")
	}
	if _, err := cluster.Join(key); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if got := cluster.Notifications(); len(got) != 1 {
		t.Fatalf("stored notification not replayed: %v", got)
	}
}

func TestSubscribeMultiThroughPublicAPI(t *testing.T) {
	catalog := cqjoin.MustCatalog(
		cqjoin.MustSchema("A", "x", "y"),
		cqjoin.MustSchema("B", "x", "y"),
		cqjoin.MustSchema("C", "x", "y"),
	)
	cluster, _ := cqjoin.NewCluster(cqjoin.Config{Nodes: 64, Catalog: catalog})
	mq, err := cluster.Node(0).SubscribeMulti(`
		SELECT A.y, C.y FROM A, B, C WHERE A.x = B.y AND B.x = C.y`)
	if err != nil {
		t.Fatalf("SubscribeMulti: %v", err)
	}
	if mq.Arity() != 3 {
		t.Fatalf("arity = %d", mq.Arity())
	}
	cluster.Node(1).Publish("A", 1, 10)
	cluster.Node(2).Publish("B", 2, 1)
	cluster.Node(3).Publish("C", 0, 2)
	if got := cluster.Notifications(); len(got) != 1 {
		t.Fatalf("%d notifications, want 1", len(got))
	}
	// Multi-way needs tuple storage: DAIT cluster must reject it.
	daitCluster, _ := cqjoin.NewCluster(cqjoin.Config{Nodes: 16, Catalog: catalog, Algorithm: cqjoin.DAIT})
	if _, err := daitCluster.Node(0).SubscribeMulti(`SELECT A.y FROM A, B WHERE A.x = B.y`); err == nil {
		t.Fatal("DAIT accepted a multi-way query")
	}
}

func TestUnsubscribeThroughPublicAPI(t *testing.T) {
	cluster, _ := cqjoin.NewCluster(cqjoin.Config{Nodes: 32, Catalog: demoCatalog()})
	sub := cluster.Node(0)
	q, err := sub.Subscribe(`SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Unsubscribe(q); err != nil {
		t.Fatalf("Unsubscribe: %v", err)
	}
	cluster.Node(1).Publish("R", 1, 7)
	cluster.Node(2).Publish("S", 2, 7)
	if got := cluster.Notifications(); len(got) != 0 {
		t.Fatalf("retracted query notified: %v", got)
	}
}

func TestNodeIndexWrapsAround(t *testing.T) {
	cluster, _ := cqjoin.NewCluster(cqjoin.Config{Nodes: 4, Catalog: demoCatalog()})
	if cluster.Node(4).Key() != cluster.Node(0).Key() {
		t.Fatal("Node index does not wrap")
	}
	if cluster.Node(-1).Key() != cluster.Node(3).Key() {
		t.Fatal("negative index does not wrap")
	}
}

func TestConcurrentPublishersAndSubscribers(t *testing.T) {
	cluster, _ := cqjoin.NewCluster(cqjoin.Config{Nodes: 64, Catalog: demoCatalog(), UseJFRT: true, Seed: 2})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := cluster.Node(w)
			if _, err := n.Subscribe(`SELECT R.A, S.D FROM R, S WHERE R.B = S.E`); err != nil {
				t.Errorf("subscribe: %v", err)
				return
			}
			for i := 0; i < 50; i++ {
				if _, err := n.Publish("R", w*100+i, i%5); err != nil {
					t.Errorf("publish R: %v", err)
					return
				}
				if _, err := cluster.Node(w+10).Publish("S", w*100+i, i%5); err != nil {
					t.Errorf("publish S: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if len(cluster.Notifications()) == 0 {
		t.Fatal("concurrent workload produced no notifications")
	}
	if cluster.FilteringLoad().Total == 0 {
		t.Fatal("no load recorded")
	}
}

func TestAllAlgorithmsThroughPublicAPI(t *testing.T) {
	for _, alg := range []cqjoin.Algorithm{cqjoin.SAI, cqjoin.DAIQ, cqjoin.DAIT, cqjoin.DAIV} {
		cluster, err := cqjoin.NewCluster(cqjoin.Config{
			Nodes: 32, Catalog: demoCatalog(), Algorithm: alg, UseJFRT: true, Seed: 9,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if _, err := cluster.Node(0).Subscribe(`SELECT R.A, S.D FROM R, S WHERE R.B = S.E`); err != nil {
			t.Fatalf("%v subscribe: %v", alg, err)
		}
		cluster.Node(1).Publish("R", 1, 5)
		cluster.Node(2).Publish("S", 2, 5)
		if got := cluster.Notifications(); len(got) != 1 {
			t.Fatalf("%v: %d notifications", alg, len(got))
		}
	}
}
