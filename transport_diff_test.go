// Differential equivalence test for the TCP transport (DESIGN.md §10):
// replacing the simulated in-process delivery with the real framed TCP
// transport must not change a single observable result. Every algorithm
// runs the same seeded workload twice — once over simulated delivery,
// once with every delivery forced through a loopback socket
// (dial → frame → encode → decode → ack) — and the notification
// fingerprints plus the traffic ledgers are compared byte for byte.
package cqjoin_test

import (
	"fmt"
	"net"
	"reflect"
	"sort"
	"testing"

	"cqjoin/internal/chord"
	"cqjoin/internal/engine"
	"cqjoin/internal/exp"
	"cqjoin/internal/obs"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
	"cqjoin/internal/transport"
	"cqjoin/internal/workload"
)

// loopbackTransport pushes every delivery of cnet through a real TCP
// socket on 127.0.0.1 and returns the transport's metric registry plus a
// cleanup func. OwnerOf reporting "" for every key plus ForceLoopback
// means each delivery dials this process's own listener.
func loopbackTransport(t testing.TB, cnet *chord.Network, catalog *relation.Catalog) (*obs.Registry, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	reg := obs.NewRegistry()
	tr, err := transport.New(transport.Config{
		Self:          ln.Addr().String(),
		OwnerOf:       func(string) string { return "" },
		Codec:         engine.NewWireCodec(catalog),
		Local:         cnet,
		ForceLoopback: true,
		Seed:          7,
		Obs:           reg,
	})
	if err != nil {
		_ = ln.Close()
		t.Fatalf("transport.New: %v", err)
	}
	tr.Start(ln)
	cnet.SetTransport(tr)
	return reg, func() {
		cnet.SetTransport(nil)
		_ = tr.Close()
	}
}

// transportScenario runs one seeded two-way workload and fingerprints it.
// With overTCP the entire message flow crosses the loopback socket.
func transportScenario(t *testing.T, alg engine.Algorithm, sc exp.Scale, overTCP bool) runFingerprint {
	t.Helper()
	exp.SetParallelism(1)
	r := exp.Setup(engine.Config{Algorithm: alg, MaxRetries: 3, RetryBackoff: 1}, sc, workload.Params{})
	var reg *obs.Registry
	if overTCP {
		var cleanup func()
		reg, cleanup = loopbackTransport(t, r.Net, r.Gen.Catalog())
		defer cleanup()
	}
	r.SubscribeT1(sc.Queries)
	r.ResetMeters()
	r.PublishTuples(sc.Tuples)

	tr := r.Net.Traffic()
	fp := runFingerprint{
		Bytes:   tr.TotalBytes(),
		Retries: tr.TotalRetries(),
		Lost:    tr.TotalLost(),
		TF:      r.Eng.FilteringLoads(),
		TS:      r.Eng.StorageLoads(),
	}
	fp.Msgs, fp.Hops = tr.Snapshot()
	for _, n := range r.Eng.Notifications() {
		fp.Notes = append(fp.Notes, fmt.Sprintf("%s|%d|%d", n.ContentKey(), n.LeftPubT, n.RightPubT))
	}
	sort.Strings(fp.Notes)
	if overTCP {
		snap := reg.Snapshot()
		if snap["transport.dials"] == 0 {
			t.Fatal("loopback run never dialed; the socket path was not exercised")
		}
		if snap["transport.frame_bytes_out"] == 0 || snap["transport.frames_in"] == 0 {
			t.Fatalf("loopback run moved no frames: %v", snap)
		}
		if snap["transport.decode_errors"] != 0 || snap["transport.rpc_failures"] != 0 {
			t.Fatalf("loopback run had transport errors: %v", snap)
		}
	}
	return fp
}

// TestTransportDifferential is the acceptance gate for the transport
// tentpole: for all four algorithms the TCP loopback run must reproduce
// the simulated run's results exactly, chaos off.
func TestTransportDifferential(t *testing.T) {
	defer exp.SetParallelism(0)
	sc := exp.Scale{Nodes: 96, Queries: 120, Tuples: 160, Seed: 23}
	if testing.Short() {
		sc = exp.Scale{Nodes: 64, Queries: 60, Tuples: 80, Seed: 23}
	}
	for _, alg := range []engine.Algorithm{engine.SAI, engine.DAIQ, engine.DAIT, engine.DAIV} {
		t.Run(alg.String(), func(t *testing.T) {
			sim := transportScenario(t, alg, sc, false)
			tcp := transportScenario(t, alg, sc, true)
			if len(sim.Notes) == 0 {
				t.Fatal("scenario delivered no notifications; it exercises nothing")
			}
			if !reflect.DeepEqual(sim.Notes, tcp.Notes) {
				t.Errorf("notification sets diverge: sim=%d notes, tcp=%d notes", len(sim.Notes), len(tcp.Notes))
			}
			if !reflect.DeepEqual(sim.Msgs, tcp.Msgs) {
				t.Errorf("per-kind message counts diverge:\n sim=%v\n tcp=%v", sim.Msgs, tcp.Msgs)
			}
			if !reflect.DeepEqual(sim.Hops, tcp.Hops) {
				t.Errorf("per-kind hop counts diverge:\n sim=%v\n tcp=%v", sim.Hops, tcp.Hops)
			}
			if sim.Bytes != tcp.Bytes {
				t.Errorf("wire bytes diverge: sim=%d tcp=%d", sim.Bytes, tcp.Bytes)
			}
			if sim.Retries != tcp.Retries || sim.Lost != tcp.Lost {
				t.Errorf("retry/lost counters diverge: sim=(%d,%d) tcp=(%d,%d)",
					sim.Retries, sim.Lost, tcp.Retries, tcp.Lost)
			}
			if !reflect.DeepEqual(sim.TF, tcp.TF) {
				t.Errorf("filtering-load vector diverges")
			}
			if !reflect.DeepEqual(sim.TS, tcp.TS) {
				t.Errorf("storage-load vector diverges")
			}
		})
	}
}

// TestTransportDifferentialMultiWay repeats the equivalence check for the
// multi-way chain-join pipeline (mjoin/purge message families) under the
// tuple-storing algorithms.
func TestTransportDifferentialMultiWay(t *testing.T) {
	catalog := relation.MustCatalog(
		relation.MustSchema("A", "x", "y", "z"),
		relation.MustSchema("B", "x", "y", "z"),
		relation.MustSchema("C", "x", "y", "z"),
	)
	scenario := func(t *testing.T, alg engine.Algorithm, overTCP bool) []string {
		t.Helper()
		cnet := chord.New(chord.Config{})
		cnet.AddNodes("peer", 48)
		eng := engine.New(cnet, catalog, engine.Config{Algorithm: alg, Strategy: engine.StrategyLeft, Seed: 9})
		if overTCP {
			_, cleanup := loopbackTransport(t, cnet, catalog)
			defer cleanup()
		}
		nodes := cnet.Nodes()
		mqs := []string{
			`SELECT A.z, C.z FROM A, B, C WHERE A.x = B.y AND B.x = C.y`,
			`SELECT A.z FROM A, B, C WHERE A.y = B.y AND B.x = C.x`,
		}
		for i, sql := range mqs {
			if _, err := eng.SubscribeMulti(nodes[i], query.MustParseMulti(catalog, sql)); err != nil {
				t.Fatalf("SubscribeMulti: %v", err)
			}
		}
		schemas := []*relation.Schema{catalog.Lookup("A"), catalog.Lookup("B"), catalog.Lookup("C")}
		// A fixed dense workload over a tiny domain so chains complete.
		for i := 0; i < 45; i++ {
			s := schemas[i%3]
			tu := relation.MustTuple(s,
				relation.N(float64(i%3)), relation.N(float64((i/3)%3)), relation.N(float64(i)))
			if _, err := eng.Publish(nodes[(i*7)%len(nodes)], tu); err != nil {
				t.Fatalf("Publish: %v", err)
			}
		}
		var notes []string
		for _, n := range eng.Notifications() {
			notes = append(notes, fmt.Sprintf("%s|%d|%d", n.ContentKey(), n.LeftPubT, n.RightPubT))
		}
		sort.Strings(notes)
		return notes
	}
	for _, alg := range []engine.Algorithm{engine.SAI, engine.DAIQ} {
		t.Run(alg.String(), func(t *testing.T) {
			sim := scenario(t, alg, false)
			tcp := scenario(t, alg, true)
			if len(sim) == 0 {
				t.Fatal("multi-way scenario delivered no notifications; it exercises nothing")
			}
			if !reflect.DeepEqual(sim, tcp) {
				t.Errorf("multi-way notification sets diverge: sim=%d tcp=%d", len(sim), len(tcp))
			}
		})
	}
}
