// Command joinsim regenerates the paper's tables and figures from the
// simulator, printing the same rows/series the thesis reports.
//
// Usage:
//
//	joinsim -list
//	joinsim -exp F5.2                 # one experiment at CI scale
//	joinsim -exp all -scale paper     # the full evaluation at thesis scale
//	joinsim -exp F5.10 -nodes 4096 -queries 20000 -tuples 5000
//	joinsim -exp all -parallel 1      # force sequential execution
//
// CI scale (the default) finishes in seconds per experiment; paper scale
// reproduces the thesis set-up (10^4 nodes, 10^5 queries) and takes
// minutes per experiment.
//
// Experiments run their independent cells — and the engine its publish
// cascades — on -parallel workers (default: all CPUs). Execution is
// deterministic at any worker count (DESIGN.md §8): -parallel 1 and
// -parallel 32 print identical tables and manifests for the same seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cqjoin/internal/exp"
	"cqjoin/internal/obs"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment id (e.g. F5.2, T4.1) or 'all'")
		list     = flag.Bool("list", false, "list available experiments")
		scale    = flag.String("scale", "ci", "scale preset: ci or paper")
		nodes    = flag.Int("nodes", 0, "override: overlay size")
		queries  = flag.Int("queries", 0, "override: indexed queries")
		tuples   = flag.Int("tuples", 0, "override: inserted tuples")
		seed     = flag.Int64("seed", 0, "override: random seed")
		format   = flag.String("format", "table", "output format: table or csv")
		manifest = flag.String("manifest", "", "write a machine-readable run manifest (schema-versioned JSON) to this path")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker budget for experiment cells and publish cascades (results are identical at any value)")
	)
	flag.Parse()
	exp.SetParallelism(*parallel)

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "joinsim: -exp <id> or -list required")
		flag.Usage()
		os.Exit(2)
	}

	sc := exp.CI()
	if *scale == "paper" {
		sc = exp.Paper()
	} else if *scale != "ci" {
		fmt.Fprintf(os.Stderr, "joinsim: unknown scale %q (want ci or paper)\n", *scale)
		os.Exit(2)
	}
	if *nodes > 0 {
		sc.Nodes = *nodes
	}
	if *queries > 0 {
		sc.Queries = *queries
	}
	if *tuples > 0 {
		sc.Tuples = *tuples
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	var todo []exp.Experiment
	if *expID == "all" {
		todo = exp.All()
	} else {
		e, err := exp.Lookup(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "joinsim:", err)
			os.Exit(2)
		}
		todo = []exp.Experiment{e}
	}

	if *format == "table" {
		fmt.Printf("scale: nodes=%d queries=%d tuples=%d seed=%d\n\n", sc.Nodes, sc.Queries, sc.Tuples, sc.Seed)
	}
	collector := obs.NewCollector()
	for _, e := range todo {
		start := time.Now()
		tab := e.Run(sc)
		elapsed := time.Since(start)
		collector.Add(manifestEntry(e.ID, tab, sc, elapsed))
		switch *format {
		case "csv":
			if err := tab.PrintCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "joinsim:", err)
				os.Exit(1)
			}
			fmt.Println()
		case "table":
			tab.Print(os.Stdout)
			fmt.Printf("  (%.1fs)\n\n", elapsed.Seconds())
		default:
			fmt.Fprintf(os.Stderr, "joinsim: unknown format %q\n", *format)
			os.Exit(2)
		}
	}
	if *manifest != "" {
		m := collector.Manifest("joinsim-" + *scale)
		if err := m.WriteFile(*manifest); err != nil {
			fmt.Fprintln(os.Stderr, "joinsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "joinsim: wrote %d manifest entries to %s\n", len(m.Entries), *manifest)
	}
}

// manifestEntry flattens one experiment table into a manifest entry: every
// numeric cell becomes a metric named "<row label>/<column header>". The
// simulator is deterministic for a fixed seed, so every table metric is a
// hard (deterministic) one; wall time is carried in the entry itself and
// always compared as noisy.
func manifestEntry(id string, tab *exp.Table, sc exp.Scale, elapsed time.Duration) obs.Entry {
	metrics := make(map[string]obs.Metric)
	for _, row := range tab.Rows {
		if len(row) == 0 {
			continue
		}
		label := row[0]
		for col := 1; col < len(row); col++ {
			cell := strings.TrimSuffix(row[col], "%")
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				continue
			}
			name := label
			if col < len(tab.Header) {
				name += "/" + tab.Header[col]
			} else {
				name += "/col" + strconv.Itoa(col)
			}
			metrics[name] = obs.Det(v, "")
		}
	}
	return obs.Entry{
		Name:       id,
		Scale:      obs.ScaleInfo{Nodes: sc.Nodes, Queries: sc.Queries, Tuples: sc.Tuples, Seed: sc.Seed},
		Iterations: 1,
		WallNS:     elapsed.Nanoseconds(),
		Metrics:    metrics,
	}
}
