// Command benchdiff compares benchmark run manifests (the
// BENCH_<label>.json files written by `go test -bench=.` and the load
// manifests written by cqload) against a committed baseline and gates on
// regressions:
//
//	benchdiff [-threshold 0.15] [-strict] [-github] baseline.json current.json [more-current.json ...]
//
// Several current manifests may be given — CI produces the benchmark
// manifest and the load-smoke manifests in separate steps — and their
// entries are merged before comparison. An entry name appearing in more
// than one current manifest is a wiring error and exits 2: silently
// letting one file shadow another would gate against the wrong run.
//
// Metrics marked deterministic in the manifest (message counts, hops, load
// totals, allocations — pure functions of code + seed in the simulator)
// hard-fail the gate when they regress beyond the threshold. Noisy metrics
// (wall time, bytes/op) only annotate, unless -strict promotes them to
// failures. A baseline metric may carry its own Threshold override (tail
// latencies use a looser leash). Improvements and membership drift are
// printed as notes — a cue to refresh the committed baseline, never a
// failure.
//
// -subset declares that the current manifests intentionally cover only
// some baseline entries (a load-smoke run gating just the cqload
// entries); baseline entries absent from the merged currents are then
// skipped silently instead of noted.
//
// Exit codes: 0 no gating regression, 1 gate failed, 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cqjoin/internal/obs"
)

// mergeCurrents reads every current manifest and merges their entries,
// rejecting duplicate entry names across files.
func mergeCurrents(paths []string) (*obs.Manifest, error) {
	merged := &obs.Manifest{Schema: obs.ManifestSchemaVersion}
	from := make(map[string]string) // entry name -> file that provided it
	var labels []string
	for _, path := range paths {
		m, err := obs.ReadManifest(path)
		if err != nil {
			return nil, err
		}
		if m.Label != "" {
			labels = append(labels, m.Label)
		}
		for _, e := range m.Entries {
			if prev, dup := from[e.Name]; dup {
				return nil, fmt.Errorf("entry %q appears in both %s and %s", e.Name, prev, path)
			}
			from[e.Name] = path
			merged.Entries = append(merged.Entries, e)
		}
	}
	merged.Label = strings.Join(labels, "+")
	return merged, nil
}

func main() {
	threshold := flag.Float64("threshold", obs.DefaultThreshold,
		"relative change treated as a regression (0.15 = 15%)")
	strict := flag.Bool("strict", false,
		"fail on noisy-metric regressions too, not only deterministic ones")
	github := flag.Bool("github", false,
		"emit GitHub Actions ::error/::warning annotations alongside the report")
	subset := flag.Bool("subset", false,
		"currents cover only some baseline entries; skip the rest instead of noting them as missing")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchdiff [flags] baseline.json current.json [more-current.json ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 2 {
		flag.Usage()
		os.Exit(2)
	}

	base, err := obs.ReadManifest(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := mergeCurrents(flag.Args()[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	if *subset {
		kept := base.Entries[:0]
		for _, be := range base.Entries {
			if _, ok := cur.Entry(be.Name); ok {
				kept = append(kept, be)
			}
		}
		base.Entries = kept
	}

	res := obs.Compare(base, cur, obs.DiffOptions{Threshold: *threshold})

	fmt.Printf("benchdiff: %s (%s) vs %s (%s), threshold %.0f%%\n",
		flag.Arg(0), base.Label, strings.Join(flag.Args()[1:], ","), cur.Label, 100**threshold)

	fail := false
	for _, f := range res.Regressions {
		fmt.Println("  " + f.String())
		gates := f.Hard || *strict
		if gates {
			fail = true
		}
		if *github {
			level := "warning"
			if gates {
				level = "error"
			}
			fmt.Printf("::%s title=benchdiff::%s\n", level, f.String())
		}
	}
	for _, f := range res.Improvements {
		fmt.Println("  " + f.String())
	}
	for _, f := range res.Notes {
		fmt.Println("  note: " + f.String())
	}
	if len(res.Regressions)+len(res.Improvements)+len(res.Notes) == 0 {
		fmt.Println("  no findings: all shared metrics within threshold")
	}

	if fail {
		fmt.Println("benchdiff: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchdiff: OK")
}
