// Command benchdiff compares two benchmark run manifests (the
// BENCH_<label>.json files written by `go test -bench=.`) and gates on
// regressions:
//
//	benchdiff [-threshold 0.15] [-strict] [-github] baseline.json current.json
//
// Metrics marked deterministic in the manifest (message counts, hops, load
// totals, allocations — pure functions of code + seed in the simulator)
// hard-fail the gate when they regress beyond the threshold. Noisy metrics
// (wall time, bytes/op) only annotate, unless -strict promotes them to
// failures. Improvements and membership drift are printed as notes — a cue
// to refresh the committed baseline, never a failure.
//
// Exit codes: 0 no gating regression, 1 gate failed, 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"os"

	"cqjoin/internal/obs"
)

func main() {
	threshold := flag.Float64("threshold", obs.DefaultThreshold,
		"relative change treated as a regression (0.15 = 15%)")
	strict := flag.Bool("strict", false,
		"fail on noisy-metric regressions too, not only deterministic ones")
	github := flag.Bool("github", false,
		"emit GitHub Actions ::error/::warning annotations alongside the report")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchdiff [flags] baseline.json current.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	base, err := obs.ReadManifest(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := obs.ReadManifest(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	res := obs.Compare(base, cur, obs.DiffOptions{Threshold: *threshold})

	fmt.Printf("benchdiff: %s (%s) vs %s (%s), threshold %.0f%%\n",
		flag.Arg(0), base.Label, flag.Arg(1), cur.Label, 100**threshold)

	fail := false
	for _, f := range res.Regressions {
		fmt.Println("  " + f.String())
		gates := f.Hard || *strict
		if gates {
			fail = true
		}
		if *github {
			level := "warning"
			if gates {
				level = "error"
			}
			fmt.Printf("::%s title=benchdiff::%s\n", level, f.String())
		}
	}
	for _, f := range res.Improvements {
		fmt.Println("  " + f.String())
	}
	for _, f := range res.Notes {
		fmt.Println("  note: " + f.String())
	}
	if len(res.Regressions)+len(res.Improvements)+len(res.Notes) == 0 {
		fmt.Println("  no findings: all shared metrics within threshold")
	}

	if fail {
		fmt.Println("benchdiff: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchdiff: OK")
}
