// Command cqlint is the project's invariant checker: a multichecker that
// runs the internal/analysis suite — the per-function syntax checks
// (determinism, maporder, wiresync, sendunderlock, obsregister) and the
// interprocedural call-graph analyzers (lockorder, goroleak, poolsafe,
// wiretag) — over the module and exits non-zero on any diagnostic. It is
// the compile-time counterpart of the differential determinism harness
// in parallel_test.go — see DESIGN.md §9.
//
// Usage:
//
//	go run ./cmd/cqlint ./...
//	go run ./cmd/cqlint ./internal/engine ./internal/chord
//	go run ./cmd/cqlint -json ./...
//	go run ./cmd/cqlint -list
//
// Exit codes:
//
//	0  the analyzed packages are clean
//	1  one or more findings (each printed, or emitted as JSON with -json)
//	2  the analysis itself could not run (load, type-check or internal error)
//
// With -json, findings go to stdout as a single JSON array of objects
// with file/line/col/message/analyzer fields (an empty array when clean),
// for editors and CI annotators; human-readable output and the findings
// summary stay on the default path.
//
// cqlint loads and type-checks entirely offline (standard library
// importers only), so it needs no module downloads and no vet tool
// plumbing; CI runs it as its own job next to the ordinary lint job.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cqjoin/internal/analysis"
)

// jsonFinding is one diagnostic in -json output.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Analyzer string `json:"analyzer"`
}

func main() {
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	dir := flag.String("C", ".", "module root to analyze")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cqlint [-C moduledir] [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(*dir, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqlint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqlint:", err)
		os.Exit(2)
	}
	prog := analysis.NewProg(loader, pkgs)
	diags, err := prog.Run(analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqlint:", err)
		os.Exit(2)
	}
	if *asJSON {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			pos := loader.Fset.Position(d.Pos)
			findings = append(findings, jsonFinding{
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Message: d.Message, Analyzer: d.Analyzer,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "cqlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			pos := loader.Fset.Position(d.Pos)
			fmt.Printf("%s: %s (%s)\n", pos, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cqlint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
