// Command cqlint is the project's invariant checker: a multichecker that
// runs the internal/analysis suite (determinism, maporder, wiresync,
// sendunderlock, obsregister) over the module and exits non-zero on any
// diagnostic. It is the compile-time counterpart of the differential
// determinism harness in parallel_test.go — see DESIGN.md §9.
//
// Usage:
//
//	go run ./cmd/cqlint ./...
//	go run ./cmd/cqlint ./internal/engine ./internal/chord
//	go run ./cmd/cqlint -list
//
// cqlint loads and type-checks entirely offline (standard library
// importers only), so it needs no module downloads and no vet tool
// plumbing; CI runs it as its own job next to the ordinary lint job.
package main

import (
	"flag"
	"fmt"
	"os"

	"cqjoin/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	dir := flag.String("C", ".", "module root to analyze")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cqlint [-C moduledir] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(*dir, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqlint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqlint:", err)
		os.Exit(2)
	}
	prog := analysis.NewProg(loader, pkgs)
	diags, err := prog.Run(analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		fmt.Printf("%s: %s (%s)\n", pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cqlint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
