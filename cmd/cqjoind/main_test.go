package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The signal contract, tested against the real binary: a cqjoind that
// receives SIGTERM runs the same graceful path as -leave — checkpoint the
// write-ahead log, drain client connections, exit 0 — and a restart from
// the same -state-dir has every notification the signaled process had
// acknowledged, with the subscription still live.

func buildCqjoind(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cqjoind")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Skipf("cannot build cqjoind (no toolchain?): %v\n%s", err, out)
	}
	return bin
}

// cqjoindProc is one spawned daemon: the process handle and the client
// address scraped from its startup log. done is closed when the process
// exits, after which waitErr holds its exit status.
type cqjoindProc struct {
	cmd     *exec.Cmd
	addr    string
	done    chan struct{}
	waitErr error
}

// startCqjoind spawns the binary and waits for its "listening on" line.
func startCqjoind(t *testing.T, bin, stateDir string) *cqjoindProc {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-nodes", "32",
		"-schema", "Orders(Id,Customer,Product);Shipments(Id,Product,Depot)",
		"-state-dir", stateDir,
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatalf("stderr pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start cqjoind: %v", err)
	}
	p := &cqjoindProc{cmd: cmd, done: make(chan struct{})}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		<-p.done
	})
	addrC := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrC <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	go func() { p.waitErr = cmd.Wait(); close(p.done) }()
	select {
	case p.addr = <-addrC:
	case <-p.done:
		t.Fatalf("cqjoind exited before listening: %v", p.waitErr)
	case <-time.After(30 * time.Second):
		t.Fatal("cqjoind did not announce its client address")
	}
	return p
}

// lineClient is a minimal newline-JSON protocol client; notification
// events arriving between responses are queued.
type lineClient struct {
	t      *testing.T
	conn   net.Conn
	r      *bufio.Reader
	events []map[string]interface{}
}

func dialDaemon(t *testing.T, addr string) *lineClient {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return &lineClient{t: t, conn: conn, r: bufio.NewReader(conn)}
}

func (c *lineClient) read() map[string]interface{} {
	c.t.Helper()
	_ = c.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	line, err := c.r.ReadString('\n')
	if err != nil {
		c.t.Fatalf("read: %v", err)
	}
	var m map[string]interface{}
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		c.t.Fatalf("bad line %q: %v", line, err)
	}
	return m
}

func (c *lineClient) call(req map[string]interface{}) map[string]interface{} {
	c.t.Helper()
	b, _ := json.Marshal(req)
	if _, err := c.conn.Write(append(b, '\n')); err != nil {
		c.t.Fatalf("write: %v", err)
	}
	for {
		m := c.read()
		if _, isEvent := m["event"]; isEvent {
			c.events = append(c.events, m)
			continue
		}
		return m
	}
}

func (c *lineClient) nextEvent() map[string]interface{} {
	c.t.Helper()
	for len(c.events) == 0 {
		m := c.read()
		if _, isEvent := m["event"]; isEvent {
			c.events = append(c.events, m)
		}
	}
	ev := c.events[0]
	c.events = c.events[1:]
	return ev
}

func TestSigtermLosesNoAcknowledgedNotifications(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	bin := buildCqjoind(t)
	stateDir := t.TempDir()

	p := startCqjoind(t, bin, stateDir)
	c := dialDaemon(t, p.addr)
	if resp := c.call(map[string]interface{}{"op": "listen"}); resp["ok"] != true {
		t.Fatalf("listen: %v", resp)
	}
	resp := c.call(map[string]interface{}{
		"op": "subscribe", "node": 0,
		"sql": `SELECT O.Customer, S.Depot FROM Orders AS O, Shipments AS S WHERE O.Product = S.Product`,
	})
	if resp["ok"] != true {
		t.Fatalf("subscribe: %v", resp)
	}
	key := resp["key"].(string)

	const pairs = 5
	acked := 0
	for i := 0; i < pairs; i++ {
		tag := fmt.Sprintf("sig-%d", i)
		if r := c.call(map[string]interface{}{"op": "publish", "node": 1 + i, "relation": "Orders",
			"values": []interface{}{1, "cust-" + tag, "prod-" + tag}}); r["ok"] != true {
			t.Fatalf("publish: %v", r)
		}
		if r := c.call(map[string]interface{}{"op": "publish", "node": 7 + i, "relation": "Shipments",
			"values": []interface{}{2, "prod-" + tag, "depot-" + tag}}); r["ok"] != true {
			t.Fatalf("publish: %v", r)
		}
		ev := c.nextEvent()
		if ev["query"] != key {
			t.Fatalf("event %v for wrong query, want %s", ev, key)
		}
		acked++
	}

	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	select {
	case <-p.done:
		if p.waitErr != nil {
			t.Fatalf("signaled cqjoind exited abnormally: %v", p.waitErr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("signaled cqjoind did not exit")
	}

	// Restart from the same state directory: nothing acknowledged is gone.
	p2 := startCqjoind(t, bin, stateDir)
	c2 := dialDaemon(t, p2.addr)
	stats := c2.call(map[string]interface{}{"op": "stats"})
	if got := stats["notifications"].(float64); int(got) != acked {
		t.Fatalf("restart has %v notifications, acknowledged %d before SIGTERM", got, acked)
	}
	// The subscription is live again: one more matching pair notifies.
	if resp := c2.call(map[string]interface{}{"op": "listen"}); resp["ok"] != true {
		t.Fatalf("listen: %v", resp)
	}
	if r := c2.call(map[string]interface{}{"op": "publish", "node": 3, "relation": "Orders",
		"values": []interface{}{1, "cust-after", "prod-after"}}); r["ok"] != true {
		t.Fatalf("publish: %v", r)
	}
	if r := c2.call(map[string]interface{}{"op": "publish", "node": 4, "relation": "Shipments",
		"values": []interface{}{2, "prod-after", "depot-after"}}); r["ok"] != true {
		t.Fatalf("publish: %v", r)
	}
	ev := c2.nextEvent()
	if ev["query"] != key {
		t.Fatalf("subscription did not survive signal+restart: %v", ev)
	}
}
