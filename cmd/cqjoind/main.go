// Command cqjoind runs a continuous-join overlay as a network service:
// clients connect over TCP and speak a newline-delimited JSON protocol to
// pose continuous queries, insert tuples and stream notifications.
//
//	cqjoind -addr 127.0.0.1:7470 -nodes 256 -algorithm dait \
//	        -schema "Orders(Id,Customer,Product);Shipments(Id,Product,Depot)"
//
// Protocol (one JSON object per line):
//
//	-> {"op":"subscribe","node":0,"sql":"SELECT ... WHERE ..."}
//	<- {"ok":true,"key":"peer40#1"}
//	-> {"op":"publish","node":1,"relation":"Orders","values":[1,"acme","widget"]}
//	<- {"ok":true,"pubt":12}
//	-> {"op":"listen"}
//	<- {"ok":true}
//	<- {"event":"notification","query":"peer40#1","subscriber":"peer40","values":["acme","rotterdam"]}
//	-> {"op":"unsubscribe","key":"peer40#1"}
//	-> {"op":"stats"}
//	<- {"ok":true,"nodes":256,"notifications":1,"hops":62,"messages":19,"bytes":38197}
//
// By default the overlay runs in-process (the library's simulator). With
// -overlay and -peers, N cqjoind processes form one overlay: every
// process builds the identical ring, and ring positions are owned by the
// process whose hashed address is their clockwise successor (consistent
// hashing over the membership view), so deliveries to nodes owned by
// another process cross the wire through the framed TCP transport.
//
// Membership is dynamic. -join copies the overlay configuration and live
// peer list from a running peer's client port; if this process is not
// already in that list it enters the running overlay through the join
// protocol (admission, view gossip, state hand-off) without restarting
// anyone. -leave asks a running daemon to depart voluntarily, handing its
// arcs to the survivors, and exits:
//
//	cqjoind -addr :7470 -overlay 10.0.0.1:7570 \
//	        -peers 10.0.0.1:7570,10.0.0.2:7570 -schema "R(A,B);S(D,E)"
//	cqjoind -addr :7470 -overlay 10.0.0.3:7570 -join 10.0.0.1:7470
//	cqjoind -leave 10.0.0.3:7470
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cqjoin/internal/daemon"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7470", "listen address")
		nodes     = flag.Int("nodes", 128, "overlay size")
		algorithm = flag.String("algorithm", "sai", "sai | daiq | dait | daiv")
		schema    = flag.String("schema", "", `catalog, e.g. "R(A,B);S(D,E)"`)
		jfrt      = flag.Bool("jfrt", true, "enable the Join Fingers Routing Table")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		hotThresh = flag.Int("hot-threshold", 0, "arm adaptive hot-key sharding at this per-window event count (0 disables; SAI only)")
		hotRepl   = flag.Int("hot-replicas", 0, "hot-key replica-group size (0 = default)")
		overlay   = flag.String("overlay", "", "inter-node transport listen address (multi-process mode)")
		peers     = flag.String("peers", "", "comma-separated overlay addresses of every process, identical order everywhere")
		join      = flag.String("join", "", "client address of a running peer to copy the overlay configuration from (and enter its overlay when -overlay is set)")
		leave     = flag.String("leave", "", "client address of a running daemon that should leave its overlay; acts as a one-shot command")
		stateDir  = flag.String("state-dir", "", "directory for the write-ahead log and snapshots; state found there is replayed on start (empty: fully in-memory)")
	)
	flag.Parse()
	if *leave != "" {
		if err := requestLeave(*leave); err != nil {
			log.Fatalf("cqjoind: -leave %s: %v", *leave, err)
		}
		log.Printf("cqjoind: %s left its overlay", *leave)
		return
	}
	cfg := daemon.Config{
		Nodes:           *nodes,
		Algorithm:       *algorithm,
		SchemaDSL:       *schema,
		UseJFRT:         *jfrt,
		Seed:            *seed,
		HotKeyThreshold: *hotThresh,
		HotKeyReplicas:  *hotRepl,
		OverlayAddr:     *overlay,
		StateDir:        *stateDir,
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Peers = append(cfg.Peers, p)
			}
		}
	}
	if *join != "" {
		if err := copyOverlayConfig(*join, &cfg); err != nil {
			log.Fatalf("cqjoind: -join %s: %v", *join, err)
		}
		// A process already in the live peer list is a configured member
		// rebooting; anyone else enters through the join protocol.
		if cfg.OverlayAddr != "" {
			cfg.JoinExisting = true
			for _, p := range cfg.Peers {
				if p == cfg.OverlayAddr {
					cfg.JoinExisting = false
					break
				}
			}
		}
	}
	if cfg.SchemaDSL == "" {
		fmt.Fprintln(os.Stderr, "cqjoind: -schema is required (or -join a peer that has one)")
		flag.Usage()
		os.Exit(2)
	}
	srv, err := daemon.New(cfg)
	if err != nil {
		log.Fatalf("cqjoind: %v", err)
	}
	if cfg.StateDir != "" {
		info := srv.Recovery()
		log.Printf("cqjoind: durable state in %s (snapshot lsn %d, %d wal records replayed)",
			cfg.StateDir, info.SnapshotLSN, info.Replayed)
	}
	if cfg.OverlayAddr != "" {
		if err := srv.ListenAndServeOverlay(); err != nil {
			log.Fatalf("cqjoind: overlay: %v", err)
		}
		log.Printf("cqjoind: overlay transport on %s (%d peers)", cfg.OverlayAddr, len(cfg.Peers))
		if cfg.JoinExisting {
			if err := joinOverlay(srv, cfg.Peers); err != nil {
				log.Fatalf("cqjoind: %v", err)
			}
			log.Printf("cqjoind: joined the running overlay as %s", cfg.OverlayAddr)
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("cqjoind: %v", err)
	}
	log.Printf("cqjoind: %d-node overlay (%s), listening on %s", cfg.Nodes, cfg.Algorithm, ln.Addr())

	// SIGINT/SIGTERM run the same graceful path as -leave: depart the
	// overlay, drain client connections, checkpoint and close the durable
	// store — no acknowledged operation is lost to the signal.
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	errC := make(chan error, 1)
	go func() { errC <- srv.Serve(ln) }()
	select {
	case err := <-errC:
		if err != nil {
			log.Fatalf("cqjoind: %v", err)
		}
	case sig := <-sigC:
		log.Printf("cqjoind: %v: leaving overlay and flushing state", sig)
		if err := srv.Shutdown(); err != nil {
			log.Printf("cqjoind: shutdown: %v", err)
		}
		log.Printf("cqjoind: shutdown complete")
	}
}

// joinOverlay enters the running overlay through the first member that
// admits this process.
func joinOverlay(srv *daemon.Server, peers []string) error {
	var lastErr error
	for _, p := range peers {
		if err := srv.JoinOverlay(p); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("daemon: no peers to join through")
	}
	return lastErr
}

// requestLeave asks a running daemon's client port to leave its overlay.
func requestLeave(peer string) error {
	conn, err := net.DialTimeout("tcp", peer, 5*time.Second)
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	if _, err := fmt.Fprintln(conn, `{"op":"leave"}`); err != nil {
		return err
	}
	var resp struct {
		OK    bool   `json:"ok"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("peer refused: %s", resp.Error)
	}
	return nil
}

// copyOverlayConfig asks a running peer's client port for its overlay
// configuration and fills cfg with it, keeping this process's own
// -overlay address.
func copyOverlayConfig(peer string, cfg *daemon.Config) error {
	conn, err := net.DialTimeout("tcp", peer, 5*time.Second)
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintln(conn, `{"op":"overlay-config"}`); err != nil {
		return err
	}
	var resp struct {
		OK           bool     `json:"ok"`
		Error        string   `json:"error"`
		Nodes        int      `json:"nodes"`
		Algorithm    string   `json:"algorithm"`
		Schema       string   `json:"schema"`
		JFRT         bool     `json:"jfrt"`
		Seed         int64    `json:"seed"`
		HotThreshold int      `json:"hot_threshold"`
		HotReplicas  int      `json:"hot_replicas"`
		Peers        []string `json:"peers"`
	}
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("peer refused: %s", resp.Error)
	}
	cfg.Nodes = resp.Nodes
	cfg.Algorithm = resp.Algorithm
	cfg.SchemaDSL = resp.Schema
	cfg.UseJFRT = resp.JFRT
	cfg.Seed = resp.Seed
	cfg.HotKeyThreshold = resp.HotThreshold
	cfg.HotKeyReplicas = resp.HotReplicas
	cfg.Peers = resp.Peers
	return nil
}
