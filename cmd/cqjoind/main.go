// Command cqjoind runs a simulated continuous-join overlay as a network
// service: clients connect over TCP and speak a newline-delimited JSON
// protocol to pose continuous queries, insert tuples and stream
// notifications.
//
//	cqjoind -addr 127.0.0.1:7470 -nodes 256 -algorithm dait \
//	        -schema "Orders(Id,Customer,Product);Shipments(Id,Product,Depot)"
//
// Protocol (one JSON object per line):
//
//	-> {"op":"subscribe","node":0,"sql":"SELECT ... WHERE ..."}
//	<- {"ok":true,"key":"peer40#1"}
//	-> {"op":"publish","node":1,"relation":"Orders","values":[1,"acme","widget"]}
//	<- {"ok":true,"pubt":12}
//	-> {"op":"listen"}
//	<- {"ok":true}
//	<- {"event":"notification","query":"peer40#1","subscriber":"peer40","values":["acme","rotterdam"]}
//	-> {"op":"unsubscribe","key":"peer40#1"}
//	-> {"op":"stats"}
//	<- {"ok":true,"nodes":256,"notifications":1,"hops":62,"messages":19,"bytes":38197}
//
// The overlay itself runs in-process (the library's simulator); cqjoind
// demonstrates embedding it behind a real network boundary.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cqjoin/internal/daemon"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7470", "listen address")
		nodes     = flag.Int("nodes", 128, "overlay size")
		algorithm = flag.String("algorithm", "sai", "sai | daiq | dait | daiv")
		schema    = flag.String("schema", "", `catalog, e.g. "R(A,B);S(D,E)"`)
		jfrt      = flag.Bool("jfrt", true, "enable the Join Fingers Routing Table")
		seed      = flag.Int64("seed", 1, "deterministic seed")
	)
	flag.Parse()
	if *schema == "" {
		fmt.Fprintln(os.Stderr, "cqjoind: -schema is required")
		flag.Usage()
		os.Exit(2)
	}
	srv, err := daemon.New(daemon.Config{
		Nodes:     *nodes,
		Algorithm: *algorithm,
		SchemaDSL: *schema,
		UseJFRT:   *jfrt,
		Seed:      *seed,
	})
	if err != nil {
		log.Fatalf("cqjoind: %v", err)
	}
	log.Printf("cqjoind: %d-node overlay (%s), listening on %s", *nodes, *algorithm, *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatalf("cqjoind: %v", err)
	}
}
