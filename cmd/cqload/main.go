// Command cqload is the open-loop load generator for the continuous
// equi-join engine: it offers publications at a fixed arrival rate —
// never slowing down because the target did — and reports achieved
// throughput, error counts and p50/p99/p999 notification latency into
// the same schema-versioned manifest format the benchmarks use, so
// cmd/benchdiff can gate load results against the committed baseline.
//
//	cqload -mode sim                          # in-process simulator engine
//	cqload -mode sim -skewed                  # canonical Zipf-hot smoke, hot-key sharding armed
//	cqload -mode tcp                          # self-hosted two-daemon TCP overlay
//	cqload -mode tcp -addr 127.0.0.1:7744     # externally running cqjoind
//
// Defaults (rate, duration, workers, overlay size) are the canonical
// smoke configurations from internal/load, shared with the load
// benchmarks; override them only for exploratory runs, since manifests
// produced under other configurations cannot be compared against the
// committed baseline.
//
// Exit codes: 0 success, 1 achieved/offered fell below
// -min-achieved-ratio (rate collapse; the CI load-smoke gate), 2 usage
// or runtime error.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cqjoin/internal/load"
	"cqjoin/internal/obs"
)

func main() {
	mode := flag.String("mode", "sim", "target: sim (in-process engine) or tcp (cqjoind overlay)")
	addr := flag.String("addr", "", "tcp mode: address of an external cqjoind; empty self-hosts a daemon pair")
	rate := flag.Float64("rate", 0, "offered publications/sec (0 = mode default)")
	duration := flag.Duration("duration", 0, "timed run length (0 = mode default)")
	workers := flag.Int("workers", 0, "concurrent publisher goroutines (0 = mode default)")
	nodes := flag.Int("nodes", 0, "overlay size (0 = mode default)")
	queries := flag.Int("queries", 0, "continuous queries to subscribe (0 = mode default)")
	procs := flag.Int("procs", 0, "tcp mode: self-hosted daemon count (0 = mode default)")
	algorithm := flag.String("algorithm", "", "indexing algorithm (empty = mode default)")
	seed := flag.Int64("seed", 0, "workload seed (0 = mode default)")
	theta := flag.Float64("theta", 0, "Zipf skew of attribute values (0 = mode default, negative = uniform)")
	skewed := flag.Bool("skewed", false, "use the canonical skewed smoke spec: Zipf theta 1.1 with hot-key sharding armed")
	label := flag.String("label", "load", "manifest label")
	name := flag.String("name", "", "manifest entry name (empty = cqload/<mode>)")
	manifest := flag.String("manifest", "", "write a run manifest to this path")
	minRatio := flag.Float64("min-achieved-ratio", 0,
		"exit 1 when achieved/offered drops below this (0 disables the gate)")
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "cqload:", err)
		os.Exit(2)
	}

	var (
		target load.Target
		cfg    load.Config
		scale  func(total int) obs.ScaleInfo
	)
	switch *mode {
	case "sim":
		spec := load.DefaultSimSpec()
		if *skewed {
			spec = load.SkewedSimSpec()
		}
		cfg = load.SimConfig()
		if *theta != 0 {
			spec.Theta = *theta
		}
		if *nodes > 0 {
			spec.Scale.Nodes = *nodes
		}
		if *queries > 0 {
			spec.Scale.Queries = *queries
		}
		if *seed != 0 {
			spec.Scale.Seed = *seed
		}
		if *algorithm != "" {
			alg, err := load.ParseAlgorithm(*algorithm)
			if err != nil {
				fail(err)
			}
			spec.Algorithm = alg
		}
		t := load.NewSimTarget(spec)
		target, scale = t, t.ScaleInfo
	case "tcp":
		spec := load.DefaultTCPSpec()
		if *skewed {
			spec = load.SkewedTCPSpec()
		}
		cfg = load.TCPConfig()
		if *theta != 0 {
			spec.Theta = *theta
		}
		if *nodes > 0 {
			spec.Nodes = *nodes
		}
		if *queries > 0 {
			spec.Queries = *queries
		}
		if *procs > 0 {
			spec.Procs = *procs
		}
		if *seed != 0 {
			spec.Seed = *seed
		}
		if *algorithm != "" {
			spec.Algorithm = *algorithm
		}
		if *addr != "" {
			t := load.NewDaemonTarget(*addr, spec)
			target, scale = t, t.ScaleInfo
		} else {
			t, err := load.NewSelfHostedTCP(spec)
			if err != nil {
				fail(err)
			}
			target, scale = t, t.ScaleInfo
		}
	default:
		fail(fmt.Errorf("unknown mode %q (want sim or tcp)", *mode))
	}
	defer target.Close()

	if *rate > 0 {
		cfg.Rate = *rate
	}
	if *duration > 0 {
		cfg.Duration = *duration
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}

	res, err := load.Run(target, cfg)
	if err != nil {
		fail(err)
	}

	fmt.Printf("cqload %s: offered %.0f/s achieved %.0f/s (%.1f%%), %d/%d published, %d errors, %d notifications\n",
		*mode, res.Offered, res.Achieved, 100*res.AchievedRatio(),
		res.Published, res.Total, res.Errors, res.Notifications)
	fmt.Printf("  latency from scheduled arrival: p50 %s  p99 %s  p999 %s\n",
		fmtLatency(res.P50), fmtLatency(res.P99), fmtLatency(res.P999))
	if hk, ok := target.(interface{ HotKeys() (int, error) }); ok {
		if n, err := hk.HotKeys(); err == nil && n > 0 {
			fmt.Printf("  hot keys promoted: %d\n", n)
		}
	}

	if *manifest != "" {
		entry := *name
		if entry == "" {
			entry = "cqload/" + *mode
		}
		c := obs.NewCollector()
		c.Add(res.Entry(entry, scale(int(res.Total))))
		if err := c.Manifest(*label).WriteFile(*manifest); err != nil {
			fail(err)
		}
		fmt.Printf("  manifest: %s (entry %s)\n", *manifest, entry)
	}

	if *minRatio > 0 && res.AchievedRatio() < *minRatio {
		fmt.Fprintf(os.Stderr, "cqload: rate collapse: achieved/offered %.3f < %.3f\n",
			res.AchievedRatio(), *minRatio)
		os.Exit(1)
	}
}

// fmtLatency renders a nanosecond quantile, handling the -1 overflow
// sentinel from the histogram's top bucket.
func fmtLatency(ns float64) string {
	if ns < 0 {
		return ">10s"
	}
	return time.Duration(ns).Round(time.Microsecond).String()
}
