// Package cqjoin is a library for continuous two-way equi-join query
// processing over large structured overlay networks, reproducing
// Idreos/Tryfonopoulos/Koubarakis, "Distributed Evaluation of Continuous
// Equi-join Queries over Large Structured Overlay Networks" (ICDE 2006).
//
// A Cluster simulates a Chord overlay of cooperating peers. Every peer can
// insert relational tuples (Publish) and pose continuous SQL join queries
// (Subscribe); the network's nodes collaborate through two-level
// distributed indexing to deliver a notification to the subscriber whenever
// a newly inserted pair of tuples satisfies a query:
//
//	catalog := cqjoin.MustCatalog(
//		cqjoin.MustSchema("Document", "Id", "Title", "Conference", "AuthorId"),
//		cqjoin.MustSchema("Authors", "Id", "Name", "Surname"),
//	)
//	cluster, _ := cqjoin.NewCluster(cqjoin.Config{Nodes: 128, Catalog: catalog})
//	alice := cluster.Node(0)
//	alice.Subscribe(`SELECT D.Title, D.Conference
//	                 FROM Document AS D, Authors AS A
//	                 WHERE D.AuthorId = A.Id AND A.Surname = 'Smith'`)
//	cluster.OnNotify(func(n cqjoin.Notification) { fmt.Println(n) })
//	bob := cluster.Node(1)
//	bob.Publish("Authors", 17, "John", "Smith")
//	bob.Publish("Document", 1, "P2P Joins", "ICDE", 17)
//
// Four algorithms are available — SAI, DAIQ, DAIT and DAIV — plus the naive
// baselines the paper argues against; the Join Fingers Routing Table,
// attribute-level replication and index-attribute strategies are switchable
// through Config. See DESIGN.md for the full map from the paper to this
// implementation.
package cqjoin

import (
	"fmt"

	"cqjoin/internal/chord"
	"cqjoin/internal/engine"
	"cqjoin/internal/metrics"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
)

// Re-exported data-model types. Internal packages are not importable by
// library users; these aliases are the public names.
type (
	// Schema describes a relation: name plus ordered attributes.
	Schema = relation.Schema
	// Catalog is the set of co-existing schemas a cluster serves.
	Catalog = relation.Catalog
	// Tuple is one row of a relation with its publication time.
	Tuple = relation.Tuple
	// Value is a string or numeric attribute value.
	Value = relation.Value
	// ValueKind is the runtime type of a Value.
	ValueKind = relation.Kind
	// Query is a parsed continuous two-way equi-join query.
	Query = query.Query
	// MultiQuery is a parsed continuous multi-way chain equi-join query
	// (the Chapter 7 extension).
	MultiQuery = query.MultiQuery
	// Notification is a query answer delivered to a subscriber.
	Notification = engine.Notification
	// Algorithm selects the query-processing protocol.
	Algorithm = engine.Algorithm
	// Strategy selects SAI's index attribute (random, min-rate, min-domain).
	Strategy = engine.Strategy
	// Traffic is the overlay-hop and message ledger.
	Traffic = metrics.Traffic
	// Distribution summarizes how load spreads across nodes.
	Distribution = metrics.Distribution
	// HotKeyState describes one value-level input promoted by adaptive
	// hot-key sharding.
	HotKeyState = engine.HotKeyState
)

// The available algorithms (Chapter 4).
const (
	SAI  = engine.SAI
	DAIQ = engine.DAIQ
	DAIT = engine.DAIT
	DAIV = engine.DAIV
	// BaselineRelation, BaselineAttribute and BaselinePair are the naive
	// single-level schemes of Section 4.1, provided for comparison.
	BaselineRelation  = engine.BaselineRelation
	BaselineAttribute = engine.BaselineAttribute
	BaselinePair      = engine.BaselinePair
)

// The value kinds.
const (
	StringKind = relation.String
	NumberKind = relation.Number
)

// The index-attribute strategies for SAI (Section 4.3.6).
const (
	StrategyRandom    = engine.StrategyRandom
	StrategyMinRate   = engine.StrategyMinRate
	StrategyMinDomain = engine.StrategyMinDomain
	StrategyLeft      = engine.StrategyLeft
)

// Data-model constructors, re-exported.
var (
	// S builds a string Value.
	S = relation.S
	// N builds a numeric Value.
	N = relation.N
	// NewSchema and MustSchema build relation schemas.
	NewSchema  = relation.NewSchema
	MustSchema = relation.MustSchema
	// NewCatalog and MustCatalog build schema catalogs.
	NewCatalog  = relation.NewCatalog
	MustCatalog = relation.MustCatalog
	// NewTuple and MustTuple build tuples.
	NewTuple  = relation.NewTuple
	MustTuple = relation.MustTuple
)

// Config parameterizes a Cluster.
type Config struct {
	// Nodes is the initial overlay size. Must be at least 1.
	Nodes int
	// Catalog declares the relations tuples and queries may reference.
	Catalog *Catalog
	// Algorithm selects the protocol; the zero value is SAI.
	Algorithm Algorithm
	// Strategy selects SAI's index-attribute choice; zero is random.
	Strategy Strategy
	// UseJFRT enables the Join Fingers Routing Table (Section 4.7.1).
	UseJFRT bool
	// ReplicationFactor spreads each rewriter over k replica nodes
	// (Section 4.7.2); values < 2 disable replication.
	ReplicationFactor int
	// Window is the sliding window in logical time units; 0 keeps stored
	// tuples forever.
	Window int64
	// Seed makes runs reproducible.
	Seed int64

	// HotKeyThreshold arms adaptive hot-key sharding (SAI only): a
	// value-level input whose event count crosses the threshold within one
	// detection window is promoted to a replica group. 0 disables the
	// layer.
	HotKeyThreshold int
	// HotKeyReplicas is the promoted replica-group size; values < 2
	// default to 4.
	HotKeyReplicas int
	// HotKeyWindow is the detection window in logical time units; 0
	// defaults to 64.
	HotKeyWindow int64
}

// Durability receives every mutating operation a Cluster routes through
// it instead of calling the engine directly, so a write-ahead log can make
// the op durable after it applies. *durable.Store is the implementation;
// the interface keeps this package free of a durable dependency.
type Durability interface {
	Subscribe(from *chord.Node, q *query.Query) (*query.Query, error)
	SubscribeMulti(from *chord.Node, mq *query.MultiQuery) (*query.MultiQuery, error)
	Unsubscribe(from *chord.Node, q *query.Query) error
	UnsubscribeMulti(from *chord.Node, mq *query.MultiQuery) error
	Publish(from *chord.Node, t *relation.Tuple) (*relation.Tuple, error)
}

// Cluster is a simulated overlay network running the continuous-join
// engine. All methods are safe for concurrent use.
type Cluster struct {
	net     *chord.Network
	eng     *engine.Engine
	catalog *Catalog
	durable Durability // nil: ops go straight to the engine
}

// NewCluster builds an overlay of cfg.Nodes peers with exact routing state
// and attaches the query-processing engine to every node.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cqjoin: cluster needs at least 1 node, got %d", cfg.Nodes)
	}
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("cqjoin: cluster needs a catalog")
	}
	net := chord.New(chord.Config{})
	net.AddNodes("peer", cfg.Nodes)
	eng := engine.New(net, cfg.Catalog, engine.Config{
		Algorithm:         cfg.Algorithm,
		Strategy:          cfg.Strategy,
		UseJFRT:           cfg.UseJFRT,
		ReplicationFactor: cfg.ReplicationFactor,
		Window:            cfg.Window,
		Seed:              cfg.Seed,
		HotKeyThreshold:   cfg.HotKeyThreshold,
		HotKeyReplicas:    cfg.HotKeyReplicas,
		HotKeyWindow:      cfg.HotKeyWindow,
	})
	return &Cluster{net: net, eng: eng, catalog: cfg.Catalog}, nil
}

// Size returns the number of alive peers.
func (c *Cluster) Size() int { return c.net.Size() }

// Node returns peer i (in ring order, modulo the overlay size).
func (c *Cluster) Node(i int) *Node {
	nodes := c.net.Nodes()
	return &Node{c: c, n: nodes[((i%len(nodes))+len(nodes))%len(nodes)]}
}

// NodeByKey returns the alive peer with the given key, or nil.
func (c *Cluster) NodeByKey(key string) *Node {
	n := c.net.NodeByKey(key)
	if n == nil {
		return nil
	}
	return &Node{c: c, n: n}
}

// Join adds a peer with the given key; ring state and stored items are
// handed off exactly as Chord prescribes, including any notifications
// stored while this key was offline.
func (c *Cluster) Join(key string) (*Node, error) {
	n, err := c.net.Join(key)
	if err != nil {
		return nil, err
	}
	c.eng.Attach(n)
	return &Node{c: c, n: n}, nil
}

// Overlay exposes the underlying chord overlay — for installing a custom
// delivery transport (multi-process deployments install a TCP transport
// here) or inspecting the ring. The simulated in-process transport stays
// in effect unless replaced.
func (c *Cluster) Overlay() *chord.Network { return c.net }

// Engine exposes the embedded query engine — durability layers replay a
// recovered log through it before the cluster serves traffic.
func (c *Cluster) Engine() *engine.Engine { return c.eng }

// SetDurable routes every subsequent mutating node operation through d
// (typically a recovered durable.Store), which applies it to the engine
// and logs it. Install before serving traffic; a nil d restores direct
// engine calls.
func (c *Cluster) SetDurable(d Durability) { c.durable = d }

// ExportHandoff removes peer n's movable engine state from this process
// and returns it as a wire-codable message addressed to n. Multi-process
// deployments call it when a membership change moves n's ownership to
// another process: delivering the message there re-homes the state through
// the engine's idempotent merge path. ok is false when n held nothing.
func (c *Cluster) ExportHandoff(n *chord.Node) (msg chord.Message, ok bool) {
	return c.eng.ExportHandoff(n)
}

// OnNotify installs a callback invoked for every delivered notification.
func (c *Cluster) OnNotify(fn func(Notification)) { c.eng.OnNotify(fn) }

// Notifications returns every notification delivered so far.
func (c *Cluster) Notifications() []Notification { return c.eng.Notifications() }

// Traffic exposes the overlay-hop ledger for measurement.
func (c *Cluster) Traffic() *Traffic { return c.net.Traffic() }

// FilteringLoad summarizes the per-node filtering load (TF) distribution.
func (c *Cluster) FilteringLoad() Distribution {
	return metrics.SummarizeInt(c.eng.FilteringLoads())
}

// EvaluatorLoad summarizes the filtering-load distribution over evaluator
// nodes only — the population hot-key sharding rebalances. Its Max and
// Gini are what the daemon's stats op and the skewed bench cell report.
func (c *Cluster) EvaluatorLoad() Distribution {
	return metrics.SummarizeInt(c.eng.RoleLoads(metrics.Evaluator, false))
}

// HotKeys lists the currently promoted value-level inputs, sorted by
// input; nil when hot-key sharding is disabled.
func (c *Cluster) HotKeys() []HotKeyState { return c.eng.HotKeys() }

// StorageLoad summarizes the per-node storage load (TS) distribution.
func (c *Cluster) StorageLoad() Distribution {
	return metrics.SummarizeInt(c.eng.StorageLoads())
}

// EvictExpired applies the sliding window, dropping stored tuples that
// have fallen out of it.
func (c *Cluster) EvictExpired() { c.eng.EvictExpired() }

// Node is one peer of the cluster.
type Node struct {
	c *Cluster
	n *chord.Node
}

// Key returns the peer's unique key.
func (p *Node) Key() string { return p.n.Key() }

// Alive reports whether the peer is still part of the overlay.
func (p *Node) Alive() bool { return p.n.Alive() }

// Leave disconnects the peer voluntarily; its stored items (including
// notifications held for offline subscribers) move to its successor.
func (p *Node) Leave() { p.c.net.Leave(p.n) }

// Fail crashes the peer abruptly, losing its stored items.
func (p *Node) Fail() { p.c.net.Fail(p.n) }

// Subscribe parses and indexes a continuous query posed by this peer. The
// returned query carries its unique key; notifications for it reference
// that key.
func (p *Node) Subscribe(sql string) (*Query, error) {
	q, err := query.Parse(p.c.catalog, sql)
	if err != nil {
		return nil, err
	}
	if d := p.c.durable; d != nil {
		return d.Subscribe(p.n, q)
	}
	return p.c.eng.Subscribe(p.n, q)
}

// SubscribeMulti parses and indexes a continuous multi-way chain join
// (k >= 2 relations joined along a chain of equalities). The cluster must
// run an algorithm that stores tuples at the value level (SAI or DAIQ).
func (p *Node) SubscribeMulti(sql string) (*MultiQuery, error) {
	mq, err := query.ParseMulti(p.c.catalog, sql)
	if err != nil {
		return nil, err
	}
	if d := p.c.durable; d != nil {
		return d.SubscribeMulti(p.n, mq)
	}
	return p.c.eng.SubscribeMulti(p.n, mq)
}

// Unsubscribe retracts a continuous query previously returned by this
// peer's Subscribe: the query is removed from its rewriters and its stored
// rewrites are purged from the evaluators, so future tuples no longer
// trigger it.
func (p *Node) Unsubscribe(q *Query) error {
	if d := p.c.durable; d != nil {
		return d.Unsubscribe(p.n, q)
	}
	return p.c.eng.Unsubscribe(p.n, q)
}

// UnsubscribeMulti retracts a continuous multi-way chain join previously
// returned by this peer's SubscribeMulti: the chain is removed from its
// rewriters and its partial matches are purged from every pipeline stage.
func (p *Node) UnsubscribeMulti(mq *MultiQuery) error {
	if d := p.c.durable; d != nil {
		return d.UnsubscribeMulti(p.n, mq)
	}
	return p.c.eng.UnsubscribeMulti(p.n, mq)
}

// Publish inserts a tuple given as Go values (string or numeric); see
// PublishTuple for pre-built tuples. The stamped tuple is returned.
func (p *Node) Publish(rel string, values ...interface{}) (*Tuple, error) {
	schema := p.c.catalog.Lookup(rel)
	if schema == nil {
		return nil, fmt.Errorf("cqjoin: unknown relation %s", rel)
	}
	vals := make([]Value, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case string:
			vals[i] = S(x)
		case float64:
			vals[i] = N(x)
		case float32:
			vals[i] = N(float64(x))
		case int:
			vals[i] = N(float64(x))
		case int32:
			vals[i] = N(float64(x))
		case int64:
			vals[i] = N(float64(x))
		case Value:
			vals[i] = x
		default:
			return nil, fmt.Errorf("cqjoin: unsupported value type %T for %s", v, rel)
		}
	}
	t, err := relation.NewTuple(schema, vals...)
	if err != nil {
		return nil, err
	}
	return p.PublishTuple(t)
}

// PublishTuple inserts a pre-built tuple.
func (p *Node) PublishTuple(t *Tuple) (*Tuple, error) {
	if d := p.c.durable; d != nil {
		return d.Publish(p.n, t)
	}
	return p.c.eng.Publish(p.n, t)
}
