package query

import (
	"testing"
)

// FuzzParser feeds arbitrary byte strings to both parsers. The contract:
// never panic, never hang, and for every accepted query the canonical text
// must re-parse to an equivalent query (stable condition key and
// equivalent-condition grouping would otherwise silently break — queries
// travel over the wire as SQL text and are re-parsed on arrival).
func FuzzParser(f *testing.F) {
	seeds := []string{
		`SELECT R.A, S.D FROM R, S WHERE R.B = S.E`,
		`SELECT R.B, S.E FROM R, S WHERE R.A = S.D AND S.F >= 1`,
		`SELECT R.A FROM R, S WHERE 2 * R.B = S.E + 1`,
		`SELECT R.A FROM R, S WHERE 2 * R.B + R.C = S.E * S.F AND S.D >= 1`,
		`SELECT Document.Title, Authors.Name FROM Document, Authors WHERE Document.AuthorId = Authors.Id`,
		`SELECT R.A, S.D, T.G FROM R, S, T WHERE R.B = S.E AND S.F = T.H`,
		`SELECT FROM WHERE`,
		`SELECT R.A FROM R, S WHERE R.B = `,
		`SELECT R.A FROM R, S WHERE R.B = S.E AND`,
		`select r.a from r, s where r.b = s.e`,
		`SELECT R.A FROM R, S WHERE R.B = R.B`,
		`SELECT R.A FROM R, S WHERE 0 * R.B = S.E`,
		`SELECT R.A FROM R, S WHERE R.B = S.E OR R.C = S.F`,
		"SELECT R.A FROM R, S WHERE R.B = S.E\x00",
		`SELECT R.A FROM R, S WHERE R.B/0 = S.E",`,
		`𝕊ELECT ℝ.A FROM R, S WHERE R.B = S.E`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	catalog := testCatalog()
	f.Fuzz(func(t *testing.T, sql string) {
		q, err := Parse(catalog, sql)
		if err == nil {
			q2, err2 := Parse(catalog, q.Text())
			if err2 != nil {
				t.Fatalf("canonical text rejected: Parse(%q) ok, re-Parse(%q): %v", sql, q.Text(), err2)
			}
			if q.ConditionKey() != q2.ConditionKey() {
				t.Fatalf("condition key unstable: %q -> %q vs %q", sql, q.ConditionKey(), q2.ConditionKey())
			}
		}
		mq, err := ParseMulti(catalog, sql)
		if err == nil {
			if _, err2 := ParseMulti(catalog, mq.Text()); err2 != nil {
				t.Fatalf("canonical multi text rejected: ParseMulti(%q) ok, re-parse(%q): %v", sql, mq.Text(), err2)
			}
		}
	})
}
