package query

import (
	"fmt"
	"strings"

	"cqjoin/internal/relation"
)

// This file implements the multi-way extension the thesis names as future
// work (Chapter 7) and the authors later published as "Continuous
// Multi-Way Joins over Distributed Hash Tables": continuous equi-join
// queries over k >= 2 relations whose join graph forms a chain,
//
//	SELECT ... FROM R1, ..., Rk
//	WHERE e1(R1) = f1(R2) AND e2(R2) = f2(R3) AND ... [AND pred ...]
//
// A MultiQuery is evaluated by the pipeline generalization of SAI: it is
// indexed under an endpoint relation's join attribute; each matching tuple
// strips one relation off the chain and reindexes the remainder at the
// value level, until a complete combination produces a notification.

// Link is one edge of the join chain: an equality between an expression
// over the chain's i-th relation (L) and one over its (i+1)-th (R). Both
// sides must be invertible single-attribute expressions (type T1 per side).
type Link struct {
	L, R Expr
}

// MultiQuery is a continuous chain equi-join over k relations. Build one
// with ParseMulti; attach identity with WithIdentity before indexing.
type MultiQuery struct {
	key          string
	subscriber   string
	subscriberIP string
	insT         int64

	sel     []Attr
	rels    []*relation.Schema // pipeline order; links[i] joins rels[i] with rels[i+1]
	links   []Link
	filters []Predicate
	text    string
}

// ParseMulti compiles a chain equi-join over two or more relations. The
// cross-relation equalities in the WHERE clause must connect the FROM
// relations into a single chain (every relation in at most two join
// conditions, no cycles); remaining conjuncts become selection predicates
// over single relations. Two-relation inputs are accepted and behave like
// the two-way Parse.
func ParseMulti(catalog *relation.Catalog, sql string) (*MultiQuery, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, catalog: catalog, text: sql}
	mq, err := p.parseMultiQuery()
	if err != nil {
		return nil, err
	}
	return mq, nil
}

// MustParseMulti is ParseMulti that panics on error.
func MustParseMulti(catalog *relation.Catalog, sql string) *MultiQuery {
	mq, err := ParseMulti(catalog, sql)
	if err != nil {
		panic(err)
	}
	return mq
}

func (p *parser) parseMultiQuery() (*MultiQuery, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	selStart := p.pos
	for !p.atEOF() {
		t := p.peek()
		if t.kind == tokIdent && strings.EqualFold(t.text, "from") {
			break
		}
		p.pos++
	}
	selEnd := p.pos
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if err := p.parseFromN(); err != nil {
		return nil, err
	}
	fromEnd := p.pos
	p.pos = selStart
	sel, err := p.parseSelectList(selEnd)
	if err != nil {
		return nil, err
	}
	p.pos = fromEnd
	if err := p.expectKeyword("WHERE"); err != nil {
		return nil, err
	}
	mq, err := p.parseMultiWhere(sel)
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("query: trailing input at %s", p.peek())
	}
	mq.text = p.text
	return mq, nil
}

// parseFromN reads two or more comma-separated relation references.
func (p *parser) parseFromN() error {
	p.aliases = make(map[string]*relation.Schema, 3)
	for {
		t := p.next()
		if t.kind != tokIdent {
			return fmt.Errorf("query: expected relation name, found %s", t)
		}
		schema := p.catalog.Lookup(t.text)
		if schema == nil {
			return fmt.Errorf("query: unknown relation %s", t.text)
		}
		alias := t.text
		if p.keyword("AS") {
			at := p.next()
			if at.kind != tokIdent {
				return fmt.Errorf("query: expected alias after AS, found %s", at)
			}
			alias = at.text
		} else if t2 := p.peek(); t2.kind == tokIdent && !reservedWords[strings.ToLower(t2.text)] {
			alias = p.next().text
		}
		if _, dup := p.aliases[alias]; dup {
			return fmt.Errorf("query: duplicate alias %s", alias)
		}
		p.aliases[alias] = schema
		if !p.symbol(",") {
			break
		}
	}
	if len(p.aliases) < 2 {
		return fmt.Errorf("query: a join needs at least two FROM relations")
	}
	seen := make(map[string]bool, len(p.aliases))
	for _, s := range p.aliases {
		if seen[s.Name()] {
			return fmt.Errorf("query: self-join of %s is not supported", s.Name())
		}
		seen[s.Name()] = true
	}
	return nil
}

// parseMultiWhere splits the conjuncts into chain links and selection
// predicates, then orders the relations along the chain.
func (p *parser) parseMultiWhere(sel []Attr) (*MultiQuery, error) {
	type edge struct {
		relL, relR string
		l, r       Expr
	}
	var edges []edge
	var filters []Predicate
	for {
		l, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		t := p.next()
		if t.kind != tokSymbol {
			return nil, fmt.Errorf("query: expected comparison operator, found %s", t)
		}
		op := CmpOp(t.text)
		switch op {
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		default:
			return nil, fmt.Errorf("query: unknown comparison operator %q", t.text)
		}
		r, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		lRels, rRels := Relations(l), Relations(r)
		switch {
		case len(lRels) == 1 && len(rRels) == 1 && lRels[0] != rRels[0]:
			if op != OpEq {
				return nil, fmt.Errorf("query: cross-relation comparison %s %s %s must be an equality", l, op, r)
			}
			edges = append(edges, edge{relL: lRels[0], relR: rRels[0], l: l, r: r})
		case len(lRels)+len(rRels) == 0:
			return nil, fmt.Errorf("query: constant predicate %s %s %s", l, op, r)
		default:
			rels := append(lRels, rRels...)
			rel := rels[0]
			for _, rr := range rels {
				if rr != rel {
					return nil, fmt.Errorf("query: predicate %s %s %s mixes relations %s and %s", l, op, r, rel, rr)
				}
			}
			filters = append(filters, Predicate{Rel: rel, Op: op, L: l, R: r})
		}
		if !p.keyword("AND") {
			break
		}
	}

	// The join edges must connect all FROM relations into one chain.
	relCount := len(p.aliases)
	if len(edges) != relCount-1 {
		return nil, fmt.Errorf("query: %d relations need exactly %d join conditions, got %d",
			relCount, relCount-1, len(edges))
	}
	adj := make(map[string][]int) // relation -> edge indexes
	for i, e := range edges {
		adj[e.relL] = append(adj[e.relL], i)
		adj[e.relR] = append(adj[e.relR], i)
	}
	var endpoints []string
	for rel, es := range adj {
		switch len(es) {
		case 1:
			endpoints = append(endpoints, rel)
		case 2:
		default:
			return nil, fmt.Errorf("query: relation %s appears in %d join conditions; only chains are supported", rel, len(es))
		}
	}
	if len(adj) != relCount || (relCount > 1 && len(endpoints) != 2) {
		return nil, fmt.Errorf("query: join conditions do not form a single chain over the FROM relations")
	}
	// Walk the chain from the lexicographically smaller endpoint for a
	// canonical orientation; the engine may reverse it when indexing.
	start := endpoints[0]
	if endpoints[1] < start {
		start = endpoints[1]
	}
	var mq MultiQuery
	mq.sel = sel
	mq.filters = filters
	used := make([]bool, len(edges))
	cur := start
	mq.rels = append(mq.rels, p.schemaOf(cur))
	for len(mq.rels) < relCount {
		advanced := false
		for i, e := range edges {
			if used[i] {
				continue
			}
			var lExpr, rExpr Expr
			var next string
			switch cur {
			case e.relL:
				lExpr, rExpr, next = e.l, e.r, e.relR
			case e.relR:
				lExpr, rExpr, next = e.r, e.l, e.relL
			default:
				continue
			}
			used[i] = true
			if !Invertible(lExpr) || !Invertible(rExpr) {
				return nil, fmt.Errorf("query: chain condition %s = %s is not invertible (type T2); multi-way evaluation needs T1 sides", e.l, e.r)
			}
			mq.links = append(mq.links, Link{L: lExpr, R: rExpr})
			mq.rels = append(mq.rels, p.schemaOf(next))
			cur = next
			advanced = true
			break
		}
		if !advanced {
			return nil, fmt.Errorf("query: join conditions do not form a single chain over the FROM relations")
		}
	}
	for _, a := range mq.sel {
		if mq.relIndex(a.Rel) < 0 {
			return nil, fmt.Errorf("query: SELECT references %s, not a FROM relation", a)
		}
	}
	return &mq, nil
}

// WithIdentity returns a copy carrying the subscriber identity and Key(q).
func (mq *MultiQuery) WithIdentity(subscriberKey, subscriberIP string, seq int) *MultiQuery {
	cp := *mq
	cp.subscriber = subscriberKey
	cp.subscriberIP = subscriberIP
	cp.key = fmt.Sprintf("%s#%d", subscriberKey, seq)
	return &cp
}

// WithInsT returns a copy stamped with insertion time insT.
func (mq *MultiQuery) WithInsT(insT int64) *MultiQuery {
	cp := *mq
	cp.insT = insT
	return &cp
}

// WithRestoredIdentity returns a copy carrying a previously assigned key
// and subscriber identity, used when a query is decoded from its wire
// form.
func (mq *MultiQuery) WithRestoredIdentity(key, subscriberKey, subscriberIP string) *MultiQuery {
	cp := *mq
	cp.key = key
	cp.subscriber = subscriberKey
	cp.subscriberIP = subscriberIP
	return &cp
}

// Key returns Key(q), or "" before WithIdentity.
func (mq *MultiQuery) Key() string { return mq.key }

// Subscriber returns the key of the node that posed the query.
func (mq *MultiQuery) Subscriber() string { return mq.subscriber }

// SubscriberIP returns the subscriber's address at submission time.
func (mq *MultiQuery) SubscriberIP() string { return mq.subscriberIP }

// InsT returns the insertion time.
func (mq *MultiQuery) InsT() int64 { return mq.insT }

// Text returns the original SQL text.
func (mq *MultiQuery) Text() string { return mq.text }

// Select returns the projection list.
func (mq *MultiQuery) Select() []Attr { return append([]Attr(nil), mq.sel...) }

// Arity returns the number of joined relations k.
func (mq *MultiQuery) Arity() int { return len(mq.rels) }

// Rels returns the relations in pipeline order.
func (mq *MultiQuery) Rels() []*relation.Schema { return append([]*relation.Schema(nil), mq.rels...) }

// Links returns the chain's join conditions; Links()[i] relates Rels()[i]
// to Rels()[i+1].
func (mq *MultiQuery) Links() []Link { return append([]Link(nil), mq.links...) }

// Filters returns the selection predicates.
func (mq *MultiQuery) Filters() []Predicate { return append([]Predicate(nil), mq.filters...) }

// Reverse returns the query with the pipeline orientation flipped — the
// other endpoint becomes the index relation.
func (mq *MultiQuery) Reverse() *MultiQuery {
	cp := *mq
	cp.rels = make([]*relation.Schema, len(mq.rels))
	cp.links = make([]Link, len(mq.links))
	for i, r := range mq.rels {
		cp.rels[len(mq.rels)-1-i] = r
	}
	for i, l := range mq.links {
		cp.links[len(mq.links)-1-i] = Link{L: l.R, R: l.L}
	}
	return &cp
}

// relIndex returns the pipeline position of a relation, or -1.
func (mq *MultiQuery) relIndex(rel string) int {
	for i, r := range mq.rels {
		if r.Name() == rel {
			return i
		}
	}
	return -1
}

// IndexAttr returns the join attribute of the pipeline's first relation —
// the attribute the query is indexed under.
func (mq *MultiQuery) IndexAttr() (string, error) {
	attrs := Attrs(mq.links[0].L)
	if len(attrs) != 1 {
		return "", fmt.Errorf("query: index side of %q references %d attributes", mq.ConditionKey(), len(attrs))
	}
	return attrs[0].Name, nil
}

// StageWant computes where the pipeline continues after relation stage-1
// matched tuple t: the relation, the single join attribute, and the value
// that attribute must take. stage counts matched relations so far
// (1 <= stage < Arity; t belongs to Rels()[stage-1]).
func (mq *MultiQuery) StageWant(stage int, t *relation.Tuple) (rel, attr string, val relation.Value, err error) {
	if stage < 1 || stage >= len(mq.rels) {
		return "", "", relation.Value{}, fmt.Errorf("query: stage %d out of range [1,%d)", stage, len(mq.rels))
	}
	link := mq.links[stage-1]
	v, err := link.L.Eval(t)
	if err != nil {
		return "", "", relation.Value{}, err
	}
	want, err := Invert(link.R, v)
	if err != nil {
		return "", "", relation.Value{}, err
	}
	attrs := Attrs(link.R)
	if len(attrs) != 1 {
		return "", "", relation.Value{}, fmt.Errorf("query: non-T1 link at stage %d", stage)
	}
	return mq.rels[stage].Name(), attrs[0].Name, want, nil
}

// FiltersPass reports whether the tuple satisfies the predicates over its
// relation.
func (mq *MultiQuery) FiltersPass(t *relation.Tuple) (bool, error) {
	for _, f := range mq.filters {
		if f.Rel != t.Relation() {
			continue
		}
		ok, err := f.Eval(t)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// NeededAttrs returns the attributes of one relation required by the
// SELECT list, its chain links and its selection predicates.
func (mq *MultiQuery) NeededAttrs(rel string) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(a Attr) {
		if a.Rel == rel && !seen[a.Name] {
			seen[a.Name] = true
			out = append(out, a.Name)
		}
	}
	for _, a := range mq.sel {
		add(a)
	}
	for _, l := range mq.links {
		for _, a := range Attrs(l.L) {
			add(a)
		}
		for _, a := range Attrs(l.R) {
			add(a)
		}
	}
	for _, f := range mq.filters {
		for _, a := range Attrs(f.L) {
			add(a)
		}
		for _, a := range Attrs(f.R) {
			add(a)
		}
	}
	return out
}

// ProjectNotification computes the SELECT projection over one matched
// tuple per relation, aligned with Rels().
func (mq *MultiQuery) ProjectNotification(tuples []*relation.Tuple) ([]relation.Value, error) {
	if len(tuples) != len(mq.rels) {
		return nil, fmt.Errorf("query: combination of %d tuples for %d relations", len(tuples), len(mq.rels))
	}
	byRel := make(map[string]*relation.Tuple, len(tuples))
	for i, t := range tuples {
		if t.Relation() != mq.rels[i].Name() {
			return nil, fmt.Errorf("query: tuple %d is of %s, want %s", i, t.Relation(), mq.rels[i].Name())
		}
		byRel[t.Relation()] = t
	}
	out := make([]relation.Value, len(mq.sel))
	for i, a := range mq.sel {
		v, err := byRel[a.Rel].Value(a.Name)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// ConditionKey renders the chain canonically for grouping.
func (mq *MultiQuery) ConditionKey() string {
	parts := make([]string, len(mq.links))
	for i, l := range mq.links {
		parts[i] = l.L.String() + " = " + l.R.String()
	}
	return strings.Join(parts, " AND ")
}

// String renders the query's SQL text.
func (mq *MultiQuery) String() string {
	if mq.text != "" {
		return mq.text
	}
	return mq.ConditionKey()
}
