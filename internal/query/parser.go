package query

import (
	"fmt"
	"strings"

	"cqjoin/internal/relation"
)

// Parse compiles a continuous two-way equi-join query in the SQL subset of
// Section 3.2 against the given catalog:
//
//	SELECT D.Title, D.Conference
//	FROM Document AS D, Authors AS A
//	WHERE D.AuthorId = A.Id AND A.Surname = 'Smith'
//
// Exactly one comparison in the WHERE clause must be an equality relating
// expressions over the two different FROM relations — the join condition.
// Every other conjunct must reference a single relation and becomes a
// selection predicate. Attribute references must be qualified
// (alias.attribute); string literals use single or double quotes.
func Parse(catalog *relation.Catalog, sql string) (*Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, catalog: catalog, text: sql}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error, for literals in tests and
// examples.
func MustParse(catalog *relation.Catalog, sql string) *Query {
	q, err := Parse(catalog, sql)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks    []token
	pos     int
	catalog *relation.Catalog
	text    string
	aliases map[string]*relation.Schema // alias (and relation name) -> schema
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

// keyword consumes the next token when it is the given keyword
// (case-insensitive) and reports whether it did.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("query: expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.pos++
		return nil
	}
	return fmt.Errorf("query: expected %q, found %s", sym, t)
}

func (p *parser) symbol(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.pos++
		return true
	}
	return false
}

var reservedWords = map[string]bool{"select": true, "from": true, "where": true, "and": true, "as": true}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	// The FROM clause defines aliases the SELECT list needs, so scan ahead:
	// record the token range of the select list, parse FROM, then return.
	selStart := p.pos
	depth := 0
	for !p.atEOF() {
		t := p.peek()
		if t.kind == tokIdent && strings.EqualFold(t.text, "from") && depth == 0 {
			break
		}
		if t.kind == tokSymbol && t.text == "(" {
			depth++
		}
		if t.kind == tokSymbol && t.text == ")" {
			depth--
		}
		p.pos++
	}
	selEnd := p.pos
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if err := p.parseFrom(); err != nil {
		return nil, err
	}
	fromEnd := p.pos

	// Parse the recorded select list now that aliases are known.
	p.pos = selStart
	sel, err := p.parseSelectList(selEnd)
	if err != nil {
		return nil, err
	}
	p.pos = fromEnd

	if err := p.expectKeyword("WHERE"); err != nil {
		return nil, err
	}
	q, err := p.parseWhere(sel)
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("query: trailing input at %s", p.peek())
	}
	q.text = p.text
	return q, nil
}

func (p *parser) parseSelectList(end int) ([]Attr, error) {
	var sel []Attr
	for {
		if p.pos >= end {
			return nil, fmt.Errorf("query: empty or malformed SELECT list")
		}
		a, err := p.parseQualifiedAttr()
		if err != nil {
			return nil, err
		}
		sel = append(sel, a)
		if p.pos >= end {
			return sel, nil
		}
		if err := p.expectSymbol(","); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseFrom() error {
	p.aliases = make(map[string]*relation.Schema, 2)
	for i := 0; i < 2; i++ {
		t := p.next()
		if t.kind != tokIdent {
			return fmt.Errorf("query: expected relation name, found %s", t)
		}
		schema := p.catalog.Lookup(t.text)
		if schema == nil {
			return fmt.Errorf("query: unknown relation %s", t.text)
		}
		alias := t.text
		if p.keyword("AS") {
			at := p.next()
			if at.kind != tokIdent {
				return fmt.Errorf("query: expected alias after AS, found %s", at)
			}
			alias = at.text
		} else if t2 := p.peek(); t2.kind == tokIdent && !reservedWords[strings.ToLower(t2.text)] {
			alias = p.next().text
		}
		if _, dup := p.aliases[alias]; dup {
			return fmt.Errorf("query: duplicate alias %s", alias)
		}
		p.aliases[alias] = schema
		if i == 0 {
			if err := p.expectSymbol(","); err != nil {
				return fmt.Errorf("query: a two-way join needs two FROM relations: %w", err)
			}
		}
	}
	// Self-joins would need tuple provenance we don't model; the paper's
	// queries always join two distinct relations.
	seen := make(map[string]bool, 2)
	for _, s := range p.aliases {
		if seen[s.Name()] {
			return fmt.Errorf("query: self-join of %s is not supported", s.Name())
		}
		seen[s.Name()] = true
	}
	return nil
}

func (p *parser) parseQualifiedAttr() (Attr, error) {
	t := p.next()
	if t.kind != tokIdent {
		return Attr{}, fmt.Errorf("query: expected alias.attribute, found %s", t)
	}
	if err := p.expectSymbol("."); err != nil {
		return Attr{}, fmt.Errorf("query: attribute references must be qualified: %w", err)
	}
	at := p.next()
	if at.kind != tokIdent {
		return Attr{}, fmt.Errorf("query: expected attribute after %s., found %s", t.text, at)
	}
	schema, ok := p.aliases[t.text]
	if !ok {
		return Attr{}, fmt.Errorf("query: unknown alias %s", t.text)
	}
	if !schema.HasAttr(at.text) {
		return Attr{}, fmt.Errorf("query: relation %s has no attribute %s", schema.Name(), at.text)
	}
	return Attr{Rel: schema.Name(), Name: at.text}, nil
}

func (p *parser) parseWhere(sel []Attr) (*Query, error) {
	type cmp struct {
		op   CmpOp
		l, r Expr
	}
	var cmps []cmp
	for {
		l, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		t := p.next()
		if t.kind != tokSymbol {
			return nil, fmt.Errorf("query: expected comparison operator, found %s", t)
		}
		op := CmpOp(t.text)
		switch op {
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		default:
			return nil, fmt.Errorf("query: unknown comparison operator %q", t.text)
		}
		r, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		cmps = append(cmps, cmp{op: op, l: l, r: r})
		if !p.keyword("AND") {
			break
		}
	}

	var q Query
	q.sel = sel
	joinFound := false
	for _, c := range cmps {
		lRels, rRels := Relations(c.l), Relations(c.r)
		switch {
		case len(lRels) == 1 && len(rRels) == 1 && lRels[0] != rRels[0]:
			if c.op != OpEq {
				return nil, fmt.Errorf("query: cross-relation comparison %s %s %s must be an equality", c.l, c.op, c.r)
			}
			if joinFound {
				return nil, fmt.Errorf("query: more than one join condition")
			}
			joinFound = true
			q.left, q.right = c.l, c.r
			q.leftRel = p.schemaOf(lRels[0])
			q.rightRel = p.schemaOf(rRels[0])
		case len(lRels)+len(rRels) == 0:
			return nil, fmt.Errorf("query: constant predicate %s %s %s", c.l, c.op, c.r)
		default:
			rels := append(lRels, rRels...)
			rel := rels[0]
			for _, r := range rels {
				if r != rel {
					return nil, fmt.Errorf("query: predicate %s %s %s mixes relations %s and %s", c.l, c.op, c.r, rel, r)
				}
			}
			q.filters = append(q.filters, Predicate{Rel: rel, Op: c.op, L: c.l, R: c.r})
		}
	}
	if !joinFound {
		return nil, fmt.Errorf("query: WHERE clause has no join condition")
	}
	// Validate SELECT references against the join relations.
	for _, a := range q.sel {
		if a.Rel != q.leftRel.Name() && a.Rel != q.rightRel.Name() {
			return nil, fmt.Errorf("query: SELECT references %s, not a FROM relation", a)
		}
	}
	return &q, nil
}

func (p *parser) schemaOf(rel string) *relation.Schema {
	for _, s := range p.aliases {
		if s.Name() == rel {
			return s
		}
	}
	return nil
}

// parseExpr parses + and - over terms.
func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.pos++
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: t.text[0], L: l, R: r}
			continue
		}
		return l, nil
	}
}

// parseTerm parses * and / over factors.
func (p *parser) parseTerm() (Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/") {
			p.pos++
			r, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: t.text[0], L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseFactor() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.pos++
		return Const{Val: relation.N(t.num)}, nil
	case t.kind == tokString:
		p.pos++
		return Const{Val: relation.S(t.text)}, nil
	case t.kind == tokSymbol && t.text == "-":
		p.pos++
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return Neg{X: inner}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.pos++
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case t.kind == tokIdent:
		return p.parseQualifiedAttr()
	default:
		return nil, fmt.Errorf("query: expected expression, found %s", t)
	}
}
