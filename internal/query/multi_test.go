package query

import (
	"strings"
	"testing"

	"cqjoin/internal/relation"
)

func multiCatalog() *relation.Catalog {
	return relation.MustCatalog(
		relation.MustSchema("A", "x", "y", "z"),
		relation.MustSchema("B", "x", "y", "z"),
		relation.MustSchema("C", "x", "y", "z"),
		relation.MustSchema("D", "x", "y", "z"),
	)
}

func TestParseMultiThreeWayChain(t *testing.T) {
	mq, err := ParseMulti(multiCatalog(), `
		SELECT A.z, B.z, C.z FROM A, B, C
		WHERE A.x = B.y AND B.x = C.y AND C.z >= 1`)
	if err != nil {
		t.Fatalf("ParseMulti: %v", err)
	}
	if mq.Arity() != 3 {
		t.Fatalf("arity = %d", mq.Arity())
	}
	rels := mq.Rels()
	// Canonical orientation starts at the lexicographically smaller
	// endpoint (A).
	if rels[0].Name() != "A" || rels[1].Name() != "B" || rels[2].Name() != "C" {
		t.Fatalf("pipeline order: %v %v %v", rels[0].Name(), rels[1].Name(), rels[2].Name())
	}
	if len(mq.Links()) != 2 {
		t.Fatalf("links = %d", len(mq.Links()))
	}
	if len(mq.Filters()) != 1 {
		t.Fatalf("filters = %d", len(mq.Filters()))
	}
}

func TestParseMultiUnorderedConditions(t *testing.T) {
	// Conditions given out of chain order must still resolve.
	mq, err := ParseMulti(multiCatalog(), `
		SELECT A.z FROM C, A, B WHERE B.x = C.y AND A.x = B.y`)
	if err != nil {
		t.Fatalf("ParseMulti: %v", err)
	}
	rels := mq.Rels()
	if rels[0].Name() != "A" || rels[2].Name() != "C" {
		t.Fatalf("pipeline order wrong: %s..%s", rels[0].Name(), rels[2].Name())
	}
}

func TestParseMultiTwoWayCompatible(t *testing.T) {
	mq, err := ParseMulti(multiCatalog(), `SELECT A.z, B.z FROM A, B WHERE A.x = B.y`)
	if err != nil {
		t.Fatalf("ParseMulti: %v", err)
	}
	if mq.Arity() != 2 || len(mq.Links()) != 1 {
		t.Fatalf("two-way multi wrong: %d rels %d links", mq.Arity(), len(mq.Links()))
	}
}

func TestParseMultiErrors(t *testing.T) {
	cat := multiCatalog()
	cases := []struct{ name, sql, want string }{
		{"too few conditions", `SELECT A.z FROM A, B, C WHERE A.x = B.y`, "exactly 2 join conditions"},
		{"too many conditions", `SELECT A.z FROM A, B WHERE A.x = B.y AND A.y = B.x`, "exactly 1 join conditions"},
		{"star not chain", `SELECT A.z FROM A, B, C, D WHERE A.x = B.y AND A.y = C.y AND A.z = D.y`, "only chains"},
		{"disconnected", `SELECT A.z FROM A, B, C, D WHERE A.x = B.y AND C.x = D.y AND A.y = B.x`, ""},
		{"T2 link", `SELECT A.z FROM A, B, C WHERE A.x + A.y = B.y AND B.x = C.y`, "not invertible"},
		{"self join", `SELECT a1.z FROM A AS a1, A AS a2 WHERE a1.x = a2.y`, "self-join"},
		{"one relation", `SELECT A.z FROM A WHERE A.x = 1`, "at least two"},
		{"non-equality link", `SELECT A.z FROM A, B, C WHERE A.x < B.y AND B.x = C.y`, "equality"},
		{"bad select", `SELECT Z.z FROM A, B, C WHERE A.x = B.y AND B.x = C.y`, "unknown alias"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseMulti(cat, c.sql)
			if err == nil {
				t.Fatalf("accepted %q", c.sql)
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestMultiIdentityAndTimes(t *testing.T) {
	mq := MustParseMulti(multiCatalog(), `SELECT A.z FROM A, B WHERE A.x = B.y`)
	mq2 := mq.WithIdentity("n1", "ip1", 7).WithInsT(42)
	if mq2.Key() != "n1#7" || mq2.Subscriber() != "n1" || mq2.SubscriberIP() != "ip1" || mq2.InsT() != 42 {
		t.Fatalf("identity: %q %q %q %d", mq2.Key(), mq2.Subscriber(), mq2.SubscriberIP(), mq2.InsT())
	}
	if mq.Key() != "" {
		t.Fatal("WithIdentity mutated the original")
	}
}

func TestMultiReverse(t *testing.T) {
	mq := MustParseMulti(multiCatalog(), `SELECT A.z FROM A, B, C WHERE A.x = B.y AND B.x = C.y`)
	rev := mq.Reverse()
	if rev.Rels()[0].Name() != "C" || rev.Rels()[2].Name() != "A" {
		t.Fatalf("reverse order wrong: %v", rev.Rels())
	}
	// Reversed links swap sides: first reversed link is C/B.
	l := rev.Links()[0]
	if Relations(l.L)[0] != "C" || Relations(l.R)[0] != "B" {
		t.Fatalf("reversed link sides wrong: %s = %s", l.L, l.R)
	}
	// Double reverse is the identity.
	if rev.Reverse().ConditionKey() != mq.ConditionKey() {
		t.Fatal("double reverse changed the chain")
	}
}

func TestMultiStageWant(t *testing.T) {
	mq := MustParseMulti(multiCatalog(), `SELECT A.z FROM A, B, C WHERE 2 * A.x = B.y AND B.x = C.y + 1`)
	a := relation.MustSchema("A", "x", "y", "z")
	ta := relation.MustTuple(a, relation.N(3), relation.N(0), relation.N(0))
	rel, attr, val, err := mq.StageWant(1, ta)
	if err != nil {
		t.Fatalf("StageWant: %v", err)
	}
	// 2*A.x = 6 → B.y must be 6.
	if rel != "B" || attr != "y" || !val.Equal(relation.N(6)) {
		t.Fatalf("stage 1 want: %s.%s = %v", rel, attr, val)
	}
	b := relation.MustSchema("B", "x", "y", "z")
	tb := relation.MustTuple(b, relation.N(5), relation.N(6), relation.N(0))
	rel, attr, val, err = mq.StageWant(2, tb)
	if err != nil {
		t.Fatalf("StageWant: %v", err)
	}
	// B.x = 5 → C.y + 1 = 5 → C.y = 4.
	if rel != "C" || attr != "y" || !val.Equal(relation.N(4)) {
		t.Fatalf("stage 2 want: %s.%s = %v", rel, attr, val)
	}
	if _, _, _, err := mq.StageWant(3, tb); err == nil {
		t.Fatal("stage out of range accepted")
	}
}

func TestMultiIndexAttr(t *testing.T) {
	mq := MustParseMulti(multiCatalog(), `SELECT A.z FROM A, B WHERE 2 * A.x = B.y`)
	attr, err := mq.IndexAttr()
	if err != nil || attr != "x" {
		t.Fatalf("IndexAttr = %q, %v", attr, err)
	}
}

func TestMultiNeededAttrsAndProjection(t *testing.T) {
	mq := MustParseMulti(multiCatalog(), `
		SELECT A.z, C.z FROM A, B, C
		WHERE A.x = B.y AND B.x = C.y AND B.z >= 1`)
	if got := mq.NeededAttrs("B"); len(got) != 3 { // y, x, z
		t.Fatalf("B needed = %v", got)
	}
	if got := mq.NeededAttrs("A"); len(got) != 2 { // z, x
		t.Fatalf("A needed = %v", got)
	}
	a := relation.MustSchema("A", "x", "y", "z")
	b := relation.MustSchema("B", "x", "y", "z")
	c := relation.MustSchema("C", "x", "y", "z")
	combo := []*relation.Tuple{
		relation.MustTuple(a, relation.N(1), relation.N(0), relation.N(10)),
		relation.MustTuple(b, relation.N(2), relation.N(1), relation.N(20)),
		relation.MustTuple(c, relation.N(3), relation.N(2), relation.N(30)),
	}
	vals, err := mq.ProjectNotification(combo)
	if err != nil {
		t.Fatalf("ProjectNotification: %v", err)
	}
	if len(vals) != 2 || !vals[0].Equal(relation.N(10)) || !vals[1].Equal(relation.N(30)) {
		t.Fatalf("projection = %v", vals)
	}
	if _, err := mq.ProjectNotification(combo[:2]); err == nil {
		t.Fatal("short combination accepted")
	}
}

func TestMultiFiltersPass(t *testing.T) {
	mq := MustParseMulti(multiCatalog(), `SELECT A.z FROM A, B WHERE A.x = B.y AND B.z >= 5`)
	b := relation.MustSchema("B", "x", "y", "z")
	pass := relation.MustTuple(b, relation.N(0), relation.N(0), relation.N(9))
	fail := relation.MustTuple(b, relation.N(0), relation.N(0), relation.N(1))
	if ok, _ := mq.FiltersPass(pass); !ok {
		t.Fatal("passing tuple rejected")
	}
	if ok, _ := mq.FiltersPass(fail); ok {
		t.Fatal("failing tuple accepted")
	}
}

func TestMultiConditionKeyAndString(t *testing.T) {
	sql := `SELECT A.z FROM A, B, C WHERE A.x = B.y AND B.x = C.y`
	mq := MustParseMulti(multiCatalog(), sql)
	if !strings.Contains(mq.ConditionKey(), "A.x = B.y") {
		t.Fatalf("condition key = %q", mq.ConditionKey())
	}
	if mq.String() != sql {
		t.Fatalf("String = %q", mq.String())
	}
}
