package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens for the SQL subset.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators: , . ( ) + - * / = != < <= > >=
)

type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex splits a query string into tokens. Identifiers are case-preserving;
// keyword matching happens case-insensitively in the parser. String
// literals accept single or double quotes.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'' || c == '"':
			quote := input[i]
			j := i + 1
			for j < len(input) && input[j] != quote {
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("query: unterminated string literal at offset %d", i)
			}
			toks = append(toks, token{kind: tokString, text: input[i+1 : j], pos: i})
			i = j + 1
		case unicode.IsDigit(c):
			j := i
			for j < len(input) && (unicode.IsDigit(rune(input[j])) || input[j] == '.') {
				j++
			}
			text := input[i:j]
			n, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("query: bad number %q at offset %d", text, i)
			}
			toks = append(toks, token{kind: tokNumber, text: text, num: n, pos: i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: input[i:j], pos: i})
			i = j
		case strings.ContainsRune("!<>", c):
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{kind: tokSymbol, text: input[i : i+2], pos: i})
				i += 2
			} else if c == '!' {
				return nil, fmt.Errorf("query: stray '!' at offset %d", i)
			} else {
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
				i++
			}
		case strings.ContainsRune(",.()+-*/=", c):
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}
