// Package query implements the continuous-query language of Section 3.2:
// SQL two-way equi-joins of the form
//
//	SELECT R.A1, ..., S.B1, ... FROM R, S WHERE α = β [AND pred ...]
//
// where α is an expression over attributes of R (and constants) and β over
// attributes of S. Queries are classified as type T1 — each side involves a
// single attribute and the equality has a unique solution — or type T2
// (anything else), which only the DAI-V algorithm of Section 4.5 can
// evaluate.
package query

import (
	"fmt"
	"strings"

	"cqjoin/internal/relation"
)

// Expr is one side of a join condition, or a side of a selection predicate:
// an arithmetic/string expression over the attributes of a single relation
// and constants.
type Expr interface {
	// Eval computes the expression over the tuple's attribute values. The
	// tuple must belong to the relation the expression's attributes
	// reference.
	Eval(t *relation.Tuple) (relation.Value, error)
	// String renders the expression in SQL syntax.
	String() string
}

// Attr references attribute Name of relation Rel (alias-resolved).
type Attr struct {
	Rel  string
	Name string
}

// Eval returns the attribute's value in the tuple.
func (a Attr) Eval(t *relation.Tuple) (relation.Value, error) {
	if t.Relation() != a.Rel {
		return relation.Value{}, fmt.Errorf("query: attribute %s evaluated against tuple of %s", a, t.Relation())
	}
	return t.Value(a.Name)
}

// String renders Rel.Name.
func (a Attr) String() string { return a.Rel + "." + a.Name }

// Const is a literal value.
type Const struct {
	Val relation.Value
}

// Eval returns the literal.
func (c Const) Eval(*relation.Tuple) (relation.Value, error) { return c.Val, nil }

// String renders the literal in SQL syntax.
func (c Const) String() string {
	if c.Val.Kind() == relation.String {
		return "'" + c.Val.Str() + "'"
	}
	return c.Val.Canon()
}

// Binary is an arithmetic operation, or string concatenation for '+' over
// strings.
type Binary struct {
	Op   byte // one of + - * /
	L, R Expr
}

// Eval applies the operator to the operand values.
func (b Binary) Eval(t *relation.Tuple) (relation.Value, error) {
	l, err := b.L.Eval(t)
	if err != nil {
		return relation.Value{}, err
	}
	r, err := b.R.Eval(t)
	if err != nil {
		return relation.Value{}, err
	}
	return applyOp(b.Op, l, r)
}

// String renders the operation fully parenthesized.
func (b Binary) String() string {
	return fmt.Sprintf("(%s %c %s)", b.L, b.Op, b.R)
}

// Neg is unary numeric negation.
type Neg struct {
	X Expr
}

// Eval negates the operand.
func (n Neg) Eval(t *relation.Tuple) (relation.Value, error) {
	v, err := n.X.Eval(t)
	if err != nil {
		return relation.Value{}, err
	}
	if v.Kind() != relation.Number {
		return relation.Value{}, fmt.Errorf("query: negation of non-numeric value %s", v)
	}
	return relation.N(-v.Num()), nil
}

// String renders -expr.
func (n Neg) String() string { return "-" + n.X.String() }

func applyOp(op byte, l, r relation.Value) (relation.Value, error) {
	if op == '+' && l.Kind() == relation.String && r.Kind() == relation.String {
		return relation.S(l.Str() + r.Str()), nil
	}
	if l.Kind() != relation.Number || r.Kind() != relation.Number {
		return relation.Value{}, fmt.Errorf("query: operator %c over non-numeric operands %s, %s", op, l, r)
	}
	a, b := l.Num(), r.Num()
	switch op {
	case '+':
		return relation.N(a + b), nil
	case '-':
		return relation.N(a - b), nil
	case '*':
		return relation.N(a * b), nil
	case '/':
		if b == 0 {
			return relation.Value{}, fmt.Errorf("query: division by zero")
		}
		return relation.N(a / b), nil
	default:
		return relation.Value{}, fmt.Errorf("query: unknown operator %c", op)
	}
}

// Attrs returns every attribute occurrence in the expression, in
// left-to-right order (with repetitions).
func Attrs(e Expr) []Attr {
	var out []Attr
	walk(e, func(a Attr) { out = append(out, a) })
	return out
}

// Relations returns the distinct relation names referenced by e.
func Relations(e Expr) []string {
	seen := make(map[string]bool)
	var out []string
	walk(e, func(a Attr) {
		if !seen[a.Rel] {
			seen[a.Rel] = true
			out = append(out, a.Rel)
		}
	})
	return out
}

func walk(e Expr, f func(Attr)) {
	switch x := e.(type) {
	case Attr:
		f(x)
	case Binary:
		walk(x.L, f)
		walk(x.R, f)
	case Neg:
		walk(x.X, f)
	}
}

// ConstFold evaluates e when it contains no attribute references.
func ConstFold(e Expr) (relation.Value, bool) {
	if len(Attrs(e)) != 0 {
		return relation.Value{}, false
	}
	v, err := e.Eval(nil)
	if err != nil {
		return relation.Value{}, false
	}
	return v, true
}

// Invertible reports whether e is a single-attribute expression that can be
// solved for its attribute: a bare attribute, or a chain of +, -, *, /
// and negation where the other operand of every operation is constant
// (and multiplication/division by zero is excluded statically where the
// constant is known). This is the structural condition for one side of a
// type-T1 query: "equality α = β has a unique solution" (Section 3.2).
func Invertible(e Expr) bool {
	if len(Attrs(e)) != 1 {
		return false
	}
	return invertibleStruct(e)
}

func invertibleStruct(e Expr) bool {
	switch x := e.(type) {
	case Attr:
		return true
	case Neg:
		return invertibleStruct(x.X)
	case Binary:
		lc, lIsConst := ConstFold(x.L)
		rc, rIsConst := ConstFold(x.R)
		switch {
		case rIsConst:
			if rc.Kind() != relation.Number {
				return false // string concat is not invertible in general
			}
			if (x.Op == '*' || x.Op == '/') && rc.Num() == 0 {
				return false
			}
			return invertibleStruct(x.L)
		case lIsConst:
			if lc.Kind() != relation.Number {
				return false
			}
			if x.Op == '*' && lc.Num() == 0 {
				return false
			}
			return invertibleStruct(x.R)
		default:
			return false
		}
	default:
		return false
	}
}

// Invert solves e(x) = target for the single attribute x of e, returning
// the value x must take. It fails when e is not invertible, when the target
// has the wrong type, or when solving hits an arithmetic impossibility
// (e.g. c/x = 0). Rewriters use Invert to compute the value the load
// distributing attribute must take (valDA) from an incoming tuple's value
// of the other side.
func Invert(e Expr, target relation.Value) (relation.Value, error) {
	if len(Attrs(e)) != 1 {
		return relation.Value{}, fmt.Errorf("query: invert of multi-attribute expression %s", e)
	}
	return invert(e, target)
}

func invert(e Expr, target relation.Value) (relation.Value, error) {
	switch x := e.(type) {
	case Attr:
		return target, nil
	case Neg:
		if target.Kind() != relation.Number {
			return relation.Value{}, fmt.Errorf("query: invert negation with non-numeric target %s", target)
		}
		return invert(x.X, relation.N(-target.Num()))
	case Binary:
		if target.Kind() != relation.Number {
			return relation.Value{}, fmt.Errorf("query: invert %c with non-numeric target %s", x.Op, target)
		}
		tv := target.Num()
		if rc, ok := ConstFold(x.R); ok {
			if rc.Kind() != relation.Number {
				return relation.Value{}, fmt.Errorf("query: invert through string operand")
			}
			c := rc.Num()
			switch x.Op {
			case '+':
				return invert(x.L, relation.N(tv-c))
			case '-':
				return invert(x.L, relation.N(tv+c))
			case '*':
				if c == 0 {
					return relation.Value{}, fmt.Errorf("query: invert multiplication by zero")
				}
				return invert(x.L, relation.N(tv/c))
			case '/':
				return invert(x.L, relation.N(tv*c))
			}
		}
		if lc, ok := ConstFold(x.L); ok {
			if lc.Kind() != relation.Number {
				return relation.Value{}, fmt.Errorf("query: invert through string operand")
			}
			c := lc.Num()
			switch x.Op {
			case '+':
				return invert(x.R, relation.N(tv-c))
			case '-':
				return invert(x.R, relation.N(c-tv))
			case '*':
				if c == 0 {
					return relation.Value{}, fmt.Errorf("query: invert multiplication by zero")
				}
				return invert(x.R, relation.N(tv/c))
			case '/':
				if tv == 0 {
					return relation.Value{}, fmt.Errorf("query: invert c/x = 0 has no solution")
				}
				return invert(x.R, relation.N(c/tv))
			}
		}
		return relation.Value{}, fmt.Errorf("query: expression %s is not invertible", e)
	default:
		return relation.Value{}, fmt.Errorf("query: cannot invert %T", e)
	}
}

// Substitute replaces every attribute reference of relation rel in e with
// its value in tuple t, returning a new expression. It implements the
// rewriting step of Section 4.3.2: "each attribute of IndexR(q) in the
// Select and Where clause of q is replaced by its corresponding value".
func Substitute(e Expr, t *relation.Tuple) (Expr, error) {
	switch x := e.(type) {
	case Attr:
		if x.Rel == t.Relation() {
			v, err := t.Value(x.Name)
			if err != nil {
				return nil, err
			}
			return Const{Val: v}, nil
		}
		return x, nil
	case Const:
		return x, nil
	case Neg:
		inner, err := Substitute(x.X, t)
		if err != nil {
			return nil, err
		}
		return Neg{X: inner}, nil
	case Binary:
		l, err := Substitute(x.L, t)
		if err != nil {
			return nil, err
		}
		r, err := Substitute(x.R, t)
		if err != nil {
			return nil, err
		}
		return Binary{Op: x.Op, L: l, R: r}, nil
	default:
		return nil, fmt.Errorf("query: cannot substitute into %T", e)
	}
}

// CmpOp is a comparison operator in a selection predicate.
type CmpOp string

// Comparison operators supported in selection predicates. The join
// condition itself is always equality.
const (
	OpEq CmpOp = "="
	OpNe CmpOp = "!="
	OpLt CmpOp = "<"
	OpLe CmpOp = "<="
	OpGt CmpOp = ">"
	OpGe CmpOp = ">="
)

// Predicate is a selection predicate conjoined with the join condition,
// e.g. A.Surname = 'Smith' in the Section 3.2 example. Both sides reference
// at most the single relation Rel.
type Predicate struct {
	Rel  string
	Op   CmpOp
	L, R Expr
}

// Eval reports whether the tuple satisfies the predicate.
func (p Predicate) Eval(t *relation.Tuple) (bool, error) {
	l, err := p.L.Eval(t)
	if err != nil {
		return false, err
	}
	r, err := p.R.Eval(t)
	if err != nil {
		return false, err
	}
	return compare(p.Op, l, r)
}

// String renders the predicate in SQL syntax.
func (p Predicate) String() string {
	return fmt.Sprintf("%s %s %s", p.L, p.Op, p.R)
}

func compare(op CmpOp, l, r relation.Value) (bool, error) {
	if l.Kind() != r.Kind() {
		// Cross-type comparisons are false for =, true for !=, errors
		// otherwise.
		switch op {
		case OpEq:
			return false, nil
		case OpNe:
			return true, nil
		default:
			return false, fmt.Errorf("query: ordering comparison across types %s %s %s", l, op, r)
		}
	}
	var c int
	if l.Kind() == relation.String {
		c = strings.Compare(l.Str(), r.Str())
	} else {
		switch {
		case l.Num() < r.Num():
			c = -1
		case l.Num() > r.Num():
			c = 1
		}
	}
	switch op {
	case OpEq:
		return c == 0, nil
	case OpNe:
		return c != 0, nil
	case OpLt:
		return c < 0, nil
	case OpLe:
		return c <= 0, nil
	case OpGt:
		return c > 0, nil
	case OpGe:
		return c >= 0, nil
	default:
		return false, fmt.Errorf("query: unknown comparison %q", op)
	}
}
