package query

import (
	"math"
	"testing"
	"testing/quick"

	"cqjoin/internal/relation"
)

var exprSchema = relation.MustSchema("R", "A", "B", "C")

func exprTuple(a, b, c float64) *relation.Tuple {
	return relation.MustTuple(exprSchema, relation.N(a), relation.N(b), relation.N(c))
}

func TestAttrEval(t *testing.T) {
	tp := exprTuple(1, 2, 3)
	v, err := Attr{Rel: "R", Name: "B"}.Eval(tp)
	if err != nil || !v.Equal(relation.N(2)) {
		t.Fatalf("attr eval = %v, %v", v, err)
	}
	if _, err := (Attr{Rel: "S", Name: "B"}).Eval(tp); err == nil {
		t.Fatal("wrong-relation eval accepted")
	}
	if _, err := (Attr{Rel: "R", Name: "Z"}).Eval(tp); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestBinaryArithmetic(t *testing.T) {
	tp := exprTuple(6, 2, 0)
	cases := []struct {
		e    Expr
		want float64
	}{
		{Binary{'+', Attr{"R", "A"}, Attr{"R", "B"}}, 8},
		{Binary{'-', Attr{"R", "A"}, Attr{"R", "B"}}, 4},
		{Binary{'*', Attr{"R", "A"}, Attr{"R", "B"}}, 12},
		{Binary{'/', Attr{"R", "A"}, Attr{"R", "B"}}, 3},
		{Neg{Attr{"R", "A"}}, -6},
		{Binary{'+', Binary{'*', Const{relation.N(4)}, Attr{"R", "B"}}, Const{relation.N(8)}}, 16},
	}
	for _, c := range cases {
		v, err := c.e.Eval(tp)
		if err != nil {
			t.Fatalf("%s: %v", c.e, err)
		}
		if !v.Equal(relation.N(c.want)) {
			t.Fatalf("%s = %v, want %v", c.e, v, c.want)
		}
	}
}

func TestBinaryErrors(t *testing.T) {
	tp := exprTuple(6, 0, 0)
	if _, err := (Binary{'/', Attr{"R", "A"}, Attr{"R", "B"}}).Eval(tp); err == nil {
		t.Fatal("division by zero accepted")
	}
	s := relation.MustSchema("S", "X")
	st := relation.MustTuple(s, relation.S("txt"))
	if _, err := (Binary{'*', Attr{"S", "X"}, Const{relation.N(2)}}).Eval(st); err == nil {
		t.Fatal("string multiplication accepted")
	}
	if _, err := (Neg{Attr{"S", "X"}}).Eval(st); err == nil {
		t.Fatal("string negation accepted")
	}
}

func TestStringConcat(t *testing.T) {
	s := relation.MustSchema("S", "X")
	st := relation.MustTuple(s, relation.S("ab"))
	v, err := (Binary{'+', Attr{"S", "X"}, Const{relation.S("cd")}}).Eval(st)
	if err != nil || !v.Equal(relation.S("abcd")) {
		t.Fatalf("concat = %v, %v", v, err)
	}
}

func TestAttrsAndRelations(t *testing.T) {
	e := Binary{'+', Binary{'*', Const{relation.N(4)}, Attr{"R", "B"}}, Attr{"R", "C"}}
	attrs := Attrs(e)
	if len(attrs) != 2 || attrs[0].Name != "B" || attrs[1].Name != "C" {
		t.Fatalf("Attrs = %v", attrs)
	}
	rels := Relations(e)
	if len(rels) != 1 || rels[0] != "R" {
		t.Fatalf("Relations = %v", rels)
	}
}

func TestConstFold(t *testing.T) {
	v, ok := ConstFold(Binary{'*', Const{relation.N(3)}, Const{relation.N(4)}})
	if !ok || !v.Equal(relation.N(12)) {
		t.Fatalf("ConstFold = %v, %v", v, ok)
	}
	if _, ok := ConstFold(Attr{"R", "A"}); ok {
		t.Fatal("ConstFold folded an attribute")
	}
	if _, ok := ConstFold(Binary{'/', Const{relation.N(1)}, Const{relation.N(0)}}); ok {
		t.Fatal("ConstFold folded a division by zero")
	}
}

func TestInvertible(t *testing.T) {
	cases := []struct {
		e    Expr
		want bool
	}{
		{Attr{"R", "A"}, true},
		{Binary{'+', Attr{"R", "A"}, Const{relation.N(5)}}, true},
		{Binary{'-', Const{relation.N(5)}, Attr{"R", "A"}}, true},
		{Binary{'*', Const{relation.N(2)}, Attr{"R", "A"}}, true},
		{Neg{Attr{"R", "A"}}, true},
		{Binary{'*', Const{relation.N(0)}, Attr{"R", "A"}}, false},
		{Binary{'+', Attr{"R", "A"}, Attr{"R", "B"}}, false},
		{Binary{'*', Attr{"R", "A"}, Attr{"R", "A"}}, false},
		{Const{relation.N(1)}, false},
		{Binary{'+', Attr{"R", "A"}, Const{relation.S("x")}}, false},
	}
	for _, c := range cases {
		if got := Invertible(c.e); got != c.want {
			t.Errorf("Invertible(%s) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestInvertSolvesEquations(t *testing.T) {
	cases := []struct {
		e      Expr
		target float64
		want   float64
	}{
		{Attr{"R", "A"}, 7, 7},
		{Binary{'+', Attr{"R", "A"}, Const{relation.N(5)}}, 7, 2},
		{Binary{'-', Attr{"R", "A"}, Const{relation.N(5)}}, 7, 12},
		{Binary{'-', Const{relation.N(5)}, Attr{"R", "A"}}, 7, -2},
		{Binary{'*', Const{relation.N(4)}, Attr{"R", "A"}}, 8, 2},
		{Binary{'/', Attr{"R", "A"}, Const{relation.N(4)}}, 2, 8},
		{Binary{'/', Const{relation.N(8)}, Attr{"R", "A"}}, 2, 4},
		{Neg{Attr{"R", "A"}}, 3, -3},
		// 4*A + 8 = 16  →  A = 2  (the thesis §4.5 shape)
		{Binary{'+', Binary{'*', Const{relation.N(4)}, Attr{"R", "A"}}, Const{relation.N(8)}}, 16, 2},
	}
	for _, c := range cases {
		got, err := Invert(c.e, relation.N(c.target))
		if err != nil {
			t.Fatalf("Invert(%s, %v): %v", c.e, c.target, err)
		}
		if !got.Equal(relation.N(c.want)) {
			t.Fatalf("Invert(%s, %v) = %v, want %v", c.e, c.target, got, c.want)
		}
	}
}

func TestInvertErrors(t *testing.T) {
	if _, err := Invert(Binary{'+', Attr{"R", "A"}, Attr{"R", "B"}}, relation.N(1)); err == nil {
		t.Fatal("multi-attribute invert accepted")
	}
	if _, err := Invert(Binary{'/', Const{relation.N(8)}, Attr{"R", "A"}}, relation.N(0)); err == nil {
		t.Fatal("c/x = 0 accepted")
	}
	if _, err := Invert(Binary{'+', Attr{"R", "A"}, Const{relation.N(1)}}, relation.S("s")); err == nil {
		t.Fatal("string target through arithmetic accepted")
	}
	if _, err := Invert(Binary{'*', Const{relation.N(0)}, Attr{"R", "A"}}, relation.N(4)); err == nil {
		t.Fatal("multiplication by zero accepted")
	}
}

// Property: for invertible linear expressions, Eval(Invert(target)) == target.
func TestInvertRoundTripProperty(t *testing.T) {
	f := func(a8, b8 int8, target8 int16) bool {
		a := float64(a8)
		if a == 0 {
			a = 1
		}
		b, target := float64(b8), float64(target8)
		// e = a*X + b
		e := Binary{'+', Binary{'*', Const{relation.N(a)}, Attr{"R", "A"}}, Const{relation.N(b)}}
		x, err := Invert(e, relation.N(target))
		if err != nil {
			return false
		}
		tp := exprTuple(x.Num(), 0, 0)
		got, err := e.Eval(tp)
		if err != nil {
			return false
		}
		return math.Abs(got.Num()-target) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubstitute(t *testing.T) {
	// 4*R.B + R.C + 8 with R(B=4, C=9) → constants fold to 33 on eval.
	e := Binary{'+', Binary{'+', Binary{'*', Const{relation.N(4)}, Attr{"R", "B"}}, Attr{"R", "C"}}, Const{relation.N(8)}}
	tp := exprTuple(0, 4, 9)
	sub, err := Substitute(e, tp)
	if err != nil {
		t.Fatalf("Substitute: %v", err)
	}
	if len(Attrs(sub)) != 0 {
		t.Fatalf("substituted expression still has attributes: %s", sub)
	}
	v, ok := ConstFold(sub)
	if !ok || !v.Equal(relation.N(33)) {
		t.Fatalf("folded = %v, %v", v, ok)
	}
	// Attributes of other relations survive.
	mixed := Binary{'+', Attr{"R", "B"}, Attr{"S", "E"}}
	sub2, err := Substitute(mixed, tp)
	if err != nil {
		t.Fatalf("Substitute: %v", err)
	}
	if len(Attrs(sub2)) != 1 || Attrs(sub2)[0].Rel != "S" {
		t.Fatalf("cross-relation substitution wrong: %s", sub2)
	}
}

func TestPredicateEval(t *testing.T) {
	s := relation.MustSchema("A", "Surname", "Age")
	tp := relation.MustTuple(s, relation.S("Smith"), relation.N(40))
	cases := []struct {
		p    Predicate
		want bool
	}{
		{Predicate{"A", OpEq, Attr{"A", "Surname"}, Const{relation.S("Smith")}}, true},
		{Predicate{"A", OpNe, Attr{"A", "Surname"}, Const{relation.S("Smith")}}, false},
		{Predicate{"A", OpGt, Attr{"A", "Age"}, Const{relation.N(30)}}, true},
		{Predicate{"A", OpLe, Attr{"A", "Age"}, Const{relation.N(30)}}, false},
		{Predicate{"A", OpLt, Attr{"A", "Surname"}, Const{relation.S("Z")}}, true},
		{Predicate{"A", OpGe, Attr{"A", "Age"}, Const{relation.N(40)}}, true},
		// Cross-type: = is false, != is true.
		{Predicate{"A", OpEq, Attr{"A", "Age"}, Const{relation.S("40")}}, false},
		{Predicate{"A", OpNe, Attr{"A", "Age"}, Const{relation.S("40")}}, true},
	}
	for _, c := range cases {
		got, err := c.p.Eval(tp)
		if err != nil {
			t.Fatalf("%s: %v", c.p, err)
		}
		if got != c.want {
			t.Fatalf("%s = %v, want %v", c.p, got, c.want)
		}
	}
	// Ordering across types errors.
	bad := Predicate{"A", OpLt, Attr{"A", "Age"}, Const{relation.S("x")}}
	if _, err := bad.Eval(tp); err == nil {
		t.Fatal("cross-type ordering accepted")
	}
}

func TestExprStrings(t *testing.T) {
	e := Binary{'+', Binary{'*', Const{relation.N(4)}, Attr{"R", "B"}}, Const{relation.N(8)}}
	if got := e.String(); got != "((4 * R.B) + 8)" {
		t.Fatalf("String = %q", got)
	}
	if got := (Const{relation.S("x")}).String(); got != "'x'" {
		t.Fatalf("const string = %q", got)
	}
	if got := (Neg{Attr{"R", "A"}}).String(); got != "-R.A" {
		t.Fatalf("neg string = %q", got)
	}
	p := Predicate{"A", OpGe, Attr{"A", "Age"}, Const{relation.N(1)}}
	if got := p.String(); got != "A.Age >= 1" {
		t.Fatalf("pred string = %q", got)
	}
}
