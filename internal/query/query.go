package query

import (
	"fmt"
	"strings"
	"sync/atomic"

	"cqjoin/internal/relation"
)

// Side selects one side of a query's join condition.
type Side int

const (
	// SideLeft is the α side of the join condition α = β.
	SideLeft Side = iota
	// SideRight is the β side.
	SideRight
)

// Other returns the opposite side.
func (s Side) Other() Side {
	if s == SideLeft {
		return SideRight
	}
	return SideLeft
}

// String names the side.
func (s Side) String() string {
	if s == SideLeft {
		return "left"
	}
	return "right"
}

// Type classifies queries per Section 3.2.
type Type int

const (
	// T1 queries have a single attribute on each side of the join condition
	// and the equality has a unique solution; all four algorithms evaluate
	// them.
	T1 Type = iota
	// T2 queries involve multiple attributes or non-invertible expressions
	// on some side; only DAI-V evaluates them.
	T2
)

// String names the type.
func (t Type) String() string {
	if t == T1 {
		return "T1"
	}
	return "T2"
}

// Query is a continuous two-way equi-join query. Build one with Parse, then
// attach subscriber identity with WithIdentity before indexing it.
type Query struct {
	key          string
	subscriber   string
	subscriberIP string
	insT         int64

	sel      []Attr
	left     Expr
	right    Expr
	leftRel  *relation.Schema
	rightRel *relation.Schema
	filters  []Predicate
	text     string

	// wireSize memoizes the query's wire-encoded length; 0 means not yet
	// computed. Accessed atomically because the query value embedded in
	// in-flight messages is sized from concurrent cascade workers. The
	// With* copy constructors reset it, since they change encoded fields.
	wireSize int64
}

// WithIdentity returns a copy of q carrying the subscriber's node key and
// IP plus the query's unique key, Key(q), formed per Section 3.2 by
// concatenating a positive integer to the subscriber's key.
func (q *Query) WithIdentity(subscriberKey, subscriberIP string, seq int) *Query {
	cp := *q
	cp.subscriber = subscriberKey
	cp.subscriberIP = subscriberIP
	cp.key = fmt.Sprintf("%s#%d", subscriberKey, seq)
	cp.wireSize = 0
	return &cp
}

// WithRestoredIdentity returns a copy of q carrying a previously assigned
// key and subscriber identity, used when a query is decoded from its wire
// form and its original Key(q) must be preserved.
func (q *Query) WithRestoredIdentity(key, subscriberKey, subscriberIP string) *Query {
	cp := *q
	cp.key = key
	cp.subscriber = subscriberKey
	cp.subscriberIP = subscriberIP
	cp.wireSize = 0
	return &cp
}

// WithInsT returns a copy of q stamped with insertion time insT
// (Section 3.2: only tuples with pubT(t) >= insT(q) can trigger q).
func (q *Query) WithInsT(insT int64) *Query {
	cp := *q
	cp.insT = insT
	cp.wireSize = 0
	return &cp
}

// Key returns Key(q), or "" before WithIdentity.
func (q *Query) Key() string { return q.key }

// Subscriber returns the key of the node that posed the query.
func (q *Query) Subscriber() string { return q.subscriber }

// SubscriberIP returns the (simulated) IP address of the subscriber.
func (q *Query) SubscriberIP() string { return q.subscriberIP }

// InsT returns the query's insertion time.
func (q *Query) InsT() int64 { return q.insT }

// Text returns the original SQL text.
func (q *Query) Text() string { return q.text }

// CachedWireSize returns the memoized wire-encoding length, or 0 when it
// has not been computed. The encoded fields are immutable outside the
// With* copy constructors, which reset the memo on their copies.
func (q *Query) CachedWireSize() int { return int(atomic.LoadInt64(&q.wireSize)) }

// SetCachedWireSize memoizes the query's wire-encoding length.
func (q *Query) SetCachedWireSize(n int) { atomic.StoreInt64(&q.wireSize, int64(n)) }

// Select returns the projection list.
func (q *Query) Select() []Attr { return append([]Attr(nil), q.sel...) }

// Expr returns the join-condition expression of the given side.
func (q *Query) Expr(s Side) Expr {
	if s == SideLeft {
		return q.left
	}
	return q.right
}

// Rel returns the relation schema of the given side.
func (q *Query) Rel(s Side) *relation.Schema {
	if s == SideLeft {
		return q.leftRel
	}
	return q.rightRel
}

// Filters returns the selection predicates conjoined with the join.
func (q *Query) Filters() []Predicate { return append([]Predicate(nil), q.filters...) }

// FiltersFor returns the selection predicates over the named relation.
func (q *Query) FiltersFor(rel string) []Predicate {
	var out []Predicate
	for _, f := range q.filters {
		if f.Rel == rel {
			out = append(out, f)
		}
	}
	return out
}

// FiltersPass reports whether the tuple satisfies every selection predicate
// over its relation.
func (q *Query) FiltersPass(t *relation.Tuple) (bool, error) {
	for _, f := range q.filters {
		if f.Rel != t.Relation() {
			continue
		}
		ok, err := f.Eval(t)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// SideFor returns the side whose relation is rel.
func (q *Query) SideFor(rel string) (Side, error) {
	switch rel {
	case q.leftRel.Name():
		return SideLeft, nil
	case q.rightRel.Name():
		return SideRight, nil
	default:
		return 0, fmt.Errorf("query: relation %s is not part of %s ⋈ %s", rel, q.leftRel.Name(), q.rightRel.Name())
	}
}

// Type classifies the query as T1 or T2 per Section 3.2.
func (q *Query) Type() Type {
	if Invertible(q.left) && Invertible(q.right) {
		return T1
	}
	return T2
}

// SideAttrs returns the distinct attribute names the given side's
// expression references, candidates for the role of index attribute.
func (q *Query) SideAttrs(s Side) []string {
	seen := make(map[string]bool)
	var out []string
	for _, a := range Attrs(q.Expr(s)) {
		if !seen[a.Name] {
			seen[a.Name] = true
			out = append(out, a.Name)
		}
	}
	return out
}

// SingleAttr returns the side's unique join attribute for a T1-style side,
// or an error when the side references several attributes.
func (q *Query) SingleAttr(s Side) (string, error) {
	attrs := q.SideAttrs(s)
	if len(attrs) != 1 {
		return "", fmt.Errorf("query: %s side of %q references %d attributes", s, q.ConditionKey(), len(attrs))
	}
	return attrs[0], nil
}

// EvalSide computes the side's expression over a tuple of that side's
// relation — the valJC(q, t) of Section 4.5.
func (q *Query) EvalSide(s Side, t *relation.Tuple) (relation.Value, error) {
	return q.Expr(s).Eval(t)
}

// InvertSide solves the side's expression for its single attribute given
// the value the expression must produce — the valDA(q, t) computation of
// Section 4.3.2: the value attribute DisA(q) must take so the join
// condition holds.
func (q *Query) InvertSide(s Side, target relation.Value) (relation.Value, error) {
	return Invert(q.Expr(s), target)
}

// ConditionKey renders the join condition canonically. Queries with equal
// ConditionKey have equivalent join conditions and are grouped together at
// rewriter and evaluator nodes (Section 4.3.5).
func (q *Query) ConditionKey() string {
	return q.left.String() + " = " + q.right.String()
}

// NeededAttrs returns the attributes of the named relation required to
// finish evaluating the query after the other relation's side is fixed:
// the attributes in the SELECT list, the join expression and the selection
// predicates. DAI-V ships exactly this projection of a tuple (Section 4.5).
func (q *Query) NeededAttrs(rel string) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(a Attr) {
		if a.Rel == rel && !seen[a.Name] {
			seen[a.Name] = true
			out = append(out, a.Name)
		}
	}
	for _, a := range q.sel {
		add(a)
	}
	side, err := q.SideFor(rel)
	if err == nil {
		for _, a := range Attrs(q.Expr(side)) {
			add(a)
		}
	}
	for _, f := range q.filters {
		if f.Rel != rel {
			continue
		}
		for _, a := range Attrs(f.L) {
			add(a)
		}
		for _, a := range Attrs(f.R) {
			add(a)
		}
	}
	return out
}

// SelectValuesFrom extracts the values of the SELECT attributes that belong
// to the tuple's relation — the v1, ..., vl that name a rewritten query's
// key in Section 4.3.3.
func (q *Query) SelectValuesFrom(t *relation.Tuple) ([]relation.Value, error) {
	var out []relation.Value
	for _, a := range q.sel {
		if a.Rel != t.Relation() {
			continue
		}
		v, err := t.Value(a.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// RewriteKey computes the key of the rewritten query created when tuple t
// of the index relation triggers q, per Section 4.3.3:
//
//	Key(q') = Key(q) + v1 + v2 + ... + vl + valDA(q, t)
//
// where vj are the values of the index relation's SELECT attributes in t.
// Two rewritten queries share a key exactly when they were created from the
// same query by tuples with the same value of the index attribute.
func (q *Query) RewriteKey(t *relation.Tuple, valDA relation.Value) (string, error) {
	vals, err := q.SelectValuesFrom(t)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(q.key)
	for _, v := range vals {
		b.WriteByte('+')
		b.WriteString(v.Canon())
	}
	b.WriteByte('+')
	b.WriteString(valDA.Canon())
	return b.String(), nil
}

// ProjectNotification computes the SELECT projection over a matched pair of
// tuples, one from each relation — the answer carried by a notification.
func (q *Query) ProjectNotification(left, right *relation.Tuple) ([]relation.Value, error) {
	if left.Relation() != q.leftRel.Name() || right.Relation() != q.rightRel.Name() {
		return nil, fmt.Errorf("query: ProjectNotification tuple relations %s, %s do not match %s ⋈ %s",
			left.Relation(), right.Relation(), q.leftRel.Name(), q.rightRel.Name())
	}
	out := make([]relation.Value, len(q.sel))
	for i, a := range q.sel {
		src := left
		if a.Rel == q.rightRel.Name() {
			src = right
		}
		v, err := src.Value(a.Name)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// String renders the query's SQL text, or the normalized condition when the
// text is unavailable.
func (q *Query) String() string {
	if q.text != "" {
		return q.text
	}
	return q.ConditionKey()
}
