package query

import (
	"strings"
	"testing"

	"cqjoin/internal/relation"
)

func testCatalog() *relation.Catalog {
	return relation.MustCatalog(
		relation.MustSchema("Document", "Id", "Title", "Conference", "AuthorId"),
		relation.MustSchema("Authors", "Id", "Name", "Surname"),
		relation.MustSchema("R", "A", "B", "C"),
		relation.MustSchema("S", "D", "E", "F"),
	)
}

func TestParseThesisExample(t *testing.T) {
	// The e-learning query of Section 3.2.
	q, err := Parse(testCatalog(), `
		Select D.Title, D.Conference
		From Document as D, Authors as A
		Where D.AuthorId = A.Id and A.Surname = 'Smith'`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Rel(SideLeft).Name() != "Document" || q.Rel(SideRight).Name() != "Authors" {
		t.Fatalf("relations: %s, %s", q.Rel(SideLeft), q.Rel(SideRight))
	}
	if got := q.ConditionKey(); got != "Document.AuthorId = Authors.Id" {
		t.Fatalf("condition = %q", got)
	}
	if q.Type() != T1 {
		t.Fatalf("type = %s, want T1", q.Type())
	}
	sel := q.Select()
	if len(sel) != 2 || sel[0].Name != "Title" || sel[1].Name != "Conference" {
		t.Fatalf("select = %v", sel)
	}
	fs := q.FiltersFor("Authors")
	if len(fs) != 1 || fs[0].Op != OpEq {
		t.Fatalf("filters = %v", fs)
	}
}

func TestParseT2Query(t *testing.T) {
	// The Section 4.5 example: 4*R.B + R.C + 8 = 5*S.E + S.D - S.F.
	q, err := Parse(testCatalog(), `
		SELECT R.A, S.D FROM R, S
		WHERE 4 * R.B + R.C + 8 = 5 * S.E + S.D - S.F`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Type() != T2 {
		t.Fatalf("type = %s, want T2", q.Type())
	}
	if got := q.SideAttrs(SideLeft); len(got) != 2 {
		t.Fatalf("left attrs = %v", got)
	}
	if got := q.SideAttrs(SideRight); len(got) != 3 {
		t.Fatalf("right attrs = %v", got)
	}
}

func TestParseLinearT1(t *testing.T) {
	q := MustParse(testCatalog(), `SELECT R.A FROM R, S WHERE 2 * R.B + 1 = S.E`)
	if q.Type() != T1 {
		t.Fatalf("linear invertible sides must be T1, got %s", q.Type())
	}
}

func TestParseAliasWithoutAS(t *testing.T) {
	q, err := Parse(testCatalog(), `SELECT D.Title FROM Document D, Authors A WHERE D.AuthorId = A.Id`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Rel(SideLeft).Name() != "Document" {
		t.Fatal("implicit alias broken")
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	q := MustParse(testCatalog(), `SELECT R.A FROM R, S WHERE R.B + 2 * R.C = S.E`)
	// Must parse as R.B + (2*R.C), not (R.B+2)*R.C.
	want := "(R.B + (2 * R.C))"
	if got := q.Expr(SideLeft).String(); got != want {
		t.Fatalf("precedence: %s, want %s", got, want)
	}
	q2 := MustParse(testCatalog(), `SELECT R.A FROM R, S WHERE (R.B + 2) * R.C = S.E`)
	if got := q2.Expr(SideLeft).String(); got != "((R.B + 2) * R.C)" {
		t.Fatalf("parens: %s", got)
	}
}

func TestParseUnaryMinus(t *testing.T) {
	q := MustParse(testCatalog(), `SELECT R.A FROM R, S WHERE -R.B = S.E`)
	if got := q.Expr(SideLeft).String(); got != "-R.B" {
		t.Fatalf("unary minus: %s", got)
	}
}

func TestParseDoubleQuotedString(t *testing.T) {
	q := MustParse(testCatalog(), `SELECT R.A FROM R, S WHERE R.B = S.E AND S.D = "x y"`)
	fs := q.FiltersFor("S")
	if len(fs) != 1 {
		t.Fatalf("filters = %v", fs)
	}
}

func TestParseErrors(t *testing.T) {
	cat := testCatalog()
	cases := []struct {
		name, sql, wantErr string
	}{
		{"missing select", `FROM R, S WHERE R.A = S.D`, "expected SELECT"},
		{"unknown relation", `SELECT R.A FROM R, Z WHERE R.A = Z.X`, "unknown relation"},
		{"one relation", `SELECT R.A FROM R WHERE R.A = R.B`, "two FROM relations"},
		{"self join", `SELECT R.A FROM R AS x, R AS y WHERE x.A = y.B`, "self-join"},
		{"unknown alias", `SELECT Z.A FROM R, S WHERE R.A = S.D`, "unknown alias"},
		{"unknown attribute", `SELECT R.Z FROM R, S WHERE R.A = S.D`, "no attribute"},
		{"no join condition", `SELECT R.A FROM R, S WHERE R.A = 5`, "no join condition"},
		{"two join conditions", `SELECT R.A FROM R, S WHERE R.A = S.D AND R.B = S.E`, "more than one join"},
		{"non-equality join", `SELECT R.A FROM R, S WHERE R.A < S.D`, "must be an equality"},
		{"constant predicate", `SELECT R.A FROM R, S WHERE R.A = S.D AND 1 = 1`, "constant predicate"},
		{"unqualified attr", `SELECT A FROM R, S WHERE R.A = S.D`, "qualified"},
		{"trailing garbage", `SELECT R.A FROM R, S WHERE R.A = S.D garbage garbage`, ""},
		{"unterminated string", `SELECT R.A FROM R, S WHERE R.A = S.D AND S.E = 'oops`, "unterminated"},
		{"bad operator", `SELECT R.A FROM R, S WHERE R.A ! S.D`, "stray"},
		{"duplicate alias", `SELECT x.A FROM R AS x, S AS x WHERE x.A = x.D`, "duplicate alias"},
		{"empty select", `SELECT FROM R, S WHERE R.A = S.D`, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(cat, c.sql)
			if err == nil {
				t.Fatalf("accepted %q", c.sql)
			}
			if c.wantErr != "" && !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

func TestParsePredicateMixingRelationsRejected(t *testing.T) {
	_, err := Parse(testCatalog(), `SELECT R.A FROM R, S WHERE R.A = S.D AND R.B + S.E = 5`)
	if err == nil || !strings.Contains(err.Error(), "mixes relations") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseSelectMustReferenceFromRelations(t *testing.T) {
	// Alias resolution means SELECT can only name the FROM aliases, but
	// keep the guard exercised through a direct construction if possible —
	// via the parser this always errors as unknown alias.
	_, err := Parse(testCatalog(), `SELECT Authors.Name FROM R, S WHERE R.A = S.D`)
	if err == nil {
		t.Fatal("SELECT over non-FROM relation accepted")
	}
}

func TestQueryIdentityAndTimes(t *testing.T) {
	q := MustParse(testCatalog(), `SELECT R.A FROM R, S WHERE R.B = S.E`)
	if q.Key() != "" {
		t.Fatal("fresh query has a key")
	}
	q2 := q.WithIdentity("node7", "sim://abc", 3)
	if q2.Key() != "node7#3" || q2.Subscriber() != "node7" || q2.SubscriberIP() != "sim://abc" {
		t.Fatalf("identity: %q %q %q", q2.Key(), q2.Subscriber(), q2.SubscriberIP())
	}
	if q.Key() != "" {
		t.Fatal("WithIdentity mutated the original")
	}
	q3 := q2.WithInsT(99)
	if q3.InsT() != 99 || q2.InsT() != 0 {
		t.Fatal("WithInsT wrong")
	}
}

func TestSideHelpers(t *testing.T) {
	q := MustParse(testCatalog(), `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	if s, err := q.SideFor("R"); err != nil || s != SideLeft {
		t.Fatalf("SideFor(R) = %v, %v", s, err)
	}
	if s, err := q.SideFor("S"); err != nil || s != SideRight {
		t.Fatalf("SideFor(S) = %v, %v", s, err)
	}
	if _, err := q.SideFor("Z"); err == nil {
		t.Fatal("SideFor(Z) accepted")
	}
	if SideLeft.Other() != SideRight || SideRight.Other() != SideLeft {
		t.Fatal("Other wrong")
	}
	if SideLeft.String() != "left" || SideRight.String() != "right" {
		t.Fatal("side names wrong")
	}
	if a, err := q.SingleAttr(SideLeft); err != nil || a != "B" {
		t.Fatalf("SingleAttr = %v, %v", a, err)
	}
	t2 := MustParse(testCatalog(), `SELECT R.A FROM R, S WHERE R.B + R.C = S.E`)
	if _, err := t2.SingleAttr(SideLeft); err == nil {
		t.Fatal("SingleAttr over multi-attribute side accepted")
	}
}

func TestEvalAndInvertSide(t *testing.T) {
	q := MustParse(testCatalog(), `SELECT R.A FROM R, S WHERE 2 * R.B = S.E + 1`)
	r := relation.MustSchema("R", "A", "B", "C")
	tp := relation.MustTuple(r, relation.N(0), relation.N(5), relation.N(0))
	v, err := q.EvalSide(SideLeft, tp)
	if err != nil || !v.Equal(relation.N(10)) {
		t.Fatalf("EvalSide = %v, %v", v, err)
	}
	// Right side must equal 10 → S.E = 9.
	want, err := q.InvertSide(SideRight, v)
	if err != nil || !want.Equal(relation.N(9)) {
		t.Fatalf("InvertSide = %v, %v", want, err)
	}
}

func TestNeededAttrs(t *testing.T) {
	q := MustParse(testCatalog(), `
		SELECT D.Title, A.Name FROM Document AS D, Authors AS A
		WHERE D.AuthorId = A.Id AND A.Surname = 'Smith'`)
	da := q.NeededAttrs("Document")
	if len(da) != 2 || da[0] != "Title" || da[1] != "AuthorId" {
		t.Fatalf("Document needed = %v", da)
	}
	aa := q.NeededAttrs("Authors")
	if len(aa) != 3 { // Name, Id, Surname
		t.Fatalf("Authors needed = %v", aa)
	}
}

func TestRewriteKeyUniqueness(t *testing.T) {
	q := MustParse(testCatalog(), `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`).WithIdentity("n1", "ip", 1)
	r := relation.MustSchema("R", "A", "B", "C")
	t1 := relation.MustTuple(r, relation.N(1), relation.N(7), relation.N(0))
	t2 := relation.MustTuple(r, relation.N(1), relation.N(7), relation.N(99)) // same A and B
	t3 := relation.MustTuple(r, relation.N(2), relation.N(7), relation.N(0))  // different A
	k1, err := q.RewriteKey(t1, relation.N(7))
	if err != nil {
		t.Fatalf("RewriteKey: %v", err)
	}
	k2, _ := q.RewriteKey(t2, relation.N(7))
	k3, _ := q.RewriteKey(t3, relation.N(7))
	if k1 != k2 {
		t.Fatalf("same select values + same valDA must share keys: %q vs %q", k1, k2)
	}
	if k1 == k3 {
		t.Fatal("different select values must differ")
	}
	if !strings.HasPrefix(k1, "n1#1") {
		t.Fatalf("rewrite key %q must extend Key(q)", k1)
	}
}

func TestProjectNotification(t *testing.T) {
	q := MustParse(testCatalog(), `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	r := relation.MustSchema("R", "A", "B", "C")
	s := relation.MustSchema("S", "D", "E", "F")
	lt := relation.MustTuple(r, relation.N(1), relation.N(7), relation.N(0))
	rt := relation.MustTuple(s, relation.S("d"), relation.N(7), relation.N(0))
	vals, err := q.ProjectNotification(lt, rt)
	if err != nil {
		t.Fatalf("ProjectNotification: %v", err)
	}
	if len(vals) != 2 || !vals[0].Equal(relation.N(1)) || !vals[1].Equal(relation.S("d")) {
		t.Fatalf("projection = %v", vals)
	}
	if _, err := q.ProjectNotification(rt, lt); err == nil {
		t.Fatal("swapped relations accepted")
	}
}

func TestFiltersPass(t *testing.T) {
	q := MustParse(testCatalog(), `
		SELECT D.Title FROM Document AS D, Authors AS A
		WHERE D.AuthorId = A.Id AND A.Surname = 'Smith'`)
	authors := relation.MustSchema("Authors", "Id", "Name", "Surname")
	smith := relation.MustTuple(authors, relation.N(1), relation.S("John"), relation.S("Smith"))
	jones := relation.MustTuple(authors, relation.N(2), relation.S("Ann"), relation.S("Jones"))
	if ok, _ := q.FiltersPass(smith); !ok {
		t.Fatal("Smith must pass")
	}
	if ok, _ := q.FiltersPass(jones); ok {
		t.Fatal("Jones must not pass")
	}
	// Tuples of the other relation are unconstrained.
	doc := relation.MustSchema("Document", "Id", "Title", "Conference", "AuthorId")
	d := relation.MustTuple(doc, relation.N(1), relation.S("t"), relation.S("c"), relation.N(1))
	if ok, _ := q.FiltersPass(d); !ok {
		t.Fatal("Document tuple must pass vacuously")
	}
}

func TestTypeStrings(t *testing.T) {
	if T1.String() != "T1" || T2.String() != "T2" {
		t.Fatal("type names wrong")
	}
}

func TestAccessorsAndRestoredIdentity(t *testing.T) {
	sql := `SELECT R.A FROM R, S WHERE R.B = S.E AND S.F >= 1`
	q := MustParse(testCatalog(), sql)
	if q.Text() != sql {
		t.Fatalf("Text = %q", q.Text())
	}
	if len(q.Filters()) != 1 {
		t.Fatalf("Filters = %v", q.Filters())
	}
	r := q.WithRestoredIdentity("k#9", "subKey", "ip9")
	if r.Key() != "k#9" || r.Subscriber() != "subKey" || r.SubscriberIP() != "ip9" {
		t.Fatalf("restored identity wrong: %q %q %q", r.Key(), r.Subscriber(), r.SubscriberIP())
	}
	if q.Key() != "" {
		t.Fatal("WithRestoredIdentity mutated the original")
	}

	mq := MustParseMulti(testCatalog(), `SELECT R.A FROM R, S WHERE R.B = S.E`)
	if mq.Text() == "" || len(mq.Select()) != 1 {
		t.Fatalf("multi accessors wrong: %q %v", mq.Text(), mq.Select())
	}
	mr := mq.WithRestoredIdentity("k#1", "s", "ip")
	if mr.Key() != "k#1" || mr.Subscriber() != "s" || mr.SubscriberIP() != "ip" {
		t.Fatal("multi restored identity wrong")
	}
}

func TestQueryString(t *testing.T) {
	sql := `SELECT R.A FROM R, S WHERE R.B = S.E`
	q := MustParse(testCatalog(), sql)
	if q.String() != sql {
		t.Fatalf("String = %q", q.String())
	}
}
