// Package relation implements the relational data model of Section 3.2:
// schemas, typed attribute values and tuples carrying a publication time.
// Data is inserted into the overlay as tuples of named relations; different
// schemas can co-exist (schema mappings are not supported, as in PIER).
package relation

import (
	"fmt"
	"strconv"
)

// Kind is the runtime type of a Value.
type Kind int

const (
	// String values compare and hash as text.
	String Kind = iota
	// Number values are float64; per Section 4.2, when used in an index
	// identifier a numeric value "is also treated as a string" via its
	// canonical rendering.
	Number
)

// Value is an attribute value: a string or a number. Values are immutable
// and comparable with ==, so they can be used as map keys in the two-level
// hash tables of Section 4.3.5.
type Value struct {
	kind Kind
	str  string
	num  float64
}

// S constructs a string value.
func S(s string) Value { return Value{kind: String, str: s} }

// N constructs a numeric value.
func N(f float64) Value { return Value{kind: Number, num: f} }

// Kind returns the value's runtime type.
func (v Value) Kind() Kind { return v.kind }

// Str returns the string content; it panics on a Number.
func (v Value) Str() string {
	if v.kind != String {
		panic("relation: Str on numeric value")
	}
	return v.str
}

// Num returns the numeric content; it panics on a String.
func (v Value) Num() float64 {
	if v.kind != Number {
		panic("relation: Num on string value")
	}
	return v.num
}

// Canon renders the value in the canonical string form used to build ring
// identifiers (VIndex = Hash(R + A + v), Section 4.2). Numbers use the
// shortest representation that round-trips, so 7 and 7.0 produce the same
// identifier.
func (v Value) Canon() string {
	if v.kind == String {
		return v.str
	}
	return strconv.FormatFloat(v.num, 'g', -1, 64)
}

// Equal reports whether two values are the same constant. A String never
// equals a Number, matching SQL equality over distinct types in this
// simplified model.
func (v Value) Equal(o Value) bool { return v == o }

// String implements fmt.Stringer for logs and notification rendering.
func (v Value) String() string {
	if v.kind == String {
		return fmt.Sprintf("%q", v.str)
	}
	return v.Canon()
}
