package relation

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	s := S("hello")
	if s.Kind() != String || s.Str() != "hello" {
		t.Fatal("string value wrong")
	}
	n := N(3.5)
	if n.Kind() != Number || n.Num() != 3.5 {
		t.Fatal("number value wrong")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic(t, func() { S("x").Num() })
	mustPanic(t, func() { N(1).Str() })
}

func TestValueCanonNumbersTreatedAsStrings(t *testing.T) {
	// Section 4.2: numeric values are treated as strings in identifiers;
	// the canonical form must be stable across equivalent literals.
	if N(7).Canon() != N(7.0).Canon() {
		t.Fatal("7 and 7.0 canon differ")
	}
	if N(7).Canon() != "7" {
		t.Fatalf("canon(7) = %q", N(7).Canon())
	}
	if N(0.5).Canon() != "0.5" {
		t.Fatalf("canon(0.5) = %q", N(0.5).Canon())
	}
	if S("abc").Canon() != "abc" {
		t.Fatalf("canon(abc) = %q", S("abc").Canon())
	}
}

func TestValueEquality(t *testing.T) {
	if !S("a").Equal(S("a")) || S("a").Equal(S("b")) {
		t.Fatal("string equality wrong")
	}
	if !N(2).Equal(N(2)) || N(2).Equal(N(3)) {
		t.Fatal("number equality wrong")
	}
	if S("2").Equal(N(2)) {
		t.Fatal("cross-kind equality must be false")
	}
}

func TestValueCanonRoundTripProperty(t *testing.T) {
	f := func(x float64) bool {
		v := N(x)
		w := N(v.Num())
		return v.Equal(w) && v.Canon() == w.Canon()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueString(t *testing.T) {
	if S("x").String() != `"x"` {
		t.Fatalf("String = %s", S("x").String())
	}
	if N(4).String() != "4" {
		t.Fatalf("String = %s", N(4).String())
	}
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema("", "A"); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewSchema("R"); err == nil {
		t.Fatal("no attributes accepted")
	}
	if _, err := NewSchema("R", "A", "A"); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
	if _, err := NewSchema("R", ""); err == nil {
		t.Fatal("empty attribute accepted")
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := MustSchema("Document", "Id", "Title", "Conference", "AuthorId")
	if s.Name() != "Document" || s.Arity() != 4 {
		t.Fatal("schema basics wrong")
	}
	if s.AttrIndex("Title") != 1 || s.AttrIndex("Nope") != -1 {
		t.Fatal("AttrIndex wrong")
	}
	if !s.HasAttr("Id") || s.HasAttr("X") {
		t.Fatal("HasAttr wrong")
	}
	attrs := s.Attrs()
	attrs[0] = "mutated"
	if s.AttrIndex("mutated") != -1 {
		t.Fatal("Attrs aliases internal state")
	}
	if got := s.String(); !strings.Contains(got, "Document(Id") {
		t.Fatalf("String = %s", got)
	}
}

func TestCatalog(t *testing.T) {
	d := MustSchema("Document", "Id", "Title")
	a := MustSchema("Authors", "Id", "Name")
	c := MustCatalog(d, a)
	if c.Lookup("Document") != d || c.Lookup("Authors") != a {
		t.Fatal("Lookup wrong")
	}
	if c.Lookup("Missing") != nil {
		t.Fatal("Lookup invented a schema")
	}
	if err := c.Add(MustSchema("Document", "X")); err == nil {
		t.Fatal("duplicate relation accepted")
	}
	var zero Catalog
	if zero.Lookup("x") != nil {
		t.Fatal("zero catalog lookup wrong")
	}
	if err := zero.Add(d); err != nil {
		t.Fatalf("zero catalog Add: %v", err)
	}
}

func TestNewTupleValidation(t *testing.T) {
	s := MustSchema("R", "A", "B")
	if _, err := NewTuple(s, S("x")); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := NewTuple(nil, S("x")); err == nil {
		t.Fatal("nil schema accepted")
	}
}

func TestTupleAccessors(t *testing.T) {
	s := MustSchema("R", "A", "B")
	tp := MustTuple(s, S("x"), N(9))
	if tp.Relation() != "R" || tp.Schema() != s {
		t.Fatal("tuple schema wrong")
	}
	if v := tp.MustValue("B"); !v.Equal(N(9)) {
		t.Fatal("MustValue wrong")
	}
	if _, err := tp.Value("C"); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	vals := tp.Values()
	vals[0] = N(0)
	if !tp.MustValue("A").Equal(S("x")) {
		t.Fatal("Values aliases internal state")
	}
	mustPanic(t, func() { tp.MustValue("Z") })
}

func TestTupleWithPubT(t *testing.T) {
	s := MustSchema("R", "A")
	tp := MustTuple(s, S("x"))
	if tp.PubT() != 0 {
		t.Fatal("fresh tuple has nonzero pubT")
	}
	stamped := tp.WithPubT(42)
	if stamped.PubT() != 42 || tp.PubT() != 0 {
		t.Fatal("WithPubT mutated original or failed to stamp")
	}
	if !stamped.MustValue("A").Equal(S("x")) {
		t.Fatal("WithPubT lost values")
	}
}

func TestTupleProject(t *testing.T) {
	s := MustSchema("R", "A", "B", "C")
	tp := MustTuple(s, N(1), N(2), N(3)).WithPubT(7)
	p, err := tp.Project([]string{"C", "A"})
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p.Schema().Arity() != 2 || !p.MustValue("C").Equal(N(3)) || !p.MustValue("A").Equal(N(1)) {
		t.Fatal("projection wrong")
	}
	if p.PubT() != 7 {
		t.Fatal("projection lost pubT")
	}
	if _, err := tp.Project([]string{"Z"}); err == nil {
		t.Fatal("projection onto unknown attribute accepted")
	}
}

func TestTupleString(t *testing.T) {
	s := MustSchema("R", "A", "B")
	got := MustTuple(s, S("x"), N(1)).String()
	if got != `R("x", 1)` {
		t.Fatalf("String = %s", got)
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
