package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Schema describes a relation: its name and the ordered attribute names.
// Example from Section 3.2: Document(Id, Title, Conference, AuthorId).
type Schema struct {
	name  string
	attrs []string
	index map[string]int
}

// NewSchema builds a schema. Attribute names must be unique and non-empty.
func NewSchema(name string, attrs ...string) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: schema with empty name")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("relation: schema %s has no attributes", name)
	}
	s := &Schema{name: name, attrs: append([]string(nil), attrs...), index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("relation: schema %s has an empty attribute name", name)
		}
		if _, dup := s.index[a]; dup {
			return nil, fmt.Errorf("relation: schema %s repeats attribute %s", name, a)
		}
		s.index[a] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for literals in tests and
// examples.
func MustSchema(name string, attrs ...string) *Schema {
	s, err := NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the relation name.
func (s *Schema) Name() string { return s.name }

// Attrs returns the attribute names in declaration order.
func (s *Schema) Attrs() []string { return append([]string(nil), s.attrs...) }

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.attrs) }

// AttrIndex returns the position of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// HasAttr reports whether the schema declares the attribute.
func (s *Schema) HasAttr(name string) bool { return s.AttrIndex(name) >= 0 }

// String renders the schema as Name(A1, A2, ...).
func (s *Schema) String() string {
	return fmt.Sprintf("%s(%s)", s.name, strings.Join(s.attrs, ", "))
}

// Catalog is a set of schemas addressable by relation name, the co-existing
// schemas of Section 3.2. The zero Catalog is empty and ready to use via
// Add.
type Catalog struct {
	schemas map[string]*Schema
}

// NewCatalog builds a catalog over the given schemas.
func NewCatalog(schemas ...*Schema) (*Catalog, error) {
	c := &Catalog{schemas: make(map[string]*Schema, len(schemas))}
	for _, s := range schemas {
		if err := c.Add(s); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// MustCatalog is NewCatalog that panics on error.
func MustCatalog(schemas ...*Schema) *Catalog {
	c, err := NewCatalog(schemas...)
	if err != nil {
		panic(err)
	}
	return c
}

// Add registers a schema; relation names must be unique.
func (c *Catalog) Add(s *Schema) error {
	if c.schemas == nil {
		c.schemas = make(map[string]*Schema)
	}
	if _, dup := c.schemas[s.name]; dup {
		return fmt.Errorf("relation: catalog already has relation %s", s.name)
	}
	c.schemas[s.name] = s
	return nil
}

// Lookup returns the schema for a relation name, or nil.
func (c *Catalog) Lookup(name string) *Schema {
	if c.schemas == nil {
		return nil
	}
	return c.schemas[name]
}

// Schemas returns every registered schema in relation-name order.
func (c *Catalog) Schemas() []*Schema {
	names := make([]string, 0, len(c.schemas))
	for n := range c.schemas {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Schema, len(names))
	for i, n := range names {
		out[i] = c.schemas[n]
	}
	return out
}
