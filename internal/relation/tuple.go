package relation

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Tuple is one row of a relation, carrying the publication time pubT(t) set
// when the tuple is inserted into the network (Section 3.2). A tuple can
// trigger a query q iff pubT(t) >= insT(q).
type Tuple struct {
	schema *Schema
	values []Value
	pubT   int64

	// wireSize memoizes the tuple's wire-encoded length; 0 means not yet
	// computed. Accessed atomically (plain int64 + atomic ops rather than
	// atomic.Int64, which would forbid the value copies tests make): one
	// tuple value is shared by every in-flight message that carries it, and
	// concurrent cascade workers size those messages independently.
	wireSize int64
}

// NewTuple builds a tuple of the given schema. The number of values must
// match the schema's arity.
func NewTuple(schema *Schema, values ...Value) (*Tuple, error) {
	if schema == nil {
		return nil, fmt.Errorf("relation: tuple with nil schema")
	}
	if len(values) != schema.Arity() {
		return nil, fmt.Errorf("relation: tuple of %s needs %d values, got %d",
			schema.Name(), schema.Arity(), len(values))
	}
	return &Tuple{schema: schema, values: append([]Value(nil), values...)}, nil
}

// MustTuple is NewTuple that panics on error, for literals in tests and
// examples.
func MustTuple(schema *Schema, values ...Value) *Tuple {
	t, err := NewTuple(schema, values...)
	if err != nil {
		panic(err)
	}
	return t
}

// Schema returns the tuple's relation schema.
func (t *Tuple) Schema() *Schema { return t.schema }

// Relation returns the relation name.
func (t *Tuple) Relation() string { return t.schema.Name() }

// Values returns the attribute values in schema order.
func (t *Tuple) Values() []Value { return append([]Value(nil), t.values...) }

// Value returns the value of the named attribute.
func (t *Tuple) Value(attr string) (Value, error) {
	i := t.schema.AttrIndex(attr)
	if i < 0 {
		return Value{}, fmt.Errorf("relation: %s has no attribute %s", t.schema.Name(), attr)
	}
	return t.values[i], nil
}

// MustValue is Value that panics on an unknown attribute.
func (t *Tuple) MustValue(attr string) Value {
	v, err := t.Value(attr)
	if err != nil {
		panic(err)
	}
	return v
}

// PubT returns the tuple's publication time (0 until inserted).
func (t *Tuple) PubT() int64 { return t.pubT }

// CachedWireSize returns the memoized wire-encoding length, or 0 when it
// has not been computed. Schema, values and pubT are immutable after
// construction, so a non-zero size stays valid for the tuple's lifetime.
func (t *Tuple) CachedWireSize() int { return int(atomic.LoadInt64(&t.wireSize)) }

// SetCachedWireSize memoizes the tuple's wire-encoding length.
func (t *Tuple) SetCachedWireSize(n int) { atomic.StoreInt64(&t.wireSize, int64(n)) }

// WithPubT returns a copy of the tuple stamped with publication time ts.
// The engine stamps tuples at insertion; the original is not modified. The
// copy is built field by field — a struct copy would read wireSize without
// synchronization, and the new pubT invalidates the memoized size anyway.
func (t *Tuple) WithPubT(ts int64) *Tuple {
	return &Tuple{schema: t.schema, values: append([]Value(nil), t.values...), pubT: ts}
}

// Project returns a new single-use tuple restricted to the named attributes
// in the given order, used by DAI-V which ships "the projection of t on the
// attributes needed for the evaluation of the join" (Section 4.5).
func (t *Tuple) Project(attrs []string) (*Tuple, error) {
	sub, err := NewSchema(t.schema.Name(), attrs...)
	if err != nil {
		return nil, err
	}
	vals := make([]Value, len(attrs))
	for i, a := range attrs {
		v, err := t.Value(a)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	p, err := NewTuple(sub, vals...)
	if err != nil {
		return nil, err
	}
	p.pubT = t.pubT
	return p, nil
}

// String renders the tuple as Relation(v1, v2, ...).
func (t *Tuple) String() string {
	parts := make([]string, len(t.values))
	for i, v := range t.values {
		parts[i] = v.String()
	}
	return fmt.Sprintf("%s(%s)", t.schema.Name(), strings.Join(parts, ", "))
}
