package engine

import (
	"fmt"
	"strings"

	"cqjoin/internal/chord"
	"cqjoin/internal/id"
	"cqjoin/internal/metrics"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
)

// Notification is the answer to a triggered continuous query: the SELECT
// projection over a matched pair of tuples plus the time information of
// Section 4.6 ("the appropriate tuples along with time information about
// when those tuples were inserted").
type Notification struct {
	// QueryKey is Key(q) of the triggered query.
	QueryKey string
	// Subscriber is the key of the node that posed the query.
	Subscriber string
	// Values is the SELECT projection in declaration order.
	Values []relation.Value
	// LeftPubT and RightPubT are the publication times of the matched
	// tuples of the left and right join relations.
	LeftPubT, RightPubT int64
	// DeliveredAt is the logical time the notification reached its
	// subscriber (possibly after an offline period).
	DeliveredAt int64

	// subscriberIP is the address the subscriber had when it posed the
	// query (IP(n) in the query() message of Section 4.3.1); evaluators use
	// it for the one-hop delivery path and fall back to DHT routing when it
	// is stale.
	subscriberIP string
}

// ContentKey renders the notification's query key and values, the identity
// under which all four algorithms must agree (duplicate-avoidance
// invariant of Section 4.4).
func (n Notification) ContentKey() string {
	var b strings.Builder
	b.WriteString(n.QueryKey)
	for _, v := range n.Values {
		b.WriteByte('|')
		b.WriteString(v.Canon())
	}
	return b.String()
}

// String renders the notification for logs and example output.
func (n Notification) String() string {
	parts := make([]string, len(n.Values))
	for i, v := range n.Values {
		parts[i] = v.String()
	}
	return fmt.Sprintf("%s -> (%s)", n.QueryKey, strings.Join(parts, ", "))
}

// buildNotification projects the matched pair of tuples through the query.
// trig is the tuple that was consumed at the attribute level (the rewritten
// query's side), other is the tuple matched at the value level.
func buildNotification(q *query.Query, indexSide query.Side, trig, other *relation.Tuple) (Notification, error) {
	left, right := trig, other
	if indexSide == query.SideRight {
		left, right = other, trig
	}
	vals, err := q.ProjectNotification(left, right)
	if err != nil {
		return Notification{}, err
	}
	return Notification{
		QueryKey:     q.Key(),
		Subscriber:   q.Subscriber(),
		Values:       vals,
		LeftPubT:     left.PubT(),
		RightPubT:    right.PubT(),
		subscriberIP: q.SubscriberIP(),
	}, nil
}

// sendNotifications delivers a batch of notifications from evaluator node
// (state st), grouping them per subscriber into one message each
// (Section 4.6). Delivery prefers the direct IP path — one overlay hop,
// available when the subscriber is online at the address the evaluator
// knows. A subscriber that reconnected under a different address is
// reached through the DHT (Send to Successor(Id(n)) = the subscriber,
// since Id(n) = Hash(Key(n)) never changes) and replies with its new
// address, which the evaluator caches for future one-hop deliveries. A
// subscriber that is offline entirely has its notifications stored at
// Successor(Id(n)) until it reconnects and receives them with the key
// hand-off.
//
//cqlint:sink
func (st *nodeState) sendNotifications(batch []Notification) {
	if len(batch) == 0 {
		return
	}
	bySub := make(map[string][]Notification)
	order := make([]string, 0, 4)
	for _, n := range batch {
		if _, seen := bySub[n.Subscriber]; !seen {
			order = append(order, n.Subscriber)
		}
		bySub[n.Subscriber] = append(bySub[n.Subscriber], n)
	}
	for _, sub := range order {
		st.deliverNotify(sub, bySub[sub])
	}
}

// deliverNotify runs the delivery ladder for one subscriber's batch. Each
// attempt re-resolves the subscriber — it may have crashed, rejoined or
// changed address between attempts — and picks the appropriate path:
// offline storage through the DHT, one-hop direct delivery at a known
// address, or DHT delivery with address learning when the known address is
// stale. A missing ack consumes one retry from Config.MaxRetries; a batch
// still unacked after the budget is charged as lost.
//
//cqlint:sink
func (st *nodeState) deliverNotify(sub string, batch []Notification) {
	e := st.engine
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if attempt > e.cfg.MaxRetries || !st.node.Alive() {
				e.net.Traffic().RecordLost(kindNotify)
				e.obs.lost.Add(kindNotify, 1)
				return
			}
			e.net.Traffic().RecordRetry(kindNotify)
			e.obs.retries.Add(kindNotify, 1)
			e.advanceBackoff()
		}
		msg := notifyMsg{Subscriber: sub, Batch: batch}
		dst := e.net.NodeByKey(sub)
		if dst == nil {
			// Subscriber offline: route to Successor(Id(n)) for storage
			// until it reconnects (Section 4.6).
			if _, _, err := st.node.Send(msg, id.Hash(sub)); err == nil {
				return
			}
			continue
		}
		if st.knownIP(sub, batch) == dst.IP() {
			// Online at the known address: one hop.
			if st.node.DirectSend(msg, dst) {
				return
			}
			// The address stopped answering; forget the learned entry so
			// the next attempt goes through the DHT.
			st.mu.Lock()
			delete(st.subIPs, sub)
			st.mu.Unlock()
			continue
		}
		// Online, but the known address is stale: deliver through the DHT
		// and learn the new address from the subscriber's reply (one extra
		// direct hop, charged as ip-update).
		if _, _, err := st.node.Send(msg, id.Hash(sub)); err == nil {
			e.net.Traffic().Record("ip-update", 1)
			st.mu.Lock()
			st.subIPs[sub] = dst.IP()
			st.mu.Unlock()
			return
		}
	}
}

// knownIP returns the freshest address the evaluator has for a subscriber:
// a learned entry if one exists, otherwise the address embedded in the
// query when it was posed.
func (st *nodeState) knownIP(sub string, batch []Notification) string {
	st.mu.Lock()
	ip, ok := st.subIPs[sub]
	st.mu.Unlock()
	if ok {
		return ip
	}
	for _, n := range batch {
		if n.subscriberIP != "" {
			return n.subscriberIP
		}
	}
	return ""
}

// handleNotify processes a notification message arriving at node st: the
// subscriber itself consumes it; any other node is Successor(Id(n)) of an
// offline subscriber and stores it for replay (Section 4.6).
func (st *nodeState) handleNotify(msg notifyMsg) {
	now := st.engine.net.Clock().Now()
	if st.node.Key() == msg.Subscriber {
		for _, n := range msg.Batch {
			n.DeliveredAt = now
			st.engine.record(n)
		}
		st.engine.obs.notifyDelivered.Add(int64(len(msg.Batch)))
		return
	}
	st.mu.Lock()
	st.storedNotifs[msg.Subscriber] = append(st.storedNotifs[msg.Subscriber], msg.Batch...)
	st.mu.Unlock()
	st.load.AddStorage(metrics.Evaluator, len(msg.Batch))
	st.engine.obs.notifyStored.Add(int64(len(msg.Batch)))
}

// replayStoredNotifications hands stored notifications for subscriber key
// over to the reconnected subscriber node. If every delivery attempt is
// lost in transit, the batch is re-stored so a later reconnect (or hand-
// off) can replay it again — stored notifications must survive unreliable
// delivery.
func (st *nodeState) replayStoredNotifications(sub string, dst *chord.Node) {
	st.mu.Lock()
	batch := st.storedNotifs[sub]
	delete(st.storedNotifs, sub)
	st.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	e := st.engine
	st.load.AddStorage(metrics.Evaluator, -len(batch))
	msg := notifyMsg{Subscriber: sub, Batch: batch}
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if attempt > e.cfg.MaxRetries {
				break
			}
			e.net.Traffic().RecordRetry(kindNotify)
			e.obs.retries.Add(kindNotify, 1)
			e.advanceBackoff()
		}
		if st.node.DirectSend(msg, dst) {
			e.obs.notifyReplayed.Add(int64(len(batch)))
			return
		}
		if !dst.Alive() {
			// The subscriber vanished again mid-replay; stop retrying and
			// keep the batch for its next reconnect.
			break
		}
	}
	e.net.Traffic().RecordLost(kindNotify)
	st.mu.Lock()
	st.storedNotifs[sub] = append(st.storedNotifs[sub], batch...)
	st.mu.Unlock()
	st.load.AddStorage(metrics.Evaluator, len(batch))
}
