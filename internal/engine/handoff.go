package engine

import (
	"sort"

	"cqjoin/internal/chord"
	"cqjoin/internal/metrics"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
)

// Process-level state hand-off for the multi-process overlay. Within one
// process, ring responsibility moves through TransferKeys: buckets are Go
// values and simply re-home. Across processes, the same movement needs a
// wire form — when a cqjoind process joins or leaves a running overlay,
// every node whose ownership moves must ship its accumulated engine state
// (ALQT groups, value-level rewrites and tuples, DAI-V stores, stored
// offline notifications) to the node's new owning process, where it merges
// through the exact same idempotent merge helpers TransferKeys uses.
//
// The sections below mirror the movable tables of nodeState. Deliberately
// NOT carried: the probe statistics (arrivals/distinct — advisory, cheap
// to re-learn), the JFRT and learned-subscriber-IP caches (best-effort
// caches that refill), and the pair-baseline store (the naive baselines
// never run multi-process).

// kindHandoff names the hand-off message class for traffic accounting.
const kindHandoff = "handoff"

// targetsEntry is the wire form of one sentTargets map entry, with the
// target set flattened to a sorted slice.
type targetsEntry struct {
	Key     string
	Targets []string
}

// alGroupSection is one ALQT condition group.
type alGroupSection struct {
	Cond    string
	Side    query.Side
	Queries []*query.Query
}

// alMultiSection is one multi-way chain group of an ALQT bucket.
type alMultiSection struct {
	Cond    string
	Queries []*query.MultiQuery
}

// alSection is the wire form of one alBucket.
type alSection struct {
	Input        string
	Groups       []alGroupSection
	Multi        []alMultiSection
	SentRewrites []string
	SentTargets  []targetsEntry
}

// vqEntry is one stored rewritten query with its trigger times.
type vqEntry struct {
	Rw    *rewritten
	Times []int64
}

// vqSection is the wire form of one vlqtBucket.
type vqSection struct {
	Input   string
	Entries []vqEntry
}

// mqSection is the wire form of one mvlqtBucket.
type mqSection struct {
	Input       string
	Rewrites    []*mRewritten
	SentTargets []targetsEntry
}

// vtSection is the wire form of one vlttBucket.
type vtSection struct {
	Input  string
	Tuples []*relation.Tuple
}

// dvEntry is one DAI-V condition entry with its per-side tuple stores.
type dvEntry struct {
	Cond  string
	Left  []*relation.Tuple
	Right []*relation.Tuple
}

// dvSection is the wire form of one daivBucket.
type dvSection struct {
	Input   string
	Entries []dvEntry
}

// notifSection is the stored-notification queue of one offline subscriber.
type notifSection struct {
	Subscriber string
	Batch      []Notification
}

// handoffMsg carries one node's movable engine state to the same node on
// its new owning process. Handling it merges every section through the
// TransferKeys merge path, so repeated delivery (the transport retries on
// a missing ack) is harmless.
type handoffMsg struct {
	AL     []alSection
	VQ     []vqSection
	MQ     []mqSection
	VT     []vtSection
	DV     []dvSection
	Notifs []notifSection
}

func (handoffMsg) Kind() string { return kindHandoff }

// sortedKeys returns the keys of a bucket-map in sorted order, for
// deterministic export.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// flattenTargets converts a sentTargets map to its deterministic wire form.
func flattenTargets(m map[string]map[string]struct{}) []targetsEntry {
	out := make([]targetsEntry, 0, len(m))
	for _, k := range sortedKeys(m) {
		ts := make([]string, 0, len(m[k]))
		for t := range m[k] {
			ts = append(ts, t)
		}
		sort.Strings(ts)
		out = append(out, targetsEntry{Key: k, Targets: ts})
	}
	return out
}

// restoreTargets rebuilds a sentTargets map from its wire form.
func restoreTargets(entries []targetsEntry) map[string]map[string]struct{} {
	m := make(map[string]map[string]struct{}, len(entries))
	for _, e := range entries {
		ts := make(map[string]struct{}, len(e.Targets))
		for _, t := range e.Targets {
			ts[t] = struct{}{}
		}
		m[e.Key] = ts
	}
	return m
}

// ExportHandoff removes node n's movable engine state from this process
// and returns it as a handoffMsg bound for n on its new owning process.
// The second return is false when there was nothing to move. The caller
// delivers the message through the transport; a lost delivery loses the
// state, so callers should use the acked delivery path.
func (e *Engine) ExportHandoff(n *chord.Node) (chord.Message, bool) {
	st := e.state(n)
	var m handoffMsg
	var removedRewriter, removedEvaluator int

	st.mu.Lock()
	for _, input := range sortedKeys(st.alqt) {
		b := st.alqt[input]
		delete(st.alqt, input)
		removedRewriter += b.storedItems()
		sec := alSection{
			Input:        b.input,
			SentRewrites: sortedKeys(b.sentRewrites),
			SentTargets:  flattenTargets(b.sentTargets),
		}
		for _, cond := range condsOf(b.byCond, b.condOrder) {
			g := b.byCond[cond]
			sec.Groups = append(sec.Groups, alGroupSection{Cond: g.cond, Side: g.side, Queries: g.queries})
		}
		for _, cond := range sortedKeys(b.multi) {
			g := b.multi[cond]
			sec.Multi = append(sec.Multi, alMultiSection{Cond: g.cond, Queries: g.queries})
		}
		m.AL = append(m.AL, sec)
	}
	for _, input := range sortedKeys(st.vlqt) {
		b := st.vlqt[input]
		delete(st.vlqt, input)
		removedEvaluator += len(b.byKey)
		sec := vqSection{Input: b.input}
		for _, sr := range b.sorted {
			sec.Entries = append(sec.Entries, vqEntry{Rw: sr.rw, Times: sr.times})
		}
		m.VQ = append(m.VQ, sec)
	}
	for _, input := range sortedKeys(st.mvlqt) {
		b := st.mvlqt[input]
		delete(st.mvlqt, input)
		removedEvaluator += len(b.rewrites)
		m.MQ = append(m.MQ, mqSection{
			Input:       b.input,
			Rewrites:    b.rewrites,
			SentTargets: flattenTargets(b.sentTargets),
		})
	}
	for _, input := range sortedKeys(st.vltt) {
		b := st.vltt[input]
		delete(st.vltt, input)
		removedEvaluator += len(b.tuples)
		m.VT = append(m.VT, vtSection{Input: b.input, Tuples: b.tuples})
	}
	for _, input := range sortedKeys(st.vstore) {
		b := st.vstore[input]
		delete(st.vstore, input)
		removedEvaluator += b.storedItems()
		sec := dvSection{Input: b.input}
		for _, cond := range sortedKeys(b.byCond) {
			entry := b.byCond[cond]
			sec.Entries = append(sec.Entries, dvEntry{
				Cond:  entry.cond,
				Left:  entry.tuples[query.SideLeft],
				Right: entry.tuples[query.SideRight],
			})
		}
		m.DV = append(m.DV, sec)
	}
	for _, sub := range sortedKeys(st.storedNotifs) {
		batch := st.storedNotifs[sub]
		delete(st.storedNotifs, sub)
		removedEvaluator += len(batch)
		m.Notifs = append(m.Notifs, notifSection{Subscriber: sub, Batch: batch})
	}
	st.mu.Unlock()

	st.load.AddStorage(metrics.Rewriter, -removedRewriter)
	st.load.AddStorage(metrics.Evaluator, -removedEvaluator)

	empty := len(m.AL) == 0 && len(m.VQ) == 0 && len(m.MQ) == 0 &&
		len(m.VT) == 0 && len(m.DV) == 0 && len(m.Notifs) == 0
	return m, !empty
}

// handleHandoff merges an incoming hand-off into this node's state through
// the same keyed merges TransferKeys uses, so a retried or duplicated
// hand-off delivery adds nothing twice. Stored notifications whose
// subscriber is this node are replayed immediately.
func (st *nodeState) handleHandoff(on *chord.Node, m handoffMsg) {
	st.merge(on, m, true)
}

// merge installs a handoffMsg into this node's tables. With replayNotifs
// set (the live hand-off path) stored notifications addressed to this node
// are replayed immediately; snapshot restore passes false so recovered
// offline queues stay queued exactly as exported.
func (st *nodeState) merge(on *chord.Node, m handoffMsg, replayNotifs bool) {
	var addedRewriter, addedEvaluator int
	var replay []string

	st.mu.Lock()
	for _, sec := range m.AL {
		b := newALBucket(sec.Input)
		for _, g := range sec.Groups {
			b.byCond[g.Cond] = &queryGroup{cond: g.Cond, side: g.Side, queries: g.Queries}
			b.condOrder = append(b.condOrder, g.Cond)
		}
		for _, g := range sec.Multi {
			b.multi[g.Cond] = &mGroup{cond: g.Cond, queries: g.Queries}
		}
		for _, k := range sec.SentRewrites {
			b.sentRewrites[k] = true
		}
		b.sentTargets = restoreTargets(sec.SentTargets)
		addedRewriter += st.mergeAL(b)
	}
	for _, sec := range m.VQ {
		b := newVLQTBucket(sec.Input)
		for _, e := range sec.Entries {
			sr := &storedRewrite{rw: e.Rw, times: e.Times}
			b.byKey[e.Rw.Key] = sr
			b.sorted = append(b.sorted, sr)
		}
		addedEvaluator += st.mergeVLQT(b)
	}
	for _, sec := range m.MQ {
		b := &mvlqtBucket{
			input:       sec.Input,
			rewrites:    sec.Rewrites,
			sentTargets: restoreTargets(sec.SentTargets),
		}
		addedEvaluator += st.mergeMVLQT(b)
	}
	for _, sec := range m.VT {
		b := newVLTTBucket(sec.Input)
		b.tuples = sec.Tuples
		for _, t := range sec.Tuples {
			b.seen[tupleContentKey(t)] = true
		}
		addedEvaluator += st.mergeVLTT(b)
	}
	for _, sec := range m.DV {
		b := newDAIVBucket(sec.Input)
		for _, e := range sec.Entries {
			entry := &daivEntry{cond: e.Cond, seen: make(map[string]bool, len(e.Left)+len(e.Right))}
			entry.tuples[query.SideLeft] = e.Left
			entry.tuples[query.SideRight] = e.Right
			for _, t := range e.Left {
				entry.seen[tupleContentKey(t)] = true
			}
			for _, t := range e.Right {
				entry.seen[tupleContentKey(t)] = true
			}
			b.byCond[e.Cond] = entry
		}
		addedEvaluator += st.mergeDAIV(b)
	}
	for _, sec := range m.Notifs {
		st.storedNotifs[sec.Subscriber] = append(st.storedNotifs[sec.Subscriber], sec.Batch...)
		addedEvaluator += len(sec.Batch)
		if replayNotifs && sec.Subscriber == on.Key() {
			replay = append(replay, sec.Subscriber)
		}
	}
	st.mu.Unlock()

	st.load.AddStorage(metrics.Rewriter, addedRewriter)
	st.load.AddStorage(metrics.Evaluator, addedEvaluator)
	for _, sub := range replay {
		st.replayStoredNotifications(sub, on)
	}
}
