package engine

import (
	"reflect"
	"testing"

	"cqjoin/internal/metrics"
)

// Tests for adaptive hot-key sharding (DESIGN.md §13). Every scenario runs
// the same publish sequence against a sharding engine and an unsharded
// oracle engine and requires identical notification content — sharding may
// only move work, never change results.

func hotConfig(on bool) Config {
	cfg := Config{Algorithm: SAI, Seed: 7}
	if on {
		cfg.HotKeyThreshold = 8
		cfg.HotKeyReplicas = 4
		cfg.HotKeyWindow = 1 << 20
	}
	return cfg
}

// publishHotPair inserts nS S-tuples and nR R-tuples that all join on one
// hot value (R.B = S.E = 7) with otherwise distinct attributes, so exactly
// one value-level input per side concentrates the traffic.
func publishHotPair(t *testing.T, env *testEnv, nS, nR int) {
	t.Helper()
	for i := 0; i < nS; i++ {
		env.publish(t, 1+i, sTuple(env, float64(i), 7, float64(i)))
	}
	for i := 0; i < nR; i++ {
		env.publish(t, 2+i, rTuple(env, float64(i), 7, float64(i)))
	}
}

func TestHotKeyShardingReducesMaxLoad(t *testing.T) {
	run := func(on bool) (*testEnv, metrics.Distribution) {
		env := newTestEnv(t, 64, hotConfig(on))
		env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
		publishHotPair(t, env, 120, 30)
		return env, metrics.SummarizeInt(env.eng.RoleLoads(metrics.Evaluator, false))
	}
	envOff, distOff := run(false)
	envOn, distOn := run(true)

	if got, want := contentKeys(envOn.eng.Notifications()), contentKeys(envOff.eng.Notifications()); !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded run delivered %d notifications, oracle %d", len(got), len(want))
	}
	if len(envOff.eng.Notifications()) != 120*30 {
		t.Fatalf("oracle delivered %d notifications, want %d", len(envOff.eng.Notifications()), 120*30)
	}
	hot := envOn.eng.HotKeys()
	if len(hot) == 0 {
		t.Fatal("no promoted inputs after a skewed stream")
	}
	for _, h := range hot {
		if h.Replicas != 4 || h.Version == 0 {
			t.Fatalf("unexpected hot-key state: %+v", h)
		}
	}
	if keys := envOff.eng.HotKeys(); keys != nil {
		t.Fatalf("disabled engine reports hot keys: %v", keys)
	}
	// The point of the layer: the hottest evaluator sheds at least half its
	// filtering load, and the load spread tightens.
	if 2*distOn.Max > distOff.Max {
		t.Fatalf("max evaluator load %.0f not halved from %.0f", distOn.Max, distOff.Max)
	}
	if distOn.Gini >= distOff.Gini {
		t.Fatalf("evaluator Gini %.3f did not drop from %.3f", distOn.Gini, distOff.Gini)
	}
}

func TestHotKeyUniformWorkloadIdentical(t *testing.T) {
	// Values spread wide: no input crosses the threshold, so the layer must
	// be a strict no-op — same notifications in the same order, same loads.
	run := func(on bool) *testEnv {
		env := newTestEnv(t, 64, hotConfig(on))
		env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
		for i := 0; i < 60; i++ {
			env.publish(t, 1+i, sTuple(env, float64(i), float64(i%20), float64(i)))
			env.publish(t, 2+i, rTuple(env, float64(i), float64(i%20), float64(i)))
		}
		return env
	}
	envOff := run(false)
	envOn := run(true)
	if len(envOn.eng.HotKeys()) != 0 {
		t.Fatalf("uniform workload promoted inputs: %v", envOn.eng.HotKeys())
	}
	if got, want := envOn.eng.DeliveredContentKeys(), envOff.eng.DeliveredContentKeys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("delivery sequences diverge: %d vs %d", len(got), len(want))
	}
	if got, want := envOn.eng.FilteringLoads(), envOff.eng.FilteringLoads(); !reflect.DeepEqual(got, want) {
		t.Fatalf("filtering loads diverge:\n on=%v\noff=%v", got, want)
	}
	if got, want := envOn.eng.StorageLoads(), envOff.eng.StorageLoads(); !reflect.DeepEqual(got, want) {
		t.Fatalf("storage loads diverge:\n on=%v\noff=%v", got, want)
	}
}

func TestHotKeyDemotion(t *testing.T) {
	run := func(on bool) *testEnv {
		cfg := Config{Algorithm: SAI, Seed: 7}
		if on {
			cfg.HotKeyThreshold = 8
			cfg.HotKeyReplicas = 4
			cfg.HotKeyWindow = 16
			cfg.HotKeyDemoteBelow = 4
		}
		env := newTestEnv(t, 64, cfg)
		env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
		// Burst: promotes S+E+7 (or R+B+7, depending on the index side).
		for i := 0; i < 20; i++ {
			env.publish(t, 1+i, sTuple(env, float64(i), 7, float64(i)))
		}
		// Cool-down: distinct cold values roll the hot input's window with
		// sparse counts until a completed window falls below the demotion
		// floor. Two rounds: the first completed window still holds the
		// burst's tail.
		for round := 0; round < 3; round++ {
			for i := 0; i < 20; i++ {
				v := float64(100 + round*40 + i)
				env.publish(t, 3+i, sTuple(env, v, 1000+v, 2000+v))
			}
			env.publish(t, 5, sTuple(env, float64(500+round), 7, float64(500+round)))
		}
		// Post-demotion matching must see every stored hot tuple.
		for i := 0; i < 5; i++ {
			env.publish(t, 7+i, rTuple(env, float64(i), 7, float64(i)))
		}
		return env
	}
	envOff := run(false)
	envOn := run(true)
	if keys := envOn.eng.HotKeys(); len(keys) != 0 {
		t.Fatalf("inputs still promoted after cool-down: %v", keys)
	}
	if got, want := contentKeys(envOn.eng.Notifications()), contentKeys(envOff.eng.Notifications()); !reflect.DeepEqual(got, want) {
		t.Fatalf("demotion lost or duplicated matches: %d vs %d", len(got), len(want))
	}
}

func TestHotKeyEscalation(t *testing.T) {
	run := func(on bool) *testEnv {
		cfg := Config{Algorithm: SAI, Seed: 7}
		if on {
			cfg.HotKeyThreshold = 8
			cfg.HotKeyReplicas = 4
			cfg.HotKeyWindow = 1 << 20
			cfg.HotKeyExtremeThreshold = 25
			cfg.HotKeyExtremeReplicas = 6
		}
		env := newTestEnv(t, 64, cfg)
		env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
		publishHotPair(t, env, 60, 15)
		return env
	}
	envOff := run(false)
	envOn := run(true)
	hot := envOn.eng.HotKeys()
	if len(hot) == 0 {
		t.Fatal("no promoted inputs")
	}
	escalated := false
	for _, h := range hot {
		if h.Replicas == 6 {
			escalated = true
		}
	}
	if !escalated {
		t.Fatalf("no input escalated to 6 replicas: %+v", hot)
	}
	if got, want := contentKeys(envOn.eng.Notifications()), contentKeys(envOff.eng.Notifications()); !reflect.DeepEqual(got, want) {
		t.Fatalf("escalation lost or duplicated matches: %d vs %d", len(got), len(want))
	}
}

func TestHotKeyUnsubscribePurgesShards(t *testing.T) {
	env := newTestEnv(t, 64, hotConfig(true))
	q := env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	publishHotPair(t, env, 30, 10)
	if len(env.eng.HotKeys()) == 0 {
		t.Fatal("no promoted inputs")
	}
	before := len(env.eng.Notifications())
	if before == 0 {
		t.Fatal("no notifications before retraction")
	}
	if err := env.eng.Unsubscribe(env.node(0), q); err != nil {
		t.Fatalf("Unsubscribe: %v", err)
	}
	// New arrivals on the hot value: rewrite copies at every shard bucket
	// must be gone, or the stale copies would keep matching.
	for i := 0; i < 20; i++ {
		env.publish(t, 3+i, sTuple(env, float64(200+i), 7, float64(200+i)))
	}
	for i := 0; i < 5; i++ {
		env.publish(t, 4+i, rTuple(env, float64(200+i), 7, float64(200+i)))
	}
	if after := len(env.eng.Notifications()); after != before {
		t.Fatalf("%d notifications after retraction, want %d", after, before)
	}
}

func TestHotKeyBatchParallelDeterminism(t *testing.T) {
	build := func() (*testEnv, []PublishOp) {
		env := newTestEnv(t, 64, hotConfig(true))
		env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
		var ops []PublishOp
		for i := 0; i < 60; i++ {
			ops = append(ops, PublishOp{From: env.node(1 + i), T: sTuple(env, float64(i), 7, float64(i))})
			if i%3 == 0 {
				ops = append(ops, PublishOp{From: env.node(2 + i), T: rTuple(env, float64(i), 7, float64(i))})
			}
			ops = append(ops, PublishOp{From: env.node(3 + i), T: sTuple(env, float64(i), float64(100+i), 0)})
		}
		return env, ops
	}
	run := func(workers int) *testEnv {
		env, ops := build()
		if err := env.eng.PublishBatch(ops, workers); err != nil {
			t.Fatalf("PublishBatch(workers=%d): %v", workers, err)
		}
		return env
	}
	env1 := run(1)
	env8 := run(8)
	if len(env1.eng.HotKeys()) == 0 {
		t.Fatal("batched skew promoted nothing")
	}
	if !reflect.DeepEqual(env1.eng.HotKeys(), env8.eng.HotKeys()) {
		t.Fatalf("hot-key registries diverge:\n w1=%v\n w8=%v", env1.eng.HotKeys(), env8.eng.HotKeys())
	}
	if got, want := env8.eng.DeliveredContentKeys(), env1.eng.DeliveredContentKeys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("delivery sequences diverge across worker counts: %d vs %d", len(got), len(want))
	}
	if got, want := env8.eng.FilteringLoads(), env1.eng.FilteringLoads(); !reflect.DeepEqual(got, want) {
		t.Fatalf("filtering loads diverge across worker counts")
	}
}
