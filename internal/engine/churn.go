package engine

import (
	"cqjoin/internal/chord"
)

// Engine-level churn: crash and rejoin with the state semantics the thesis
// assumes (Section 4.6). chord.Network.Fail models the overlay side of a
// crash — routing recovers through successor lists — but says nothing about
// the crashed node's stored queries, tuples and notifications. In a real
// deployment those survive on the successor-list replicas and the successor
// takes ownership of the dead node's arc. The simulation keeps one copy of
// every item, so FailNode models "replicas take over" by handing the whole
// state to the node that inherits the arc.

// FailNode crashes n: it leaves the overlay abruptly (no goodbye protocol,
// pointers recover via successor lists and stabilization) and the stored
// state of its arc re-homes to the new arc owner, as replication would
// ensure. Stored notifications whose subscriber is the heir itself are
// replayed. No-op for a node that is already down.
func (e *Engine) FailNode(n *chord.Node) {
	if !n.Alive() {
		return
	}
	st := e.state(n)
	e.net.Fail(n)
	// The alive owner of n's former arc, post-crash.
	if heir := e.net.OracleSuccessor(n.ID()); heir != nil && heir != n {
		st.TransferKeys(n, heir, n.ID(), n.ID())
	}
	e.Detach(n)
}

// FailNodeProtocol crashes n like FailNode but uses chord's protocol-only
// removal: no oracle pointer repairs run, so the overlay heals purely
// through check-predecessor, successor-list failover and stabilization.
// The state plane still re-homes the dead node's arc to its oracle heir —
// that models "successor-list replicas take over", which is orthogonal to
// how fast the pointer plane converges.
func (e *Engine) FailNodeProtocol(n *chord.Node) {
	if !n.Alive() {
		return
	}
	st := e.state(n)
	e.net.FailProtocol(n)
	if heir := e.net.OracleSuccessor(n.ID()); heir != nil && heir != n {
		st.TransferKeys(n, heir, n.ID(), n.ID())
	}
	e.Detach(n)
}

// JoinNodeProtocol adds a brand-new node through the join protocol: only a
// successor lookup runs at join time; the ring splice and the key hand-off
// to the joiner happen when stabilization next runs (the successor adopts
// the joiner on notify and transfers (oldPred, joiner] through the
// engine's TransferKeys).
func (e *Engine) JoinNodeProtocol(key string) (*chord.Node, error) {
	n, err := e.net.JoinProtocol(key)
	if err != nil {
		return nil, err
	}
	e.Attach(n)
	return n, nil
}

// LeaveNodeProtocol removes n voluntarily through the leave protocol: n
// hands its whole arc to its successor (replaying stored notifications
// whose subscriber is the successor) and departs; remaining stale pointers
// heal through stabilization.
func (e *Engine) LeaveNodeProtocol(n *chord.Node) {
	if !n.Alive() {
		return
	}
	e.net.LeaveProtocol(n)
	e.Detach(n)
}

// RejoinNodeProtocol brings a crashed subscriber back under the same key
// through the join protocol. Unlike RejoinNode, the arc's state (and the
// stored-notification replay) arrives only after the successor's next
// notify-adoption, not synchronously with the join.
func (e *Engine) RejoinNodeProtocol(key string) (*chord.Node, error) {
	n, err := e.net.JoinProtocol(key)
	if err != nil {
		return nil, err
	}
	e.Attach(n)
	return n, nil
}

// RejoinNode brings a previously crashed subscriber back under the same
// key, hence the same ring position Hash(key). The join's key hand-off
// returns the arc's state to it, and TransferKeys replays the
// notifications that were stored for it while it was offline
// (Section 4.6). The rejoined incarnation is a distinct *chord.Node with a
// fresh engine state and, in general, a new IP address — exactly the
// situation the stale-IP notification ladder of notify.go must survive.
func (e *Engine) RejoinNode(key string) (*chord.Node, error) {
	n, err := e.net.Join(key)
	if err != nil {
		return nil, err
	}
	// Join's TransferKeys already attached the state lazily; Attach is
	// idempotent and guarantees the handler is bound even on an empty ring.
	e.Attach(n)
	return n, nil
}
