package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"cqjoin/internal/chord"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
)

// testEnv bundles an overlay, catalog and engine for the canonical
// R(A,B,C) ⋈ S(D,E,F) workload plus the thesis e-learning schema.
type testEnv struct {
	net     *chord.Network
	eng     *Engine
	catalog *relation.Catalog
	r, s    *relation.Schema
	doc     *relation.Schema
	authors *relation.Schema
	nodes   []*chord.Node
}

func newTestEnv(t testing.TB, nNodes int, cfg Config) *testEnv {
	t.Helper()
	r := relation.MustSchema("R", "A", "B", "C")
	s := relation.MustSchema("S", "D", "E", "F")
	doc := relation.MustSchema("Document", "Id", "Title", "Conference", "AuthorId")
	authors := relation.MustSchema("Authors", "Id", "Name", "Surname")
	catalog := relation.MustCatalog(r, s, doc, authors)

	net := chord.New(chord.Config{})
	net.AddNodes("peer", nNodes)
	eng := New(net, catalog, cfg)
	return &testEnv{net: net, eng: eng, catalog: catalog, r: r, s: s, doc: doc, authors: authors, nodes: net.Nodes()}
}

func (env *testEnv) node(i int) *chord.Node { return env.nodes[i%len(env.nodes)] }

func (env *testEnv) subscribe(t testing.TB, nodeIdx int, sql string) *query.Query {
	t.Helper()
	q, err := env.eng.Subscribe(env.node(nodeIdx), query.MustParse(env.catalog, sql))
	if err != nil {
		t.Fatalf("Subscribe(%q): %v", sql, err)
	}
	return q
}

func (env *testEnv) publish(t testing.TB, nodeIdx int, tuple *relation.Tuple) *relation.Tuple {
	t.Helper()
	tt, err := env.eng.Publish(env.node(nodeIdx), tuple)
	if err != nil {
		t.Fatalf("Publish(%s): %v", tuple, err)
	}
	return tt
}

func rTuple(env *testEnv, a, b, c float64) *relation.Tuple {
	return relation.MustTuple(env.r, relation.N(a), relation.N(b), relation.N(c))
}

func sTuple(env *testEnv, d, e, f float64) *relation.Tuple {
	return relation.MustTuple(env.s, relation.N(d), relation.N(e), relation.N(f))
}

func contentKeys(ns []Notification) []string {
	keys := make([]string, len(ns))
	for i, n := range ns {
		keys[i] = n.ContentKey()
	}
	sort.Strings(keys)
	return keys
}

func algorithms() []Algorithm {
	return []Algorithm{SAI, DAIQ, DAIT, DAIV, BaselineRelation, BaselineAttribute, BaselinePair}
}

// --- Basic two-phase evaluation, all algorithms -------------------------

func TestNotificationTupleAfterQuery(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			env := newTestEnv(t, 32, Config{Algorithm: alg})
			q := env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
			env.publish(t, 1, rTuple(env, 1, 7, 0))
			env.publish(t, 2, sTuple(env, 2, 7, 0))
			got := env.eng.Notifications()
			if len(got) != 1 {
				t.Fatalf("%d notifications, want 1: %v", len(got), got)
			}
			n := got[0]
			if n.QueryKey != q.Key() || n.Subscriber != env.node(0).Key() {
				t.Fatalf("notification identity wrong: %+v", n)
			}
			if len(n.Values) != 2 || !n.Values[0].Equal(relation.N(1)) || !n.Values[1].Equal(relation.N(2)) {
				t.Fatalf("notification values wrong: %v", n.Values)
			}
			if n.LeftPubT == 0 || n.RightPubT == 0 || n.LeftPubT >= n.RightPubT {
				t.Fatalf("pub times wrong: %d, %d", n.LeftPubT, n.RightPubT)
			}
		})
	}
}

func TestNotificationBothOrders(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			env := newTestEnv(t, 32, Config{Algorithm: alg})
			env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
			// S tuple first, then R: the rewritten query must find the
			// stored tuple (completeness, Section 4.3.4).
			env.publish(t, 1, sTuple(env, 2, 7, 0))
			env.publish(t, 2, rTuple(env, 1, 7, 0))
			if got := env.eng.Notifications(); len(got) != 1 {
				t.Fatalf("%d notifications, want 1", len(got))
			}
		})
	}
}

func TestNoMatchNoNotification(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			env := newTestEnv(t, 32, Config{Algorithm: alg})
			env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
			env.publish(t, 1, rTuple(env, 1, 7, 0))
			env.publish(t, 2, sTuple(env, 2, 8, 0)) // 7 != 8
			if got := env.eng.Notifications(); len(got) != 0 {
				t.Fatalf("unexpected notifications: %v", got)
			}
		})
	}
}

// Section 3.2: only tuples inserted after a query was posed can trigger it.
func TestTimeSemantics(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			env := newTestEnv(t, 32, Config{Algorithm: alg})
			env.publish(t, 1, rTuple(env, 1, 7, 0)) // before the query
			env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
			env.publish(t, 2, sTuple(env, 2, 7, 0)) // after: has no partner
			if got := env.eng.Notifications(); len(got) != 0 {
				t.Fatalf("pre-insertion tuple triggered: %v", got)
			}
			// A fresh pair after the query still works.
			env.publish(t, 3, rTuple(env, 5, 9, 0))
			env.publish(t, 4, sTuple(env, 6, 9, 0))
			if got := env.eng.Notifications(); len(got) != 1 {
				t.Fatalf("%d notifications, want 1", len(got))
			}
		})
	}
}

func TestSelectionPredicateFiltersBothSides(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			env := newTestEnv(t, 32, Config{Algorithm: alg})
			env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E AND S.F = 1 AND R.C = 2`)
			env.publish(t, 1, rTuple(env, 1, 7, 2))  // passes R.C = 2
			env.publish(t, 2, sTuple(env, 2, 7, 0))  // fails S.F = 1
			env.publish(t, 3, sTuple(env, 3, 7, 1))  // passes
			env.publish(t, 4, rTuple(env, 4, 7, 99)) // fails R.C = 2
			got := env.eng.Notifications()
			if len(got) != 1 {
				t.Fatalf("%d notifications, want 1: %v", len(got), got)
			}
			if !got[0].Values[1].Equal(relation.N(3)) {
				t.Fatalf("matched wrong S tuple: %v", got[0].Values)
			}
		})
	}
}

// The thesis Section 3.2 end-to-end example.
func TestELearningExample(t *testing.T) {
	env := newTestEnv(t, 64, Config{Algorithm: SAI})
	env.subscribe(t, 0, `
		SELECT D.Title, D.Conference
		FROM Document AS D, Authors AS A
		WHERE D.AuthorId = A.Id AND A.Surname = 'Smith'`)
	env.publish(t, 1, relation.MustTuple(env.authors, relation.N(17), relation.S("John"), relation.S("Smith")))
	env.publish(t, 2, relation.MustTuple(env.authors, relation.N(18), relation.S("Ann"), relation.S("Jones")))
	env.publish(t, 3, relation.MustTuple(env.doc, relation.N(1), relation.S("P2P Joins"), relation.S("ICDE"), relation.N(17)))
	env.publish(t, 4, relation.MustTuple(env.doc, relation.N(2), relation.S("Other"), relation.S("VLDB"), relation.N(18)))
	got := env.eng.Notifications()
	if len(got) != 1 {
		t.Fatalf("%d notifications, want 1: %v", len(got), got)
	}
	if !got[0].Values[0].Equal(relation.S("P2P Joins")) || !got[0].Values[1].Equal(relation.S("ICDE")) {
		t.Fatalf("wrong paper notified: %v", got[0].Values)
	}
}

// --- Cross-algorithm equivalence ----------------------------------------

// All algorithms must deliver the same set of distinct notification
// contents on a random workload — the correctness invariant behind the
// duplicate-avoidance discussion of Section 4.4.
func TestAlgorithmsAgreeOnRandomWorkload(t *testing.T) {
	type run struct {
		alg  Algorithm
		keys []string
	}
	var runs []run
	for _, alg := range algorithms() {
		env := newTestEnv(t, 48, Config{Algorithm: alg, Seed: 42})
		rng := rand.New(rand.NewSource(7))
		// A mix of queries over a small value domain to force matches,
		// interleaved with tuples.
		for i := 0; i < 8; i++ {
			env.subscribe(t, i, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
			env.subscribe(t, i+8, fmt.Sprintf(
				`SELECT R.A FROM R, S WHERE R.C = S.F AND S.D > %d`, rng.Intn(3)))
		}
		for i := 0; i < 60; i++ {
			if rng.Intn(2) == 0 {
				env.publish(t, rng.Intn(48), rTuple(env, float64(rng.Intn(5)), float64(rng.Intn(4)), float64(rng.Intn(4))))
			} else {
				env.publish(t, rng.Intn(48), sTuple(env, float64(rng.Intn(5)), float64(rng.Intn(4)), float64(rng.Intn(4))))
			}
		}
		keys := contentKeys(env.eng.Notifications())
		keys = dedup(keys)
		if len(keys) == 0 {
			t.Fatalf("%s: workload produced no notifications; test is vacuous", alg)
		}
		runs = append(runs, run{alg, keys})
	}
	base := runs[0]
	for _, r := range runs[1:] {
		if !equalStrings(base.keys, r.keys) {
			t.Fatalf("%s and %s disagree:\n%s: %d keys\n%s: %d keys\ndiff: %v",
				base.alg, r.alg, base.alg, len(base.keys), r.alg, len(r.keys),
				diffStrings(base.keys, r.keys))
		}
	}
}

// The four main algorithms must not deliver duplicate notifications for
// the T1 workload (Figure 4.3's trap).
func TestNoDuplicateNotifications(t *testing.T) {
	for _, alg := range []Algorithm{SAI, DAIQ, DAIT, DAIV} {
		t.Run(alg.String(), func(t *testing.T) {
			env := newTestEnv(t, 48, Config{Algorithm: alg, Seed: 1})
			env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
			env.publish(t, 1, rTuple(env, 1, 7, 0))
			env.publish(t, 2, sTuple(env, 2, 7, 0))
			env.publish(t, 3, sTuple(env, 3, 7, 0))
			env.publish(t, 4, rTuple(env, 4, 7, 0))
			got := env.eng.Notifications()
			// Pairs: (1,2), (1,3), (4,2), (4,3) — all with distinct
			// contents.
			if len(got) != 4 {
				t.Fatalf("%d notifications, want 4: %v", len(got), got)
			}
			keys := contentKeys(got)
			if len(dedup(keys)) != 4 {
				t.Fatalf("duplicate notification contents: %v", keys)
			}
		})
	}
}

// --- DAI-V and type-T2 queries ------------------------------------------

func TestT2QueryOnlyDAIV(t *testing.T) {
	sql := `SELECT R.A, S.D FROM R, S WHERE 4 * R.B + R.C + 8 = 5 * S.E + S.D - S.F`
	for _, alg := range []Algorithm{SAI, DAIQ, DAIT, BaselineAttribute, BaselinePair} {
		env := newTestEnv(t, 16, Config{Algorithm: alg})
		if _, err := env.eng.Subscribe(env.node(0), query.MustParse(env.catalog, sql)); err == nil {
			t.Fatalf("%s accepted a T2 query", alg)
		}
	}

	env := newTestEnv(t, 32, Config{Algorithm: DAIV})
	env.subscribe(t, 0, sql)
	// Section 4.5's example: R(B=4, C=9) gives 4*4+9+8 = 33.
	env.publish(t, 1, rTuple(env, 1, 4, 9))
	// Right side: 5*E + D - F = 33 with E=6, D=4, F=1.
	env.publish(t, 2, sTuple(env, 4, 6, 1))
	got := env.eng.Notifications()
	if len(got) != 1 {
		t.Fatalf("%d notifications, want 1: %v", len(got), got)
	}
	if !got[0].Values[0].Equal(relation.N(1)) || !got[0].Values[1].Equal(relation.N(4)) {
		t.Fatalf("values = %v", got[0].Values)
	}
}

// The relation-level baseline stores whole tuples per relation and
// evaluates arbitrary conditions at probe time, so it handles T2 queries
// too — and must agree with DAI-V.
func TestT2BaselineRelationAgreesWithDAIV(t *testing.T) {
	sql := `SELECT R.A, S.D FROM R, S WHERE R.B + R.C = S.E * S.F`
	var results [][]string
	for _, alg := range []Algorithm{DAIV, BaselineRelation} {
		env := newTestEnv(t, 32, Config{Algorithm: alg})
		env.subscribe(t, 0, sql)
		env.publish(t, 1, rTuple(env, 1, 2, 4)) // left = 6
		env.publish(t, 2, sTuple(env, 9, 2, 3)) // right = 6: match
		env.publish(t, 3, sTuple(env, 9, 2, 4)) // right = 8: no match
		results = append(results, dedup(contentKeys(env.eng.Notifications())))
	}
	if !equalStrings(results[0], results[1]) {
		t.Fatalf("DAI-V %v != baseline %v", results[0], results[1])
	}
	if len(results[0]) != 1 {
		t.Fatalf("want exactly 1 distinct notification, got %v", results[0])
	}
}

// Two queries with different conditions can map tuples to the same DAI-V
// evaluator (same valJC); their stores must stay separate per condition.
func TestDAIVValueCollisionAcrossConditions(t *testing.T) {
	env := newTestEnv(t, 32, Config{Algorithm: DAIV, Seed: 4})
	env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	env.subscribe(t, 1, `SELECT R.A, S.D FROM R, S WHERE R.C = S.F`)
	// Both conditions take the value 7: identical evaluator identifier.
	env.publish(t, 2, rTuple(env, 1, 7, 99)) // matches cond 1 only (B=7)
	env.publish(t, 3, sTuple(env, 2, 7, 7))  // E=7 matches cond 1; F=7 waits on cond 2
	got := env.eng.Notifications()
	if len(got) != 1 {
		t.Fatalf("%d notifications, want 1 (cross-condition leak?): %v", len(got), got)
	}
	if !got[0].Values[0].Equal(relation.N(1)) || !got[0].Values[1].Equal(relation.N(2)) {
		t.Fatalf("values = %v", got[0].Values)
	}
	// Now complete condition 2 with R.C = 7.
	env.publish(t, 4, rTuple(env, 5, 0, 7))
	got = env.eng.Notifications()
	if len(got) != 2 {
		t.Fatalf("%d notifications after cond-2 match, want 2: %v", len(got), got)
	}
}

func TestT2NonMatchingValues(t *testing.T) {
	env := newTestEnv(t, 32, Config{Algorithm: DAIV})
	env.subscribe(t, 0, `SELECT R.A FROM R, S WHERE R.B + R.C = S.E * S.F`)
	env.publish(t, 1, rTuple(env, 1, 2, 3)) // 5
	env.publish(t, 2, sTuple(env, 0, 2, 3)) // 6
	if got := env.eng.Notifications(); len(got) != 0 {
		t.Fatalf("unexpected notifications: %v", got)
	}
	env.publish(t, 3, sTuple(env, 0, 1, 5)) // 5: match
	if got := env.eng.Notifications(); len(got) != 1 {
		t.Fatalf("%d notifications, want 1", len(got))
	}
}

// Linear T1 sides must also work through rewriting (valDA inversion).
func TestLinearJoinConditionRewrite(t *testing.T) {
	for _, alg := range []Algorithm{SAI, DAIQ, DAIT, DAIV} {
		t.Run(alg.String(), func(t *testing.T) {
			env := newTestEnv(t, 32, Config{Algorithm: alg})
			env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE 2 * R.B = S.E + 4`)
			env.publish(t, 1, rTuple(env, 1, 5, 0)) // 2*5 = 10
			env.publish(t, 2, sTuple(env, 2, 6, 0)) // 6+4 = 10: match
			env.publish(t, 3, sTuple(env, 3, 5, 0)) // 9: no match
			got := env.eng.Notifications()
			if len(got) != 1 {
				t.Fatalf("%d notifications, want 1: %v", len(got), got)
			}
		})
	}
}

// --- helpers -------------------------------------------------------------

func dedup(sorted []string) []string {
	var out []string
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func diffStrings(a, b []string) []string {
	in := make(map[string]int)
	for _, s := range a {
		in[s]++
	}
	for _, s := range b {
		in[s]--
	}
	var out []string
	for s, c := range in {
		if c != 0 {
			out = append(out, fmt.Sprintf("%+d %s", c, s))
		}
	}
	sort.Strings(out)
	return out
}
