// Package engine implements the paper's primary contribution (Chapter 4):
// four distributed algorithms for evaluating continuous two-way equi-join
// queries over a DHT — SAI (single-attribute indexing), DAI-Q, DAI-T and
// DAI-V (double-attribute indexing) — together with the naive baselines of
// Section 4.1, the two-level ALQT/VLQT/VLTT hash tables of Section 4.3.5,
// notification creation and delivery (Section 4.6), and the optimizations
// of Section 4.7: the Join Fingers Routing Table and attribute-level
// replication.
//
// The engine installs itself as the message handler of every overlay node;
// query submissions and tuple insertions become overlay messages whose hops
// are charged to the network's traffic ledger, and each node accrues
// filtering (TF) and storage (TS) load in its metrics.Load, reproducing the
// measurement model of Chapter 5.
package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"cqjoin/internal/chord"
	"cqjoin/internal/id"
	"cqjoin/internal/metrics"
	"cqjoin/internal/obs"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
)

// Algorithm selects the query-processing protocol.
type Algorithm int

const (
	// SAI indexes each query under one join attribute (Section 4.3).
	SAI Algorithm = iota
	// DAIQ indexes under both join attributes; evaluators store tuples and
	// create notifications when rewritten queries arrive (Section 4.4.2).
	DAIQ
	// DAIT indexes under both join attributes; evaluators store rewritten
	// queries and create notifications when tuples arrive. Rewriters never
	// reindex the same rewritten query twice (Section 4.4.3).
	DAIT
	// DAIV indexes under both sides and maps rewritten queries to
	// evaluators by the value of the join-condition side alone, supporting
	// type-T2 queries (Section 4.5).
	DAIV
	// BaselineRelation is the naive scheme of Section 4.1 indexing queries
	// and tuples by relation name only: load concentrates on one node per
	// relation.
	BaselineRelation
	// BaselineAttribute indexes by relation+attribute name with no value
	// level: load bounded by the number of schema attributes.
	BaselineAttribute
	// BaselinePair indexes a query at Hash(R.A + S.B), the combination of
	// its two join attributes; tuples must reach every attribute pair.
	BaselinePair
)

// String names the algorithm as the paper does.
func (a Algorithm) String() string {
	switch a {
	case SAI:
		return "SAI"
	case DAIQ:
		return "DAI-Q"
	case DAIT:
		return "DAI-T"
	case DAIV:
		return "DAI-V"
	case BaselineRelation:
		return "naive-rel"
	case BaselineAttribute:
		return "naive-attr"
	case BaselinePair:
		return "naive-pair"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config parameterizes an Engine.
type Config struct {
	// Algorithm selects the protocol. The zero value is SAI.
	Algorithm Algorithm
	// Strategy picks the index attribute for SAI queries (Section 4.3.6).
	// The zero value is StrategyRandom.
	Strategy Strategy
	// UseJFRT enables the Join Fingers Routing Table (Section 4.7.1):
	// rewriters cache evaluator addresses so repeat reindexing costs one
	// hop instead of O(log N).
	UseJFRT bool
	// IterativeMultisend replaces the recursive multisend of Section 2.3
	// with k independent lookups, the comparison baseline of Figure 4.8.
	IterativeMultisend bool
	// ReplicationFactor k replicates the rewriter role of every attribute
	// over k nodes (Section 4.7.2). Queries are indexed at all replicas;
	// each incoming tuple is routed to one replica chosen by its attribute
	// value, splitting the filtering load. Values < 2 disable replication.
	ReplicationFactor int
	// DAIVKeyed enables the Section 4.5 extension of DAI-V that computes
	// evaluator identifiers as Key(q) + valJC: every query gets private
	// evaluators (best load spread, supports an even more expressive query
	// class) but rewritten queries can no longer be grouped, multiplying
	// traffic by roughly the number of co-triggered queries.
	DAIVKeyed bool
	// Window is the sliding-window length in logical time units: evaluator
	// tuples older than Window are evicted. Zero keeps tuples forever.
	Window int64
	// Seed drives the engine's private randomness (random index-attribute
	// choices). The same seed reproduces the same run.
	Seed int64
	// MaxRetries bounds how many times a sender re-sends a message whose
	// synchronous delivery ack is missing (dropped, delayed, or dead
	// destination). Zero disables retries — the paper's best-effort
	// semantics (Section 3.2), and the right setting for fault-free runs.
	// Chaos runs set it high enough that loss of all attempts is
	// statistically negligible (p_drop^(1+MaxRetries)).
	MaxRetries int
	// RetryBackoff is the logical-time advance between retry attempts.
	// Advancing the clock lets delayed in-flight copies land (the chaos
	// layer drains its delay queue on clock listeners), so a retry races
	// its own delayed original only briefly. Zero means 1.
	RetryBackoff int64
	// HotKeyThreshold enables adaptive hot-key sharding (DESIGN.md §13)
	// when positive: a value-level input receiving at least this many
	// arrivals within one HotKeyWindow promotes, sharding its evaluator
	// across HotKeyReplicas deterministic replica identifiers. Zero — the
	// default — disables the layer entirely. Only SAI shards (its
	// evaluators store both rewrites and tuples, which transition-time
	// state recovery relies on); other algorithms ignore these knobs.
	HotKeyThreshold int
	// HotKeyReplicas is the shard count k of a promoted input. Values < 2
	// default to 4.
	HotKeyReplicas int
	// HotKeyWindow is the logical-time length of the detector's counting
	// window. Values <= 0 default to 64.
	HotKeyWindow int64
	// HotKeyExtremeThreshold, when positive, escalates an already-promoted
	// input crossing this per-window rate to HotKeyExtremeReplicas shards —
	// the broadcast-style fallback for extreme keys. Zero disables
	// escalation.
	HotKeyExtremeThreshold int
	// HotKeyExtremeReplicas is the escalated shard count. Values <=
	// HotKeyReplicas default to 4× HotKeyReplicas.
	HotKeyExtremeReplicas int
	// HotKeyDemoteBelow, when positive, demotes a promoted input whose
	// completed-window arrival count falls below it. Zero disables
	// demotion (promoted inputs stay sharded).
	HotKeyDemoteBelow int
	// Obs receives the engine's metrics (message dispatch, notification
	// outcomes, retry/loss counts). Nil — the default — disables recording
	// at zero cost; because recording never influences protocol decisions,
	// a run is bit-identical with or without a registry.
	Obs *obs.Registry
}

// Engine coordinates query processing over one overlay.
type Engine struct {
	cfg     Config
	net     *chord.Network
	catalog *relation.Catalog
	obs     engObs
	ids     idCache
	hot     *hotTracker // non-nil iff hot-key sharding is configured

	// multiOn flags a registered multi-way pipeline: partial matches route
	// through value-level identifiers without shard awareness, so hot-key
	// sharding is suspended while set (see hotState).
	multiOn atomic.Bool

	// frozen is set while PublishBatch executes cascades: logical time then
	// belongs to the batch's pre-stamped sequence, so the retry-backoff
	// clock advances are suppressed (see advanceBackoff).
	frozen atomic.Bool

	mu        sync.Mutex
	states    map[*chord.Node]*nodeState
	byKey     map[string]*nodeState // subscriber key -> state (for delivery)
	seq       map[string]int        // per-subscriber query sequence numbers
	subs      map[string][]string   // query key -> attribute-level index inputs
	rng       *rand.Rand
	sink      []Notification
	delivered map[string]bool // full match identities already delivered
	onNotify  func(Notification)
	hasMulti  bool // a multi-way pipeline is registered (see SubscribeMulti)

	// Distinct join conditions ever indexed, in registration order. The
	// batch pipeline derives conflict keys from them (publish.go); the set
	// only grows, so reading a snapshot of the slice is safe.
	condMu   sync.Mutex
	conds    []*query.Query
	condSeen map[string]bool
}

// New creates an engine over the given overlay and schema catalog and
// attaches it to every node currently in the overlay. Nodes joining later
// must be attached with Attach.
func New(net *chord.Network, catalog *relation.Catalog, cfg Config) *Engine {
	if cfg.ReplicationFactor < 2 {
		cfg.ReplicationFactor = 1
	}
	e := &Engine{
		cfg:       cfg,
		net:       net,
		catalog:   catalog,
		obs:       newEngObs(cfg.Obs),
		states:    make(map[*chord.Node]*nodeState),
		byKey:     make(map[string]*nodeState),
		seq:       make(map[string]int),
		subs:      make(map[string][]string),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		delivered: make(map[string]bool),
		condSeen:  make(map[string]bool),
	}
	if cfg.HotKeyThreshold > 0 && cfg.Algorithm == SAI {
		e.hot = newHotTracker(cfg)
	}
	for _, n := range net.Nodes() {
		e.Attach(n)
	}
	return e
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Network returns the overlay the engine runs on.
func (e *Engine) Network() *chord.Network { return e.net }

// Attach installs the engine as node n's message handler and allocates its
// query-processing state.
func (e *Engine) Attach(n *chord.Node) *nodeState {
	e.mu.Lock()
	defer e.mu.Unlock()
	if st, ok := e.states[n]; ok {
		return st
	}
	st := newNodeState(e, n)
	e.states[n] = st
	e.byKey[n.Key()] = st
	n.SetHandler(st)
	return st
}

// Detach forgets node n's state (after it left the overlay for good).
func (e *Engine) Detach(n *chord.Node) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.states, n)
	if st, ok := e.byKey[n.Key()]; ok && st.node == n {
		delete(e.byKey, n.Key())
	}
}

// state returns the node's processing state, attaching lazily so nodes that
// joined after New participate transparently.
func (e *Engine) state(n *chord.Node) *nodeState {
	e.mu.Lock()
	st, ok := e.states[n]
	e.mu.Unlock()
	if ok {
		return st
	}
	return e.Attach(n)
}

// MoveNode re-positions a peer at a new ring identifier — the attribute-
// level load-balancing move of Section 4.7.2 (Figure 4.7). Placing an
// underloaded peer exactly at a hot identifier (id.Hash of the hot
// attribute input) makes it the new owner of that rewriter role; the ALQT
// bucket and all other stored items of the arc move with the ownership.
func (e *Engine) MoveNode(n *chord.Node, to id.ID) (*chord.Node, error) {
	moved, err := e.net.MoveNode(n, to)
	if err != nil {
		return nil, err
	}
	e.Detach(n)
	// chord.MoveNode carries the previous incarnation's handler over; the
	// engine instead binds the fresh per-node state (created lazily during
	// the join's key hand-off) so loads and tables follow the new node.
	st := e.Attach(moved)
	moved.SetHandler(st)
	return moved, nil
}

// OnNotify installs a callback invoked for every notification delivered to
// its subscriber (including replayed stored notifications).
func (e *Engine) OnNotify(fn func(Notification)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.onNotify = fn
}

// Notifications returns a copy of every notification delivered so far, in
// delivery order.
func (e *Engine) Notifications() []Notification {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Notification, len(e.sink))
	copy(out, e.sink)
	return out
}

// ResetNotifications clears the delivered-notification record (the load and
// traffic ledgers are reset through their own types).
func (e *Engine) ResetNotifications() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sink = nil
}

// deliveryKey is the full match identity of a notification: subscriber,
// projected content, and the publication times of the matched pair. Two
// distinct tuple pairs can project to equal values, so the content key
// alone is NOT an identity; publication times are (the logical clock gives
// every published tuple a unique timestamp).
func deliveryKey(n Notification) string {
	return fmt.Sprintf("%s|%s|%d|%d", n.Subscriber, n.ContentKey(), n.LeftPubT, n.RightPubT)
}

func (e *Engine) record(n Notification) {
	key := deliveryKey(n)
	e.mu.Lock()
	if e.delivered[key] {
		// A duplicated or replayed delivery of a match the subscriber has
		// already consumed: suppress it. This is the receiver-side half of
		// at-least-once delivery.
		e.mu.Unlock()
		e.net.Traffic().RecordDuplicate("notification")
		return
	}
	e.delivered[key] = true
	e.sink = append(e.sink, n)
	fn := e.onNotify
	e.mu.Unlock()
	if fn != nil {
		fn(n)
	}
}

// DeliveredContentKeys returns the content key of every delivered
// notification, in delivery order — the identity under which runs are
// compared against the centralized oracle.
func (e *Engine) DeliveredContentKeys() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, len(e.sink))
	for i, n := range e.sink {
		out[i] = n.ContentKey()
	}
	return out
}

// Subscribe indexes a continuous query on behalf of node from, assigning it
// a fresh key Key(q) and insertion time, and returns the identified query.
// The query must be type T1 unless the engine runs DAI-V (Section 4.5),
// the only algorithm evaluating type-T2 queries.
func (e *Engine) Subscribe(from *chord.Node, q *query.Query) (*query.Query, error) {
	if !from.Alive() {
		return nil, fmt.Errorf("engine: subscribe from departed node %s", from)
	}
	if q.Type() == query.T2 && e.cfg.Algorithm != DAIV && e.cfg.Algorithm != BaselineRelation {
		return nil, fmt.Errorf("engine: %s cannot evaluate type-T2 query %q; use DAI-V", e.cfg.Algorithm, q)
	}
	e.mu.Lock()
	e.seq[from.Key()]++
	seq := e.seq[from.Key()]
	e.mu.Unlock()

	qq := q.WithIdentity(from.Key(), from.IP(), seq).WithInsT(e.net.Clock().Tick())
	if err := e.indexQuery(from, qq); err != nil {
		return nil, err
	}
	return qq, nil
}

// Publish inserts a tuple into the network on behalf of node from, stamping
// its publication time, and runs the full two-phase evaluation: the tuple
// is indexed per Section 4.2, triggers queries at rewriters, rewritten
// queries reach evaluators and notifications flow back to subscribers —
// all before Publish returns (the simulator delivers synchronously).
func (e *Engine) Publish(from *chord.Node, t *relation.Tuple) (*relation.Tuple, error) {
	if !from.Alive() {
		return nil, fmt.Errorf("engine: publish from departed node %s", from)
	}
	if e.catalog.Lookup(t.Relation()) == nil {
		return nil, fmt.Errorf("engine: relation %s not in catalog", t.Relation())
	}
	tt := t.WithPubT(e.net.Clock().Tick())
	if err := e.indexTuple(from, tt); err != nil {
		return nil, err
	}
	return tt, nil
}

// LoadOf returns node n's load counters.
func (e *Engine) LoadOf(n *chord.Node) *metrics.Load {
	return &e.state(n).load
}

// FilteringLoads returns every alive node's total filtering load (TF), in
// ring order.
func (e *Engine) FilteringLoads() []int64 {
	nodes := e.net.Nodes()
	out := make([]int64, len(nodes))
	for i, n := range nodes {
		out[i] = e.state(n).load.TotalFiltering()
	}
	return out
}

// StorageLoads returns every alive node's total storage load (TS), in ring
// order.
func (e *Engine) StorageLoads() []int64 {
	nodes := e.net.Nodes()
	out := make([]int64, len(nodes))
	for i, n := range nodes {
		out[i] = e.state(n).load.TotalStorage()
	}
	return out
}

// RoleLoads returns per-node loads restricted to one role and metric,
// feeding the rewriter-vs-evaluator split of Figure 5.11.
func (e *Engine) RoleLoads(role metrics.Role, storage bool) []int64 {
	nodes := e.net.Nodes()
	out := make([]int64, len(nodes))
	for i, n := range nodes {
		l := &e.state(n).load
		if storage {
			out[i] = l.Storage(role)
		} else {
			out[i] = l.Filtering(role)
		}
	}
	return out
}

// ResetLoads zeroes every node's load counters, typically after warm-up.
func (e *Engine) ResetLoads() {
	for _, n := range e.net.Nodes() {
		e.state(n).load.Reset()
	}
}

// EvictExpired applies the sliding window across all nodes, removing stored
// tuples whose publication time has fallen out of the window. It is a
// no-op when Config.Window is zero.
func (e *Engine) EvictExpired() {
	if e.cfg.Window <= 0 {
		return
	}
	cutoff := e.net.Clock().Now() - e.cfg.Window
	for _, n := range e.net.Nodes() {
		e.state(n).evictBefore(cutoff)
	}
}

// randIntn returns a deterministic pseudo-random int in [0, n) from the
// engine's seeded source.
func (e *Engine) randIntn(n int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rng.Intn(n)
}
