package engine

import (
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
)

// Oracle is the centralized reference evaluator: a brute-force nested-loop
// join over the full history of a run, respecting the time semantics of
// Section 3.2 (pubT(t) >= insT(q)) and the selection predicates. Every
// distributed algorithm — and every chaos run — must deliver exactly the
// notifications the oracle derives; the invariant harness and the
// differential tests compare against it.
//
// The oracle covers binary equi-joins (the Chapter 4 algorithms); multi-way
// chain queries have their own expected-set computation in the mjoin tests.
type Oracle struct {
	queries []*query.Query
	tuples  map[string][]*relation.Tuple // by relation name, insertion order
}

// NewOracle returns an empty oracle.
func NewOracle() *Oracle {
	return &Oracle{tuples: make(map[string][]*relation.Tuple)}
}

// AddQuery registers a submitted query.
func (o *Oracle) AddQuery(q *query.Query) {
	o.queries = append(o.queries, q)
}

// AddTuple registers a published tuple under its relation.
func (o *Oracle) AddTuple(t *relation.Tuple) {
	o.tuples[t.Relation()] = append(o.tuples[t.Relation()], t)
}

// notifications enumerates every (query, left tuple, right tuple) match as
// the Notification the distributed engine would build for it.
func (o *Oracle) notifications() []Notification {
	var out []Notification
	for _, q := range o.queries {
		lefts := o.tuples[q.Rel(query.SideLeft).Name()]
		rights := o.tuples[q.Rel(query.SideRight).Name()]
		for _, lt := range lefts {
			if lt.PubT() < q.InsT() {
				continue
			}
			if ok, err := q.FiltersPass(lt); err != nil || !ok {
				continue
			}
			lv, err := q.EvalSide(query.SideLeft, lt)
			if err != nil {
				continue
			}
			for _, rt := range rights {
				if rt.PubT() < q.InsT() {
					continue
				}
				if ok, err := q.FiltersPass(rt); err != nil || !ok {
					continue
				}
				rv, err := q.EvalSide(query.SideRight, rt)
				if err != nil || !rv.Equal(lv) {
					continue
				}
				n, err := buildNotification(q, query.SideLeft, lt, rt)
				if err != nil {
					continue
				}
				out = append(out, n)
			}
		}
	}
	return out
}

// ExpectedContentKeys returns the distinct notification contents
// (Notification.ContentKey) the run must produce — the identity under which
// all four algorithms must agree.
func (o *Oracle) ExpectedContentKeys() map[string]bool {
	want := make(map[string]bool)
	for _, n := range o.notifications() {
		want[n.ContentKey()] = true
	}
	return want
}

// ExpectedDeliveries returns the full delivery identities
// (subscriber, content, publication times of the matched pair) the run must
// produce — the exact set a fault-injected engine has to deliver once the
// network heals, no more (duplicate absorption) and no less (retries,
// stored-notification replay).
func (o *Oracle) ExpectedDeliveries() map[string]bool {
	want := make(map[string]bool)
	for _, n := range o.notifications() {
		want[deliveryKey(n)] = true
	}
	return want
}

// DeliveryKeys renders the delivery identities of a notification list in
// the oracle's format, for set comparison.
func DeliveryKeys(ns []Notification) map[string]bool {
	got := make(map[string]bool)
	for _, n := range ns {
		got[deliveryKey(n)] = true
	}
	return got
}
