package engine

import (
	"reflect"
	"testing"

	"cqjoin/internal/chord"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
	"cqjoin/internal/wire"
)

// codecFixtures builds one instance of every engine message.
func codecFixtures(t testing.TB) (*relation.Catalog, []chord.Message) {
	t.Helper()
	env := newTestEnv(t, 16, Config{Algorithm: SAI})
	q := env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E AND S.F >= 1`)
	tu := rTuple(env, 1, 7, 2).WithPubT(9)
	su := sTuple(env, 3, 7, 1).WithPubT(11)
	proj, err := tu.Project(q.NeededAttrs("R"))
	if err != nil {
		t.Fatal(err)
	}
	rw := &rewritten{
		Key: "n#1+1+7", Orig: q, IndexSide: query.SideLeft, Trigger: proj,
		WantRel: "S", WantAttr: "E", WantValue: relation.N(7),
	}
	notif, err := buildNotification(q, query.SideLeft, proj, su)
	if err != nil {
		t.Fatal(err)
	}

	mcat := relation.MustCatalog(
		relation.MustSchema("A", "x", "y"),
		relation.MustSchema("B", "x", "y"),
		relation.MustSchema("C", "x", "y"),
	)
	// Merge both catalogs so one decoder handles everything.
	full := relation.MustCatalog(
		env.r, env.s, env.doc, env.authors,
		mcat.Lookup("A"), mcat.Lookup("B"), mcat.Lookup("C"),
	)
	mq := query.MustParseMulti(full, `SELECT A.y, C.y FROM A, B, C WHERE A.x = B.y AND B.x = C.y`).
		WithIdentity("peer3", "sim://x", 2).WithInsT(5)
	mqRev := mq.Reverse()
	ta := relation.MustTuple(full.Lookup("A"), relation.N(1), relation.N(10)).WithPubT(6)
	mrw := &mRewritten{
		Key: "peer3#2+6", Orig: mqRev, Stage: 1, Acc: []*relation.Tuple{ta},
		WantRel: "B", WantAttr: "y", WantValue: relation.N(1),
	}

	msgs := []chord.Message{
		queryMsg{Q: q, Side: query.SideRight, Attr: "E", Replica: 2},
		alIndexMsg{T: tu, Attr: "B", Replica: 1},
		vlIndexMsg{T: su, Attr: "E"},
		joinMsg{Rewrites: []*rewritten{rw, rw}},
		joinVMsg{Input: "7", Cond: q.ConditionKey(), Side: query.SideLeft, Value: relation.N(7), Trigger: tu, Queries: []*query.Query{q}},
		joinBatch{Msgs: []chord.Message{vlIndexMsg{T: su, Attr: "E"}, joinMsg{Rewrites: []*rewritten{rw}}}},
		notifyMsg{Subscriber: q.Subscriber(), Batch: []Notification{notif, notif}},
		probeMsg{AttrInput: "R+B"},
		unsubMsg{QueryKey: q.Key(), Cond: q.ConditionKey(), Input: "R+B"},
		purgeMsg{QueryKey: q.Key(), Input: "S+E+7"},
		baselineQueryMsg{Q: q, Side: query.SideLeft, Input: "R"},
		baselineTupleMsg{T: tu, Input: "R.B+S.E", Side: query.SideLeft},
		baselineProbeMsg{Input: "S", Rewrites: []*rewritten{rw}},
		mQueryMsg{MQ: mqRev, Attr: "x", Replica: 0},
		mJoinMsg{Rewrites: []*mRewritten{mrw}},
		handoffMsg{
			AL: []alSection{{
				Input:        "R+B",
				Groups:       []alGroupSection{{Cond: q.ConditionKey(), Side: query.SideLeft, Queries: []*query.Query{q}}},
				Multi:        []alMultiSection{{Cond: "A.x=B.y", Queries: []*query.MultiQuery{mqRev}}},
				SentRewrites: []string{rw.Key},
				SentTargets:  []targetsEntry{{Key: rw.Key, Targets: []string{"S+E+7", "S+E+9"}}},
			}},
			VQ: []vqSection{{Input: "S+E+7", Entries: []vqEntry{{Rw: rw, Times: []int64{9, 11}}}}},
			MQ: []mqSection{{Input: "B+y+1", Rewrites: []*mRewritten{mrw},
				SentTargets: []targetsEntry{{Key: mrw.Key, Targets: []string{"C+y+3"}}}}},
			VT:     []vtSection{{Input: "S+E+7", Tuples: []*relation.Tuple{su}}},
			DV:     []dvSection{{Input: "7", Entries: []dvEntry{{Cond: q.ConditionKey(), Left: []*relation.Tuple{tu}, Right: []*relation.Tuple{su}}}}},
			Notifs: []notifSection{{Subscriber: q.Subscriber(), Batch: []Notification{notif}}},
		},
		hotJoinMsg{Input: "S+E+7", Shard: 2, Version: 3, K: 4, Rewrites: []*rewritten{rw, rw}},
		hotVLIndexMsg{Input: "S+E+7", Shard: 1, Version: 3, K: 4, T: su},
		hotMigrateMsg{Input: "S+E+7", Version: 3, K: 4},
		hotRecallMsg{Input: "S+E+7", Shard: 3, Version: 4, K: 0},
		hotHandoffMsg{Input: "S+E+7", Shard: 2, Version: 3, K: 4,
			Entries: []vqEntry{{Rw: rw, Times: []int64{9, 11}}},
			Tuples:  []*relation.Tuple{su}},
	}
	return full, msgs
}

func TestCodecRoundTripAllMessages(t *testing.T) {
	catalog, msgs := codecFixtures(t)
	for _, msg := range msgs {
		var w wire.Buffer
		if err := EncodeMessage(&w, msg); err != nil {
			t.Fatalf("%T: encode: %v", msg, err)
		}
		r := wire.NewReader(w.Bytes())
		got, err := DecodeMessage(r, catalog)
		if err != nil {
			t.Fatalf("%T: decode: %v", msg, err)
		}
		if r.Remaining() != 0 {
			t.Fatalf("%T: %d bytes left after decode", msg, r.Remaining())
		}
		if reflect.TypeOf(got) != reflect.TypeOf(msg) {
			t.Fatalf("decoded %T, want %T", got, msg)
		}
		assertSemanticEqual(t, msg, got)
	}
}

// assertSemanticEqual compares the fields the receiving handlers consume.
func assertSemanticEqual(t *testing.T, want, got chord.Message) {
	t.Helper()
	switch w := want.(type) {
	case queryMsg:
		g := got.(queryMsg)
		if g.Q.Key() != w.Q.Key() || g.Q.ConditionKey() != w.Q.ConditionKey() ||
			g.Q.InsT() != w.Q.InsT() || g.Attr != w.Attr || g.Side != w.Side || g.Replica != w.Replica {
			t.Fatalf("queryMsg mismatch: %+v", g)
		}
		if len(g.Q.Filters()) != len(w.Q.Filters()) {
			t.Fatal("queryMsg lost filters")
		}
	case alIndexMsg:
		g := got.(alIndexMsg)
		if g.T.String() != w.T.String() || g.T.PubT() != w.T.PubT() || g.Attr != w.Attr || g.Replica != w.Replica {
			t.Fatalf("alIndexMsg mismatch: %+v", g)
		}
	case vlIndexMsg:
		g := got.(vlIndexMsg)
		if g.T.String() != w.T.String() || g.Attr != w.Attr {
			t.Fatalf("vlIndexMsg mismatch: %+v", g)
		}
	case joinMsg:
		g := got.(joinMsg)
		if len(g.Rewrites) != len(w.Rewrites) {
			t.Fatal("joinMsg lost rewrites")
		}
		for i := range g.Rewrites {
			assertRewrittenEqual(t, w.Rewrites[i], g.Rewrites[i])
		}
	case joinVMsg:
		g := got.(joinVMsg)
		if g.Input != w.Input || g.Cond != w.Cond || g.Side != w.Side ||
			!g.Value.Equal(w.Value) || g.Trigger.String() != w.Trigger.String() ||
			len(g.Queries) != len(w.Queries) || g.Queries[0].Key() != w.Queries[0].Key() {
			t.Fatalf("joinVMsg mismatch: %+v", g)
		}
	case joinBatch:
		g := got.(joinBatch)
		if len(g.Msgs) != len(w.Msgs) {
			t.Fatal("joinBatch lost messages")
		}
		for i := range g.Msgs {
			assertSemanticEqual(t, w.Msgs[i], g.Msgs[i])
		}
	case notifyMsg:
		g := got.(notifyMsg)
		if g.Subscriber != w.Subscriber || len(g.Batch) != len(w.Batch) {
			t.Fatalf("notifyMsg mismatch: %+v", g)
		}
		for i := range g.Batch {
			if g.Batch[i].ContentKey() != w.Batch[i].ContentKey() ||
				g.Batch[i].LeftPubT != w.Batch[i].LeftPubT ||
				g.Batch[i].RightPubT != w.Batch[i].RightPubT ||
				g.Batch[i].subscriberIP != w.Batch[i].subscriberIP {
				t.Fatalf("notification %d mismatch", i)
			}
		}
	case probeMsg:
		if got.(probeMsg) != w {
			t.Fatal("probeMsg mismatch")
		}
	case unsubMsg:
		if got.(unsubMsg) != w {
			t.Fatal("unsubMsg mismatch")
		}
	case purgeMsg:
		if got.(purgeMsg) != w {
			t.Fatal("purgeMsg mismatch")
		}
	case baselineQueryMsg:
		g := got.(baselineQueryMsg)
		if g.Q.Key() != w.Q.Key() || g.Side != w.Side || g.Input != w.Input {
			t.Fatalf("baselineQueryMsg mismatch: %+v", g)
		}
	case baselineTupleMsg:
		g := got.(baselineTupleMsg)
		if g.T.String() != w.T.String() || g.Input != w.Input || g.Side != w.Side {
			t.Fatalf("baselineTupleMsg mismatch: %+v", g)
		}
	case baselineProbeMsg:
		g := got.(baselineProbeMsg)
		if g.Input != w.Input || len(g.Rewrites) != len(w.Rewrites) {
			t.Fatalf("baselineProbeMsg mismatch: %+v", g)
		}
	case mQueryMsg:
		g := got.(mQueryMsg)
		if g.MQ.Key() != w.MQ.Key() || g.MQ.InsT() != w.MQ.InsT() ||
			g.Attr != w.Attr || g.Replica != w.Replica {
			t.Fatalf("mQueryMsg mismatch: %+v", g)
		}
		// Orientation must survive: the pipeline's first relation.
		if g.MQ.Rels()[0].Name() != w.MQ.Rels()[0].Name() {
			t.Fatalf("mQueryMsg orientation lost: %s vs %s",
				g.MQ.Rels()[0].Name(), w.MQ.Rels()[0].Name())
		}
	case mJoinMsg:
		g := got.(mJoinMsg)
		if len(g.Rewrites) != len(w.Rewrites) {
			t.Fatal("mJoinMsg lost rewrites")
		}
		for i := range g.Rewrites {
			gr, wr := g.Rewrites[i], w.Rewrites[i]
			if gr.Key != wr.Key || gr.Stage != wr.Stage || len(gr.Acc) != len(wr.Acc) ||
				gr.WantRel != wr.WantRel || gr.WantAttr != wr.WantAttr || !gr.WantValue.Equal(wr.WantValue) ||
				gr.Orig.Rels()[0].Name() != wr.Orig.Rels()[0].Name() {
				t.Fatalf("mRewritten %d mismatch", i)
			}
		}
	case handoffMsg:
		g := got.(handoffMsg)
		if len(g.AL) != len(w.AL) || len(g.VQ) != len(w.VQ) || len(g.MQ) != len(w.MQ) ||
			len(g.VT) != len(w.VT) || len(g.DV) != len(w.DV) || len(g.Notifs) != len(w.Notifs) {
			t.Fatalf("handoffMsg section counts mismatch: %+v", g)
		}
		for i := range g.AL {
			ga, wa := g.AL[i], w.AL[i]
			if ga.Input != wa.Input || len(ga.Groups) != len(wa.Groups) ||
				len(ga.Multi) != len(wa.Multi) ||
				!reflect.DeepEqual(ga.SentRewrites, wa.SentRewrites) ||
				!reflect.DeepEqual(ga.SentTargets, wa.SentTargets) {
				t.Fatalf("alSection %d mismatch: %+v", i, ga)
			}
			for j := range ga.Groups {
				gg, wg := ga.Groups[j], wa.Groups[j]
				if gg.Cond != wg.Cond || gg.Side != wg.Side ||
					len(gg.Queries) != len(wg.Queries) || gg.Queries[0].Key() != wg.Queries[0].Key() {
					t.Fatalf("alGroupSection %d/%d mismatch", i, j)
				}
			}
			for j := range ga.Multi {
				gm, wm := ga.Multi[j], wa.Multi[j]
				if gm.Cond != wm.Cond || len(gm.Queries) != len(wm.Queries) ||
					gm.Queries[0].Key() != wm.Queries[0].Key() ||
					gm.Queries[0].Rels()[0].Name() != wm.Queries[0].Rels()[0].Name() {
					t.Fatalf("alMultiSection %d/%d mismatch", i, j)
				}
			}
		}
		for i := range g.VQ {
			gv, wv := g.VQ[i], w.VQ[i]
			if gv.Input != wv.Input || len(gv.Entries) != len(wv.Entries) {
				t.Fatalf("vqSection %d mismatch: %+v", i, gv)
			}
			for j := range gv.Entries {
				assertRewrittenEqual(t, wv.Entries[j].Rw, gv.Entries[j].Rw)
				if !reflect.DeepEqual(gv.Entries[j].Times, wv.Entries[j].Times) {
					t.Fatalf("vqEntry %d/%d times mismatch", i, j)
				}
			}
		}
		for i := range g.MQ {
			gm, wm := g.MQ[i], w.MQ[i]
			if gm.Input != wm.Input || len(gm.Rewrites) != len(wm.Rewrites) ||
				gm.Rewrites[0].Key != wm.Rewrites[0].Key ||
				!reflect.DeepEqual(gm.SentTargets, wm.SentTargets) {
				t.Fatalf("mqSection %d mismatch: %+v", i, gm)
			}
		}
		for i := range g.VT {
			gv, wv := g.VT[i], w.VT[i]
			if gv.Input != wv.Input || len(gv.Tuples) != len(wv.Tuples) ||
				gv.Tuples[0].String() != wv.Tuples[0].String() ||
				gv.Tuples[0].PubT() != wv.Tuples[0].PubT() {
				t.Fatalf("vtSection %d mismatch: %+v", i, gv)
			}
		}
		for i := range g.DV {
			gd, wd := g.DV[i], w.DV[i]
			if gd.Input != wd.Input || len(gd.Entries) != len(wd.Entries) {
				t.Fatalf("dvSection %d mismatch: %+v", i, gd)
			}
			for j := range gd.Entries {
				ge, we := gd.Entries[j], wd.Entries[j]
				if ge.Cond != we.Cond || len(ge.Left) != len(we.Left) || len(ge.Right) != len(we.Right) ||
					ge.Left[0].String() != we.Left[0].String() ||
					ge.Right[0].String() != we.Right[0].String() {
					t.Fatalf("dvEntry %d/%d mismatch", i, j)
				}
			}
		}
		for i := range g.Notifs {
			gn, wn := g.Notifs[i], w.Notifs[i]
			if gn.Subscriber != wn.Subscriber || len(gn.Batch) != len(wn.Batch) ||
				gn.Batch[0].ContentKey() != wn.Batch[0].ContentKey() ||
				gn.Batch[0].subscriberIP != wn.Batch[0].subscriberIP {
				t.Fatalf("notifSection %d mismatch: %+v", i, gn)
			}
		}
	case hotJoinMsg:
		g := got.(hotJoinMsg)
		if g.Input != w.Input || g.Shard != w.Shard || g.Version != w.Version ||
			g.K != w.K || len(g.Rewrites) != len(w.Rewrites) {
			t.Fatalf("hotJoinMsg mismatch: %+v", g)
		}
		for i := range g.Rewrites {
			assertRewrittenEqual(t, w.Rewrites[i], g.Rewrites[i])
		}
	case hotVLIndexMsg:
		g := got.(hotVLIndexMsg)
		if g.Input != w.Input || g.Shard != w.Shard || g.Version != w.Version ||
			g.K != w.K || g.T.String() != w.T.String() || g.T.PubT() != w.T.PubT() {
			t.Fatalf("hotVLIndexMsg mismatch: %+v", g)
		}
	case hotMigrateMsg:
		if got.(hotMigrateMsg) != w {
			t.Fatal("hotMigrateMsg mismatch")
		}
	case hotRecallMsg:
		if got.(hotRecallMsg) != w {
			t.Fatal("hotRecallMsg mismatch")
		}
	case hotHandoffMsg:
		g := got.(hotHandoffMsg)
		if g.Input != w.Input || g.Shard != w.Shard || g.Version != w.Version ||
			g.K != w.K || len(g.Entries) != len(w.Entries) || len(g.Tuples) != len(w.Tuples) {
			t.Fatalf("hotHandoffMsg mismatch: %+v", g)
		}
		for i := range g.Entries {
			assertRewrittenEqual(t, w.Entries[i].Rw, g.Entries[i].Rw)
			if !reflect.DeepEqual(g.Entries[i].Times, w.Entries[i].Times) {
				t.Fatalf("hotHandoffMsg entry %d times mismatch", i)
			}
		}
		for i := range g.Tuples {
			if g.Tuples[i].String() != w.Tuples[i].String() || g.Tuples[i].PubT() != w.Tuples[i].PubT() {
				t.Fatalf("hotHandoffMsg tuple %d mismatch", i)
			}
		}
	default:
		t.Fatalf("no comparer for %T", want)
	}
}

func assertRewrittenEqual(t *testing.T, w, g *rewritten) {
	t.Helper()
	if g.Key != w.Key || g.Orig.Key() != w.Orig.Key() || g.IndexSide != w.IndexSide ||
		g.Trigger.String() != w.Trigger.String() || g.WantRel != w.WantRel ||
		g.WantAttr != w.WantAttr || !g.WantValue.Equal(w.WantValue) {
		t.Fatalf("rewritten mismatch: %+v vs %+v", g, w)
	}
}

// Size() must be the exact encoded length for every message type.
func TestSizeMatchesEncoding(t *testing.T) {
	_, msgs := codecFixtures(t)
	for _, msg := range msgs {
		s, ok := msg.(chord.Sizer)
		if !ok {
			t.Fatalf("%T does not implement Sizer", msg)
		}
		var w wire.Buffer
		if err := EncodeMessage(&w, msg); err != nil {
			t.Fatalf("%T: encode: %v", msg, err)
		}
		if s.Size() != w.Len() {
			t.Fatalf("%T: Size()=%d, encoding=%d", msg, s.Size(), w.Len())
		}
		// Size memoizes tuple/query sub-sizes on first use; a second call
		// must serve the same number from the cache.
		if again := s.Size(); again != w.Len() {
			t.Fatalf("%T: cached Size()=%d, encoding=%d", msg, again, w.Len())
		}
	}
}

// The With* copy constructors change encoded fields, so a copy made after
// the original's size was memoized must be re-measured, not served the
// stale cached length.
func TestSizeCacheInvalidatedOnCopy(t *testing.T) {
	_, msgs := codecFixtures(t)
	for _, msg := range msgs {
		al, ok := msg.(alIndexMsg)
		if !ok {
			continue
		}
		if wireSize(al) != encodedLen(al) {
			t.Fatalf("alIndexMsg: size %d != encoding %d", wireSize(al), encodedLen(al))
		}
		// A pubT two varint-lengths away changes the tuple's encoded size.
		cp := alIndexMsg{T: al.T.WithPubT(1 << 20), Attr: al.Attr, Replica: al.Replica}
		if wireSize(cp) != encodedLen(cp) {
			t.Fatalf("copied tuple: size %d != encoding %d", wireSize(cp), encodedLen(cp))
		}
		return
	}
	t.Fatal("no alIndexMsg fixture")
}

func TestQuerySizeCacheInvalidatedOnCopy(t *testing.T) {
	_, msgs := codecFixtures(t)
	for _, msg := range msgs {
		qm, ok := msg.(queryMsg)
		if !ok {
			continue
		}
		if got := wire.SizeQuery(qm.Q); got != querySizeByEncoding(qm.Q) {
			t.Fatalf("query: size %d != encoding %d", got, querySizeByEncoding(qm.Q))
		}
		cp := qm.Q.WithInsT(qm.Q.InsT() + 1<<20)
		if got := wire.SizeQuery(cp); got != querySizeByEncoding(cp) {
			t.Fatalf("copied query: size %d != encoding %d", got, querySizeByEncoding(cp))
		}
		return
	}
	t.Fatal("no queryMsg fixture")
}

func querySizeByEncoding(q *query.Query) int {
	var w wire.Buffer
	wire.EncodeQuery(&w, q)
	return w.Len()
}

func TestDecodeUnknownTag(t *testing.T) {
	var w wire.Buffer
	w.PutUvarint(200)
	if _, err := DecodeMessage(wire.NewReader(w.Bytes()), nil); err == nil {
		t.Fatal("unknown tag accepted")
	}
}

func TestDecodeTruncated(t *testing.T) {
	catalog, msgs := codecFixtures(t)
	for _, msg := range msgs {
		var w wire.Buffer
		if err := EncodeMessage(&w, msg); err != nil {
			t.Fatal(err)
		}
		full := w.Bytes()
		// Strict prefixes must fail cleanly.
		for _, cut := range []int{0, 1, len(full) / 2, len(full) - 1} {
			if cut >= len(full) {
				continue
			}
			if _, err := DecodeMessage(wire.NewReader(full[:cut]), catalog); err == nil {
				t.Fatalf("%T: truncation at %d accepted", msg, cut)
			}
		}
	}
}
