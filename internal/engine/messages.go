package engine

import (
	"cqjoin/internal/chord"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
)

// Message kinds charged to the traffic ledger. The names follow the paper's
// message vocabulary (Sections 4.2-4.6).
const (
	kindQuery    = "query"    // query(q, Id(n), IP(n)) indexing a query at the attribute level
	kindALIndex  = "al-index" // al-index(t, A): tuple at the attribute level
	kindVLIndex  = "vl-index" // vl-index(t, A): tuple at the value level
	kindJoin     = "join"     // join(q'): rewritten query reindexed at the value level
	kindNotify   = "notification"
	kindProbe    = "strategy-probe" // rate/domain probe of candidate rewriters (Section 4.3.6)
	kindBaseline = "probe"          // baseline cross-site probe (Section 4.1)
)

// queryMsg indexes query Q at the attribute level under index attribute
// Attr of relation Rel — the message query(q, Id(n), IP(n)) of
// Section 4.3.1. Replica is the attribute-level replica the message is
// addressed to when replication is on.
type queryMsg struct {
	Q       *query.Query
	Side    query.Side // the side whose attribute indexes the query here
	Attr    string     // IndexA(q) as addressed to this rewriter
	Replica int
}

func (queryMsg) Kind() string { return kindQuery }

// alIndexMsg carries tuple T indexed at the attribute level under Attr —
// al-index(t, A) of Section 4.2. Replica identifies the rewriter replica.
type alIndexMsg struct {
	T       *relation.Tuple
	Attr    string
	Replica int
}

func (alIndexMsg) Kind() string { return kindALIndex }

// vlIndexMsg carries tuple T indexed at the value level under Attr —
// vl-index(t, A) of Section 4.2.
type vlIndexMsg struct {
	T    *relation.Tuple
	Attr string
}

func (vlIndexMsg) Kind() string { return kindVLIndex }

// rewritten is one rewritten query q' produced when a tuple triggers query
// Orig at the attribute level (Section 4.3.2). The index-relation
// attributes of Orig have been consumed: Trigger carries the triggering
// tuple projected on the attributes still needed (SELECT values and join
// attribute), and the q' asks for tuples of WantRel whose WantAttr equals
// WantValue.
type rewritten struct {
	Key       string // Key(q') per Section 4.3.3
	Orig      *query.Query
	IndexSide query.Side      // the side consumed by the trigger
	Trigger   *relation.Tuple // projection of the triggering tuple
	WantRel   string          // DisR(q)
	WantAttr  string          // DisA(q)
	WantValue relation.Value  // valDA(q, t)
}

// joinMsg reindexes one or more rewritten queries that share the same
// evaluator — the join(q') message of Section 4.3.2, grouped per
// Section 4.3.5 so similar queries travel in one message.
type joinMsg struct {
	Rewrites []*rewritten
}

func (joinMsg) Kind() string { return kindJoin }

// joinVMsg is DAI-V's join(q', t') message (Section 4.5): the projection
// Trigger of the triggering tuple plus the group of queries (equal join
// conditions) it triggered. Value is valJC — the value both sides of the
// join condition must take. Input is the exact string hashed to pick the
// evaluator: plain DAI-V uses Value alone; the keyed extension prefixes
// Key(q), trading grouping (and so traffic) for per-query load spread.
type joinVMsg struct {
	Input   string
	Cond    string // canonical join condition, the grouping key
	Side    query.Side
	Value   relation.Value
	Trigger *relation.Tuple
	Queries []*query.Query // the triggered group, all with condition Cond
}

func (joinVMsg) Kind() string { return kindJoin }

// joinBatch groups several value-level messages bound for one recipient
// node into a single physical message — the grouping of Section 4.3.5
// applied to the JFRT's direct-delivery path, so a warm cache never costs
// more than one hop per destination node.
type joinBatch struct {
	Msgs []chord.Message
}

func (joinBatch) Kind() string { return kindJoin }

// notifyMsg delivers a batch of notifications for one subscriber; multiple
// notifications for the same receiver are grouped in one message
// (Section 4.6).
type notifyMsg struct {
	Subscriber string
	Batch      []Notification
}

func (notifyMsg) Kind() string { return kindNotify }

// probeMsg asks a candidate rewriter for its observed tuple-arrival rate
// and value-domain size under one attribute key (Section 4.3.6). The
// simulator reads the answer synchronously; the message exists to charge
// the probe's routing cost.
type probeMsg struct {
	AttrInput string
}

func (probeMsg) Kind() string { return kindProbe }

// The naive-baseline messages of Section 4.1 live in baseline.go.
