package engine

import (
	"encoding/binary"
	"fmt"
	"strconv"

	"cqjoin/internal/chord"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
)

// Identifier construction (Sections 4.2, 4.3.1, 4.5). Every index
// identifier is the hash of a canonical string; the strings double as the
// table keys on the responsible node so items can be re-homed on churn.

// alInput is the attribute-level hash input: Hash(R + A), optionally
// suffixed with a replica number when attribute-level replication
// (Section 4.7.2) spreads the rewriter role over several nodes. Replica 0
// is the unsuffixed base identifier, so a replication factor of 1 is
// exactly the paper's unreplicated scheme.
func alInput(rel, attr string, replica int) string {
	if replica == 0 {
		return rel + "+" + attr
	}
	b := make([]byte, 0, len(rel)+len(attr)+6)
	b = append(b, rel...)
	b = append(b, '+')
	b = append(b, attr...)
	b = append(b, '#', 'r')
	b = strconv.AppendInt(b, int64(replica), 10)
	return string(b)
}

// vlInput is the value-level hash input: Hash(R + A + v).
func vlInput(rel, attr string, v relation.Value) string {
	return rel + "+" + attr + "+" + v.Canon()
}

// daivInput is DAI-V's value-level hash input: just the value the join
// condition must take (Section 4.5), unprefixed by relation or attribute —
// the reason DAI-V groups more and distributes less.
func daivInput(v relation.Value) string { return v.Canon() }

// replicaOf deterministically assigns a tuple's attribute value to one of
// the k rewriter replicas, so equal values always meet the same replica and
// per-replica statistics stay meaningful.
func (e *Engine) replicaOf(v relation.Value) int {
	k := e.cfg.ReplicationFactor
	if k <= 1 {
		return 0
	}
	h := e.hashInput("replica+" + v.Canon())
	return int(binary.BigEndian.Uint64(h[:8]) % uint64(k))
}

// indexQuery routes a freshly keyed query to its rewriter node(s).
func (e *Engine) indexQuery(from *chord.Node, q *query.Query) error {
	switch e.cfg.Algorithm {
	case SAI:
		side, err := e.chooseIndexSide(from, q)
		if err != nil {
			return err
		}
		attr, err := q.SingleAttr(side)
		if err != nil {
			return err
		}
		return e.sendQueryIndex(from, q, []sideAttr{{side, attr}})
	case DAIQ, DAIT:
		la, err := q.SingleAttr(query.SideLeft)
		if err != nil {
			return err
		}
		ra, err := q.SingleAttr(query.SideRight)
		if err != nil {
			return err
		}
		return e.sendQueryIndex(from, q, []sideAttr{{query.SideLeft, la}, {query.SideRight, ra}})
	case DAIV:
		// Section 4.5: with several candidate attributes per side, the
		// index attribute is chosen at random.
		la := pick(e, q.SideAttrs(query.SideLeft))
		ra := pick(e, q.SideAttrs(query.SideRight))
		return e.sendQueryIndex(from, q, []sideAttr{{query.SideLeft, la}, {query.SideRight, ra}})
	case BaselineRelation, BaselineAttribute, BaselinePair:
		return e.indexQueryBaseline(from, q)
	default:
		return fmt.Errorf("engine: unknown algorithm %v", e.cfg.Algorithm)
	}
}

type sideAttr struct {
	side query.Side
	attr string
}

func pick(e *Engine, options []string) string {
	if len(options) == 1 {
		return options[0]
	}
	return options[e.randIntn(len(options))]
}

// sendQueryIndex ships the query(q) message to every (side, attribute)
// rewriter, replicated across the attribute-level replicas. One identifier
// per destination; a single destination uses send(), several use
// multisend() (Section 4.4.1: indexing at both rewriters costs
// 2·O(log N) hops).
func (e *Engine) sendQueryIndex(from *chord.Node, q *query.Query, idx []sideAttr) error {
	var batch []chord.Deliverable
	var inputs []string
	for _, sa := range idx {
		rel := q.Rel(sa.side).Name()
		for r := 0; r < e.cfg.ReplicationFactor; r++ {
			input := alInput(rel, sa.attr, r)
			inputs = append(inputs, input)
			batch = append(batch, chord.Deliverable{
				Target: e.hashInput(input),
				Msg:    queryMsg{Q: q, Side: sa.side, Attr: sa.attr, Replica: r},
			})
		}
	}
	// The subscriber remembers where its query lives so it can retract it
	// later (Unsubscribe).
	e.mu.Lock()
	e.subs[q.Key()] = inputs
	e.mu.Unlock()
	e.registerCondition(q)
	return e.dispatch(from, batch)
}

// indexTuple implements the tuple-indexing protocol of Section 4.2: for
// every attribute A_i with value v_i, the tuple is sent once to the
// attribute level (AIndex_i) and once to the value level (VIndex_i),
// 2h messages in one multisend. DAI-V indexes tuples only at the attribute
// level (Section 4.5).
func (e *Engine) indexTuple(from *chord.Node, t *relation.Tuple) error {
	switch e.cfg.Algorithm {
	case BaselineRelation, BaselineAttribute, BaselinePair:
		return e.indexTupleBaseline(from, t)
	}
	schema := t.Schema()
	attrs := schema.Attrs()
	batch := make([]chord.Deliverable, 0, 2*len(attrs))
	for _, a := range attrs {
		v := t.MustValue(a)
		rep := e.replicaOf(v)
		batch = append(batch, chord.Deliverable{
			Target: e.hashInput(alInput(schema.Name(), a, rep)),
			Msg:    alIndexMsg{T: t, Attr: a, Replica: rep},
		})
		if e.cfg.Algorithm != DAIV {
			batch = append(batch, chord.Deliverable{
				Target: e.hashInput(vlInput(schema.Name(), a, v)),
				Msg:    vlIndexMsg{T: t, Attr: a},
			})
		}
	}
	return e.dispatch(from, batch)
}

// dispatch sends a batch through the configured multisend flavor. With
// retries enabled, unacked deliverables are re-sent up to the budget and
// dispatch reports success — residual losses are charged to the ledger
// instead of failing the whole operation.
func (e *Engine) dispatch(from *chord.Node, batch []chord.Deliverable) error {
	if len(batch) == 0 {
		return nil
	}
	var recipients []*chord.Node
	var err error
	if len(batch) == 1 {
		var dst *chord.Node
		dst, _, err = from.Send(batch[0].Msg, batch[0].Target)
		if err == nil {
			recipients = []*chord.Node{dst}
		}
	} else if e.cfg.IterativeMultisend {
		recipients, _, err = from.MultisendIterative(batch)
	} else {
		recipients, _, err = from.Multisend(batch)
	}
	if e.cfg.MaxRetries > 0 {
		e.retryFailed(from, batch, recipients)
		return nil
	}
	return err
}
