package engine

import (
	"testing"

	"cqjoin/internal/chord"
	"cqjoin/internal/query"
)

// Every engine message type must report a positive wire size so the byte
// ledger stays meaningful.
func TestAllMessagesImplementSizer(t *testing.T) {
	env := newTestEnv(t, 32, Config{Algorithm: SAI})
	q := env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	tu := rTuple(env, 1, 7, 0).WithPubT(5)
	proj, err := tu.Project(q.NeededAttrs("R"))
	if err != nil {
		t.Fatal(err)
	}
	rw := &rewritten{Key: "k", Orig: q, Trigger: proj, WantRel: "S", WantAttr: "E", WantValue: tu.MustValue("B")}
	notif, err := buildNotification(q, query.SideLeft, proj, sTuple(env, 2, 7, 0).WithPubT(6))
	if err != nil {
		t.Fatal(err)
	}

	msgs := []chord.Message{
		queryMsg{Q: q, Attr: "B"},
		alIndexMsg{T: tu, Attr: "B"},
		vlIndexMsg{T: tu, Attr: "B"},
		joinMsg{Rewrites: []*rewritten{rw}},
		joinVMsg{Input: "7", Cond: q.ConditionKey(), Value: tu.MustValue("B"), Trigger: tu, Queries: []*query.Query{q}},
		joinBatch{Msgs: []chord.Message{joinMsg{Rewrites: []*rewritten{rw}}}},
		notifyMsg{Subscriber: q.Subscriber(), Batch: []Notification{notif}},
		probeMsg{AttrInput: "R+B"},
		unsubMsg{QueryKey: q.Key(), Cond: q.ConditionKey(), Input: "R+B"},
		purgeMsg{QueryKey: q.Key(), Input: "S+E+7"},
		baselineQueryMsg{Q: q, Input: "R"},
		baselineTupleMsg{T: tu, Input: "R"},
		baselineProbeMsg{Rewrites: []*rewritten{rw}, Input: "S"},
		hotJoinMsg{Input: "S+E+7", Shard: 1, Version: 1, K: 4, Rewrites: []*rewritten{rw}},
		hotVLIndexMsg{Input: "S+E+7", Shard: 1, Version: 1, K: 4, T: tu},
		hotMigrateMsg{Input: "S+E+7", Version: 1, K: 4},
		hotRecallMsg{Input: "S+E+7", Shard: 1, Version: 2, K: 0},
		hotHandoffMsg{Input: "S+E+7", Shard: 1, Version: 1, K: 4,
			Entries: []vqEntry{{Rw: rw, Times: []int64{5}}}, Tuples: nil},
	}
	for _, m := range msgs {
		s, ok := m.(chord.Sizer)
		if !ok {
			t.Fatalf("%T does not implement Sizer", m)
		}
		if s.Size() <= 0 {
			t.Fatalf("%T reports size %d", m, s.Size())
		}
	}
}

// The byte ledger must fill up during normal operation, and a routed
// message must charge more bytes than its size (retransmission per hop).
func TestByteAccounting(t *testing.T) {
	env := newTestEnv(t, 128, Config{Algorithm: SAI, Strategy: StrategyLeft})
	env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	env.publish(t, 1, rTuple(env, 1, 7, 0))
	env.publish(t, 2, sTuple(env, 2, 7, 0))
	tr := env.net.Traffic()
	if tr.TotalBytes() == 0 {
		t.Fatal("no bytes recorded")
	}
	// The query message was routed over several hops: its bytes must
	// exceed a single copy of the message.
	one := queryMsg{Q: env.subscribe(t, 3, `SELECT R.A, S.D FROM R, S WHERE R.C = S.F`), Attr: "C"}.Size()
	if got := tr.Bytes("query"); got <= int64(one) {
		t.Fatalf("query bytes = %d, want > one copy (%d)", got, one)
	}
	if tr.Bytes(kindNotify) <= 0 {
		t.Fatal("notification bytes missing")
	}
}
