package engine

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"

	"cqjoin/internal/chord"
	"cqjoin/internal/metrics"
	"cqjoin/internal/relation"
)

// Adaptive hot-key sharding (DESIGN.md §13). The paper's attribute-level
// replication (Section 4.7.2) splits the rewriter role, but every tuple
// carrying the same join value still routes to the single value-level node
// Hash(R+A+v) — one Zipf-hot key re-creates the hotspot one level down.
// This layer detects heavy-hitter value-level inputs at runtime and shards
// only their evaluators:
//
//   - The base evaluator counts arrivals (tuples and rewritten queries) per
//     value-level input over a logical-time window. Crossing the threshold
//     promotes the input: its evaluator splits across k deterministic
//     replica identifiers Hash(hotShardInput(input, i)).
//   - Rewritten queries scatter: every join arriving at the base bucket is
//     stored there (the base doubles as shard 0) and re-sent to shards
//     1..k-1, so each shard holds the full rewrite set.
//   - Tuples partition: the base relays each arriving tuple to the one
//     shard its content hashes to, so matching and storage spread ~k ways.
//     Matches gather back through the ordinary notification path.
//   - Extreme keys escalate to a larger k (the broadcast-style fallback);
//     keys that cool below the demotion rate collapse back to the single
//     base bucket. Both are versioned epoch transitions whose state moves
//     through hot-handoff frames merged with match-on-merge, so pairs split
//     by an in-flight transition are still reported exactly once (the
//     subscriber-side delivery dedup absorbs re-matches).
//
// The layer runs only under SAI: SAI evaluators store both rewrites and
// tuples, which the match-on-merge recovery relies on. DAI-Q and DAI-T
// store only one side, so a pair split by an in-flight migration could
// never meet again; they keep the paper's unsharded path. Multi-way
// pipelines route partial matches through the same value-level identifiers
// without shard awareness, so registering one suspends the layer.
//
// Determinism: counters are exact per-input tallies (an unbounded
// space-saving sketch — no capacity eviction, whose cross-input victim
// choice would depend on arrival interleaving). Every counter and registry
// access for input I happens inside the cascade of an event that carries I
// as a batch conflict key (publish.go derives both a tuple's own
// value-level inputs and its rewrite targets), so concurrent batched
// publishes serialize exactly the events that could race, and a uniform
// workload that never promotes is bit-identical with the layer on or off.

// hotShardInput names shard i of a promoted value-level input. Shard 0 is
// the unsuffixed base input — the cold bucket and shard 0 are the same
// bucket, so promotion never moves shard-0 state.
func hotShardInput(input string, shard int) string {
	if shard == 0 {
		return input
	}
	b := make([]byte, 0, len(input)+5)
	b = append(b, input...)
	b = append(b, '#', 's')
	b = strconv.AppendInt(b, int64(shard), 10)
	return string(b)
}

// shardOf deterministically assigns a tuple to one of k shards by hashing
// its content identity. Content-based (not engine-local) so routing-time
// and migration-time partitioning agree, in any process.
func shardOf(t *relation.Tuple, k int) int {
	if k <= 1 {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(tupleContentKey(t)))
	return int(h.Sum64() % uint64(k))
}

// hotEntry is the registry state of one value-level input: the epoch
// version (incremented by every transition) and the shard count k. k == 0
// means cold.
type hotEntry struct {
	version int
	k       int
}

func (e hotEntry) hot() bool { return e.k > 0 }

// hotCounter is the per-input arrival tally of the current window.
type hotCounter struct {
	count       int64
	windowStart int64
}

// hotTransitionKind labels a registry state transition.
type hotTransitionKind int

const (
	hotPromote hotTransitionKind = iota + 1
	hotDemote
	hotEscalate
)

// hotTransition describes a transition decided by bump. The caller — never
// the tracker, which must not send under its own lock — executes it by
// sending the migrate/recall frames (runHotTransition).
type hotTransition struct {
	kind    hotTransitionKind
	input   string
	version int // the new epoch
	k       int // shard count of the new epoch (0 when demoting)
	oldK    int // shard count being recalled (demote/escalate)
}

// hotTracker is the engine-wide heavy-hitter detector and epoch registry.
type hotTracker struct {
	threshold        int64
	window           int64
	replicas         int
	extremeThreshold int64
	extremeReplicas  int
	demoteBelow      int64

	mu       sync.Mutex
	counters map[string]*hotCounter
	entries  map[string]hotEntry
}

func newHotTracker(cfg Config) *hotTracker {
	t := &hotTracker{
		threshold:        int64(cfg.HotKeyThreshold),
		window:           cfg.HotKeyWindow,
		replicas:         cfg.HotKeyReplicas,
		extremeThreshold: int64(cfg.HotKeyExtremeThreshold),
		extremeReplicas:  cfg.HotKeyExtremeReplicas,
		demoteBelow:      int64(cfg.HotKeyDemoteBelow),
		counters:         make(map[string]*hotCounter),
		entries:          make(map[string]hotEntry),
	}
	if t.window <= 0 {
		t.window = 64
	}
	if t.replicas < 2 {
		t.replicas = 4
	}
	if t.extremeReplicas <= t.replicas {
		t.extremeReplicas = 4 * t.replicas
	}
	return t
}

// bump records one arrival for input at logical time eventT and returns the
// transition it triggers, if any. Window accounting is touch-driven: a
// window closes when the first event past its end arrives, which is also
// when a cooled-down input is demoted.
func (h *hotTracker) bump(input string, eventT int64) (hotTransition, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	c := h.counters[input]
	if c == nil {
		c = &hotCounter{windowStart: eventT}
		h.counters[input] = c
	}
	entry := h.entries[input]
	if eventT-c.windowStart >= h.window {
		completed := c.count
		c.count = 0
		c.windowStart = eventT
		if entry.hot() && h.demoteBelow > 0 && completed < h.demoteBelow {
			next := hotEntry{version: entry.version + 1}
			h.entries[input] = next
			c.count++
			return hotTransition{
				kind: hotDemote, input: input,
				version: next.version, oldK: entry.k,
			}, true
		}
	}
	c.count++
	if !entry.hot() && c.count >= h.threshold {
		next := hotEntry{version: entry.version + 1, k: h.replicas}
		h.entries[input] = next
		return hotTransition{
			kind: hotPromote, input: input,
			version: next.version, k: next.k,
		}, true
	}
	if entry.hot() && h.extremeThreshold > 0 && entry.k < h.extremeReplicas && c.count >= h.extremeThreshold {
		next := hotEntry{version: entry.version + 1, k: h.extremeReplicas}
		h.entries[input] = next
		return hotTransition{
			kind: hotEscalate, input: input,
			version: next.version, k: next.k, oldK: entry.k,
		}, true
	}
	return hotTransition{}, false
}

// observe installs the epoch a received hot frame was sent under, if newer
// than the registry's. Within one process the registry is shared and
// transitions apply synchronously, so observe is a no-op there; it keeps
// the frames self-describing for stale senders.
func (h *hotTracker) observe(input string, version, k int) {
	h.mu.Lock()
	if e := h.entries[input]; version > e.version {
		h.entries[input] = hotEntry{version: version, k: k}
	}
	h.mu.Unlock()
}

// lookup returns input's entry and whether it is currently promoted.
func (h *hotTracker) lookup(input string) (hotEntry, bool) {
	h.mu.Lock()
	e := h.entries[input]
	h.mu.Unlock()
	return e, e.hot()
}

// hotState returns the tracker when the layer is active: configured for
// this engine and not suspended by a multi-way pipeline.
func (e *Engine) hotState() *hotTracker {
	if e.hot == nil || e.multiOn.Load() {
		return nil
	}
	return e.hot
}

// HotKeyState describes one currently promoted value-level input.
type HotKeyState struct {
	Input    string
	Replicas int
	Version  int
}

// HotKeys returns the promoted inputs in sorted order.
func (e *Engine) HotKeys() []HotKeyState {
	if e.hot == nil {
		return nil
	}
	h := e.hot
	h.mu.Lock()
	var out []HotKeyState
	for input, entry := range h.entries {
		if entry.hot() {
			out = append(out, HotKeyState{Input: input, Replicas: entry.k, Version: entry.version})
		}
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Input < out[j].Input })
	return out
}

// Message kinds of the hot-key protocol.
const (
	kindHotJoin    = "hot-join"
	kindHotVLIndex = "hot-vl-index"
	kindHotMigrate = "hot-migrate"
	kindHotRecall  = "hot-recall"
	kindHotHandoff = "hot-handoff"
)

// hotJoinMsg scatters a group of rewritten queries from the base bucket to
// shard Shard (1..K-1) of promoted input Input, under epoch Version/K.
type hotJoinMsg struct {
	Input    string
	Shard    int
	Version  int
	K        int
	Rewrites []*rewritten
}

func (hotJoinMsg) Kind() string { return kindHotJoin }

// hotVLIndexMsg relays one tuple from the base bucket to the shard its
// content hashes to.
type hotVLIndexMsg struct {
	Input   string
	Shard   int
	Version int
	K       int
	T       *relation.Tuple
}

func (hotVLIndexMsg) Kind() string { return kindHotVLIndex }

// hotMigrateMsg tells the base evaluator of Input to partition its bucket
// under epoch Version/K: the rewrite set is copied to every shard and each
// stored tuple ships to the shard it hashes to. Sent on promotion and (with
// the larger K) on escalation.
type hotMigrateMsg struct {
	Input   string
	Version int
	K       int
}

func (hotMigrateMsg) Kind() string { return kindHotMigrate }

// hotRecallMsg tells shard Shard of Input to dissolve: it drops its rewrite
// copies (the base holds the authoritative set) and ships its tuples back
// to the base bucket. Version/K carry the successor epoch — K == 0 means
// the input demoted to cold, K > 0 that it escalated and the base will
// redistribute.
type hotRecallMsg struct {
	Input   string
	Shard   int
	Version int
	K       int
}

func (hotRecallMsg) Kind() string { return kindHotRecall }

// hotHandoffMsg moves evaluator state between the base bucket and a shard:
// migration (base to shard, rewrites plus that shard's tuple partition),
// recall (shard to base, Shard == 0, tuples only), and stale-frame bounces.
// Merging matches newly added items against the counterpart table, so pairs
// split by an in-flight transition still meet; re-matches are absorbed by
// the subscriber-side delivery dedup.
type hotHandoffMsg struct {
	Input   string
	Shard   int
	Version int
	K       int
	Entries []vqEntry
	Tuples  []*relation.Tuple
}

func (hotHandoffMsg) Kind() string { return kindHotHandoff }

// runHotTransition executes a transition bump returned: it sends the
// migrate/recall frames from this node. Callers must not hold st.mu or the
// tracker lock — the cascade delivers synchronously in the simulator and
// re-enters node state.
func (st *nodeState) runHotTransition(tr hotTransition, ok bool) {
	if !ok {
		return
	}
	e := st.engine
	var batch []chord.Deliverable
	switch tr.kind {
	case hotPromote:
		e.obs.hotPromotions.Add(1)
		batch = append(batch, chord.Deliverable{
			Target: e.hashInput(tr.input),
			Msg:    hotMigrateMsg{Input: tr.input, Version: tr.version, K: tr.k},
		})
	case hotDemote:
		e.obs.hotDemotions.Add(1)
		for s := 1; s < tr.oldK; s++ {
			batch = append(batch, chord.Deliverable{
				Target: e.hashInput(hotShardInput(tr.input, s)),
				Msg:    hotRecallMsg{Input: tr.input, Shard: s, Version: tr.version, K: 0},
			})
		}
	case hotEscalate:
		e.obs.hotEscalations.Add(1)
		for s := 1; s < tr.oldK; s++ {
			batch = append(batch, chord.Deliverable{
				Target: e.hashInput(hotShardInput(tr.input, s)),
				Msg:    hotRecallMsg{Input: tr.input, Shard: s, Version: tr.version, K: tr.k},
			})
		}
		batch = append(batch, chord.Deliverable{
			Target: e.hashInput(tr.input),
			Msg:    hotMigrateMsg{Input: tr.input, Version: tr.version, K: tr.k},
		})
	}
	_ = e.dispatch(st.node, batch)
}

// hotScatterJoins runs the detector over a join batch arriving at this
// (base) evaluator and builds the scatter frames for promoted inputs: one
// hotJoinMsg per shard carrying the rewrites bound for that input. The
// caller stores the rewrites locally (shard 0) and dispatches the scatter
// after releasing st.mu.
func (st *nodeState) hotScatterJoins(hot *hotTracker, rws []*rewritten) []chord.Deliverable {
	var order []string
	byInput := make(map[string][]*rewritten)
	for _, rw := range rws {
		input := vlInput(rw.WantRel, rw.WantAttr, rw.WantValue)
		st.runHotTransition(hot.bump(input, rw.Trigger.PubT()))
		if _, seen := byInput[input]; !seen {
			order = append(order, input)
		}
		byInput[input] = append(byInput[input], rw)
	}
	e := st.engine
	var batch []chord.Deliverable
	for _, input := range order {
		entry, promoted := hot.lookup(input)
		if !promoted {
			continue
		}
		group := byInput[input]
		for s := 1; s < entry.k; s++ {
			batch = append(batch, chord.Deliverable{
				Target: e.hashInput(hotShardInput(input, s)),
				Msg: hotJoinMsg{
					Input: input, Shard: s,
					Version: entry.version, K: entry.k,
					Rewrites: group,
				},
			})
		}
	}
	return batch
}

// forwardHotTuple relays a value-level tuple arrival from the base bucket
// to its shard. The relay costs the base one filtering unit; the matching
// and storage work lands on the shard.
func (st *nodeState) forwardHotTuple(input string, shard int, entry hotEntry, t *relation.Tuple) {
	e := st.engine
	st.load.AddFiltering(metrics.Evaluator, 1)
	e.obs.hotForwards.Add(kindVLIndex, 1)
	_ = e.dispatch(st.node, []chord.Deliverable{{
		Target: e.hashInput(hotShardInput(input, shard)),
		Msg: hotVLIndexMsg{
			Input: input, Shard: shard,
			Version: entry.version, K: entry.k,
			T: t,
		},
	}})
}

// handleHotJoin stores a scattered rewrite group in this shard's bucket and
// matches it against the shard's tuple partition — the shard-side mirror of
// handleJoin's SAI arm. Rewrites are valid at every shard of every epoch
// (they scatter everywhere), so only a demotion re-routes them: back to the
// base bucket, whose keyed merge absorbs the duplicate.
func (st *nodeState) handleHotJoin(m hotJoinMsg) {
	e := st.engine
	hot := e.hotState()
	if hot == nil {
		return
	}
	hot.observe(m.Input, m.Version, m.K)
	entry, promoted := hot.lookup(m.Input)
	if !promoted {
		e.obs.hotForwards.Add(kindJoin, 1)
		_ = e.dispatch(st.node, []chord.Deliverable{{
			Target: e.hashInput(m.Input),
			Msg:    joinMsg{Rewrites: m.Rewrites},
		}})
		return
	}
	_ = entry
	key := hotShardInput(m.Input, m.Shard)
	var notifs []Notification
	work := 1
	stored := 0

	st.mu.Lock()
	qb := st.vlqt[key]
	if qb == nil {
		qb = newVLQTBucket(key)
		st.vlqt[key] = qb
	}
	for _, rw := range m.Rewrites {
		if sr, dup := qb.byKey[rw.Key]; dup {
			sr.times = append(sr.times, rw.Trigger.PubT())
			work++
			continue
		}
		sr := &storedRewrite{rw: rw, times: []int64{rw.Trigger.PubT()}}
		qb.byKey[rw.Key] = sr
		qb.sorted = append(qb.sorted, sr)
		stored++
		if tb := st.vltt[key]; tb != nil {
			for _, tt := range tb.tuples {
				work++
				if n, ok := matchRewrite(rw, tt); ok {
					notifs = append(notifs, n)
				}
			}
		}
	}
	st.mu.Unlock()

	st.load.AddFiltering(metrics.Evaluator, work)
	if stored > 0 {
		st.load.AddStorage(metrics.Evaluator, stored)
	}
	st.sendNotifications(notifs)
}

// handleHotVLIndex evaluates a relayed tuple at its shard — the shard-side
// mirror of handleVLIndex's SAI arm. A tuple whose shard assignment no
// longer holds under the current epoch (demoted or escalated in flight)
// returns to the base bucket as a hot-handoff, whose match-on-merge
// re-evaluates it there.
func (st *nodeState) handleHotVLIndex(m hotVLIndexMsg) {
	e := st.engine
	hot := e.hotState()
	if hot == nil {
		return
	}
	hot.observe(m.Input, m.Version, m.K)
	entry, promoted := hot.lookup(m.Input)
	if !promoted || shardOf(m.T, entry.k) != m.Shard {
		e.obs.hotForwards.Add(kindHotHandoff, 1)
		_ = e.dispatch(st.node, []chord.Deliverable{{
			Target: e.hashInput(m.Input),
			Msg: hotHandoffMsg{
				Input: m.Input, Shard: 0,
				Version: entry.version, K: entry.k,
				Tuples: []*relation.Tuple{m.T},
			},
		}})
		return
	}
	key := hotShardInput(m.Input, m.Shard)
	var notifs []Notification
	work := 1
	stored := 0

	st.mu.Lock()
	if qb := st.vlqt[key]; qb != nil {
		for _, sr := range qb.sorted {
			work++
			if n, ok := matchRewrite(sr.rw, m.T); ok {
				notifs = append(notifs, n)
			}
		}
	}
	tb := st.vltt[key]
	if tb == nil {
		tb = newVLTTBucket(key)
		st.vltt[key] = tb
	}
	if ck := tupleContentKey(m.T); !tb.seen[ck] {
		tb.seen[ck] = true
		tb.tuples = append(tb.tuples, m.T)
		stored++
	} else {
		e.net.Traffic().RecordDuplicate(m.Kind())
	}
	st.mu.Unlock()

	st.load.AddFiltering(metrics.Evaluator, work)
	if stored > 0 {
		st.load.AddStorage(metrics.Evaluator, stored)
	}
	st.sendNotifications(notifs)
}

// handleHotMigrate partitions the base bucket of a freshly promoted (or
// escalated) input: the full rewrite set is copied to every shard and each
// stored tuple whose content hashes to a foreign shard ships there. Shard-0
// items stay — the base bucket is shard 0. Idempotent under re-delivery:
// already-shipped tuples are gone and the rewrite copies merge keyed.
func (st *nodeState) handleHotMigrate(m hotMigrateMsg) {
	e := st.engine
	hot := e.hotState()
	if hot == nil {
		return
	}
	hot.observe(m.Input, m.Version, m.K)
	entry, promoted := hot.lookup(m.Input)
	if !promoted {
		// Demoted before the migrate landed; the recalls already ran.
		return
	}
	var entries []vqEntry
	groups := make([][]*relation.Tuple, entry.k)
	shipped := 0

	st.mu.Lock()
	if qb := st.vlqt[m.Input]; qb != nil {
		entries = make([]vqEntry, 0, len(qb.sorted))
		for _, sr := range qb.sorted {
			entries = append(entries, vqEntry{Rw: sr.rw, Times: sr.times})
		}
	}
	if tb := st.vltt[m.Input]; tb != nil {
		kept := tb.tuples[:0]
		for _, t := range tb.tuples {
			s := shardOf(t, entry.k)
			if s == 0 {
				kept = append(kept, t)
				continue
			}
			groups[s] = append(groups[s], t)
			delete(tb.seen, tupleContentKey(t))
			shipped++
		}
		tb.tuples = kept
	}
	st.mu.Unlock()

	st.load.AddFiltering(metrics.Evaluator, 1)
	if shipped > 0 {
		st.load.AddStorage(metrics.Evaluator, -shipped)
	}
	var batch []chord.Deliverable
	for s := 1; s < entry.k; s++ {
		if len(entries) == 0 && len(groups[s]) == 0 {
			continue
		}
		batch = append(batch, chord.Deliverable{
			Target: e.hashInput(hotShardInput(m.Input, s)),
			Msg: hotHandoffMsg{
				Input: m.Input, Shard: s,
				Version: entry.version, K: entry.k,
				Entries: entries, Tuples: groups[s],
			},
		})
	}
	_ = e.dispatch(st.node, batch)
}

// handleHotRecall dissolves one shard of a demoted or escalated input: the
// rewrite copies are dropped (the base bucket holds the authoritative set)
// and the tuple partition returns to the base as a hot-handoff, which the
// base merges (demotion) or redistributes under the new epoch (escalation).
func (st *nodeState) handleHotRecall(m hotRecallMsg) {
	e := st.engine
	hot := e.hotState()
	if hot == nil {
		return
	}
	hot.observe(m.Input, m.Version, m.K)
	key := hotShardInput(m.Input, m.Shard)
	var tuples []*relation.Tuple
	removed := 0

	st.mu.Lock()
	if qb := st.vlqt[key]; qb != nil {
		removed += len(qb.byKey)
		delete(st.vlqt, key)
	}
	if tb := st.vltt[key]; tb != nil {
		tuples = tb.tuples
		removed += len(tb.tuples)
		delete(st.vltt, key)
	}
	st.mu.Unlock()

	st.load.AddFiltering(metrics.Evaluator, 1)
	if removed > 0 {
		st.load.AddStorage(metrics.Evaluator, -removed)
	}
	if len(tuples) == 0 {
		return
	}
	_ = e.dispatch(st.node, []chord.Deliverable{{
		Target: e.hashInput(m.Input),
		Msg: hotHandoffMsg{
			Input: m.Input, Shard: 0,
			Version: m.Version, K: m.K,
			Tuples: tuples,
		},
	}})
}

// handleHotHandoff merges migrated or recalled evaluator state into the
// bucket it is addressed to, re-routing content the current epoch places
// elsewhere. The merge matches newly added rewrites against pre-existing
// tuples and newly added tuples against the full rewrite set, so every
// pair split by an in-flight transition meets exactly once here; pairs that
// already met elsewhere re-match, and the subscriber-side delivery dedup
// suppresses the repeats.
func (st *nodeState) handleHotHandoff(m hotHandoffMsg) {
	e := st.engine
	hot := e.hotState()
	if hot == nil {
		return
	}
	hot.observe(m.Input, m.Version, m.K)
	entry, promoted := hot.lookup(m.Input)

	var local []*relation.Tuple
	var batch []chord.Deliverable
	if m.Shard == 0 {
		if promoted {
			// Returned tuples redistribute under the current epoch; the
			// shard-0 partition merges into the base bucket below.
			groups := make([][]*relation.Tuple, entry.k)
			for _, t := range m.Tuples {
				if s := shardOf(t, entry.k); s != 0 {
					groups[s] = append(groups[s], t)
				} else {
					local = append(local, t)
				}
			}
			for s := 1; s < entry.k; s++ {
				if len(groups[s]) == 0 {
					continue
				}
				batch = append(batch, chord.Deliverable{
					Target: e.hashInput(hotShardInput(m.Input, s)),
					Msg: hotHandoffMsg{
						Input: m.Input, Shard: s,
						Version: entry.version, K: entry.k,
						Tuples: groups[s],
					},
				})
			}
		} else {
			local = m.Tuples
		}
	} else {
		if !promoted {
			// Demoted in flight: everything returns to the base bucket.
			e.obs.hotForwards.Add(kindHotHandoff, 1)
			_ = e.dispatch(st.node, []chord.Deliverable{{
				Target: e.hashInput(m.Input),
				Msg: hotHandoffMsg{
					Input: m.Input, Shard: 0,
					Version: entry.version, K: 0,
					Entries: m.Entries, Tuples: m.Tuples,
				},
			}})
			return
		}
		// Rewrites are valid at every shard; tuples must hash to this shard
		// under the current epoch or go home for redistribution.
		var bounce []*relation.Tuple
		for _, t := range m.Tuples {
			if shardOf(t, entry.k) == m.Shard {
				local = append(local, t)
			} else {
				bounce = append(bounce, t)
			}
		}
		if len(bounce) > 0 {
			batch = append(batch, chord.Deliverable{
				Target: e.hashInput(m.Input),
				Msg: hotHandoffMsg{
					Input: m.Input, Shard: 0,
					Version: entry.version, K: entry.k,
					Tuples: bounce,
				},
			})
		}
	}

	key := hotShardInput(m.Input, m.Shard)
	st.mu.Lock()
	added, work, notifs := st.mergeHotBucket(key, m.Entries, local)
	st.mu.Unlock()

	st.load.AddFiltering(metrics.Evaluator, 1+work)
	if added > 0 {
		st.load.AddStorage(metrics.Evaluator, added)
	}
	_ = e.dispatch(st.node, batch)
	st.sendNotifications(notifs)
}

// mergeHotBucket merges rewrites and tuples into the bucket named key with
// match-on-merge. Matching order keeps every cross pair to one meeting:
// added rewrites match only the tuples already present, then added tuples
// match the full (merged) rewrite set. The caller holds st.mu.
func (st *nodeState) mergeHotBucket(key string, entries []vqEntry, tuples []*relation.Tuple) (added, work int, notifs []Notification) {
	qb := st.vlqt[key]
	var addedRws []*rewritten
	if len(entries) > 0 {
		if qb == nil {
			qb = newVLQTBucket(key)
			st.vlqt[key] = qb
		}
		for _, e := range entries {
			if sr, dup := qb.byKey[e.Rw.Key]; dup {
				sr.times = append(sr.times, e.Times...)
				continue
			}
			sr := &storedRewrite{rw: e.Rw, times: e.Times}
			qb.byKey[e.Rw.Key] = sr
			qb.sorted = append(qb.sorted, sr)
			added++
			addedRws = append(addedRws, e.Rw)
		}
	}
	tb := st.vltt[key]
	if tb != nil {
		for _, rw := range addedRws {
			for _, tt := range tb.tuples {
				work++
				if n, ok := matchRewrite(rw, tt); ok {
					notifs = append(notifs, n)
				}
			}
		}
	}
	if len(tuples) > 0 {
		if tb == nil {
			tb = newVLTTBucket(key)
			st.vltt[key] = tb
		}
		for _, t := range tuples {
			ck := tupleContentKey(t)
			if tb.seen[ck] {
				continue
			}
			tb.seen[ck] = true
			if qb != nil {
				for _, sr := range qb.sorted {
					work++
					if n, ok := matchRewrite(sr.rw, t); ok {
						notifs = append(notifs, n)
					}
				}
			}
			tb.tuples = append(tb.tuples, t)
			added++
		}
	}
	return added, work, notifs
}
