package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cqjoin/internal/chord"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
)

// Batched publish pipeline (DESIGN.md §8). A batch of tuple insertions is
// pre-stamped with the logical timestamps a sequential run would assign,
// partitioned into waves of events whose cascades touch disjoint
// value-level state, and each wave's cascades run concurrently. Because
// (a) timestamps come from the sequence number, not from execution order,
// (b) events that can read or write the same evaluator bucket are ordered
// into input order by the wave partition, and (c) all shared counters are
// commutative, a batch produces bit-identical deterministic metrics and
// notification sets at any worker count.

// PublishOp is one tuple insertion of a batch.
type PublishOp struct {
	From *chord.Node
	T    *relation.Tuple
}

// parallelSafeInterceptor is implemented by fault injectors whose
// per-delivery decisions are a pure function of message content rather
// than of the injector's sequential draw stream (chaos.Config.KeyedDraws).
// Only such an interceptor can stay installed while cascades run
// concurrently; any other interceptor forces the sequential fallback.
type parallelSafeInterceptor interface{ ParallelSafe() bool }

// serialOnly reports whether PublishBatch must fall back to plain
// sequential Publish calls: the baselines and the multi-way extension keep
// per-arrival state the two-way conflict analysis does not model, and an
// arrival-order-dependent fault injector would change its draw schedule
// under both batching and concurrency.
func (e *Engine) serialOnly() bool {
	switch e.cfg.Algorithm {
	case BaselineRelation, BaselineAttribute, BaselinePair:
		return true
	}
	e.mu.Lock()
	multi := e.hasMulti
	e.mu.Unlock()
	if multi {
		return true
	}
	if ic := e.net.Interceptor(); ic != nil {
		ps, ok := ic.(parallelSafeInterceptor)
		if !ok || !ps.ParallelSafe() {
			return true
		}
	}
	return false
}

// registerCondition records a distinct join condition for conflict-key
// derivation. Every indexed two-way query passes through here.
func (e *Engine) registerCondition(q *query.Query) {
	key := q.ConditionKey()
	e.condMu.Lock()
	if !e.condSeen[key] {
		e.condSeen[key] = true
		e.conds = append(e.conds, q)
	}
	e.condMu.Unlock()
}

// conflictKeys appends the value-level identifier inputs tuple t's cascade
// can read or write: the inputs t itself is stored and matched under, plus
// the rewrite target of every registered join condition t can trigger.
// Two batched events sharing a key are executed in input order by the wave
// partition; events with disjoint key sets commute — their cascades meet
// only at per-input evaluator buckets keyed by exactly these inputs.
//
// The target derivation mirrors rewriteGroup/rewriteGroupV: for a
// condition side matching t's relation, the rewritten query travels to
// vlInput(otherRel, otherAttr, invert(other, eval(side, t))) — and
// invertibility guarantees a stored opposite-side tuple collides there
// exactly when the two evaluations are equal, so the derived key set
// covers every store/match pair. DAI-V stores no value-level tuples and
// meets at daivInput(eval(side, t)) instead.
func (e *Engine) conflictKeys(t *relation.Tuple, keys []string) []string {
	alg := e.cfg.Algorithm
	rel := t.Relation()
	if alg != DAIV {
		for _, a := range t.Schema().Attrs() {
			keys = append(keys, vlInput(rel, a, t.MustValue(a)))
		}
	}
	e.condMu.Lock()
	conds := e.conds
	e.condMu.Unlock()
	for _, q := range conds {
		for _, side := range []query.Side{query.SideLeft, query.SideRight} {
			if q.Rel(side).Name() != rel {
				continue
			}
			vSide, err := q.EvalSide(side, t)
			if err != nil {
				continue
			}
			if alg == DAIV {
				keys = append(keys, daivInput(vSide))
				continue
			}
			other := side.Other()
			valDA, err := q.InvertSide(other, vSide)
			if err != nil {
				continue
			}
			wantRel := q.Rel(other).Name()
			for _, a := range q.SideAttrs(other) {
				keys = append(keys, vlInput(wantRel, a, valDA))
			}
		}
	}
	return keys
}

// partitionWaves assigns each batched event the earliest wave after every
// earlier event it conflicts with. Within a wave all cascades commute;
// waves run in order with a barrier between them, which serializes every
// conflicting pair into exactly the order a sequential run executes.
func (e *Engine) partitionWaves(stamped []*relation.Tuple) [][]int {
	lastWave := make(map[string]int) // key -> 1 + index of last wave touching it
	var waves [][]int
	var keys []string
	for i, t := range stamped {
		keys = e.conflictKeys(t, keys[:0])
		w := 0
		for _, k := range keys {
			if lw := lastWave[k]; lw > w {
				w = lw
			}
		}
		if w == len(waves) {
			waves = append(waves, nil)
		}
		waves[w] = append(waves[w], i)
		for _, k := range keys {
			lastWave[k] = w + 1
		}
	}
	return waves
}

// PublishBatch inserts a batch of tuples with the same observable results a
// loop of Publish calls produces — identical timestamps, traffic and load
// counters, and notification set — executing independent cascades on up to
// `workers` goroutines. Notifications appended by the batch are kept in a
// canonical sort order rather than cascade-completion order (the OnNotify
// callback still fires in completion order). Engines running a baseline
// algorithm, a multi-way pipeline, or an arrival-order-dependent fault
// injector fall back to the sequential path.
func (e *Engine) PublishBatch(ops []PublishOp, workers int) error {
	if len(ops) == 0 {
		return nil
	}
	if e.serialOnly() {
		for _, op := range ops {
			if _, err := e.Publish(op.From, op.T); err != nil {
				return err
			}
		}
		return nil
	}
	// Validate all ops up front: a sequential loop would stop at the first
	// bad op, and a concurrent run must not interleave half a batch before
	// discovering it.
	for _, op := range ops {
		if !op.From.Alive() {
			return fmt.Errorf("engine: publish from departed node %s", op.From)
		}
		if e.catalog.Lookup(op.T.Relation()) == nil {
			return fmt.Errorf("engine: relation %s not in catalog", op.T.Relation())
		}
	}

	// Pre-stamp publication times from the sequence number: event i gets
	// base+i+1, exactly the Tick() sequence a Publish loop would draw, and
	// the closing Advance below leaves Now at base+len(ops).
	base := e.net.Clock().Now()
	stamped := make([]*relation.Tuple, len(ops))
	for i, op := range ops {
		stamped[i] = op.T.WithPubT(base + int64(i) + 1)
	}

	e.mu.Lock()
	sinkStart := len(e.sink)
	e.mu.Unlock()

	// Freeze logical time for the cascades: retry backoffs would otherwise
	// advance the clock from concurrent workers.
	e.frozen.Store(true)
	errs := make([]error, len(ops))
	if workers <= 1 {
		for i, op := range ops {
			errs[i] = e.indexTuple(op.From, stamped[i])
		}
	} else {
		for _, wave := range e.partitionWaves(stamped) {
			e.runWave(ops, stamped, errs, wave, workers)
		}
	}
	e.frozen.Store(false)

	// One advance for the whole batch restores the sequential clock value
	// and releases chaos-delayed deliveries, drained on the listener in
	// deterministic (due, priority, push) order on this goroutine.
	e.net.Clock().Advance(int64(len(ops)))

	e.sortSinkFrom(sinkStart)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runWave executes one wave's cascades on up to `workers` goroutines with
// atomic work stealing. A panicking cascade is re-raised on the caller
// after the wave drains.
func (e *Engine) runWave(ops []PublishOp, stamped []*relation.Tuple, errs []error, wave []int, workers int) {
	if workers > len(wave) {
		workers = len(wave)
	}
	if workers <= 1 {
		for _, i := range wave {
			errs[i] = e.indexTuple(ops[i].From, stamped[i])
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(wave) {
					return
				}
				i := wave[n]
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicked == nil {
								panicked = r
							}
							panicMu.Unlock()
						}
					}()
					errs[i] = e.indexTuple(ops[i].From, stamped[i])
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		e.frozen.Store(false)
		panic(panicked)
	}
}

// sortSinkFrom orders the notifications appended since index start into
// the batch's canonical order, making the sink independent of cascade
// completion order.
func (e *Engine) sortSinkFrom(start int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if start >= len(e.sink) {
		return
	}
	seg := e.sink[start:]
	sort.Slice(seg, func(i, j int) bool {
		a, b := seg[i], seg[j]
		if a.DeliveredAt != b.DeliveredAt {
			return a.DeliveredAt < b.DeliveredAt
		}
		if a.Subscriber != b.Subscriber {
			return a.Subscriber < b.Subscriber
		}
		if a.QueryKey != b.QueryKey {
			return a.QueryKey < b.QueryKey
		}
		if a.LeftPubT != b.LeftPubT {
			return a.LeftPubT < b.LeftPubT
		}
		if a.RightPubT != b.RightPubT {
			return a.RightPubT < b.RightPubT
		}
		return a.ContentKey() < b.ContentKey()
	})
}
