package engine

import (
	"fmt"

	"cqjoin/internal/chord"
	"cqjoin/internal/id"
	"cqjoin/internal/metrics"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
)

// This file implements the three naive indexing schemes Section 4.1 uses
// to motivate two-level indexing. Each concentrates the query-processing
// load on a bounded set of nodes:
//
//   - BaselineRelation: one node per relation name (Hash(R)) stores all of
//     that relation's tuples and every query referencing it; the two sites
//     of a join exchange probe messages.
//   - BaselineAttribute: one node per relation+attribute (Hash(R+A)) — a
//     better spread, but still bounded by the number of schema attributes.
//   - BaselinePair: one node per join-attribute pair (Hash(R.A+S.B))
//     evaluates the join entirely locally, but every inserted tuple must
//     reach all pair combinations of its attributes with the attributes of
//     every other relation.

// baselineQueryMsg indexes a query at one naive site.
type baselineQueryMsg struct {
	Q     *query.Query
	Side  query.Side // side of the join the destination site covers (pair: SideLeft)
	Input string     // the hashed site key
}

func (baselineQueryMsg) Kind() string { return kindQuery }

// baselineTupleMsg stores a tuple at one naive site.
type baselineTupleMsg struct {
	T     *relation.Tuple
	Input string
	Side  query.Side // pair baseline: which side of the pair key t's relation is
}

func (baselineTupleMsg) Kind() string { return kindALIndex }

// baselineProbeMsg carries rewritten probes from the triggered site to the
// opposite relation's site, where stored tuples complete the join.
type baselineProbeMsg struct {
	Rewrites []*rewritten
	Input    string // destination site key
}

func (baselineProbeMsg) Kind() string { return kindBaseline }

// pairInput is the BaselinePair site key for a join-attribute pair,
// oriented left-to-right as written in the query.
func pairInput(leftRel, leftAttr, rightRel, rightAttr string) string {
	return leftRel + "." + leftAttr + "+" + rightRel + "." + rightAttr
}

// indexQueryBaseline routes a query to its naive site(s).
func (e *Engine) indexQueryBaseline(from *chord.Node, q *query.Query) error {
	switch e.cfg.Algorithm {
	case BaselineRelation:
		return e.dispatch(from, []chord.Deliverable{
			{Target: id.Hash(q.Rel(query.SideLeft).Name()), Msg: baselineQueryMsg{Q: q, Side: query.SideLeft, Input: q.Rel(query.SideLeft).Name()}},
			{Target: id.Hash(q.Rel(query.SideRight).Name()), Msg: baselineQueryMsg{Q: q, Side: query.SideRight, Input: q.Rel(query.SideRight).Name()}},
		})
	case BaselineAttribute:
		la, err := q.SingleAttr(query.SideLeft)
		if err != nil {
			return err
		}
		ra, err := q.SingleAttr(query.SideRight)
		if err != nil {
			return err
		}
		li := q.Rel(query.SideLeft).Name() + "+" + la
		ri := q.Rel(query.SideRight).Name() + "+" + ra
		return e.dispatch(from, []chord.Deliverable{
			{Target: id.Hash(li), Msg: baselineQueryMsg{Q: q, Side: query.SideLeft, Input: li}},
			{Target: id.Hash(ri), Msg: baselineQueryMsg{Q: q, Side: query.SideRight, Input: ri}},
		})
	case BaselinePair:
		la, err := q.SingleAttr(query.SideLeft)
		if err != nil {
			return err
		}
		ra, err := q.SingleAttr(query.SideRight)
		if err != nil {
			return err
		}
		input := pairInput(q.Rel(query.SideLeft).Name(), la, q.Rel(query.SideRight).Name(), ra)
		_, _, err = from.Send(baselineQueryMsg{Q: q, Side: query.SideLeft, Input: input}, id.Hash(input))
		return err
	default:
		return fmt.Errorf("engine: %v is not a baseline", e.cfg.Algorithm)
	}
}

// indexTupleBaseline routes a tuple to its naive site(s).
func (e *Engine) indexTupleBaseline(from *chord.Node, t *relation.Tuple) error {
	switch e.cfg.Algorithm {
	case BaselineRelation:
		_, _, err := from.Send(baselineTupleMsg{T: t, Input: t.Relation()}, id.Hash(t.Relation()))
		return err
	case BaselineAttribute:
		attrs := t.Schema().Attrs()
		batch := make([]chord.Deliverable, 0, len(attrs))
		for _, a := range attrs {
			input := t.Relation() + "+" + a
			batch = append(batch, chord.Deliverable{Target: id.Hash(input), Msg: baselineTupleMsg{T: t, Input: input}})
		}
		return e.dispatch(from, batch)
	case BaselinePair:
		// "New tuples would have to reach all pair combinations of the
		// attributes of different relations of the schema, to guarantee
		// completeness" (Section 4.1).
		var batch []chord.Deliverable
		for _, a := range t.Schema().Attrs() {
			for _, other := range e.catalog.Schemas() {
				if other.Name() == t.Relation() {
					continue
				}
				for _, b := range other.Attrs() {
					li := pairInput(t.Relation(), a, other.Name(), b)
					ri := pairInput(other.Name(), b, t.Relation(), a)
					batch = append(batch,
						chord.Deliverable{Target: id.Hash(li), Msg: baselineTupleMsg{T: t, Input: li, Side: query.SideLeft}},
						chord.Deliverable{Target: id.Hash(ri), Msg: baselineTupleMsg{T: t, Input: ri, Side: query.SideRight}},
					)
				}
			}
		}
		return e.dispatch(from, batch)
	default:
		return fmt.Errorf("engine: %v is not a baseline", e.cfg.Algorithm)
	}
}

// handleBaselineQuery stores a query at a naive site. Relation and
// attribute sites keep queries in the ALQT (grouped by condition exactly as
// the real rewriters do); pair sites keep them in the pair store.
func (st *nodeState) handleBaselineQuery(m baselineQueryMsg) {
	cond := m.Q.ConditionKey()
	st.mu.Lock()
	if st.engine.cfg.Algorithm == BaselinePair {
		b := st.pairStore[m.Input]
		if b == nil {
			b = newPairBucket(m.Input)
			st.pairStore[m.Input] = b
		}
		g := b.byCond[cond]
		if g == nil {
			g = &queryGroup{cond: cond, side: m.Side}
			b.byCond[cond] = g
		}
		g.queries = append(g.queries, m.Q)
	} else {
		b := st.alqt[m.Input]
		if b == nil {
			b = newALBucket(m.Input)
			st.alqt[m.Input] = b
		}
		g := b.byCond[cond]
		if g == nil {
			g = &queryGroup{cond: cond, side: m.Side}
			b.byCond[cond] = g
		}
		g.queries = append(g.queries, m.Q)
	}
	st.mu.Unlock()
	st.load.AddFiltering(metrics.Rewriter, 1)
	st.load.AddStorage(metrics.Rewriter, 1)
}

// handleBaselineTuple stores an arriving tuple at a naive site, triggers
// the locally indexed queries and — for the relation and attribute schemes
// — probes the opposite site where the other relation's tuples live. Pair
// sites hold both relations and evaluate locally.
func (st *nodeState) handleBaselineTuple(m baselineTupleMsg) {
	if st.engine.cfg.Algorithm == BaselinePair {
		st.handlePairTuple(m)
		return
	}
	t := m.T
	examined := 0
	var outs []outbound

	st.mu.Lock()
	// Store the tuple so probes from the opposite site can match it.
	tb := st.vltt[m.Input]
	if tb == nil {
		tb = newVLTTBucket(m.Input)
		st.vltt[m.Input] = tb
	}
	if ck := tupleContentKey(t); !tb.seen[ck] {
		tb.seen[ck] = true
		tb.tuples = append(tb.tuples, t)
	}

	if b := st.alqt[m.Input]; b != nil {
		for _, g := range b.byCond {
			var triggered []*query.Query
			for _, q := range g.queries {
				examined++
				if t.PubT() < q.InsT() {
					continue
				}
				if ok, err := q.FiltersPass(t); err != nil || !ok {
					continue
				}
				triggered = append(triggered, q)
			}
			if len(triggered) == 0 {
				continue
			}
			vSide, err := triggered[0].EvalSide(g.side, t)
			if err != nil {
				continue
			}
			other := g.side.Other()
			var dstInput string
			if st.engine.cfg.Algorithm == BaselineRelation {
				dstInput = triggered[0].Rel(other).Name()
			} else {
				oa, err := triggered[0].SingleAttr(other)
				if err != nil {
					continue
				}
				dstInput = triggered[0].Rel(other).Name() + "+" + oa
			}
			var rws []*rewritten
			for _, q := range triggered {
				rws = append(rws, &rewritten{
					Key:       q.Key() + "@" + relation.N(float64(t.PubT())).Canon(),
					Orig:      q,
					IndexSide: g.side,
					Trigger:   t,
					WantRel:   q.Rel(other).Name(),
					WantValue: vSide,
				})
			}
			outs = append(outs, outbound{input: dstInput, msg: baselineProbeMsg{Rewrites: rws, Input: dstInput}})
		}
	}
	st.mu.Unlock()

	st.load.AddFiltering(metrics.Rewriter, 1+examined)
	st.load.AddStorage(metrics.Evaluator, 1)
	for _, o := range outs {
		// Sites are few and fixed; each probe is a single routed message.
		_, _, _ = st.node.Send(o.msg, id.Hash(o.input))
	}
}

// handleBaselineProbe matches probe rewrites against the tuples stored at
// this naive site. The probe carries the value the opposite side's
// expression took; any stored tuple whose own side evaluates to the same
// value joins with it.
func (st *nodeState) handleBaselineProbe(m baselineProbeMsg) {
	var notifs []Notification
	work := 1

	st.mu.Lock()
	tb := st.vltt[m.Input]
	if tb != nil {
		for _, rw := range m.Rewrites {
			other := rw.IndexSide.Other()
			for _, tt := range tb.tuples {
				work++
				if tt.Relation() != rw.WantRel {
					continue
				}
				if tt.PubT() < rw.Orig.InsT() {
					continue
				}
				v, err := rw.Orig.EvalSide(other, tt)
				if err != nil || !v.Equal(rw.WantValue) {
					continue
				}
				if ok, err := rw.Orig.FiltersPass(tt); err != nil || !ok {
					continue
				}
				if n, err := buildNotification(rw.Orig, rw.IndexSide, rw.Trigger, tt); err == nil {
					notifs = append(notifs, n)
				}
			}
		}
	}
	st.mu.Unlock()

	st.load.AddFiltering(metrics.Evaluator, work)
	st.sendNotifications(notifs)
}

// handlePairTuple evaluates and stores a tuple at a BaselinePair site: the
// node owns both relations of one join-attribute pair and computes the join
// locally (Section 4.1: "evaluating locally a query is now very easy since
// we have the two relations in one node").
func (st *nodeState) handlePairTuple(m baselineTupleMsg) {
	t := m.T
	var notifs []Notification
	work := 1
	stored := 0

	st.mu.Lock()
	b := st.pairStore[m.Input]
	if b == nil {
		b = newPairBucket(m.Input)
		st.pairStore[m.Input] = b
	}
	for _, g := range b.byCond {
		for _, q := range g.queries {
			side, err := q.SideFor(t.Relation())
			if err != nil {
				continue
			}
			work++
			if t.PubT() < q.InsT() {
				continue
			}
			if ok, err := q.FiltersPass(t); err != nil || !ok {
				continue
			}
			vSide, err := q.EvalSide(side, t)
			if err != nil {
				continue
			}
			for _, tt := range b.tuples[side.Other()] {
				work++
				if tt.Relation() == t.Relation() || tt.PubT() < q.InsT() {
					continue
				}
				vOther, err := q.EvalSide(side.Other(), tt)
				if err != nil || !vOther.Equal(vSide) {
					continue
				}
				if ok, err := q.FiltersPass(tt); err != nil || !ok {
					continue
				}
				if n, err := buildNotification(q, side, t, tt); err == nil {
					notifs = append(notifs, n)
				}
			}
		}
	}
	ck := tupleContentKey(t)
	if !b.seen[ck] {
		b.seen[ck] = true
		b.tuples[m.Side] = append(b.tuples[m.Side], t)
		stored++
	}
	st.mu.Unlock()

	st.load.AddFiltering(metrics.Evaluator, work)
	if stored > 0 {
		st.load.AddStorage(metrics.Evaluator, stored)
	}
	st.sendNotifications(notifs)
}
