package engine

import (
	"bytes"
	"testing"

	"cqjoin/internal/wire"
)

// FuzzCodecRoundTrip throws arbitrary bytes at DecodeMessage. The
// contract: never panic, never allocate proportionally to a forged length
// prefix (the sliceCount guards), and every ACCEPTED message must
// re-encode to a stable canonical form — encode(decode(b)) decodes again
// and re-encodes to the identical bytes. The seed corpus is one valid
// encoding of every engine message type.
func FuzzCodecRoundTrip(f *testing.F) {
	catalog, msgs := codecFixtures(f)
	for _, msg := range msgs {
		var w wire.Buffer
		if err := EncodeMessage(&w, msg); err != nil {
			f.Fatalf("%T: seed encode: %v", msg, err)
		}
		f.Add(w.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{byte(tagJoin), 0xff, 0xff, 0xff, 0xff, 0x0f}) // forged huge count
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeMessage(wire.NewReader(data), catalog)
		if err != nil {
			return // malformed input rejected cleanly: that is the point
		}
		var w1 wire.Buffer
		if err := EncodeMessage(&w1, msg); err != nil {
			t.Fatalf("accepted message fails to re-encode: %v", err)
		}
		msg2, err := DecodeMessage(wire.NewReader(w1.Bytes()), catalog)
		if err != nil {
			t.Fatalf("re-encoded bytes rejected: %v", err)
		}
		var w2 wire.Buffer
		if err := EncodeMessage(&w2, msg2); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("encoding not canonical:\nfirst:  %x\nsecond: %x", w1.Bytes(), w2.Bytes())
		}
	})
}
