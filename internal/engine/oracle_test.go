package engine

import (
	"math/rand"
	"strings"
	"testing"

	"cqjoin/internal/query"
	"cqjoin/internal/relation"
)

// The oracle test: replay a random interleaving of query submissions and
// tuple insertions, compute the exact expected answer set by brute force
// (nested-loop join over the full history, respecting insertion-time
// semantics and selection predicates), and require every algorithm to
// deliver exactly that set of distinct notification contents.

type oracleRun struct {
	queries []*query.Query
	left    []*relation.Tuple
	right   []*relation.Tuple
}

func (o *oracleRun) expected(t *testing.T) map[string]bool {
	t.Helper()
	or := NewOracle()
	for _, q := range o.queries {
		or.AddQuery(q)
	}
	for _, lt := range o.left {
		or.AddTuple(lt)
	}
	for _, rt := range o.right {
		or.AddTuple(rt)
	}
	return or.ExpectedContentKeys()
}

// replay drives one algorithm through a scripted random interleaving and
// returns the oracle bookkeeping.
func replay(t *testing.T, alg Algorithm, seed int64, sqls []string) (*testEnv, *oracleRun) {
	t.Helper()
	env := newTestEnv(t, 40, Config{Algorithm: alg, Seed: seed})
	rng := rand.New(rand.NewSource(seed))
	o := &oracleRun{}
	nextQuery := 0
	for step := 0; step < 90; step++ {
		switch {
		case nextQuery < len(sqls) && (step%10 == 0 || rng.Intn(6) == 0):
			q := env.subscribe(t, rng.Intn(40), sqls[nextQuery])
			o.queries = append(o.queries, q)
			nextQuery++
		case rng.Intn(2) == 0:
			tu := env.publish(t, rng.Intn(40), rTuple(env,
				float64(rng.Intn(6)), float64(rng.Intn(4)), float64(rng.Intn(4))))
			o.left = append(o.left, tu)
		default:
			tu := env.publish(t, rng.Intn(40), sTuple(env,
				float64(rng.Intn(6)), float64(rng.Intn(4)), float64(rng.Intn(4))))
			o.right = append(o.right, tu)
		}
	}
	// Install any leftover queries and give them one more matching chance.
	for ; nextQuery < len(sqls); nextQuery++ {
		o.queries = append(o.queries, env.subscribe(t, nextQuery, sqls[nextQuery]))
	}
	o.left = append(o.left, env.publish(t, 0, rTuple(env, 1, 1, 1)))
	o.right = append(o.right, env.publish(t, 1, sTuple(env, 1, 1, 1)))
	return env, o
}

func gotContents(env *testEnv) map[string]bool {
	got := make(map[string]bool)
	for _, n := range env.eng.Notifications() {
		got[n.ContentKey()] = true
	}
	return got
}

func assertSetsEqual(t *testing.T, alg Algorithm, want, got map[string]bool) {
	t.Helper()
	var missing, extra []string
	for k := range want {
		if !got[k] {
			missing = append(missing, k)
		}
	}
	for k := range got {
		if !want[k] {
			extra = append(extra, k)
		}
	}
	if len(missing) > 0 || len(extra) > 0 {
		t.Fatalf("%s disagrees with oracle:\nmissing (%d): %s\nextra (%d): %s",
			alg, len(missing), strings.Join(missing, ", "), len(extra), strings.Join(extra, ", "))
	}
	if len(want) == 0 {
		t.Fatalf("%s: oracle produced no matches; test is vacuous", alg)
	}
}

func TestOracleT1AllAlgorithms(t *testing.T) {
	sqls := []string{
		`SELECT R.A, S.D FROM R, S WHERE R.B = S.E`,
		`SELECT R.A, S.D FROM R, S WHERE R.C = S.F`,
		`SELECT R.B, S.E FROM R, S WHERE R.A = S.D AND S.F >= 1`,
		`SELECT R.A FROM R, S WHERE 2 * R.B = S.E + 1`,
		`SELECT S.D FROM R, S WHERE R.B = S.E AND R.C = 2`,
		`SELECT R.A, S.D FROM R, S WHERE R.B = S.E`, // duplicate condition: grouping path
	}
	for _, alg := range algorithms() {
		for seed := int64(1); seed <= 3; seed++ {
			env, o := replay(t, alg, seed, sqls)
			assertSetsEqual(t, alg, o.expected(t), gotContents(env))
		}
	}
}

func TestOracleT2DAIV(t *testing.T) {
	sqls := []string{
		`SELECT R.A, S.D FROM R, S WHERE R.B + R.C = S.E + S.F`,
		`SELECT R.A FROM R, S WHERE 2 * R.B + R.C = S.E * S.F AND S.D >= 1`,
		`SELECT R.C, S.F FROM R, S WHERE R.A = S.D`, // T1 mixed in
	}
	for seed := int64(1); seed <= 3; seed++ {
		env, o := replay(t, DAIV, seed, sqls)
		assertSetsEqual(t, DAIV, o.expected(t), gotContents(env))
	}
}

// The keyed DAI-V extension (Section 4.5) must deliver the same answer set
// as grouped DAI-V while sending more join messages.
func TestOracleDAIVKeyed(t *testing.T) {
	sqls := []string{
		`SELECT R.A, S.D FROM R, S WHERE R.B + R.C = S.E + S.F`,
		`SELECT R.A, S.D FROM R, S WHERE R.B = S.E`,
		`SELECT R.B, S.E FROM R, S WHERE R.B = S.E`, // shared condition, no grouping when keyed
	}
	env := newTestEnv(t, 40, Config{Algorithm: DAIV, DAIVKeyed: true, Seed: 2})
	rng := rand.New(rand.NewSource(5))
	o := &oracleRun{}
	for i, sql := range sqls {
		o.queries = append(o.queries, env.subscribe(t, i, sql))
	}
	for step := 0; step < 60; step++ {
		if rng.Intn(2) == 0 {
			o.left = append(o.left, env.publish(t, rng.Intn(40),
				rTuple(env, float64(rng.Intn(4)), float64(rng.Intn(3)), float64(rng.Intn(3)))))
		} else {
			o.right = append(o.right, env.publish(t, rng.Intn(40),
				sTuple(env, float64(rng.Intn(4)), float64(rng.Intn(3)), float64(rng.Intn(3)))))
		}
	}
	assertSetsEqual(t, DAIV, o.expected(t), gotContents(env))
}

func TestDAIVKeyedSendsMoreJoinMessages(t *testing.T) {
	count := func(keyed bool) int64 {
		env := newTestEnv(t, 40, Config{Algorithm: DAIV, DAIVKeyed: keyed, Seed: 3})
		// Three queries sharing one condition: grouped DAI-V sends one join
		// per trigger, keyed sends three.
		for i := 0; i < 3; i++ {
			env.subscribe(t, i, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
		}
		env.net.Traffic().Reset()
		for i := 0; i < 5; i++ {
			env.publish(t, i, rTuple(env, float64(i), 7, 0))
		}
		return env.net.Traffic().Messages(kindJoin)
	}
	grouped, keyed := count(false), count(true)
	if grouped != 5 || keyed != 15 {
		t.Fatalf("join messages grouped=%d keyed=%d, want 5 and 15", grouped, keyed)
	}
}

// The oracle must also hold while the overlay churns: nodes join and leave
// between events. Voluntary departures hand their keys over, so no state
// is lost and the answer set is unchanged.
func TestOracleUnderChurn(t *testing.T) {
	sqls := []string{
		`SELECT R.A, S.D FROM R, S WHERE R.B = S.E`,
		`SELECT R.B, S.E FROM R, S WHERE R.A = S.D`,
	}
	for _, alg := range []Algorithm{SAI, DAIQ, DAIT, DAIV} {
		env := newTestEnv(t, 40, Config{Algorithm: alg, Seed: 4})
		rng := rand.New(rand.NewSource(9))
		o := &oracleRun{}
		for i, sql := range sqls {
			o.queries = append(o.queries, env.subscribe(t, i, sql))
		}
		joined := 0
		for step := 0; step < 60; step++ {
			switch rng.Intn(6) {
			case 0: // a new node joins
				n, err := env.net.Join(env.eng.Network().Nodes()[0].Key() + "-j" + string(rune('a'+joined)))
				if err == nil {
					env.eng.Attach(n)
					joined++
				}
			case 1: // a random non-subscriber node leaves voluntarily
				nodes := env.net.Nodes()
				victim := nodes[2+rng.Intn(len(nodes)-2)]
				isSubscriber := false
				for _, q := range o.queries {
					if q.Subscriber() == victim.Key() {
						isSubscriber = true
					}
				}
				if !isSubscriber && env.net.Size() > 8 {
					env.net.Leave(victim)
				}
			default:
				nodes := env.net.Nodes()
				from := nodes[rng.Intn(len(nodes))]
				if rng.Intn(2) == 0 {
					tu, err := env.eng.Publish(from, rTuple(env, float64(rng.Intn(4)), float64(rng.Intn(3)), 0))
					if err != nil {
						t.Fatal(err)
					}
					o.left = append(o.left, tu)
				} else {
					tu, err := env.eng.Publish(from, sTuple(env, float64(rng.Intn(4)), float64(rng.Intn(3)), 0))
					if err != nil {
						t.Fatal(err)
					}
					o.right = append(o.right, tu)
				}
			}
		}
		assertSetsEqual(t, alg, o.expected(t), gotContents(env))
	}
}
