package engine

import (
	"cqjoin/internal/chord"
	"cqjoin/internal/metrics"
	"cqjoin/internal/relation"
)

// This file implements the value level of the two-level indexing scheme:
// the evaluator role (Sections 4.3.3, 4.3.4, 4.4.2, 4.4.3, 4.5). An
// evaluator is reached through an identifier derived from a join-attribute
// value; it matches rewritten queries against tuples and creates the
// notifications.

// handleJoin processes rewritten queries arriving at an evaluator. The
// reaction is the algorithm's defining choice (Table 4.1):
//
//   - SAI stores the rewritten query (first arrival of its key; repeats
//     only add time information, Section 4.3.3) AND matches it against the
//     stored tuples of the load-distributing relation.
//   - DAI-Q only matches against stored tuples; rewritten queries are never
//     stored, so future tuples cannot double-report (Section 4.4.2).
//   - DAI-T only stores the rewritten query; notifications are created when
//     tuples arrive (Section 4.4.3).
func (st *nodeState) handleJoin(m joinMsg) {
	alg := st.engine.cfg.Algorithm
	var notifs []Notification
	work := 1
	stored := 0

	// Hot-key sharding (DESIGN.md §13): count the arrivals, and scatter the
	// groups bound for promoted inputs to their shards after this bucket —
	// shard 0 — has stored them below.
	var scatter []chord.Deliverable
	if hot := st.engine.hotState(); hot != nil {
		scatter = st.hotScatterJoins(hot, m.Rewrites)
	}

	st.mu.Lock()
	for _, rw := range m.Rewrites {
		input := vlInput(rw.WantRel, rw.WantAttr, rw.WantValue)

		if alg == SAI || alg == DAIT {
			qb := st.vlqt[input]
			if qb == nil {
				qb = newVLQTBucket(input)
				st.vlqt[input] = qb
			}
			if sr, dup := qb.byKey[rw.Key]; dup {
				// Same rewritten key: created from the same query by a
				// tuple with the same index-attribute value. Only the new
				// publication time is recorded (Section 4.3.3).
				sr.times = append(sr.times, rw.Trigger.PubT())
				work++
				continue
			}
			sr := &storedRewrite{rw: rw, times: []int64{rw.Trigger.PubT()}}
			qb.byKey[rw.Key] = sr
			qb.sorted = append(qb.sorted, sr)
			stored++
		}

		if alg == SAI || alg == DAIQ {
			// Match the rewritten query against stored tuples that were
			// inserted after the query was posed.
			if tb := st.vltt[input]; tb != nil {
				for _, tt := range tb.tuples {
					work++
					if n, ok := matchRewrite(rw, tt); ok {
						notifs = append(notifs, n)
					}
				}
			}
		}
	}
	st.mu.Unlock()

	st.load.AddFiltering(metrics.Evaluator, work)
	if stored > 0 {
		st.load.AddStorage(metrics.Evaluator, stored)
	}
	_ = st.engine.dispatch(st.node, scatter)
	st.sendNotifications(notifs)
}

// handleVLIndex processes a tuple arriving at the value level
// (Section 4.3.4):
//
//   - SAI matches the tuple against stored rewritten queries AND stores it
//     in the VLTT (necessary for completeness: a rewritten query arriving
//     later must find it).
//   - DAI-Q only stores the tuple; stored rewritten queries do not exist.
//   - DAI-T only matches; tuples are never stored at the value level.
func (st *nodeState) handleVLIndex(m vlIndexMsg) {
	alg := st.engine.cfg.Algorithm
	t := m.T
	input := vlInput(t.Relation(), m.Attr, t.MustValue(m.Attr))

	// Hot-key sharding (DESIGN.md §13): count the arrival; when the input
	// is promoted and the tuple's content hashes to a foreign shard, relay
	// it there instead of evaluating here. Shard 0 is this bucket.
	if hot := st.engine.hotState(); hot != nil {
		st.runHotTransition(hot.bump(input, t.PubT()))
		if entry, promoted := hot.lookup(input); promoted {
			if s := shardOf(t, entry.k); s != 0 {
				st.forwardHotTuple(input, s, entry, t)
				return
			}
		}
	}

	var notifs []Notification
	var outs []outbound
	work := 1
	stored := 0

	st.mu.Lock()
	if alg == SAI || alg == DAIT {
		if qb := st.vlqt[input]; qb != nil {
			for _, sr := range qb.sorted {
				work++
				if n, ok := matchRewrite(sr.rw, t); ok {
					notifs = append(notifs, n)
				}
			}
		}
	}
	// Stored multi-way partial matches awaiting this identifier.
	mNotifs, mOuts, mWork := st.matchMultiStored(input, t)
	notifs = append(notifs, mNotifs...)
	outs = append(outs, mOuts...)
	work += mWork
	if alg == SAI || alg == DAIQ {
		tb := st.vltt[input]
		if tb == nil {
			tb = newVLTTBucket(input)
			st.vltt[input] = tb
		}
		// Absorb duplicated deliveries: storing the tuple twice would
		// double every future rewritten-query match.
		if ck := tupleContentKey(t); !tb.seen[ck] {
			tb.seen[ck] = true
			tb.tuples = append(tb.tuples, t)
			stored++
		} else {
			st.engine.net.Traffic().RecordDuplicate(m.Kind())
		}
	}
	st.mu.Unlock()

	st.load.AddFiltering(metrics.Evaluator, work)
	if stored > 0 {
		st.load.AddStorage(metrics.Evaluator, stored)
	}
	st.sendJoins(outs)
	st.sendNotifications(notifs)
}

// matchRewrite checks a rewritten query against a tuple of the
// load-distributing relation. The value condition holds by construction —
// both reached this identifier through DisR + DisA + valDA — so only the
// time semantics (pubT >= insT, Section 3.2) and the selection predicates
// on the stored side remain.
func matchRewrite(rw *rewritten, t *relation.Tuple) (Notification, bool) {
	if t.PubT() < rw.Orig.InsT() {
		return Notification{}, false
	}
	if ok, err := rw.Orig.FiltersPass(t); err != nil || !ok {
		return Notification{}, false
	}
	n, err := buildNotification(rw.Orig, rw.IndexSide, rw.Trigger, t)
	if err != nil {
		return Notification{}, false
	}
	return n, true
}

// handleJoinV processes DAI-V's join(q', t') messages (Section 4.5). The
// evaluator owns one join-condition value: it matches the incoming tuple
// against stored tuples of the opposite side with the same condition,
// creates notifications, then stores the tuple. Rewritten queries are not
// stored — symmetry between the two rewriters guarantees the other side's
// future tuples will carry their own query group here.
func (st *nodeState) handleJoinV(m joinVMsg) {
	input := m.Input
	var notifs []Notification
	work := 1
	stored := 0

	st.mu.Lock()
	b := st.vstore[input]
	if b == nil {
		b = newDAIVBucket(input)
		st.vstore[input] = b
	}
	entry := b.byCond[m.Cond]
	if entry == nil {
		entry = &daivEntry{cond: m.Cond, seen: make(map[string]bool)}
		b.byCond[m.Cond] = entry
	}
	for _, tt := range entry.tuples[m.Side.Other()] {
		for _, q := range m.Queries {
			work++
			if tt.PubT() < q.InsT() {
				continue
			}
			if ok, err := q.FiltersPass(tt); err != nil || !ok {
				continue
			}
			if n, err := buildNotification(q, m.Side, m.Trigger, tt); err == nil {
				notifs = append(notifs, n)
			}
		}
	}
	// Store the triggering tuple once, even when equivalent query groups
	// indexed under different attributes deliver it twice.
	ck := tupleContentKey(m.Trigger)
	if !entry.seen[ck] {
		entry.seen[ck] = true
		entry.tuples[m.Side] = append(entry.tuples[m.Side], m.Trigger)
		stored++
	}
	st.mu.Unlock()

	st.load.AddFiltering(metrics.Evaluator, work)
	if stored > 0 {
		st.load.AddStorage(metrics.Evaluator, stored)
	}
	st.sendNotifications(notifs)
}
