package engine

import (
	"cqjoin/internal/chord"
	"cqjoin/internal/relation"
	"cqjoin/internal/wire"
)

// WireCodec packages the engine's message codecs (codec.go) behind the
// two-method surface a remote transport needs, so internal/transport can
// move engine messages without importing the engine. The catalog is
// captured once: decoding re-parses query SQL against it, exactly like
// DecodeMessage.
//
// It satisfies transport.Codec structurally; keeping the dependency
// arrow transport→chord/wire only (never transport→engine) means the
// transport stays reusable for any message family with a codec.
type WireCodec struct {
	catalog *relation.Catalog
}

// NewWireCodec builds a codec bound to the given catalog.
func NewWireCodec(catalog *relation.Catalog) WireCodec {
	return WireCodec{catalog: catalog}
}

// Encode appends msg's wire encoding to w.
func (c WireCodec) Encode(w *wire.Buffer, msg chord.Message) error {
	return EncodeMessage(w, msg)
}

// Decode reads one message encoded by Encode.
func (c WireCodec) Decode(r *wire.Reader) (chord.Message, error) {
	return DecodeMessage(r, c.catalog)
}

// Size reports msg's exact encoded length (0 when unknown), satisfying
// transport.Sizer: the transport prefixes each batch entry with this
// size and encodes the message directly into the frame buffer, skipping
// the per-message scratch copy.
func (c WireCodec) Size(msg chord.Message) int {
	return MessageSize(msg)
}
