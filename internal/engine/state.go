package engine

import (
	"sync"

	"cqjoin/internal/chord"
	"cqjoin/internal/id"
	"cqjoin/internal/metrics"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
)

// nodeState is the query-processing state of one overlay node: its role
// tables (ALQT at the attribute level; VLQT, VLTT and the DAI-V value store
// at the value level), the stored notifications it holds for offline
// subscribers, the JFRT cache, and its load counters. A node plays the
// rewriter role, the evaluator role, both or neither, purely as a function
// of which identifiers it is responsible for (Section 4.1).
//
// All tables are keyed by the exact string that was hashed to reach this
// node (e.g. "R+B", "R+B+7", "25"), so ring responsibility of every entry
// can be recomputed for key hand-off on joins and leaves. The two-level
// hash structure of Section 4.3.5 is preserved inside each bucket: the
// first level (attribute, or value for DAI-V) is the table key prefix and
// the second level (join condition, value, or rewritten-query key) is the
// in-bucket map.
type nodeState struct {
	engine *Engine
	node   *chord.Node
	load   metrics.Load

	mu           sync.Mutex
	alqt         map[string]*alBucket
	vlqt         map[string]*vlqtBucket
	mvlqt        map[string]*mvlqtBucket
	vltt         map[string]*vlttBucket
	vstore       map[string]*daivBucket
	pairStore    map[string]*pairBucket
	storedNotifs map[string][]Notification
	subIPs       map[string]string // learned subscriber addresses (Section 4.6)
	jfrt         *jfrtCache
}

func newNodeState(e *Engine, n *chord.Node) *nodeState {
	return &nodeState{
		engine:       e,
		node:         n,
		alqt:         make(map[string]*alBucket),
		vlqt:         make(map[string]*vlqtBucket),
		mvlqt:        make(map[string]*mvlqtBucket),
		vltt:         make(map[string]*vlttBucket),
		vstore:       make(map[string]*daivBucket),
		pairStore:    make(map[string]*pairBucket),
		storedNotifs: make(map[string][]Notification),
		subIPs:       make(map[string]string),
		jfrt:         newJFRTCache(),
	}
}

// alBucket is the slice of the attribute-level query table (ALQT) reached
// through one attribute-level identifier. Queries are grouped by equivalent
// join condition (Section 4.3.5) so one incoming tuple handles a whole
// group at once. The bucket also tracks the tuple-arrival statistics the
// index-attribute strategies of Section 4.3.6 probe: arrival timestamps
// (rate) and distinct values seen (domain size).
type alBucket struct {
	input     string // the hashed string, e.g. "R+B" or "R+B#r2"
	byCond    map[string]*queryGroup
	condOrder []string           // byCond keys in registration order (deterministic iteration)
	multi     map[string]*mGroup // multi-way chain queries, by chain condition
	arrivals  []int64
	distinct  map[string]struct{}
	// sentRewrites records the rewritten-query keys this rewriter has
	// already reindexed; DAI-T consults it so a rewritten query is never
	// reindexed twice (Section 4.4.3). Keeping it in the bucket makes it
	// travel with the rewriter role on key hand-off.
	sentRewrites map[string]bool
	// sentTargets records, per query key, the value-level identifiers this
	// rewriter has fanned rewrites out to — the purge list consulted when
	// the query is retracted.
	sentTargets map[string]map[string]struct{}
}

func newALBucket(input string) *alBucket {
	return &alBucket{
		input:        input,
		byCond:       make(map[string]*queryGroup),
		multi:        make(map[string]*mGroup),
		distinct:     make(map[string]struct{}),
		sentRewrites: make(map[string]bool),
		sentTargets:  make(map[string]map[string]struct{}),
	}
}

// queryGroup is the second ALQT level: all queries with one equivalent join
// condition, indexed at this bucket under the same index attribute.
type queryGroup struct {
	cond    string
	side    query.Side // side of the condition this bucket's attribute is on
	queries []*query.Query
}

// vlqtBucket is the slice of the value-level query table reached through
// one value-level identifier Hash(R+A+v): the rewritten queries waiting for
// tuples whose attribute A equals v. The second level is keyed by rewritten
// key so duplicates only add trigger times (Section 4.3.3).
type vlqtBucket struct {
	input  string
	byKey  map[string]*storedRewrite
	sorted []*storedRewrite // insertion order, for deterministic matching
}

type storedRewrite struct {
	rw    *rewritten
	times []int64 // publication times of the tuples that produced it
}

func newVLQTBucket(input string) *vlqtBucket {
	return &vlqtBucket{input: input, byKey: make(map[string]*storedRewrite)}
}

// vlttBucket is the slice of the value-level tuple table reached through
// one value-level identifier: the tuples stored under attribute A = v,
// awaiting future rewritten queries (Section 4.3.4). The seen set keys
// stored tuples by content so a duplicated vl-index delivery is absorbed
// instead of stored twice.
type vlttBucket struct {
	input  string
	tuples []*relation.Tuple
	seen   map[string]bool
}

func newVLTTBucket(input string) *vlttBucket {
	return &vlttBucket{input: input, seen: make(map[string]bool)}
}

// daivBucket is DAI-V's value store reached through Hash(valJC): projected
// tuples of both relations grouped by join condition, plus content keys for
// deduplication when the same tuple arrives through two different rewriters
// of equivalent query groups.
type daivBucket struct {
	input  string // the value canon that was hashed
	byCond map[string]*daivEntry
}

type daivEntry struct {
	cond   string
	tuples [2][]*relation.Tuple // per query.Side
	seen   map[string]bool      // content keys of stored tuples
}

func newDAIVBucket(input string) *daivBucket {
	return &daivBucket{input: input, byCond: make(map[string]*daivEntry)}
}

// pairBucket serves the naive pair-indexing baseline of Section 4.1: one
// node holds both relations' tuples and the queries for one join-attribute
// pair, and evaluates joins entirely locally.
type pairBucket struct {
	input  string
	byCond map[string]*queryGroup
	tuples [2][]*relation.Tuple // per query.Side of the pair key
	seen   map[string]bool
}

func newPairBucket(input string) *pairBucket {
	return &pairBucket{input: input, byCond: make(map[string]*queryGroup), seen: make(map[string]bool)}
}

// HandleMessage dispatches overlay messages to the role handlers.
func (st *nodeState) HandleMessage(on *chord.Node, msg chord.Message) {
	st.engine.obs.handled.Add(msg.Kind(), 1)
	switch m := msg.(type) {
	case queryMsg:
		st.handleQueryIndex(m)
	case alIndexMsg:
		st.handleALIndex(m)
	case vlIndexMsg:
		st.handleVLIndex(m)
	case joinMsg:
		st.handleJoin(m)
	case joinVMsg:
		st.handleJoinV(m)
	case joinBatch:
		for _, inner := range m.Msgs {
			st.HandleMessage(on, inner)
		}
	case notifyMsg:
		st.handleNotify(m)
	case probeMsg:
		// The probe answer is read synchronously by the prober; receiving
		// the message only charges its routing (Section 4.3.6).
	case baselineQueryMsg:
		st.handleBaselineQuery(m)
	case baselineTupleMsg:
		st.handleBaselineTuple(m)
	case baselineProbeMsg:
		st.handleBaselineProbe(m)
	case unsubMsg:
		st.handleUnsub(m)
	case purgeMsg:
		st.handlePurge(m)
	case mQueryMsg:
		st.handleMQueryIndex(m)
	case mJoinMsg:
		st.handleMJoin(m)
	case handoffMsg:
		st.handleHandoff(on, m)
	case hotJoinMsg:
		st.handleHotJoin(m)
	case hotVLIndexMsg:
		st.handleHotVLIndex(m)
	case hotMigrateMsg:
		st.handleHotMigrate(m)
	case hotRecallMsg:
		st.handleHotRecall(m)
	case hotHandoffMsg:
		st.handleHotHandoff(m)
	}
}

// TransferKeys implements chord.KeyTransferrer: every stored item whose
// ring identifier falls in (lo, hi] moves from this node to node `to`.
// Chord invokes it when `to` joins as this node's predecessor, or when this
// node leaves and hands everything to its successor (lo == hi covers the
// whole ring). Stored notifications addressed to the joining subscriber
// itself are replayed immediately (Section 4.6).
func (st *nodeState) TransferKeys(from, to *chord.Node, lo, hi id.ID) {
	dst := st.engine.state(to)
	inRange := func(input string) bool {
		return id.BetweenRightIncl(id.Hash(input), lo, hi)
	}

	st.mu.Lock()
	var moved struct {
		al     []*alBucket
		vq     []*vlqtBucket
		mq     []*mvlqtBucket
		vt     []*vlttBucket
		dv     []*daivBucket
		pair   []*pairBucket
		notifs map[string][]Notification
	}
	moved.notifs = make(map[string][]Notification)
	for k, b := range st.alqt {
		if inRange(k) {
			moved.al = append(moved.al, b)
			delete(st.alqt, k)
		}
	}
	for k, b := range st.vlqt {
		if inRange(k) {
			moved.vq = append(moved.vq, b)
			delete(st.vlqt, k)
		}
	}
	for k, b := range st.mvlqt {
		if inRange(k) {
			moved.mq = append(moved.mq, b)
			delete(st.mvlqt, k)
		}
	}
	for k, b := range st.vltt {
		if inRange(k) {
			moved.vt = append(moved.vt, b)
			delete(st.vltt, k)
		}
	}
	for k, b := range st.vstore {
		if inRange(k) {
			moved.dv = append(moved.dv, b)
			delete(st.vstore, k)
		}
	}
	for k, b := range st.pairStore {
		if inRange(k) {
			moved.pair = append(moved.pair, b)
			delete(st.pairStore, k)
		}
	}
	for sub, batch := range st.storedNotifs {
		if inRange(sub) {
			moved.notifs[sub] = batch
			delete(st.storedNotifs, sub)
		}
	}
	st.mu.Unlock()

	// Re-home the buckets and rebalance the storage-load metric. Buckets
	// are MERGED into the destination, never overwritten: stale deliveries
	// during churn can have created a bucket for the same input at the
	// destination already, and replacing it would silently discard state.
	var removedRewriter, removedEvaluator int
	var addedRewriter, addedEvaluator int
	dst.mu.Lock()
	for _, b := range moved.al {
		removedRewriter += b.storedItems()
		addedRewriter += dst.mergeAL(b)
	}
	for _, b := range moved.vq {
		removedEvaluator += len(b.byKey)
		addedEvaluator += dst.mergeVLQT(b)
	}
	for _, b := range moved.mq {
		removedEvaluator += len(b.rewrites)
		addedEvaluator += dst.mergeMVLQT(b)
	}
	for _, b := range moved.vt {
		removedEvaluator += len(b.tuples)
		addedEvaluator += dst.mergeVLTT(b)
	}
	for _, b := range moved.dv {
		removedEvaluator += b.storedItems()
		addedEvaluator += dst.mergeDAIV(b)
	}
	for _, b := range moved.pair {
		removedEvaluator += len(b.tuples[0]) + len(b.tuples[1]) + b.storedQueries()
		addedEvaluator += dst.mergePair(b)
	}
	var replay []string
	for sub, batch := range moved.notifs {
		dst.storedNotifs[sub] = append(dst.storedNotifs[sub], batch...)
		removedEvaluator += len(batch)
		addedEvaluator += len(batch)
		if sub == to.Key() {
			replay = append(replay, sub)
		}
	}
	dst.mu.Unlock()

	st.load.AddStorage(metrics.Rewriter, -removedRewriter)
	st.load.AddStorage(metrics.Evaluator, -removedEvaluator)
	dst.load.AddStorage(metrics.Rewriter, addedRewriter)
	dst.load.AddStorage(metrics.Evaluator, addedEvaluator)

	for _, sub := range replay {
		dst.replayStoredNotifications(sub, to)
	}
}

// storedItems counts the queries a rewriter bucket stores.
func (b *alBucket) storedItems() int {
	n := 0
	for _, g := range b.byCond {
		n += len(g.queries)
	}
	for _, g := range b.multi {
		n += len(g.queries)
	}
	return n
}

// storedItems counts the tuples a DAI-V bucket stores.
func (b *daivBucket) storedItems() int {
	n := 0
	for _, e := range b.byCond {
		n += len(e.tuples[0]) + len(e.tuples[1])
	}
	return n
}

// storedQueries counts the queries a pair bucket stores.
func (b *pairBucket) storedQueries() int {
	n := 0
	for _, g := range b.byCond {
		n += len(g.queries)
	}
	return n
}

// evictBefore drops stored tuples older than the cutoff — the sliding
// window of the evaluation chapter. Rewritten queries and the queries
// themselves are continuous and never expire.
func (st *nodeState) evictBefore(cutoff int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	evicted := 0
	for _, b := range st.vltt {
		kept := b.tuples[:0]
		for _, t := range b.tuples {
			if t.PubT() >= cutoff {
				kept = append(kept, t)
			} else {
				evicted++
				delete(b.seen, tupleContentKey(t))
			}
		}
		b.tuples = kept
	}
	for _, b := range st.vstore {
		for _, e := range b.byCond {
			for side := 0; side < 2; side++ {
				kept := e.tuples[side][:0]
				for _, t := range e.tuples[side] {
					if t.PubT() >= cutoff {
						kept = append(kept, t)
					} else {
						evicted++
						delete(e.seen, tupleContentKey(t))
					}
				}
				e.tuples[side] = kept
			}
		}
	}
	for _, b := range st.pairStore {
		for side := 0; side < 2; side++ {
			kept := b.tuples[side][:0]
			for _, t := range b.tuples[side] {
				if t.PubT() >= cutoff {
					kept = append(kept, t)
				} else {
					evicted++
					delete(b.seen, tupleContentKey(t))
				}
			}
			b.tuples[side] = kept
		}
	}
	evicted += st.evictMultiBefore(cutoff)
	if evicted > 0 {
		st.load.AddStorage(metrics.Evaluator, -evicted)
	}
}

// tupleContentKey renders a tuple's identity (relation, values, time) for
// the deduplication sets of DAI-V and the pair baseline.
func tupleContentKey(t *relation.Tuple) string {
	key := t.Relation()
	for _, a := range t.Schema().Attrs() {
		key += "|" + a + "=" + t.MustValue(a).Canon()
	}
	key += "|@" + relation.N(float64(t.PubT())).Canon()
	return key
}
