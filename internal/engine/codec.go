package engine

import (
	"fmt"

	"cqjoin/internal/chord"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
	"cqjoin/internal/wire"
)

// Full wire codecs for every engine message. The in-process simulator
// passes Go values between nodes for speed, but the encodings here are the
// authoritative on-the-wire form: every message's Size() is the exact
// length of its encoding (enforced by tests), so the byte ledger reports
// what a socket deployment would actually transmit, and a real transport
// can adopt EncodeMessage/DecodeMessage unchanged.
//
// Every encoder arm carries a //wire:field enc directive declaring the
// wire field order; the wiresync analyzer (cmd/cqlint, DESIGN.md §9)
// checks the arm writes exactly those fields in exactly that order and
// pairs each directive with its size counterpart in wiresize.go. When
// adding a field: update the arm, its directive, and both wiresize.go
// sides — cqlint fails the build until all four agree.

// Message type tags.
const (
	tagQuery byte = iota + 1
	tagALIndex
	tagVLIndex
	tagJoin
	tagJoinV
	tagJoinBatch
	tagNotify
	tagProbe
	tagUnsub
	tagPurge
	tagBaselineQuery
	tagBaselineTuple
	tagBaselineProbe
	tagMQuery
	tagMJoin
	tagHandoff
	tagHotJoin
	tagHotVLIndex
	tagHotMigrate
	tagHotRecall
	tagHotHandoff
	tagSnapMeta
)

// EncodeMessage appends msg's wire form to w. The buffer is pre-grown to
// the arithmetic size (memoized per tuple/query, so this costs no second
// walk), turning the append sequence into straight copies with no
// mid-message reallocation.
func EncodeMessage(w *wire.Buffer, msg chord.Message) error {
	if n := wireSize(msg); n > 0 {
		w.Grow(n)
	}
	switch m := msg.(type) {
	//wire:field enc queryMsg Q Attr Side Replica
	case queryMsg:
		w.PutUvarint(uint64(tagQuery))
		wire.EncodeQuery(w, m.Q)
		w.PutString(m.Attr)
		w.PutUvarint(uint64(m.Side))
		w.PutUvarint(uint64(m.Replica))
	//wire:field enc alIndexMsg T Attr Replica
	case alIndexMsg:
		w.PutUvarint(uint64(tagALIndex))
		wire.EncodeTuple(w, m.T)
		w.PutString(m.Attr)
		w.PutUvarint(uint64(m.Replica))
	//wire:field enc vlIndexMsg T Attr
	case vlIndexMsg:
		w.PutUvarint(uint64(tagVLIndex))
		wire.EncodeTuple(w, m.T)
		w.PutString(m.Attr)
	//wire:field enc joinMsg Rewrites
	case joinMsg:
		w.PutUvarint(uint64(tagJoin))
		w.PutUvarint(uint64(len(m.Rewrites)))
		for _, rw := range m.Rewrites {
			encodeRewritten(w, rw)
		}
	//wire:field enc joinVMsg Input Cond Side Value Trigger Queries
	case joinVMsg:
		w.PutUvarint(uint64(tagJoinV))
		w.PutString(m.Input)
		w.PutString(m.Cond)
		w.PutUvarint(uint64(m.Side))
		w.PutValue(m.Value)
		wire.EncodeTuple(w, m.Trigger)
		w.PutUvarint(uint64(len(m.Queries)))
		for _, q := range m.Queries {
			wire.EncodeQuery(w, q)
		}
	//wire:field enc joinBatch Msgs
	case joinBatch:
		w.PutUvarint(uint64(tagJoinBatch))
		w.PutUvarint(uint64(len(m.Msgs)))
		for _, inner := range m.Msgs {
			if err := EncodeMessage(w, inner); err != nil {
				return err
			}
		}
	//wire:field enc notifyMsg Subscriber Batch
	case notifyMsg:
		w.PutUvarint(uint64(tagNotify))
		w.PutString(m.Subscriber)
		w.PutUvarint(uint64(len(m.Batch)))
		for _, n := range m.Batch {
			encodeNotification(w, n)
		}
	//wire:field enc probeMsg AttrInput
	case probeMsg:
		w.PutUvarint(uint64(tagProbe))
		w.PutString(m.AttrInput)
	//wire:field enc unsubMsg QueryKey Cond Input
	case unsubMsg:
		w.PutUvarint(uint64(tagUnsub))
		w.PutString(m.QueryKey)
		w.PutString(m.Cond)
		w.PutString(m.Input)
	//wire:field enc purgeMsg QueryKey Input
	case purgeMsg:
		w.PutUvarint(uint64(tagPurge))
		w.PutString(m.QueryKey)
		w.PutString(m.Input)
	//wire:field enc baselineQueryMsg Q Side Input
	case baselineQueryMsg:
		w.PutUvarint(uint64(tagBaselineQuery))
		wire.EncodeQuery(w, m.Q)
		w.PutUvarint(uint64(m.Side))
		w.PutString(m.Input)
	//wire:field enc baselineTupleMsg T Input Side
	case baselineTupleMsg:
		w.PutUvarint(uint64(tagBaselineTuple))
		wire.EncodeTuple(w, m.T)
		w.PutString(m.Input)
		w.PutUvarint(uint64(m.Side))
	//wire:field enc baselineProbeMsg Input Rewrites
	case baselineProbeMsg:
		w.PutUvarint(uint64(tagBaselineProbe))
		w.PutString(m.Input)
		w.PutUvarint(uint64(len(m.Rewrites)))
		for _, rw := range m.Rewrites {
			encodeRewritten(w, rw)
		}
	//wire:field enc mQueryMsg MQ Attr Replica
	case mQueryMsg:
		w.PutUvarint(uint64(tagMQuery))
		encodeMultiQuery(w, m.MQ)
		w.PutString(m.Attr)
		w.PutUvarint(uint64(m.Replica))
	//wire:field enc mJoinMsg Rewrites
	case mJoinMsg:
		w.PutUvarint(uint64(tagMJoin))
		w.PutUvarint(uint64(len(m.Rewrites)))
		for _, rw := range m.Rewrites {
			encodeMRewritten(w, rw)
		}
	//wire:field enc handoffMsg AL VQ MQ VT DV Notifs
	case handoffMsg:
		w.PutUvarint(uint64(tagHandoff))
		w.PutUvarint(uint64(len(m.AL)))
		for _, sec := range m.AL {
			encodeALSection(w, sec)
		}
		w.PutUvarint(uint64(len(m.VQ)))
		for _, sec := range m.VQ {
			encodeVQSection(w, sec)
		}
		w.PutUvarint(uint64(len(m.MQ)))
		for _, sec := range m.MQ {
			encodeMQSection(w, sec)
		}
		w.PutUvarint(uint64(len(m.VT)))
		for _, sec := range m.VT {
			encodeVTSection(w, sec)
		}
		w.PutUvarint(uint64(len(m.DV)))
		for _, sec := range m.DV {
			encodeDVSection(w, sec)
		}
		w.PutUvarint(uint64(len(m.Notifs)))
		for _, sec := range m.Notifs {
			encodeNotifSection(w, sec)
		}
	//wire:field enc hotJoinMsg Input Shard Version K Rewrites
	case hotJoinMsg:
		w.PutUvarint(uint64(tagHotJoin))
		w.PutString(m.Input)
		w.PutUvarint(uint64(m.Shard))
		w.PutUvarint(uint64(m.Version))
		w.PutUvarint(uint64(m.K))
		w.PutUvarint(uint64(len(m.Rewrites)))
		for _, rw := range m.Rewrites {
			encodeRewritten(w, rw)
		}
	//wire:field enc hotVLIndexMsg Input Shard Version K T
	case hotVLIndexMsg:
		w.PutUvarint(uint64(tagHotVLIndex))
		w.PutString(m.Input)
		w.PutUvarint(uint64(m.Shard))
		w.PutUvarint(uint64(m.Version))
		w.PutUvarint(uint64(m.K))
		wire.EncodeTuple(w, m.T)
	//wire:field enc hotMigrateMsg Input Version K
	case hotMigrateMsg:
		w.PutUvarint(uint64(tagHotMigrate))
		w.PutString(m.Input)
		w.PutUvarint(uint64(m.Version))
		w.PutUvarint(uint64(m.K))
	//wire:field enc hotRecallMsg Input Shard Version K
	case hotRecallMsg:
		w.PutUvarint(uint64(tagHotRecall))
		w.PutString(m.Input)
		w.PutUvarint(uint64(m.Shard))
		w.PutUvarint(uint64(m.Version))
		w.PutUvarint(uint64(m.K))
	//wire:field enc hotHandoffMsg Input Shard Version K Entries Tuples
	case hotHandoffMsg:
		w.PutUvarint(uint64(tagHotHandoff))
		w.PutString(m.Input)
		w.PutUvarint(uint64(m.Shard))
		w.PutUvarint(uint64(m.Version))
		w.PutUvarint(uint64(m.K))
		w.PutUvarint(uint64(len(m.Entries)))
		for _, e := range m.Entries {
			encodeVQEntry(w, e)
		}
		w.PutUvarint(uint64(len(m.Tuples)))
		for _, t := range m.Tuples {
			wire.EncodeTuple(w, t)
		}
	//wire:field enc snapMetaMsg Clock Nodes Down Seq Subs Multi Conds Sink HotEpochs HotCounts
	case snapMetaMsg:
		w.PutUvarint(uint64(tagSnapMeta))
		w.PutVarint(m.Clock)
		w.PutUvarint(uint64(len(m.Nodes)))
		for _, k := range m.Nodes {
			w.PutString(k)
		}
		w.PutUvarint(uint64(len(m.Down)))
		for _, k := range m.Down {
			w.PutString(k)
		}
		w.PutUvarint(uint64(len(m.Seq)))
		for _, s := range m.Seq {
			encodeSeqEntry(w, s)
		}
		w.PutUvarint(uint64(len(m.Subs)))
		for _, s := range m.Subs {
			encodeSubsEntry(w, s)
		}
		w.PutUvarint(boolBit(m.Multi))
		w.PutUvarint(uint64(len(m.Conds)))
		for _, q := range m.Conds {
			wire.EncodeQuery(w, q)
		}
		w.PutUvarint(uint64(len(m.Sink)))
		for _, n := range m.Sink {
			encodeNotification(w, n)
		}
		w.PutUvarint(uint64(len(m.HotEpochs)))
		for _, e := range m.HotEpochs {
			encodeHotEpochEntry(w, e)
		}
		w.PutUvarint(uint64(len(m.HotCounts)))
		for _, c := range m.HotCounts {
			encodeHotCountEntry(w, c)
		}
	default:
		return fmt.Errorf("engine: no codec for message type %T", msg)
	}
	return nil
}

//wire:field enc rewritten Key Orig IndexSide Trigger WantRel WantAttr WantValue
func encodeRewritten(w *wire.Buffer, rw *rewritten) {
	w.PutString(rw.Key)
	wire.EncodeQuery(w, rw.Orig)
	w.PutUvarint(uint64(rw.IndexSide))
	wire.EncodeTuple(w, rw.Trigger)
	w.PutString(rw.WantRel)
	w.PutString(rw.WantAttr)
	w.PutValue(rw.WantValue)
}

//wire:field enc Notification QueryKey Subscriber subscriberIP Values LeftPubT RightPubT DeliveredAt
func encodeNotification(w *wire.Buffer, n Notification) {
	w.PutString(n.QueryKey)
	w.PutString(n.Subscriber)
	w.PutString(n.subscriberIP)
	w.PutUvarint(uint64(len(n.Values)))
	for _, v := range n.Values {
		w.PutValue(v)
	}
	w.PutVarint(n.LeftPubT)
	w.PutVarint(n.RightPubT)
	w.PutVarint(n.DeliveredAt)
}

//wire:field enc MultiQuery Key Subscriber SubscriberIP InsT Text Rels
func encodeMultiQuery(w *wire.Buffer, mq *query.MultiQuery) {
	w.PutString(mq.Key())
	w.PutString(mq.Subscriber())
	w.PutString(mq.SubscriberIP())
	w.PutVarint(mq.InsT())
	w.PutString(mq.Text())
	w.PutString(mq.Rels()[0].Name()) // pipeline orientation marker
}

//wire:field enc mRewritten Key Orig Stage Acc WantRel WantAttr WantValue
func encodeMRewritten(w *wire.Buffer, rw *mRewritten) {
	w.PutString(rw.Key)
	encodeMultiQuery(w, rw.Orig)
	w.PutUvarint(uint64(rw.Stage))
	w.PutUvarint(uint64(len(rw.Acc)))
	for _, t := range rw.Acc {
		wire.EncodeTuple(w, t)
	}
	w.PutString(rw.WantRel)
	w.PutString(rw.WantAttr)
	w.PutValue(rw.WantValue)
}

//wire:field enc targetsEntry Key Targets
func encodeTargetsEntry(w *wire.Buffer, e targetsEntry) {
	w.PutString(e.Key)
	w.PutUvarint(uint64(len(e.Targets)))
	for _, t := range e.Targets {
		w.PutString(t)
	}
}

//wire:field enc alGroupSection Cond Side Queries
func encodeALGroupSection(w *wire.Buffer, g alGroupSection) {
	w.PutString(g.Cond)
	w.PutUvarint(uint64(g.Side))
	w.PutUvarint(uint64(len(g.Queries)))
	for _, q := range g.Queries {
		wire.EncodeQuery(w, q)
	}
}

//wire:field enc alMultiSection Cond Queries
func encodeALMultiSection(w *wire.Buffer, g alMultiSection) {
	w.PutString(g.Cond)
	w.PutUvarint(uint64(len(g.Queries)))
	for _, mq := range g.Queries {
		encodeMultiQuery(w, mq)
	}
}

//wire:field enc alSection Input Groups Multi SentRewrites SentTargets
func encodeALSection(w *wire.Buffer, sec alSection) {
	w.PutString(sec.Input)
	w.PutUvarint(uint64(len(sec.Groups)))
	for _, g := range sec.Groups {
		encodeALGroupSection(w, g)
	}
	w.PutUvarint(uint64(len(sec.Multi)))
	for _, g := range sec.Multi {
		encodeALMultiSection(w, g)
	}
	w.PutUvarint(uint64(len(sec.SentRewrites)))
	for _, k := range sec.SentRewrites {
		w.PutString(k)
	}
	w.PutUvarint(uint64(len(sec.SentTargets)))
	for _, e := range sec.SentTargets {
		encodeTargetsEntry(w, e)
	}
}

//wire:field enc vqEntry Rw Times
func encodeVQEntry(w *wire.Buffer, e vqEntry) {
	encodeRewritten(w, e.Rw)
	w.PutUvarint(uint64(len(e.Times)))
	for _, t := range e.Times {
		w.PutVarint(t)
	}
}

//wire:field enc vqSection Input Entries
func encodeVQSection(w *wire.Buffer, sec vqSection) {
	w.PutString(sec.Input)
	w.PutUvarint(uint64(len(sec.Entries)))
	for _, e := range sec.Entries {
		encodeVQEntry(w, e)
	}
}

//wire:field enc mqSection Input Rewrites SentTargets
func encodeMQSection(w *wire.Buffer, sec mqSection) {
	w.PutString(sec.Input)
	w.PutUvarint(uint64(len(sec.Rewrites)))
	for _, rw := range sec.Rewrites {
		encodeMRewritten(w, rw)
	}
	w.PutUvarint(uint64(len(sec.SentTargets)))
	for _, e := range sec.SentTargets {
		encodeTargetsEntry(w, e)
	}
}

//wire:field enc vtSection Input Tuples
func encodeVTSection(w *wire.Buffer, sec vtSection) {
	w.PutString(sec.Input)
	w.PutUvarint(uint64(len(sec.Tuples)))
	for _, t := range sec.Tuples {
		wire.EncodeTuple(w, t)
	}
}

//wire:field enc dvEntry Cond Left Right
func encodeDVEntry(w *wire.Buffer, e dvEntry) {
	w.PutString(e.Cond)
	w.PutUvarint(uint64(len(e.Left)))
	for _, t := range e.Left {
		wire.EncodeTuple(w, t)
	}
	w.PutUvarint(uint64(len(e.Right)))
	for _, t := range e.Right {
		wire.EncodeTuple(w, t)
	}
}

//wire:field enc dvSection Input Entries
func encodeDVSection(w *wire.Buffer, sec dvSection) {
	w.PutString(sec.Input)
	w.PutUvarint(uint64(len(sec.Entries)))
	for _, e := range sec.Entries {
		encodeDVEntry(w, e)
	}
}

//wire:field enc notifSection Subscriber Batch
func encodeNotifSection(w *wire.Buffer, sec notifSection) {
	w.PutString(sec.Subscriber)
	w.PutUvarint(uint64(len(sec.Batch)))
	for _, n := range sec.Batch {
		encodeNotification(w, n)
	}
}

//wire:field enc seqEntry Key Seq
func encodeSeqEntry(w *wire.Buffer, s seqEntry) {
	w.PutString(s.Key)
	w.PutVarint(s.Seq)
}

//wire:field enc subsEntry Key Inputs
func encodeSubsEntry(w *wire.Buffer, s subsEntry) {
	w.PutString(s.Key)
	w.PutUvarint(uint64(len(s.Inputs)))
	for _, in := range s.Inputs {
		w.PutString(in)
	}
}

//wire:field enc hotEpochEntry Input Version K
func encodeHotEpochEntry(w *wire.Buffer, e hotEpochEntry) {
	w.PutString(e.Input)
	w.PutUvarint(uint64(e.Version))
	w.PutUvarint(uint64(e.K))
}

//wire:field enc hotCountEntry Input Count WindowStart
func encodeHotCountEntry(w *wire.Buffer, c hotCountEntry) {
	w.PutString(c.Input)
	w.PutVarint(c.Count)
	w.PutVarint(c.WindowStart)
}

// boolBit renders a bool as its uvarint wire bit.
func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// sliceCount validates an element count read off the wire against the
// bytes actually remaining: every element occupies at least one byte, so a
// larger count is a malformed (or hostile) message — rejecting it here
// keeps a forged length prefix from driving a giant allocation before the
// per-element reads would fail anyway.
func sliceCount(r *wire.Reader, n uint64) (int, error) {
	if n > uint64(r.Remaining()) {
		return 0, fmt.Errorf("engine: element count %d exceeds %d remaining bytes", n, r.Remaining())
	}
	return int(n), nil
}

// DecodeMessage reads one message encoded by EncodeMessage, resolving
// queries against the catalog.
func DecodeMessage(r *wire.Reader, catalog *relation.Catalog) (chord.Message, error) {
	tag, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	switch byte(tag) {
	//wire:field dec queryMsg Q Attr Side Replica
	case tagQuery:
		q, err := wire.DecodeQuery(r, catalog)
		if err != nil {
			return nil, err
		}
		attr, err := r.String()
		if err != nil {
			return nil, err
		}
		side, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		replica, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		return queryMsg{Q: q, Attr: attr, Side: query.Side(side), Replica: int(replica)}, nil
	//wire:field dec alIndexMsg T Attr Replica
	case tagALIndex:
		t, err := wire.DecodeTuple(r)
		if err != nil {
			return nil, err
		}
		attr, err := r.String()
		if err != nil {
			return nil, err
		}
		replica, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		return alIndexMsg{T: t, Attr: attr, Replica: int(replica)}, nil
	//wire:field dec vlIndexMsg T Attr
	case tagVLIndex:
		t, err := wire.DecodeTuple(r)
		if err != nil {
			return nil, err
		}
		attr, err := r.String()
		if err != nil {
			return nil, err
		}
		return vlIndexMsg{T: t, Attr: attr}, nil
	//wire:field dec joinMsg Rewrites
	case tagJoin:
		rws, err := decodeRewrittens(r, catalog)
		if err != nil {
			return nil, err
		}
		return joinMsg{Rewrites: rws}, nil
	//wire:field dec joinVMsg Input Cond Side Value Trigger Queries
	case tagJoinV:
		input, err := r.String()
		if err != nil {
			return nil, err
		}
		cond, err := r.String()
		if err != nil {
			return nil, err
		}
		side, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		val, err := r.Value()
		if err != nil {
			return nil, err
		}
		trig, err := wire.DecodeTuple(r)
		if err != nil {
			return nil, err
		}
		count, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		n, err := sliceCount(r, count)
		if err != nil {
			return nil, err
		}
		qs := make([]*query.Query, n)
		for i := range qs {
			if qs[i], err = wire.DecodeQuery(r, catalog); err != nil {
				return nil, err
			}
		}
		return joinVMsg{Input: input, Cond: cond, Side: query.Side(side), Value: val, Trigger: trig, Queries: qs}, nil
	//wire:field dec joinBatch Msgs
	case tagJoinBatch:
		count, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		n, err := sliceCount(r, count)
		if err != nil {
			return nil, err
		}
		msgs := make([]chord.Message, n)
		for i := range msgs {
			if msgs[i], err = DecodeMessage(r, catalog); err != nil {
				return nil, err
			}
		}
		return joinBatch{Msgs: msgs}, nil
	//wire:field dec notifyMsg Subscriber Batch
	case tagNotify:
		sub, err := r.String()
		if err != nil {
			return nil, err
		}
		count, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		n, err := sliceCount(r, count)
		if err != nil {
			return nil, err
		}
		batch := make([]Notification, n)
		for i := range batch {
			if batch[i], err = decodeNotification(r); err != nil {
				return nil, err
			}
		}
		return notifyMsg{Subscriber: sub, Batch: batch}, nil
	//wire:field dec probeMsg AttrInput
	case tagProbe:
		input, err := r.String()
		if err != nil {
			return nil, err
		}
		return probeMsg{AttrInput: input}, nil
	//wire:field dec unsubMsg QueryKey Cond Input
	case tagUnsub:
		key, err := r.String()
		if err != nil {
			return nil, err
		}
		cond, err := r.String()
		if err != nil {
			return nil, err
		}
		input, err := r.String()
		if err != nil {
			return nil, err
		}
		return unsubMsg{QueryKey: key, Cond: cond, Input: input}, nil
	//wire:field dec purgeMsg QueryKey Input
	case tagPurge:
		key, err := r.String()
		if err != nil {
			return nil, err
		}
		input, err := r.String()
		if err != nil {
			return nil, err
		}
		return purgeMsg{QueryKey: key, Input: input}, nil
	//wire:field dec baselineQueryMsg Q Side Input
	case tagBaselineQuery:
		q, err := wire.DecodeQuery(r, catalog)
		if err != nil {
			return nil, err
		}
		side, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		input, err := r.String()
		if err != nil {
			return nil, err
		}
		return baselineQueryMsg{Q: q, Side: query.Side(side), Input: input}, nil
	//wire:field dec baselineTupleMsg T Input Side
	case tagBaselineTuple:
		t, err := wire.DecodeTuple(r)
		if err != nil {
			return nil, err
		}
		input, err := r.String()
		if err != nil {
			return nil, err
		}
		side, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		return baselineTupleMsg{T: t, Input: input, Side: query.Side(side)}, nil
	//wire:field dec baselineProbeMsg Input Rewrites
	case tagBaselineProbe:
		input, err := r.String()
		if err != nil {
			return nil, err
		}
		rws, err := decodeRewrittens(r, catalog)
		if err != nil {
			return nil, err
		}
		return baselineProbeMsg{Input: input, Rewrites: rws}, nil
	//wire:field dec mQueryMsg MQ Attr Replica
	case tagMQuery:
		mq, err := decodeMultiQuery(r, catalog)
		if err != nil {
			return nil, err
		}
		attr, err := r.String()
		if err != nil {
			return nil, err
		}
		replica, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		return mQueryMsg{MQ: mq, Attr: attr, Replica: int(replica)}, nil
	//wire:field dec mJoinMsg Rewrites
	case tagMJoin:
		count, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		n, err := sliceCount(r, count)
		if err != nil {
			return nil, err
		}
		rws := make([]*mRewritten, n)
		for i := range rws {
			if rws[i], err = decodeMRewritten(r, catalog); err != nil {
				return nil, err
			}
		}
		return mJoinMsg{Rewrites: rws}, nil
	case tagHandoff:
		return decodeHandoff(r, catalog)
	//wire:field dec hotJoinMsg Input Shard Version K Rewrites
	case tagHotJoin:
		input, err := r.String()
		if err != nil {
			return nil, err
		}
		shard, version, k, err := decodeHotHeader(r)
		if err != nil {
			return nil, err
		}
		rws, err := decodeRewrittens(r, catalog)
		if err != nil {
			return nil, err
		}
		return hotJoinMsg{Input: input, Shard: shard, Version: version, K: k, Rewrites: rws}, nil
	//wire:field dec hotVLIndexMsg Input Shard Version K T
	case tagHotVLIndex:
		input, err := r.String()
		if err != nil {
			return nil, err
		}
		shard, version, k, err := decodeHotHeader(r)
		if err != nil {
			return nil, err
		}
		t, err := wire.DecodeTuple(r)
		if err != nil {
			return nil, err
		}
		return hotVLIndexMsg{Input: input, Shard: shard, Version: version, K: k, T: t}, nil
	//wire:field dec hotMigrateMsg Input Version K
	case tagHotMigrate:
		input, err := r.String()
		if err != nil {
			return nil, err
		}
		version, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		k, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		return hotMigrateMsg{Input: input, Version: int(version), K: int(k)}, nil
	//wire:field dec hotRecallMsg Input Shard Version K
	case tagHotRecall:
		input, err := r.String()
		if err != nil {
			return nil, err
		}
		shard, version, k, err := decodeHotHeader(r)
		if err != nil {
			return nil, err
		}
		return hotRecallMsg{Input: input, Shard: shard, Version: version, K: k}, nil
	//wire:field dec hotHandoffMsg Input Shard Version K Entries Tuples
	case tagHotHandoff:
		input, err := r.String()
		if err != nil {
			return nil, err
		}
		shard, version, k, err := decodeHotHeader(r)
		if err != nil {
			return nil, err
		}
		ne, err := decodeCount(r)
		if err != nil {
			return nil, err
		}
		entries := make([]vqEntry, ne)
		for i := range entries {
			if entries[i], err = decodeVQEntry(r, catalog); err != nil {
				return nil, err
			}
		}
		nt, err := decodeCount(r)
		if err != nil {
			return nil, err
		}
		tuples := make([]*relation.Tuple, nt)
		for i := range tuples {
			if tuples[i], err = wire.DecodeTuple(r); err != nil {
				return nil, err
			}
		}
		return hotHandoffMsg{Input: input, Shard: shard, Version: version, K: k, Entries: entries, Tuples: tuples}, nil
	case tagSnapMeta:
		return decodeSnapMeta(r, catalog)
	default:
		return nil, fmt.Errorf("engine: unknown message tag %d", tag)
	}
}

// decodeHotHeader reads the Shard/Version/K triple shared by the hot-key
// frames.
func decodeHotHeader(r *wire.Reader) (shard, version, k int, err error) {
	s, err := r.Uvarint()
	if err != nil {
		return 0, 0, 0, err
	}
	v, err := r.Uvarint()
	if err != nil {
		return 0, 0, 0, err
	}
	kk, err := r.Uvarint()
	if err != nil {
		return 0, 0, 0, err
	}
	return int(s), int(v), int(kk), nil
}

func decodeRewrittens(r *wire.Reader, catalog *relation.Catalog) ([]*rewritten, error) {
	count, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	n, err := sliceCount(r, count)
	if err != nil {
		return nil, err
	}
	out := make([]*rewritten, n)
	for i := range out {
		if out[i], err = decodeRewritten(r, catalog); err != nil {
			return nil, err
		}
	}
	return out, nil
}

//wire:field dec rewritten Key Orig IndexSide Trigger WantRel WantAttr WantValue
func decodeRewritten(r *wire.Reader, catalog *relation.Catalog) (*rewritten, error) {
	key, err := r.String()
	if err != nil {
		return nil, err
	}
	q, err := wire.DecodeQuery(r, catalog)
	if err != nil {
		return nil, err
	}
	side, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	trig, err := wire.DecodeTuple(r)
	if err != nil {
		return nil, err
	}
	wantRel, err := r.String()
	if err != nil {
		return nil, err
	}
	wantAttr, err := r.String()
	if err != nil {
		return nil, err
	}
	wantVal, err := r.Value()
	if err != nil {
		return nil, err
	}
	return &rewritten{
		Key: key, Orig: q, IndexSide: query.Side(side), Trigger: trig,
		WantRel: wantRel, WantAttr: wantAttr, WantValue: wantVal,
	}, nil
}

//wire:field dec Notification QueryKey Subscriber subscriberIP Values LeftPubT RightPubT DeliveredAt
func decodeNotification(r *wire.Reader) (Notification, error) {
	var n Notification
	var err error
	if n.QueryKey, err = r.String(); err != nil {
		return n, err
	}
	if n.Subscriber, err = r.String(); err != nil {
		return n, err
	}
	if n.subscriberIP, err = r.String(); err != nil {
		return n, err
	}
	rawCount, err := r.Uvarint()
	if err != nil {
		return n, err
	}
	count, err := sliceCount(r, rawCount)
	if err != nil {
		return n, err
	}
	n.Values = make([]relation.Value, count)
	for i := range n.Values {
		if n.Values[i], err = r.Value(); err != nil {
			return n, err
		}
	}
	if n.LeftPubT, err = r.Varint(); err != nil {
		return n, err
	}
	if n.RightPubT, err = r.Varint(); err != nil {
		return n, err
	}
	if n.DeliveredAt, err = r.Varint(); err != nil {
		return n, err
	}
	return n, nil
}

//wire:field dec MultiQuery Key Subscriber SubscriberIP InsT Text Rels
func decodeMultiQuery(r *wire.Reader, catalog *relation.Catalog) (*query.MultiQuery, error) {
	key, err := r.String()
	if err != nil {
		return nil, err
	}
	sub, err := r.String()
	if err != nil {
		return nil, err
	}
	ip, err := r.String()
	if err != nil {
		return nil, err
	}
	insT, err := r.Varint()
	if err != nil {
		return nil, err
	}
	text, err := r.String()
	if err != nil {
		return nil, err
	}
	first, err := r.String()
	if err != nil {
		return nil, err
	}
	mq, err := query.ParseMulti(catalog, text)
	if err != nil {
		return nil, fmt.Errorf("engine: re-parse multi query: %w", err)
	}
	if mq.Rels()[0].Name() != first {
		mq = mq.Reverse()
		if mq.Rels()[0].Name() != first {
			return nil, fmt.Errorf("engine: orientation marker %q matches neither chain endpoint", first)
		}
	}
	return mq.WithInsT(insT).WithRestoredIdentity(key, sub, ip), nil
}

//wire:field dec mRewritten Key Orig Stage Acc WantRel WantAttr WantValue
func decodeMRewritten(r *wire.Reader, catalog *relation.Catalog) (*mRewritten, error) {
	key, err := r.String()
	if err != nil {
		return nil, err
	}
	mq, err := decodeMultiQuery(r, catalog)
	if err != nil {
		return nil, err
	}
	stage, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	rawCount, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	count, err := sliceCount(r, rawCount)
	if err != nil {
		return nil, err
	}
	acc := make([]*relation.Tuple, count)
	for i := range acc {
		if acc[i], err = wire.DecodeTuple(r); err != nil {
			return nil, err
		}
	}
	wantRel, err := r.String()
	if err != nil {
		return nil, err
	}
	wantAttr, err := r.String()
	if err != nil {
		return nil, err
	}
	wantVal, err := r.Value()
	if err != nil {
		return nil, err
	}
	return &mRewritten{
		Key: key, Orig: mq, Stage: int(stage), Acc: acc,
		WantRel: wantRel, WantAttr: wantAttr, WantValue: wantVal,
	}, nil
}

// decodeCount reads a uvarint element count and validates it with
// sliceCount.
func decodeCount(r *wire.Reader) (int, error) {
	raw, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	return sliceCount(r, raw)
}

//wire:field dec targetsEntry Key Targets
func decodeTargetsEntry(r *wire.Reader) (targetsEntry, error) {
	var e targetsEntry
	var err error
	if e.Key, err = r.String(); err != nil {
		return e, err
	}
	n, err := decodeCount(r)
	if err != nil {
		return e, err
	}
	e.Targets = make([]string, n)
	for i := range e.Targets {
		if e.Targets[i], err = r.String(); err != nil {
			return e, err
		}
	}
	return e, nil
}

func decodeTargetsEntries(r *wire.Reader) ([]targetsEntry, error) {
	n, err := decodeCount(r)
	if err != nil {
		return nil, err
	}
	out := make([]targetsEntry, n)
	for i := range out {
		if out[i], err = decodeTargetsEntry(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

//wire:field dec alGroupSection Cond Side Queries
func decodeALGroupSection(r *wire.Reader, catalog *relation.Catalog) (alGroupSection, error) {
	var g alGroupSection
	var err error
	if g.Cond, err = r.String(); err != nil {
		return g, err
	}
	side, err := r.Uvarint()
	if err != nil {
		return g, err
	}
	g.Side = query.Side(side)
	nq, err := decodeCount(r)
	if err != nil {
		return g, err
	}
	g.Queries = make([]*query.Query, nq)
	for j := range g.Queries {
		if g.Queries[j], err = wire.DecodeQuery(r, catalog); err != nil {
			return g, err
		}
	}
	return g, nil
}

//wire:field dec alMultiSection Cond Queries
func decodeALMultiSection(r *wire.Reader, catalog *relation.Catalog) (alMultiSection, error) {
	var g alMultiSection
	var err error
	if g.Cond, err = r.String(); err != nil {
		return g, err
	}
	nq, err := decodeCount(r)
	if err != nil {
		return g, err
	}
	g.Queries = make([]*query.MultiQuery, nq)
	for j := range g.Queries {
		if g.Queries[j], err = decodeMultiQuery(r, catalog); err != nil {
			return g, err
		}
	}
	return g, nil
}

//wire:field dec alSection Input Groups Multi SentRewrites SentTargets
func decodeALSection(r *wire.Reader, catalog *relation.Catalog) (alSection, error) {
	var sec alSection
	var err error
	if sec.Input, err = r.String(); err != nil {
		return sec, err
	}
	ng, err := decodeCount(r)
	if err != nil {
		return sec, err
	}
	sec.Groups = make([]alGroupSection, ng)
	for i := range sec.Groups {
		if sec.Groups[i], err = decodeALGroupSection(r, catalog); err != nil {
			return sec, err
		}
	}
	nm, err := decodeCount(r)
	if err != nil {
		return sec, err
	}
	sec.Multi = make([]alMultiSection, nm)
	for i := range sec.Multi {
		if sec.Multi[i], err = decodeALMultiSection(r, catalog); err != nil {
			return sec, err
		}
	}
	nr, err := decodeCount(r)
	if err != nil {
		return sec, err
	}
	sec.SentRewrites = make([]string, nr)
	for i := range sec.SentRewrites {
		if sec.SentRewrites[i], err = r.String(); err != nil {
			return sec, err
		}
	}
	if sec.SentTargets, err = decodeTargetsEntries(r); err != nil {
		return sec, err
	}
	return sec, nil
}

//wire:field dec vqEntry Rw Times
func decodeVQEntry(r *wire.Reader, catalog *relation.Catalog) (vqEntry, error) {
	var e vqEntry
	var err error
	if e.Rw, err = decodeRewritten(r, catalog); err != nil {
		return e, err
	}
	nt, err := decodeCount(r)
	if err != nil {
		return e, err
	}
	e.Times = make([]int64, nt)
	for j := range e.Times {
		if e.Times[j], err = r.Varint(); err != nil {
			return e, err
		}
	}
	return e, nil
}

//wire:field dec vqSection Input Entries
func decodeVQSection(r *wire.Reader, catalog *relation.Catalog) (vqSection, error) {
	var sec vqSection
	var err error
	if sec.Input, err = r.String(); err != nil {
		return sec, err
	}
	n, err := decodeCount(r)
	if err != nil {
		return sec, err
	}
	sec.Entries = make([]vqEntry, n)
	for i := range sec.Entries {
		if sec.Entries[i], err = decodeVQEntry(r, catalog); err != nil {
			return sec, err
		}
	}
	return sec, nil
}

//wire:field dec mqSection Input Rewrites SentTargets
func decodeMQSection(r *wire.Reader, catalog *relation.Catalog) (mqSection, error) {
	var sec mqSection
	var err error
	if sec.Input, err = r.String(); err != nil {
		return sec, err
	}
	n, err := decodeCount(r)
	if err != nil {
		return sec, err
	}
	sec.Rewrites = make([]*mRewritten, n)
	for i := range sec.Rewrites {
		if sec.Rewrites[i], err = decodeMRewritten(r, catalog); err != nil {
			return sec, err
		}
	}
	if sec.SentTargets, err = decodeTargetsEntries(r); err != nil {
		return sec, err
	}
	return sec, nil
}

//wire:field dec vtSection Input Tuples
func decodeVTSection(r *wire.Reader) (vtSection, error) {
	var sec vtSection
	var err error
	if sec.Input, err = r.String(); err != nil {
		return sec, err
	}
	n, err := decodeCount(r)
	if err != nil {
		return sec, err
	}
	sec.Tuples = make([]*relation.Tuple, n)
	for i := range sec.Tuples {
		if sec.Tuples[i], err = wire.DecodeTuple(r); err != nil {
			return sec, err
		}
	}
	return sec, nil
}

//wire:field dec dvEntry Cond Left Right
func decodeDVEntry(r *wire.Reader) (dvEntry, error) {
	var e dvEntry
	var err error
	if e.Cond, err = r.String(); err != nil {
		return e, err
	}
	nl, err := decodeCount(r)
	if err != nil {
		return e, err
	}
	e.Left = make([]*relation.Tuple, nl)
	for j := range e.Left {
		if e.Left[j], err = wire.DecodeTuple(r); err != nil {
			return e, err
		}
	}
	nr, err := decodeCount(r)
	if err != nil {
		return e, err
	}
	e.Right = make([]*relation.Tuple, nr)
	for j := range e.Right {
		if e.Right[j], err = wire.DecodeTuple(r); err != nil {
			return e, err
		}
	}
	return e, nil
}

//wire:field dec dvSection Input Entries
func decodeDVSection(r *wire.Reader) (dvSection, error) {
	var sec dvSection
	var err error
	if sec.Input, err = r.String(); err != nil {
		return sec, err
	}
	n, err := decodeCount(r)
	if err != nil {
		return sec, err
	}
	sec.Entries = make([]dvEntry, n)
	for i := range sec.Entries {
		if sec.Entries[i], err = decodeDVEntry(r); err != nil {
			return sec, err
		}
	}
	return sec, nil
}

//wire:field dec notifSection Subscriber Batch
func decodeNotifSection(r *wire.Reader) (notifSection, error) {
	var sec notifSection
	var err error
	if sec.Subscriber, err = r.String(); err != nil {
		return sec, err
	}
	n, err := decodeCount(r)
	if err != nil {
		return sec, err
	}
	sec.Batch = make([]Notification, n)
	for i := range sec.Batch {
		if sec.Batch[i], err = decodeNotification(r); err != nil {
			return sec, err
		}
	}
	return sec, nil
}

//wire:field dec handoffMsg AL VQ MQ VT DV Notifs
func decodeHandoff(r *wire.Reader, catalog *relation.Catalog) (chord.Message, error) {
	var m handoffMsg
	nAL, err := decodeCount(r)
	if err != nil {
		return nil, err
	}
	m.AL = make([]alSection, nAL)
	for i := range m.AL {
		if m.AL[i], err = decodeALSection(r, catalog); err != nil {
			return nil, err
		}
	}
	nVQ, err := decodeCount(r)
	if err != nil {
		return nil, err
	}
	m.VQ = make([]vqSection, nVQ)
	for i := range m.VQ {
		if m.VQ[i], err = decodeVQSection(r, catalog); err != nil {
			return nil, err
		}
	}
	nMQ, err := decodeCount(r)
	if err != nil {
		return nil, err
	}
	m.MQ = make([]mqSection, nMQ)
	for i := range m.MQ {
		if m.MQ[i], err = decodeMQSection(r, catalog); err != nil {
			return nil, err
		}
	}
	nVT, err := decodeCount(r)
	if err != nil {
		return nil, err
	}
	m.VT = make([]vtSection, nVT)
	for i := range m.VT {
		if m.VT[i], err = decodeVTSection(r); err != nil {
			return nil, err
		}
	}
	nDV, err := decodeCount(r)
	if err != nil {
		return nil, err
	}
	m.DV = make([]dvSection, nDV)
	for i := range m.DV {
		if m.DV[i], err = decodeDVSection(r); err != nil {
			return nil, err
		}
	}
	nN, err := decodeCount(r)
	if err != nil {
		return nil, err
	}
	m.Notifs = make([]notifSection, nN)
	for i := range m.Notifs {
		if m.Notifs[i], err = decodeNotifSection(r); err != nil {
			return nil, err
		}
	}
	return m, nil
}

//wire:field dec snapMetaMsg Clock Nodes Down Seq Subs Multi Conds Sink HotEpochs HotCounts
func decodeSnapMeta(r *wire.Reader, catalog *relation.Catalog) (chord.Message, error) {
	var m snapMetaMsg
	clock, err := r.Varint()
	if err != nil {
		return nil, err
	}
	m.Clock = clock
	if m.Nodes, err = decodeStrings(r); err != nil {
		return nil, err
	}
	if m.Down, err = decodeStrings(r); err != nil {
		return nil, err
	}
	nSeq, err := decodeCount(r)
	if err != nil {
		return nil, err
	}
	m.Seq = make([]seqEntry, nSeq)
	for i := range m.Seq {
		if m.Seq[i], err = decodeSeqEntry(r); err != nil {
			return nil, err
		}
	}
	nSubs, err := decodeCount(r)
	if err != nil {
		return nil, err
	}
	m.Subs = make([]subsEntry, nSubs)
	for i := range m.Subs {
		if m.Subs[i], err = decodeSubsEntry(r); err != nil {
			return nil, err
		}
	}
	multi, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	m.Multi = multi != 0
	nConds, err := decodeCount(r)
	if err != nil {
		return nil, err
	}
	m.Conds = make([]*query.Query, nConds)
	for i := range m.Conds {
		if m.Conds[i], err = wire.DecodeQuery(r, catalog); err != nil {
			return nil, err
		}
	}
	nSink, err := decodeCount(r)
	if err != nil {
		return nil, err
	}
	m.Sink = make([]Notification, nSink)
	for i := range m.Sink {
		if m.Sink[i], err = decodeNotification(r); err != nil {
			return nil, err
		}
	}
	nEp, err := decodeCount(r)
	if err != nil {
		return nil, err
	}
	m.HotEpochs = make([]hotEpochEntry, nEp)
	for i := range m.HotEpochs {
		if m.HotEpochs[i], err = decodeHotEpochEntry(r); err != nil {
			return nil, err
		}
	}
	nCt, err := decodeCount(r)
	if err != nil {
		return nil, err
	}
	m.HotCounts = make([]hotCountEntry, nCt)
	for i := range m.HotCounts {
		if m.HotCounts[i], err = decodeHotCountEntry(r); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// decodeStrings reads a uvarint-counted list of strings.
func decodeStrings(r *wire.Reader) ([]string, error) {
	n, err := decodeCount(r)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]string, n)
	for i := range out {
		if out[i], err = r.String(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

//wire:field dec seqEntry Key Seq
func decodeSeqEntry(r *wire.Reader) (seqEntry, error) {
	var s seqEntry
	var err error
	if s.Key, err = r.String(); err != nil {
		return s, err
	}
	if s.Seq, err = r.Varint(); err != nil {
		return s, err
	}
	return s, nil
}

//wire:field dec subsEntry Key Inputs
func decodeSubsEntry(r *wire.Reader) (subsEntry, error) {
	var s subsEntry
	var err error
	if s.Key, err = r.String(); err != nil {
		return s, err
	}
	if s.Inputs, err = decodeStrings(r); err != nil {
		return s, err
	}
	return s, nil
}

//wire:field dec hotEpochEntry Input Version K
func decodeHotEpochEntry(r *wire.Reader) (hotEpochEntry, error) {
	var e hotEpochEntry
	var err error
	if e.Input, err = r.String(); err != nil {
		return e, err
	}
	v, err := r.Uvarint()
	if err != nil {
		return e, err
	}
	k, err := r.Uvarint()
	if err != nil {
		return e, err
	}
	e.Version, e.K = int(v), int(k)
	return e, nil
}

//wire:field dec hotCountEntry Input Count WindowStart
func decodeHotCountEntry(r *wire.Reader) (hotCountEntry, error) {
	var c hotCountEntry
	var err error
	if c.Input, err = r.String(); err != nil {
		return c, err
	}
	if c.Count, err = r.Varint(); err != nil {
		return c, err
	}
	if c.WindowStart, err = r.Varint(); err != nil {
		return c, err
	}
	return c, nil
}

// encodedLen is the single source of truth for message sizes: the exact
// length of the message's wire encoding.
func encodedLen(msg chord.Message) int {
	var w wire.Buffer
	if err := EncodeMessage(&w, msg); err != nil {
		return 0
	}
	return w.Len()
}
