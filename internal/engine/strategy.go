package engine

import (
	"cqjoin/internal/chord"
	"cqjoin/internal/id"
	"cqjoin/internal/query"
)

// Strategy selects the index attribute of a SAI query (Section 4.3.6). The
// choice fixes which join attribute's rewriter stores the query, trading
// network traffic (fewer triggers when the index relation's tuples arrive
// rarely) against evaluator load distribution.
type Strategy int

const (
	// StrategyRandom picks one of the two join attributes uniformly — the
	// default assumption of Section 4.3.1.
	StrategyRandom Strategy = iota
	// StrategyMinRate indexes the query under the attribute whose relation
	// shows the lower rate of incoming tuples, minimizing how often the
	// query is triggered, rewritten and reindexed. This is the strategy the
	// paper uses in its experiments.
	StrategyMinRate
	// StrategyMinDomain indexes under the attribute with the smaller
	// observed value domain, avoiding evaluators for values that can never
	// produce notifications.
	StrategyMinDomain
	// StrategyLeft always picks the left join attribute; deterministic,
	// for tests and as a worst/best-case foil in the strategy experiments.
	StrategyLeft
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyRandom:
		return "random"
	case StrategyMinRate:
		return "min-rate"
	case StrategyMinDomain:
		return "min-domain"
	case StrategyLeft:
		return "left"
	default:
		return "unknown"
	}
}

// chooseIndexSide applies the configured strategy for a SAI query posed at
// node from. The rate and domain strategies probe the two candidate
// rewriters first ("any node can simply ask the two possible rewriter
// nodes before indexing a query", Section 4.3.6); each probe costs one
// routed message charged to the strategy-probe kind.
func (e *Engine) chooseIndexSide(from *chord.Node, q *query.Query) (query.Side, error) {
	switch e.cfg.Strategy {
	case StrategyLeft:
		return query.SideLeft, nil
	case StrategyRandom:
		return query.Side(e.randIntn(2)), nil
	}

	leftStats, err := e.probeRewriter(from, q, query.SideLeft)
	if err != nil {
		return 0, err
	}
	rightStats, err := e.probeRewriter(from, q, query.SideRight)
	if err != nil {
		return 0, err
	}

	switch e.cfg.Strategy {
	case StrategyMinRate:
		// Index at the relation with the LOWER tuple arrival rate so fewer
		// insertions trigger, rewrite and reindex the query.
		if leftStats.rate <= rightStats.rate {
			return query.SideLeft, nil
		}
		return query.SideRight, nil
	case StrategyMinDomain:
		if leftStats.domain <= rightStats.domain {
			return query.SideLeft, nil
		}
		return query.SideRight, nil
	default:
		return query.Side(e.randIntn(2)), nil
	}
}

// rewriterStats is a probe answer: tuple arrivals within the observation
// window and distinct attribute values seen.
type rewriterStats struct {
	rate   int64
	domain int
}

// probeRewriter routes a probe to the (first replica of the) rewriter
// responsible for one side's index attribute and reads its statistics.
func (e *Engine) probeRewriter(from *chord.Node, q *query.Query, side query.Side) (rewriterStats, error) {
	attr, err := q.SingleAttr(side)
	if err != nil {
		return rewriterStats{}, err
	}
	input := alInput(q.Rel(side).Name(), attr, 0)
	dst, _, err := from.Send(probeMsg{AttrInput: input}, id.Hash(input))
	if err != nil {
		return rewriterStats{}, err
	}
	st := e.state(dst)
	st.mu.Lock()
	defer st.mu.Unlock()
	b, ok := st.alqt[input]
	if !ok {
		return rewriterStats{}, nil
	}
	var cutoff int64
	if e.cfg.Window > 0 {
		cutoff = e.net.Clock().Now() - e.cfg.Window
	}
	var rate int64
	for _, ts := range b.arrivals {
		if ts >= cutoff {
			rate++
		}
	}
	return rewriterStats{rate: rate, domain: len(b.distinct)}, nil
}
