package engine

import (
	"fmt"
	"strconv"

	"cqjoin/internal/chord"
	"cqjoin/internal/id"
	"cqjoin/internal/metrics"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
)

// This file implements the multi-way extension (the future work of
// Chapter 7): continuous chain equi-joins over k relations, evaluated by
// the pipeline generalization of SAI. The query is indexed at the
// attribute level under one endpoint of its join chain. Every matching
// tuple consumes one relation and reindexes the remainder — a partial
// match carrying the tuples gathered so far — at the value level of the
// next relation in the chain, where it meets that relation's stored and
// future tuples, until the chain is exhausted and a notification fires.
//
// The single-attribute indexing of SAI extends unchanged: exactly one
// rewriter per query, each (partial match, tuple) pair meets exactly once
// (either the partial match scans the tuple in the VLTT on arrival, or the
// tuple triggers the stored partial match later), so no duplicates arise.
// Multi-way evaluation requires the engine to store tuples at the value
// level, i.e. the SAI or DAI-Q storage regime.

// mQueryMsg indexes a multi-way query at its rewriter.
type mQueryMsg struct {
	MQ      *query.MultiQuery
	Attr    string
	Replica int
}

func (mQueryMsg) Kind() string { return kindQuery }

// mRewritten is a partial match travelling down the pipeline: the original
// query, the tuples matched so far (projected on the needed attributes,
// aligned with the chain's first Stage relations), and the value-level
// identifier components where the next relation's tuples will meet it.
type mRewritten struct {
	Key       string
	Orig      *query.MultiQuery
	Stage     int // number of relations matched; waiting for Rels()[Stage]
	Acc       []*relation.Tuple
	WantRel   string
	WantAttr  string
	WantValue relation.Value
}

// mJoinMsg reindexes partial matches that share one evaluator.
type mJoinMsg struct {
	Rewrites []*mRewritten
}

func (mJoinMsg) Kind() string { return "mjoin" }

// SubscribeMulti indexes a continuous multi-way chain join on behalf of
// node from. The engine must run an algorithm that stores tuples at the
// value level (SAI or DAI-Q).
func (e *Engine) SubscribeMulti(from *chord.Node, mq *query.MultiQuery) (*query.MultiQuery, error) {
	if !from.Alive() {
		return nil, fmt.Errorf("engine: subscribe from departed node %s", from)
	}
	if e.cfg.Algorithm != SAI && e.cfg.Algorithm != DAIQ {
		return nil, fmt.Errorf("engine: multi-way joins need value-level tuple storage; run SAI or DAI-Q, not %s", e.cfg.Algorithm)
	}
	for _, s := range mq.Rels() {
		if e.catalog.Lookup(s.Name()) == nil {
			return nil, fmt.Errorf("engine: relation %s not in catalog", s.Name())
		}
	}
	e.mu.Lock()
	e.seq[from.Key()]++
	seq := e.seq[from.Key()]
	// Multi-way pipelines chain stateful partial matches across stages; the
	// batch pipeline's two-way conflict analysis does not model them, so
	// PublishBatch falls back to sequential publishes from here on.
	e.hasMulti = true
	e.mu.Unlock()
	// Partial matches route through value-level identifiers without shard
	// awareness, so hot-key sharding is suspended from here on (hotState).
	e.multiOn.Store(true)

	keyed := mq.WithIdentity(from.Key(), from.IP(), seq).WithInsT(e.net.Clock().Tick())
	oriented, err := e.chooseOrientation(from, keyed)
	if err != nil {
		return nil, err
	}
	attr, err := oriented.IndexAttr()
	if err != nil {
		return nil, err
	}
	rel := oriented.Rels()[0].Name()
	var batch []chord.Deliverable
	var inputs []string
	for r := 0; r < e.cfg.ReplicationFactor; r++ {
		input := alInput(rel, attr, r)
		inputs = append(inputs, input)
		batch = append(batch, chord.Deliverable{
			Target: id.Hash(input),
			Msg:    mQueryMsg{MQ: oriented, Attr: attr, Replica: r},
		})
	}
	// The subscriber remembers where its chain is indexed so it can retract
	// it later (UnsubscribeMulti).
	e.mu.Lock()
	e.subs[oriented.Key()] = inputs
	e.mu.Unlock()
	if err := e.dispatch(from, batch); err != nil {
		return nil, err
	}
	return oriented, nil
}

// chooseOrientation picks which chain endpoint indexes the query,
// following the SAI strategy (Section 4.3.6 generalized): min-rate probes
// both endpoint rewriters and indexes at the quieter one.
func (e *Engine) chooseOrientation(from *chord.Node, mq *query.MultiQuery) (*query.MultiQuery, error) {
	rev := mq.Reverse()
	switch e.cfg.Strategy {
	case StrategyLeft:
		return mq, nil
	case StrategyMinRate, StrategyMinDomain:
		fwd, err := e.probeMultiEndpoint(from, mq)
		if err != nil {
			return nil, err
		}
		bwd, err := e.probeMultiEndpoint(from, rev)
		if err != nil {
			return nil, err
		}
		if e.cfg.Strategy == StrategyMinRate {
			if fwd.rate <= bwd.rate {
				return mq, nil
			}
			return rev, nil
		}
		if fwd.domain <= bwd.domain {
			return mq, nil
		}
		return rev, nil
	default: // StrategyRandom
		if e.randIntn(2) == 0 {
			return mq, nil
		}
		return rev, nil
	}
}

func (e *Engine) probeMultiEndpoint(from *chord.Node, mq *query.MultiQuery) (rewriterStats, error) {
	attr, err := mq.IndexAttr()
	if err != nil {
		return rewriterStats{}, err
	}
	input := alInput(mq.Rels()[0].Name(), attr, 0)
	dst, _, err := from.Send(probeMsg{AttrInput: input}, id.Hash(input))
	if err != nil {
		return rewriterStats{}, err
	}
	return e.state(dst).readStats(input), nil
}

// readStats reads one ALQT bucket's arrival statistics.
func (st *nodeState) readStats(input string) rewriterStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	b, ok := st.alqt[input]
	if !ok {
		return rewriterStats{}
	}
	var cutoff int64
	if w := st.engine.cfg.Window; w > 0 {
		cutoff = st.engine.net.Clock().Now() - w
	}
	var rate int64
	for _, ts := range b.arrivals {
		if ts >= cutoff {
			rate++
		}
	}
	return rewriterStats{rate: rate, domain: len(b.distinct)}
}

// handleMQueryIndex stores a multi-way query at its rewriter, grouped by
// chain condition.
func (st *nodeState) handleMQueryIndex(m mQueryMsg) {
	input := alInput(m.MQ.Rels()[0].Name(), m.Attr, m.Replica)
	cond := m.MQ.ConditionKey()
	st.mu.Lock()
	b := st.alqt[input]
	if b == nil {
		b = newALBucket(input)
		st.alqt[input] = b
	}
	g := b.multi[cond]
	if g == nil {
		g = &mGroup{cond: cond}
		b.multi[cond] = g
	}
	g.queries = append(g.queries, m.MQ)
	st.mu.Unlock()
	st.load.AddFiltering(metrics.Rewriter, 1)
	st.load.AddStorage(metrics.Rewriter, 1)
}

// mGroup is an ALQT group of multi-way queries with one chain condition.
type mGroup struct {
	cond    string
	queries []*query.MultiQuery
}

// triggerMulti runs the multi-way groups of an ALQT bucket against an
// incoming tuple, returning the stage-1 partial matches bound for their
// evaluators. The caller holds st.mu and charges the returned filtering
// work.
func (st *nodeState) triggerMulti(b *alBucket, t *relation.Tuple) (outs []outbound, examined int) {
	for _, g := range b.multi {
		var rws []*mRewritten
		var target string
		for _, mq := range g.queries {
			examined++
			if t.PubT() < mq.InsT() {
				continue
			}
			if ok, err := mq.FiltersPass(t); err != nil || !ok {
				continue
			}
			rw, err := advanceMulti(mq, nil, t)
			if err != nil || rw == nil {
				continue
			}
			rws = append(rws, rw)
			target = vlInput(rw.WantRel, rw.WantAttr, rw.WantValue)
			// Remember the fan-out so retraction can purge the stage-1
			// partial matches (the same list two-way rewrites use).
			ts := b.sentTargets[mq.Key()]
			if ts == nil {
				ts = make(map[string]struct{})
				b.sentTargets[mq.Key()] = ts
			}
			ts[target] = struct{}{}
		}
		if len(rws) > 0 {
			outs = append(outs, outbound{input: target, msg: mJoinMsg{Rewrites: rws}})
		}
	}
	return outs, examined
}

// advanceMulti extends a partial match (nil prev means the trigger stage)
// with tuple t and returns the next-stage partial match, or nil when the
// chain is complete (the caller builds the notification instead through
// completeMulti).
func advanceMulti(mq *query.MultiQuery, prev *mRewritten, t *relation.Tuple) (*mRewritten, error) {
	stage := 1
	var acc []*relation.Tuple
	key := mq.Key()
	if prev != nil {
		stage = prev.Stage + 1
		acc = append(acc, prev.Acc...)
		key = prev.Key
	}
	proj, err := t.Project(mq.NeededAttrs(t.Relation()))
	if err != nil {
		return nil, err
	}
	acc = append(acc, proj)
	key += "+" + strconv.FormatInt(t.PubT(), 10)
	if stage >= mq.Arity() {
		return nil, fmt.Errorf("engine: multi-way chain overran its arity")
	}
	wantRel, wantAttr, wantVal, err := mq.StageWant(stage, t)
	if err != nil {
		return nil, err
	}
	return &mRewritten{
		Key:       key,
		Orig:      mq,
		Stage:     stage,
		Acc:       acc,
		WantRel:   wantRel,
		WantAttr:  wantAttr,
		WantValue: wantVal,
	}, nil
}

// matchMulti checks a stored or incoming partial match against a tuple of
// the awaited relation and returns either the completed notification or
// the next-stage outbound.
func matchMulti(rw *mRewritten, t *relation.Tuple) (n Notification, out *outbound, ok bool) {
	mq := rw.Orig
	if t.PubT() < mq.InsT() {
		return Notification{}, nil, false
	}
	if pass, err := mq.FiltersPass(t); err != nil || !pass {
		return Notification{}, nil, false
	}
	if rw.Stage == mq.Arity()-1 {
		// Chain complete: build the notification.
		proj, err := t.Project(mq.NeededAttrs(t.Relation()))
		if err != nil {
			return Notification{}, nil, false
		}
		combo := append(append([]*relation.Tuple(nil), rw.Acc...), proj)
		vals, err := mq.ProjectNotification(combo)
		if err != nil {
			return Notification{}, nil, false
		}
		return Notification{
			QueryKey:     mq.Key(),
			Subscriber:   mq.Subscriber(),
			Values:       vals,
			LeftPubT:     combo[0].PubT(),
			RightPubT:    proj.PubT(),
			subscriberIP: mq.SubscriberIP(),
		}, nil, true
	}
	next, err := advanceMulti(mq, rw, t)
	if err != nil {
		return Notification{}, nil, false
	}
	return Notification{}, &outbound{
		input: vlInput(next.WantRel, next.WantAttr, next.WantValue),
		msg:   mJoinMsg{Rewrites: []*mRewritten{next}},
	}, true
}

// handleMJoin processes partial matches arriving at a value-level node:
// each is matched against the stored tuples of the awaited relation (any
// completions or advancements are forwarded), then stored to meet that
// relation's future tuples.
func (st *nodeState) handleMJoin(m mJoinMsg) {
	var notifs []Notification
	var outs []outbound
	work := 1
	stored := 0

	st.mu.Lock()
	for _, rw := range m.Rewrites {
		input := vlInput(rw.WantRel, rw.WantAttr, rw.WantValue)
		mb := st.mvlqt[input]
		if mb == nil {
			mb = &mvlqtBucket{input: input}
			st.mvlqt[input] = mb
		}
		if tb := st.vltt[input]; tb != nil {
			for _, tt := range tb.tuples {
				work++
				if n, out, ok := matchMulti(rw, tt); ok {
					if out != nil {
						outs = append(outs, *out)
						mb.recordTarget(rw.Orig.Key(), out.input)
					} else {
						notifs = append(notifs, n)
					}
				}
			}
		}
		mb.rewrites = append(mb.rewrites, rw)
		stored++
	}
	st.mu.Unlock()

	st.load.AddFiltering(metrics.Evaluator, work)
	if stored > 0 {
		st.load.AddStorage(metrics.Evaluator, stored)
	}
	st.sendJoins(outs)
	st.sendNotifications(notifs)
}

// mvlqtBucket holds the partial matches awaiting one (relation, attribute,
// value) identifier — the multi-way analogue of the VLQT.
type mvlqtBucket struct {
	input    string
	rewrites []*mRewritten
	// sentTargets records, per original query key, the next-stage
	// value-level identifiers this evaluator forwarded partial matches to —
	// the purge list a retraction cascades down the pipeline.
	sentTargets map[string]map[string]struct{}
}

// recordTarget remembers that a partial match of queryKey was forwarded to
// the evaluator of input. The caller holds st.mu.
func (mb *mvlqtBucket) recordTarget(queryKey, input string) {
	if mb.sentTargets == nil {
		mb.sentTargets = make(map[string]map[string]struct{})
	}
	ts := mb.sentTargets[queryKey]
	if ts == nil {
		ts = make(map[string]struct{})
		mb.sentTargets[queryKey] = ts
	}
	ts[input] = struct{}{}
}

// matchMultiStored runs an incoming value-level tuple against the stored
// partial matches of its identifier. The caller holds st.mu; the returned
// work is charged by the caller.
func (st *nodeState) matchMultiStored(input string, t *relation.Tuple) (notifs []Notification, outs []outbound, work int) {
	mb := st.mvlqt[input]
	if mb == nil {
		return nil, nil, 0
	}
	for _, rw := range mb.rewrites {
		work++
		if n, out, ok := matchMulti(rw, t); ok {
			if out != nil {
				outs = append(outs, *out)
				mb.recordTarget(rw.Orig.Key(), out.input)
			} else {
				notifs = append(notifs, n)
			}
		}
	}
	return notifs, outs, work
}

// evictMultiBefore drops stored partial matches whose newest embedded
// tuple fell out of the window. The caller holds st.mu and adjusts the
// storage metric with the returned count.
func (st *nodeState) evictMultiBefore(cutoff int64) int {
	evicted := 0
	for _, mb := range st.mvlqt {
		kept := mb.rewrites[:0]
		for _, rw := range mb.rewrites {
			newest := int64(0)
			for _, t := range rw.Acc {
				if t.PubT() > newest {
					newest = t.PubT()
				}
			}
			if newest >= cutoff {
				kept = append(kept, rw)
			} else {
				evicted++
			}
		}
		mb.rewrites = kept
	}
	return evicted
}
