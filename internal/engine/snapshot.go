package engine

import (
	"fmt"

	"cqjoin/internal/chord"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
)

// Engine-wide snapshot for the durability layer (internal/durable,
// DESIGN.md §14). A snapshot is the non-destructive counterpart of the
// per-node hand-off export: every node's movable tables in handoffMsg wire
// form, plus one snapMetaMsg carrying the engine-global state a replayed
// log needs to continue deterministically — the logical clock, the
// per-subscriber query sequence counters (so replayed subscribes re-derive
// the same Key(q)), the subscription index, the registered conflict
// conditions, the delivered-notification sink, and the hot-key epoch
// registry. Deliberately NOT carried, matching the hand-off exclusions:
// the JFRT and subscriber-IP caches (best-effort, refill), probe
// statistics, the pair-baseline store, and the engine's private rng state
// (it only picks index attributes and replicas, which never changes match
// content — see DESIGN.md §14.3).

// kindSnapMeta names the snapshot-meta message class.
const kindSnapMeta = "snapmeta"

// seqEntry is one per-subscriber query sequence counter.
type seqEntry struct {
	Key string
	Seq int64
}

// subsEntry maps one query key to its attribute-level index inputs (the
// unsubscribe fan-out list).
type subsEntry struct {
	Key    string
	Inputs []string
}

// hotEpochEntry is one hot-key registry entry: the promoted (or demoted,
// K==0) epoch of a value-level input.
type hotEpochEntry struct {
	Input   string
	Version int
	K       int
}

// hotCountEntry is one hot-key detector counter: arrivals within the
// currently open window of an input.
type hotCountEntry struct {
	Input       string
	Count       int64
	WindowStart int64
}

// snapMetaMsg is the engine-global section of a snapshot. It reuses the
// engine message codec (tag tagSnapMeta) so the wiretag/wiresync analyzers
// gate its encoding like every other frame.
type snapMetaMsg struct {
	Clock     int64
	Nodes     []string // alive node keys, ring order
	Down      []string // caller-declared crashed keys awaiting rejoin
	Seq       []seqEntry
	Subs      []subsEntry
	Multi     bool
	Conds     []*query.Query
	Sink      []Notification
	HotEpochs []hotEpochEntry
	HotCounts []hotCountEntry
}

func (snapMetaMsg) Kind() string { return kindSnapMeta }

// NodeSnapshot is one node's movable state in handoffMsg wire form, keyed
// by the node whose tables it holds.
type NodeSnapshot struct {
	Key string
	Msg chord.Message
}

// ExportSnapshot returns a consistent, non-destructive copy of the whole
// engine: the global meta message and one NodeSnapshot per alive node with
// non-empty movable state. down lists node keys the caller knows to be
// crashed-and-pending-rejoin, recorded so a recovery can rebuild the same
// ring liveness. The caller must ensure no operation is mid-cascade (the
// durable layer gates operations against checkpoints).
func (e *Engine) ExportSnapshot(down []string) (chord.Message, []NodeSnapshot) {
	nodes := e.net.Nodes()
	meta := snapMetaMsg{
		Clock: e.net.Clock().Now(),
		Down:  append([]string(nil), down...),
	}
	for _, n := range nodes {
		meta.Nodes = append(meta.Nodes, n.Key())
	}

	e.mu.Lock()
	for _, k := range sortedKeys(e.seq) {
		meta.Seq = append(meta.Seq, seqEntry{Key: k, Seq: int64(e.seq[k])})
	}
	for _, k := range sortedKeys(e.subs) {
		meta.Subs = append(meta.Subs, subsEntry{Key: k, Inputs: append([]string(nil), e.subs[k]...)})
	}
	meta.Multi = e.hasMulti
	meta.Sink = append([]Notification(nil), e.sink...)
	e.mu.Unlock()

	e.condMu.Lock()
	meta.Conds = append([]*query.Query(nil), e.conds...)
	e.condMu.Unlock()

	if e.hot != nil {
		e.hot.mu.Lock()
		for _, input := range sortedKeys(e.hot.entries) {
			en := e.hot.entries[input]
			meta.HotEpochs = append(meta.HotEpochs, hotEpochEntry{Input: input, Version: en.version, K: en.k})
		}
		for _, input := range sortedKeys(e.hot.counters) {
			c := e.hot.counters[input]
			meta.HotCounts = append(meta.HotCounts, hotCountEntry{Input: input, Count: c.count, WindowStart: c.windowStart})
		}
		e.hot.mu.Unlock()
	}

	var out []NodeSnapshot
	for _, n := range nodes {
		st := e.state(n)
		if m, ok := st.snapshotSections(); ok {
			out = append(out, NodeSnapshot{Key: n.Key(), Msg: m})
		}
	}
	return meta, out
}

// snapshotSections builds a handoffMsg copy of this node's movable state
// without draining it. Mutable slices are copied so later engine activity
// cannot reach into the snapshot; the immutable leaves (tuples, queries,
// rewrites) are shared.
func (st *nodeState) snapshotSections() (handoffMsg, bool) {
	var m handoffMsg
	st.mu.Lock()
	for _, input := range sortedKeys(st.alqt) {
		b := st.alqt[input]
		sec := alSection{
			Input:        b.input,
			SentRewrites: sortedKeys(b.sentRewrites),
			SentTargets:  flattenTargets(b.sentTargets),
		}
		for _, cond := range condsOf(b.byCond, b.condOrder) {
			g := b.byCond[cond]
			sec.Groups = append(sec.Groups, alGroupSection{
				Cond: g.cond, Side: g.side, Queries: append([]*query.Query(nil), g.queries...),
			})
		}
		for _, cond := range sortedKeys(b.multi) {
			g := b.multi[cond]
			sec.Multi = append(sec.Multi, alMultiSection{
				Cond: g.cond, Queries: append([]*query.MultiQuery(nil), g.queries...),
			})
		}
		m.AL = append(m.AL, sec)
	}
	for _, input := range sortedKeys(st.vlqt) {
		b := st.vlqt[input]
		sec := vqSection{Input: b.input}
		for _, sr := range b.sorted {
			sec.Entries = append(sec.Entries, vqEntry{Rw: sr.rw, Times: append([]int64(nil), sr.times...)})
		}
		m.VQ = append(m.VQ, sec)
	}
	for _, input := range sortedKeys(st.mvlqt) {
		b := st.mvlqt[input]
		m.MQ = append(m.MQ, mqSection{
			Input:       b.input,
			Rewrites:    append([]*mRewritten(nil), b.rewrites...),
			SentTargets: flattenTargets(b.sentTargets),
		})
	}
	for _, input := range sortedKeys(st.vltt) {
		b := st.vltt[input]
		m.VT = append(m.VT, vtSection{Input: b.input, Tuples: append([]*relation.Tuple(nil), b.tuples...)})
	}
	for _, input := range sortedKeys(st.vstore) {
		b := st.vstore[input]
		sec := dvSection{Input: b.input}
		for _, cond := range sortedKeys(b.byCond) {
			entry := b.byCond[cond]
			sec.Entries = append(sec.Entries, dvEntry{
				Cond:  entry.cond,
				Left:  append([]*relation.Tuple(nil), entry.tuples[query.SideLeft]...),
				Right: append([]*relation.Tuple(nil), entry.tuples[query.SideRight]...),
			})
		}
		m.DV = append(m.DV, sec)
	}
	for _, sub := range sortedKeys(st.storedNotifs) {
		m.Notifs = append(m.Notifs, notifSection{Subscriber: sub, Batch: append([]Notification(nil), st.storedNotifs[sub]...)})
	}
	st.mu.Unlock()

	empty := len(m.AL) == 0 && len(m.VQ) == 0 && len(m.MQ) == 0 &&
		len(m.VT) == 0 && len(m.DV) == 0 && len(m.Notifs) == 0
	return m, !empty
}

// RestoreSnapshot installs an exported snapshot into a freshly built
// engine (same catalog, config and seed as the exporting run): ring
// liveness is replayed first (missing nodes join, recorded-down nodes
// fail), then the clock catches up, then the global meta and every node's
// tables merge through the idempotent hand-off merges — without replaying
// stored offline notifications, which stay queued exactly as they were.
func (e *Engine) RestoreSnapshot(meta chord.Message, nodes []NodeSnapshot) error {
	m, ok := meta.(snapMetaMsg)
	if !ok {
		return fmt.Errorf("engine: restore: meta is %T, want snapMetaMsg", meta)
	}

	have := make(map[string]*chord.Node)
	for _, n := range e.net.Nodes() {
		have[n.Key()] = n
	}
	want := make(map[string]bool, len(m.Nodes))
	for _, k := range m.Nodes {
		want[k] = true
	}
	for _, k := range m.Nodes {
		if have[k] == nil {
			if _, err := e.RejoinNode(k); err != nil {
				return fmt.Errorf("engine: restore: join %s: %w", k, err)
			}
		}
	}
	// Nodes in the fresh overlay the snapshot does not list as alive were
	// down when it was taken (whether or not the exporter knew a rejoin
	// schedule for them): fail them so ownership matches the snapshot.
	for k, n := range have {
		if !want[k] {
			e.FailNode(n)
		}
	}

	if d := m.Clock - e.net.Clock().Now(); d > 0 {
		e.net.Clock().Advance(d)
	}

	e.mu.Lock()
	for _, s := range m.Seq {
		e.seq[s.Key] = int(s.Seq)
	}
	for _, s := range m.Subs {
		e.subs[s.Key] = append([]string(nil), s.Inputs...)
	}
	e.hasMulti = m.Multi
	e.sink = append(e.sink, m.Sink...)
	for _, n := range m.Sink {
		e.delivered[deliveryKey(n)] = true
	}
	e.mu.Unlock()
	e.multiOn.Store(m.Multi)

	for _, q := range m.Conds {
		e.registerCondition(q)
	}

	if e.hot != nil {
		e.hot.mu.Lock()
		for _, en := range m.HotEpochs {
			e.hot.entries[en.Input] = hotEntry{version: en.Version, k: en.K}
		}
		for _, c := range m.HotCounts {
			e.hot.counters[c.Input] = &hotCounter{count: c.Count, windowStart: c.WindowStart}
		}
		e.hot.mu.Unlock()
	}

	for _, ns := range nodes {
		e.mu.Lock()
		st := e.byKey[ns.Key]
		e.mu.Unlock()
		if st == nil {
			return fmt.Errorf("engine: restore: node %s not in overlay", ns.Key)
		}
		hm, ok := ns.Msg.(handoffMsg)
		if !ok {
			return fmt.Errorf("engine: restore: node %s section is %T, want handoffMsg", ns.Key, ns.Msg)
		}
		st.merge(st.node, hm, false)
	}
	return nil
}

// Catalog returns the schema catalog the engine resolves relations and
// queries against.
func (e *Engine) Catalog() *relation.Catalog { return e.catalog }
