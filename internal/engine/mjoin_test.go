package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"cqjoin/internal/chord"
	"cqjoin/internal/metrics"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
)

// multiEnv sets up a chain-join catalog A-B-C-D with small attribute
// domains so combinations actually complete.
type multiEnv struct {
	net        *chord.Network
	eng        *Engine
	catalog    *relation.Catalog
	a, b, c, d *relation.Schema
	nodes      []*chord.Node
}

func newMultiEnv(t testing.TB, nNodes int, cfg Config) *multiEnv {
	t.Helper()
	a := relation.MustSchema("A", "x", "y", "z")
	b := relation.MustSchema("B", "x", "y", "z")
	c := relation.MustSchema("C", "x", "y", "z")
	d := relation.MustSchema("D", "x", "y", "z")
	catalog := relation.MustCatalog(a, b, c, d)
	net := chord.New(chord.Config{})
	net.AddNodes("peer", nNodes)
	eng := New(net, catalog, cfg)
	return &multiEnv{net: net, eng: eng, catalog: catalog, a: a, b: b, c: c, d: d, nodes: net.Nodes()}
}

func (e *multiEnv) tuple(s *relation.Schema, x, y, z float64) *relation.Tuple {
	return relation.MustTuple(s, relation.N(x), relation.N(y), relation.N(z))
}

func (e *multiEnv) publish(t testing.TB, i int, tu *relation.Tuple) *relation.Tuple {
	t.Helper()
	out, err := e.eng.Publish(e.nodes[i%len(e.nodes)], tu)
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	return out
}

func (e *multiEnv) subscribeMulti(t testing.TB, i int, sql string) *query.MultiQuery {
	t.Helper()
	mq, err := e.eng.SubscribeMulti(e.nodes[i%len(e.nodes)], query.MustParseMulti(e.catalog, sql))
	if err != nil {
		t.Fatalf("SubscribeMulti(%q): %v", sql, err)
	}
	return mq
}

func TestThreeWayJoinBasic(t *testing.T) {
	for _, alg := range []Algorithm{SAI, DAIQ} {
		t.Run(alg.String(), func(t *testing.T) {
			env := newMultiEnv(t, 48, Config{Algorithm: alg, Strategy: StrategyLeft})
			env.subscribeMulti(t, 0, `SELECT A.z, B.z, C.z FROM A, B, C WHERE A.x = B.y AND B.x = C.y`)
			// A(x=1) joins B(y=1, x=2) joins C(y=2).
			env.publish(t, 1, env.tuple(env.a, 1, 0, 10))
			env.publish(t, 2, env.tuple(env.b, 2, 1, 20))
			env.publish(t, 3, env.tuple(env.c, 0, 2, 30))
			got := env.eng.Notifications()
			if len(got) != 1 {
				t.Fatalf("%d notifications, want 1: %v", len(got), got)
			}
			n := got[0]
			want := []float64{10, 20, 30}
			for i, w := range want {
				if !n.Values[i].Equal(relation.N(w)) {
					t.Fatalf("values = %v, want %v", n.Values, want)
				}
			}
		})
	}
}

// Tuples arriving in every possible order must produce the combination
// exactly once.
func TestThreeWayAllArrivalOrders(t *testing.T) {
	tuples := []struct {
		rel  byte
		x, z float64
	}{
		{'A', 1, 10}, {'B', 2, 20}, {'C', 0, 30},
	}
	perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, perm := range perms {
		env := newMultiEnv(t, 48, Config{Algorithm: SAI, Strategy: StrategyLeft})
		env.subscribeMulti(t, 0, `SELECT A.z, B.z, C.z FROM A, B, C WHERE A.x = B.y AND B.x = C.y`)
		for _, idx := range perm {
			tu := tuples[idx]
			switch tu.rel {
			case 'A':
				env.publish(t, 1, env.tuple(env.a, tu.x, 0, tu.z))
			case 'B':
				env.publish(t, 2, env.tuple(env.b, tu.x, 1, tu.z))
			case 'C':
				env.publish(t, 3, env.tuple(env.c, tu.x, 2, tu.z))
			}
		}
		got := env.eng.Notifications()
		if len(got) != 1 {
			t.Fatalf("order %v: %d notifications, want 1", perm, len(got))
		}
	}
}

func TestMultiTimeSemantics(t *testing.T) {
	env := newMultiEnv(t, 48, Config{Algorithm: SAI, Strategy: StrategyLeft})
	// One chain tuple inserted before the query: the combination must not
	// fire even though the other two arrive after.
	env.publish(t, 1, env.tuple(env.b, 2, 1, 20))
	env.subscribeMulti(t, 0, `SELECT A.z, C.z FROM A, B, C WHERE A.x = B.y AND B.x = C.y`)
	env.publish(t, 2, env.tuple(env.a, 1, 0, 10))
	env.publish(t, 3, env.tuple(env.c, 0, 2, 30))
	if got := env.eng.Notifications(); len(got) != 0 {
		t.Fatalf("stale tuple completed a chain: %v", got)
	}
	// A fresh B makes it fire.
	env.publish(t, 4, env.tuple(env.b, 2, 1, 99))
	if got := env.eng.Notifications(); len(got) != 1 {
		t.Fatalf("%d notifications, want 1", len(got))
	}
}

func TestMultiSelectionPredicates(t *testing.T) {
	env := newMultiEnv(t, 48, Config{Algorithm: SAI, Strategy: StrategyLeft})
	env.subscribeMulti(t, 0, `
		SELECT A.z, C.z FROM A, B, C
		WHERE A.x = B.y AND B.x = C.y AND B.z >= 5 AND C.z = 30`)
	env.publish(t, 1, env.tuple(env.a, 1, 0, 10))
	env.publish(t, 2, env.tuple(env.b, 2, 1, 1))  // fails B.z >= 5
	env.publish(t, 3, env.tuple(env.c, 0, 2, 30)) // passes, but no valid B
	if got := env.eng.Notifications(); len(got) != 0 {
		t.Fatalf("filtered chain fired: %v", got)
	}
	env.publish(t, 4, env.tuple(env.b, 2, 1, 7)) // passes
	if got := env.eng.Notifications(); len(got) != 1 {
		t.Fatalf("%d notifications, want 1", len(got))
	}
}

func TestFourWayChain(t *testing.T) {
	env := newMultiEnv(t, 64, Config{Algorithm: SAI, Strategy: StrategyLeft})
	env.subscribeMulti(t, 0, `
		SELECT A.z, D.z FROM A, B, C, D
		WHERE A.x = B.y AND B.x = C.y AND C.x = D.y`)
	env.publish(t, 1, env.tuple(env.d, 0, 3, 40))
	env.publish(t, 2, env.tuple(env.c, 3, 2, 30))
	env.publish(t, 3, env.tuple(env.a, 1, 0, 10))
	env.publish(t, 4, env.tuple(env.b, 2, 1, 20))
	got := env.eng.Notifications()
	if len(got) != 1 {
		t.Fatalf("%d notifications, want 1: %v", len(got), got)
	}
	if !got[0].Values[0].Equal(relation.N(10)) || !got[0].Values[1].Equal(relation.N(40)) {
		t.Fatalf("values = %v", got[0].Values)
	}
}

func TestMultiRequiresTupleStorageRegime(t *testing.T) {
	for _, alg := range []Algorithm{DAIT, DAIV, BaselineRelation} {
		env := newMultiEnv(t, 16, Config{Algorithm: alg})
		mq := query.MustParseMulti(env.catalog, `SELECT A.z FROM A, B WHERE A.x = B.y`)
		if _, err := env.eng.SubscribeMulti(env.nodes[0], mq); err == nil {
			t.Fatalf("%s accepted a multi-way query", alg)
		}
	}
}

func TestMultiMinRateOrientation(t *testing.T) {
	env := newMultiEnv(t, 64, Config{Algorithm: SAI, Strategy: StrategyMinRate})
	// Stream A heavily; C stays quiet.
	for i := 0; i < 20; i++ {
		env.publish(t, i, env.tuple(env.a, float64(i), 0, 0))
	}
	env.publish(t, 30, env.tuple(env.c, 1, 1, 0))
	mq := env.subscribeMulti(t, 0, `SELECT A.z FROM A, B, C WHERE A.x = B.y AND B.x = C.y`)
	// The quiet endpoint (C) must head the pipeline.
	if mq.Rels()[0].Name() != "C" {
		t.Fatalf("pipeline starts at %s, want C", mq.Rels()[0].Name())
	}
}

// Brute-force oracle for random 3-way workloads.
func TestMultiOracle(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		env := newMultiEnv(t, 48, Config{Algorithm: SAI, Seed: seed})
		rng := rand.New(rand.NewSource(seed * 11))
		mqs := []*query.MultiQuery{
			env.subscribeMulti(t, 0, `SELECT A.z, B.z, C.z FROM A, B, C WHERE A.x = B.y AND B.x = C.y`),
			env.subscribeMulti(t, 1, `SELECT A.z, C.z FROM A, B, C WHERE A.y = B.y AND B.x = C.x AND C.z >= 1`),
		}
		var as, bs, cs []*relation.Tuple
		schemas := []*relation.Schema{env.a, env.b, env.c}
		sinks := []*[]*relation.Tuple{&as, &bs, &cs}
		for i := 0; i < 90; i++ {
			k := rng.Intn(3)
			tu := env.publish(t, rng.Intn(48), env.tuple(schemas[k],
				float64(rng.Intn(3)), float64(rng.Intn(3)), float64(rng.Intn(3))))
			*sinks[k] = append(*sinks[k], tu)
		}

		want := make(map[string]bool)
		for _, mq := range mqs {
			links := mq.Links()
			rels := mq.Rels()
			pools := map[string][]*relation.Tuple{"A": as, "B": bs, "C": cs}
			for _, t0 := range pools[rels[0].Name()] {
				for _, t1 := range pools[rels[1].Name()] {
					for _, t2 := range pools[rels[2].Name()] {
						combo := []*relation.Tuple{t0, t1, t2}
						valid := true
						for _, tt := range combo {
							if tt.PubT() < mq.InsT() {
								valid = false
								break
							}
							if ok, err := mq.FiltersPass(tt); err != nil || !ok {
								valid = false
								break
							}
						}
						if !valid {
							continue
						}
						for li, l := range links {
							lv, err1 := l.L.Eval(combo[li])
							rv, err2 := l.R.Eval(combo[li+1])
							if err1 != nil || err2 != nil || !lv.Equal(rv) {
								valid = false
								break
							}
						}
						if !valid {
							continue
						}
						vals, err := mq.ProjectNotification(combo)
						if err != nil {
							t.Fatalf("oracle projection: %v", err)
						}
						key := mq.Key()
						for _, v := range vals {
							key += "|" + v.Canon()
						}
						want[key] = true
					}
				}
			}
		}
		got := make(map[string]bool)
		for _, n := range env.eng.Notifications() {
			got[n.ContentKey()] = true
		}
		if len(want) == 0 {
			t.Fatalf("seed %d: oracle empty, test vacuous", seed)
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("seed %d: missing %s (want %d got %d)", seed, k, len(want), len(got))
			}
		}
		for k := range got {
			if !want[k] {
				t.Fatalf("seed %d: extra %s", seed, k)
			}
		}
	}
}

func TestMultiWindowEviction(t *testing.T) {
	env := newMultiEnv(t, 48, Config{Algorithm: SAI, Strategy: StrategyLeft, Window: 5})
	env.subscribeMulti(t, 0, `SELECT A.z FROM A, B, C WHERE A.x = B.y AND B.x = C.y`)
	env.publish(t, 1, env.tuple(env.a, 1, 0, 10))
	env.publish(t, 2, env.tuple(env.b, 2, 1, 20)) // partial match A⋈B now stored
	before := sum(env.eng.StorageLoads())
	env.net.Clock().Advance(50)
	env.eng.EvictExpired()
	after := sum(env.eng.StorageLoads())
	if after >= before {
		t.Fatalf("eviction did not drop partial matches: %d -> %d", before, after)
	}
	// The expired partial match must not complete.
	env.publish(t, 3, env.tuple(env.c, 0, 2, 30))
	if got := env.eng.Notifications(); len(got) != 0 {
		t.Fatalf("expired chain completed: %v", got)
	}
}

func TestMultiGroupingSharesMessages(t *testing.T) {
	env := newMultiEnv(t, 48, Config{Algorithm: SAI, Strategy: StrategyLeft})
	for i := 0; i < 4; i++ {
		env.subscribeMulti(t, i, `SELECT A.z, C.z FROM A, B, C WHERE A.x = B.y AND B.x = C.y`)
	}
	env.net.Traffic().Reset()
	env.publish(t, 9, env.tuple(env.a, 1, 0, 10))
	// One tuple triggers all four chain queries toward one evaluator: one
	// mjoin message.
	if got := env.net.Traffic().Messages("mjoin"); got != 1 {
		t.Fatalf("mjoin messages = %d, want 1", got)
	}
}

func TestMultiSurvivesChurn(t *testing.T) {
	env := newMultiEnv(t, 48, Config{Algorithm: SAI, Strategy: StrategyLeft})
	env.subscribeMulti(t, 0, `SELECT A.z, C.z FROM A, B, C WHERE A.x = B.y AND B.x = C.y`)
	env.publish(t, 1, env.tuple(env.a, 1, 0, 10))
	env.publish(t, 2, env.tuple(env.b, 2, 1, 20))
	// Voluntary churn between stages: state hands over cleanly.
	for i := 0; i < 5; i++ {
		n, err := env.net.Join(fmt.Sprintf("late-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		env.eng.Attach(n)
	}
	nodes := env.net.Nodes()
	env.net.Leave(nodes[7])
	env.net.Leave(nodes[13])
	env.publish(t, 3, env.tuple(env.c, 0, 2, 30))
	if got := env.eng.Notifications(); len(got) != 1 {
		t.Fatalf("%d notifications after churn, want 1", len(got))
	}
}

func TestMultiLoadAccounting(t *testing.T) {
	env := newMultiEnv(t, 48, Config{Algorithm: SAI, Strategy: StrategyLeft})
	env.subscribeMulti(t, 0, `SELECT A.z FROM A, B, C WHERE A.x = B.y AND B.x = C.y`)
	env.publish(t, 1, env.tuple(env.a, 1, 0, 10))
	if got := sum(env.eng.RoleLoads(metrics.Rewriter, true)); got != 1 {
		t.Fatalf("rewriter storage = %d, want 1 (the chain query)", got)
	}
	if got := sum(env.eng.RoleLoads(metrics.Evaluator, true)); got == 0 {
		t.Fatal("no evaluator storage for the partial match")
	}
}
