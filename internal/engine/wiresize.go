package engine

import (
	"cqjoin/internal/chord"
	"cqjoin/internal/query"
	"cqjoin/internal/wire"
)

// Arithmetic wire sizes, mirroring EncodeMessage field for field. The byte
// ledger charges Size() once per hop of every delivery, so the old
// implementation (encode the whole message into a scratch buffer, take its
// length) put a full encode on the hottest path of the simulator.
// wireSize computes the same number without materializing any bytes, and
// wire.SizeTuple/SizeQuery memoize the per-tuple/per-query walks.
// codec_test.go asserts wireSize == len(EncodeMessage) for every message
// type, so the two switches cannot drift silently.

// wireSize returns msg's exact encoded length, or 0 for message types
// EncodeMessage does not know (mirroring encodedLen's error case).
func wireSize(msg chord.Message) int {
	// Every tag is a single-byte uvarint (1..15).
	const tagLen = 1
	switch m := msg.(type) {
	case queryMsg:
		return tagLen + wire.SizeQuery(m.Q) + wire.SizeString(m.Attr) +
			wire.SizeUvarint(uint64(m.Side)) + wire.SizeUvarint(uint64(m.Replica))
	case alIndexMsg:
		return tagLen + wire.SizeTuple(m.T) + wire.SizeString(m.Attr) +
			wire.SizeUvarint(uint64(m.Replica))
	case vlIndexMsg:
		return tagLen + wire.SizeTuple(m.T) + wire.SizeString(m.Attr)
	case joinMsg:
		n := tagLen + wire.SizeUvarint(uint64(len(m.Rewrites)))
		for _, rw := range m.Rewrites {
			n += sizeRewritten(rw)
		}
		return n
	case joinVMsg:
		n := tagLen + wire.SizeString(m.Input) + wire.SizeString(m.Cond) +
			wire.SizeUvarint(uint64(m.Side)) + wire.SizeValue(m.Value) +
			wire.SizeTuple(m.Trigger) + wire.SizeUvarint(uint64(len(m.Queries)))
		for _, q := range m.Queries {
			n += wire.SizeQuery(q)
		}
		return n
	case joinBatch:
		n := tagLen + wire.SizeUvarint(uint64(len(m.Msgs)))
		for _, inner := range m.Msgs {
			n += wireSize(inner)
		}
		return n
	case notifyMsg:
		n := tagLen + wire.SizeString(m.Subscriber) + wire.SizeUvarint(uint64(len(m.Batch)))
		for _, nt := range m.Batch {
			n += sizeNotification(nt)
		}
		return n
	case probeMsg:
		return tagLen + wire.SizeString(m.AttrInput)
	case unsubMsg:
		return tagLen + wire.SizeString(m.QueryKey) + wire.SizeString(m.Cond) +
			wire.SizeString(m.Input)
	case purgeMsg:
		return tagLen + wire.SizeString(m.QueryKey) + wire.SizeString(m.Input)
	case baselineQueryMsg:
		return tagLen + wire.SizeQuery(m.Q) + wire.SizeUvarint(uint64(m.Side)) +
			wire.SizeString(m.Input)
	case baselineTupleMsg:
		return tagLen + wire.SizeTuple(m.T) + wire.SizeString(m.Input) +
			wire.SizeUvarint(uint64(m.Side))
	case baselineProbeMsg:
		n := tagLen + wire.SizeString(m.Input) + wire.SizeUvarint(uint64(len(m.Rewrites)))
		for _, rw := range m.Rewrites {
			n += sizeRewritten(rw)
		}
		return n
	case mQueryMsg:
		return tagLen + sizeMultiQuery(m.MQ) + wire.SizeString(m.Attr) +
			wire.SizeUvarint(uint64(m.Replica))
	case mJoinMsg:
		n := tagLen + wire.SizeUvarint(uint64(len(m.Rewrites)))
		for _, rw := range m.Rewrites {
			n += sizeMRewritten(rw)
		}
		return n
	default:
		return 0
	}
}

func sizeRewritten(rw *rewritten) int {
	return wire.SizeString(rw.Key) + wire.SizeQuery(rw.Orig) +
		wire.SizeUvarint(uint64(rw.IndexSide)) + wire.SizeTuple(rw.Trigger) +
		wire.SizeString(rw.WantRel) + wire.SizeString(rw.WantAttr) +
		wire.SizeValue(rw.WantValue)
}

func sizeNotification(n Notification) int {
	sz := wire.SizeString(n.QueryKey) + wire.SizeString(n.Subscriber) +
		wire.SizeString(n.subscriberIP) + wire.SizeUvarint(uint64(len(n.Values)))
	for _, v := range n.Values {
		sz += wire.SizeValue(v)
	}
	return sz + wire.SizeVarint(n.LeftPubT) + wire.SizeVarint(n.RightPubT) +
		wire.SizeVarint(n.DeliveredAt)
}

func sizeMultiQuery(mq *query.MultiQuery) int {
	return wire.SizeString(mq.Key()) + wire.SizeString(mq.Subscriber()) +
		wire.SizeString(mq.SubscriberIP()) + wire.SizeVarint(mq.InsT()) +
		wire.SizeString(mq.Text()) + wire.SizeString(mq.Rels()[0].Name())
}

func sizeMRewritten(rw *mRewritten) int {
	n := wire.SizeString(rw.Key) + sizeMultiQuery(rw.Orig) +
		wire.SizeUvarint(uint64(rw.Stage)) + wire.SizeUvarint(uint64(len(rw.Acc)))
	for _, t := range rw.Acc {
		n += wire.SizeTuple(t)
	}
	return n + wire.SizeString(rw.WantRel) + wire.SizeString(rw.WantAttr) +
		wire.SizeValue(rw.WantValue)
}
