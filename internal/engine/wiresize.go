package engine

import (
	"cqjoin/internal/chord"
	"cqjoin/internal/query"
	"cqjoin/internal/wire"
)

// Arithmetic wire sizes, mirroring EncodeMessage field for field. The byte
// ledger charges Size() once per hop of every delivery, so the old
// implementation (encode the whole message into a scratch buffer, take its
// length) put a full encode on the hottest path of the simulator.
// wireSize computes the same number without materializing any bytes, and
// wire.SizeTuple/SizeQuery memoize the per-tuple/per-query walks.
// codec_test.go asserts wireSize == len(EncodeMessage) for every message
// type, so the two switches cannot drift silently. Statically, every arm
// here carries a //wire:field size directive that the wiresync analyzer
// (cmd/cqlint, DESIGN.md §9) pairs against the matching enc directive in
// codec.go: deleting a directive, dropping a size term, or reordering
// encoded fields fails the lint job.

// MessageSize returns msg's exact encoded length, or 0 for message types
// EncodeMessage does not know. The exactness contract (pinned by
// codec_test.go and the wiresync directives) is what lets the transport
// encode messages in place behind a length prefix — see
// transport.Sizer.
func MessageSize(msg chord.Message) int { return wireSize(msg) }

// wireSize returns msg's exact encoded length, or 0 for message types
// EncodeMessage does not know (mirroring encodedLen's error case).
func wireSize(msg chord.Message) int {
	// Every tag is a single-byte uvarint (1..22).
	const tagLen = 1
	switch m := msg.(type) {
	//wire:field size queryMsg Q Attr Side Replica
	case queryMsg:
		return tagLen + wire.SizeQuery(m.Q) + wire.SizeString(m.Attr) +
			wire.SizeUvarint(uint64(m.Side)) + wire.SizeUvarint(uint64(m.Replica))
	//wire:field size alIndexMsg T Attr Replica
	case alIndexMsg:
		return tagLen + wire.SizeTuple(m.T) + wire.SizeString(m.Attr) +
			wire.SizeUvarint(uint64(m.Replica))
	//wire:field size vlIndexMsg T Attr
	case vlIndexMsg:
		return tagLen + wire.SizeTuple(m.T) + wire.SizeString(m.Attr)
	//wire:field size joinMsg Rewrites
	case joinMsg:
		n := tagLen + wire.SizeUvarint(uint64(len(m.Rewrites)))
		for _, rw := range m.Rewrites {
			n += sizeRewritten(rw)
		}
		return n
	//wire:field size joinVMsg Input Cond Side Value Trigger Queries
	case joinVMsg:
		n := tagLen + wire.SizeString(m.Input) + wire.SizeString(m.Cond) +
			wire.SizeUvarint(uint64(m.Side)) + wire.SizeValue(m.Value) +
			wire.SizeTuple(m.Trigger) + wire.SizeUvarint(uint64(len(m.Queries)))
		for _, q := range m.Queries {
			n += wire.SizeQuery(q)
		}
		return n
	//wire:field size joinBatch Msgs
	case joinBatch:
		n := tagLen + wire.SizeUvarint(uint64(len(m.Msgs)))
		for _, inner := range m.Msgs {
			n += wireSize(inner)
		}
		return n
	//wire:field size notifyMsg Subscriber Batch
	case notifyMsg:
		n := tagLen + wire.SizeString(m.Subscriber) + wire.SizeUvarint(uint64(len(m.Batch)))
		for _, nt := range m.Batch {
			n += sizeNotification(nt)
		}
		return n
	//wire:field size probeMsg AttrInput
	case probeMsg:
		return tagLen + wire.SizeString(m.AttrInput)
	//wire:field size unsubMsg QueryKey Cond Input
	case unsubMsg:
		return tagLen + wire.SizeString(m.QueryKey) + wire.SizeString(m.Cond) +
			wire.SizeString(m.Input)
	//wire:field size purgeMsg QueryKey Input
	case purgeMsg:
		return tagLen + wire.SizeString(m.QueryKey) + wire.SizeString(m.Input)
	//wire:field size baselineQueryMsg Q Side Input
	case baselineQueryMsg:
		return tagLen + wire.SizeQuery(m.Q) + wire.SizeUvarint(uint64(m.Side)) +
			wire.SizeString(m.Input)
	//wire:field size baselineTupleMsg T Input Side
	case baselineTupleMsg:
		return tagLen + wire.SizeTuple(m.T) + wire.SizeString(m.Input) +
			wire.SizeUvarint(uint64(m.Side))
	//wire:field size baselineProbeMsg Input Rewrites
	case baselineProbeMsg:
		n := tagLen + wire.SizeString(m.Input) + wire.SizeUvarint(uint64(len(m.Rewrites)))
		for _, rw := range m.Rewrites {
			n += sizeRewritten(rw)
		}
		return n
	//wire:field size mQueryMsg MQ Attr Replica
	case mQueryMsg:
		return tagLen + sizeMultiQuery(m.MQ) + wire.SizeString(m.Attr) +
			wire.SizeUvarint(uint64(m.Replica))
	//wire:field size mJoinMsg Rewrites
	case mJoinMsg:
		n := tagLen + wire.SizeUvarint(uint64(len(m.Rewrites)))
		for _, rw := range m.Rewrites {
			n += sizeMRewritten(rw)
		}
		return n
	//wire:field size handoffMsg AL VQ MQ VT DV Notifs
	case handoffMsg:
		n := tagLen + wire.SizeUvarint(uint64(len(m.AL)))
		for _, sec := range m.AL {
			n += sizeALSection(sec)
		}
		n += wire.SizeUvarint(uint64(len(m.VQ)))
		for _, sec := range m.VQ {
			n += sizeVQSection(sec)
		}
		n += wire.SizeUvarint(uint64(len(m.MQ)))
		for _, sec := range m.MQ {
			n += sizeMQSection(sec)
		}
		n += wire.SizeUvarint(uint64(len(m.VT)))
		for _, sec := range m.VT {
			n += sizeVTSection(sec)
		}
		n += wire.SizeUvarint(uint64(len(m.DV)))
		for _, sec := range m.DV {
			n += sizeDVSection(sec)
		}
		n += wire.SizeUvarint(uint64(len(m.Notifs)))
		for _, sec := range m.Notifs {
			n += sizeNotifSection(sec)
		}
		return n
	//wire:field size hotJoinMsg Input Shard Version K Rewrites
	case hotJoinMsg:
		n := tagLen + wire.SizeString(m.Input) + wire.SizeUvarint(uint64(m.Shard)) +
			wire.SizeUvarint(uint64(m.Version)) + wire.SizeUvarint(uint64(m.K)) +
			wire.SizeUvarint(uint64(len(m.Rewrites)))
		for _, rw := range m.Rewrites {
			n += sizeRewritten(rw)
		}
		return n
	//wire:field size hotVLIndexMsg Input Shard Version K T
	case hotVLIndexMsg:
		return tagLen + wire.SizeString(m.Input) + wire.SizeUvarint(uint64(m.Shard)) +
			wire.SizeUvarint(uint64(m.Version)) + wire.SizeUvarint(uint64(m.K)) +
			wire.SizeTuple(m.T)
	//wire:field size hotMigrateMsg Input Version K
	case hotMigrateMsg:
		return tagLen + wire.SizeString(m.Input) + wire.SizeUvarint(uint64(m.Version)) +
			wire.SizeUvarint(uint64(m.K))
	//wire:field size hotRecallMsg Input Shard Version K
	case hotRecallMsg:
		return tagLen + wire.SizeString(m.Input) + wire.SizeUvarint(uint64(m.Shard)) +
			wire.SizeUvarint(uint64(m.Version)) + wire.SizeUvarint(uint64(m.K))
	//wire:field size hotHandoffMsg Input Shard Version K Entries Tuples
	case hotHandoffMsg:
		n := tagLen + wire.SizeString(m.Input) + wire.SizeUvarint(uint64(m.Shard)) +
			wire.SizeUvarint(uint64(m.Version)) + wire.SizeUvarint(uint64(m.K)) +
			wire.SizeUvarint(uint64(len(m.Entries)))
		for _, e := range m.Entries {
			n += sizeVQEntry(e)
		}
		n += wire.SizeUvarint(uint64(len(m.Tuples)))
		for _, t := range m.Tuples {
			n += wire.SizeTuple(t)
		}
		return n
	//wire:field size snapMetaMsg Clock Nodes Down Seq Subs Multi Conds Sink HotEpochs HotCounts
	case snapMetaMsg:
		n := tagLen + wire.SizeVarint(m.Clock) + wire.SizeUvarint(uint64(len(m.Nodes)))
		for _, k := range m.Nodes {
			n += wire.SizeString(k)
		}
		n += wire.SizeUvarint(uint64(len(m.Down)))
		for _, k := range m.Down {
			n += wire.SizeString(k)
		}
		n += wire.SizeUvarint(uint64(len(m.Seq)))
		for _, s := range m.Seq {
			n += sizeSeqEntry(s)
		}
		n += wire.SizeUvarint(uint64(len(m.Subs)))
		for _, s := range m.Subs {
			n += sizeSubsEntry(s)
		}
		n += wire.SizeUvarint(boolBit(m.Multi))
		n += wire.SizeUvarint(uint64(len(m.Conds)))
		for _, q := range m.Conds {
			n += wire.SizeQuery(q)
		}
		n += wire.SizeUvarint(uint64(len(m.Sink)))
		for _, nt := range m.Sink {
			n += sizeNotification(nt)
		}
		n += wire.SizeUvarint(uint64(len(m.HotEpochs)))
		for _, e := range m.HotEpochs {
			n += sizeHotEpochEntry(e)
		}
		n += wire.SizeUvarint(uint64(len(m.HotCounts)))
		for _, c := range m.HotCounts {
			n += sizeHotCountEntry(c)
		}
		return n
	default:
		return 0
	}
}

//wire:field size seqEntry Key Seq
func sizeSeqEntry(s seqEntry) int {
	return wire.SizeString(s.Key) + wire.SizeVarint(s.Seq)
}

//wire:field size subsEntry Key Inputs
func sizeSubsEntry(s subsEntry) int {
	n := wire.SizeString(s.Key) + wire.SizeUvarint(uint64(len(s.Inputs)))
	for _, in := range s.Inputs {
		n += wire.SizeString(in)
	}
	return n
}

//wire:field size hotEpochEntry Input Version K
func sizeHotEpochEntry(e hotEpochEntry) int {
	return wire.SizeString(e.Input) + wire.SizeUvarint(uint64(e.Version)) +
		wire.SizeUvarint(uint64(e.K))
}

//wire:field size hotCountEntry Input Count WindowStart
func sizeHotCountEntry(c hotCountEntry) int {
	return wire.SizeString(c.Input) + wire.SizeVarint(c.Count) +
		wire.SizeVarint(c.WindowStart)
}

//wire:field size rewritten Key Orig IndexSide Trigger WantRel WantAttr WantValue
func sizeRewritten(rw *rewritten) int {
	return wire.SizeString(rw.Key) + wire.SizeQuery(rw.Orig) +
		wire.SizeUvarint(uint64(rw.IndexSide)) + wire.SizeTuple(rw.Trigger) +
		wire.SizeString(rw.WantRel) + wire.SizeString(rw.WantAttr) +
		wire.SizeValue(rw.WantValue)
}

//wire:field size Notification QueryKey Subscriber subscriberIP Values LeftPubT RightPubT DeliveredAt
func sizeNotification(n Notification) int {
	sz := wire.SizeString(n.QueryKey) + wire.SizeString(n.Subscriber) +
		wire.SizeString(n.subscriberIP) + wire.SizeUvarint(uint64(len(n.Values)))
	for _, v := range n.Values {
		sz += wire.SizeValue(v)
	}
	return sz + wire.SizeVarint(n.LeftPubT) + wire.SizeVarint(n.RightPubT) +
		wire.SizeVarint(n.DeliveredAt)
}

//wire:field size MultiQuery Key Subscriber SubscriberIP InsT Text Rels
func sizeMultiQuery(mq *query.MultiQuery) int {
	return wire.SizeString(mq.Key()) + wire.SizeString(mq.Subscriber()) +
		wire.SizeString(mq.SubscriberIP()) + wire.SizeVarint(mq.InsT()) +
		wire.SizeString(mq.Text()) + wire.SizeString(mq.Rels()[0].Name())
}

//wire:field size mRewritten Key Orig Stage Acc WantRel WantAttr WantValue
func sizeMRewritten(rw *mRewritten) int {
	n := wire.SizeString(rw.Key) + sizeMultiQuery(rw.Orig) +
		wire.SizeUvarint(uint64(rw.Stage)) + wire.SizeUvarint(uint64(len(rw.Acc)))
	for _, t := range rw.Acc {
		n += wire.SizeTuple(t)
	}
	return n + wire.SizeString(rw.WantRel) + wire.SizeString(rw.WantAttr) +
		wire.SizeValue(rw.WantValue)
}

//wire:field size targetsEntry Key Targets
func sizeTargetsEntry(e targetsEntry) int {
	n := wire.SizeString(e.Key) + wire.SizeUvarint(uint64(len(e.Targets)))
	for _, t := range e.Targets {
		n += wire.SizeString(t)
	}
	return n
}

//wire:field size alGroupSection Cond Side Queries
func sizeALGroupSection(g alGroupSection) int {
	n := wire.SizeString(g.Cond) + wire.SizeUvarint(uint64(g.Side)) +
		wire.SizeUvarint(uint64(len(g.Queries)))
	for _, q := range g.Queries {
		n += wire.SizeQuery(q)
	}
	return n
}

//wire:field size alMultiSection Cond Queries
func sizeALMultiSection(g alMultiSection) int {
	n := wire.SizeString(g.Cond) + wire.SizeUvarint(uint64(len(g.Queries)))
	for _, mq := range g.Queries {
		n += sizeMultiQuery(mq)
	}
	return n
}

//wire:field size alSection Input Groups Multi SentRewrites SentTargets
func sizeALSection(sec alSection) int {
	n := wire.SizeString(sec.Input) + wire.SizeUvarint(uint64(len(sec.Groups)))
	for _, g := range sec.Groups {
		n += sizeALGroupSection(g)
	}
	n += wire.SizeUvarint(uint64(len(sec.Multi)))
	for _, g := range sec.Multi {
		n += sizeALMultiSection(g)
	}
	n += wire.SizeUvarint(uint64(len(sec.SentRewrites)))
	for _, k := range sec.SentRewrites {
		n += wire.SizeString(k)
	}
	n += wire.SizeUvarint(uint64(len(sec.SentTargets)))
	for _, e := range sec.SentTargets {
		n += sizeTargetsEntry(e)
	}
	return n
}

//wire:field size vqEntry Rw Times
func sizeVQEntry(e vqEntry) int {
	n := sizeRewritten(e.Rw) + wire.SizeUvarint(uint64(len(e.Times)))
	for _, t := range e.Times {
		n += wire.SizeVarint(t)
	}
	return n
}

//wire:field size vqSection Input Entries
func sizeVQSection(sec vqSection) int {
	n := wire.SizeString(sec.Input) + wire.SizeUvarint(uint64(len(sec.Entries)))
	for _, e := range sec.Entries {
		n += sizeVQEntry(e)
	}
	return n
}

//wire:field size mqSection Input Rewrites SentTargets
func sizeMQSection(sec mqSection) int {
	n := wire.SizeString(sec.Input) + wire.SizeUvarint(uint64(len(sec.Rewrites)))
	for _, rw := range sec.Rewrites {
		n += sizeMRewritten(rw)
	}
	n += wire.SizeUvarint(uint64(len(sec.SentTargets)))
	for _, e := range sec.SentTargets {
		n += sizeTargetsEntry(e)
	}
	return n
}

//wire:field size vtSection Input Tuples
func sizeVTSection(sec vtSection) int {
	n := wire.SizeString(sec.Input) + wire.SizeUvarint(uint64(len(sec.Tuples)))
	for _, t := range sec.Tuples {
		n += wire.SizeTuple(t)
	}
	return n
}

//wire:field size dvEntry Cond Left Right
func sizeDVEntry(e dvEntry) int {
	n := wire.SizeString(e.Cond) + wire.SizeUvarint(uint64(len(e.Left)))
	for _, t := range e.Left {
		n += wire.SizeTuple(t)
	}
	n += wire.SizeUvarint(uint64(len(e.Right)))
	for _, t := range e.Right {
		n += wire.SizeTuple(t)
	}
	return n
}

//wire:field size dvSection Input Entries
func sizeDVSection(sec dvSection) int {
	n := wire.SizeString(sec.Input) + wire.SizeUvarint(uint64(len(sec.Entries)))
	for _, e := range sec.Entries {
		n += sizeDVEntry(e)
	}
	return n
}

//wire:field size notifSection Subscriber Batch
func sizeNotifSection(sec notifSection) int {
	n := wire.SizeString(sec.Subscriber) + wire.SizeUvarint(uint64(len(sec.Batch)))
	for _, nt := range sec.Batch {
		n += sizeNotification(nt)
	}
	return n
}
