package engine

import (
	"fmt"
	"math/rand"
	"testing"
)

// The cross-algorithm agreement property (Section 4.4): for any workload,
// SAI, DAI-Q, DAI-T and DAI-V deliver exactly the same set of notification
// contents, and that set equals the centralized oracle's. Each seed draws
// a fresh random workload — query mix, interleaving, tuple values and
// originating nodes all vary — so 50 seeds explore far more interleavings
// than the hand-picked oracle scripts.

// propertyWorkload generates one seeded random workload and returns the
// oracle bookkeeping plus a replayable script of events.
type propEvent struct {
	isQuery bool
	sql     string
	rel     string // "R" or "S"
	vals    [3]float64
	nodeIdx int
}

func propertyWorkload(seed int64) []propEvent {
	rng := rand.New(rand.NewSource(seed))
	pool := []string{
		`SELECT R.A, S.D FROM R, S WHERE R.B = S.E`,
		`SELECT R.B, S.E FROM R, S WHERE R.A = S.D`,
		`SELECT R.A FROM R, S WHERE 2 * R.B = S.E + 1`,
		`SELECT S.D FROM R, S WHERE R.B = S.E AND R.C = 2`,
		`SELECT R.C, S.F FROM R, S WHERE R.A = S.D AND S.F >= 1`,
		`SELECT R.A, S.D FROM R, S WHERE R.B = S.E`, // repeat condition: grouping
		`SELECT R.A, S.E FROM R, S WHERE R.C = S.F`,
	}
	nQueries := 3 + rng.Intn(len(pool)-2)
	events := make([]propEvent, 0, 80)
	queued := rng.Perm(len(pool))[:nQueries]
	qi := 0
	for step := 0; step < 70; step++ {
		switch {
		case qi < len(queued) && (step%9 == 0 || rng.Intn(7) == 0):
			events = append(events, propEvent{isQuery: true, sql: pool[queued[qi]], nodeIdx: rng.Intn(1 << 16)})
			qi++
		case rng.Intn(2) == 0:
			events = append(events, propEvent{rel: "R", nodeIdx: rng.Intn(1 << 16),
				vals: [3]float64{float64(rng.Intn(5)), float64(rng.Intn(3)), float64(rng.Intn(3))}})
		default:
			events = append(events, propEvent{rel: "S", nodeIdx: rng.Intn(1 << 16),
				vals: [3]float64{float64(rng.Intn(5)), float64(rng.Intn(3)), float64(rng.Intn(3))}})
		}
	}
	return events
}

// runProperty replays one workload script against one algorithm and
// returns the delivered content-key set plus the oracle built alongside.
func runProperty(t *testing.T, alg Algorithm, seed int64, events []propEvent) (map[string]bool, *Oracle) {
	t.Helper()
	env := newTestEnv(t, 32, Config{Algorithm: alg, Seed: seed})
	oracle := NewOracle()
	for _, ev := range events {
		switch {
		case ev.isQuery:
			oracle.AddQuery(env.subscribe(t, ev.nodeIdx, ev.sql))
		case ev.rel == "R":
			oracle.AddTuple(env.publish(t, ev.nodeIdx, rTuple(env, ev.vals[0], ev.vals[1], ev.vals[2])))
		default:
			oracle.AddTuple(env.publish(t, ev.nodeIdx, sTuple(env, ev.vals[0], ev.vals[1], ev.vals[2])))
		}
	}
	return gotContents(env), oracle
}

func TestPropertyAlgorithmsAgreeWithOracle(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 8
	}
	algs := []Algorithm{SAI, DAIQ, DAIT, DAIV}
	nonVacuous := 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		events := propertyWorkload(seed)
		var first map[string]bool
		var firstAlg Algorithm
		for _, alg := range algs {
			got, oracle := runProperty(t, alg, seed, events)
			want := oracle.ExpectedContentKeys()
			if err := diffContentSets(want, got); err != nil {
				t.Fatalf("seed %d: %s disagrees with oracle: %v", seed, alg, err)
			}
			if first == nil {
				first, firstAlg = got, alg
				continue
			}
			if err := diffContentSets(first, got); err != nil {
				t.Fatalf("seed %d: %s disagrees with %s: %v", seed, alg, firstAlg, err)
			}
		}
		if len(first) > 0 {
			nonVacuous++
		}
	}
	if nonVacuous == 0 {
		t.Fatal("every seed produced an empty answer set; property is vacuous")
	}
}

func diffContentSets(want, got map[string]bool) error {
	var missing, extra []string
	for k := range want {
		if !got[k] {
			missing = append(missing, k)
		}
	}
	for k := range got {
		if !want[k] {
			extra = append(extra, k)
		}
	}
	if len(missing) > 0 || len(extra) > 0 {
		return fmt.Errorf("missing %d %v, extra %d %v", len(missing), clip(missing), len(extra), clip(extra))
	}
	return nil
}

func clip(s []string) []string {
	if len(s) > 5 {
		return append(s[:5:5], "...")
	}
	return s
}
