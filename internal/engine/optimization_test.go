package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"cqjoin/internal/id"
	"cqjoin/internal/metrics"
	"cqjoin/internal/relation"
)

// --- JFRT (Section 4.7.1) -------------------------------------------------

func TestJFRTReducesJoinTraffic(t *testing.T) {
	run := func(useJFRT bool) int64 {
		env := newTestEnv(t, 256, Config{Algorithm: SAI, UseJFRT: useJFRT, Strategy: StrategyLeft})
		env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
		// Repeatedly trigger with the same join value: the evaluator is the
		// same every time, so the JFRT caches it after the first lookup.
		for i := 0; i < 50; i++ {
			env.publish(t, i, rTuple(env, float64(i), 7, 0))
		}
		return env.net.Traffic().Hops(kindJoin)
	}
	withJFRT := run(true)
	without := run(false)
	if withJFRT >= without {
		t.Fatalf("JFRT hops %d >= plain hops %d", withJFRT, without)
	}
	// After the first lookup each reindexing is one direct hop, so traffic
	// should approach 1 hop per trigger.
	if withJFRT > 60 {
		t.Fatalf("JFRT hops %d, expected close to 50 (one per trigger)", withJFRT)
	}
}

func TestJFRTStats(t *testing.T) {
	env := newTestEnv(t, 64, Config{Algorithm: SAI, UseJFRT: true, Strategy: StrategyLeft})
	env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	for i := 0; i < 10; i++ {
		env.publish(t, i, rTuple(env, float64(i), 7, 0))
	}
	hits, misses, entries := env.eng.JFRTStats()
	if misses == 0 || hits == 0 {
		t.Fatalf("hits=%d misses=%d, both must be positive", hits, misses)
	}
	if hits != 9 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 9/1 for one recurring evaluator", hits, misses)
	}
	if entries != 1 {
		t.Fatalf("entries=%d, want 1", entries)
	}
}

func TestJFRTInvalidatesDeadEvaluator(t *testing.T) {
	env := newTestEnv(t, 64, Config{Algorithm: SAI, UseJFRT: true, Strategy: StrategyLeft})
	env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	env.publish(t, 1, rTuple(env, 1, 7, 0))

	// Find and crash the evaluator the JFRT learned.
	evaluator := env.net.OracleSuccessor(id.Hash(vlInput("S", "E", relation.N(7))))
	env.net.Fail(evaluator)
	env.net.RepairAll()

	// The next trigger must route to the new responsible node, not the
	// dead cache entry, and matching must keep working.
	env.publish(t, 2, rTuple(env, 2, 7, 0))
	env.publish(t, 3, sTuple(env, 9, 7, 0))
	got := env.eng.Notifications()
	// The rewritten query stored on the failed node is lost (best-effort
	// semantics), but the post-failure rewrite (R.A=2) must match.
	found := false
	for _, n := range got {
		if n.Values[0].Equal(relation.N(2)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-failure rewrite did not match: %v", got)
	}
}

// --- Recursive vs iterative multisend (Figure 4.8) -------------------------

func TestIterativeMultisendCostsMore(t *testing.T) {
	run := func(iterative bool) int64 {
		env := newTestEnv(t, 256, Config{Algorithm: DAIQ, IterativeMultisend: iterative})
		env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
		for i := 0; i < 20; i++ {
			env.publish(t, i, rTuple(env, float64(i), float64(i%5), 0))
		}
		return env.net.Traffic().TotalHops()
	}
	recursive := run(false)
	iterative := run(true)
	if recursive >= iterative {
		t.Fatalf("recursive %d hops >= iterative %d hops", recursive, iterative)
	}
}

// --- DAI-T's reindex-once optimization (Section 4.4.3) ---------------------

func TestDAITReindexesOnce(t *testing.T) {
	countJoins := func(alg Algorithm) int64 {
		env := newTestEnv(t, 64, Config{Algorithm: alg})
		env.subscribe(t, 0, `SELECT S.D FROM R, S WHERE R.B = S.E`)
		// Many R tuples with the same join value AND same select values
		// (select references only S): identical rewritten keys.
		for i := 0; i < 30; i++ {
			env.publish(t, i, rTuple(env, 0, 7, 0))
		}
		return env.net.Traffic().Messages(kindJoin)
	}
	dait := countJoins(DAIT)
	daiq := countJoins(DAIQ)
	if dait != 1 {
		t.Fatalf("DAI-T sent %d join messages, want exactly 1", dait)
	}
	if daiq != 30 {
		t.Fatalf("DAI-Q sent %d join messages, want 30", daiq)
	}
}

// --- Query grouping (Section 4.3.5) ----------------------------------------

func TestGroupedQueriesShareJoinMessages(t *testing.T) {
	env := newTestEnv(t, 64, Config{Algorithm: SAI, Strategy: StrategyLeft})
	// Five queries with the same join condition but different selects.
	for i := 0; i < 5; i++ {
		env.subscribe(t, i, fmt.Sprintf(`SELECT R.A, S.D FROM R, S WHERE R.B = S.E AND S.F >= %d`, 0))
	}
	env.net.Traffic().Reset()
	env.publish(t, 9, rTuple(env, 1, 7, 0))
	// One tuple triggers all five queries, which share one evaluator:
	// exactly one join message must leave the rewriter.
	if got := env.net.Traffic().Messages(kindJoin); got != 1 {
		t.Fatalf("join messages = %d, want 1 for a grouped condition", got)
	}
	env.publish(t, 10, sTuple(env, 3, 7, 9))
	if got := len(env.eng.Notifications()); got != 5 {
		t.Fatalf("notifications = %d, want 5", got)
	}
}

// --- Index-attribute strategies (Section 4.3.6) -----------------------------

func TestStrategyMinRatePicksQuietSide(t *testing.T) {
	env := newTestEnv(t, 64, Config{Algorithm: SAI, Strategy: StrategyMinRate})
	// Warm up arrival statistics: R is hot, S is quiet.
	for i := 0; i < 20; i++ {
		env.publish(t, i, rTuple(env, float64(i), float64(i), 0))
	}
	env.publish(t, 30, sTuple(env, 1, 1, 0))

	q := env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	// The query must be indexed under S.E (the quiet side): publishing more
	// R tuples must not trigger any rewriting.
	env.net.Traffic().Reset()
	env.publish(t, 40, rTuple(env, 1, 99, 0))
	if got := env.net.Traffic().Messages(kindJoin); got != 0 {
		t.Fatalf("query was triggered by the hot side: %d join messages", got)
	}
	env.publish(t, 41, sTuple(env, 2, 99, 0))
	if got := env.net.Traffic().Messages(kindJoin); got != 1 {
		t.Fatalf("quiet side did not trigger: %d join messages", got)
	}
	_ = q
}

func TestStrategyMinDomainPicksNarrowSide(t *testing.T) {
	env := newTestEnv(t, 64, Config{Algorithm: SAI, Strategy: StrategyMinDomain})
	// R.B takes 10 distinct values; S.E takes 2.
	for i := 0; i < 10; i++ {
		env.publish(t, i, rTuple(env, 0, float64(i), 0))
		env.publish(t, i+10, sTuple(env, 0, float64(i%2), 0))
	}
	env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	env.net.Traffic().Reset()
	// S (domain 2) must be the index side: R tuples do not trigger.
	env.publish(t, 30, rTuple(env, 1, 1, 0))
	if got := env.net.Traffic().Messages(kindJoin); got != 0 {
		t.Fatalf("wide side triggered: %d join messages", got)
	}
}

func TestStrategyProbeChargesTraffic(t *testing.T) {
	env := newTestEnv(t, 64, Config{Algorithm: SAI, Strategy: StrategyMinRate})
	env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	if got := env.net.Traffic().Messages(kindProbe); got != 2 {
		t.Fatalf("probe messages = %d, want 2 (one per candidate rewriter)", got)
	}
}

// --- Attribute-level replication (Section 4.7.2) ----------------------------

func TestReplicationSpreadsRewriterFiltering(t *testing.T) {
	run := func(k int) metrics.Distribution {
		env := newTestEnv(t, 128, Config{Algorithm: SAI, Strategy: StrategyLeft, ReplicationFactor: k, Seed: 5})
		env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 200; i++ {
			env.publish(t, rng.Intn(128), rTuple(env, float64(i), float64(rng.Intn(50)), 0))
		}
		return metrics.SummarizeInt(env.eng.RoleLoads(metrics.Rewriter, false))
	}
	plain := run(1)
	repl := run(4)
	if repl.Max >= plain.Max {
		t.Fatalf("replication did not reduce the hottest rewriter: max %v -> %v", plain.Max, repl.Max)
	}
	if repl.NonZero <= plain.NonZero {
		t.Fatalf("replication did not add rewriters: %d -> %d", plain.NonZero, repl.NonZero)
	}
}

func TestReplicationRaisesQueryStorage(t *testing.T) {
	run := func(k int) int64 {
		env := newTestEnv(t, 128, Config{Algorithm: SAI, Strategy: StrategyLeft, ReplicationFactor: k})
		for i := 0; i < 10; i++ {
			env.subscribe(t, i, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
		}
		var total int64
		for _, l := range env.eng.RoleLoads(metrics.Rewriter, true) {
			total += l
		}
		return total
	}
	if s1, s4 := run(1), run(4); s4 != 4*s1 {
		t.Fatalf("storage with k=4 is %d, want 4 x %d", s4, s1)
	}
}

func TestReplicationPreservesNotifications(t *testing.T) {
	for _, alg := range []Algorithm{SAI, DAIQ, DAIT} {
		t.Run(alg.String(), func(t *testing.T) {
			env := newTestEnv(t, 64, Config{Algorithm: alg, ReplicationFactor: 3})
			env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
			for i := 0; i < 5; i++ {
				env.publish(t, i, rTuple(env, float64(i), float64(i), 0))
				env.publish(t, i+5, sTuple(env, float64(i), float64(i), 0))
			}
			got := env.eng.Notifications()
			if len(got) != 5 {
				t.Fatalf("%d notifications, want 5: %v", len(got), got)
			}
			if len(dedup(contentKeys(got))) != 5 {
				t.Fatalf("duplicates under replication: %v", contentKeys(got))
			}
		})
	}
}

// --- Sliding window (Chapter 5 set-up) --------------------------------------

func TestWindowEvictionReducesStorage(t *testing.T) {
	env := newTestEnv(t, 64, Config{Algorithm: DAIQ, Window: 10})
	env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	for i := 0; i < 20; i++ {
		env.publish(t, i, sTuple(env, float64(i), float64(i), 0))
	}
	before := sum(env.eng.StorageLoads())
	env.net.Clock().Advance(100)
	env.eng.EvictExpired()
	after := sum(env.eng.StorageLoads())
	if after >= before {
		t.Fatalf("eviction did not reduce storage: %d -> %d", before, after)
	}
	// Only the stored queries (rewriter role) remain.
	var evalStorage int64
	for _, l := range env.eng.RoleLoads(metrics.Evaluator, true) {
		evalStorage += l
	}
	if evalStorage != 0 {
		t.Fatalf("evaluator storage after full eviction = %d, want 0", evalStorage)
	}
}

func TestWindowLimitsMatching(t *testing.T) {
	env := newTestEnv(t, 64, Config{Algorithm: SAI, Window: 5, Strategy: StrategyLeft})
	env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	env.publish(t, 1, sTuple(env, 1, 7, 0))
	env.net.Clock().Advance(50)
	env.eng.EvictExpired()
	// The S tuple fell out of the window: a new R tuple finds nothing.
	env.publish(t, 2, rTuple(env, 1, 7, 0))
	if got := env.eng.Notifications(); len(got) != 0 {
		t.Fatalf("expired tuple matched: %v", got)
	}
}

func TestEvictExpiredNoopWithoutWindow(t *testing.T) {
	env := newTestEnv(t, 16, Config{Algorithm: SAI})
	env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	env.publish(t, 1, sTuple(env, 1, 7, 0))
	before := sum(env.eng.StorageLoads())
	env.net.Clock().Advance(1000)
	env.eng.EvictExpired()
	if after := sum(env.eng.StorageLoads()); after != before {
		t.Fatalf("no-window eviction changed storage: %d -> %d", before, after)
	}
}

// --- Offline subscribers (Section 4.6) ---------------------------------------

func TestOfflineNotificationStoredAndReplayed(t *testing.T) {
	env := newTestEnv(t, 64, Config{Algorithm: SAI})
	subscriber := env.node(0)
	env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	env.publish(t, 1, rTuple(env, 1, 7, 0))

	// The subscriber disconnects before the match happens.
	env.net.Leave(subscriber)
	env.publish(t, 2, sTuple(env, 2, 7, 0))
	if got := env.eng.Notifications(); len(got) != 0 {
		t.Fatalf("notification delivered to offline subscriber: %v", got)
	}

	// Reconnect with the same key: Chord hands over the stored
	// notifications with the keys in (pred, n].
	re, err := env.net.Join(subscriber.Key())
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	env.eng.Attach(re)
	// Attach happens after the join's key hand-off in this test, so the
	// hand-off went to the lazily attached state; trigger replay through a
	// second hand-off cycle is unnecessary because Attach precedes Join in
	// production use. Verify delivery happened during the join:
	got := env.eng.Notifications()
	if len(got) != 1 {
		t.Fatalf("stored notification not replayed on rejoin: %v", got)
	}
	if got[0].DeliveredAt == 0 {
		t.Fatal("replayed notification missing delivery time")
	}
}

func sum(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}
