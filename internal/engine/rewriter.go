package engine

import (
	"cqjoin/internal/chord"
	"cqjoin/internal/metrics"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
)

// This file implements the attribute level of the two-level indexing
// scheme: the rewriter role (Sections 4.3.1, 4.3.2, 4.4.1, 4.5). A
// rewriter stores queries in its ALQT and, when an incoming tuple triggers
// them, rewrites the join queries into select-project queries and reindexes
// them at the value level where evaluators compute the join.

// handleQueryIndex stores an arriving query in the local ALQT, grouped by
// equivalent join condition (Section 4.3.5).
func (st *nodeState) handleQueryIndex(m queryMsg) {
	input := alInput(m.Q.Rel(m.Side).Name(), m.Attr, m.Replica)
	cond := m.Q.ConditionKey()

	st.mu.Lock()
	b := st.alqt[input]
	if b == nil {
		b = newALBucket(input)
		st.alqt[input] = b
	}
	g := b.byCond[cond]
	if g == nil {
		g = &queryGroup{cond: cond, side: m.Side}
		b.byCond[cond] = g
		b.condOrder = append(b.condOrder, cond)
	}
	// A duplicated query() delivery must not register the query twice —
	// it would inflate the group and double every future rewrite.
	for _, q := range g.queries {
		if q.Key() == m.Q.Key() {
			st.mu.Unlock()
			st.load.AddFiltering(metrics.Rewriter, 1)
			st.engine.net.Traffic().RecordDuplicate(m.Kind())
			return
		}
	}
	g.queries = append(g.queries, m.Q)
	st.mu.Unlock()

	st.load.AddFiltering(metrics.Rewriter, 1)
	st.load.AddStorage(metrics.Rewriter, 1)
}

// outbound is a rewritten-query message bound for one value-level
// identifier.
type outbound struct {
	input string
	msg   chord.Message
}

// handleALIndex processes a tuple arriving at the attribute level
// (Section 4.3.2): the rewriter finds the triggered queries in one step via
// the two-level ALQT, rewrites each triggered group, and reindexes the
// rewritten queries at the value level — one join message per group, since
// all queries of a group share the same evaluator for a given tuple
// (Section 4.3.5). Tuples are never stored at the attribute level.
func (st *nodeState) handleALIndex(m alIndexMsg) {
	e := st.engine
	t := m.T
	rel := t.Relation()
	input := alInput(rel, m.Attr, m.Replica)
	v := t.MustValue(m.Attr)

	var outs []outbound
	examined := 0

	st.mu.Lock()
	b := st.alqt[input]
	if b == nil {
		b = newALBucket(input)
		st.alqt[input] = b
	}
	// Track arrival statistics for the Section 4.3.6 strategies.
	b.arrivals = append(b.arrivals, t.PubT())
	b.distinct[v.Canon()] = struct{}{}

	// Iterate groups in registration order, not map order: the sequence of
	// outgoing join messages must be deterministic for a chaos run to be
	// reproducible from its seed.
	for _, cond := range b.condOrder {
		g := b.byCond[cond]
		if g == nil {
			// Retraction removed the group; its order slot stays behind.
			continue
		}
		var triggered []*query.Query
		for _, q := range g.queries {
			examined++
			if t.PubT() < q.InsT() {
				continue
			}
			if ok, err := q.FiltersPass(t); err != nil || !ok {
				continue
			}
			triggered = append(triggered, q)
		}
		if len(triggered) == 0 {
			continue
		}
		switch e.cfg.Algorithm {
		case SAI, DAIQ, DAIT:
			if out, ok := st.rewriteGroup(b, g, triggered, t); ok {
				outs = append(outs, out)
			}
		case DAIV:
			outs = append(outs, rewriteGroupV(g, triggered, t, e.cfg.DAIVKeyed)...)
		}
	}
	// Multi-way chain queries indexed at this bucket (Chapter 7 extension).
	mOuts, mExamined := st.triggerMulti(b, t)
	outs = append(outs, mOuts...)
	examined += mExamined
	st.mu.Unlock()

	st.load.AddFiltering(metrics.Rewriter, 1+examined)
	st.sendJoins(outs)
}

// rewriteGroup rewrites one triggered group for the T1 algorithms
// (Section 4.3.2): the index side of the join condition is evaluated over
// the tuple, the load-distributing side is solved for its attribute
// (valDA), and one join message carrying the group's rewritten queries is
// addressed to the evaluator Successor(Hash(DisR + DisA + valDA)). The
// caller holds st.mu.
func (st *nodeState) rewriteGroup(b *alBucket, g *queryGroup, triggered []*query.Query, t *relation.Tuple) (outbound, bool) {
	rep := triggered[0] // the group shares one join condition
	vSide, err := rep.EvalSide(g.side, t)
	if err != nil {
		return outbound{}, false
	}
	valDA, err := rep.InvertSide(g.side.Other(), vSide)
	if err != nil {
		// The equality has no solution for this tuple (e.g. c/x = 0):
		// nothing can ever match it.
		return outbound{}, false
	}
	wantRel := rep.Rel(g.side.Other()).Name()
	wantAttr, err := rep.SingleAttr(g.side.Other())
	if err != nil {
		return outbound{}, false
	}

	target := vlInput(wantRel, wantAttr, valDA)
	storesRewrites := st.engine.cfg.Algorithm == SAI || st.engine.cfg.Algorithm == DAIT

	var rws []*rewritten
	for _, q := range triggered {
		key, err := q.RewriteKey(t, valDA)
		if err != nil {
			continue
		}
		if storesRewrites {
			// Remember where this query's rewrites live so a retraction
			// can purge them (unsubscribe.go).
			ts := b.sentTargets[q.Key()]
			if ts == nil {
				ts = make(map[string]struct{})
				b.sentTargets[q.Key()] = ts
			}
			ts[target] = struct{}{}
		}
		if st.engine.cfg.Algorithm == DAIT {
			// Section 4.4.3: a rewriter never reindexes the same rewritten
			// query twice — evaluators store them.
			if b.sentRewrites[key] {
				continue
			}
			b.sentRewrites[key] = true
		}
		proj, err := t.Project(q.NeededAttrs(t.Relation()))
		if err != nil {
			continue
		}
		rws = append(rws, &rewritten{
			Key:       key,
			Orig:      q,
			IndexSide: g.side,
			Trigger:   proj,
			WantRel:   wantRel,
			WantAttr:  wantAttr,
			WantValue: valDA,
		})
	}
	if len(rws) == 0 {
		return outbound{}, false
	}
	return outbound{input: target, msg: joinMsg{Rewrites: rws}}, true
}

// rewriteGroupV rewrites one triggered group for DAI-V (Section 4.5): the
// evaluator identifier is the value valJC the join condition must take,
// and the message carries the triggering tuple so the evaluator can both
// match and store it. The full tuple is shipped rather than a per-group
// projection so that equivalent groups indexed under different attributes
// agree on the stored form (see DESIGN.md).
//
// With the keyed extension (Section 4.5's VIndex = Key(q) + valJC) every
// query gets its own evaluator identifier: the group splinters into one
// message per query — better load spread and a more expressive scheme, at
// a traffic cost that grows with the number of indexed queries (the thesis
// reports roughly a factor of 250 at 10^4 nodes and 10^5 queries).
func rewriteGroupV(g *queryGroup, triggered []*query.Query, t *relation.Tuple, keyed bool) []outbound {
	vJC, err := triggered[0].EvalSide(g.side, t)
	if err != nil {
		return nil
	}
	if !keyed {
		return []outbound{{
			input: daivInput(vJC),
			msg: joinVMsg{
				Input:   daivInput(vJC),
				Cond:    g.cond,
				Side:    g.side,
				Value:   vJC,
				Trigger: t,
				Queries: triggered,
			},
		}}
	}
	outs := make([]outbound, 0, len(triggered))
	for _, q := range triggered {
		input := q.Key() + "+" + daivInput(vJC)
		outs = append(outs, outbound{
			input: input,
			msg: joinVMsg{
				Input:   input,
				Cond:    g.cond,
				Side:    g.side,
				Value:   vJC,
				Trigger: t,
				Queries: []*query.Query{q},
			},
		})
	}
	return outs
}

// sendJoins routes rewritten-query messages to their evaluators. With the
// JFRT enabled (Section 4.7.1) a cached evaluator is reached in one direct
// hop; misses pay the O(log N) lookup and populate the cache. Without the
// JFRT the whole batch goes through one multisend.
func (st *nodeState) sendJoins(outs []outbound) {
	if len(outs) == 0 {
		return
	}
	e := st.engine
	if e.cfg.UseJFRT {
		// Cache hits are grouped per recipient node (Section 4.3.5's
		// grouping applied to direct delivery): one physical message and
		// one hop per warm destination, regardless of how many rewritten
		// groups it carries.
		var misses []outbound
		var hitOrder []*chord.Node
		hits := make(map[*chord.Node][]outbound)
		for _, o := range outs {
			dst, ok := st.jfrt.lookup(o.input)
			if !ok {
				misses = append(misses, o)
				continue
			}
			if _, seen := hits[dst]; !seen {
				hitOrder = append(hitOrder, dst)
			}
			hits[dst] = append(hits[dst], o)
		}
		for _, dst := range hitOrder {
			group := hits[dst]
			var msg chord.Message
			if len(group) == 1 {
				msg = group[0].msg
			} else {
				msgs := make([]chord.Message, len(group))
				for i, o := range group {
					msgs[i] = o.msg
				}
				msg = joinBatch{Msgs: msgs}
			}
			if !st.node.DirectSend(msg, dst) {
				// The cached "join finger" no longer answers — dead node,
				// dropped packet or moved identifier. Invalidate the
				// entries and fall back to DHT routing for the whole
				// group, which re-learns the evaluators on the way.
				for _, o := range group {
					st.jfrt.invalidate(o.input)
				}
				misses = append(misses, group...)
			}
		}
		// Misses travel in the normal recursive multisend; each previously
		// unseen evaluator acknowledges with one direct hop carrying its
		// address, which populates the cache (the "join fingers").
		if len(misses) > 0 {
			batch := make([]chord.Deliverable, len(misses))
			for i, o := range misses {
				batch[i] = chord.Deliverable{Target: e.hashInput(o.input), Msg: o.msg}
			}
			recipients, _, err := st.node.Multisend(batch)
			recipients = e.retryFailed(st.node, batch, recipients)
			if err == nil || e.cfg.MaxRetries > 0 {
				acked := make(map[*chord.Node]bool)
				for i, dst := range recipients {
					if dst == nil {
						continue
					}
					st.jfrt.store(misses[i].input, dst)
					if !acked[dst] {
						acked[dst] = true
						e.net.Traffic().Record("join-ack", 1)
					}
				}
			}
		}
		return
	}
	batch := make([]chord.Deliverable, len(outs))
	for i, o := range outs {
		batch[i] = chord.Deliverable{Target: e.hashInput(o.input), Msg: o.msg}
	}
	// Best-effort (Section 3.2): an unroutable overlay drops the batch.
	// With retries configured, unacked deliverables are re-sent.
	var recipients []*chord.Node
	if e.cfg.IterativeMultisend {
		recipients, _, _ = st.node.MultisendIterative(batch)
	} else {
		recipients, _, _ = st.node.Multisend(batch)
	}
	e.retryFailed(st.node, batch, recipients)
}
