package engine

import (
	"testing"
)

// Section 4.6: a subscriber that reconnects under a new IP address is first
// reached through the DHT (O(log N) hops); it replies with its new address
// and subsequent notifications take the one-hop direct path again.
func TestNotificationAfterIPChange(t *testing.T) {
	env := newTestEnv(t, 128, Config{Algorithm: SAI, Strategy: StrategyLeft})
	sub := env.node(0)
	env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)

	// First match: direct path, 1 hop.
	env.publish(t, 1, rTuple(env, 1, 7, 0))
	env.publish(t, 2, sTuple(env, 2, 7, 0))
	if got := env.net.Traffic().Hops(kindNotify); got != 1 {
		t.Fatalf("initial delivery hops = %d, want 1", got)
	}
	if got := env.net.Traffic().Messages("ip-update"); got != 0 {
		t.Fatalf("ip-update before any change: %d", got)
	}

	// The subscriber moves to a new address.
	sub.SetIP("sim://elsewhere")

	env.net.Traffic().Reset()
	env.publish(t, 3, sTuple(env, 3, 7, 0))
	if got := len(env.eng.Notifications()); got != 2 {
		t.Fatalf("notifications = %d, want 2", got)
	}
	// The stale-address delivery went through the DHT...
	if got := env.net.Traffic().Hops(kindNotify); got <= 1 {
		t.Fatalf("stale-IP delivery hops = %d, want > 1 (DHT route)", got)
	}
	// ...and the subscriber sent its new address back.
	if got := env.net.Traffic().Messages("ip-update"); got != 1 {
		t.Fatalf("ip-update messages = %d, want 1", got)
	}

	// The evaluator learned the address: the next delivery is direct again.
	env.net.Traffic().Reset()
	env.publish(t, 4, sTuple(env, 4, 7, 0))
	if got := env.net.Traffic().Hops(kindNotify); got != 1 {
		t.Fatalf("post-learning delivery hops = %d, want 1", got)
	}
	if got := env.net.Traffic().Messages("ip-update"); got != 0 {
		t.Fatalf("redundant ip-update: %d", got)
	}
}

// Notifications for several subscribers created by one event are grouped
// into one message per receiver (Section 4.6).
func TestNotificationGroupingPerSubscriber(t *testing.T) {
	env := newTestEnv(t, 64, Config{Algorithm: SAI, Strategy: StrategyLeft})
	// Two subscribers, same condition, two queries each.
	for i := 0; i < 2; i++ {
		env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
		env.subscribe(t, 1, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	}
	env.publish(t, 5, rTuple(env, 1, 7, 0))
	env.net.Traffic().Reset()
	env.publish(t, 6, sTuple(env, 2, 7, 0))
	// Four notifications (two per subscriber) but only two messages.
	if got := len(env.eng.Notifications()); got != 4 {
		t.Fatalf("notifications = %d, want 4", got)
	}
	if got := env.net.Traffic().Messages(kindNotify); got != 2 {
		t.Fatalf("notification messages = %d, want 2 (grouped per subscriber)", got)
	}
}

func TestNotificationStringAndContentKey(t *testing.T) {
	env := newTestEnv(t, 32, Config{Algorithm: SAI})
	env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	env.publish(t, 1, rTuple(env, 1, 7, 0))
	env.publish(t, 2, sTuple(env, 2, 7, 0))
	ns := env.eng.Notifications()
	if len(ns) != 1 {
		t.Fatalf("notifications = %d", len(ns))
	}
	n := ns[0]
	if n.String() == "" || n.ContentKey() == "" {
		t.Fatal("empty rendering")
	}
	// ContentKey distinguishes values.
	other := ns[0]
	other.Values = nil
	if n.ContentKey() == other.ContentKey() {
		t.Fatal("content key ignores values")
	}
}
