package engine

import "cqjoin/internal/obs"

// engObs bundles the engine's pre-created metric handles. The handles are
// interned once at engine construction so the hot paths (message dispatch,
// notification delivery, retries) record with a single atomic add and no
// map lookups. With no registry configured every handle is nil and each
// record call is one predicate on a nil receiver — recording never feeds
// back into protocol decisions, so runs are bit-identical either way.
type engObs struct {
	// handled counts messages dispatched by nodeState.HandleMessage, by
	// wire kind — the engine-side mirror of the overlay's delivery counts.
	handled *obs.CounterVec
	// notifyDelivered counts notifications consumed by their subscriber;
	// notifyStored counts notifications parked at Successor(Id(n)) for an
	// offline subscriber; notifyReplayed counts stored notifications handed
	// over on reconnect (Section 4.6 of the paper).
	notifyDelivered *obs.Counter
	notifyStored    *obs.Counter
	notifyReplayed  *obs.Counter
	// retries and lost count the reliability layer's re-sends and
	// exhausted-budget losses, by message kind.
	retries *obs.CounterVec
	lost    *obs.CounterVec
	// Hot-key sharding (DESIGN.md §13): registry transitions and the relay
	// frames the base evaluator emits for promoted inputs, by kind.
	hotPromotions  *obs.Counter
	hotDemotions   *obs.Counter
	hotEscalations *obs.Counter
	hotForwards    *obs.CounterVec
}

// newEngObs registers the engine's metric families on reg; a nil registry
// yields the all-nil zero handle set.
func newEngObs(reg *obs.Registry) engObs {
	if reg == nil {
		return engObs{}
	}
	return engObs{
		handled:         reg.CounterVec("engine.handled"),
		notifyDelivered: reg.Counter("engine.notify.delivered"),
		notifyStored:    reg.Counter("engine.notify.stored"),
		notifyReplayed:  reg.Counter("engine.notify.replayed"),
		retries:         reg.CounterVec("engine.retries"),
		lost:            reg.CounterVec("engine.lost"),
		hotPromotions:   reg.Counter("engine.hotkey.promotions"),
		hotDemotions:    reg.Counter("engine.hotkey.demotions"),
		hotEscalations:  reg.Counter("engine.hotkey.escalations"),
		hotForwards:     reg.CounterVec("engine.hotkey.forwards"),
	}
}
