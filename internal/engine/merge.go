package engine

import "sort"

// Bucket merge helpers for key hand-off (TransferKeys). During churn a
// node can receive deliveries for an input it is not the converged owner
// of — stale routing creates a bucket for that input at the wrong node.
// When ownership is later handed over, the incoming bucket must merge with
// whatever the destination already accumulated; overwriting would lose
// state and duplicating would double future matches. Every helper is
// idempotent under re-merge (items are keyed), returns the number of items
// actually added for storage-load accounting, and iterates in
// deterministic order so hand-offs don't perturb a seeded chaos trace.
// Callers hold dst.mu.

// condsOf lists a bucket's condition keys in registration order, followed
// by any stragglers (buckets built by paths that don't track order) sorted.
func condsOf(byCond map[string]*queryGroup, order []string) []string {
	seen := make(map[string]bool, len(order))
	out := make([]string, 0, len(byCond))
	for _, c := range order {
		if byCond[c] != nil && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	var rest []string
	for c := range byCond {
		if !seen[c] {
			rest = append(rest, c)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

func (st *nodeState) mergeAL(b *alBucket) int {
	ex := st.alqt[b.input]
	if ex == nil {
		st.alqt[b.input] = b
		return b.storedItems()
	}
	added := 0
	for _, cond := range condsOf(b.byCond, b.condOrder) {
		g := b.byCond[cond]
		eg := ex.byCond[cond]
		if eg == nil {
			eg = &queryGroup{cond: cond, side: g.side}
			ex.byCond[cond] = eg
			ex.condOrder = append(ex.condOrder, cond)
		}
		have := make(map[string]bool, len(eg.queries))
		for _, q := range eg.queries {
			have[q.Key()] = true
		}
		for _, q := range g.queries {
			if !have[q.Key()] {
				have[q.Key()] = true
				eg.queries = append(eg.queries, q)
				added++
			}
		}
	}
	mconds := make([]string, 0, len(b.multi))
	for c := range b.multi {
		mconds = append(mconds, c)
	}
	sort.Strings(mconds)
	for _, cond := range mconds {
		g := b.multi[cond]
		eg := ex.multi[cond]
		if eg == nil {
			eg = &mGroup{cond: cond}
			ex.multi[cond] = eg
		}
		have := make(map[string]bool, len(eg.queries))
		for _, q := range eg.queries {
			have[q.Key()] = true
		}
		for _, q := range g.queries {
			if !have[q.Key()] {
				have[q.Key()] = true
				eg.queries = append(eg.queries, q)
				added++
			}
		}
	}
	ex.arrivals = append(ex.arrivals, b.arrivals...)
	for v := range b.distinct {
		ex.distinct[v] = struct{}{}
	}
	for k := range b.sentRewrites {
		ex.sentRewrites[k] = true
	}
	for qk, targets := range b.sentTargets {
		ts := ex.sentTargets[qk]
		if ts == nil {
			ts = make(map[string]struct{}, len(targets))
			ex.sentTargets[qk] = ts
		}
		for t := range targets {
			ts[t] = struct{}{}
		}
	}
	return added
}

func (st *nodeState) mergeVLQT(b *vlqtBucket) int {
	ex := st.vlqt[b.input]
	if ex == nil {
		st.vlqt[b.input] = b
		return len(b.byKey)
	}
	added := 0
	for _, sr := range b.sorted {
		if esr, dup := ex.byKey[sr.rw.Key]; dup {
			esr.times = append(esr.times, sr.times...)
			continue
		}
		ex.byKey[sr.rw.Key] = sr
		ex.sorted = append(ex.sorted, sr)
		added++
	}
	return added
}

func (st *nodeState) mergeMVLQT(b *mvlqtBucket) int {
	ex := st.mvlqt[b.input]
	if ex == nil {
		st.mvlqt[b.input] = b
		return len(b.rewrites)
	}
	have := make(map[string]bool, len(ex.rewrites))
	for _, rw := range ex.rewrites {
		have[rw.Key] = true
	}
	added := 0
	for _, rw := range b.rewrites {
		if !have[rw.Key] {
			have[rw.Key] = true
			ex.rewrites = append(ex.rewrites, rw)
			added++
		}
	}
	for key, targets := range b.sentTargets {
		ts := ex.sentTargets[key]
		if ts == nil {
			if ex.sentTargets == nil {
				ex.sentTargets = make(map[string]map[string]struct{})
			}
			ex.sentTargets[key] = targets
			continue
		}
		for t := range targets {
			ts[t] = struct{}{}
		}
	}
	return added
}

func (st *nodeState) mergeVLTT(b *vlttBucket) int {
	ex := st.vltt[b.input]
	if ex == nil {
		if b.seen == nil {
			b.seen = make(map[string]bool, len(b.tuples))
			for _, t := range b.tuples {
				b.seen[tupleContentKey(t)] = true
			}
		}
		st.vltt[b.input] = b
		return len(b.tuples)
	}
	if ex.seen == nil {
		ex.seen = make(map[string]bool, len(ex.tuples))
		for _, t := range ex.tuples {
			ex.seen[tupleContentKey(t)] = true
		}
	}
	added := 0
	for _, t := range b.tuples {
		if ck := tupleContentKey(t); !ex.seen[ck] {
			ex.seen[ck] = true
			ex.tuples = append(ex.tuples, t)
			added++
		}
	}
	return added
}

func (st *nodeState) mergeDAIV(b *daivBucket) int {
	ex := st.vstore[b.input]
	if ex == nil {
		st.vstore[b.input] = b
		return b.storedItems()
	}
	conds := make([]string, 0, len(b.byCond))
	for c := range b.byCond {
		conds = append(conds, c)
	}
	sort.Strings(conds)
	added := 0
	for _, cond := range conds {
		entry := b.byCond[cond]
		eentry := ex.byCond[cond]
		if eentry == nil {
			ex.byCond[cond] = entry
			added += len(entry.tuples[0]) + len(entry.tuples[1])
			continue
		}
		for side := 0; side < 2; side++ {
			for _, t := range entry.tuples[side] {
				if ck := tupleContentKey(t); !eentry.seen[ck] {
					eentry.seen[ck] = true
					eentry.tuples[side] = append(eentry.tuples[side], t)
					added++
				}
			}
		}
	}
	return added
}

func (st *nodeState) mergePair(b *pairBucket) int {
	ex := st.pairStore[b.input]
	if ex == nil {
		st.pairStore[b.input] = b
		return len(b.tuples[0]) + len(b.tuples[1]) + b.storedQueries()
	}
	added := 0
	for _, cond := range condsOf(b.byCond, nil) {
		g := b.byCond[cond]
		eg := ex.byCond[cond]
		if eg == nil {
			eg = &queryGroup{cond: cond, side: g.side}
			ex.byCond[cond] = eg
		}
		have := make(map[string]bool, len(eg.queries))
		for _, q := range eg.queries {
			have[q.Key()] = true
		}
		for _, q := range g.queries {
			if !have[q.Key()] {
				have[q.Key()] = true
				eg.queries = append(eg.queries, q)
				added++
			}
		}
	}
	for side := 0; side < 2; side++ {
		for _, t := range b.tuples[side] {
			if ck := tupleContentKey(t); !ex.seen[ck] {
				ex.seen[ck] = true
				ex.tuples[side] = append(ex.tuples[side], t)
				added++
			}
		}
	}
	return added
}
