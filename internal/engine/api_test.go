package engine

import (
	"testing"

	"cqjoin/internal/query"
	"cqjoin/internal/relation"
)

func TestEngineAccessors(t *testing.T) {
	env := newTestEnv(t, 16, Config{Algorithm: DAIT, UseJFRT: true, Window: 9})
	cfg := env.eng.Config()
	if cfg.Algorithm != DAIT || !cfg.UseJFRT || cfg.Window != 9 {
		t.Fatalf("Config() = %+v", cfg)
	}
	if env.eng.Network() != env.net {
		t.Fatal("Network() wrong")
	}
}

func TestOnNotifyCallbackAndReset(t *testing.T) {
	env := newTestEnv(t, 32, Config{Algorithm: SAI})
	var calls int
	env.eng.OnNotify(func(Notification) { calls++ })
	env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	env.publish(t, 1, rTuple(env, 1, 7, 0))
	env.publish(t, 2, sTuple(env, 2, 7, 0))
	if calls != 1 {
		t.Fatalf("callback calls = %d, want 1", calls)
	}
	env.eng.ResetNotifications()
	if got := env.eng.Notifications(); len(got) != 0 {
		t.Fatalf("ResetNotifications left %d entries", len(got))
	}
	// The callback keeps firing after a reset.
	env.publish(t, 3, sTuple(env, 3, 7, 0))
	if calls != 2 {
		t.Fatalf("callback calls = %d, want 2", calls)
	}
}

func TestLoadAccessorsAndReset(t *testing.T) {
	env := newTestEnv(t, 24, Config{Algorithm: SAI})
	env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	env.publish(t, 1, rTuple(env, 1, 7, 0))
	if sum(env.eng.FilteringLoads()) == 0 {
		t.Fatal("FilteringLoads all zero")
	}
	if sum(env.eng.StorageLoads()) == 0 {
		t.Fatal("StorageLoads all zero")
	}
	if got := len(env.eng.FilteringLoads()); got != 24 {
		t.Fatalf("loads length = %d, want one per node", got)
	}
	env.eng.ResetLoads()
	if sum(env.eng.FilteringLoads())+sum(env.eng.StorageLoads()) != 0 {
		t.Fatal("ResetLoads left residue")
	}
}

func TestPublishErrorPaths(t *testing.T) {
	env := newTestEnv(t, 16, Config{Algorithm: SAI})
	foreign := relation.MustTuple(relation.MustSchema("Foreign", "X"), relation.N(1))
	if _, err := env.eng.Publish(env.node(0), foreign); err == nil {
		t.Fatal("unknown relation accepted")
	}
	dead := env.node(3)
	env.net.Fail(dead)
	env.net.RepairAll()
	if _, err := env.eng.Publish(dead, rTuple(env, 1, 2, 3)); err == nil {
		t.Fatal("publish from dead node accepted")
	}
	if _, err := env.eng.Subscribe(dead, query.MustParse(env.catalog, `SELECT R.A FROM R, S WHERE R.B = S.E`)); err == nil {
		t.Fatal("subscribe from dead node accepted")
	}
}

func TestStrategyStrings(t *testing.T) {
	want := map[Strategy]string{
		StrategyRandom:    "random",
		StrategyMinRate:   "min-rate",
		StrategyMinDomain: "min-domain",
		StrategyLeft:      "left",
		Strategy(99):      "unknown",
	}
	for s, name := range want {
		if s.String() != name {
			t.Fatalf("Strategy(%d).String() = %q, want %q", s, s.String(), name)
		}
	}
	if Algorithm(99).String() == "" {
		t.Fatal("unknown algorithm renders empty")
	}
}

// BaselinePair sites must honor the sliding window too.
func TestPairBaselineWindowEviction(t *testing.T) {
	env := newTestEnv(t, 24, Config{Algorithm: BaselinePair, Window: 5})
	env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	env.publish(t, 1, rTuple(env, 1, 7, 0))
	before := sum(env.eng.StorageLoads())
	env.net.Clock().Advance(100)
	env.eng.EvictExpired()
	after := sum(env.eng.StorageLoads())
	if after >= before {
		t.Fatalf("pair eviction did not reduce storage: %d -> %d", before, after)
	}
	env.publish(t, 2, sTuple(env, 2, 7, 0))
	if got := env.eng.Notifications(); len(got) != 0 {
		t.Fatalf("expired pair tuple matched: %v", got)
	}
}

// Pair-baseline state must survive churn hand-offs (exercises the
// pairStore branch of TransferKeys).
func TestPairBaselineSurvivesChurn(t *testing.T) {
	env := newTestEnv(t, 24, Config{Algorithm: BaselinePair})
	env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	env.publish(t, 1, rTuple(env, 1, 7, 0))
	for i := 0; i < 6; i++ {
		n, err := env.net.Join("pair-late-" + string(rune('a'+i)))
		if err != nil {
			t.Fatal(err)
		}
		env.eng.Attach(n)
	}
	nodes := env.net.Nodes()
	env.net.Leave(nodes[5])
	env.net.Leave(nodes[11])
	env.publish(t, 2, sTuple(env, 2, 7, 0))
	if got := env.eng.Notifications(); len(got) != 1 {
		t.Fatalf("%d notifications after pair churn, want 1", len(got))
	}
}
