package engine

import (
	"sync"

	"cqjoin/internal/id"
)

// idCache memoizes id.Hash over the recurring identifier inputs of the
// publish hot path: attribute-level inputs ("R+A"), value-level inputs
// ("R+A+v") and replica assignments. Under a skewed workload the same
// inputs recur constantly, and a SHA-1 over a freshly concatenated string
// per occurrence dominated indexTuple profiles; the cache turns the common
// case into one map hit. It is semantically transparent — it returns
// exactly id.Hash(input) — and bounded: when full it is dropped and
// restarted rather than evicted, which keeps the zero-contention fast path
// a plain map read.
type idCache struct {
	mu sync.Mutex
	m  map[string]id.ID
}

// idCacheMax bounds the cache; 64k entries of (string, 20-byte ID) is a few
// MB at worst, far above what any experiment's identifier population needs.
const idCacheMax = 1 << 16

func (c *idCache) hash(input string) id.ID {
	c.mu.Lock()
	if h, ok := c.m[input]; ok {
		c.mu.Unlock()
		return h
	}
	c.mu.Unlock()
	// Hash outside the lock: SHA-1 is the expensive part, and concurrent
	// misses on the same input compute the same answer.
	h := id.HashBytes([]byte(input))
	c.mu.Lock()
	if c.m == nil || len(c.m) >= idCacheMax {
		c.m = make(map[string]id.ID, 1024)
	}
	c.m[input] = h
	c.mu.Unlock()
	return h
}

// hashInput returns id.Hash(input) through the engine's identifier cache.
func (e *Engine) hashInput(input string) id.ID { return e.ids.hash(input) }
