package engine

import (
	"sync"

	"cqjoin/internal/chord"
)

// jfrtCache is the Join Fingers Routing Table of Section 4.7.1. A rewriter
// repeatedly reindexes rewritten queries to the same evaluators: the same
// (relation, attribute, value) identifier recurs whenever tuples carry
// recurring join values. The JFRT caches the evaluator node responsible
// for each value-level identifier the rewriter has already looked up, so a
// repeat reindexing costs a single direct hop instead of an O(log N)
// overlay lookup. Entries are soft state: a cached node that has left the
// overlay is dropped and the next reindexing repopulates the entry through
// a normal lookup.
type jfrtCache struct {
	mu      sync.Mutex
	entries map[string]*chord.Node
	hits    int64
	misses  int64
}

func newJFRTCache() *jfrtCache {
	return &jfrtCache{entries: make(map[string]*chord.Node)}
}

// lookup returns the cached evaluator for the value-level input, when still
// alive.
func (c *jfrtCache) lookup(input string) (*chord.Node, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.entries[input]
	if !ok {
		c.misses++
		return nil, false
	}
	if !n.Alive() {
		delete(c.entries, input)
		c.misses++
		return nil, false
	}
	c.hits++
	return n, true
}

// store records the evaluator learned from a routed lookup.
func (c *jfrtCache) store(input string, n *chord.Node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[input] = n
}

// invalidate drops a cached evaluator that failed to answer a direct send,
// forcing the next reindexing of the input through a DHT lookup.
func (c *jfrtCache) invalidate(input string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, input)
}

// stats reports hit/miss counts, used by the JFRT effectiveness bench.
func (c *jfrtCache) stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}

// JFRTStats aggregates Join Fingers Routing Table statistics across all
// nodes: total cache hits, misses and resident entries.
func (e *Engine) JFRTStats() (hits, misses int64, entries int) {
	e.mu.Lock()
	states := make([]*nodeState, 0, len(e.states))
	for _, st := range e.states {
		states = append(states, st)
	}
	e.mu.Unlock()
	for _, st := range states {
		h, m, s := st.jfrt.stats()
		hits += h
		misses += m
		entries += s
	}
	return hits, misses, entries
}
