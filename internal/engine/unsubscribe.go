package engine

import (
	"fmt"
	"strings"

	"cqjoin/internal/chord"
	"cqjoin/internal/id"
	"cqjoin/internal/metrics"
	"cqjoin/internal/query"
)

// Continuous queries are long-lived but not eternal; this file adds the
// removal path the paper leaves implicit. The subscriber (who knows where
// it indexed its query) retracts it from its rewriter(s); each rewriter
// drops it from the ALQT and purges the rewritten queries it had fanned
// out to evaluators, using the per-query target set it recorded while
// rewriting. Tuples stored at evaluators are shared state and stay.

// unsubMsg retracts one query at an attribute-level rewriter.
type unsubMsg struct {
	QueryKey string
	Cond     string
	Input    string // the rewriter's ALQT bucket key
}

func (unsubMsg) Kind() string { return "unsubscribe" }

// purgeMsg removes one query's stored rewrites at a value-level evaluator.
type purgeMsg struct {
	QueryKey string
	Input    string // the evaluator's VLQT bucket key
}

func (purgeMsg) Kind() string { return "unsubscribe" }

// Unsubscribe retracts a continuous query previously returned by
// Subscribe. After it returns, future tuple insertions can no longer
// trigger the query. Baseline algorithms do not support retraction.
func (e *Engine) Unsubscribe(from *chord.Node, q *query.Query) error {
	if !from.Alive() {
		return fmt.Errorf("engine: unsubscribe from departed node %s", from)
	}
	switch e.cfg.Algorithm {
	case SAI, DAIQ, DAIT, DAIV:
	default:
		return fmt.Errorf("engine: %s does not support unsubscribe", e.cfg.Algorithm)
	}
	e.mu.Lock()
	inputs, ok := e.subs[q.Key()]
	delete(e.subs, q.Key())
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("engine: unknown or already retracted query %s", q.Key())
	}
	batch := make([]chord.Deliverable, 0, len(inputs))
	for _, input := range inputs {
		batch = append(batch, chord.Deliverable{
			Target: id.Hash(input),
			Msg:    unsubMsg{QueryKey: q.Key(), Cond: q.ConditionKey(), Input: input},
		})
	}
	return e.dispatch(from, batch)
}

// UnsubscribeMulti retracts a continuous multi-way chain join previously
// returned by SubscribeMulti. The rewriter drops the chain from its ALQT
// and purges its stage-1 partial matches from the evaluators; each
// evaluator then cascades the purge down the pipeline along the per-query
// fan-out targets it recorded while forwarding (mvlqtBucket.sentTargets).
// Pass the *oriented* query SubscribeMulti returned — its key and chain
// condition are what the rewriters indexed.
func (e *Engine) UnsubscribeMulti(from *chord.Node, mq *query.MultiQuery) error {
	if !from.Alive() {
		return fmt.Errorf("engine: unsubscribe from departed node %s", from)
	}
	if e.cfg.Algorithm != SAI && e.cfg.Algorithm != DAIQ {
		return fmt.Errorf("engine: multi-way joins run under SAI or DAI-Q, not %s", e.cfg.Algorithm)
	}
	e.mu.Lock()
	inputs, ok := e.subs[mq.Key()]
	delete(e.subs, mq.Key())
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("engine: unknown or already retracted query %s", mq.Key())
	}
	batch := make([]chord.Deliverable, 0, len(inputs))
	for _, input := range inputs {
		batch = append(batch, chord.Deliverable{
			Target: id.Hash(input),
			Msg:    unsubMsg{QueryKey: mq.Key(), Cond: mq.ConditionKey(), Input: input},
		})
	}
	return e.dispatch(from, batch)
}

// handleUnsub removes the query from this rewriter's ALQT — two-way groups
// and multi-way chain groups alike — and purges its stored rewrites from
// every evaluator this rewriter fanned out to.
func (st *nodeState) handleUnsub(m unsubMsg) {
	var targets []string
	removed := 0

	st.mu.Lock()
	if b := st.alqt[m.Input]; b != nil {
		if g := b.byCond[m.Cond]; g != nil {
			kept := g.queries[:0]
			for _, q := range g.queries {
				if q.Key() == m.QueryKey {
					removed++
					continue
				}
				kept = append(kept, q)
			}
			g.queries = kept
			if len(g.queries) == 0 {
				delete(b.byCond, m.Cond)
			}
		}
		if g := b.multi[m.Cond]; g != nil {
			kept := g.queries[:0]
			for _, mq := range g.queries {
				if mq.Key() == m.QueryKey {
					removed++
					continue
				}
				kept = append(kept, mq)
			}
			g.queries = kept
			if len(g.queries) == 0 {
				delete(b.multi, m.Cond)
			}
		}
		for input := range b.sentTargets[m.QueryKey] {
			targets = append(targets, input)
		}
		delete(b.sentTargets, m.QueryKey)
		// Forget the reindex-once markers so a re-subscription of the same
		// subscriber sequence starts clean.
		prefix := m.QueryKey + "+"
		for k := range b.sentRewrites {
			if strings.HasPrefix(k, prefix) {
				delete(b.sentRewrites, k)
			}
		}
	}
	st.mu.Unlock()

	st.load.AddFiltering(metrics.Rewriter, 1)
	if removed > 0 {
		st.load.AddStorage(metrics.Rewriter, -removed)
	}
	if len(targets) == 0 {
		return
	}
	hot := st.engine.hotState()
	batch := make([]chord.Deliverable, 0, len(targets))
	for _, input := range targets {
		batch = append(batch, chord.Deliverable{
			Target: id.Hash(input),
			Msg:    purgeMsg{QueryKey: m.QueryKey, Input: input},
		})
		if hot == nil {
			continue
		}
		// A promoted target holds rewrite copies at every shard bucket; the
		// purge fans out to them too (DESIGN.md §13).
		if entry, promoted := hot.lookup(input); promoted {
			for s := 1; s < entry.k; s++ {
				shard := hotShardInput(input, s)
				batch = append(batch, chord.Deliverable{
					Target: id.Hash(shard),
					Msg:    purgeMsg{QueryKey: m.QueryKey, Input: shard},
				})
			}
		}
	}
	if st.engine.cfg.IterativeMultisend {
		_, _, _ = st.node.MultisendIterative(batch)
	} else {
		_, _, _ = st.node.Multisend(batch)
	}
}

// handlePurge drops the retracted query's stored rewrites from this
// evaluator's VLQT and its partial matches from the multi-way MVLQT. For
// multi-way chains the purge cascades: partial matches this evaluator
// already forwarded live at later pipeline stages, so the purge follows
// the recorded fan-out targets. The cascade terminates because each visit
// consumes its target record — a revisited bucket fans out nothing.
func (st *nodeState) handlePurge(m purgeMsg) {
	removed := 0
	prefix := m.QueryKey + "+"
	var cascade []string

	st.mu.Lock()
	if qb := st.vlqt[m.Input]; qb != nil {
		kept := qb.sorted[:0]
		for _, sr := range qb.sorted {
			if sr.rw.Orig.Key() == m.QueryKey || strings.HasPrefix(sr.rw.Key, prefix) {
				delete(qb.byKey, sr.rw.Key)
				removed++
				continue
			}
			kept = append(kept, sr)
		}
		qb.sorted = kept
		if len(qb.sorted) == 0 {
			delete(st.vlqt, m.Input)
		}
	}
	if mb := st.mvlqt[m.Input]; mb != nil {
		kept := mb.rewrites[:0]
		for _, rw := range mb.rewrites {
			if rw.Orig.Key() == m.QueryKey {
				removed++
				continue
			}
			kept = append(kept, rw)
		}
		mb.rewrites = kept
		for input := range mb.sentTargets[m.QueryKey] {
			cascade = append(cascade, input)
		}
		delete(mb.sentTargets, m.QueryKey)
		if len(mb.rewrites) == 0 && len(mb.sentTargets) == 0 {
			delete(st.mvlqt, m.Input)
		}
	}
	st.mu.Unlock()

	st.load.AddFiltering(metrics.Evaluator, 1)
	if removed > 0 {
		st.load.AddStorage(metrics.Evaluator, -removed)
	}
	if len(cascade) == 0 {
		return
	}
	batch := make([]chord.Deliverable, 0, len(cascade))
	for _, input := range cascade {
		batch = append(batch, chord.Deliverable{
			Target: id.Hash(input),
			Msg:    purgeMsg{QueryKey: m.QueryKey, Input: input},
		})
	}
	if st.engine.cfg.IterativeMultisend {
		_, _, _ = st.node.MultisendIterative(batch)
	} else {
		_, _, _ = st.node.Multisend(batch)
	}
}
