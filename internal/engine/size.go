package engine

// Wire sizes of the engine's messages (chord.Sizer). Each Size is the
// exact length of the message's encoding from codec.go — computed
// arithmetically by wiresize.go rather than by encoding, and verified
// against encodedLen in codec_test.go — so the byte ledger reports what a
// socket deployment would transmit without paying an encode per hop.

// Size reports the query(q, Id(n), IP(n)) message's wire size.
func (m queryMsg) Size() int { return wireSize(m) }

// Size reports the al-index(t, A) message's wire size.
func (m alIndexMsg) Size() int { return wireSize(m) }

// Size reports the vl-index(t, A) message's wire size.
func (m vlIndexMsg) Size() int { return wireSize(m) }

// Size reports the grouped join(q') message's wire size.
func (m joinMsg) Size() int { return wireSize(m) }

// Size reports DAI-V's join(q', t') message's wire size.
func (m joinVMsg) Size() int { return wireSize(m) }

// Size reports the grouped direct-delivery batch's wire size.
func (m joinBatch) Size() int { return wireSize(m) }

// Size reports a notification batch's wire size.
func (m notifyMsg) Size() int { return wireSize(m) }

// Size reports a strategy probe's wire size.
func (m probeMsg) Size() int { return wireSize(m) }

// Size reports a retraction message's wire size.
func (m unsubMsg) Size() int { return wireSize(m) }

// Size reports a purge message's wire size.
func (m purgeMsg) Size() int { return wireSize(m) }

// Size reports a baseline query message's wire size.
func (m baselineQueryMsg) Size() int { return wireSize(m) }

// Size reports a baseline tuple message's wire size.
func (m baselineTupleMsg) Size() int { return wireSize(m) }

// Size reports a baseline probe message's wire size.
func (m baselineProbeMsg) Size() int { return wireSize(m) }

// Size reports a multi-way query indexing message's wire size.
func (m mQueryMsg) Size() int { return wireSize(m) }

// Size reports a multi-way partial-match batch's wire size.
func (m mJoinMsg) Size() int { return wireSize(m) }

// Size reports a process-migration hand-off message's wire size.
func (m handoffMsg) Size() int { return wireSize(m) }

// Size reports a hot-key rewrite-scatter message's wire size.
func (m hotJoinMsg) Size() int { return wireSize(m) }

// Size reports a hot-key tuple-relay message's wire size.
func (m hotVLIndexMsg) Size() int { return wireSize(m) }

// Size reports a hot-key promotion/escalation migrate message's wire size.
func (m hotMigrateMsg) Size() int { return wireSize(m) }

// Size reports a hot-key shard-recall message's wire size.
func (m hotRecallMsg) Size() int { return wireSize(m) }

// Size reports a hot-key state hand-off message's wire size.
func (m hotHandoffMsg) Size() int { return wireSize(m) }
