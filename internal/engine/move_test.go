package engine

import (
	"testing"

	"cqjoin/internal/id"
	"cqjoin/internal/metrics"
	"cqjoin/internal/relation"
)

// The Section 4.7.2 identifier move: an underloaded peer takes over a hot
// rewriter identifier; the stored queries move with the arc and query
// processing continues seamlessly on the new owner.
func TestMoveNodeRelievesHotRewriter(t *testing.T) {
	env := newTestEnv(t, 64, Config{Algorithm: SAI, Strategy: StrategyLeft})
	env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)

	hotInput := "R+B"
	hotID := id.Hash(hotInput)
	oldOwner := env.net.OracleSuccessor(hotID)

	// Load the rewriter, then record its filtering load.
	for i := 0; i < 20; i++ {
		env.publish(t, i, rTuple(env, float64(i), float64(i%5), 0))
	}
	before := env.eng.LoadOf(oldOwner).Filtering(metrics.Rewriter)
	if before == 0 {
		t.Fatal("hot rewriter accrued no load; test set-up broken")
	}

	// Pick a helper that is not the owner and move it onto the hot
	// identifier.
	var helper = env.node(30)
	if helper == oldOwner {
		helper = env.node(31)
	}
	moved, err := env.eng.MoveNode(helper, hotID)
	if err != nil {
		t.Fatalf("MoveNode: %v", err)
	}
	if got := env.net.OracleSuccessor(hotID); got != moved {
		t.Fatalf("hot identifier owned by %s after move, want helper", got)
	}

	// New triggers land on the helper, not the old owner.
	oldBefore := env.eng.LoadOf(oldOwner).Filtering(metrics.Rewriter)
	for i := 0; i < 20; i++ {
		env.publish(t, i, rTuple(env, float64(100+i), float64(i%5), 0))
	}
	if got := env.eng.LoadOf(oldOwner).Filtering(metrics.Rewriter); got != oldBefore {
		t.Fatalf("old owner still accrues rewriter load: %d -> %d", oldBefore, got)
	}
	if got := env.eng.LoadOf(moved).Filtering(metrics.Rewriter); got == 0 {
		t.Fatal("helper accrued no rewriter load")
	}

	// The query moved with the arc: matching still works end to end.
	env.publish(t, 40, sTuple(env, 7, 3, 0))
	found := false
	for _, n := range env.eng.Notifications() {
		if n.RightPubT > 0 && n.Values[1].Equal(relation.N(7)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no notification matched after the move: %v", env.eng.Notifications())
	}
}
