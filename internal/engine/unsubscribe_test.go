package engine

import (
	"testing"

	"cqjoin/internal/metrics"
)

func TestUnsubscribeStopsNotifications(t *testing.T) {
	for _, alg := range []Algorithm{SAI, DAIQ, DAIT, DAIV} {
		t.Run(alg.String(), func(t *testing.T) {
			env := newTestEnv(t, 48, Config{Algorithm: alg, Seed: 1})
			q := env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
			env.publish(t, 1, rTuple(env, 1, 7, 0))
			env.publish(t, 2, sTuple(env, 2, 7, 0))
			if got := len(env.eng.Notifications()); got != 1 {
				t.Fatalf("before retraction: %d notifications", got)
			}
			if err := env.eng.Unsubscribe(env.node(0), q); err != nil {
				t.Fatalf("Unsubscribe: %v", err)
			}
			// Neither a fresh pair nor a partner for the old stored tuple
			// may notify now.
			env.publish(t, 3, sTuple(env, 3, 7, 0))
			env.publish(t, 4, rTuple(env, 4, 9, 0))
			env.publish(t, 5, sTuple(env, 5, 9, 0))
			if got := len(env.eng.Notifications()); got != 1 {
				t.Fatalf("after retraction: %d notifications, want still 1", got)
			}
		})
	}
}

func TestUnsubscribeReclaimsStorage(t *testing.T) {
	for _, alg := range []Algorithm{SAI, DAIT} {
		t.Run(alg.String(), func(t *testing.T) {
			env := newTestEnv(t, 48, Config{Algorithm: alg, Seed: 2})
			q := env.subscribe(t, 0, `SELECT S.D FROM R, S WHERE R.B = S.E`)
			// Fan rewrites out to several evaluators.
			for i := 0; i < 10; i++ {
				env.publish(t, i, rTuple(env, 0, float64(i), 0))
			}
			queryStorage := sum(env.eng.RoleLoads(metrics.Rewriter, true))
			rewriteStorage := sum(env.eng.RoleLoads(metrics.Evaluator, true))
			if queryStorage == 0 || rewriteStorage == 0 {
				t.Fatalf("set-up stored nothing: q=%d rw=%d", queryStorage, rewriteStorage)
			}
			if err := env.eng.Unsubscribe(env.node(0), q); err != nil {
				t.Fatalf("Unsubscribe: %v", err)
			}
			if got := sum(env.eng.RoleLoads(metrics.Rewriter, true)); got != 0 {
				t.Fatalf("rewriter storage after retraction = %d, want 0", got)
			}
			// The 10 distinct rewrites are purged; tuples stored at the
			// value level are shared state and survive.
			if got := sum(env.eng.RoleLoads(metrics.Evaluator, true)); got != rewriteStorage-10 {
				t.Fatalf("evaluator storage after retraction = %d, want %d (10 rewrites purged)",
					got, rewriteStorage-10)
			}
		})
	}
}

func TestUnsubscribeLeavesGroupPeersIntact(t *testing.T) {
	env := newTestEnv(t, 48, Config{Algorithm: SAI, Strategy: StrategyLeft, Seed: 3})
	q1 := env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	env.subscribe(t, 1, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	if err := env.eng.Unsubscribe(env.node(0), q1); err != nil {
		t.Fatalf("Unsubscribe: %v", err)
	}
	env.publish(t, 2, rTuple(env, 1, 7, 0))
	env.publish(t, 3, sTuple(env, 2, 7, 0))
	got := env.eng.Notifications()
	if len(got) != 1 {
		t.Fatalf("%d notifications, want 1 (for the surviving peer)", len(got))
	}
	if got[0].Subscriber != env.node(1).Key() {
		t.Fatalf("notified %s, want the surviving subscriber", got[0].Subscriber)
	}
}

func TestUnsubscribeWithReplication(t *testing.T) {
	env := newTestEnv(t, 64, Config{Algorithm: SAI, ReplicationFactor: 3, Seed: 4})
	q := env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	if got := sum(env.eng.RoleLoads(metrics.Rewriter, true)); got != 3 {
		t.Fatalf("replicated query storage = %d, want 3", got)
	}
	if err := env.eng.Unsubscribe(env.node(0), q); err != nil {
		t.Fatalf("Unsubscribe: %v", err)
	}
	if got := sum(env.eng.RoleLoads(metrics.Rewriter, true)); got != 0 {
		t.Fatalf("storage after replicated retraction = %d, want 0", got)
	}
	env.publish(t, 1, rTuple(env, 1, 7, 0))
	env.publish(t, 2, sTuple(env, 2, 7, 0))
	if got := len(env.eng.Notifications()); got != 0 {
		t.Fatalf("retracted replicated query still notified: %d", got)
	}
}

func TestUnsubscribeErrors(t *testing.T) {
	env := newTestEnv(t, 16, Config{Algorithm: SAI})
	q := env.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	if err := env.eng.Unsubscribe(env.node(0), q); err != nil {
		t.Fatalf("first Unsubscribe: %v", err)
	}
	if err := env.eng.Unsubscribe(env.node(0), q); err == nil {
		t.Fatal("double retraction accepted")
	}

	base := newTestEnv(t, 16, Config{Algorithm: BaselineRelation})
	bq := base.subscribe(t, 0, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	if err := base.eng.Unsubscribe(base.node(0), bq); err == nil {
		t.Fatal("baseline retraction accepted")
	}
}

func TestUnsubscribeMultiStopsNotifications(t *testing.T) {
	for _, alg := range []Algorithm{SAI, DAIQ} {
		t.Run(alg.String(), func(t *testing.T) {
			env := newMultiEnv(t, 48, Config{Algorithm: alg, Strategy: StrategyLeft, Seed: 6})
			mq := env.subscribeMulti(t, 0, `SELECT A.z, C.z FROM A, B, C WHERE A.x = B.y AND B.x = C.y`)
			// Stage one fires: a partial match A⋈B is stored mid-pipeline.
			env.publish(t, 1, env.tuple(env.a, 1, 0, 10))
			env.publish(t, 2, env.tuple(env.b, 2, 1, 20))
			if err := env.eng.UnsubscribeMulti(env.nodes[0], mq); err != nil {
				t.Fatalf("UnsubscribeMulti: %v", err)
			}
			// Neither the completing tuple for the stored partial match nor
			// an entirely fresh chain may notify now.
			env.publish(t, 3, env.tuple(env.c, 0, 2, 30))
			env.publish(t, 4, env.tuple(env.a, 1, 0, 11))
			env.publish(t, 5, env.tuple(env.b, 2, 1, 21))
			env.publish(t, 6, env.tuple(env.c, 0, 2, 31))
			if got := env.eng.Notifications(); len(got) != 0 {
				t.Fatalf("retracted chain notified: %v", got)
			}
			if err := env.eng.UnsubscribeMulti(env.nodes[0], mq); err == nil {
				t.Fatal("double multi retraction accepted")
			}
		})
	}
}

func TestUnsubscribeMultiPurgesPipeline(t *testing.T) {
	env := newMultiEnv(t, 48, Config{Algorithm: SAI, Strategy: StrategyLeft, Seed: 7})
	mq := env.subscribeMulti(t, 0, `SELECT A.z, D.z FROM A, B, C, D WHERE A.x = B.y AND B.x = C.y AND C.x = D.y`)
	// Drive the chain two stages deep so partial matches sit at several
	// evaluators; the purge must cascade along the recorded fan-out.
	env.publish(t, 1, env.tuple(env.a, 1, 0, 10))
	env.publish(t, 2, env.tuple(env.b, 2, 1, 20))
	env.publish(t, 3, env.tuple(env.c, 3, 2, 30))
	if got := sum(env.eng.RoleLoads(metrics.Rewriter, true)); got == 0 {
		t.Fatal("set-up stored no chain query")
	}
	evalBefore := sum(env.eng.RoleLoads(metrics.Evaluator, true))
	if evalBefore == 0 {
		t.Fatal("set-up stored no partial matches")
	}
	if err := env.eng.UnsubscribeMulti(env.nodes[0], mq); err != nil {
		t.Fatalf("UnsubscribeMulti: %v", err)
	}
	if got := sum(env.eng.RoleLoads(metrics.Rewriter, true)); got != 0 {
		t.Fatalf("rewriter storage after retraction = %d, want 0", got)
	}
	// The three pipeline-stage partial matches (one per published tuple) are
	// purged; tuples stored at the value level are shared state and survive.
	if got := sum(env.eng.RoleLoads(metrics.Evaluator, true)); got != evalBefore-3 {
		t.Fatalf("evaluator storage after retraction = %d, want %d (3 partial matches purged)",
			got, evalBefore-3)
	}
	env.publish(t, 4, env.tuple(env.d, 0, 3, 40))
	if got := env.eng.Notifications(); len(got) != 0 {
		t.Fatalf("purged pipeline completed: %v", got)
	}
}

func TestUnsubscribeMultiLeavesOtherChainsIntact(t *testing.T) {
	env := newMultiEnv(t, 48, Config{Algorithm: SAI, Strategy: StrategyLeft, Seed: 8})
	mq1 := env.subscribeMulti(t, 0, `SELECT A.z, C.z FROM A, B, C WHERE A.x = B.y AND B.x = C.y`)
	env.subscribeMulti(t, 1, `SELECT A.z, C.z FROM A, B, C WHERE A.x = B.y AND B.x = C.y`)
	env.publish(t, 2, env.tuple(env.a, 1, 0, 10))
	if err := env.eng.UnsubscribeMulti(env.nodes[0], mq1); err != nil {
		t.Fatalf("UnsubscribeMulti: %v", err)
	}
	env.publish(t, 3, env.tuple(env.b, 2, 1, 20))
	env.publish(t, 4, env.tuple(env.c, 0, 2, 30))
	got := env.eng.Notifications()
	if len(got) != 1 {
		t.Fatalf("%d notifications, want 1 (for the surviving chain)", len(got))
	}
	if got[0].Subscriber != env.nodes[1].Key() {
		t.Fatalf("notified %s, want the surviving subscriber", got[0].Subscriber)
	}
}

func TestResubscribeAfterUnsubscribe(t *testing.T) {
	// DAI-T's reindex-once markers must be cleared by retraction so an
	// identical re-subscription behaves like a fresh query.
	env := newTestEnv(t, 48, Config{Algorithm: DAIT, Seed: 5})
	q := env.subscribe(t, 0, `SELECT S.D FROM R, S WHERE R.B = S.E`)
	env.publish(t, 1, rTuple(env, 0, 7, 0))
	if err := env.eng.Unsubscribe(env.node(0), q); err != nil {
		t.Fatalf("Unsubscribe: %v", err)
	}
	env.subscribe(t, 0, `SELECT S.D FROM R, S WHERE R.B = S.E`)
	env.publish(t, 2, rTuple(env, 0, 7, 0))
	env.publish(t, 3, sTuple(env, 9, 7, 0))
	if got := len(env.eng.Notifications()); got != 1 {
		t.Fatalf("re-subscription delivered %d notifications, want 1", got)
	}
}
