package engine

import (
	"cqjoin/internal/chord"
)

// This file adds bounded sender-side retries on top of the overlay's
// best-effort delivery. The simulated network acks every synchronous
// delivery (chord.Send returns chord.ErrDropped on a miss; DirectSend and
// Multisend report per-recipient); a sender under fault injection re-sends
// unacked messages up to Config.MaxRetries times, advancing the logical
// clock between attempts so delayed in-flight copies get a chance to land.
// Receivers stay idempotent (rewritten-key dedup, value-store content
// keys, notification delivery keys), which turns the combination into
// effectively-once processing: completeness from retries, no duplicate
// answers from dedup.

// retryBackoff returns the logical-time advance between retry attempts.
func (e *Engine) retryBackoff() int64 {
	if e.cfg.RetryBackoff > 0 {
		return e.cfg.RetryBackoff
	}
	return 1
}

// advanceBackoff advances the logical clock by the retry backoff — unless a
// publish batch has frozen the clock (PublishBatch): pre-stamped timestamps
// own logical time for the duration of the batch, and concurrent cascades
// advancing the clock would race. Delayed in-flight copies then land at the
// batch's closing advance instead of during the backoff.
func (e *Engine) advanceBackoff() {
	if e.frozen.Load() {
		return
	}
	e.net.Clock().Advance(e.retryBackoff())
}

// retryFailed re-sends every deliverable of batch whose recipient slot is
// still nil, up to Config.MaxRetries attempts each, and returns the updated
// recipient slice. It is a no-op when retries are disabled. Deliverables
// unacked after the budget are charged to the traffic ledger's lost
// counter — the completeness invariant tolerates a loss probability of
// p_drop^(1+MaxRetries), negligible for the budgets chaos runs configure.
func (e *Engine) retryFailed(from *chord.Node, batch []chord.Deliverable, recipients []*chord.Node) []*chord.Node {
	if recipients == nil {
		recipients = make([]*chord.Node, len(batch))
	}
	if e.cfg.MaxRetries <= 0 {
		return recipients
	}
	var pending []int
	for i, r := range recipients {
		if r == nil {
			pending = append(pending, i)
		}
	}
	for attempt := 1; attempt <= e.cfg.MaxRetries && len(pending) > 0 && from.Alive(); attempt++ {
		// Let logical time pass: the chaos layer's delay queue drains on
		// clock listeners, so a delayed original may arrive during the
		// backoff and the retry then lands on an idempotent receiver.
		e.advanceBackoff()
		still := pending[:0]
		for _, i := range pending {
			e.net.Traffic().RecordRetry(batch[i].Msg.Kind())
			e.obs.retries.Add(batch[i].Msg.Kind(), 1)
			dst, _, err := from.Send(batch[i].Msg, batch[i].Target)
			if err != nil {
				still = append(still, i)
				continue
			}
			recipients[i] = dst
		}
		pending = still
	}
	for _, i := range pending {
		e.net.Traffic().RecordLost(batch[i].Msg.Kind())
		e.obs.lost.Add(batch[i].Msg.Kind(), 1)
	}
	return recipients
}
