package workload

import (
	"math"
	"math/rand"
	"testing"

	"cqjoin/internal/query"
)

func TestDefaults(t *testing.T) {
	g := New(Params{})
	p := g.Params()
	if p.Pairs != 4 || p.Attrs != 4 || p.Domain != 1000 || p.Theta != 0.9 || p.BosRatio != 1 {
		t.Fatalf("defaults wrong: %+v", p)
	}
	if len(g.Catalog().Schemas()) != 8 {
		t.Fatalf("catalog has %d schemas, want 8", len(g.Catalog().Schemas()))
	}
}

func TestQueryGeneration(t *testing.T) {
	g := New(Params{Seed: 1, FilterProb: 0.5})
	for i := 0; i < 100; i++ {
		q := g.Query()
		if q.Type() != query.T1 {
			t.Fatalf("Query() produced %s", q.Type())
		}
		lr, rr := q.Rel(query.SideLeft).Name(), q.Rel(query.SideRight).Name()
		if lr[0] != 'R' || rr[0] != 'S' || lr[1:] != rr[1:] {
			t.Fatalf("query joins unrelated relations %s, %s", lr, rr)
		}
	}
}

func TestQueryConditionsRecur(t *testing.T) {
	g := New(Params{Seed: 2, Pairs: 1, Attrs: 2})
	conds := make(map[string]int)
	for i := 0; i < 50; i++ {
		conds[g.Query().ConditionKey()]++
	}
	// Only 4 possible conditions exist: groups must form.
	if len(conds) > 4 {
		t.Fatalf("%d distinct conditions, want <= 4", len(conds))
	}
	for c, n := range conds {
		if n < 2 {
			t.Fatalf("condition %s appeared only once in 50 queries", c)
		}
	}
}

func TestQueryT2(t *testing.T) {
	g := New(Params{Seed: 3})
	for i := 0; i < 20; i++ {
		if got := g.QueryT2().Type(); got != query.T2 {
			t.Fatalf("QueryT2 produced %s", got)
		}
	}
}

func TestTupleSidesFollowBosRatio(t *testing.T) {
	g := New(Params{Seed: 4, BosRatio: 4})
	left, right := 0, 0
	for i := 0; i < 4000; i++ {
		tu := g.Tuple()
		if tu.Relation()[0] == 'R' {
			left++
		} else {
			right++
		}
	}
	ratio := float64(left) / float64(right)
	if ratio < 3.2 || ratio > 4.8 {
		t.Fatalf("observed bos ratio %.2f, want ~4", ratio)
	}
}

func TestTupleOfSchema(t *testing.T) {
	g := New(Params{Seed: 5})
	s := g.LeftSchema(0)
	tu := g.TupleOf(s)
	if tu.Schema() != s || tu.Schema().Arity() != 4 {
		t.Fatal("TupleOf wrong schema")
	}
}

func TestZipfSkew(t *testing.T) {
	z := newZipf(100, 0.9)
	rng := rand.New(rand.NewSource(6))
	counts := make([]int, 101)
	for i := 0; i < 20000; i++ {
		v := z.sample(rng)
		if v < 1 || v > 100 {
			t.Fatalf("sample %d out of domain", v)
		}
		counts[v]++
	}
	// Rank 1 must dominate rank 50 heavily under theta = 0.9.
	if counts[1] < 5*counts[50] {
		t.Fatalf("skew too weak: counts[1]=%d counts[50]=%d", counts[1], counts[50])
	}
}

func TestZipfUniformWhenThetaZero(t *testing.T) {
	z := newZipf(10, 0)
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, 11)
	for i := 0; i < 50000; i++ {
		counts[z.sample(rng)]++
	}
	for v := 1; v <= 10; v++ {
		frac := float64(counts[v]) / 50000
		if math.Abs(frac-0.1) > 0.02 {
			t.Fatalf("uniform sampling off at %d: %.3f", v, frac)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g1 := New(Params{Seed: 9})
	g2 := New(Params{Seed: 9})
	for i := 0; i < 20; i++ {
		if g1.Query().ConditionKey() != g2.Query().ConditionKey() {
			t.Fatal("query streams diverge under same seed")
		}
		if g1.Tuple().String() != g2.Tuple().String() {
			t.Fatal("tuple streams diverge under same seed")
		}
	}
}

func TestQueryChain(t *testing.T) {
	g := New(Params{Seed: 11, Pairs: 2, Attrs: 2})
	for _, k := range []int{2, 3, 4} {
		mq := g.QueryChain(k)
		if mq.Arity() != k {
			t.Fatalf("chain arity = %d, want %d", mq.Arity(), k)
		}
		seen := make(map[string]bool)
		for _, r := range mq.Rels() {
			if seen[r.Name()] {
				t.Fatalf("chain repeats relation %s", r.Name())
			}
			seen[r.Name()] = true
		}
	}
	mustPanicW(t, func() { g.QueryChain(1) })
	mustPanicW(t, func() { g.QueryChain(5) })
}

func TestChainTuple(t *testing.T) {
	g := New(Params{Seed: 12, Pairs: 2})
	seen := make(map[string]bool)
	for i := 0; i < 200; i++ {
		seen[g.ChainTuple(4).Relation()] = true
	}
	for _, rel := range []string{"R0", "S0", "R1", "S1"} {
		if !seen[rel] {
			t.Fatalf("ChainTuple never produced %s", rel)
		}
	}
}

func TestPairSchemas(t *testing.T) {
	g := New(Params{Seed: 13, Pairs: 2})
	if g.LeftSchema(0).Name() != "R0" || g.RightSchema(1).Name() != "S1" {
		t.Fatal("pair schema accessors wrong")
	}
	// Indexes wrap.
	if g.LeftSchema(2).Name() != "R0" || g.RightSchema(3).Name() != "S1" {
		t.Fatal("pair schema wrap wrong")
	}
}

func mustPanicW(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestSelectAttrsClamped(t *testing.T) {
	g := New(Params{Seed: 10, Attrs: 2, SelectAttrs: 99})
	if g.Params().SelectAttrs != 2 {
		t.Fatalf("SelectAttrs = %d, want clamped to 2", g.Params().SelectAttrs)
	}
	// Still parses.
	_ = g.Query()
}
