// Package workload generates the synthetic workloads of the evaluation
// chapter: relation-pair schemas, continuous join queries with recurring
// conditions, and tuple streams with Zipf-skewed attribute values
// (Section 4.3.6: "in our experiments ... we assume a highly skewed
// distribution for all attributes").
//
// The full experimental set-up text of the thesis (Chapter 5.1) is not in
// the available source, so the concrete defaults here are reconstructed
// from the algorithm chapters and the List of Figures; every knob a figure
// sweeps — network size, number of queries, tuples per window, window
// size, the bos ratio — is an explicit parameter. See DESIGN.md §2.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cqjoin/internal/query"
	"cqjoin/internal/relation"
)

// Params shapes a workload.
type Params struct {
	// Seed makes generation reproducible.
	Seed int64
	// Pairs is the number of joinable relation pairs (R0/S0, R1/S1, ...).
	// Queries always join the two relations of one pair. Default 4.
	Pairs int
	// Attrs is the arity h of every relation. Default 4.
	Attrs int
	// Domain is the number of distinct values per attribute. Default 1000.
	Domain int
	// Theta is the Zipf skew of attribute values; 0 draws uniformly.
	// Default 0.9 ("highly skewed").
	Theta float64
	// BosRatio is the bias-of-stream ratio: how many tuples of the pair's
	// left relation arrive for every tuple of the right relation. 1 means
	// balanced streams; 4 means 4 left tuples per right tuple. Default 1.
	BosRatio float64
	// FilterProb is the probability a generated query carries an extra
	// selective predicate. Default 0.
	FilterProb float64
	// SelectAttrs is how many attributes each side contributes to the
	// SELECT list. Default 1.
	SelectAttrs int
}

// withDefaults fills zero fields.
func (p Params) withDefaults() Params {
	if p.Pairs <= 0 {
		p.Pairs = 4
	}
	if p.Attrs <= 0 {
		p.Attrs = 4
	}
	if p.Domain <= 0 {
		p.Domain = 1000
	}
	if p.Theta == 0 {
		p.Theta = 0.9
	}
	if p.BosRatio <= 0 {
		p.BosRatio = 1
	}
	if p.SelectAttrs <= 0 {
		p.SelectAttrs = 1
	}
	if p.SelectAttrs > p.Attrs {
		p.SelectAttrs = p.Attrs
	}
	return p
}

// Generator produces queries and tuples. It is not safe for concurrent
// use; create one generator per goroutine.
type Generator struct {
	p       Params
	rng     *rand.Rand
	catalog *relation.Catalog
	left    []*relation.Schema
	right   []*relation.Schema
	zipf    *zipf
}

// New builds a generator and its catalog.
func New(p Params) *Generator {
	p = p.withDefaults()
	g := &Generator{p: p, rng: rand.New(rand.NewSource(p.Seed))}
	var schemas []*relation.Schema
	for i := 0; i < p.Pairs; i++ {
		attrs := make([]string, p.Attrs)
		for j := range attrs {
			attrs[j] = fmt.Sprintf("a%d", j)
		}
		l := relation.MustSchema(fmt.Sprintf("R%d", i), attrs...)
		r := relation.MustSchema(fmt.Sprintf("S%d", i), attrs...)
		g.left = append(g.left, l)
		g.right = append(g.right, r)
		schemas = append(schemas, l, r)
	}
	g.catalog = relation.MustCatalog(schemas...)
	g.zipf = newZipf(p.Domain, p.Theta)
	return g
}

// Catalog returns the generated schema catalog.
func (g *Generator) Catalog() *relation.Catalog { return g.catalog }

// Params returns the effective (defaulted) parameters.
func (g *Generator) Params() Params { return g.p }

// Query generates one type-T1 continuous join query: a random pair, a
// random join-attribute pair, SELECT projections from both sides, and with
// probability FilterProb a selective predicate on one side. Conditions
// recur across queries (the pair and attribute choices are drawn from a
// small space), which exercises the query grouping of Section 4.3.5.
func (g *Generator) Query() *query.Query {
	pair := g.rng.Intn(g.p.Pairs)
	l, r := g.left[pair], g.right[pair]
	la := fmt.Sprintf("a%d", g.rng.Intn(g.p.Attrs))
	ra := fmt.Sprintf("a%d", g.rng.Intn(g.p.Attrs))

	sql := fmt.Sprintf("SELECT %s FROM %s, %s WHERE %s.%s = %s.%s",
		g.selectList(l, r), l.Name(), r.Name(), l.Name(), la, r.Name(), ra)
	if g.rng.Float64() < g.p.FilterProb {
		side := l
		if g.rng.Intn(2) == 1 {
			side = r
		}
		sql += fmt.Sprintf(" AND %s.a%d >= %d", side.Name(), g.rng.Intn(g.p.Attrs), g.sampleValue())
	}
	return query.MustParse(g.catalog, sql)
}

// QueryT2 generates a type-T2 query whose sides are arithmetic expressions
// over two attributes each — evaluable only by DAI-V (Section 4.5).
func (g *Generator) QueryT2() *query.Query {
	pair := g.rng.Intn(g.p.Pairs)
	l, r := g.left[pair], g.right[pair]
	sql := fmt.Sprintf(
		"SELECT %s FROM %s, %s WHERE %d * %s.a0 + %s.a1 = %d * %s.a0 + %s.a1",
		g.selectList(l, r), l.Name(), r.Name(),
		1+g.rng.Intn(3), l.Name(), l.Name(),
		1+g.rng.Intn(3), r.Name(), r.Name())
	return query.MustParse(g.catalog, sql)
}

// QueryChain generates a k-way chain query alternating over the left and
// right relations of consecutive pairs (R0, S0, R1, S1, ...), so the chain
// uses k distinct relations. k must be in [2, 2*Pairs].
func (g *Generator) QueryChain(k int) *query.MultiQuery {
	if k < 2 || k > 2*g.p.Pairs {
		panic(fmt.Sprintf("workload: chain arity %d out of range [2, %d]", k, 2*g.p.Pairs))
	}
	rels := make([]*relation.Schema, k)
	for i := range rels {
		if i%2 == 0 {
			rels[i] = g.left[i/2]
		} else {
			rels[i] = g.right[i/2]
		}
	}
	sql := fmt.Sprintf("SELECT %s.a0, %s.a0 FROM", rels[0].Name(), rels[k-1].Name())
	for i, r := range rels {
		if i > 0 {
			sql += ","
		}
		sql += " " + r.Name()
	}
	sql += " WHERE"
	for i := 0; i+1 < k; i++ {
		if i > 0 {
			sql += " AND"
		}
		la := fmt.Sprintf("a%d", g.rng.Intn(g.p.Attrs))
		ra := fmt.Sprintf("a%d", g.rng.Intn(g.p.Attrs))
		sql += fmt.Sprintf(" %s.%s = %s.%s", rels[i].Name(), la, rels[i+1].Name(), ra)
	}
	return query.MustParseMulti(g.catalog, sql)
}

// ChainTuple generates a tuple of one of the k chain relations, uniformly.
func (g *Generator) ChainTuple(k int) *relation.Tuple {
	i := g.rng.Intn(k)
	if i%2 == 0 {
		return g.TupleOf(g.left[i/2])
	}
	return g.TupleOf(g.right[i/2])
}

func (g *Generator) selectList(l, r *relation.Schema) string {
	list := ""
	for i := 0; i < g.p.SelectAttrs; i++ {
		if list != "" {
			list += ", "
		}
		list += fmt.Sprintf("%s.a%d, %s.a%d", l.Name(), i, r.Name(), i)
	}
	return list
}

// Tuple generates one tuple: the pair is uniform, the side follows the bos
// ratio (left-relation tuples arrive BosRatio times as often as right-
// relation ones), and every attribute value is drawn from the Zipf-skewed
// domain.
func (g *Generator) Tuple() *relation.Tuple {
	pair := g.rng.Intn(g.p.Pairs)
	schema := g.right[pair]
	if g.rng.Float64() < g.p.BosRatio/(1+g.p.BosRatio) {
		schema = g.left[pair]
	}
	return g.TupleOf(schema)
}

// TupleOf generates a tuple of the given schema with skewed values.
func (g *Generator) TupleOf(schema *relation.Schema) *relation.Tuple {
	vals := make([]relation.Value, schema.Arity())
	for i := range vals {
		vals[i] = relation.N(float64(g.sampleValue()))
	}
	return relation.MustTuple(schema, vals...)
}

// LeftSchema and RightSchema expose the pair's relations for experiments
// that need side-specific streams.
func (g *Generator) LeftSchema(pair int) *relation.Schema  { return g.left[pair%len(g.left)] }
func (g *Generator) RightSchema(pair int) *relation.Schema { return g.right[pair%len(g.right)] }

// sampleValue draws one value from the skewed domain.
func (g *Generator) sampleValue() int {
	return g.zipf.sample(g.rng)
}

// zipf samples integers 1..n with P(i) ∝ 1/i^theta via the precomputed
// cumulative distribution. Unlike math/rand's Zipf, it supports the
// theta < 1 exponents typical of database workloads (the paper assumes
// highly skewed distributions; theta = 0.9 is the conventional setting).
type zipf struct {
	cdf []float64
}

func newZipf(n int, theta float64) *zipf {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		if theta <= 0 {
			sum += 1
		} else {
			sum += 1 / math.Pow(float64(i), theta)
		}
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipf{cdf: cdf}
}

func (z *zipf) sample(rng *rand.Rand) int {
	u := rng.Float64()
	return 1 + sort.SearchFloat64s(z.cdf, u)
}

// Skew is a standalone Zipf sampler over ranks 1..n for callers that draw
// skewed values outside the generator — the TCP load target's product
// domain, for instance. Theta <= 0 draws uniformly.
type Skew struct{ z *zipf }

// NewSkew precomputes the cumulative distribution for n ranks at the given
// exponent.
func NewSkew(n int, theta float64) *Skew { return &Skew{z: newZipf(n, theta)} }

// Sample draws a rank in 1..n; rank 1 is the most popular.
func (s *Skew) Sample(rng *rand.Rand) int { return s.z.sample(rng) }
