// Package id implements the m-bit circular identifier space used by the
// Chord protocol (Stoica et al.) as described in Chapter 2 of the paper.
//
// Identifiers are 160-bit values produced by SHA-1 (m = 160), ordered on a
// ring modulo 2^160. Both overlay nodes and data items (queries and tuples)
// are mapped onto the same ring: a key k is stored at Successor(Hash(k)),
// the first node whose identifier is equal to or follows Hash(k) clockwise.
package id

import (
	"crypto/sha1"
	"encoding/hex"
	"fmt"
)

// Bits is the size m of the identifier space. The paper (and Chord) use
// SHA-1, so m = 160 and the ring is ordered modulo 2^160.
const Bits = 160

// bytesLen is the identifier length in bytes (160 bits / 8).
const bytesLen = Bits / 8

// ID is a point on the identifier circle. IDs are values and may be used as
// map keys. The zero ID is identifier 0, a valid ring position.
type ID [bytesLen]byte

// Hash maps an arbitrary key string onto the ring using SHA-1, exactly as
// consistent hashing prescribes in Section 2.2. All identifiers in the
// system — node identifiers, AIndex = Hash(R+A) and VIndex = Hash(R+A+v) —
// are produced through this function.
func Hash(key string) ID {
	return ID(sha1.Sum([]byte(key)))
}

// HashBytes is Hash for a byte-slice key.
func HashBytes(key []byte) ID {
	return ID(sha1.Sum(key))
}

// FromUint64 places v on the ring as the identifier with value v. It is a
// testing convenience: production identifiers always come from Hash.
func FromUint64(v uint64) ID {
	var x ID
	for i := 0; i < 8; i++ {
		x[bytesLen-1-i] = byte(v >> (8 * i))
	}
	return x
}

// Parse decodes a 40-character hexadecimal identifier.
func Parse(s string) (ID, error) {
	var x ID
	b, err := hex.DecodeString(s)
	if err != nil {
		return x, fmt.Errorf("id: parse %q: %w", s, err)
	}
	if len(b) != bytesLen {
		return x, fmt.Errorf("id: parse %q: want %d bytes, got %d", s, bytesLen, len(b))
	}
	copy(x[:], b)
	return x, nil
}

// String renders the identifier as 40 hexadecimal digits.
func (x ID) String() string { return hex.EncodeToString(x[:]) }

// Short renders the leading 4 bytes, a human-friendly ring position for logs.
func (x ID) Short() string { return hex.EncodeToString(x[:4]) }

// Cmp compares two identifiers as 160-bit unsigned integers, returning
// -1, 0, or +1. This is the linear order; ring order is expressed through
// Between and its variants.
func (x ID) Cmp(y ID) int {
	for i := 0; i < bytesLen; i++ {
		switch {
		case x[i] < y[i]:
			return -1
		case x[i] > y[i]:
			return 1
		}
	}
	return 0
}

// Less reports whether x precedes y in the linear 160-bit order.
func (x ID) Less(y ID) bool { return x.Cmp(y) < 0 }

// Equal reports whether x and y are the same ring position.
func (x ID) Equal(y ID) bool { return x == y }

// Add returns x + y modulo 2^160.
func (x ID) Add(y ID) ID {
	var out ID
	var carry uint16
	for i := bytesLen - 1; i >= 0; i-- {
		s := uint16(x[i]) + uint16(y[i]) + carry
		out[i] = byte(s)
		carry = s >> 8
	}
	return out
}

// Sub returns x - y modulo 2^160.
func (x ID) Sub(y ID) ID {
	var out ID
	var borrow int16
	for i := bytesLen - 1; i >= 0; i-- {
		d := int16(x[i]) - int16(y[i]) - borrow
		if d < 0 {
			d += 256
			borrow = 1
		} else {
			borrow = 0
		}
		out[i] = byte(d)
	}
	return out
}

// AddPow2 returns x + 2^k modulo 2^160, for 0 <= k < Bits. It computes the
// start of finger-table entry k+1: finger j of node n points at
// Successor(id(n) + 2^(j-1)).
func (x ID) AddPow2(k uint) ID {
	if k >= Bits {
		panic(fmt.Sprintf("id: AddPow2 exponent %d out of range [0,%d)", k, Bits))
	}
	var p ID
	byteIdx := bytesLen - 1 - int(k/8)
	p[byteIdx] = 1 << (k % 8)
	return x.Add(p)
}

// Between reports whether x lies in the open ring interval (a, b),
// travelling clockwise from a to b. When a == b the interval is the whole
// ring minus the single point a, matching Chord's convention.
func Between(x, a, b ID) bool {
	switch a.Cmp(b) {
	case -1: // no wrap
		return a.Less(x) && x.Less(b)
	case 1: // wraps through zero
		return a.Less(x) || x.Less(b)
	default: // a == b: everything except a itself
		return !x.Equal(a)
	}
}

// BetweenRightIncl reports whether x lies in the half-open ring interval
// (a, b]. This is the "is b's predecessor region" test used to decide key
// ownership: key k belongs to node n iff k ∈ (pred(n), n].
func BetweenRightIncl(x, a, b ID) bool {
	return x.Equal(b) || Between(x, a, b)
}

// BetweenLeftIncl reports whether x lies in the half-open ring interval [a, b).
func BetweenLeftIncl(x, a, b ID) bool {
	return x.Equal(a) || Between(x, a, b)
}

// Distance returns the clockwise distance from a to b on the ring, i.e. the
// number of identifier positions travelled going from a forward to b.
func Distance(a, b ID) ID { return b.Sub(a) }
