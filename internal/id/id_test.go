package id

import (
	"crypto/sha1"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashMatchesSHA1(t *testing.T) {
	want := sha1.Sum([]byte("Document+AuthorId"))
	got := Hash("Document+AuthorId")
	if got != ID(want) {
		t.Fatalf("Hash mismatch: got %s want %x", got, want)
	}
}

func TestFromUint64(t *testing.T) {
	cases := []struct {
		v    uint64
		last byte
	}{
		{0, 0},
		{1, 1},
		{255, 255},
		{256, 0},
	}
	for _, c := range cases {
		x := FromUint64(c.v)
		if x[bytesLen-1] != c.last {
			t.Errorf("FromUint64(%d): last byte %d, want %d", c.v, x[bytesLen-1], c.last)
		}
	}
	if FromUint64(256)[bytesLen-2] != 1 {
		t.Errorf("FromUint64(256): second-to-last byte not 1")
	}
}

func TestParseRoundTrip(t *testing.T) {
	x := Hash("node-42")
	y, err := Parse(x.String())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if x != y {
		t.Fatalf("round trip: got %s want %s", y, x)
	}
	if _, err := Parse("zz"); err == nil {
		t.Fatal("Parse accepted invalid hex")
	}
	if _, err := Parse("abcd"); err == nil {
		t.Fatal("Parse accepted short input")
	}
}

func TestCmpOrdering(t *testing.T) {
	a, b := FromUint64(10), FromUint64(20)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Fatal("Cmp misordered small values")
	}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("Less inconsistent with Cmp")
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Fatal("Equal inconsistent")
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(av, bv uint64) bool {
		a, b := FromUint64(av), FromUint64(bv)
		return a.Add(b).Sub(b) == a && a.Sub(b).Add(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubInverseHashed(t *testing.T) {
	// The same inverse property on identifiers spread over the full ring.
	f := func(s1, s2 string) bool {
		a, b := Hash(s1), Hash(s2)
		return a.Add(b).Sub(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddCarryPropagation(t *testing.T) {
	var allFF ID
	for i := range allFF {
		allFF[i] = 0xff
	}
	one := FromUint64(1)
	if got := allFF.Add(one); got != (ID{}) {
		t.Fatalf("(2^160-1)+1 = %s, want 0", got)
	}
	if got := (ID{}).Sub(one); got != allFF {
		t.Fatalf("0-1 = %s, want 2^160-1", got)
	}
}

func TestAddPow2(t *testing.T) {
	x := FromUint64(0)
	if got, want := x.AddPow2(0), FromUint64(1); got != want {
		t.Fatalf("0+2^0 = %s", got)
	}
	if got, want := x.AddPow2(10), FromUint64(1024); got != want {
		t.Fatalf("0+2^10 = %s", got)
	}
	// 2^159 + 2^159 wraps to 0.
	top := (ID{}).AddPow2(159)
	if got := top.Add(top); got != (ID{}) {
		t.Fatalf("2^159+2^159 = %s, want 0", got)
	}
}

func TestAddPow2PanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddPow2(160) did not panic")
		}
	}()
	_ = (ID{}).AddPow2(Bits)
}

func TestBetweenNoWrap(t *testing.T) {
	a, b := FromUint64(10), FromUint64(20)
	if !Between(FromUint64(15), a, b) {
		t.Fatal("15 should be in (10,20)")
	}
	for _, v := range []uint64{10, 20, 5, 25} {
		if Between(FromUint64(v), a, b) {
			t.Fatalf("%d should not be in (10,20)", v)
		}
	}
}

func TestBetweenWrap(t *testing.T) {
	// Interval (2^160-5, 10) wraps through zero.
	a := (ID{}).Sub(FromUint64(5))
	b := FromUint64(10)
	for _, v := range []ID{(ID{}).Sub(FromUint64(1)), {}, FromUint64(5)} {
		if !Between(v, a, b) {
			t.Fatalf("%s should be in wrapped interval", v)
		}
	}
	if Between(FromUint64(10), a, b) || Between(FromUint64(100), a, b) {
		t.Fatal("right endpoint / outside point wrongly inside")
	}
}

func TestBetweenDegenerate(t *testing.T) {
	a := FromUint64(7)
	if Between(a, a, a) {
		t.Fatal("(a,a) must exclude a")
	}
	if !Between(FromUint64(8), a, a) {
		t.Fatal("(a,a) must contain every other point")
	}
}

func TestBetweenInclusiveVariants(t *testing.T) {
	a, b, mid := FromUint64(10), FromUint64(20), FromUint64(15)
	if !BetweenRightIncl(b, a, b) || BetweenRightIncl(a, a, b) || !BetweenRightIncl(mid, a, b) {
		t.Fatal("BetweenRightIncl endpoints wrong")
	}
	if !BetweenLeftIncl(a, a, b) || BetweenLeftIncl(b, a, b) || !BetweenLeftIncl(mid, a, b) {
		t.Fatal("BetweenLeftIncl endpoints wrong")
	}
}

// Property: for any three distinct points, exactly one of x∈(a,b] and x∈(b,a]
// holds — the two arcs partition the ring.
func TestArcsPartitionRing(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b, x := randID(rng), randID(rng), randID(rng)
		if a == b || a == x || b == x {
			continue
		}
		in1 := BetweenRightIncl(x, a, b)
		in2 := BetweenRightIncl(x, b, a)
		if in1 == in2 {
			t.Fatalf("arc partition violated: a=%s b=%s x=%s", a.Short(), b.Short(), x.Short())
		}
	}
}

// Property: Distance(a,b) + Distance(b,a) == 0 mod 2^160 for a != b.
func TestDistanceSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a, b := randID(rng), randID(rng)
		sum := Distance(a, b).Add(Distance(b, a))
		if sum != (ID{}) {
			t.Fatalf("distance sum nonzero: a=%s b=%s", a.Short(), b.Short())
		}
	}
}

func TestShortAndString(t *testing.T) {
	x := Hash("abc")
	if len(x.String()) != 40 {
		t.Fatalf("String length %d", len(x.String()))
	}
	if len(x.Short()) != 8 {
		t.Fatalf("Short length %d", len(x.Short()))
	}
}

func randID(rng *rand.Rand) ID {
	var x ID
	rng.Read(x[:])
	return x
}
