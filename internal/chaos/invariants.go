package chaos

import (
	"fmt"
	"sort"
	"strings"

	"cqjoin/internal/chord"
	"cqjoin/internal/engine"
	"cqjoin/internal/id"
)

// The three invariants every chaos run must restore once the injector is
// calmed and the overlay healed:
//
//  1. Ring integrity — successors, predecessors and fingers of every alive
//     node again match the oracle view of the ring (RingIntact).
//  2. No duplicate deliveries — no subscriber received the same match
//     twice (NoDuplicateDeliveries).
//  3. Completeness — the delivered set equals the centralized oracle's
//     expected set exactly (Complete).

// RingIntact checks every alive node's successor, predecessor and finger
// table against the oracle view of the current ring. It returns nil when
// the overlay has fully converged, or an error naming the first few
// violations.
func RingIntact(net *chord.Network) error {
	nodes := net.Nodes() // ring order
	if len(nodes) == 0 {
		return fmt.Errorf("ring integrity: no alive nodes")
	}
	var bad []string
	report := func(format string, args ...interface{}) {
		if len(bad) < 8 {
			bad = append(bad, fmt.Sprintf(format, args...))
		}
	}
	for i, n := range nodes {
		next := nodes[(i+1)%len(nodes)]
		prev := nodes[(i-1+len(nodes))%len(nodes)]
		if got := n.Successor(); got != next {
			report("%s.successor = %v, want %v", n.Key(), got, next)
		}
		if got := n.Predecessor(); got != prev {
			report("%s.predecessor = %v, want %v", n.Key(), got, prev)
		}
		for j := 1; j <= id.Bits; j++ {
			start := n.ID().AddPow2(uint(j - 1))
			if got, want := n.Finger(j), net.OracleSuccessor(start); got != want {
				report("%s.finger[%d] = %v, want %v", n.Key(), j, got, want)
			}
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("ring integrity: %s", strings.Join(bad, "; "))
	}
	return nil
}

// deliveryIdentity is the full match identity of a delivered notification:
// subscriber, projected content, and the publication times of the matched
// tuple pair (distinct pairs can project to equal content).
func deliveryIdentity(n engine.Notification) string {
	return fmt.Sprintf("%s|%s|%d|%d", n.Subscriber, n.ContentKey(), n.LeftPubT, n.RightPubT)
}

// NoDuplicateDeliveries checks that no subscriber received the same match
// twice — the duplicate-avoidance invariant the engine's absorption layer
// must uphold even when the network duplicates and retries re-send.
func NoDuplicateDeliveries(ns []engine.Notification) error {
	count := make(map[string]int, len(ns))
	for _, n := range ns {
		count[deliveryIdentity(n)]++
	}
	var dups []string
	for k, c := range count {
		if c > 1 {
			dups = append(dups, fmt.Sprintf("%s x%d", k, c))
		}
	}
	if len(dups) > 0 {
		sort.Strings(dups)
		if len(dups) > 8 {
			dups = append(dups[:8], "...")
		}
		return fmt.Errorf("duplicate deliveries: %s", strings.Join(dups, "; "))
	}
	return nil
}

// Complete checks the delivered set against the centralized oracle at the
// content level (Notification.ContentKey), the identity under which all
// four algorithms must agree (Section 4.4): nothing missing (losses were
// retried or replayed) and nothing extra (duplicates and misroutes were
// absorbed). It also rejects a vacuous run in which the oracle expects no
// matches at all.
func Complete(o *engine.Oracle, ns []engine.Notification) error {
	want := o.ExpectedContentKeys()
	got := make(map[string]bool, len(ns))
	for _, n := range ns {
		got[n.ContentKey()] = true
	}
	return diffSets(want, got)
}

// PairComplete checks the delivered set at the full match identity —
// subscriber, content AND the publication times of the matched pair. Only
// DAI-Q and DAI-V promise this: every delivery carries its own trigger
// tuple. SAI and DAI-T group rewrites by content (RewriteKey), so a repeat
// trigger with an identical projection only adds time information to the
// stored rewrite (Section 4.3.3) and later matches report the first
// trigger's times.
func PairComplete(o *engine.Oracle, ns []engine.Notification) error {
	return diffSets(o.ExpectedDeliveries(), engine.DeliveryKeys(ns))
}

func diffSets(want, got map[string]bool) error {
	var missing, extra []string
	for k := range want {
		if !got[k] {
			missing = append(missing, k)
		}
	}
	for k := range got {
		if !want[k] {
			extra = append(extra, k)
		}
	}
	if len(missing) > 0 || len(extra) > 0 {
		sort.Strings(missing)
		sort.Strings(extra)
		return fmt.Errorf("differential mismatch vs oracle: missing %d %v, extra %d %v",
			len(missing), trim(missing), len(extra), trim(extra))
	}
	if len(want) == 0 {
		return fmt.Errorf("oracle expects no matches: run is vacuous")
	}
	return nil
}

func trim(s []string) []string {
	if len(s) > 6 {
		return append(s[:6:6], "...")
	}
	return s
}
