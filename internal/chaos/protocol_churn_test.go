package chaos

import (
	"sort"
	"strings"
	"testing"

	"cqjoin/internal/chord"
	"cqjoin/internal/engine"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
	"cqjoin/internal/sim"
)

// Protocol-churn acceptance: membership changes — joins, voluntary leaves,
// crashes, rejoins — run through the maintenance protocol only
// (JoinProtocol/LeaveProtocol/FailProtocol + stabilize/notify/fix-fingers),
// never the oracle repairs, while the workload flows through the batched
// parallel publish pipeline. After calming and healing, the ring must
// satisfy the Zave invariants, no delivery may be lost or duplicated, and
// the content-level notification fingerprint must equal a never-churned
// run of the same seeded workload — at any worker count.

// protocolFaults is the seeded churn schedule: every membership change is
// protocol-only, and per-delivery fates are keyed draws so the schedule is
// identical at any parallelism.
func protocolFaults() Config {
	return Config{
		DropRate:       0.03,
		DupRate:        0.03,
		DelayRate:      0.03,
		MaxDelay:       3,
		CrashRate:      0.05,
		JoinRate:       0.10,
		LeaveRate:      0.08,
		RejoinAfter:    12,
		MinAlive:       16,
		StabilizeEvery: 2,
		ProtocolChurn:  true,
		KeyedDraws:     true,
	}
}

// runProtocolChurn drives one seeded workload in batches of 4 publishes
// through PublishBatch at the given worker count, stepping the injector
// between batches. churn=false runs the identical workload with no
// injector at all — the never-churned fingerprint oracle. Queries are
// subscribed up front at fixed base nodes so query keys (and therefore
// content fingerprints) are comparable across the two runs.
func runProtocolChurn(t *testing.T, alg engine.Algorithm, seed int64, batches, workers int, churn bool) chaosResult {
	t.Helper()
	r := relation.MustSchema("R", "A", "B", "C")
	s := relation.MustSchema("S", "D", "E", "F")
	catalog := relation.MustCatalog(r, s)

	net := chord.New(chord.Config{})
	net.AddNodes("peer", 48)
	eng := engine.New(net, catalog, engine.Config{
		Algorithm:    alg,
		Seed:         seed,
		MaxRetries:   6,
		RetryBackoff: 1,
	})
	var in *Injector
	if churn {
		faults := protocolFaults()
		faults.Seed = seed
		in = New(eng, faults)
	}
	oracle := engine.NewOracle()
	wl := sim.NewSource(seed + 1)

	base := net.Nodes()
	for qi, qs := range chaosQueries {
		q, err := eng.Subscribe(base[(qi*7)%len(base)], query.MustParse(catalog, qs))
		if err != nil {
			t.Fatalf("subscribe: %v", err)
		}
		oracle.AddQuery(q)
	}
	for b := 0; b < batches; b++ {
		const batchLen = 4
		stamp := net.Clock().Now()
		ops := make([]engine.PublishOp, 0, batchLen)
		for i := 0; i < batchLen; i++ {
			var tu *relation.Tuple
			if wl.Intn(2) == 0 {
				tu = relation.MustTuple(r,
					relation.N(float64(wl.Intn(5))), relation.N(float64(wl.Intn(3))), relation.N(float64(wl.Intn(3))))
			} else {
				tu = relation.MustTuple(s,
					relation.N(float64(wl.Intn(5))), relation.N(float64(wl.Intn(3))), relation.N(float64(wl.Intn(3))))
			}
			nodes := net.Nodes()
			ops = append(ops, engine.PublishOp{From: nodes[wl.Intn(len(nodes))], T: tu})
			// PublishBatch pre-stamps event i with now+i+1; mirror that for
			// the differential oracle.
			oracle.AddTuple(tu.WithPubT(stamp + int64(i) + 1))
		}
		if err := eng.PublishBatch(ops, workers); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		if in != nil {
			in.Step()
		}
	}
	var trace []string
	if in != nil {
		in.Calm()
		if rounds, err := in.HealAll(80); err != nil {
			t.Fatalf("overlay did not converge after %d rounds: %v", rounds, err)
		}
		trace = in.Trace()
	}
	return chaosResult{trace: trace, notifs: eng.Notifications(), oracle: oracle, net: net}
}

// contentFingerprint is the sorted set of delivered content keys — the
// identity all four algorithms (and churned vs never-churned runs) must
// agree on.
func contentFingerprint(ns []engine.Notification) string {
	seen := make(map[string]bool, len(ns))
	keys := make([]string, 0, len(ns))
	for _, n := range ns {
		k := n.ContentKey()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// traceHas reports whether any trace line contains the marker.
func traceHas(trace []string, marker string) bool {
	for _, line := range trace {
		if strings.Contains(line, marker) {
			return true
		}
	}
	return false
}

// TestProtocolChurnConvergence: for every algorithm, a protocol-churned
// run at parallelism 1 and at parallelism 8 must (a) be bit-identical to
// each other — same fault trace, same delivery sequence — (b) converge to
// a ring satisfying all Zave invariants, (c) lose and duplicate nothing,
// and (d) reproduce the never-churned run's content fingerprint.
func TestProtocolChurnConvergence(t *testing.T) {
	seed := chaosSeed(t, 23)
	batches := 40
	if testing.Short() {
		batches = 20
	}
	for _, alg := range []engine.Algorithm{engine.SAI, engine.DAIQ, engine.DAIT, engine.DAIV} {
		t.Run(alg.String(), func(t *testing.T) {
			calm := runProtocolChurn(t, alg, seed, batches, 8, false)
			seq := runProtocolChurn(t, alg, seed, batches, 1, true)
			par := runProtocolChurn(t, alg, seed, batches, 8, true)

			// (a) Worker count must not change the run: the same fault
			// events (keyed draws make each delivery's fate a function of
			// its content, though workers may log them in a different
			// order within a batch) and the same delivery sequence
			// (PublishBatch keeps the sink canonically sorted).
			sortedTrace := func(trace []string) []string {
				out := append([]string(nil), trace...)
				sort.Strings(out)
				return out
			}
			ts, tp := sortedTrace(seq.trace), sortedTrace(par.trace)
			if len(ts) != len(tp) {
				t.Fatalf("trace lengths differ across parallelism: %d vs %d", len(ts), len(tp))
			}
			for i := range ts {
				if ts[i] != tp[i] {
					t.Fatalf("fault-event multisets diverge at %d:\n  w1: %s\n  w8: %s", i, ts[i], tp[i])
				}
			}
			// Deliveries must agree as a multiset of full identities.
			// (The sequence is canonical within each publish batch, but a
			// replayed offline queue preserves its arrival order, which a
			// different worker interleaving may permute.)
			ids := func(ns []engine.Notification) []string {
				out := make([]string, len(ns))
				for i, n := range ns {
					out[i] = deliveryIdentity(n)
				}
				sort.Strings(out)
				return out
			}
			is, ip := ids(seq.notifs), ids(par.notifs)
			if len(is) != len(ip) {
				t.Fatalf("notification counts differ across parallelism: %d vs %d", len(is), len(ip))
			}
			for i := range is {
				if is[i] != ip[i] {
					t.Fatalf("delivery sets diverge at %d: %s vs %s", i, is[i], ip[i])
				}
			}

			for name, res := range map[string]chaosResult{"w1": seq, "w8": par} {
				// (b) Zave invariants and exact pointer convergence.
				if rep := chord.CheckRing(res.net); !rep.Converged() {
					t.Errorf("%s: %s", name, rep)
				}
				if err := RingIntact(res.net); err != nil {
					t.Errorf("%s: %v", name, err)
				}
				// (c) Differential invariants.
				if err := NoDuplicateDeliveries(res.notifs); err != nil {
					t.Errorf("%s: %v", name, err)
				}
				if err := Complete(res.oracle, res.notifs); err != nil {
					t.Errorf("%s: %v", name, err)
				}
				// (d) Fingerprint equals the never-churned oracle run.
				if got, want := contentFingerprint(res.notifs), contentFingerprint(calm.notifs); got != want {
					t.Errorf("%s: content fingerprint diverges from never-churned run (%d vs %d distinct keys)",
						name, len(strings.Split(got, "\n")), len(strings.Split(want, "\n")))
				}
			}

			// The run must actually have churned through the protocol paths.
			for _, marker := range []string{"join chaos-join-", "leave ", "crash ", "rejoin "} {
				if !traceHas(par.trace, marker) {
					t.Errorf("schedule never produced a %q event: test is vacuous", strings.TrimSpace(marker))
				}
			}
		})
	}
}

// TestProtocolChurnSeedsDiffer guards the membership schedule against
// silently ignoring its seed: distinct seeds must churn differently.
func TestProtocolChurnSeedsDiffer(t *testing.T) {
	a := runProtocolChurn(t, engine.SAI, 5, 25, 8, true)
	b := runProtocolChurn(t, engine.SAI, 6, 25, 8, true)
	if strings.Join(a.trace, "\n") == strings.Join(b.trace, "\n") {
		t.Fatalf("seeds 5 and 6 produced identical %d-event churn traces", len(a.trace))
	}
}
