package chaos

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"cqjoin/internal/chord"
	"cqjoin/internal/engine"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
	"cqjoin/internal/sim"
)

// The acceptance harness: drive a seeded workload over a network whose
// deliveries drop, duplicate and lag, while nodes crash and rejoin, then
// calm the injector, heal the overlay, and require the three invariants —
// ring integrity, no duplicate deliveries, and exact agreement with the
// centralized oracle — for all four algorithms. A failing seed is
// reproduced with CHAOS_SEED=<n> go test ./internal/chaos/.

// chaosSeed returns the run seed, overridable via the CHAOS_SEED
// environment variable for replaying a reported failure.
func chaosSeed(t *testing.T, fallback int64) int64 {
	t.Helper()
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", s, err)
		}
		t.Logf("seed overridden: CHAOS_SEED=%d", v)
		return v
	}
	return fallback
}

// chaosResult captures everything a run produced that reproducibility and
// the invariants are checked against.
type chaosResult struct {
	trace  []string
	notifs []engine.Notification
	oracle *engine.Oracle
	net    *chord.Network
}

var chaosQueries = []string{
	`SELECT R.A, S.D FROM R, S WHERE R.B = S.E`,
	`SELECT R.B, S.E FROM R, S WHERE R.A = S.D`,
	`SELECT R.A FROM R, S WHERE 2 * R.B = S.E + 1`,
	`SELECT S.D FROM R, S WHERE R.B = S.E AND R.C = 2`,
	`SELECT R.A, S.D FROM R, S WHERE R.B = S.E`, // duplicate condition: grouping path
}

// runChaos executes one seeded fault-injected workload and returns its
// artifacts. The workload randomness and the fault randomness come from
// separate sources so the event schedule is identical across algorithms.
func runChaos(t *testing.T, alg engine.Algorithm, seed int64, faults Config, events int) chaosResult {
	t.Helper()
	r := relation.MustSchema("R", "A", "B", "C")
	s := relation.MustSchema("S", "D", "E", "F")
	catalog := relation.MustCatalog(r, s)

	net := chord.New(chord.Config{})
	net.AddNodes("peer", 48)
	eng := engine.New(net, catalog, engine.Config{
		Algorithm:    alg,
		Seed:         seed,
		MaxRetries:   6,
		RetryBackoff: 1,
	})
	faults.Seed = seed
	in := New(eng, faults)
	oracle := engine.NewOracle()
	wl := sim.NewSource(seed + 1)

	alive := func() *chord.Node {
		nodes := net.Nodes()
		return nodes[wl.Intn(len(nodes))]
	}
	nextQuery := 0
	for step := 0; step < events; step++ {
		switch {
		case nextQuery < len(chaosQueries) && (step%8 == 0 || wl.Intn(6) == 0):
			q, err := eng.Subscribe(alive(), query.MustParse(catalog, chaosQueries[nextQuery]))
			if err != nil {
				t.Fatalf("subscribe: %v", err)
			}
			oracle.AddQuery(q)
			nextQuery++
		case wl.Intn(2) == 0:
			tu, err := eng.Publish(alive(), relation.MustTuple(r,
				relation.N(float64(wl.Intn(5))), relation.N(float64(wl.Intn(3))), relation.N(float64(wl.Intn(3)))))
			if err != nil {
				t.Fatalf("publish R: %v", err)
			}
			oracle.AddTuple(tu)
		default:
			tu, err := eng.Publish(alive(), relation.MustTuple(s,
				relation.N(float64(wl.Intn(5))), relation.N(float64(wl.Intn(3))), relation.N(float64(wl.Intn(3)))))
			if err != nil {
				t.Fatalf("publish S: %v", err)
			}
			oracle.AddTuple(tu)
		}
		in.Step()
	}
	in.Calm()
	if rounds, err := in.HealAll(60); err != nil {
		t.Fatalf("overlay did not converge after %d rounds: %v", rounds, err)
	}
	return chaosResult{trace: in.Trace(), notifs: eng.Notifications(), oracle: oracle, net: net}
}

// acceptanceFaults is the ISSUE.md acceptance configuration: 5% drops, 5%
// duplications, delays, and a 10% per-event crash/rejoin schedule.
func acceptanceFaults() Config {
	return Config{
		DropRate:       0.05,
		DupRate:        0.05,
		DelayRate:      0.05,
		MaxDelay:       4,
		CrashRate:      0.10,
		RejoinAfter:    15,
		StaleIPRate:    0.05,
		MinAlive:       16,
		StabilizeEvery: 4,
	}
}

func TestChaosInvariantsAllAlgorithms(t *testing.T) {
	seed := chaosSeed(t, 42)
	events := 120
	if testing.Short() {
		events = 60
	}
	for _, alg := range []engine.Algorithm{engine.SAI, engine.DAIQ, engine.DAIT, engine.DAIV} {
		t.Run(alg.String(), func(t *testing.T) {
			res := runChaos(t, alg, seed, acceptanceFaults(), events)
			if err := RingIntact(res.net); err != nil {
				t.Errorf("%v", err)
			}
			if err := NoDuplicateDeliveries(res.notifs); err != nil {
				t.Errorf("%v", err)
			}
			if err := Complete(res.oracle, res.notifs); err != nil {
				t.Errorf("%v", err)
			}
			if alg == engine.DAIQ || alg == engine.DAIV {
				if err := PairComplete(res.oracle, res.notifs); err != nil {
					t.Errorf("%v", err)
				}
			}
			if len(res.trace) == 0 {
				t.Errorf("no fault events injected: test is vacuous")
			}
		})
	}
}

// The reproducibility contract: one seed determines the whole run — the
// fault-event trace AND the delivered notifications, in order.
func TestChaosTraceReproducible(t *testing.T) {
	seed := chaosSeed(t, 7)
	a := runChaos(t, engine.SAI, seed, acceptanceFaults(), 80)
	b := runChaos(t, engine.SAI, seed, acceptanceFaults(), 80)
	if len(a.trace) != len(b.trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.trace), len(b.trace))
	}
	for i := range a.trace {
		if a.trace[i] != b.trace[i] {
			t.Fatalf("traces diverge at event %d:\n  run1: %s\n  run2: %s", i, a.trace[i], b.trace[i])
		}
	}
	if len(a.notifs) != len(b.notifs) {
		t.Fatalf("notification counts differ: %d vs %d", len(a.notifs), len(b.notifs))
	}
	for i := range a.notifs {
		ka, kb := deliveryIdentity(a.notifs[i]), deliveryIdentity(b.notifs[i])
		if ka != kb {
			t.Fatalf("delivery order diverges at %d: %s vs %s", i, ka, kb)
		}
	}
	if len(a.trace) == 0 {
		t.Fatal("no fault events injected: test is vacuous")
	}
}

// Distinct seeds must produce distinct fault schedules — a guard against
// the injector silently ignoring its seed.
func TestChaosSeedsDiffer(t *testing.T) {
	a := runChaos(t, engine.SAI, 1, acceptanceFaults(), 60)
	b := runChaos(t, engine.SAI, 2, acceptanceFaults(), 60)
	same := len(a.trace) == len(b.trace)
	if same {
		for i := range a.trace {
			if a.trace[i] != b.trace[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("seeds 1 and 2 produced identical %d-event traces", len(a.trace))
	}
}

// Each fault class alone must also be survivable — narrower configurations
// localize a regression faster than the full acceptance mix.
func TestChaosSingleFaultClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("long matrix")
	}
	cases := []struct {
		name   string
		faults Config
	}{
		{"drops", Config{DropRate: 0.15}},
		{"dups", Config{DupRate: 0.20}},
		{"delays", Config{DelayRate: 0.20, MaxDelay: 6}},
		{"churn", Config{CrashRate: 0.15, RejoinAfter: 12, MinAlive: 16, StabilizeEvery: 3}},
		{"stale-ip", Config{StaleIPRate: 0.25}},
	}
	seed := chaosSeed(t, 11)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := runChaos(t, engine.SAI, seed, tc.faults, 80)
			if err := NoDuplicateDeliveries(res.notifs); err != nil {
				t.Errorf("%v", err)
			}
			if err := Complete(res.oracle, res.notifs); err != nil {
				t.Errorf("%v", err)
			}
		})
	}
}

// A calm injector must be invisible: zero rates, no Steps, and the run must
// match a run without any interceptor, message for message.
func TestChaosZeroConfigIsTransparent(t *testing.T) {
	run := func(install bool) (map[string]int64, []engine.Notification) {
		r := relation.MustSchema("R", "A", "B", "C")
		s := relation.MustSchema("S", "D", "E", "F")
		catalog := relation.MustCatalog(r, s)
		net := chord.New(chord.Config{})
		net.AddNodes("peer", 32)
		eng := engine.New(net, catalog, engine.Config{Algorithm: engine.SAI})
		if install {
			New(eng, Config{})
		}
		if _, err := eng.Subscribe(net.Nodes()[0], query.MustParse(catalog, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if _, err := eng.Publish(net.Nodes()[i], relation.MustTuple(r, relation.N(float64(i)), relation.N(1), relation.N(0))); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Publish(net.Nodes()[i+1], relation.MustTuple(s, relation.N(float64(i)), relation.N(1), relation.N(0))); err != nil {
				t.Fatal(err)
			}
		}
		msgs, hops := net.Traffic().Snapshot()
		counts := make(map[string]int64)
		for kind, v := range msgs {
			counts[kind] = v
		}
		for kind, v := range hops {
			counts[kind+"/hops"] = v
		}
		return counts, eng.Notifications()
	}
	base, baseN := run(false)
	with, withN := run(true)
	if len(baseN) != len(withN) {
		t.Fatalf("notification counts differ: %d vs %d", len(baseN), len(withN))
	}
	if fmt.Sprint(base) != fmt.Sprint(with) {
		t.Fatalf("traffic ledgers differ:\nwithout: %v\nwith:    %v", base, with)
	}
}
