package chaos

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"cqjoin/internal/chord"
	"cqjoin/internal/engine"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
	"cqjoin/internal/sim"
)

// Hot-key sharding under protocol churn: a skewed workload promotes a
// value-level input to a replica group while nodes join, leave, crash and
// rejoin through the maintenance protocol. The promoted epoch state — the
// shard registry, the scattered rewrite copies, the relayed tuples — must
// survive the churn: after calming and healing, the run must lose and
// duplicate nothing and reproduce the never-churned fingerprint, at any
// worker count.

// runHotKeyChurn mirrors runProtocolChurn with two changes: the engine
// runs with hot-key sharding armed, and the workload is skewed — half of
// all draws pin the join attribute (R.B / S.E) to the hot value 7, so one
// value-level input per side concentrates enough traffic to cross the
// promotion threshold mid-run. The window is effectively infinite so the
// promotion decision is a pure function of the per-input bump count,
// independent of the delivery reordering churn introduces.
func runHotKeyChurn(t *testing.T, seed int64, batches, workers int, churn bool) (chaosResult, []engine.HotKeyState) {
	t.Helper()
	r := relation.MustSchema("R", "A", "B", "C")
	s := relation.MustSchema("S", "D", "E", "F")
	catalog := relation.MustCatalog(r, s)

	net := chord.New(chord.Config{})
	net.AddNodes("peer", 48)
	eng := engine.New(net, catalog, engine.Config{
		Algorithm:       engine.SAI,
		Seed:            seed,
		MaxRetries:      6,
		RetryBackoff:    1,
		HotKeyThreshold: 8,
		HotKeyReplicas:  4,
		HotKeyWindow:    1 << 20,
	})
	var in *Injector
	if churn {
		faults := protocolFaults()
		faults.Seed = seed
		in = New(eng, faults)
	}
	oracle := engine.NewOracle()
	wl := sim.NewSource(seed + 1)

	base := net.Nodes()
	for qi, qs := range chaosQueries {
		q, err := eng.Subscribe(base[(qi*7)%len(base)], query.MustParse(catalog, qs))
		if err != nil {
			t.Fatalf("subscribe: %v", err)
		}
		oracle.AddQuery(q)
	}
	// Skewed join-attribute draw: value 7 on half the draws, a uniform
	// cold value otherwise.
	joinVal := func() float64 {
		if wl.Intn(2) == 0 {
			return 7
		}
		return float64(wl.Intn(3))
	}
	for b := 0; b < batches; b++ {
		const batchLen = 4
		stamp := net.Clock().Now()
		ops := make([]engine.PublishOp, 0, batchLen)
		for i := 0; i < batchLen; i++ {
			var tu *relation.Tuple
			if wl.Intn(2) == 0 {
				tu = relation.MustTuple(r,
					relation.N(float64(wl.Intn(5))), relation.N(joinVal()), relation.N(float64(wl.Intn(3))))
			} else {
				tu = relation.MustTuple(s,
					relation.N(float64(wl.Intn(5))), relation.N(joinVal()), relation.N(float64(wl.Intn(3))))
			}
			nodes := net.Nodes()
			ops = append(ops, engine.PublishOp{From: nodes[wl.Intn(len(nodes))], T: tu})
			oracle.AddTuple(tu.WithPubT(stamp + int64(i) + 1))
		}
		if err := eng.PublishBatch(ops, workers); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		if in != nil {
			in.Step()
		}
	}
	var trace []string
	if in != nil {
		in.Calm()
		if rounds, err := in.HealAll(80); err != nil {
			t.Fatalf("overlay did not converge after %d rounds: %v", rounds, err)
		}
		trace = in.Trace()
	}
	return chaosResult{trace: trace, notifs: eng.Notifications(), oracle: oracle, net: net}, eng.HotKeys()
}

// TestHotKeyChurnConvergence: with a key promoted mid-run, a
// protocol-churned run at parallelism 1 and 8 must agree with each other
// bit-for-bit (same fault trace, same delivery multiset, same hot-key
// registry), converge to a Zave-invariant ring, lose and duplicate
// nothing, and reproduce the never-churned run's content fingerprint.
func TestHotKeyChurnConvergence(t *testing.T) {
	seed := chaosSeed(t, 31)
	batches := 40
	if testing.Short() {
		batches = 20
	}
	calm, calmHot := runHotKeyChurn(t, seed, batches, 8, false)
	seq, seqHot := runHotKeyChurn(t, seed, batches, 1, true)
	par, parHot := runHotKeyChurn(t, seed, batches, 8, true)

	// Non-vacuity: the skew must actually promote the hot value, with and
	// without churn, and churn must not disturb the final registry.
	for name, hot := range map[string][]engine.HotKeyState{"calm": calmHot, "w1": seqHot, "w8": parHot} {
		promoted := false
		for _, h := range hot {
			if strings.HasSuffix(h.Input, "+7") && h.Replicas == 4 {
				promoted = true
			}
		}
		if !promoted {
			t.Fatalf("%s: skewed stream never promoted the hot value: %v", name, hot)
		}
	}
	if !reflect.DeepEqual(seqHot, parHot) {
		t.Fatalf("hot-key registries diverge across parallelism:\n w1=%v\n w8=%v", seqHot, parHot)
	}

	// Worker count must not change the churned run: same fault-event
	// multiset, same delivery multiset.
	sortedTrace := func(trace []string) []string {
		out := append([]string(nil), trace...)
		sort.Strings(out)
		return out
	}
	ts, tp := sortedTrace(seq.trace), sortedTrace(par.trace)
	if len(ts) != len(tp) {
		t.Fatalf("trace lengths differ across parallelism: %d vs %d", len(ts), len(tp))
	}
	for i := range ts {
		if ts[i] != tp[i] {
			t.Fatalf("fault-event multisets diverge at %d:\n  w1: %s\n  w8: %s", i, ts[i], tp[i])
		}
	}
	ids := func(ns []engine.Notification) []string {
		out := make([]string, len(ns))
		for i, n := range ns {
			out[i] = deliveryIdentity(n)
		}
		sort.Strings(out)
		return out
	}
	is, ip := ids(seq.notifs), ids(par.notifs)
	if len(is) != len(ip) {
		t.Fatalf("notification counts differ across parallelism: %d vs %d", len(is), len(ip))
	}
	for i := range is {
		if is[i] != ip[i] {
			t.Fatalf("delivery sets diverge at %d: %s vs %s", i, is[i], ip[i])
		}
	}

	for name, res := range map[string]chaosResult{"w1": seq, "w8": par} {
		if rep := chord.CheckRing(res.net); !rep.Converged() {
			t.Errorf("%s: %s", name, rep)
		}
		if err := RingIntact(res.net); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if err := NoDuplicateDeliveries(res.notifs); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if err := Complete(res.oracle, res.notifs); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if got, want := contentFingerprint(res.notifs), contentFingerprint(calm.notifs); got != want {
			t.Errorf("%s: content fingerprint diverges from never-churned run (%d vs %d distinct keys)",
				name, len(strings.Split(got, "\n")), len(strings.Split(want, "\n")))
		}
	}

	// The schedule must actually have churned while the key was hot.
	for _, marker := range []string{"join chaos-join-", "leave ", "crash ", "rejoin "} {
		if !traceHas(par.trace, marker) {
			t.Errorf("schedule never produced a %q event: test is vacuous", strings.TrimSpace(marker))
		}
	}
}
