// Package chaos is a deterministic fault-injection layer for the simulated
// overlay. It hooks the single choke point where the simulation delivers a
// message to a node (chord.Interceptor) and perturbs the run with message
// drops, duplications and bounded delays, plus node crash/rejoin schedules
// and stale-subscriber-address events — every decision drawn from one
// seeded random source, so one int64 seed reproduces the whole fault
// schedule event for event. The invariant harness (invariants.go) checks
// that the engine's robustness mechanisms — retries, duplicate absorption,
// key hand-off, offline-notification replay — turn this hostile network
// back into exactly the answer set of the centralized oracle.
package chaos

import (
	"fmt"
	"sync"

	"cqjoin/internal/chord"
	"cqjoin/internal/engine"
	"cqjoin/internal/sim"
	"cqjoin/internal/wire"
)

// Config parameterizes an Injector. All rates are probabilities in [0, 1].
type Config struct {
	// Seed drives every fault decision. Runs with equal seeds (and equal
	// workloads) produce identical traces.
	Seed int64
	// DropRate is the per-delivery probability the message vanishes. The
	// sender sees a missing ack and may retry.
	DropRate float64
	// DupRate is the per-delivery probability the message arrives twice.
	DupRate float64
	// DelayRate is the per-delivery probability the message is held back
	// and released only once the logical clock passes its due time. A
	// delayed delivery is unacked at send time, like a drop; the late copy
	// must be absorbed by the receiver's idempotence.
	DelayRate float64
	// MaxDelay bounds the hold-back duration in logical time units
	// (uniform in [1, MaxDelay]). Zero means 3.
	MaxDelay int64
	// CrashRate is the per-Step probability that one random alive node
	// crashes (fail-stop, no goodbye; see engine.FailNode).
	CrashRate float64
	// RejoinAfter is how long (logical time) a crashed node stays down
	// before Step brings it back under the same key. Zero means 10.
	RejoinAfter int64
	// StaleIPRate is the per-Step probability that one random alive node
	// changes its address, invalidating every learned subscriber IP that
	// points at it (the Section 4.6 stale-address scenario).
	StaleIPRate float64
	// JoinRate is the per-Step probability that one brand-new node joins
	// the overlay. Joined nodes get deterministic keys derived from the
	// injector's join counter, so the same seed replays the same
	// membership schedule.
	JoinRate float64
	// LeaveRate is the per-Step probability that one random alive node
	// leaves voluntarily (keys handed to its successor before departure,
	// unlike a crash). The departed node is scheduled to rejoin after
	// RejoinAfter, exactly like a crash victim, so invariant checks after
	// HealAll compare against a full-membership oracle.
	LeaveRate float64
	// ProtocolChurn switches every membership change — crash, rejoin, join,
	// leave — from the oracle-repair paths (Network.Fail/Join, which splice
	// pointers exactly) to the protocol-only paths (FailProtocol/
	// JoinProtocol/LeaveProtocol): pointers then converge solely through
	// check-predecessor, successor-list failover, stabilize/notify and
	// fix-fingers, and key hand-off to a joiner happens at its successor's
	// notify-adoption. Runs with ProtocolChurn need StabilizeEvery > 0 (or
	// HealAll) for joins to splice at all.
	ProtocolChurn bool
	// MinAlive suppresses crashes that would leave fewer alive nodes.
	// Zero means 4.
	MinAlive int
	// StabilizeEvery runs one overlay maintenance round
	// (chord.StabilizeOnce) every that many Steps. Zero disables periodic
	// maintenance; the overlay then heals only through the local repairs
	// crashes and joins trigger, and through HealAll.
	StabilizeEvery int
	// RestartEvery flags a whole-process crash/restart every that many
	// Steps (0 disables). The injector cannot restart the process that
	// hosts it, so Step only raises the flag and traces "proc-restart";
	// the harness owning the engine polls TakeRestart, abandons its
	// durable state, rebuilds the engine, recovers, and hands the new
	// engine back through Rebind. In-flight parked deliveries die with
	// the old process, exactly as a kill -9 would lose them.
	RestartEvery int
	// KeyedDraws switches per-delivery fault decisions from the shared
	// sequential rng stream to draws keyed by message content (encoded
	// bytes + endpoint keys + per-content attempt number + Seed). The fate
	// of a delivery then no longer depends on how deliveries interleave,
	// which is what makes a chaos run reproducible under the engine's
	// parallel publish pipeline (DESIGN.md §8). Step-level events (crashes,
	// stale IPs) still use the sequential stream — Step runs between
	// batches, never inside one.
	KeyedDraws bool
}

func (c Config) withDefaults() Config {
	if c.MaxDelay <= 0 {
		c.MaxDelay = 3
	}
	if c.RejoinAfter <= 0 {
		c.RejoinAfter = 10
	}
	if c.MinAlive <= 0 {
		c.MinAlive = 4
	}
	return c
}

// crashed tracks a node that is down and when it becomes due to rejoin.
type crashed struct {
	key      string
	rejoinAt int64
}

// Injector implements chord.Interceptor. Construct with New, which
// installs it on the engine's network; drive Step between workload events;
// call Calm and HealAll before checking invariants.
//
// Concurrency: fault decisions and the trace are taken under an internal
// mutex, but the mutex is NEVER held across a forward() call — delivering
// a message re-enters node handlers, which send messages of their own and
// come back through Deliver.
type Injector struct {
	cfg Config
	eng *engine.Engine
	net *chord.Network
	rng *sim.Source
	dq  *sim.DelayQueue

	mu          sync.Mutex
	calm        bool
	draining    bool
	steps       int
	incarnation int
	joinSeq     int // deterministic naming for JoinRate joiners
	restartDue  bool
	down        []crashed
	trace       []string

	// Keyed-draw state (all under mu): the per-content attempt counters
	// give a retried or duplicated message a fresh draw while keeping the
	// draw independent of delivery interleaving, and encBuf is the reused
	// encode scratch. Never cleared: whether a counter has been seen must
	// not depend on delivery order.
	attempts map[uint64]int64
	encBuf   wire.Buffer

	// drain's reusable release buffer; only the single active drainer
	// (guarded by draining) touches it.
	scratch []func()
}

// New builds an Injector over the engine's overlay, installs it as the
// network interceptor and hangs its delay queue on the logical clock, so
// whoever advances time releases due deliveries.
func New(eng *engine.Engine, cfg Config) *Injector {
	in := &Injector{
		cfg:      cfg.withDefaults(),
		eng:      eng,
		net:      eng.Network(),
		rng:      sim.NewSource(cfg.Seed),
		dq:       &sim.DelayQueue{},
		attempts: make(map[uint64]int64),
	}
	in.net.Clock().AddListener(func(now int64) { in.drain(now) })
	in.net.SetInterceptor(in)
	return in
}

// Deliver decides the fate of one message delivery. Self-deliveries pass
// through untouched: a node's message to itself never crosses the network
// (notification replay after a rejoin is such a local hand-over).
func (in *Injector) Deliver(from, dst *chord.Node, msg chord.Message, forward func() bool) int {
	in.mu.Lock()
	if in.calm || from == dst {
		in.mu.Unlock()
		return ack(forward())
	}
	kind := msg.Kind()
	now := in.net.Clock().Now()
	c := in.cfg
	var p float64
	var d, prio int64
	if c.KeyedDraws {
		p, d, prio = in.keyedDrawLocked(from, dst, msg)
	} else {
		p = in.rng.Float64() // one draw per delivery keeps the schedule stable
	}
	switch {
	case p < c.DropRate:
		in.tracefLocked("t=%d drop %s %s->%s", now, kind, from.Key(), dst.Key())
		in.mu.Unlock()
		in.net.Traffic().RecordDrop(kind)
		return 0
	case p < c.DropRate+c.DupRate:
		in.tracefLocked("t=%d dup %s %s->%s", now, kind, from.Key(), dst.Key())
		in.mu.Unlock()
		first := forward()
		second := forward()
		return ack(first || second)
	case p < c.DropRate+c.DupRate+c.DelayRate:
		if !c.KeyedDraws {
			// Drawn lazily so the legacy rng stream is untouched on the
			// other fates — existing seeded traces stay reproducible.
			d = 1 + in.rng.Int63n(c.MaxDelay)
		}
		in.tracefLocked("t=%d delay+%d %s %s->%s", now, d, kind, from.Key(), dst.Key())
		in.mu.Unlock()
		in.net.Traffic().RecordDelayed(kind)
		in.dq.PushAtPrio(now+d, prio, func() {
			in.tracef("t=%d release %s %s->%s", in.net.Clock().Now(), kind, from.Key(), dst.Key())
			forward() // checks dst.Alive itself; a crashed recipient loses the copy
		})
		return 0 // unacked: the sender treats it as lost and may retry
	default:
		in.mu.Unlock()
		return ack(forward())
	}
}

// ParallelSafe reports whether this injector's per-delivery decisions are
// independent of delivery interleaving, i.e. whether the engine's batched
// publish pipeline may fan deliveries out to workers without changing the
// fault schedule. Only keyed draws qualify; the legacy shared-stream mode
// forces the engine back to sequential publishing.
func (in *Injector) ParallelSafe() bool { return in.cfg.KeyedDraws }

// mix64 is the splitmix64 finalizer — a cheap bijective scrambler used to
// fold the seed and attempt number into the content hash.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// keyedDrawLocked derives a delivery's fate from its content rather than
// from a shared draw sequence: FNV-1a over the encoded message plus the
// endpoint keys identifies the delivery, a per-content attempt counter
// distinguishes retries and duplicate forwards of the same message, and
// the seed folds in so different seeds give different schedules. Returns
// the fate draw p, a delay in [1, MaxDelay] and a release priority that
// orders same-tick releases content-deterministically. Caller holds in.mu.
func (in *Injector) keyedDrawLocked(from, dst *chord.Node, msg chord.Message) (p float64, d, prio int64) {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	step := func(bs []byte) {
		for _, b := range bs {
			h = (h ^ uint64(b)) * fnvPrime
		}
	}
	in.encBuf.Reset()
	if err := engine.EncodeMessage(&in.encBuf, msg); err == nil {
		step(in.encBuf.Bytes())
	} else {
		step([]byte(msg.Kind()))
	}
	step([]byte(from.Key()))
	h = (h ^ 0) * fnvPrime // separator: ("ab","c") != ("a","bc")
	step([]byte(dst.Key()))

	in.attempts[h]++
	x := mix64(h ^ mix64(uint64(in.cfg.Seed)) ^ mix64(uint64(in.attempts[h])))
	p = float64(x>>11) / float64(1<<53)
	x = mix64(x)
	d = 1 + int64(x%uint64(in.cfg.MaxDelay))
	prio = int64(mix64(x) >> 1)
	return p, d, prio
}

func ack(delivered bool) int {
	if delivered {
		return 1
	}
	return 0
}

// drain releases every parked delivery that has come due. It runs on every
// clock advance; re-entrant advances (a released delivery triggers a retry
// backoff, which advances the clock again) fall through the guard and are
// picked up by the outer loop's next iteration.
func (in *Injector) drain(int64) {
	in.mu.Lock()
	if in.draining {
		in.mu.Unlock()
		return
	}
	in.draining = true
	in.mu.Unlock()
	defer func() {
		in.mu.Lock()
		in.draining = false
		in.mu.Unlock()
	}()
	for {
		in.scratch = in.dq.PopDueInto(in.net.Clock().Now(), in.scratch)
		fns := in.scratch
		if len(fns) == 0 {
			return
		}
		for _, fn := range fns {
			fn()
		}
	}
}

// Step advances the fault schedule by one workload event: due crashed
// nodes rejoin, at most one node crashes, at most one node changes
// address, and periodic overlay maintenance runs.
func (in *Injector) Step() {
	now := in.net.Clock().Now()
	in.mu.Lock()
	if in.calm {
		in.mu.Unlock()
		return
	}
	in.steps++
	steps := in.steps
	var due []crashed
	keep := in.down[:0]
	for _, c := range in.down {
		if now >= c.rejoinAt {
			due = append(due, c)
		} else {
			keep = append(keep, c)
		}
	}
	in.down = keep
	// Every rate draw is guarded by rate > 0 so schedules that do not use a
	// fault class leave the shared rng stream untouched — existing seeded
	// traces stay bit-identical as new classes are added.
	crash := in.cfg.CrashRate > 0 && in.rng.Float64() < in.cfg.CrashRate
	stale := in.cfg.StaleIPRate > 0 && in.rng.Float64() < in.cfg.StaleIPRate
	join := in.cfg.JoinRate > 0 && in.rng.Float64() < in.cfg.JoinRate
	leave := in.cfg.LeaveRate > 0 && in.rng.Float64() < in.cfg.LeaveRate
	if in.cfg.RestartEvery > 0 && steps%in.cfg.RestartEvery == 0 {
		in.restartDue = true
		in.tracefLocked("t=%d proc-restart", now)
	}
	in.mu.Unlock()

	for _, c := range due {
		in.rejoin(c.key)
	}
	if crash {
		in.crashRandom(now)
	}
	if stale {
		in.changeRandomIP(now)
	}
	if join {
		in.joinFresh(now)
	}
	if leave {
		in.leaveRandom(now)
	}
	if in.cfg.StabilizeEvery > 0 && steps%in.cfg.StabilizeEvery == 0 {
		in.net.StabilizeOnce(1)
		in.tracef("t=%d stabilize", now)
	}
}

// crashRandom fail-stops one random alive node, respecting MinAlive, and
// schedules its rejoin.
func (in *Injector) crashRandom(now int64) {
	nodes := in.net.Nodes()
	if len(nodes) <= in.cfg.MinAlive {
		return
	}
	victim := nodes[in.rng.Intn(len(nodes))]
	if in.cfg.ProtocolChurn {
		in.eng.FailNodeProtocol(victim)
	} else {
		in.eng.FailNode(victim)
	}
	in.tracef("t=%d crash %s", now, victim.Key())
	in.mu.Lock()
	in.down = append(in.down, crashed{key: victim.Key(), rejoinAt: now + in.cfg.RejoinAfter})
	in.mu.Unlock()
}

// joinFresh adds one brand-new node under a deterministic key derived from
// the injector's join counter, so the same seed produces the same
// membership schedule.
func (in *Injector) joinFresh(now int64) {
	in.mu.Lock()
	in.joinSeq++
	key := fmt.Sprintf("chaos-join-%d", in.joinSeq)
	in.mu.Unlock()
	var err error
	if in.cfg.ProtocolChurn {
		_, err = in.eng.JoinNodeProtocol(key)
	} else {
		_, err = in.eng.RejoinNode(key) // oracle join + attach
	}
	if err != nil {
		in.tracef("join-failed %s: %v", key, err)
		return
	}
	in.tracef("t=%d join %s", now, key)
}

// leaveRandom makes one random alive node depart voluntarily — its keys
// move to its successor before it goes, so nothing is lost — and schedules
// it to come back like a crash victim, keeping the eventual membership
// equal to the oracle run's.
func (in *Injector) leaveRandom(now int64) {
	nodes := in.net.Nodes()
	if len(nodes) <= in.cfg.MinAlive {
		return
	}
	victim := nodes[in.rng.Intn(len(nodes))]
	if in.cfg.ProtocolChurn {
		in.eng.LeaveNodeProtocol(victim)
	} else {
		in.net.Leave(victim)
		in.eng.Detach(victim)
	}
	in.tracef("t=%d leave %s", now, victim.Key())
	in.mu.Lock()
	in.down = append(in.down, crashed{key: victim.Key(), rejoinAt: now + in.cfg.RejoinAfter})
	in.mu.Unlock()
}

// rejoin brings a crashed node back under its old key — same ring
// position, fresh state from the key hand-off — at a NEW address, so any
// subscriber IP learned before the crash is now stale.
func (in *Injector) rejoin(key string) {
	var n *chord.Node
	var err error
	if in.cfg.ProtocolChurn {
		n, err = in.eng.RejoinNodeProtocol(key)
	} else {
		n, err = in.eng.RejoinNode(key)
	}
	if err != nil {
		in.tracef("rejoin-failed %s: %v", key, err)
		return
	}
	in.mu.Lock()
	in.incarnation++
	inc := in.incarnation
	in.mu.Unlock()
	n.SetIP(fmt.Sprintf("sim://%s#i%d", n.ID().Short(), inc))
	in.tracef("t=%d rejoin %s", in.net.Clock().Now(), key)
}

// changeRandomIP re-addresses one random alive node without a crash
// (reconnect, NAT rebinding): learned notification addresses for it go
// stale and the delivery ladder must fall back to DHT routing.
func (in *Injector) changeRandomIP(now int64) {
	nodes := in.net.Nodes()
	if len(nodes) == 0 {
		return
	}
	n := nodes[in.rng.Intn(len(nodes))]
	in.mu.Lock()
	in.incarnation++
	inc := in.incarnation
	in.mu.Unlock()
	n.SetIP(fmt.Sprintf("sim://%s#i%d", n.ID().Short(), inc))
	in.tracef("t=%d stale-ip %s", now, n.Key())
}

// Calm stops injecting faults (deliveries pass through untouched) and
// flushes every still-parked delayed delivery by advancing the clock to
// each due time. Crashed nodes stay down; HealAll brings them back.
func (in *Injector) Calm() {
	in.mu.Lock()
	in.calm = true
	in.mu.Unlock()
	in.Flush()
}

// Flush releases all parked deliveries in due order, advancing the logical
// clock as needed.
func (in *Injector) Flush() {
	for {
		due, ok := in.dq.NextDue()
		if !ok {
			return
		}
		now := in.net.Clock().Now()
		if due > now {
			in.net.Clock().Advance(due - now) // listener drains
		} else {
			in.drain(now)
		}
	}
}

// HealAll rejoins every crashed node and runs overlay maintenance rounds
// until the ring is exact (RingIntact) or maxRounds is exhausted. It
// returns the number of rounds used and the final ring-check result.
func (in *Injector) HealAll(maxRounds int) (int, error) {
	in.mu.Lock()
	down := in.down
	in.down = nil
	in.mu.Unlock()
	for _, c := range down {
		in.rejoin(c.key)
	}
	if maxRounds < 1 {
		maxRounds = 1
	}
	var err error
	for round := 1; round <= maxRounds; round++ {
		in.net.StabilizeOnce(4)
		if err = RingIntact(in.net); err == nil {
			return round, nil
		}
	}
	return maxRounds, err
}

// TakeRestart consumes the process-restart flag RestartEvery raises: it
// reports whether a restart came due since the last call. The harness
// reacts by killing its engine (durable.Store.Abandon), rebuilding it,
// recovering, and calling Rebind with the new engine.
func (in *Injector) TakeRestart() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	due := in.restartDue
	in.restartDue = false
	return due
}

// Rebind moves the injector onto a rebuilt engine after a process
// crash/restart: it installs itself as the new network's interceptor and
// clock listener, drops every parked delivery (in-flight messages die
// with the crashed process), resets the per-content attempt counters so
// replayed traffic re-experiences the original keyed fault schedule, and
// re-downs the given node keys — the crash schedule the old process was
// under, typically RecoveryInfo.Down — scheduling their rejoin afresh.
// The rng position, step count, join counter and trace carry over, so
// one seed still determines the whole multi-incarnation run.
func (in *Injector) Rebind(eng *engine.Engine, down []string) {
	in.mu.Lock()
	in.eng = eng
	in.net = eng.Network()
	in.dq = &sim.DelayQueue{}
	in.attempts = make(map[uint64]int64)
	in.down = nil
	in.mu.Unlock()
	in.net.Clock().AddListener(func(now int64) { in.drain(now) })
	in.net.SetInterceptor(in)

	now := in.net.Clock().Now()
	var rebuilt []crashed
	for _, key := range down {
		n := in.net.NodeByKey(key)
		if n == nil || !n.Alive() {
			continue
		}
		if in.cfg.ProtocolChurn {
			in.eng.FailNodeProtocol(n)
		} else {
			in.eng.FailNode(n)
		}
		rebuilt = append(rebuilt, crashed{key: key, rejoinAt: now + in.cfg.RejoinAfter})
	}
	in.mu.Lock()
	in.down = rebuilt
	in.mu.Unlock()
	in.tracef("t=%d rebind %d-down", now, len(rebuilt))
}

// Downed returns the keys of nodes currently crashed and awaiting rejoin.
func (in *Injector) Downed() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	keys := make([]string, len(in.down))
	for i, c := range in.down {
		keys[i] = c.key
	}
	return keys
}

// Trace returns a copy of the fault-event trace so far. Two runs with the
// same seed and workload produce identical traces — the reproducibility
// contract chaos tests assert.
func (in *Injector) Trace() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, len(in.trace))
	copy(out, in.trace)
	return out
}

func (in *Injector) tracef(format string, args ...interface{}) {
	in.mu.Lock()
	in.tracefLocked(format, args...)
	in.mu.Unlock()
}

func (in *Injector) tracefLocked(format string, args ...interface{}) {
	in.trace = append(in.trace, fmt.Sprintf(format, args...))
}
