package durable

import (
	"fmt"

	"cqjoin/internal/relation"
	"cqjoin/internal/wire"
)

// WAL record codec. One record is one engine-visible event: a client
// operation (subscribe, unsubscribe, publish, batch publish), an inbound
// overlay delivery from a remote process, or a membership view adoption.
// The codec mirrors the engine message codec's structure — dense tag
// constants, one encoder arm per tag, one ordered decoder arm per tag,
// //wire:field enc/size/dec directives on every arm — so cqlint's wiretag
// and wiresync analyzers gate the WAL exactly like the overlay wire
// protocol (ISSUE 10).

// Record tags. Dense 1..N; the wiretag analyzer rejects gaps and reuse.
const (
	tagSubscribe byte = iota + 1
	tagUnsubscribe
	tagPublish
	tagBatch
	tagDelivery
	tagView
)

// subscribeRec logs one completed Subscribe/SubscribeMulti: the client
// node, the (oriented, for multi-way) query text, and the key the engine
// assigned — replay re-derives the key from the restored sequence
// counters and asserts it matches.
type subscribeRec struct {
	Node  string
	SQL   string
	Key   string
	Multi bool
}

// unsubscribeRec logs one completed Unsubscribe/UnsubscribeMulti.
type unsubscribeRec struct {
	Node  string
	SQL   string
	Key   string
	Multi bool
}

// publishRec logs one completed Publish of the unstamped input tuple;
// replay re-stamps it through the restored clock.
type publishRec struct {
	Node string
	T    *relation.Tuple
}

// batchRec logs one completed PublishBatch.
type batchRec struct {
	Nodes   []string
	Tuples  []*relation.Tuple
	Workers int
}

// deliveryRec logs one inbound remote delivery, acknowledged only after
// this record is durable: the destination node key and the encoded
// engine message.
type deliveryRec struct {
	Node  string
	Frame []byte
}

// viewRec logs one adopted membership view.
type viewRec struct {
	View *wire.MemberView
}

// encodeRecord writes one WAL record, tag first.
func encodeRecord(w *wire.Buffer, rec any) error {
	w.Grow(recordSize(rec))
	switch m := rec.(type) {
	//wire:field enc subscribeRec Node SQL Key Multi
	case subscribeRec:
		w.PutUvarint(uint64(tagSubscribe))
		w.PutString(m.Node)
		w.PutString(m.SQL)
		w.PutString(m.Key)
		w.PutUvarint(boolBit(m.Multi))
	//wire:field enc unsubscribeRec Node SQL Key Multi
	case unsubscribeRec:
		w.PutUvarint(uint64(tagUnsubscribe))
		w.PutString(m.Node)
		w.PutString(m.SQL)
		w.PutString(m.Key)
		w.PutUvarint(boolBit(m.Multi))
	//wire:field enc publishRec Node T
	case publishRec:
		w.PutUvarint(uint64(tagPublish))
		w.PutString(m.Node)
		wire.EncodeTuple(w, m.T)
	//wire:field enc batchRec Nodes Tuples Workers
	case batchRec:
		w.PutUvarint(uint64(tagBatch))
		w.PutUvarint(uint64(len(m.Nodes)))
		for _, k := range m.Nodes {
			w.PutString(k)
		}
		w.PutUvarint(uint64(len(m.Tuples)))
		for _, t := range m.Tuples {
			wire.EncodeTuple(w, t)
		}
		w.PutUvarint(uint64(m.Workers))
	//wire:field enc deliveryRec Node Frame
	case deliveryRec:
		w.PutUvarint(uint64(tagDelivery))
		w.PutString(m.Node)
		w.PutBytes(m.Frame)
	//wire:field enc viewRec View
	case viewRec:
		w.PutUvarint(uint64(tagView))
		wire.EncodeMemberView(w, m.View)
	default:
		return fmt.Errorf("durable: no codec for record type %T", rec)
	}
	return nil
}

// recordSize returns a record's exact encoded length (mirroring
// encodeRecord field for field, like the engine's wireSize).
func recordSize(rec any) int {
	const tagLen = 1
	switch m := rec.(type) {
	//wire:field size subscribeRec Node SQL Key Multi
	case subscribeRec:
		return tagLen + wire.SizeString(m.Node) + wire.SizeString(m.SQL) +
			wire.SizeString(m.Key) + wire.SizeUvarint(boolBit(m.Multi))
	//wire:field size unsubscribeRec Node SQL Key Multi
	case unsubscribeRec:
		return tagLen + wire.SizeString(m.Node) + wire.SizeString(m.SQL) +
			wire.SizeString(m.Key) + wire.SizeUvarint(boolBit(m.Multi))
	//wire:field size publishRec Node T
	case publishRec:
		return tagLen + wire.SizeString(m.Node) + wire.SizeTuple(m.T)
	//wire:field size batchRec Nodes Tuples Workers
	case batchRec:
		n := tagLen + wire.SizeUvarint(uint64(len(m.Nodes)))
		for _, k := range m.Nodes {
			n += wire.SizeString(k)
		}
		n += wire.SizeUvarint(uint64(len(m.Tuples)))
		for _, t := range m.Tuples {
			n += wire.SizeTuple(t)
		}
		return n + wire.SizeUvarint(uint64(m.Workers))
	//wire:field size deliveryRec Node Frame
	case deliveryRec:
		return tagLen + wire.SizeString(m.Node) +
			wire.SizeUvarint(uint64(len(m.Frame))) + len(m.Frame)
	//wire:field size viewRec View
	case viewRec:
		return tagLen + wire.SizeMemberView(m.View)
	default:
		return 0
	}
}

// decodeRecord reads one WAL record encoded by encodeRecord.
func decodeRecord(r *wire.Reader) (any, error) {
	tag, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	switch byte(tag) {
	//wire:field dec subscribeRec Node SQL Key Multi
	case tagSubscribe:
		var m subscribeRec
		if m.Node, err = r.String(); err != nil {
			return nil, err
		}
		if m.SQL, err = r.String(); err != nil {
			return nil, err
		}
		if m.Key, err = r.String(); err != nil {
			return nil, err
		}
		multi, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		m.Multi = multi != 0
		return m, nil
	//wire:field dec unsubscribeRec Node SQL Key Multi
	case tagUnsubscribe:
		var m unsubscribeRec
		if m.Node, err = r.String(); err != nil {
			return nil, err
		}
		if m.SQL, err = r.String(); err != nil {
			return nil, err
		}
		if m.Key, err = r.String(); err != nil {
			return nil, err
		}
		multi, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		m.Multi = multi != 0
		return m, nil
	//wire:field dec publishRec Node T
	case tagPublish:
		var m publishRec
		if m.Node, err = r.String(); err != nil {
			return nil, err
		}
		if m.T, err = wire.DecodeTuple(r); err != nil {
			return nil, err
		}
		return m, nil
	//wire:field dec batchRec Nodes Tuples Workers
	case tagBatch:
		var m batchRec
		nn, err := recCount(r)
		if err != nil {
			return nil, err
		}
		m.Nodes = make([]string, nn)
		for i := range m.Nodes {
			if m.Nodes[i], err = r.String(); err != nil {
				return nil, err
			}
		}
		nt, err := recCount(r)
		if err != nil {
			return nil, err
		}
		m.Tuples = make([]*relation.Tuple, nt)
		for i := range m.Tuples {
			if m.Tuples[i], err = wire.DecodeTuple(r); err != nil {
				return nil, err
			}
		}
		workers, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		m.Workers = int(workers)
		return m, nil
	//wire:field dec deliveryRec Node Frame
	case tagDelivery:
		var m deliveryRec
		if m.Node, err = r.String(); err != nil {
			return nil, err
		}
		if m.Frame, err = r.Bytes(); err != nil {
			return nil, err
		}
		return m, nil
	//wire:field dec viewRec View
	case tagView:
		var m viewRec
		if m.View, err = wire.DecodeMemberView(r); err != nil {
			return nil, err
		}
		return m, nil
	default:
		return nil, fmt.Errorf("durable: unknown record tag %d", tag)
	}
}

// recCount validates an element count against the bytes remaining, like
// the engine codec's sliceCount: every element takes at least one byte.
func recCount(r *wire.Reader) (int, error) {
	n, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(r.Remaining()) {
		return 0, fmt.Errorf("durable: element count %d exceeds %d remaining bytes", n, r.Remaining())
	}
	return int(n), nil
}

// boolBit renders a bool as its uvarint wire bit.
func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
