package durable

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"cqjoin/internal/chaos"
	"cqjoin/internal/chord"
	"cqjoin/internal/engine"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
	"cqjoin/internal/wire"
	"cqjoin/internal/workload"
)

// The kill -9 acceptance test (ISSUE 10): a scripted workload is run to
// completion on one engine (the oracle) and re-run against a store that
// is abandoned mid-stream — the byte-for-byte state a kill -9 leaves —
// then recovered into a freshly built engine that finishes the remaining
// ops. The delivered notification fingerprint must be identical, at
// parallelism 1 and 8, with fault injection off and on.

// Op kinds of the scripted workload.
const (
	opSubscribe = iota
	opSubscribeMulti
	opUnsubscribe
	opPublish
	opBatch
)

type scriptOp struct {
	kind   int
	node   string // originating node key
	text   string // query SQL for subscribe ops
	subRef int    // opUnsubscribe: script index of the subscribe to retract
	tuple  *relation.Tuple
	nodes  []string // opBatch origins
	tuples []*relation.Tuple
}

const (
	scriptNodes      = 48
	scriptSubscribes = 36
	scriptStream     = 140
)

// buildScript pregenerates a deterministic workload so the oracle run and
// the crash-recovery run execute identical operation streams: a subscribe
// phase (two-way and multi-way chain queries), then a publish stream with
// batches, chain tuples, and a couple of mid-stream retractions.
func buildScript(seed int64) (*workload.Generator, []scriptOp) {
	gen := workload.New(workload.Params{Seed: seed})
	rng := rand.New(rand.NewSource(seed + 7))
	node := func() string { return fmt.Sprintf("peer%d", rng.Intn(scriptNodes)) }
	var script []scriptOp
	for i := 0; i < scriptSubscribes; i++ {
		if i%6 == 5 {
			script = append(script, scriptOp{kind: opSubscribeMulti, node: node(), text: gen.QueryChain(2).Text()})
		} else {
			script = append(script, scriptOp{kind: opSubscribe, node: node(), text: gen.Query().Text()})
		}
	}
	for i := 0; i < scriptStream; i++ {
		switch {
		case i == 50: // retract a two-way query (replayed from the WAL after crash 1)
			script = append(script, scriptOp{kind: opUnsubscribe, node: script[4].node, subRef: 4})
		case i == 95: // retract a multi-way query
			script = append(script, scriptOp{kind: opUnsubscribe, node: script[11].node, subRef: 11})
		case i%10 == 7:
			op := scriptOp{kind: opBatch}
			for j := 0; j < 10; j++ {
				op.nodes = append(op.nodes, node())
				op.tuples = append(op.tuples, gen.Tuple())
			}
			script = append(script, op)
		case i%10 == 3:
			script = append(script, scriptOp{kind: opPublish, node: node(), tuple: gen.ChainTuple(2)})
		default:
			script = append(script, scriptOp{kind: opPublish, node: node(), tuple: gen.Tuple()})
		}
	}
	return gen, script
}

// chaosConfig mirrors the keyed-draw fault mix of the parallel
// determinism tests: faults are keyed by message content and attempt, so
// a recovery replay re-experiences the original run's fault schedule.
func chaosConfig(seed int64) chaos.Config {
	return chaos.Config{
		Seed:       seed,
		DropRate:   0.03,
		DupRate:    0.03,
		DelayRate:  0.05,
		MaxDelay:   4,
		KeyedDraws: true,
	}
}

// runScript executes the script against a store under dir. At every index
// in restartAt the engine is torn down — Abandon (kill -9) or Close
// (graceful) — and rebuilt from the state dir before the stream resumes.
// It returns the sorted delivered-content fingerprint, the total WAL
// records replayed across restarts, and the last restart's RecoveryInfo.
func runScript(t *testing.T, catalog *relation.Catalog, script []scriptOp, dir string,
	workers int, withChaos bool, seed int64, restartAt map[int]bool, clean bool) ([]string, int, RecoveryInfo) {
	t.Helper()
	build := func() (*engine.Engine, *chaos.Injector, *Store) {
		net := chord.New(chord.Config{})
		net.AddNodes("peer", scriptNodes)
		eng := engine.New(net, catalog, engine.Config{MaxRetries: 3, RetryBackoff: 1, Seed: seed})
		var in *chaos.Injector
		if withChaos {
			in = chaos.New(eng, chaosConfig(seed))
		}
		st, err := Open(dir, catalog, Options{SnapshotEvery: 24})
		if err != nil {
			t.Fatalf("open store: %v", err)
		}
		return eng, in, st
	}
	eng, in, st := build()
	var lastInfo RecoveryInfo
	if _, err := st.Recover(eng); err != nil {
		t.Fatalf("initial recover: %v", err)
	}
	replayed := 0
	subs := make(map[int]any) // script index -> identified *query.Query / *query.MultiQuery
	for i, op := range script {
		from := eng.Network().NodeByKey(op.node)
		var err error
		switch op.kind {
		case opSubscribe:
			q, perr := query.Parse(catalog, op.text)
			if perr != nil {
				t.Fatalf("op %d: parse %q: %v", i, op.text, perr)
			}
			var res *query.Query
			if res, err = st.Subscribe(from, q); err == nil {
				subs[i] = res
			}
		case opSubscribeMulti:
			mq, perr := query.ParseMulti(catalog, op.text)
			if perr != nil {
				t.Fatalf("op %d: parse multi %q: %v", i, op.text, perr)
			}
			var res *query.MultiQuery
			if res, err = st.SubscribeMulti(from, mq); err == nil {
				subs[i] = res
			}
		case opUnsubscribe:
			switch q := subs[op.subRef].(type) {
			case *query.Query:
				err = st.Unsubscribe(from, q)
			case *query.MultiQuery:
				err = st.UnsubscribeMulti(from, q)
			default:
				t.Fatalf("op %d: no subscription recorded at script index %d", i, op.subRef)
			}
		case opPublish:
			_, err = st.Publish(from, op.tuple)
		case opBatch:
			ops := make([]engine.PublishOp, len(op.tuples))
			for j := range ops {
				ops[j] = engine.PublishOp{From: eng.Network().NodeByKey(op.nodes[j]), T: op.tuples[j]}
			}
			err = st.PublishBatch(ops, workers)
		}
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if in != nil && i%16 == 15 {
			in.Step()
		}
		if restartAt[i] {
			if clean {
				if err := st.Close(); err != nil {
					t.Fatalf("close at op %d: %v", i, err)
				}
			} else {
				st.Abandon()
			}
			eng, in, st = build()
			info, err := st.Recover(eng)
			if err != nil {
				t.Fatalf("recover at op %d: %v", i, err)
			}
			replayed += info.Replayed
			lastInfo = info
		}
	}
	if in != nil {
		in.Calm()
	}
	if err := st.Close(); err != nil {
		t.Fatalf("final close: %v", err)
	}
	keys := eng.DeliveredContentKeys()
	sort.Strings(keys)
	return keys, replayed, lastInfo
}

// TestCrashRecoveryFingerprint is the proof obligation of ISSUE 10: an
// engine killed without warning mid-workload and restarted from its state
// dir must deliver exactly the notification multiset of a never-crashed
// run — the publication-time divergence of replayed tuples is absorbed by
// the timestamp-free content keys, and the restored dedup record prevents
// any double delivery of snapshot-absorbed matches.
func TestCrashRecoveryFingerprint(t *testing.T) {
	const seed = 41
	gen, script := buildScript(seed)
	catalog := gen.Catalog()
	crashAt := map[int]bool{86: true, 150: true} // two kill -9s mid-stream
	for _, workers := range []int{1, 8} {
		for _, withChaos := range []bool{false, true} {
			t.Run(fmt.Sprintf("workers=%d/chaos=%v", workers, withChaos), func(t *testing.T) {
				oracle, _, _ := runScript(t, catalog, script, t.TempDir(), workers, withChaos, seed, nil, false)
				if len(oracle) == 0 {
					t.Fatal("oracle delivered no notifications; the script exercises nothing")
				}
				crashed, replayed, _ := runScript(t, catalog, script, t.TempDir(), workers, withChaos, seed, crashAt, false)
				if replayed == 0 {
					t.Fatal("recovery replayed no WAL records; the crash points exercise nothing")
				}
				if !reflect.DeepEqual(oracle, crashed) {
					t.Errorf("fingerprints diverge: oracle %d notifications, crashed-and-recovered %d",
						len(oracle), len(crashed))
					for _, d := range diffKeys(oracle, crashed) {
						t.Log(d)
					}
				}
			})
		}
	}
}

// TestCleanShutdownRestart covers the graceful path: Close checkpoints,
// so a restart recovers everything from the snapshot with an empty WAL.
func TestCleanShutdownRestart(t *testing.T) {
	const seed = 43
	gen, script := buildScript(seed)
	catalog := gen.Catalog()
	oracle, _, _ := runScript(t, catalog, script, t.TempDir(), 1, false, seed, nil, false)
	restartAt := map[int]bool{100: true}
	restarted, replayed, info := runScript(t, catalog, script, t.TempDir(), 1, false, seed, restartAt, true)
	if replayed != 0 {
		t.Errorf("clean restart replayed %d WAL records, want 0 (Close checkpoints)", replayed)
	}
	if info.SnapshotLSN == 0 {
		t.Error("clean restart recovered no snapshot")
	}
	if !reflect.DeepEqual(oracle, restarted) {
		t.Errorf("fingerprints diverge: oracle %d notifications, restarted %d", len(oracle), len(restarted))
		for _, d := range diffKeys(oracle, restarted) {
			t.Log(d)
		}
	}
}

// TestViewAndDownRoundTrip covers the daemon-facing membership records:
// logged views replay, and the snapshot carries the Options-supplied view
// and down list back to RecoveryInfo.
func TestViewAndDownRoundTrip(t *testing.T) {
	catalog := workload.New(workload.Params{Seed: 1}).Catalog()
	dir := t.TempDir()
	buildEngine := func() *engine.Engine {
		net := chord.New(chord.Config{})
		net.AddNodes("peer", 8)
		return engine.New(net, catalog, engine.Config{Seed: 1})
	}

	st, err := Open(dir, catalog, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := st.Recover(buildEngine()); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if err := st.LogView(&wire.MemberView{Version: 3, Procs: []string{"a:1", "b:2"}}); err != nil {
		t.Fatalf("log view: %v", err)
	}
	if err := st.LogView(&wire.MemberView{Version: 4, Procs: []string{"a:1", "b:2", "c:3"}}); err != nil {
		t.Fatalf("log view: %v", err)
	}
	st.Abandon()

	// Replay path: the later logged view wins.
	st, err = Open(dir, catalog, Options{
		View: func() *wire.MemberView { return &wire.MemberView{Version: 4, Procs: []string{"a:1", "b:2", "c:3"}} },
		Down: func() []string { return []string{"peer3"} },
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	info, err := st.Recover(buildEngine())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if info.View == nil || info.View.Version != 4 || len(info.View.Procs) != 3 {
		t.Fatalf("replayed view = %+v, want version 4 with 3 procs", info.View)
	}

	// Snapshot path: Checkpoint persists the Options-supplied view and
	// down list, and a restart reports them without replaying records.
	if err := st.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	st.Abandon()
	st, err = Open(dir, catalog, Options{})
	if err != nil {
		t.Fatalf("reopen after checkpoint: %v", err)
	}
	info, err = st.Recover(buildEngine())
	if err != nil {
		t.Fatalf("recover after checkpoint: %v", err)
	}
	if info.Replayed != 0 {
		t.Errorf("replayed %d records after checkpoint, want 0", info.Replayed)
	}
	if info.View == nil || info.View.Version != 4 {
		t.Errorf("snapshot view = %+v, want version 4", info.View)
	}
	if !reflect.DeepEqual(info.Down, []string{"peer3"}) {
		t.Errorf("snapshot down list = %v, want [peer3]", info.Down)
	}
	st.Abandon()
}

// diffKeys reports the asymmetric difference of two sorted key multisets,
// truncated to keep failure output readable.
func diffKeys(want, got []string) []string {
	count := func(keys []string) map[string]int {
		m := make(map[string]int)
		for _, k := range keys {
			m[k]++
		}
		return m
	}
	w, g := count(want), count(got)
	var out []string
	for k, n := range w {
		if g[k] < n {
			out = append(out, fmt.Sprintf("missing after recovery (%dx): %s", n-g[k], k))
		}
	}
	for k, n := range g {
		if w[k] < n {
			out = append(out, fmt.Sprintf("extra after recovery (%dx): %s", n-w[k], k))
		}
	}
	sort.Strings(out)
	if len(out) > 12 {
		out = append(out[:12], fmt.Sprintf("... and %d more", len(out)-12))
	}
	return out
}
