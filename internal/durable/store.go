package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"cqjoin/internal/chord"
	"cqjoin/internal/engine"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
	"cqjoin/internal/wire"
)

const (
	walName  = "wal.log"
	snapName = "snapshot.bin"
	snapTemp = "snapshot.tmp"

	// defaultSnapshotEvery is the auto-checkpoint cadence in logged
	// operations when Options.SnapshotEvery is zero.
	defaultSnapshotEvery = 1024
)

// errFailed is returned once a WAL write or fsync has failed: the log
// tail is then in an unknown state (possibly partial frame bytes), so
// accepting further appends would bury acked records behind an
// unreadable frame. The store fail-stops instead; restarting recovers
// everything that was durable before the fault.
var errFailed = errors.New("durable: store is fail-stopped after a wal write error; restart to recover")

// Options tunes a Store.
type Options struct {
	// SnapshotEvery is the number of logged records between automatic
	// checkpoints (snapshot + WAL truncation). 0 means the default;
	// negative disables auto-checkpointing (explicit Checkpoint/Close
	// still snapshot).
	SnapshotEvery int
	// Down, if set, supplies the node keys the caller knows to be crashed
	// and pending rejoin at snapshot time (e.g. a chaos injector's down
	// list), so recovery can rebuild the same ring liveness.
	Down func() []string
	// View, if set, supplies the latest adopted membership view for the
	// snapshot; replayed viewRec records override it.
	View func() *wire.MemberView
	// Logf, if set, receives progress lines (recovery, checkpoints).
	Logf func(format string, args ...any)
}

// RecoveryInfo summarizes what Recover restored.
type RecoveryInfo struct {
	SnapshotLSN uint64           // WAL position the snapshot covered
	Replayed    int              // log records replayed past the snapshot
	Down        []string         // crashed-pending node keys at snapshot time
	View        *wire.MemberView // latest recovered membership view
	TornBytes   int64            // trailing bytes dropped as a torn append
}

// Store is a per-process durability log for one engine: every mutating
// client operation and inbound overlay delivery is appended to a
// CRC-framed WAL (group-committed fsync), and a periodic checkpoint
// writes a whole-engine snapshot then truncates the log. Open loads the
// files; Recover replays them into a freshly built engine; the op
// wrappers make an engine call durable by logging it after it applies
// (redo-only logging — an operation that crashed before its record was
// durable also never acknowledged, so losing it is semantically a
// never-submitted op).
type Store struct {
	dir     string
	catalog *relation.Catalog
	opts    Options
	eng     *engine.Engine

	// gate serializes checkpoints against appends: every append holds it
	// for read around apply+log, Checkpoint holds it for write, so a
	// snapshot never observes an op mid-cascade and truncation never
	// drops a record the snapshot missed.
	gate sync.RWMutex

	// applyMu serializes mutating client ops across apply+log so WAL
	// order equals engine apply order. Replay re-derives publication
	// stamps (clock ticks) and per-subscriber sequence numbers by
	// re-executing records in log order; only when the original ticks and
	// seq draws happened in that same order does recovery reproduce the
	// acked values. Gate-free deliveries and views are exempt: they are
	// replayed verbatim and never draw from the clock or seq space.
	applyMu sync.Mutex

	mu       sync.Mutex // serializes file appends; file order == LSN order
	f        *os.File
	lsn      uint64 // last appended LSN
	synced   uint64 // last fsynced LSN
	walBytes int64  // current WAL length in bytes
	syncing  bool   // a group-commit leader is mid-fsync
	syncDone *sync.Cond
	opCount  int
	closed   bool
	failed   bool // a WAL write or fsync failed; the store is fail-stopped

	// Recovery staging decoded by Open, consumed by Recover.
	pending *snapImage
	recs    []any
	torn    int64
}

// Open loads (or creates) the durable state under dir. The returned
// store has decoded the snapshot and scanned the log but not touched any
// engine yet — call Recover next. A corrupt snapshot or a corrupt WAL
// frame before the torn tail fails Open with a CorruptError in the
// chain; a torn tail is truncated and reported via RecoveryInfo.
func Open(dir string, catalog *relation.Catalog, opts Options) (*Store, error) {
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = defaultSnapshotEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, catalog: catalog, opts: opts}
	s.syncDone = sync.NewCond(&s.mu)

	img := snapImage{}
	if data, err := os.ReadFile(filepath.Join(dir, snapName)); err == nil {
		if img, err = decodeSnapshot(data, catalog); err != nil {
			return nil, err
		}
		s.pending = &img
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	s.lsn = img.covered

	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if os.IsNotExist(err) {
		data = nil
	} else if err != nil {
		return nil, err
	}
	recs, clean, err := scanFrames(data)
	if err != nil {
		return nil, err
	}
	s.torn = int64(len(data)) - clean
	for _, rec := range recs {
		if rec.lsn <= img.covered {
			continue // a checkpoint raced the crash between rename and truncate
		}
		if rec.lsn != s.lsn+1 {
			return nil, &CorruptError{LSN: s.lsn, Reason: fmt.Sprintf("wal starts at lsn %d, snapshot covers %d", rec.lsn, img.covered)}
		}
		decoded, err := func() (any, error) {
			var r wire.Reader
			r.Reset(rec.data)
			return decodeRecord(&r)
		}()
		if err != nil {
			return nil, fmt.Errorf("durable: decode wal record %d: %w", rec.lsn, err)
		}
		s.recs = append(s.recs, decoded)
		s.lsn = rec.lsn
	}

	s.f, err = os.OpenFile(walPath, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	// Make a freshly created WAL's directory entry durable before any
	// append is acked through it.
	if err := syncDir(dir); err != nil {
		s.f.Close()
		return nil, err
	}
	if s.torn > 0 {
		if err := s.f.Truncate(clean); err != nil {
			s.f.Close()
			return nil, err
		}
		s.logf("durable: truncated %d torn trailing bytes", s.torn)
	}
	s.walBytes = clean
	s.synced = s.lsn
	return s, nil
}

// Recover binds the store to eng, restores the snapshot, and replays the
// WAL tail through the ordinary engine entry points. eng must be freshly
// built with the same catalog, config and seed as the run that wrote the
// state. Recover must be called (even on an empty state dir) before the
// op wrappers are used.
func (s *Store) Recover(eng *engine.Engine) (RecoveryInfo, error) {
	s.eng = eng
	info := RecoveryInfo{TornBytes: s.torn}
	if s.pending != nil {
		info.SnapshotLSN = s.pending.covered
		info.Down = s.pending.down
		info.View = s.pending.view
		if err := eng.RestoreSnapshot(s.pending.meta, s.pending.nodes); err != nil {
			return info, err
		}
	}
	for _, rec := range s.recs {
		if err := s.applyRecord(rec, &info); err != nil {
			return info, err
		}
		info.Replayed++
	}
	if info.SnapshotLSN > 0 || info.Replayed > 0 {
		s.logf("durable: recovered snapshot lsn %d + %d wal records (%d torn bytes dropped)",
			info.SnapshotLSN, info.Replayed, info.TornBytes)
	}
	s.pending, s.recs = nil, nil
	return info, nil
}

// applyRecord re-executes one logged event against the bound engine.
func (s *Store) applyRecord(rec any, info *RecoveryInfo) error {
	net := s.eng.Network()
	node := func(key string) (*chord.Node, error) {
		n := net.NodeByKey(key)
		if n == nil {
			return nil, fmt.Errorf("durable: replay: node %s not in overlay", key)
		}
		return n, nil
	}
	switch m := rec.(type) {
	case subscribeRec:
		from, err := node(m.Node)
		if err != nil {
			return err
		}
		var key string
		if m.Multi {
			mq, err := query.ParseMulti(s.catalog, m.SQL)
			if err != nil {
				return fmt.Errorf("durable: replay subscribe %q: %w", m.SQL, err)
			}
			res, err := s.eng.SubscribeMulti(from, mq)
			if err != nil {
				return fmt.Errorf("durable: replay subscribe %q: %w", m.SQL, err)
			}
			key = res.Key()
		} else {
			q, err := query.Parse(s.catalog, m.SQL)
			if err != nil {
				return fmt.Errorf("durable: replay subscribe %q: %w", m.SQL, err)
			}
			res, err := s.eng.Subscribe(from, q)
			if err != nil {
				return fmt.Errorf("durable: replay subscribe %q: %w", m.SQL, err)
			}
			key = res.Key()
		}
		if key != m.Key {
			return fmt.Errorf("durable: replay diverged: subscribe %q got key %s, log recorded %s", m.SQL, key, m.Key)
		}
	case unsubscribeRec:
		from, err := node(m.Node)
		if err != nil {
			return err
		}
		if m.Multi {
			mq, err := query.ParseMulti(s.catalog, m.SQL)
			if err != nil {
				return fmt.Errorf("durable: replay unsubscribe %q: %w", m.SQL, err)
			}
			if err := s.eng.UnsubscribeMulti(from, mq.WithRestoredIdentity(m.Key, m.Node, "")); err != nil {
				return fmt.Errorf("durable: replay unsubscribe %s: %w", m.Key, err)
			}
		} else {
			q, err := query.Parse(s.catalog, m.SQL)
			if err != nil {
				return fmt.Errorf("durable: replay unsubscribe %q: %w", m.SQL, err)
			}
			if err := s.eng.Unsubscribe(from, q.WithRestoredIdentity(m.Key, m.Node, "")); err != nil {
				return fmt.Errorf("durable: replay unsubscribe %s: %w", m.Key, err)
			}
		}
	case publishRec:
		from, err := node(m.Node)
		if err != nil {
			return err
		}
		if _, err := s.eng.Publish(from, m.T); err != nil {
			return fmt.Errorf("durable: replay publish: %w", err)
		}
	case batchRec:
		ops := make([]engine.PublishOp, len(m.Tuples))
		for i := range ops {
			from, err := node(m.Nodes[i])
			if err != nil {
				return err
			}
			ops[i] = engine.PublishOp{From: from, T: m.Tuples[i]}
		}
		if err := s.eng.PublishBatch(ops, m.Workers); err != nil {
			return fmt.Errorf("durable: replay batch: %w", err)
		}
	case deliveryRec:
		var r wire.Reader
		r.Reset(m.Frame)
		msg, err := engine.DecodeMessage(&r, s.catalog)
		if err != nil {
			return fmt.Errorf("durable: replay delivery to %s: %w", m.Node, err)
		}
		net.DeliverLocal(m.Node, msg)
	case viewRec:
		info.View = m.View
	default:
		return fmt.Errorf("durable: replay: unknown record type %T", rec)
	}
	return nil
}

// append logs one record and group-commits it: the record is written
// under the lock (file order == LSN order), then the first writer to
// reach the fsync step becomes the leader and syncs for everyone written
// so far, so a burst of concurrent ops pays one fsync.
func (s *Store) append(rec any) error {
	var w wire.Buffer
	if err := encodeRecord(&w, rec); err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("durable: store is closed")
	}
	if s.failed {
		s.mu.Unlock()
		return errFailed
	}
	s.lsn++
	lsn := s.lsn
	frame := appendFrame(nil, lsn, w.Bytes())
	if _, err := s.f.Write(frame); err != nil {
		s.failed = true
		s.mu.Unlock()
		return fmt.Errorf("durable: wal append: %w", err)
	}
	s.walBytes += int64(len(frame))
	s.opCount++
	for s.syncing && s.synced < lsn {
		s.syncDone.Wait()
	}
	if s.failed {
		s.mu.Unlock()
		return errFailed // the leader's fsync failed while we waited
	}
	if s.synced >= lsn {
		s.mu.Unlock()
		return nil // a later leader's fsync already covered this record
	}
	s.syncing = true
	written := s.lsn
	// Capture the descriptor under s.mu: checkpoints swap s.f only after
	// waiting out any in-flight sync, so f stays valid for this Sync.
	f := s.f
	s.mu.Unlock()

	err := f.Sync()
	s.mu.Lock()
	s.syncing = false
	if err != nil {
		s.failed = true
	} else if written > s.synced {
		s.synced = written
	}
	s.syncDone.Broadcast()
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("durable: wal fsync: %w", err)
	}
	return nil
}

// The op wrappers hold the checkpoint gate shared, then applyMu, across
// apply+log: the gate keeps checkpoints op-atomic, applyMu keeps WAL
// order identical to engine apply order (clock ticks, per-subscriber
// seqs) so replay re-stamps to exactly the acked values. The engine
// calls inside can block on overlay sends; that is safe here because
// the transport's inbound paths (LogDelivery, LogView) take neither
// lock, so remote acks keep draining while a checkpoint writer or the
// next client op waits.

// Subscribe applies and logs a two-way subscription.
func (s *Store) Subscribe(from *chord.Node, q *query.Query) (*query.Query, error) {
	s.gate.RLock()
	s.applyMu.Lock()
	//lint:allow lockorder inbound transport paths never take the gate, so acks drain while a checkpoint waits
	res, err := s.eng.Subscribe(from, q)
	if err == nil {
		err = s.append(subscribeRec{Node: from.Key(), SQL: res.Text(), Key: res.Key()})
	}
	s.applyMu.Unlock()
	s.gate.RUnlock()
	s.maybeCheckpoint()
	return res, err
}

// SubscribeMulti applies and logs a multi-way chain subscription.
func (s *Store) SubscribeMulti(from *chord.Node, mq *query.MultiQuery) (*query.MultiQuery, error) {
	s.gate.RLock()
	s.applyMu.Lock()
	//lint:allow lockorder inbound transport paths never take the gate, so acks drain while a checkpoint waits
	res, err := s.eng.SubscribeMulti(from, mq)
	if err == nil {
		err = s.append(subscribeRec{Node: from.Key(), SQL: res.Text(), Key: res.Key(), Multi: true})
	}
	s.applyMu.Unlock()
	s.gate.RUnlock()
	s.maybeCheckpoint()
	return res, err
}

// Unsubscribe applies and logs a two-way retraction.
func (s *Store) Unsubscribe(from *chord.Node, q *query.Query) error {
	s.gate.RLock()
	s.applyMu.Lock()
	//lint:allow lockorder inbound transport paths never take the gate, so acks drain while a checkpoint waits
	err := s.eng.Unsubscribe(from, q)
	if err == nil {
		err = s.append(unsubscribeRec{Node: from.Key(), SQL: q.Text(), Key: q.Key()})
	}
	s.applyMu.Unlock()
	s.gate.RUnlock()
	s.maybeCheckpoint()
	return err
}

// UnsubscribeMulti applies and logs a multi-way retraction.
func (s *Store) UnsubscribeMulti(from *chord.Node, mq *query.MultiQuery) error {
	s.gate.RLock()
	s.applyMu.Lock()
	//lint:allow lockorder inbound transport paths never take the gate, so acks drain while a checkpoint waits
	err := s.eng.UnsubscribeMulti(from, mq)
	if err == nil {
		err = s.append(unsubscribeRec{Node: from.Key(), SQL: mq.Text(), Key: mq.Key(), Multi: true})
	}
	s.applyMu.Unlock()
	s.gate.RUnlock()
	s.maybeCheckpoint()
	return err
}

// Publish applies and logs one tuple publication. The unstamped input
// tuple is logged; replay re-stamps through the restored clock, which
// reproduces the acked PubT because applyMu pinned log order to the
// original tick order.
func (s *Store) Publish(from *chord.Node, t *relation.Tuple) (*relation.Tuple, error) {
	s.gate.RLock()
	s.applyMu.Lock()
	//lint:allow lockorder inbound transport paths never take the gate, so acks drain while a checkpoint waits
	res, err := s.eng.Publish(from, t)
	if err == nil {
		err = s.append(publishRec{Node: from.Key(), T: t})
	}
	s.applyMu.Unlock()
	s.gate.RUnlock()
	s.maybeCheckpoint()
	return res, err
}

// PublishBatch applies and logs one batched publication wave. The batch
// reserves its tick range deterministically by op index, so internal
// worker parallelism stays replay-safe under applyMu.
func (s *Store) PublishBatch(ops []engine.PublishOp, workers int) error {
	s.gate.RLock()
	s.applyMu.Lock()
	//lint:allow lockorder inbound transport paths never take the gate, so acks drain while a checkpoint waits
	err := s.eng.PublishBatch(ops, workers)
	if err == nil {
		rec := batchRec{Workers: workers}
		for _, op := range ops {
			rec.Nodes = append(rec.Nodes, op.From.Key())
			rec.Tuples = append(rec.Tuples, op.T)
		}
		err = s.append(rec)
	}
	s.applyMu.Unlock()
	s.gate.RUnlock()
	s.maybeCheckpoint()
	return err
}

// LogDelivery logs one inbound remote delivery (the daemon calls it
// after applying the decoded message locally and before acking, so an
// acked delivery is always durable). frame is the engine-codec encoding
// of the delivered message.
//
// Deliberately gate-free: it runs on transport goroutines that an op
// wrapper may be blocked on (awaiting an ack while holding the gate
// shared). Taking the gate here would queue behind a waiting checkpoint
// writer and deadlock the ack path. Checkpoint compensates by carrying
// over the post-snapshot WAL tail instead of truncating blindly, and a
// delivery replayed over a snapshot that already absorbed it lands in
// idempotent merges and the notification dedup.
func (s *Store) LogDelivery(nodeKey string, frame []byte) error {
	return s.append(deliveryRec{Node: nodeKey, Frame: frame})
}

// LogView logs one adopted membership view. Gate-free, like LogDelivery.
func (s *Store) LogView(v *wire.MemberView) error {
	return s.append(viewRec{View: v})
}

// maybeCheckpoint triggers a checkpoint when the logged-record budget is
// spent. The claim is atomic so concurrent ops elect one checkpointer.
func (s *Store) maybeCheckpoint() {
	if s.opts.SnapshotEvery < 0 {
		return
	}
	s.mu.Lock()
	due := !s.closed && s.opCount >= s.opts.SnapshotEvery
	if due {
		s.opCount = 0
	}
	s.mu.Unlock()
	if due {
		if err := s.Checkpoint(); err != nil {
			s.logf("durable: auto checkpoint failed: %v", err)
		}
	}
}

// Checkpoint writes a whole-engine snapshot and truncates the WAL. It
// excludes all appends (the gate), so the snapshot is op-atomic and
// truncation cannot drop a record the snapshot does not cover.
func (s *Store) Checkpoint() error {
	s.gate.Lock()
	defer s.gate.Unlock()
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	s.mu.Lock()
	covered := s.lsn
	coveredBytes := s.walBytes
	closed, failed := s.closed, s.failed
	s.mu.Unlock()
	if closed {
		return fmt.Errorf("durable: store is closed")
	}
	if failed {
		return errFailed
	}

	img := snapImage{covered: covered}
	if s.opts.Down != nil {
		img.down = s.opts.Down()
	}
	if s.opts.View != nil {
		img.view = s.opts.View()
	}
	img.meta, img.nodes = s.eng.ExportSnapshot(img.down)

	data, err := encodeSnapshot(img)
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, snapTemp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName)); err != nil {
		return err
	}
	// Order the snapshot rename before the WAL rewrite on disk: without
	// the directory fsync a power loss could persist the truncated WAL
	// but not the new snapshot, leaving a gap Open rejects as corrupt.
	if err := syncDir(s.dir); err != nil {
		return err
	}

	// Drop the covered WAL prefix. Gate-free appends (deliveries, views)
	// may have landed after coveredBytes; they are not in the snapshot,
	// so they carry over into the fresh log — via a temp-file rename so
	// already-acked records are never in a half-truncated state.
	s.mu.Lock()
	defer s.mu.Unlock()
	// Wait out any group-commit leader mid-fsync: rewriteWAL closes and
	// swaps the descriptor, and a leader syncing the old one would get a
	// spurious ErrClosed for a record that is in fact durable.
	for s.syncing {
		s.syncDone.Wait()
	}
	if s.failed {
		return errFailed
	}
	if tailLen := s.walBytes - coveredBytes; tailLen > 0 {
		tail := make([]byte, tailLen)
		if _, err := s.f.ReadAt(tail, coveredBytes); err != nil {
			return fmt.Errorf("durable: wal tail read: %w", err)
		}
		if err := s.rewriteWAL(tail); err != nil {
			return err
		}
	} else {
		if err := s.f.Truncate(0); err != nil {
			return fmt.Errorf("durable: wal truncate: %w", err)
		}
		s.walBytes = 0
	}
	s.synced = s.lsn
	s.opCount = 0
	s.logf("durable: checkpoint at lsn %d (%d bytes snapshot)", covered, len(data))
	return nil
}

// rewriteWAL atomically replaces the log with content (fsynced temp file
// + rename) and swaps the append descriptor over. Caller holds s.mu.
func (s *Store) rewriteWAL(content []byte) error {
	walPath := filepath.Join(s.dir, walName)
	tmp := walPath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(content); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := os.Rename(tmp, walPath); err != nil {
		f.Close()
		return err
	}
	s.f.Close()
	s.f = f
	s.walBytes = int64(len(content))
	// The swap happens before the directory fsync so a sync failure still
	// leaves s.f on the renamed (live) file; the error only fails the
	// checkpoint, not the append path.
	return syncDir(s.dir)
}

// syncDir fsyncs a directory so renames into it are ordered on disk —
// without it a power loss can persist a later rename before an earlier
// one (or before the renamed file's data).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close takes a final checkpoint and closes the WAL. The store is
// unusable afterwards.
func (s *Store) Close() error {
	s.gate.Lock()
	defer s.gate.Unlock()
	err := s.checkpointLocked()
	s.mu.Lock()
	// A gate-free append's commit leader may still be mid-fsync (e.g.
	// when the checkpoint failed early); closing under it would turn a
	// durable record's ack into a spurious error.
	for s.syncing {
		s.syncDone.Wait()
	}
	s.closed = true
	cerr := s.f.Close()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return cerr
}

// Abandon closes the WAL file descriptor without checkpointing or
// flushing anything beyond what ordinary appends already fsynced —
// byte-for-byte what a kill -9 leaves behind. Crash tests use it to
// simulate an unclean death without leaking the descriptor.
func (s *Store) Abandon() {
	s.mu.Lock()
	s.closed = true
	s.f.Close()
	s.mu.Unlock()
}

func (s *Store) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}
