package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cqjoin/internal/relation"
	"cqjoin/internal/wire"
	"cqjoin/internal/workload"
)

// seedRecords returns one record of every tag, used both as in-code fuzz
// seeds and to regenerate the committed corpus under testdata/fuzz.
func seedRecords() []any {
	gen := workload.New(workload.Params{Seed: 11})
	return []any{
		subscribeRec{Node: "peer1", SQL: "SELECT R0.a0 FROM R0, S0 WHERE R0.a0 = S0.a1", Key: "peer1#4"},
		subscribeRec{Node: "peer2", SQL: "SELECT R0.a0, S1.a0 FROM R0, S0, R1, S1 WHERE R0.a0 = S0.a0 AND S0.a1 = R1.a1 AND R1.a0 = S1.a0", Key: "peer2#0", Multi: true},
		unsubscribeRec{Node: "peer1", SQL: "SELECT R0.a0 FROM R0, S0 WHERE R0.a0 = S0.a1", Key: "peer1#4"},
		publishRec{Node: "peer3", T: gen.Tuple()},
		batchRec{Nodes: []string{"peer1", "peer2"}, Tuples: []*relation.Tuple{gen.Tuple(), gen.Tuple()}, Workers: 8},
		deliveryRec{Node: "peer5", Frame: []byte{1, 2, 3, 4, 5}},
		viewRec{View: &wire.MemberView{Version: 9, Procs: []string{"x:1", "y:2"}}},
	}
}

// FuzzRecordCodec throws arbitrary bytes at the WAL record decoder. The
// decoder must never panic; any record it accepts must re-encode (with a
// length recordSize predicts exactly) into bytes the decoder accepts
// again — the codec's canonical-form fixpoint.
func FuzzRecordCodec(f *testing.F) {
	for _, rec := range seedRecords() {
		var w wire.Buffer
		if err := encodeRecord(&w, rec); err != nil {
			f.Fatalf("encode seed %T: %v", rec, err)
		}
		f.Add(append([]byte(nil), w.Bytes()...))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var r wire.Reader
		r.Reset(data)
		rec, err := decodeRecord(&r)
		if err != nil {
			return // rejected input: fine, as long as it did not panic
		}
		var w wire.Buffer
		if err := encodeRecord(&w, rec); err != nil {
			t.Fatalf("accepted record %T fails to re-encode: %v", rec, err)
		}
		if len(w.Bytes()) != recordSize(rec) {
			t.Fatalf("%T: encoded %d bytes, recordSize says %d", rec, len(w.Bytes()), recordSize(rec))
		}
		var r2 wire.Reader
		r2.Reset(w.Bytes())
		if _, err := decodeRecord(&r2); err != nil {
			t.Fatalf("re-encoded %T fails to decode: %v", rec, err)
		}
	})
}

// FuzzScanFrames throws arbitrary bytes at the WAL frame scanner: it must
// never panic, must only fail with a CorruptError, must report a clean
// length inside the input, and the records it accepts must survive a
// re-frame/re-scan round trip.
func FuzzScanFrames(f *testing.F) {
	f.Add(walImage(3))
	f.Add(walImage(1)[:5]) // torn inside the first header
	damaged := walImage(2)
	damaged[frameHeaderLen+1] ^= 0x20
	f.Add(damaged)
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, clean, err := scanFrames(data)
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("scan failed with %T (%v), want CorruptError", err, err)
			}
			return
		}
		if clean < 0 || clean > int64(len(data)) {
			t.Fatalf("clean length %d outside [0, %d]", clean, len(data))
		}
		var re []byte
		for _, rec := range recs {
			re = appendFrame(re, rec.lsn, rec.data)
		}
		recs2, clean2, err := scanFrames(re)
		if err != nil {
			t.Fatalf("re-framed records fail to scan: %v", err)
		}
		if clean2 != int64(len(re)) || len(recs2) != len(recs) {
			t.Fatalf("re-scan kept %d/%d records, clean %d/%d", len(recs2), len(recs), clean2, len(re))
		}
		for i := range recs {
			if recs2[i].lsn != recs[i].lsn || !bytes.Equal(recs2[i].data, recs[i].data) {
				t.Fatalf("record %d diverged across re-frame", i)
			}
		}
	})
}

// TestWriteSeedCorpus regenerates the committed fuzz seed corpus. It is a
// maintenance tool, not a test: run with WRITE_CORPUS=1 after changing
// the record codec, then commit the testdata/fuzz updates.
func TestWriteSeedCorpus(t *testing.T) {
	if os.Getenv("WRITE_CORPUS") == "" {
		t.Skip("set WRITE_CORPUS=1 to regenerate testdata/fuzz")
	}
	write := func(target, name string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		entry := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(entry), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i, rec := range seedRecords() {
		var w wire.Buffer
		if err := encodeRecord(&w, rec); err != nil {
			t.Fatalf("encode seed %T: %v", rec, err)
		}
		write("FuzzRecordCodec", fmt.Sprintf("seed-%d", i), w.Bytes())
	}
	write("FuzzScanFrames", "seed-wal", walImage(3))
	write("FuzzScanFrames", "seed-torn", walImage(2)[:len(walImage(2))-3])
}
