package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cqjoin/internal/chord"
	"cqjoin/internal/engine"
	"cqjoin/internal/relation"
	"cqjoin/internal/wire"
	"cqjoin/internal/workload"
)

// walImage builds a WAL with n sequential records of distinct payloads.
func walImage(n int) []byte {
	var data []byte
	for i := 1; i <= n; i++ {
		rec := bytes.Repeat([]byte{byte(i)}, 5+i)
		data = appendFrame(data, uint64(i), rec)
	}
	return data
}

// frameBounds returns the byte range [start, end) of the i-th (0-based)
// frame in a well-formed image.
func frameBounds(t *testing.T, data []byte, i int) (int, int) {
	t.Helper()
	off := 0
	for k := 0; ; k++ {
		if off+frameHeaderLen > len(data) {
			t.Fatalf("image has fewer than %d frames", i+1)
		}
		plen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		end := off + frameHeaderLen + plen + frameTrailerLen
		if k == i {
			return off, end
		}
		off = end
	}
}

func TestScanFramesRoundTrip(t *testing.T) {
	data := walImage(4)
	recs, clean, err := scanFrames(data)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if clean != int64(len(data)) {
		t.Fatalf("clean = %d, want %d", clean, len(data))
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if rec.lsn != uint64(i+1) {
			t.Errorf("record %d has lsn %d", i, rec.lsn)
		}
		want := bytes.Repeat([]byte{byte(i + 1)}, 5+i+1)
		if !bytes.Equal(rec.data, want) {
			t.Errorf("record %d payload mismatch", i)
		}
	}
	if _, _, err := scanFrames(nil); err != nil {
		t.Fatalf("empty image: %v", err)
	}
}

// TestScanFramesTornTail: every strict prefix that ends inside the last
// frame is a torn append — tolerated, with the clean length pointing at
// the last complete frame.
func TestScanFramesTornTail(t *testing.T) {
	data := walImage(3)
	start, end := frameBounds(t, data, 2)
	for cut := start + 1; cut < end; cut++ {
		recs, clean, err := scanFrames(data[:cut])
		if err != nil {
			t.Fatalf("cut at %d: unexpected error %v", cut, err)
		}
		if clean != int64(start) {
			t.Fatalf("cut at %d: clean = %d, want %d", cut, clean, start)
		}
		if len(recs) != 2 {
			t.Fatalf("cut at %d: got %d records, want 2", cut, len(recs))
		}
	}
}

// TestScanFramesCorruption: damage before the tail is corruption, never a
// silent truncation (ISSUE 10 satellite). Each case mutates a well-formed
// three-record image and must yield a CorruptError.
func TestScanFramesCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(t *testing.T, data []byte) []byte
		reason string
	}{
		{
			name: "payload bit flip",
			mutate: func(t *testing.T, data []byte) []byte {
				start, _ := frameBounds(t, data, 1)
				data[start+frameHeaderLen+2] ^= 0x40
				return data
			},
			reason: "payload crc mismatch",
		},
		{
			name: "trailer bit flip",
			mutate: func(t *testing.T, data []byte) []byte {
				_, end := frameBounds(t, data, 1)
				data[end-1] ^= 0x01
				return data
			},
			reason: "payload crc mismatch",
		},
		{
			name: "length bit flip",
			mutate: func(t *testing.T, data []byte) []byte {
				start, _ := frameBounds(t, data, 1)
				data[start] ^= 0x04 // plen no longer matches its CRC
				return data
			},
			reason: "header crc mismatch",
		},
		{
			name: "header crc bit flip",
			mutate: func(t *testing.T, data []byte) []byte {
				start, _ := frameBounds(t, data, 1)
				data[start+5] ^= 0x80
				return data
			},
			reason: "header crc mismatch",
		},
		{
			name: "zero length frame",
			mutate: func(t *testing.T, data []byte) []byte {
				start, end := frameBounds(t, data, 1)
				var hdr [frameHeaderLen]byte
				// A consistent header claiming an empty payload: the CRC is
				// right, the length itself is implausible.
				copy(hdr[4:8], crcBytes(hdr[0:4]))
				return append(append(data[:start:start], hdr[:]...), data[end:]...)
			},
			reason: "implausible payload length",
		},
		{
			name: "duplicated record",
			mutate: func(t *testing.T, data []byte) []byte {
				start, end := frameBounds(t, data, 1)
				dup := append([]byte(nil), data[start:end]...)
				return append(append(data[:end:end], dup...), data[end:]...)
			},
			reason: "lsn discontinuity",
		},
		{
			name: "dropped record",
			mutate: func(t *testing.T, data []byte) []byte {
				start, end := frameBounds(t, data, 1)
				return append(data[:start:start], data[end:]...)
			},
			reason: "lsn discontinuity",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(t, walImage(3))
			_, _, err := scanFrames(data)
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("scan returned %v, want CorruptError", err)
			}
			if !bytes.Contains([]byte(ce.Reason), []byte(tc.reason)) {
				t.Errorf("reason = %q, want it to mention %q", ce.Reason, tc.reason)
			}
		})
	}
}

// crcBytes returns the little-endian CRC-32C of b.
func crcBytes(b []byte) []byte {
	sum := make([]byte, 4)
	binary.LittleEndian.PutUint32(sum, crc32.Checksum(b, castagnoli))
	return sum
}

func TestParseOneFrame(t *testing.T) {
	payload := []byte("snapshot payload bytes")
	data := appendFramedPayload(nil, payload)
	got, err := parseOneFrame(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch")
	}
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"short file", data[:6]},
		{"truncated payload", data[:len(data)-3]},
		{"trailing garbage", append(append([]byte(nil), data...), 0xEE)},
		{"flipped payload", flipBit(data, frameHeaderLen+1)},
		{"flipped header", flipBit(data, 1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseOneFrame(tc.data)
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("parse returned %v, want CorruptError", err)
			}
		})
	}
}

func flipBit(data []byte, i int) []byte {
	cp := append([]byte(nil), data...)
	cp[i] ^= 0x10
	return cp
}

// TestOpenRejectsCorruptWAL: Open must surface a CorruptError for damage
// before the torn tail instead of replaying a mangled prefix — and must
// tolerate (and truncate) a genuinely torn tail in the same file.
func TestOpenRejectsCorruptWAL(t *testing.T) {
	catalog := workload.New(workload.Params{Seed: 5}).Catalog()
	seedDir := func(t *testing.T) string {
		dir := t.TempDir()
		st, err := Open(dir, catalog, Options{SnapshotEvery: -1})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		net := chord.New(chord.Config{})
		net.AddNodes("peer", 8)
		eng := engine.New(net, catalog, engine.Config{Seed: 5})
		if _, err := st.Recover(eng); err != nil {
			t.Fatalf("recover: %v", err)
		}
		for i := 0; i < 3; i++ {
			if err := st.LogView(&wire.MemberView{Version: uint64(i + 1), Procs: []string{"a:1"}}); err != nil {
				t.Fatalf("log: %v", err)
			}
		}
		st.Abandon()
		return dir
	}

	t.Run("corrupt record fails open", func(t *testing.T) {
		dir := seedDir(t)
		path := filepath.Join(dir, walName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x20 // damage the middle record's payload
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = Open(dir, catalog, Options{})
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("Open returned %v, want CorruptError", err)
		}
	})

	t.Run("torn tail truncated", func(t *testing.T) {
		dir := seedDir(t)
		path := filepath.Join(dir, walName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		torn := append(data, data[:frameHeaderLen+3]...) // a partial fourth append
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir, catalog, Options{})
		if err != nil {
			t.Fatalf("open with torn tail: %v", err)
		}
		net := chord.New(chord.Config{})
		net.AddNodes("peer", 8)
		eng := engine.New(net, catalog, engine.Config{Seed: 5})
		info, err := st.Recover(eng)
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		if info.TornBytes != int64(frameHeaderLen+3) {
			t.Errorf("TornBytes = %d, want %d", info.TornBytes, frameHeaderLen+3)
		}
		if info.Replayed != 3 {
			t.Errorf("replayed %d records, want 3", info.Replayed)
		}
		if info.View == nil || info.View.Version != 3 {
			t.Errorf("view = %+v, want version 3", info.View)
		}
		st.Abandon()
		if fi, err := os.Stat(path); err != nil || fi.Size() != int64(len(data)) {
			t.Errorf("wal size after truncation = %v/%v, want %d", fi, err, len(data))
		}
	})

	t.Run("corrupt snapshot fails open", func(t *testing.T) {
		dir := seedDir(t)
		// Promote the WAL into a snapshot first.
		st, err := Open(dir, catalog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		net := chord.New(chord.Config{})
		net.AddNodes("peer", 8)
		eng := engine.New(net, catalog, engine.Config{Seed: 5})
		if _, err := st.Recover(eng); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, snapName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x08
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = Open(dir, catalog, Options{})
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("Open returned %v, want CorruptError", err)
		}
	})
}

// TestRecordCodecRoundTrip pushes one record of every tag through the
// encode/size/decode triple. Decoded tuples rebuild their schema objects,
// so equality is checked at the byte level: re-encoding the decoded record
// must reproduce the original encoding exactly.
func TestRecordCodecRoundTrip(t *testing.T) {
	gen := workload.New(workload.Params{Seed: 9})
	recs := []any{
		subscribeRec{Node: "peer1", SQL: "SELECT R0.a0 FROM R0, S0 WHERE R0.a0 = S0.a1", Key: "peer1#4"},
		subscribeRec{Node: "peer2", SQL: "chain", Key: "peer2#0", Multi: true},
		unsubscribeRec{Node: "peer1", SQL: "q", Key: "peer1#4", Multi: false},
		publishRec{Node: "peer3", T: gen.Tuple()},
		batchRec{Nodes: []string{"peer1", "peer2"}, Tuples: []*relation.Tuple{gen.Tuple(), gen.Tuple()}, Workers: 8},
		deliveryRec{Node: "peer5", Frame: []byte{1, 2, 3, 4}},
		viewRec{View: &wire.MemberView{Version: 9, Procs: []string{"x:1", "y:2"}}},
	}
	for i, rec := range recs {
		var w wire.Buffer
		if err := encodeRecord(&w, rec); err != nil {
			t.Fatalf("record %d: encode: %v", i, err)
		}
		if got := len(w.Bytes()); got != recordSize(rec) {
			t.Errorf("record %d: encoded %d bytes, recordSize says %d", i, got, recordSize(rec))
		}
		var r wire.Reader
		r.Reset(w.Bytes())
		back, err := decodeRecord(&r)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if reflect.TypeOf(back) != reflect.TypeOf(rec) {
			t.Fatalf("record %d: decoded as %T, want %T", i, back, rec)
		}
		var w2 wire.Buffer
		if err := encodeRecord(&w2, back); err != nil {
			t.Fatalf("record %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(w.Bytes(), w2.Bytes()) {
			t.Errorf("record %d: re-encoding the decoded record diverges", i)
		}
	}
}
