package durable

import (
	"strings"
	"testing"

	"cqjoin/internal/chaos"
	"cqjoin/internal/chord"
	"cqjoin/internal/engine"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
	"cqjoin/internal/sim"
)

// The hand-off crash tests (ISSUE 10): ownership movement and process
// crashes compose. TransferKeys/ExportHandoff strips a node's movable
// state into an in-flight message that is deliberately NOT logged — the
// WAL records intents (subscribes, publishes), not derived placement — so
// a process that dies mid-transfer resurrects the full pre-export state
// on recovery, and the orphaned in-flight copy must then be absorbed by
// the keyed merges when the transport's retry finally lands it.

// TestExportHandoffCrashRecovery crashes a process between ExportHandoff
// and delivery: the recovered engine must still hold the exported buckets
// (nothing dropped), and the stale hand-off copies arriving afterwards
// must merge idempotently (nothing double-delivered, evaluation undoubled).
func TestExportHandoffCrashRecovery(t *testing.T) {
	r := relation.MustSchema("R", "A", "B", "C")
	s := relation.MustSchema("S", "D", "E", "F")
	catalog := relation.MustCatalog(r, s)
	dir := t.TempDir()
	build := func() *engine.Engine {
		net := chord.New(chord.Config{})
		net.AddNodes("peer", 16)
		return engine.New(net, catalog, engine.Config{Seed: 5, MaxRetries: 3, RetryBackoff: 1})
	}

	eng := build()
	st, err := Open(dir, catalog, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := st.Recover(eng); err != nil {
		t.Fatalf("recover: %v", err)
	}
	node := func(e *engine.Engine, key string) *chord.Node {
		n := e.Network().NodeByKey(key)
		if n == nil {
			t.Fatalf("no node %s", key)
		}
		return n
	}
	if _, err := st.Subscribe(node(eng, "peer0"),
		query.MustParse(catalog, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	pub := func(store *Store, e *engine.Engine, key string, tu *relation.Tuple) {
		t.Helper()
		if _, err := store.Publish(node(e, key), tu); err != nil {
			t.Fatalf("publish: %v", err)
		}
	}
	for i := 0; i < 4; i++ {
		pub(st, eng, "peer1", relation.MustTuple(r, relation.N(float64(i)), relation.N(1), relation.N(0)))
		pub(st, eng, "peer9", relation.MustTuple(s, relation.N(float64(10+i)), relation.N(1), relation.N(0)))
	}
	delivered := len(eng.Notifications())
	if delivered == 0 {
		t.Fatal("workload delivered nothing; the hand-off would be empty")
	}

	// Mid-TransferKeys: every node's movable state is stripped into
	// in-flight hand-off messages, and the process dies before any of them
	// is delivered — or logged.
	type flight struct {
		key string
		msg chord.Message
	}
	var inflight []flight
	for _, n := range eng.Network().Nodes() {
		if msg, ok := eng.ExportHandoff(n); ok {
			inflight = append(inflight, flight{key: n.Key(), msg: msg})
		}
	}
	if len(inflight) == 0 {
		t.Fatal("no node had movable state; the crash point exercises nothing")
	}
	st.Abandon()

	// Recovery resurrects the pre-export state: the in-flight buckets were
	// never logged as gone, so nothing the transfer had in the air is lost.
	eng2 := build()
	st2, err := Open(dir, catalog, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	info, err := st2.Recover(eng2)
	if err != nil {
		t.Fatalf("recover after crash: %v", err)
	}
	t.Cleanup(st2.Abandon)
	if info.Replayed == 0 && info.SnapshotLSN == 0 {
		t.Fatalf("nothing recovered: %+v", info)
	}
	if got := len(eng2.Notifications()); got != delivered {
		t.Fatalf("recovered %d notifications, delivered %d before the crash", got, delivered)
	}

	// The orphaned transfer lands anyway — the old owner's transport retry
	// delivering into the recovered process. The keyed merges must absorb
	// every section against the resurrected state.
	for _, f := range inflight {
		if !eng2.Network().DeliverLocal(f.key, f.msg) {
			t.Fatalf("stale hand-off to %s not deliverable", f.key)
		}
	}
	if got := len(eng2.Notifications()); got != delivered {
		t.Fatalf("stale hand-off replay changed deliveries: %d, want %d", got, delivered)
	}

	// Evaluation continues undoubled: one fresh matching pair, exactly one
	// new notification — duplicated stored tuples would join twice here.
	pub(st2, eng2, "peer3", relation.MustTuple(r, relation.N(99), relation.N(2), relation.N(0)))
	pub(st2, eng2, "peer7", relation.MustTuple(s, relation.N(98), relation.N(2), relation.N(0)))
	if got := len(eng2.Notifications()); got != delivered+1 {
		t.Fatalf("fresh pair after stale merge delivered %d new notifications, want 1", got-delivered)
	}
	if err := chaos.NoDuplicateDeliveries(eng2.Notifications()); err != nil {
		t.Error(err)
	}
}

// TestChurnRestartHandoff composes node churn with whole-process
// crash/restarts: the chaos schedule crashes and departs nodes (moving
// their keys through hand-off) while RestartEvery kills the hosting
// process mid-stream; each incarnation recovers from the state dir and the
// injector rebinds onto it, carrying the fault schedule across. After
// calming and healing, the delivered set must match the centralized
// oracle exactly — nothing the churn or the crashes had in flight was
// dropped, and nothing was delivered twice.
func TestChurnRestartHandoff(t *testing.T) {
	const seed = 47
	r := relation.MustSchema("R", "A", "B", "C")
	s := relation.MustSchema("S", "D", "E", "F")
	catalog := relation.MustCatalog(r, s)
	dir := t.TempDir()

	build := func() *engine.Engine {
		net := chord.New(chord.Config{})
		net.AddNodes("peer", 48)
		return engine.New(net, catalog, engine.Config{Seed: seed, MaxRetries: 6, RetryBackoff: 1})
	}
	eng := build()
	in := chaos.New(eng, chaos.Config{
		Seed:           seed,
		DropRate:       0.03,
		DupRate:        0.03,
		DelayRate:      0.04,
		MaxDelay:       3,
		CrashRate:      0.10,
		LeaveRate:      0.05,
		RejoinAfter:    12,
		MinAlive:       16,
		StabilizeEvery: 4,
		KeyedDraws:     true,
		RestartEvery:   24,
	})
	openStore := func() *Store {
		st, err := Open(dir, catalog, Options{SnapshotEvery: 24, Down: in.Downed})
		if err != nil {
			t.Fatalf("open store: %v", err)
		}
		return st
	}
	st := openStore()
	if _, err := st.Recover(eng); err != nil {
		t.Fatalf("initial recover: %v", err)
	}

	oracle := engine.NewOracle()
	wl := sim.NewSource(seed + 1)
	alive := func() *chord.Node {
		nodes := eng.Network().Nodes()
		return nodes[wl.Intn(len(nodes))]
	}
	queries := []string{
		`SELECT R.A, S.D FROM R, S WHERE R.B = S.E`,
		`SELECT R.B, S.E FROM R, S WHERE R.A = S.D`,
		`SELECT S.D FROM R, S WHERE R.B = S.E AND R.C = 2`,
	}
	nextQuery := 0
	restarts := 0
	for step := 0; step < 120; step++ {
		switch {
		case nextQuery < len(queries) && (step%8 == 0 || wl.Intn(6) == 0):
			q, err := st.Subscribe(alive(), query.MustParse(catalog, queries[nextQuery]))
			if err != nil {
				t.Fatalf("subscribe: %v", err)
			}
			oracle.AddQuery(q)
			nextQuery++
		case wl.Intn(2) == 0:
			tu, err := st.Publish(alive(), relation.MustTuple(r,
				relation.N(float64(wl.Intn(5))), relation.N(float64(wl.Intn(3))), relation.N(float64(wl.Intn(3)))))
			if err != nil {
				t.Fatalf("publish R: %v", err)
			}
			oracle.AddTuple(tu)
		default:
			tu, err := st.Publish(alive(), relation.MustTuple(s,
				relation.N(float64(wl.Intn(5))), relation.N(float64(wl.Intn(3))), relation.N(float64(wl.Intn(3)))))
			if err != nil {
				t.Fatalf("publish S: %v", err)
			}
			oracle.AddTuple(tu)
		}
		in.Step()
		if in.TakeRestart() {
			restarts++
			st.Abandon() // kill -9: parked deliveries and the WAL descriptor die
			eng = build()
			st = openStore()
			info, err := st.Recover(eng)
			if err != nil {
				t.Fatalf("recover at step %d: %v", step, err)
			}
			in.Rebind(eng, info.Down)
		}
	}
	if restarts == 0 {
		t.Fatal("no process restarts fired; the schedule exercises nothing")
	}
	in.Calm()
	if rounds, err := in.HealAll(60); err != nil {
		t.Fatalf("overlay did not converge after %d rounds: %v", rounds, err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("final close: %v", err)
	}

	notifs := eng.Notifications()
	if err := chaos.RingIntact(eng.Network()); err != nil {
		t.Error(err)
	}
	if err := chaos.NoDuplicateDeliveries(notifs); err != nil {
		t.Error(err)
	}
	if err := chaos.Complete(oracle, notifs); err != nil {
		t.Error(err)
	}
	trace := strings.Join(in.Trace(), "\n")
	if !strings.Contains(trace, "proc-restart") || !strings.Contains(trace, "rebind") {
		t.Errorf("trace records no process restarts:\n%s", trace)
	}
}
