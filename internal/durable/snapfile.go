package durable

import (
	"fmt"

	"cqjoin/internal/chord"
	"cqjoin/internal/engine"
	"cqjoin/internal/relation"
	"cqjoin/internal/wire"
)

// Snapshot file codec. The whole file is one CRC frame (written to a temp
// path, fsynced, renamed into place — so it is either the complete old
// snapshot or the complete new one). Its payload:
//
//	coveredLSN uvarint      WAL records with lsn <= coveredLSN are stale
//	meta       bytes        engine snapMeta message (engine codec)
//	hasView    uvarint      0/1
//	[view      MemberView]  latest adopted membership view, if any
//	down       []string     crashed-pending node keys (count + strings)
//	nodes      count        per-node handoff sections:
//	  key      string
//	  msg      bytes        engine handoff message (engine codec)

// snapImage is a decoded snapshot file.
type snapImage struct {
	covered uint64
	meta    chord.Message // engine snapMeta message
	view    *wire.MemberView
	down    []string
	nodes   []engine.NodeSnapshot
}

// encodeSnapshot renders a snapshot image to its framed file bytes.
func encodeSnapshot(img snapImage) ([]byte, error) {
	var w wire.Buffer
	w.PutUvarint(img.covered)
	var mb wire.Buffer
	if err := engine.EncodeMessage(&mb, img.meta); err != nil {
		return nil, fmt.Errorf("durable: encode snapshot meta: %w", err)
	}
	w.PutBytes(mb.Bytes())
	if img.view != nil {
		w.PutUvarint(1)
		wire.EncodeMemberView(&w, img.view)
	} else {
		w.PutUvarint(0)
	}
	w.PutUvarint(uint64(len(img.down)))
	for _, k := range img.down {
		w.PutString(k)
	}
	w.PutUvarint(uint64(len(img.nodes)))
	for _, ns := range img.nodes {
		w.PutString(ns.Key)
		var nb wire.Buffer
		if err := engine.EncodeMessage(&nb, ns.Msg); err != nil {
			return nil, fmt.Errorf("durable: encode snapshot node %s: %w", ns.Key, err)
		}
		w.PutBytes(nb.Bytes())
	}
	return appendFramedPayload(nil, w.Bytes()), nil
}

// decodeSnapshot parses a snapshot file image.
func decodeSnapshot(data []byte, catalog *relation.Catalog) (snapImage, error) {
	var img snapImage
	payload, err := parseOneFrame(data)
	if err != nil {
		return img, fmt.Errorf("durable: snapshot: %w", err)
	}
	var r wire.Reader
	r.Reset(payload)
	if img.covered, err = r.Uvarint(); err != nil {
		return img, err
	}
	metaBytes, err := r.Bytes()
	if err != nil {
		return img, err
	}
	var mr wire.Reader
	mr.Reset(metaBytes)
	if img.meta, err = engine.DecodeMessage(&mr, catalog); err != nil {
		return img, fmt.Errorf("durable: decode snapshot meta: %w", err)
	}
	hasView, err := r.Uvarint()
	if err != nil {
		return img, err
	}
	if hasView != 0 {
		if img.view, err = wire.DecodeMemberView(&r); err != nil {
			return img, err
		}
	}
	nDown, err := recCount(&r)
	if err != nil {
		return img, err
	}
	img.down = make([]string, nDown)
	for i := range img.down {
		if img.down[i], err = r.String(); err != nil {
			return img, err
		}
	}
	nNodes, err := recCount(&r)
	if err != nil {
		return img, err
	}
	img.nodes = make([]engine.NodeSnapshot, nNodes)
	for i := range img.nodes {
		if img.nodes[i].Key, err = r.String(); err != nil {
			return img, err
		}
		nb, err := r.Bytes()
		if err != nil {
			return img, err
		}
		var nr wire.Reader
		nr.Reset(nb)
		if img.nodes[i].Msg, err = engine.DecodeMessage(&nr, catalog); err != nil {
			return img, fmt.Errorf("durable: decode snapshot node %s: %w", img.nodes[i].Key, err)
		}
	}
	return img, nil
}
