// Package durable adds per-node crash durability to the engine: a
// write-ahead log of client operations and inbound overlay deliveries,
// plus periodic whole-engine snapshots with log truncation (DESIGN.md
// §14). Recovery restores the latest snapshot and replays the log tail
// through the ordinary engine entry points, so a kill -9'd process
// reproduces the exact notification content a never-crashed run delivers.
package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// WAL frame layout, little-endian:
//
//	plen:u32 | hcrc:u32 | payload | pcrc:u32
//
// where hcrc covers the four plen bytes, pcrc covers the payload, and the
// payload is the record's LSN as a uvarint followed by its record-codec
// bytes. The header CRC splits torn tails from corruption: appends write
// the header first, so an interrupted append leaves a strict prefix of a
// frame — a header that is complete but wrong was not torn, it was
// damaged, and replay must refuse it rather than silently truncate
// committed records behind it.

const (
	frameHeaderLen  = 8       // plen + hcrc
	frameTrailerLen = 4       // pcrc
	maxRecordLen    = 1 << 26 // sanity bound on one payload
)

// castagnoli is the CRC-32C polynomial table (the iSCSI/ext4 checksum).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports a WAL frame that is damaged rather than torn:
// replay stops and recovery fails loudly instead of dropping committed
// records (ISSUE 10 satellite; DESIGN.md §14.2).
type CorruptError struct {
	Off    int64  // byte offset of the offending frame
	LSN    uint64 // last good LSN before it (0 if none)
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("durable: corrupt wal frame at offset %d after lsn %d: %s", e.Off, e.LSN, e.Reason)
}

// walRecord is one decoded frame: its log sequence number and record
// bytes (aliasing the scanned buffer).
type walRecord struct {
	lsn  uint64
	data []byte
}

// appendFrame appends one framed (lsn, record) payload to dst.
func appendFrame(dst []byte, lsn uint64, record []byte) []byte {
	payload := binary.AppendUvarint(nil, lsn)
	payload = append(payload, record...)
	return appendFramedPayload(dst, payload)
}

// appendFramedPayload wraps payload in the frame layout above. The
// snapshot file reuses it for its single whole-file frame.
func appendFramedPayload(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(hdr[0:4], castagnoli))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
}

// parseOneFrame parses data as exactly one complete frame and returns its
// payload. Unlike the WAL scan, nothing here is tolerably torn: the
// snapshot file is written to a temp path, fsynced, and renamed into
// place, so any damage is corruption.
func parseOneFrame(data []byte) ([]byte, error) {
	if len(data) < frameHeaderLen+frameTrailerLen {
		return nil, &CorruptError{Reason: fmt.Sprintf("file too short (%d bytes)", len(data))}
	}
	plen := binary.LittleEndian.Uint32(data[0:4])
	if crc32.Checksum(data[0:4], castagnoli) != binary.LittleEndian.Uint32(data[4:8]) {
		return nil, &CorruptError{Reason: "header crc mismatch"}
	}
	if plen == 0 || plen > maxRecordLen {
		return nil, &CorruptError{Reason: fmt.Sprintf("implausible payload length %d", plen)}
	}
	if len(data) != frameHeaderLen+int(plen)+frameTrailerLen {
		return nil, &CorruptError{Reason: fmt.Sprintf("file length %d does not match framed length %d", len(data), frameHeaderLen+int(plen)+frameTrailerLen)}
	}
	payload := data[frameHeaderLen : frameHeaderLen+plen]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[len(data)-frameTrailerLen:]) {
		return nil, &CorruptError{Reason: "payload crc mismatch"}
	}
	return payload, nil
}

// scanFrames parses a WAL image into its complete records. The second
// return is the clean length: bytes past it are a torn tail (an append
// interrupted by the crash) and safe to truncate. A frame that is
// complete but fails a CRC, length, or LSN-continuity check yields a
// CorruptError instead — committed records must never be dropped quietly.
func scanFrames(data []byte) ([]walRecord, int64, error) {
	var recs []walRecord
	var lastLSN uint64
	off := int64(0)
	for int(off) < len(data) {
		rem := data[off:]
		if len(rem) < frameHeaderLen {
			return recs, off, nil // torn inside the header
		}
		plen := binary.LittleEndian.Uint32(rem[0:4])
		hcrc := binary.LittleEndian.Uint32(rem[4:8])
		if crc32.Checksum(rem[0:4], castagnoli) != hcrc {
			return nil, off, &CorruptError{Off: off, LSN: lastLSN, Reason: "header crc mismatch"}
		}
		if plen == 0 || plen > maxRecordLen {
			return nil, off, &CorruptError{Off: off, LSN: lastLSN, Reason: fmt.Sprintf("implausible payload length %d", plen)}
		}
		if len(rem)-frameHeaderLen < int(plen)+frameTrailerLen {
			return recs, off, nil // torn inside payload or trailer
		}
		payload := rem[frameHeaderLen : frameHeaderLen+plen]
		pcrc := binary.LittleEndian.Uint32(rem[frameHeaderLen+plen : frameHeaderLen+plen+frameTrailerLen])
		if crc32.Checksum(payload, castagnoli) != pcrc {
			return nil, off, &CorruptError{Off: off, LSN: lastLSN, Reason: "payload crc mismatch"}
		}
		lsn, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, off, &CorruptError{Off: off, LSN: lastLSN, Reason: "unreadable lsn"}
		}
		if lastLSN != 0 && lsn != lastLSN+1 {
			return nil, off, &CorruptError{Off: off, LSN: lastLSN, Reason: fmt.Sprintf("lsn discontinuity: %d after %d", lsn, lastLSN)}
		}
		if lsn == 0 {
			return nil, off, &CorruptError{Off: off, LSN: lastLSN, Reason: "lsn 0 is reserved"}
		}
		recs = append(recs, walRecord{lsn: lsn, data: payload[n:]})
		lastLSN = lsn
		off += int64(frameHeaderLen) + int64(plen) + int64(frameTrailerLen)
	}
	return recs, off, nil
}
