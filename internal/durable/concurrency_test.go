package durable

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"cqjoin/internal/chord"
	"cqjoin/internal/engine"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
	"cqjoin/internal/wire"
	"cqjoin/internal/workload"
)

// Regressions for the review findings on the durable store: apply/log
// order agreement under concurrent client ops, the group-commit leader
// racing a checkpoint's descriptor swap, and fail-stop after a WAL
// write error.

// buildStoreEngine opens a store over dir bound to a fresh engine.
func buildStoreEngine(t *testing.T, gen *workload.Generator, dir string, nodes int, snapshotEvery int) (*engine.Engine, *Store) {
	t.Helper()
	net := chord.New(chord.Config{})
	net.AddNodes("peer", nodes)
	eng := engine.New(net, gen.Catalog(), engine.Config{Seed: 7})
	st, err := Open(dir, gen.Catalog(), Options{SnapshotEvery: snapshotEvery})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	if _, err := st.Recover(eng); err != nil {
		t.Fatalf("recover: %v", err)
	}
	return eng, st
}

func contentKey(tpl *relation.Tuple) string {
	return fmt.Sprintf("%s%v", tpl.Relation(), tpl.Values())
}

// TestConcurrentOpsExactReplay drives publishes and same-subscriber
// subscribes from 8 goroutines and requires the WAL to agree with the
// engine apply order: acked publication stamps must be strictly
// increasing in log order, replay must re-derive the exact acked
// subscription keys (Recover fails with "replay diverged" otherwise),
// and the recovered clock must sit exactly where the crashed engine's
// did. Without apply+log serialization a concurrent run interleaves
// clock ticks and appends in different orders and recovery re-stamps
// acked tuples with different times.
func TestConcurrentOpsExactReplay(t *testing.T) {
	const (
		workers   = 8
		perWorker = 60
		subEvery  = 10 // subscribe cadence within each worker's stream
	)
	gen := workload.New(workload.Params{Seed: 53})
	catalog := gen.Catalog()
	schema := gen.LeftSchema(0)
	dir := t.TempDir()
	eng, st := buildStoreEngine(t, gen, dir, workers, -1)
	net := eng.Network()

	// Pregenerate parse results so goroutines only exercise the store.
	queries := make([][]*query.Query, workers)
	for w := range queries {
		for i := 0; i < perWorker/subEvery; i++ {
			q, err := query.Parse(catalog, gen.Query().Text())
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			queries[w] = append(queries[w], q)
		}
	}

	acked := make([]map[string]int64, workers) // tuple content -> acked PubT
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		acked[w] = make(map[string]int64)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			from := net.NodeByKey(fmt.Sprintf("peer%d", w))
			subscriber := net.NodeByKey("peer0") // shared: contends on the seq counter
			for i := 0; i < perWorker; i++ {
				vals := make([]relation.Value, schema.Arity())
				for j := range vals {
					vals[j] = relation.N(float64(w*1000000 + i*100 + j)) // unique per tuple
				}
				tpl := relation.MustTuple(schema, vals...)
				res, err := st.Publish(from, tpl)
				if err != nil {
					t.Errorf("worker %d publish %d: %v", w, i, err)
					return
				}
				acked[w][contentKey(tpl)] = res.PubT()
				if i%subEvery == subEvery-1 {
					if _, err := st.Subscribe(subscriber, queries[w][i/subEvery]); err != nil {
						t.Errorf("worker %d subscribe: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// The never-crashed engine's next stamp is the replay oracle.
	oracleNext, err := eng.Publish(net.NodeByKey("peer0"), gen.Tuple())
	if err != nil {
		t.Fatalf("oracle publish: %v", err)
	}
	st.Abandon()

	stamps := make(map[string]int64)
	for _, m := range acked {
		for k, v := range m {
			stamps[k] = v
		}
	}
	st2, err := Open(dir, catalog, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	last := int64(0)
	checked := 0
	for _, rec := range st2.recs {
		p, ok := rec.(publishRec)
		if !ok {
			continue
		}
		got, ok := stamps[contentKey(p.T)]
		if !ok {
			t.Fatalf("wal holds a publish no worker acked: %v", p.T)
		}
		if got <= last {
			t.Fatalf("acked PubT %d out of order in the wal (previous %d): log order diverged from apply order", got, last)
		}
		last = got
		checked++
	}
	if checked != workers*perWorker {
		t.Fatalf("wal holds %d publishes, acked %d", checked, workers*perWorker)
	}

	// Replay re-derives subscription keys and stamps; any divergence from
	// the acked values fails Recover.
	net2 := chord.New(chord.Config{})
	net2.AddNodes("peer", workers)
	eng2 := engine.New(net2, catalog, engine.Config{Seed: 7})
	if _, err := st2.Recover(eng2); err != nil {
		t.Fatalf("recover after concurrent ops: %v", err)
	}
	recoveredNext, err := eng2.Publish(net2.NodeByKey("peer0"), gen.Tuple())
	if err != nil {
		t.Fatalf("post-recovery publish: %v", err)
	}
	if recoveredNext.PubT() != oracleNext.PubT() {
		t.Errorf("recovered clock at %d, never-crashed oracle at %d", recoveredNext.PubT(), oracleNext.PubT())
	}
}

// TestCheckpointRacesGateFreeAppends hammers checkpoints against
// gate-free appends. The checkpoint's WAL rewrite closes and swaps the
// file descriptor; a group-commit leader syncing concurrently must not
// observe the swap (a data race on the pointer, and a spurious
// ErrClosed ack failure for a record that is durable). Every acked
// append must also survive recovery.
func TestCheckpointRacesGateFreeAppends(t *testing.T) {
	const (
		workers   = 8
		perWorker = 400
	)
	gen := workload.New(workload.Params{Seed: 59})
	dir := t.TempDir()
	_, st := buildStoreEngine(t, gen, dir, 4, -1)

	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				v := &wire.MemberView{Version: uint64(w*perWorker + i), Origin: "10.0.0.1:7570", Procs: []string{"10.0.0.1:7570"}}
				if err := st.LogView(v); err != nil {
					t.Errorf("gate-free append during checkpoint: %v", err)
					return
				}
			}
		}(w)
	}
	go func() { wg.Wait(); close(done) }()
	// Checkpoint continuously until the appenders drain: every rewrite
	// races the group-commit leaders' fsyncs.
	for i := 0; ; i++ {
		if err := st.Checkpoint(); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		select {
		case <-done:
		default:
			continue
		}
		break
	}
	if t.Failed() {
		return
	}
	st.Abandon()

	st2, err := Open(dir, gen.Catalog(), Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	net2 := chord.New(chord.Config{})
	net2.AddNodes("peer", 4)
	eng2 := engine.New(net2, gen.Catalog(), engine.Config{Seed: 7})
	info, err := st2.Recover(eng2)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if total := info.SnapshotLSN + uint64(info.Replayed); total != workers*perWorker {
		t.Errorf("recovered %d records (snapshot lsn %d + %d replayed), acked %d",
			total, info.SnapshotLSN, info.Replayed, workers*perWorker)
	}
}

// TestAppendFailStop: after a WAL write error the store must reject
// further appends and checkpoints instead of appending past partial
// frame bytes, and the state dir must still recover everything acked
// before the fault.
func TestAppendFailStop(t *testing.T) {
	gen := workload.New(workload.Params{Seed: 61})
	dir := t.TempDir()
	eng, st := buildStoreEngine(t, gen, dir, 4, -1)
	net := eng.Network()
	if _, err := st.Publish(net.NodeByKey("peer0"), gen.Tuple()); err != nil {
		t.Fatalf("publish: %v", err)
	}

	// Sever the descriptor so the next frame write fails.
	st.mu.Lock()
	st.f.Close()
	st.mu.Unlock()

	v := &wire.MemberView{Version: 2, Origin: "10.0.0.1:7570", Procs: []string{"10.0.0.1:7570"}}
	if err := st.LogView(v); err == nil {
		t.Fatal("append over a dead wal descriptor succeeded")
	}
	if err := st.LogView(v); !errors.Is(err, errFailed) {
		t.Fatalf("second append after a write error = %v, want fail-stop", err)
	}
	if err := st.Checkpoint(); !errors.Is(err, errFailed) {
		t.Fatalf("checkpoint on a failed store = %v, want fail-stop", err)
	}

	st2, err := Open(dir, gen.Catalog(), Options{})
	if err != nil {
		t.Fatalf("reopen after fail-stop: %v", err)
	}
	net2 := chord.New(chord.Config{})
	net2.AddNodes("peer", 4)
	eng2 := engine.New(net2, gen.Catalog(), engine.Config{Seed: 7})
	info, err := st2.Recover(eng2)
	if err != nil {
		t.Fatalf("recover after fail-stop: %v", err)
	}
	if info.SnapshotLSN+uint64(info.Replayed) != 1 {
		t.Errorf("recovered %d records, want the 1 acked before the fault", info.SnapshotLSN+uint64(info.Replayed))
	}
}
