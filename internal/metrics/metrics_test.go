package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestTrafficRecord(t *testing.T) {
	var tr Traffic
	tr.Record("al-index", 5)
	tr.Record("al-index", 3)
	tr.Record("join", 0)
	if got := tr.Messages("al-index"); got != 2 {
		t.Fatalf("messages = %d, want 2", got)
	}
	if got := tr.Hops("al-index"); got != 8 {
		t.Fatalf("hops = %d, want 8", got)
	}
	if got := tr.TotalMessages(); got != 3 {
		t.Fatalf("total messages = %d, want 3", got)
	}
	if got := tr.TotalHops(); got != 8 {
		t.Fatalf("total hops = %d, want 8", got)
	}
}

func TestTrafficRecordHopsOnly(t *testing.T) {
	var tr Traffic
	tr.Record("multisend", 2)
	tr.RecordHopsOnly("multisend", 4)
	if got := tr.Messages("multisend"); got != 1 {
		t.Fatalf("messages = %d, want 1", got)
	}
	if got := tr.Hops("multisend"); got != 6 {
		t.Fatalf("hops = %d, want 6", got)
	}
}

func TestTrafficBytes(t *testing.T) {
	var tr Traffic
	tr.Record("join", 3)
	tr.AddBytes("join", 120)
	tr.AddBytes("join", 30)
	tr.AddBytes("query", 10)
	if got := tr.Bytes("join"); got != 150 {
		t.Fatalf("bytes = %d, want 150", got)
	}
	if got := tr.TotalBytes(); got != 160 {
		t.Fatalf("total bytes = %d, want 160", got)
	}
	if !strings.Contains(tr.String(), "bytes=150") {
		t.Fatalf("String missing bytes: %q", tr.String())
	}
	tr.Reset()
	if tr.TotalBytes() != 0 {
		t.Fatal("reset did not clear bytes")
	}
}

func TestTrafficResetAndSnapshot(t *testing.T) {
	var tr Traffic
	tr.Record("x", 1)
	msgs, hops := tr.Snapshot()
	if msgs["x"] != 1 || hops["x"] != 1 {
		t.Fatal("snapshot missing data")
	}
	// Snapshot must be a copy.
	msgs["x"] = 99
	if tr.Messages("x") != 1 {
		t.Fatal("snapshot aliases internal state")
	}
	tr.Reset()
	if tr.TotalMessages() != 0 || tr.TotalHops() != 0 {
		t.Fatal("reset did not clear counters")
	}
}

func TestTrafficString(t *testing.T) {
	var tr Traffic
	tr.Record("b-kind", 2)
	tr.Record("a-kind", 1)
	s := tr.String()
	if !strings.Contains(s, "a-kind") || !strings.Contains(s, "TOTAL") {
		t.Fatalf("String missing content: %q", s)
	}
	if strings.Index(s, "a-kind") > strings.Index(s, "b-kind") {
		t.Fatal("String not sorted by kind")
	}
}

func TestTrafficConcurrent(t *testing.T) {
	var tr Traffic
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				tr.Record("k", 1)
			}
		}()
	}
	wg.Wait()
	if got := tr.Messages("k"); got != 4000 {
		t.Fatalf("concurrent messages = %d, want 4000", got)
	}
}

func TestLoadRoles(t *testing.T) {
	var l Load
	l.AddFiltering(Rewriter, 3)
	l.AddFiltering(Evaluator, 5)
	l.AddStorage(Evaluator, 7)
	l.AddStorage(Evaluator, -2)
	if got := l.Filtering(Rewriter); got != 3 {
		t.Fatalf("rewriter filtering = %d", got)
	}
	if got := l.TotalFiltering(); got != 8 {
		t.Fatalf("total filtering = %d", got)
	}
	if got := l.Storage(Evaluator); got != 5 {
		t.Fatalf("evaluator storage = %d", got)
	}
	if got := l.TotalStorage(); got != 5 {
		t.Fatalf("total storage = %d", got)
	}
	l.Reset()
	if l.TotalFiltering() != 0 || l.TotalStorage() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestRoleString(t *testing.T) {
	if Rewriter.String() != "rewriter" || Evaluator.String() != "evaluator" {
		t.Fatal("role names wrong")
	}
	if Role(99).String() != "unknown" {
		t.Fatal("unknown role name wrong")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	d := Summarize(nil)
	if d.N != 0 || d.Total != 0 || d.Gini != 0 {
		t.Fatalf("empty summary nonzero: %+v", d)
	}
}

func TestSummarizeUniform(t *testing.T) {
	d := Summarize([]float64{4, 4, 4, 4})
	if d.Gini > 1e-9 {
		t.Fatalf("uniform Gini = %f, want 0", d.Gini)
	}
	if d.CoV > 1e-9 {
		t.Fatalf("uniform CoV = %f, want 0", d.CoV)
	}
	if d.Mean != 4 || d.Max != 4 || d.NonZero != 4 {
		t.Fatalf("uniform stats wrong: %+v", d)
	}
}

func TestSummarizeConcentrated(t *testing.T) {
	loads := make([]float64, 100)
	loads[0] = 1000
	d := Summarize(loads)
	if d.Gini < 0.95 {
		t.Fatalf("concentrated Gini = %f, want near 1", d.Gini)
	}
	if d.NonZero != 1 {
		t.Fatalf("NonZero = %d, want 1", d.NonZero)
	}
	if math.Abs(d.Top1Share-1.0) > 1e-9 {
		t.Fatalf("Top1Share = %f, want 1", d.Top1Share)
	}
}

func TestSummarizePercentiles(t *testing.T) {
	loads := make([]float64, 100)
	for i := range loads {
		loads[i] = float64(i + 1) // 1..100
	}
	d := Summarize(loads)
	if d.P50 != 50 || d.P90 != 90 || d.P99 != 99 {
		t.Fatalf("percentiles = %v %v %v", d.P50, d.P90, d.P99)
	}
	if d.Max != 100 {
		t.Fatalf("max = %v", d.Max)
	}
}

func TestGiniBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		loads := make([]float64, len(raw))
		for i, v := range raw {
			loads[i] = float64(v)
		}
		d := Summarize(loads)
		return d.Gini >= -1e-9 && d.Gini <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopShareMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		loads := make([]float64, len(raw))
		for i, v := range raw {
			loads[i] = float64(v)
		}
		d := Summarize(loads)
		return d.Top1Share <= d.Top10Share+1e-9 && d.Top10Share <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeInt(t *testing.T) {
	d := SummarizeInt([]int64{1, 2, 3})
	if d.Total != 6 || d.N != 3 {
		t.Fatalf("SummarizeInt wrong: %+v", d)
	}
}

func TestSortedCurve(t *testing.T) {
	in := []float64{1, 5, 3}
	out := SortedCurve(in)
	if out[0] != 5 || out[1] != 3 || out[2] != 1 {
		t.Fatalf("curve = %v", out)
	}
	if in[0] != 1 {
		t.Fatal("SortedCurve mutated input")
	}
}

func TestDistributionString(t *testing.T) {
	s := Summarize([]float64{1, 2}).String()
	if !strings.Contains(s, "gini=") || !strings.Contains(s, "n=2") {
		t.Fatalf("String missing fields: %q", s)
	}
}
