// Package metrics implements the measurement apparatus of the paper's
// evaluation chapter: a network-traffic ledger counting overlay messages and
// hops per message kind, per-node filtering (TF) and storage (TS) load
// counters, and distribution statistics (sorted load curves, Gini
// coefficient, coefficient of variation, top-k shares) used to plot the
// load-balance figures.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Traffic is the network-traffic ledger. Every overlay hop performed by the
// routing layer is charged here under the kind of the message being routed
// (e.g. "al-index", "vl-index", "join", "notification"). The paper's traffic
// figures report exactly these counts: total overlay hops per inserted tuple.
//
// The zero Traffic is ready to use. All methods are safe for concurrent use.
type Traffic struct {
	mu       sync.Mutex
	messages map[string]int64
	hops     map[string]int64
	bytes    map[string]int64
}

// Record charges one message of the given kind that travelled the given
// number of overlay hops. A message delivered to the local node costs zero
// hops but is still counted as a message.
func (t *Traffic) Record(kind string, hops int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.init()
	t.messages[kind]++
	t.hops[kind] += int64(hops)
}

// init allocates the counter maps. Callers hold t.mu.
func (t *Traffic) init() {
	if t.messages == nil {
		t.messages = make(map[string]int64)
		t.hops = make(map[string]int64)
		t.bytes = make(map[string]int64)
	}
}

// AddBytes charges n wire bytes to the kind. The convention is bytes
// transferred over the physical network: a message of size s travelling h
// overlay hops is retransmitted h times and charges s*h bytes.
func (t *Traffic) AddBytes(kind string, n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.init()
	t.bytes[kind] += int64(n)
}

// Bytes returns the wire bytes recorded for kind.
func (t *Traffic) Bytes(kind string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytes[kind]
}

// TotalBytes returns the wire bytes recorded across all kinds.
func (t *Traffic) TotalBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, v := range t.bytes {
		n += v
	}
	return n
}

// RecordHopsOnly charges extra hops to an existing kind without counting a
// new message, used when a single logical message is forwarded further
// (multisend relaying).
func (t *Traffic) RecordHopsOnly(kind string, hops int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.init()
	t.hops[kind] += int64(hops)
}

// Messages returns the number of messages recorded for kind.
func (t *Traffic) Messages(kind string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.messages[kind]
}

// Hops returns the number of hops recorded for kind.
func (t *Traffic) Hops(kind string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hops[kind]
}

// TotalMessages returns the number of messages recorded across all kinds.
func (t *Traffic) TotalMessages() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, v := range t.messages {
		n += v
	}
	return n
}

// TotalHops returns the number of overlay hops recorded across all kinds.
func (t *Traffic) TotalHops() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, v := range t.hops {
		n += v
	}
	return n
}

// Reset clears all counters. Experiments reset the ledger after the
// warm-up phase so figures report steady-state traffic only.
func (t *Traffic) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.messages = nil
	t.hops = nil
	t.bytes = nil
}

// Snapshot returns a copy of the per-kind counters, for reporting.
func (t *Traffic) Snapshot() (messages, hops map[string]int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	messages = make(map[string]int64, len(t.messages))
	hops = make(map[string]int64, len(t.hops))
	for k, v := range t.messages {
		messages[k] = v
	}
	for k, v := range t.hops {
		hops[k] = v
	}
	return messages, hops
}

// String renders a stable, human-readable summary ordered by kind.
func (t *Traffic) String() string {
	messages, hops := t.Snapshot()
	t.mu.Lock()
	bytes := make(map[string]int64, len(t.bytes))
	for k, v := range t.bytes {
		bytes[k] = v
	}
	t.mu.Unlock()
	kinds := make([]string, 0, len(messages))
	for k := range messages {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var b strings.Builder
	for _, k := range kinds {
		fmt.Fprintf(&b, "%-14s msgs=%-8d hops=%-8d bytes=%d\n", k, messages[k], hops[k], bytes[k])
	}
	fmt.Fprintf(&b, "%-14s msgs=%-8d hops=%-8d bytes=%d", "TOTAL",
		t.TotalMessages(), t.TotalHops(), t.TotalBytes())
	return b.String()
}
