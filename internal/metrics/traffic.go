// Package metrics implements the measurement apparatus of the paper's
// evaluation chapter: a network-traffic ledger counting overlay messages and
// hops per message kind, per-node filtering (TF) and storage (TS) load
// counters, and distribution statistics (sorted load curves, Gini
// coefficient, coefficient of variation, top-k shares) used to plot the
// load-balance figures.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Traffic is the network-traffic ledger. Every overlay hop performed by the
// routing layer is charged here under the kind of the message being routed
// (e.g. "al-index", "vl-index", "join", "notification"). The paper's traffic
// figures report exactly these counts: total overlay hops per inserted tuple.
//
// The zero Traffic is ready to use. All methods are safe for concurrent use.
type Traffic struct {
	mu       sync.Mutex
	messages map[string]int64
	hops     map[string]int64
	bytes    map[string]int64
	// Fault accounting (chaos runs): deliveries dropped in transit,
	// duplicate deliveries (injected or suppressed at the receiver),
	// deliveries held back by a delay fault, sender-side retries, and
	// messages lost for good after the retry budget ran out.
	drops   map[string]int64
	dups    map[string]int64
	delays  map[string]int64
	retries map[string]int64
	lost    map[string]int64
}

// Record charges one message of the given kind that travelled the given
// number of overlay hops. A message delivered to the local node costs zero
// hops but is still counted as a message.
func (t *Traffic) Record(kind string, hops int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.init()
	t.messages[kind]++
	t.hops[kind] += int64(hops)
}

// init allocates the counter maps. Callers hold t.mu.
func (t *Traffic) init() {
	if t.messages == nil {
		t.messages = make(map[string]int64)
		t.hops = make(map[string]int64)
		t.bytes = make(map[string]int64)
		t.drops = make(map[string]int64)
		t.dups = make(map[string]int64)
		t.delays = make(map[string]int64)
		t.retries = make(map[string]int64)
		t.lost = make(map[string]int64)
	}
}

// RecordDrop charges one delivery of the given kind lost in transit.
func (t *Traffic) RecordDrop(kind string) { t.bump(&t.drops, kind) }

// RecordDuplicate charges one duplicated delivery of the given kind.
func (t *Traffic) RecordDuplicate(kind string) { t.bump(&t.dups, kind) }

// RecordDelayed charges one delivery of the given kind held back in
// transit.
func (t *Traffic) RecordDelayed(kind string) { t.bump(&t.delays, kind) }

// RecordRetry charges one sender-side re-send of the given kind.
func (t *Traffic) RecordRetry(kind string) { t.bump(&t.retries, kind) }

// RecordLost charges one message of the given kind abandoned after the
// sender's retry budget was exhausted.
func (t *Traffic) RecordLost(kind string) { t.bump(&t.lost, kind) }

func (t *Traffic) bump(m *map[string]int64, kind string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.init()
	(*m)[kind]++
}

// Drops returns the in-transit losses recorded for kind.
func (t *Traffic) Drops(kind string) int64 { return t.get(t.drops, kind) }

// Duplicates returns the duplicated deliveries recorded for kind.
func (t *Traffic) Duplicates(kind string) int64 { return t.get(t.dups, kind) }

// Delayed returns the held-back deliveries recorded for kind.
func (t *Traffic) Delayed(kind string) int64 { return t.get(t.delays, kind) }

// Retries returns the sender-side re-sends recorded for kind.
func (t *Traffic) Retries(kind string) int64 { return t.get(t.retries, kind) }

// Lost returns the messages of the given kind abandoned after retries.
func (t *Traffic) Lost(kind string) int64 { return t.get(t.lost, kind) }

func (t *Traffic) get(m map[string]int64, kind string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return m[kind]
}

// TotalLost returns the abandoned messages across all kinds.
func (t *Traffic) TotalLost() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, v := range t.lost {
		n += v
	}
	return n
}

// TotalRetries returns the sender-side re-sends across all kinds.
func (t *Traffic) TotalRetries() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, v := range t.retries {
		n += v
	}
	return n
}

// AddBytes charges n wire bytes to the kind. The convention is bytes
// transferred over the physical network: a message of size s travelling h
// overlay hops is retransmitted h times and charges s*h bytes.
func (t *Traffic) AddBytes(kind string, n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.init()
	t.bytes[kind] += int64(n)
}

// Bytes returns the wire bytes recorded for kind.
func (t *Traffic) Bytes(kind string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytes[kind]
}

// TotalBytes returns the wire bytes recorded across all kinds.
func (t *Traffic) TotalBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, v := range t.bytes {
		n += v
	}
	return n
}

// RecordHopsOnly charges extra hops to an existing kind without counting a
// new message, used when a single logical message is forwarded further
// (multisend relaying).
func (t *Traffic) RecordHopsOnly(kind string, hops int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.init()
	t.hops[kind] += int64(hops)
}

// Messages returns the number of messages recorded for kind.
func (t *Traffic) Messages(kind string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.messages[kind]
}

// Hops returns the number of hops recorded for kind.
func (t *Traffic) Hops(kind string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hops[kind]
}

// TotalMessages returns the number of messages recorded across all kinds.
func (t *Traffic) TotalMessages() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, v := range t.messages {
		n += v
	}
	return n
}

// TotalHops returns the number of overlay hops recorded across all kinds.
func (t *Traffic) TotalHops() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, v := range t.hops {
		n += v
	}
	return n
}

// Reset clears all counters. Experiments reset the ledger after the
// warm-up phase so figures report steady-state traffic only.
func (t *Traffic) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.messages = nil
	t.hops = nil
	t.bytes = nil
	t.drops = nil
	t.dups = nil
	t.delays = nil
	t.retries = nil
	t.lost = nil
}

// Snapshot returns a copy of the per-kind counters, for reporting.
func (t *Traffic) Snapshot() (messages, hops map[string]int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	messages = make(map[string]int64, len(t.messages))
	hops = make(map[string]int64, len(t.hops))
	for k, v := range t.messages {
		messages[k] = v
	}
	for k, v := range t.hops {
		hops[k] = v
	}
	return messages, hops
}

// String renders a stable, human-readable summary ordered by kind.
func (t *Traffic) String() string {
	messages, hops := t.Snapshot()
	t.mu.Lock()
	bytes := make(map[string]int64, len(t.bytes))
	for k, v := range t.bytes {
		bytes[k] = v
	}
	t.mu.Unlock()
	kinds := make([]string, 0, len(messages))
	for k := range messages {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var b strings.Builder
	for _, k := range kinds {
		fmt.Fprintf(&b, "%-14s msgs=%-8d hops=%-8d bytes=%d\n", k, messages[k], hops[k], bytes[k])
	}
	fmt.Fprintf(&b, "%-14s msgs=%-8d hops=%-8d bytes=%d", "TOTAL",
		t.TotalMessages(), t.TotalHops(), t.TotalBytes())
	t.mu.Lock()
	var drops, dups, delays, retries, lost int64
	for _, v := range t.drops {
		drops += v
	}
	for _, v := range t.dups {
		dups += v
	}
	for _, v := range t.delays {
		delays += v
	}
	for _, v := range t.retries {
		retries += v
	}
	for _, v := range t.lost {
		lost += v
	}
	t.mu.Unlock()
	if drops+dups+delays+retries+lost > 0 {
		fmt.Fprintf(&b, "\n%-14s drops=%d dups=%d delays=%d retries=%d lost=%d",
			"FAULTS", drops, dups, delays, retries, lost)
	}
	return b.String()
}
