// Package metrics implements the measurement apparatus of the paper's
// evaluation chapter: a network-traffic ledger counting overlay messages and
// hops per message kind, per-node filtering (TF) and storage (TS) load
// counters, and distribution statistics (sorted load curves, Gini
// coefficient, coefficient of variation, top-k shares) used to plot the
// load-balance figures.
//
// Since the observability PR, the ledger and the load counters are thin
// facades over internal/obs: every count lives in an obs.CounterVec /
// obs.Counter, so an experiment that shares its obs.Registry with the
// overlay sees the paper's metrics and the substrate's instrumentation in
// one snapshot, and the hot-path cost is an interned map read plus an
// atomic add instead of a mutex-guarded map write.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cqjoin/internal/obs"
)

// Traffic is the network-traffic ledger. Every overlay hop performed by the
// routing layer is charged here under the kind of the message being routed
// (e.g. "al-index", "vl-index", "join", "notification"). The paper's traffic
// figures report exactly these counts: total overlay hops per inserted tuple.
//
// The zero Traffic is ready to use (it lazily allocates a private
// obs.Registry); NewTraffic hangs the families on a shared registry
// instead. All methods are safe for concurrent use.
type Traffic struct {
	initOnce sync.Once
	reg      *obs.Registry

	messages *obs.CounterVec
	hops     *obs.CounterVec
	bytes    *obs.CounterVec
	// Fault accounting (chaos runs): deliveries dropped in transit,
	// duplicate deliveries (injected or suppressed at the receiver),
	// deliveries held back by a delay fault, sender-side retries, and
	// messages lost for good after the retry budget ran out.
	drops   *obs.CounterVec
	dups    *obs.CounterVec
	delays  *obs.CounterVec
	retries *obs.CounterVec
	lost    *obs.CounterVec
}

// NewTraffic builds a ledger whose counter families live in reg under the
// "traffic.*" namespace, so one registry snapshot covers both the paper's
// ledger and the rest of the instrumentation. A nil reg allocates a
// private registry (equivalent to the zero Traffic).
func NewTraffic(reg *obs.Registry) *Traffic {
	t := &Traffic{reg: reg}
	t.init()
	return t
}

// init hangs the counter families on the registry, exactly once.
func (t *Traffic) init() {
	t.initOnce.Do(func() {
		if t.reg == nil {
			t.reg = obs.NewRegistry()
		}
		t.messages = t.reg.CounterVec("traffic.msgs")
		t.hops = t.reg.CounterVec("traffic.hops")
		t.bytes = t.reg.CounterVec("traffic.bytes")
		t.drops = t.reg.CounterVec("traffic.drops")
		t.dups = t.reg.CounterVec("traffic.dups")
		t.delays = t.reg.CounterVec("traffic.delays")
		t.retries = t.reg.CounterVec("traffic.retries")
		t.lost = t.reg.CounterVec("traffic.lost")
	})
}

// Registry returns the obs registry the ledger's families live in.
func (t *Traffic) Registry() *obs.Registry {
	t.init()
	return t.reg
}

// Record charges one message of the given kind that travelled the given
// number of overlay hops. A message delivered to the local node costs zero
// hops but is still counted as a message.
func (t *Traffic) Record(kind string, hops int) {
	t.init()
	t.messages.Add(kind, 1)
	t.hops.Add(kind, int64(hops))
}

// RecordDrop charges one delivery of the given kind lost in transit.
func (t *Traffic) RecordDrop(kind string) { t.init(); t.drops.Add(kind, 1) }

// RecordDuplicate charges one duplicated delivery of the given kind.
func (t *Traffic) RecordDuplicate(kind string) { t.init(); t.dups.Add(kind, 1) }

// RecordDelayed charges one delivery of the given kind held back in
// transit.
func (t *Traffic) RecordDelayed(kind string) { t.init(); t.delays.Add(kind, 1) }

// RecordRetry charges one sender-side re-send of the given kind.
func (t *Traffic) RecordRetry(kind string) { t.init(); t.retries.Add(kind, 1) }

// RecordLost charges one message of the given kind abandoned after the
// sender's retry budget was exhausted.
func (t *Traffic) RecordLost(kind string) { t.init(); t.lost.Add(kind, 1) }

// Drops returns the in-transit losses recorded for kind.
func (t *Traffic) Drops(kind string) int64 { t.init(); return t.drops.Value(kind) }

// Duplicates returns the duplicated deliveries recorded for kind.
func (t *Traffic) Duplicates(kind string) int64 { t.init(); return t.dups.Value(kind) }

// Delayed returns the held-back deliveries recorded for kind.
func (t *Traffic) Delayed(kind string) int64 { t.init(); return t.delays.Value(kind) }

// Retries returns the sender-side re-sends recorded for kind.
func (t *Traffic) Retries(kind string) int64 { t.init(); return t.retries.Value(kind) }

// Lost returns the messages of the given kind abandoned after retries.
func (t *Traffic) Lost(kind string) int64 { t.init(); return t.lost.Value(kind) }

// TotalLost returns the abandoned messages across all kinds.
func (t *Traffic) TotalLost() int64 { t.init(); return t.lost.Total() }

// TotalRetries returns the sender-side re-sends across all kinds.
func (t *Traffic) TotalRetries() int64 { t.init(); return t.retries.Total() }

// AddBytes charges n wire bytes to the kind. The convention is bytes
// transferred over the physical network: a message of size s travelling h
// overlay hops is retransmitted h times and charges s*h bytes.
func (t *Traffic) AddBytes(kind string, n int) {
	t.init()
	t.bytes.Add(kind, int64(n))
}

// Bytes returns the wire bytes recorded for kind.
func (t *Traffic) Bytes(kind string) int64 { t.init(); return t.bytes.Value(kind) }

// TotalBytes returns the wire bytes recorded across all kinds.
func (t *Traffic) TotalBytes() int64 { t.init(); return t.bytes.Total() }

// RecordHopsOnly charges extra hops to an existing kind without counting a
// new message, used when a single logical message is forwarded further
// (multisend relaying).
func (t *Traffic) RecordHopsOnly(kind string, hops int) {
	t.init()
	t.hops.Add(kind, int64(hops))
}

// Messages returns the number of messages recorded for kind.
func (t *Traffic) Messages(kind string) int64 { t.init(); return t.messages.Value(kind) }

// Hops returns the number of hops recorded for kind.
func (t *Traffic) Hops(kind string) int64 { t.init(); return t.hops.Value(kind) }

// TotalMessages returns the number of messages recorded across all kinds.
func (t *Traffic) TotalMessages() int64 { t.init(); return t.messages.Total() }

// TotalHops returns the number of overlay hops recorded across all kinds.
func (t *Traffic) TotalHops() int64 { t.init(); return t.hops.Total() }

// Reset clears all of the ledger's counters (and only the ledger's — other
// metrics on a shared registry are untouched). Experiments reset the
// ledger after the warm-up phase so figures report steady-state traffic
// only.
func (t *Traffic) Reset() {
	t.init()
	t.messages.Reset()
	t.hops.Reset()
	t.bytes.Reset()
	t.drops.Reset()
	t.dups.Reset()
	t.delays.Reset()
	t.retries.Reset()
	t.lost.Reset()
}

// Snapshot returns a copy of the per-kind counters, for reporting.
func (t *Traffic) Snapshot() (messages, hops map[string]int64) {
	t.init()
	messages = t.messages.Snapshot()
	if messages == nil {
		messages = map[string]int64{}
	}
	hops = t.hops.Snapshot()
	if hops == nil {
		hops = map[string]int64{}
	}
	return messages, hops
}

// String renders a stable, human-readable summary ordered by kind.
func (t *Traffic) String() string {
	t.init()
	messages, hops := t.Snapshot()
	bytes := t.bytes.Snapshot()
	kinds := make([]string, 0, len(messages))
	for k := range messages {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var b strings.Builder
	for _, k := range kinds {
		fmt.Fprintf(&b, "%-14s msgs=%-8d hops=%-8d bytes=%d\n", k, messages[k], hops[k], bytes[k])
	}
	fmt.Fprintf(&b, "%-14s msgs=%-8d hops=%-8d bytes=%d", "TOTAL",
		t.TotalMessages(), t.TotalHops(), t.TotalBytes())
	drops, dups := t.drops.Total(), t.dups.Total()
	delays, retries, lost := t.delays.Total(), t.retries.Total(), t.lost.Total()
	if drops+dups+delays+retries+lost > 0 {
		fmt.Fprintf(&b, "\n%-14s drops=%d dups=%d delays=%d retries=%d lost=%d",
			"FAULTS", drops, dups, delays, retries, lost)
	}
	return b.String()
}
