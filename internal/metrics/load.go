package metrics

import "sync"

// Load accumulates the two per-node load metrics the paper introduces as a
// technical contribution (Chapter 1): the filtering load TF — how many
// filtering operations (tuple-against-query or query-against-tuple match
// attempts triggered by received messages) a node performed — and the
// storage load TS — how many items (queries, rewritten queries, tuples,
// stored notifications) the node currently holds.
//
// Loads are tracked per role, so figures can split "rewriter" (attribute
// level) from "evaluator" (value level) load as Figure 5.11 requires.
//
// The zero Load is ready to use. All methods are safe for concurrent use.
type Load struct {
	mu        sync.Mutex
	filtering map[Role]int64
	storage   map[Role]int64
}

// Role identifies which of the two-level-indexing roles charged a load unit.
type Role int

const (
	// Rewriter load is incurred at the attribute level (ALQT processing).
	Rewriter Role = iota
	// Evaluator load is incurred at the value level (VLQT/VLTT processing).
	Evaluator
	numRoles
)

// String names the role for reports.
func (r Role) String() string {
	switch r {
	case Rewriter:
		return "rewriter"
	case Evaluator:
		return "evaluator"
	default:
		return "unknown"
	}
}

// AddFiltering charges n filtering operations to the given role.
func (l *Load) AddFiltering(r Role, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.filtering == nil {
		l.filtering = make(map[Role]int64, numRoles)
	}
	l.filtering[r] += int64(n)
}

// AddStorage charges n stored items to the given role. Negative n releases
// storage (e.g. when a tuple slides out of the time window).
func (l *Load) AddStorage(r Role, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.storage == nil {
		l.storage = make(map[Role]int64, numRoles)
	}
	l.storage[r] += int64(n)
}

// Filtering returns the filtering load charged to role r.
func (l *Load) Filtering(r Role) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.filtering[r]
}

// Storage returns the storage load charged to role r.
func (l *Load) Storage(r Role) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.storage[r]
}

// TotalFiltering returns the node's TF over all roles.
func (l *Load) TotalFiltering() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, v := range l.filtering {
		n += v
	}
	return n
}

// TotalStorage returns the node's TS over all roles.
func (l *Load) TotalStorage() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, v := range l.storage {
		n += v
	}
	return n
}

// Reset clears all counters.
func (l *Load) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.filtering = nil
	l.storage = nil
}
