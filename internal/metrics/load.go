package metrics

import "cqjoin/internal/obs"

// Load accumulates the two per-node load metrics the paper introduces as a
// technical contribution (Chapter 1): the filtering load TF — how many
// filtering operations (tuple-against-query or query-against-tuple match
// attempts triggered by received messages) a node performed — and the
// storage load TS — how many items (queries, rewritten queries, tuples,
// stored notifications) the node currently holds.
//
// Loads are tracked per role, so figures can split "rewriter" (attribute
// level) from "evaluator" (value level) load as Figure 5.11 requires.
//
// The role set is small and fixed, so Load holds one obs.Counter per
// (role, metric) pair inline: every update is a single atomic add with no
// lock and no allocation — this is the hottest counter in the simulator
// (one bump per filtering operation on every node).
//
// The zero Load is ready to use. All methods are safe for concurrent use.
// Load must not be copied after first use (it embeds atomics); it is
// always reached through its owning node state's pointer.
type Load struct {
	filtering [numRoles]obs.Counter
	storage   [numRoles]obs.Counter
}

// Role identifies which of the two-level-indexing roles charged a load unit.
type Role int

const (
	// Rewriter load is incurred at the attribute level (ALQT processing).
	Rewriter Role = iota
	// Evaluator load is incurred at the value level (VLQT/VLTT processing).
	Evaluator
	numRoles
)

// String names the role for reports.
func (r Role) String() string {
	switch r {
	case Rewriter:
		return "rewriter"
	case Evaluator:
		return "evaluator"
	default:
		return "unknown"
	}
}

// valid reports whether r is a known role; unknown roles are ignored
// rather than tripping an out-of-bounds panic on a metrics call.
func (r Role) valid() bool { return r >= 0 && r < numRoles }

// AddFiltering charges n filtering operations to the given role.
func (l *Load) AddFiltering(r Role, n int) {
	if !r.valid() {
		return
	}
	l.filtering[r].Add(int64(n))
}

// AddStorage charges n stored items to the given role. Negative n releases
// storage (e.g. when a tuple slides out of the time window).
func (l *Load) AddStorage(r Role, n int) {
	if !r.valid() {
		return
	}
	l.storage[r].Add(int64(n))
}

// Filtering returns the filtering load charged to role r.
func (l *Load) Filtering(r Role) int64 {
	if !r.valid() {
		return 0
	}
	return l.filtering[r].Value()
}

// Storage returns the storage load charged to role r.
func (l *Load) Storage(r Role) int64 {
	if !r.valid() {
		return 0
	}
	return l.storage[r].Value()
}

// TotalFiltering returns the node's TF over all roles.
func (l *Load) TotalFiltering() int64 {
	var n int64
	for i := range l.filtering {
		n += l.filtering[i].Value()
	}
	return n
}

// TotalStorage returns the node's TS over all roles.
func (l *Load) TotalStorage() int64 {
	var n int64
	for i := range l.storage {
		n += l.storage[i].Value()
	}
	return n
}

// Reset clears all counters.
func (l *Load) Reset() {
	for i := range l.filtering {
		l.filtering[i].Reset()
		l.storage[i].Reset()
	}
}
