package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Distribution summarizes how a load metric is spread over the nodes of the
// network. The paper's load-balance figures plot sorted per-node load
// curves and compare how concentrated the load is; Distribution captures the
// statistics those plots convey.
type Distribution struct {
	// N is the number of nodes sampled (including zero-load nodes).
	N int
	// NonZero is the number of nodes that carried any load — the paper's
	// "network utilization": the fraction of nodes participating in query
	// processing.
	NonZero int
	// Total is the sum of all loads.
	Total float64
	// Mean is Total / N.
	Mean float64
	// Max is the largest per-node load.
	Max float64
	// Gini is the Gini coefficient of the load vector in [0, 1];
	// 0 is perfectly even, 1 is a single node carrying everything.
	Gini float64
	// CoV is the coefficient of variation (stddev / mean), 0 when Mean == 0.
	CoV float64
	// P50, P90, P99 are load percentiles over all N nodes.
	P50, P90, P99 float64
	// Top1Share and Top10Share are the fractions of Total carried by the
	// most-loaded 1% and 10% of nodes ("the most loaded nodes" of
	// Figure 5.15). They are 0 when Total == 0.
	Top1Share, Top10Share float64
}

// Summarize computes a Distribution over the given per-node loads. The input
// slice is not modified.
func Summarize(loads []float64) Distribution {
	d := Distribution{N: len(loads)}
	if len(loads) == 0 {
		return d
	}
	sorted := make([]float64, len(loads))
	copy(sorted, loads)
	sort.Float64s(sorted)

	var sumSq float64
	for _, v := range sorted {
		d.Total += v
		sumSq += v * v
		if v > 0 {
			d.NonZero++
		}
		if v > d.Max {
			d.Max = v
		}
	}
	n := float64(len(sorted))
	d.Mean = d.Total / n
	if d.Mean > 0 {
		variance := sumSq/n - d.Mean*d.Mean
		if variance < 0 {
			variance = 0
		}
		d.CoV = math.Sqrt(variance) / d.Mean
	}
	d.P50 = percentile(sorted, 0.50)
	d.P90 = percentile(sorted, 0.90)
	d.P99 = percentile(sorted, 0.99)

	if d.Total > 0 {
		// Gini via the sorted-sum formula:
		// G = (2*sum_i(i*x_i) - (n+1)*sum(x)) / (n*sum(x)), i starting at 1.
		var weighted float64
		for i, v := range sorted {
			weighted += float64(i+1) * v
		}
		d.Gini = (2*weighted - (n+1)*d.Total) / (n * d.Total)

		d.Top1Share = topShare(sorted, 0.01)
		d.Top10Share = topShare(sorted, 0.10)
	}
	return d
}

// SummarizeInt is Summarize for integer load counters.
func SummarizeInt(loads []int64) Distribution {
	f := make([]float64, len(loads))
	for i, v := range loads {
		f[i] = float64(v)
	}
	return Summarize(f)
}

// percentile returns the p-quantile (0 <= p <= 1) of an ascending slice
// using nearest-rank interpolation.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// topShare returns the fraction of the total carried by the top `frac` of
// the ascending-sorted load slice (at least one node).
func topShare(sorted []float64, frac float64) float64 {
	k := int(math.Ceil(frac * float64(len(sorted))))
	if k < 1 {
		k = 1
	}
	var top, total float64
	for i, v := range sorted {
		total += v
		if i >= len(sorted)-k {
			top += v
		}
	}
	if total == 0 {
		return 0
	}
	return top / total
}

// SortedCurve returns the per-node loads sorted descending: the exact series
// the thesis load-distribution figures plot (node rank on x, load on y).
func SortedCurve(loads []float64) []float64 {
	out := make([]float64, len(loads))
	copy(out, loads)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// String renders the summary on one line for experiment tables.
func (d Distribution) String() string {
	return fmt.Sprintf("n=%d used=%d total=%.0f mean=%.2f max=%.0f gini=%.3f cov=%.2f top1%%=%.2f",
		d.N, d.NonZero, d.Total, d.Mean, d.Max, d.Gini, d.CoV, d.Top1Share)
}
