package sim

import "testing"

func TestDelayQueueReleasesInDueThenPushOrder(t *testing.T) {
	var q DelayQueue
	var got []int
	rec := func(i int) func() { return func() { got = append(got, i) } }
	q.PushAt(5, rec(1))
	q.PushAt(3, rec(2))
	q.PushAt(5, rec(3))
	q.PushAt(4, rec(4))

	if due, ok := q.NextDue(); !ok || due != 3 {
		t.Fatalf("NextDue = %d, %v; want 3, true", due, ok)
	}
	for _, fn := range q.PopDue(4) {
		fn()
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("after PopDue(4): %v, want [2 4]", got)
	}
	for _, fn := range q.PopDue(10) {
		fn()
	}
	if len(got) != 4 || got[2] != 1 || got[3] != 3 {
		t.Fatalf("ties must release in push order: %v", got)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d items left", q.Len())
	}
}

func TestDelayQueueReentrantPush(t *testing.T) {
	var q DelayQueue
	ran := 0
	q.PushAt(1, func() {
		ran++
		q.PushAt(2, func() { ran++ })
	})
	for _, fn := range q.PopDue(1) {
		fn()
	}
	for _, fn := range q.PopDue(2) {
		fn()
	}
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
}

func TestClockListenersFireOnTickAndAdvance(t *testing.T) {
	var c Clock
	var seen []int64
	c.AddListener(func(now int64) { seen = append(seen, now) })
	c.Tick()
	c.Advance(3)
	if len(seen) != 2 || seen[0] != 2 || seen[1] != 5 {
		t.Fatalf("listener saw %v, want [2 5]", seen)
	}
}

func TestSourceDeterminism(t *testing.T) {
	a, b := NewSource(42), NewSource(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() || a.Intn(10) != b.Intn(10) || a.Int63n(1000) != b.Int63n(1000) {
			t.Fatalf("draw %d diverged between equal seeds", i)
		}
	}
}
