package sim

import (
	"sync"
	"testing"
)

func TestClockStartsAtOne(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 1 {
		t.Fatalf("zero clock Now() = %d, want 1", got)
	}
}

func TestClockTickMonotone(t *testing.T) {
	var c Clock
	prev := c.Now()
	for i := 0; i < 100; i++ {
		next := c.Tick()
		if next <= prev {
			t.Fatalf("Tick not monotone: %d after %d", next, prev)
		}
		prev = next
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	start := c.Now()
	if got := c.Advance(10); got != start+10 {
		t.Fatalf("Advance(10) = %d, want %d", got, start+10)
	}
	if got := c.Advance(0); got != start+10 {
		t.Fatalf("Advance(0) moved the clock to %d", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestClockConcurrentTicks(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	const workers, ticks = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < ticks; j++ {
				c.Tick()
			}
		}()
	}
	wg.Wait()
	if got, want := c.Now(), int64(1+workers*ticks); got != want {
		t.Fatalf("after %d concurrent ticks Now() = %d, want %d", workers*ticks, got, want)
	}
}
