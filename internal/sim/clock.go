// Package sim supplies the simulation substrate shared by all experiments:
// a logical clock standing in for the NTP-synchronized clocks of Section 3.1,
// and deterministic random sources for reproducible workloads.
package sim

import (
	"sync"

	"cqjoin/internal/obs"
)

// Clock is the single logical clock of a simulated network. The paper
// assumes nodes synchronize real clocks within a few milliseconds via NTP;
// the algorithms only ever compare a tuple's publication time against a
// query's insertion time (pubT(t) >= insT(q)), so any shared monotone
// counter preserves the time semantics of Section 3.2.
//
// The zero Clock is ready to use and starts at time 1 so that time value 0
// can mean "unset".
type Clock struct {
	mu        sync.Mutex
	now       int64
	listeners []func(now int64)

	// Event-loop instrumentation (nil handles when observability is off):
	// ticks/advances count the two ways time moves, nowGauge mirrors the
	// current logical time, and fanout observes how many listeners each
	// advancement wakes — the simulator's event-loop latency proxy, since
	// every listener runs synchronously before the advancing call returns.
	obsTicks    *obs.Counter
	obsAdvances *obs.Counter
	nowGauge    *obs.Gauge
	fanout      *obs.Histogram
}

// Instrument hangs the clock's metrics ("sim.clock.*") on reg. A nil
// registry leaves the clock un-instrumented (the zero-cost default).
// Instrument before concurrent use.
func (c *Clock) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.obsTicks = reg.Counter("sim.clock.ticks")
	c.obsAdvances = reg.Counter("sim.clock.advances")
	c.nowGauge = reg.Gauge("sim.clock.now")
	c.fanout = reg.Histogram("sim.clock.listener_fanout", 0, 1, 2, 4, 8, 16)
}

// AddListener registers fn to run after every Tick or Advance, outside the
// clock's lock, with the new time. The chaos layer hangs its delay queue
// here so that held-back messages are released the moment logical time
// passes their due instant — whoever advances the clock (a publish, a
// retry backoff) transparently drives delivery.
func (c *Clock) AddListener(fn func(now int64)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.listeners = append(c.listeners, fn)
}

// notify invokes the registered listeners outside the lock. Listeners may
// advance the clock again; re-entrancy is their concern.
func (c *Clock) notify(now int64, fns []func(int64)) {
	for _, fn := range fns {
		fn(now)
	}
}

// Now returns the current logical time without advancing it.
func (c *Clock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.now == 0 {
		c.now = 1
	}
	return c.now
}

// Tick advances the clock by one unit and returns the new time. Experiments
// call Tick once per simulated event (query submission or tuple insertion)
// so every event has a distinct timestamp.
func (c *Clock) Tick() int64 {
	c.mu.Lock()
	if c.now == 0 {
		c.now = 1
	}
	c.now++
	now, fns := c.now, c.listeners
	ticks, gauge, fan := c.obsTicks, c.nowGauge, c.fanout
	c.mu.Unlock()
	ticks.Inc()
	gauge.Set(now)
	fan.Observe(int64(len(fns)))
	c.notify(now, fns)
	return now
}

// Advance moves the clock forward by d units (d >= 0) and returns the new
// time. Window-based experiments advance the clock by a full window between
// batches.
func (c *Clock) Advance(d int64) int64 {
	if d < 0 {
		panic("sim: Advance with negative duration")
	}
	c.mu.Lock()
	if c.now == 0 {
		c.now = 1
	}
	c.now += d
	now, fns := c.now, c.listeners
	advances, gauge, fan := c.obsAdvances, c.nowGauge, c.fanout
	c.mu.Unlock()
	advances.Inc()
	gauge.Set(now)
	fan.Observe(int64(len(fns)))
	c.notify(now, fns)
	return now
}
