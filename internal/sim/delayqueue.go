package sim

import (
	"container/heap"
	"sync"

	"cqjoin/internal/obs"
)

// DelayQueue holds deferred actions ordered by logical due time. A fault
// injector parks delayed message deliveries here; draining the queue as the
// clock advances turns "the network held this packet for d time units" into
// a deterministic, replayable event. Ties on the due time release in push
// order, so a run is reproducible from the sequence of pushes alone.
type DelayQueue struct {
	mu    sync.Mutex
	items delayHeap
	seq   int64

	// Queue-depth instrumentation (nil handles when observability is off).
	// The depth gauge's high-water mark is the interesting number: how far
	// behind logical time the in-flight message backlog ever got.
	depth    *obs.Gauge
	pushes   *obs.Counter
	released *obs.Counter
}

// Instrument hangs the queue's metrics ("sim.delayqueue.*") on reg. A nil
// registry leaves the queue un-instrumented. Instrument before concurrent
// use.
func (q *DelayQueue) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.depth = reg.Gauge("sim.delayqueue.depth")
	q.pushes = reg.Counter("sim.delayqueue.pushes")
	q.released = reg.Counter("sim.delayqueue.released")
}

type delayItem struct {
	due  int64
	prio int64
	seq  int64
	fn   func()
}

type delayHeap []delayItem

func (h delayHeap) Len() int { return len(h) }
func (h delayHeap) Less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h delayHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *delayHeap) Push(x interface{}) { *h = append(*h, x.(delayItem)) }
func (h *delayHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// PushAt schedules fn to be released once the logical clock reaches due.
func (q *DelayQueue) PushAt(due int64, fn func()) {
	q.PushAtPrio(due, 0, fn)
}

// PushAtPrio schedules fn with an explicit release priority: ties on the
// due time release in (prio, push-order) order. A content-derived priority
// makes the release order independent of push order, which is what keyed
// fault injection needs to stay deterministic under concurrent pushes.
func (q *DelayQueue) PushAtPrio(due, prio int64, fn func()) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.seq++
	heap.Push(&q.items, delayItem{due: due, prio: prio, seq: q.seq, fn: fn})
	q.pushes.Inc()
	q.depth.Set(int64(len(q.items)))
}

// PopDue removes and returns every action whose due time is <= now, in
// (due, prio, push-order) order. The caller runs them outside the queue's
// lock, so released actions may push further delayed actions.
func (q *DelayQueue) PopDue(now int64) []func() {
	return q.PopDueInto(now, nil)
}

// PopDueInto is PopDue reusing scratch's backing array for the result,
// letting a drain loop amortize the slice allocation across rounds.
func (q *DelayQueue) PopDueInto(now int64, scratch []func()) []func() {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := scratch[:0]
	for len(q.items) > 0 && q.items[0].due <= now {
		out = append(out, heap.Pop(&q.items).(delayItem).fn)
	}
	if len(out) > 0 {
		q.released.Add(int64(len(out)))
		q.depth.Set(int64(len(q.items)))
	}
	return out
}

// Len returns the number of parked actions.
func (q *DelayQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// NextDue returns the earliest due time of a parked action, and whether the
// queue is non-empty.
func (q *DelayQueue) NextDue() (int64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].due, true
}
