package sim

import (
	"math/rand"
	"sync"
)

// Source is a mutex-guarded deterministic random source. Every stochastic
// component of a simulation (workload generation, fault injection, strategy
// probes) draws from its own Source so that one int64 seed reproduces the
// whole run event for event, even when components interleave.
type Source struct {
	mu sync.Mutex
	r  *rand.Rand
}

// NewSource returns a Source seeded with the given value.
func NewSource(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a pseudo-random number in [0, 1).
func (s *Source) Float64() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Float64()
}

// Intn returns a pseudo-random int in [0, n).
func (s *Source) Intn(n int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Intn(n)
}

// Int63n returns a pseudo-random int64 in [0, n).
func (s *Source) Int63n(n int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Int63n(n)
}
