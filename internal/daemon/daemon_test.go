package daemon

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"
)

func startServer(t *testing.T, cfg Config) (*Server, net.Conn) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return srv, conn
}

type client struct {
	t      *testing.T
	conn   net.Conn
	r      *bufio.Reader
	events []map[string]interface{}
}

func newClient(t *testing.T, conn net.Conn) *client {
	return &client{t: t, conn: conn, r: bufio.NewReader(conn)}
}

// call sends one request and returns its response; asynchronous
// notification events arriving in between are queued for nextEvent.
func (c *client) call(req map[string]interface{}) map[string]interface{} {
	c.t.Helper()
	b, _ := json.Marshal(req)
	if _, err := c.conn.Write(append(b, '\n')); err != nil {
		c.t.Fatalf("write: %v", err)
	}
	for {
		msg := c.read()
		if _, isEvent := msg["event"]; isEvent {
			c.events = append(c.events, msg)
			continue
		}
		return msg
	}
}

// nextEvent returns the oldest queued notification event, reading more
// lines if none is queued yet.
func (c *client) nextEvent() map[string]interface{} {
	c.t.Helper()
	for len(c.events) == 0 {
		msg := c.read()
		if _, isEvent := msg["event"]; isEvent {
			c.events = append(c.events, msg)
		}
	}
	ev := c.events[0]
	c.events = c.events[1:]
	return ev
}

func (c *client) read() map[string]interface{} {
	c.t.Helper()
	_ = c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := c.r.ReadString('\n')
	if err != nil {
		c.t.Fatalf("read: %v", err)
	}
	var resp map[string]interface{}
	if err := json.Unmarshal([]byte(line), &resp); err != nil {
		c.t.Fatalf("bad response %q: %v", line, err)
	}
	return resp
}

func defaultConfig() Config {
	return Config{
		Nodes:     48,
		Algorithm: "sai",
		SchemaDSL: "Orders(Id,Customer,Product);Shipments(Id,Product,Depot)",
		Seed:      1,
	}
}

func TestDaemonEndToEnd(t *testing.T) {
	_, conn := startServer(t, defaultConfig())
	c := newClient(t, conn)

	if resp := c.call(map[string]interface{}{"op": "listen"}); resp["ok"] != true {
		t.Fatalf("listen: %v", resp)
	}
	resp := c.call(map[string]interface{}{
		"op": "subscribe", "node": 0,
		"sql": `SELECT O.Customer, S.Depot FROM Orders AS O, Shipments AS S WHERE O.Product = S.Product`,
	})
	if resp["ok"] != true {
		t.Fatalf("subscribe: %v", resp)
	}
	key, _ := resp["key"].(string)
	if key == "" {
		t.Fatalf("no query key in %v", resp)
	}

	if resp := c.call(map[string]interface{}{
		"op": "publish", "node": 1, "relation": "Orders",
		"values": []interface{}{1, "acme", "widget"},
	}); resp["ok"] != true {
		t.Fatalf("publish: %v", resp)
	}
	if resp := c.call(map[string]interface{}{
		"op": "publish", "node": 2, "relation": "Shipments",
		"values": []interface{}{9, "widget", "rotterdam"},
	}); resp["ok"] != true {
		t.Fatalf("publish: %v", resp)
	}

	// The matching pair pushed a notification event to the listener.
	event := c.nextEvent()
	if event["event"] != "notification" || event["query"] != key {
		t.Fatalf("event = %v", event)
	}
	vals, _ := event["values"].([]interface{})
	if len(vals) != 2 || vals[0] != "acme" || vals[1] != "rotterdam" {
		t.Fatalf("event values = %v", vals)
	}

	stats := c.call(map[string]interface{}{"op": "stats"})
	if stats["ok"] != true || stats["notifications"].(float64) != 1 {
		t.Fatalf("stats = %v", stats)
	}
	if stats["hops"].(float64) <= 0 || stats["bytes"].(float64) <= 0 {
		t.Fatalf("stats missing traffic: %v", stats)
	}
	// Evaluator-load summary: one match means some evaluator filtered.
	if stats["eval_load_max"].(float64) <= 0 {
		t.Fatalf("stats missing evaluator load: %v", stats)
	}
	if _, ok := stats["eval_load_gini"].(float64); !ok {
		t.Fatalf("stats missing evaluator Gini: %v", stats)
	}
	if stats["hot_keys"].(float64) != 0 {
		t.Fatalf("hot keys promoted with sharding disabled: %v", stats)
	}

	// Retraction through the protocol.
	if resp := c.call(map[string]interface{}{"op": "unsubscribe", "key": key}); resp["ok"] != true {
		t.Fatalf("unsubscribe: %v", resp)
	}
	c.call(map[string]interface{}{
		"op": "publish", "node": 3, "relation": "Orders",
		"values": []interface{}{2, "globex", "gears"},
	})
	c.call(map[string]interface{}{
		"op": "publish", "node": 4, "relation": "Shipments",
		"values": []interface{}{10, "gears", "hamburg"},
	})
	stats = c.call(map[string]interface{}{"op": "stats"})
	if stats["notifications"].(float64) != 1 {
		t.Fatalf("retracted query still notified: %v", stats)
	}
}

func TestDaemonErrors(t *testing.T) {
	_, conn := startServer(t, defaultConfig())
	c := newClient(t, conn)

	if resp := c.call(map[string]interface{}{"op": "nope"}); resp["ok"] != false {
		t.Fatalf("unknown op accepted: %v", resp)
	}
	if resp := c.call(map[string]interface{}{"op": "subscribe", "sql": "not sql"}); resp["ok"] != false {
		t.Fatalf("bad sql accepted: %v", resp)
	}
	if resp := c.call(map[string]interface{}{"op": "publish", "relation": "Nope", "values": []interface{}{1}}); resp["ok"] != false {
		t.Fatalf("bad relation accepted: %v", resp)
	}
	if resp := c.call(map[string]interface{}{"op": "unsubscribe", "key": "missing"}); resp["ok"] != false {
		t.Fatalf("unknown key accepted: %v", resp)
	}
	// Garbage line.
	if _, err := c.conn.Write([]byte("{{{\n")); err != nil {
		t.Fatal(err)
	}
	if resp := c.read(); resp["ok"] != false || !strings.Contains(resp["error"].(string), "bad json") {
		t.Fatalf("garbage accepted: %v", resp)
	}
}

func TestDaemonMultiWay(t *testing.T) {
	cfg := defaultConfig()
	cfg.SchemaDSL = "A(x,y);B(x,y);C(x,y)"
	_, conn := startServer(t, cfg)
	c := newClient(t, conn)

	resp := c.call(map[string]interface{}{
		"op": "subscribe-multi", "node": 0,
		"sql": `SELECT A.y, C.y FROM A, B, C WHERE A.x = B.y AND B.x = C.y`,
	})
	if resp["ok"] != true {
		t.Fatalf("subscribe-multi: %v", resp)
	}
	c.call(map[string]interface{}{"op": "publish", "node": 1, "relation": "A", "values": []interface{}{1, 10}})
	c.call(map[string]interface{}{"op": "publish", "node": 2, "relation": "B", "values": []interface{}{2, 1}})
	c.call(map[string]interface{}{"op": "publish", "node": 3, "relation": "C", "values": []interface{}{0, 2}})
	stats := c.call(map[string]interface{}{"op": "stats"})
	if stats["notifications"].(float64) != 1 {
		t.Fatalf("multi-way chain did not complete: %v", stats)
	}
}

func TestParseSchemaDSL(t *testing.T) {
	cat, err := ParseSchemaDSL(" R(A, B) ; S(D,E) ")
	if err != nil {
		t.Fatalf("ParseSchemaDSL: %v", err)
	}
	if cat.Lookup("R") == nil || cat.Lookup("S") == nil {
		t.Fatal("schemas missing")
	}
	if cat.Lookup("R").Arity() != 2 {
		t.Fatal("attrs wrong")
	}
	for _, bad := range []string{"", "R", "R()", "(A)", "R(A"} {
		if _, err := ParseSchemaDSL(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestParseAlgorithm(t *testing.T) {
	for name, want := range map[string]string{
		"sai": "SAI", "DAIQ": "DAI-Q", "dai-t": "DAI-T", "DaiV": "DAI-V", "": "SAI",
	} {
		alg, err := parseAlgorithm(name)
		if err != nil {
			t.Fatalf("parseAlgorithm(%q): %v", name, err)
		}
		if alg.String() != want {
			t.Fatalf("parseAlgorithm(%q) = %s, want %s", name, alg, want)
		}
	}
	if _, err := parseAlgorithm("bogus"); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, conn := startServer(t, defaultConfig())
	c1 := newClient(t, conn)
	c1.call(map[string]interface{}{"op": "subscribe", "node": 0,
		"sql": `SELECT O.Customer, S.Depot FROM Orders AS O, Shipments AS S WHERE O.Product = S.Product`})

	// A second client publishes concurrently with the first polling stats.
	conn2, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	c2 := newClient(t, conn2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			c2.call(map[string]interface{}{"op": "publish", "node": 1, "relation": "Orders",
				"values": []interface{}{i, "acme", "widget"}})
		}
	}()
	for i := 0; i < 10; i++ {
		if resp := c1.call(map[string]interface{}{"op": "stats"}); resp["ok"] != true {
			t.Fatalf("stats under load: %v", resp)
		}
	}
	<-done
}

// TestCloseDrainsClientConns pins Close's teardown of accepted client
// connections: Close closes every live conn (unblocking handlers parked
// in readLine), waits for their goroutines, and returns promptly; the
// client side observes its connection closing. Without the conns/connWG
// tracking, Close returned with every handler goroutine still blocked.
func TestCloseDrainsClientConns(t *testing.T) {
	srv, conn := startServer(t, defaultConfig())
	c := newClient(t, conn)
	if resp := c.call(map[string]interface{}{"op": "stats"}); resp["ok"] != true {
		t.Fatalf("stats: %v", resp)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return; client handlers not drained")
	}

	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.r.ReadByte(); err == nil {
		t.Fatal("client connection still open after Close")
	}
}
