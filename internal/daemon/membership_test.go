package daemon

import (
	"fmt"
	"reflect"
	"testing"

	"cqjoin/internal/wire"
)

// TestViewTotalOrder pins the arbitration order on views: version
// dominates, equal versions are broken by the originator's ring position,
// and the order is a strict total order (irreflexive, antisymmetric) over
// distinct (version, origin) stamps — the property that makes every
// process pick the same winner between concurrent same-version views.
func TestViewTotalOrder(t *testing.T) {
	if !viewAfter(3, "a", 2, "z") {
		t.Fatal("higher version must win regardless of origin")
	}
	if viewAfter(2, "z", 3, "a") {
		t.Fatal("lower version must lose regardless of origin")
	}
	if viewAfter(2, "a", 2, "a") {
		t.Fatal("a view must not succeed itself")
	}
	origins := []string{"", "10.0.0.1:7570", "10.0.0.2:7570", "10.0.0.3:7570", "z"}
	for _, a := range origins {
		for _, b := range origins {
			x, y := viewAfter(2, a, 2, b), viewAfter(2, b, 2, a)
			if a == b {
				if x || y {
					t.Fatalf("equal stamps ordered: %q", a)
				}
				continue
			}
			if x == y {
				t.Fatalf("origins %q vs %q: not antisymmetric (both %v)", a, b, x)
			}
		}
	}
}

// gossipSim drives membership instances through an explicit message queue
// so a test can exercise exact interleavings of concurrent view gossip.
// Reissues returned by apply are broadcast like the daemon does.
type gossipSim struct {
	procs map[string]*membership
	queue []gossipMsg
}

type gossipMsg struct {
	to string
	v  *wire.MemberView
}

// broadcast enqueues v for every process it lists except from.
func (g *gossipSim) broadcast(from string, v *wire.MemberView) {
	for _, p := range v.Procs {
		if p == from {
			continue
		}
		if _, ok := g.procs[p]; ok {
			g.queue = append(g.queue, gossipMsg{to: p, v: v})
		}
	}
}

// drain delivers queued views (lowest index first) until quiescent,
// broadcasting any reissue an apply produces. Returns the number of
// deliveries, bounded to catch livelock.
func (g *gossipSim) drain(t *testing.T) int {
	t.Helper()
	n := 0
	for len(g.queue) > 0 {
		if n++; n > 10_000 {
			t.Fatal("gossip did not quiesce: reissue livelock")
		}
		msg := g.queue[0]
		g.queue = g.queue[1:]
		m := g.procs[msg.to]
		if _, _, reissue := m.apply(msg.v); reissue != nil {
			g.broadcast(msg.to, reissue)
		}
	}
	return n
}

// TestConcurrentOriginatorsConverge is the regression test for the
// "strictly newer version wins" arbitration: two joiners admitted through
// different seed processes in the same instant produced two version-2
// views, and whichever a process saw first stuck — a permanent split. The
// total order picks one winner everywhere, and the losing seed
// re-originates its admission on top of the winner, so both joiners are
// admitted and every process records a single linear version history.
func TestConcurrentOriginatorsConverge(t *testing.T) {
	const (
		addrA = "10.0.0.1:7570"
		addrB = "10.0.0.2:7570"
		addrX = "10.0.0.3:7570"
		addrY = "10.0.0.4:7570"
	)
	boot := []string{addrA, addrB}
	// Both interleavings of the two admission gossips must converge to the
	// same final view regardless of which same-version origin hashes higher.
	for _, xFirst := range []bool{true, false} {
		t.Run(fmt.Sprintf("xFirst=%v", xFirst), func(t *testing.T) {
			A := newMembership(addrA, boot, 1)
			B := newMembership(addrB, boot, 1)
			X := newMembership(addrX, boot, 0)
			Y := newMembership(addrY, boot, 0)
			sim := &gossipSim{procs: map[string]*membership{addrA: A, addrB: B, addrX: X, addrY: Y}}

			// The same instant: A admits X and B admits Y, both on version 1.
			vX, changed := A.add(addrX)
			if !changed || vX.Version != 2 || vX.Origin != addrA {
				t.Fatalf("admission of X: %+v", vX)
			}
			vY, changed := B.add(addrY)
			if !changed || vY.Version != 2 || vY.Origin != addrB {
				t.Fatalf("admission of Y: %+v", vY)
			}
			// Each joiner adopts its admission view, then gossips it to the
			// members it lists — the JoinOverlay flow.
			X.apply(vX)
			Y.apply(vY)
			if xFirst {
				sim.broadcast(addrX, vX)
				sim.broadcast(addrY, vY)
			} else {
				sim.broadcast(addrY, vY)
				sim.broadcast(addrX, vX)
			}
			sim.drain(t)

			// Both joiners admitted, every process holding the identical view.
			want := A.view()
			if len(want.Procs) != 4 {
				t.Fatalf("final view lost a member: %+v", want)
			}
			if want.Version != 3 {
				t.Fatalf("final version = %d, want 3 (winning v2 + one reissue)", want.Version)
			}
			for name, m := range sim.procs {
				got := m.view()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s diverged: %+v vs %+v", name, got, want)
				}
			}

			// Single linear history: every process's adopted stamps strictly
			// increase under the total order, and all end on the same stamp.
			final := viewStamp{version: want.Version, origin: want.Origin}
			for name, m := range sim.procs {
				stamps := m.stamps()
				for i := 1; i < len(stamps); i++ {
					prev, cur := stamps[i-1], stamps[i]
					if !viewAfter(cur.version, cur.origin, prev.version, prev.origin) {
						t.Fatalf("%s history not linear: %+v then %+v", name, prev, cur)
					}
				}
				if last := stamps[len(stamps)-1]; last != final {
					t.Fatalf("%s ended on %+v, want %+v", name, last, final)
				}
			}
		})
	}
}

// TestReissueSurvivesRepeatedConflict: the losing originator's reissue can
// itself collide with yet another same-version view; the pending delta must
// keep re-originating until it lands in the winning lineage.
func TestReissueSurvivesRepeatedConflict(t *testing.T) {
	const (
		addrA = "10.0.0.1:7570"
		addrB = "10.0.0.2:7570"
		addrX = "10.0.0.3:7570"
	)
	boot := []string{addrA, addrB}
	A := newMembership(addrA, boot, 1)
	B := newMembership(addrB, boot, 1)

	// A admits X but its v2 never reaches B; meanwhile B sees a competing
	// v2 from elsewhere that wins the arbitration, then a v3 on top of it.
	vX, _ := A.add(addrX)
	winner2 := &wire.MemberView{Version: 2, Origin: addrB, Procs: boot}
	if viewAfter(winner2.Version, winner2.Origin, vX.Version, vX.Origin) {
		// Make sure the competing origin actually wins over A's view so the
		// reissue path is exercised; otherwise swap roles.
		_, _, reissue := A.apply(winner2)
		if reissue == nil {
			t.Fatal("losing originator did not reissue its pending admission")
		}
		if reissue.Version != 3 || reissue.Origin != addrA {
			t.Fatalf("reissue stamp: %+v", reissue)
		}
		found := false
		for _, p := range reissue.Procs {
			found = found || p == addrX
		}
		if !found {
			t.Fatalf("reissue dropped the pending joiner: %+v", reissue)
		}
	} else {
		// A's stamp wins; B adopting it is the uninteresting direction, but
		// the pending delta on B's side must still reissue.
		vB, _ := B.add(addrX) // same-version change B originated
		_ = vB
		_, _, reissue := B.apply(vX)
		if reissue == nil {
			t.Fatal("losing originator did not reissue its pending admission")
		}
		if reissue.Version != vX.Version+1 {
			t.Fatalf("reissue version = %d, want %d", reissue.Version, vX.Version+1)
		}
	}
}

// TestPendingDroppedWhenOriginSpeaksForItself pins the leave-hazard rule:
// a view originated by the very address a pending delta concerns clears
// the delta — a process speaks for its own membership, and resurrecting
// it against its will would fork the lineage it started.
func TestPendingDroppedWhenOriginSpeaksForItself(t *testing.T) {
	const (
		addrA = "10.0.0.1:7570"
		addrB = "10.0.0.2:7570"
		addrX = "10.0.0.3:7570"
	)
	A := newMembership(addrA, []string{addrA, addrB}, 1)
	vX, _ := A.add(addrX) // pending: add X
	// X itself originates its departure on top of a higher version.
	leave := &wire.MemberView{Version: vX.Version + 1, Origin: addrX, Procs: []string{addrA, addrB}}
	changed, _, reissue := A.apply(leave)
	if !changed {
		t.Fatal("departure view not adopted")
	}
	if reissue != nil {
		t.Fatalf("pending admission resurrected a departed originator: %+v", reissue)
	}
	A.mu.Lock()
	pending := A.pending
	A.mu.Unlock()
	if pending != nil {
		t.Fatal("pending delta not cleared by the originator's own view")
	}
}

// TestViewHistoryBounded: the adopted-stamp history retains only a
// recent suffix, so unbounded membership churn on a long-lived daemon
// cannot grow it without bound, and the retained suffix still ends on
// the installed view.
func TestViewHistoryBounded(t *testing.T) {
	const (
		addrA = "10.0.0.1:7570"
		addrB = "10.0.0.2:7570"
	)
	m := newMembership(addrA, []string{addrA}, 1)
	for i := 0; i < 10*maxViewHistory; i++ {
		if i%2 == 0 {
			m.add(addrB)
		} else {
			m.remove(addrB)
		}
	}
	stamps := m.stamps()
	if len(stamps) != maxViewHistory {
		t.Errorf("history holds %d stamps after churn, want cap %d", len(stamps), maxViewHistory)
	}
	last := stamps[len(stamps)-1]
	if last.version != m.currentVersion() {
		t.Errorf("history ends on version %d, installed view is %d", last.version, m.currentVersion())
	}
	for i := 1; i < len(stamps); i++ {
		if !viewAfter(stamps[i].version, stamps[i].origin, stamps[i-1].version, stamps[i-1].origin) {
			t.Fatalf("retained history not linear: %+v then %+v", stamps[i-1], stamps[i])
		}
	}
}
