package daemon

import (
	"net"
	"reflect"
	"sync"
	"testing"
)

// joinerConfig copies a running overlay's configuration for a fresh
// joining process, the way `cqjoind -join` does.
func joinerConfig(t *testing.T, seedProc *overlayProc, ln net.Listener) Config {
	t.Helper()
	oc := seedProc.c.call(map[string]interface{}{"op": "overlay-config"})
	if oc["ok"] != true {
		t.Fatalf("overlay-config: %v", oc)
	}
	var peers []string
	for _, p := range oc["peers"].([]interface{}) {
		peers = append(peers, p.(string))
	}
	return Config{
		Nodes:        int(oc["nodes"].(float64)),
		Algorithm:    oc["algorithm"].(string),
		SchemaDSL:    oc["schema"].(string),
		UseJFRT:      oc["jfrt"].(bool),
		Seed:         int64(oc["seed"].(float64)),
		OverlayAddr:  ln.Addr().String(),
		Peers:        peers,
		JoinExisting: true,
	}
}

// TestDaemonConcurrentJoiners is the end-to-end regression test for the
// membership arbitration fix: two processes join a running overlay in the
// same instant through different seed members, producing two views with
// the same version. Under "strictly newer version wins" whichever view a
// process saw first stuck and the overlay split permanently. The total
// order on (version, originator hash) plus the losing seed's reissue must
// admit both joiners, converge every process to the identical view, and
// leave a single linear version history on each process.
func TestDaemonConcurrentJoiners(t *testing.T) {
	procs := startOverlayProcs(t, defaultConfig(), 2)
	a, b := procs[0], procs[1]

	lnC, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen overlay C: %v", err)
	}
	lnD, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen overlay D: %v", err)
	}
	c := startOverlayProc(t, joinerConfig(t, a, lnC), lnC)
	d := startOverlayProc(t, joinerConfig(t, b, lnD), lnD)

	// Join in the same instant through *different* seed processes.
	var wg sync.WaitGroup
	var errC, errD error
	wg.Add(2)
	go func() { defer wg.Done(); errC = c.srv.JoinOverlay(a.addr) }()
	go func() { defer wg.Done(); errD = d.srv.JoinOverlay(b.addr) }()
	wg.Wait()
	if errC != nil || errD != nil {
		t.Fatalf("concurrent joins failed: C=%v D=%v", errC, errD)
	}
	procs = append(procs, c, d)

	// Every process converged on one identical view admitting both joiners.
	// All gossip (including reissues) is synchronous inside JoinOverlay and
	// the inbound view handlers it awaits, so by now the overlay is quiet.
	want := a.srv.members.view()
	if len(want.Procs) != 4 {
		t.Fatalf("final view is missing a joiner: %+v", want)
	}
	if want.Version != 3 {
		t.Fatalf("final version = %d, want 3 (boot v1 + winning admission + one follow-up)", want.Version)
	}
	for _, p := range procs {
		if got := p.srv.members.view(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s diverged: %+v, want %+v", p.addr, got, want)
		}
	}

	// Single linear version history on every process: each adopted stamp
	// strictly succeeds the previous one under the total order, and all
	// processes end on the same stamp.
	for _, p := range procs {
		stamps := p.srv.members.stamps()
		for i := 1; i < len(stamps); i++ {
			prev, cur := stamps[i-1], stamps[i]
			if !viewAfter(cur.version, cur.origin, prev.version, prev.origin) {
				t.Fatalf("%s history not linear: %+v then %+v", p.addr, prev, cur)
			}
		}
		if last := stamps[len(stamps)-1]; last.version != want.Version || last.origin != want.Origin {
			t.Fatalf("%s ended on %+v, want (%d, %s)", p.addr, last, want.Version, want.Origin)
		}
	}

	// The converged overlay still evaluates queries end to end.
	var subProc *overlayProc
	for _, p := range procs {
		for i := 0; i < p.srv.Cluster().Size(); i++ {
			if p.ownsNode(i) {
				subProc = p
				if resp := p.c.call(map[string]interface{}{
					"op": "subscribe", "node": i,
					"sql": `SELECT O.Customer, S.Depot FROM Orders AS O, Shipments AS S WHERE O.Product = S.Product`,
				}); resp["ok"] != true {
					t.Fatalf("subscribe: %v", resp)
				}
				break
			}
		}
		if subProc != nil {
			break
		}
	}
	publishPair(t, procs, "post-race")
	total := 0
	for _, p := range procs {
		total += len(p.srv.Cluster().Notifications())
	}
	if total != 1 {
		t.Fatalf("published 1 matching pair, delivered %d notifications", total)
	}
}
