package daemon

import (
	"fmt"
	"net"
	"testing"

	"cqjoin"
)

// ackedEvent is one notification a client actually received — the unit the
// zero-loss guarantees below are stated over.
type ackedEvent struct {
	query  string
	values string
}

func eventOf(m map[string]interface{}) ackedEvent {
	return ackedEvent{query: fmt.Sprint(m["query"]), values: fmt.Sprint(m["values"])}
}

// notificationSet renders a recovered cluster's delivered notifications in
// the same shape the protocol events use.
func notificationSet(s *Server) map[ackedEvent]bool {
	set := make(map[ackedEvent]bool)
	for _, n := range s.Cluster().Notifications() {
		vals := make([]interface{}, len(n.Values))
		for i, v := range n.Values {
			if v.Kind() == cqjoin.NumberKind {
				vals[i] = v.Num()
			} else {
				vals[i] = v.Str()
			}
		}
		set[ackedEvent{query: n.QueryKey, values: fmt.Sprint(vals)}] = true
	}
	return set
}

// subscribePublish drives one subscription and pairs matching pairs
// through the protocol client, returning the query key.
func subscribeDaemon(t *testing.T, c *client, node int) string {
	t.Helper()
	resp := c.call(map[string]interface{}{
		"op": "subscribe", "node": node,
		"sql": `SELECT O.Customer, S.Depot FROM Orders AS O, Shipments AS S WHERE O.Product = S.Product`,
	})
	if resp["ok"] != true {
		t.Fatalf("subscribe: %v", resp)
	}
	return resp["key"].(string)
}

func publishMatch(t *testing.T, c *client, node int, tag string) {
	t.Helper()
	if resp := c.call(map[string]interface{}{
		"op": "publish", "node": node, "relation": "Orders",
		"values": []interface{}{1, "cust-" + tag, "prod-" + tag},
	}); resp["ok"] != true {
		t.Fatalf("publish Orders %s: %v", tag, resp)
	}
	if resp := c.call(map[string]interface{}{
		"op": "publish", "node": node, "relation": "Shipments",
		"values": []interface{}{2, "prod-" + tag, "depot-" + tag},
	}); resp["ok"] != true {
		t.Fatalf("publish Shipments %s: %v", tag, resp)
	}
}

// TestDaemonStateDirCrashRecovery kills a single-process daemon the way
// kill -9 does — the WAL descriptor dropped with no checkpoint — and
// restarts it from the state directory: every acknowledged operation must
// be back (delivered notifications, live subscriptions), and the restored
// subscription must keep matching new tuples.
func TestDaemonStateDirCrashRecovery(t *testing.T) {
	cfg := defaultConfig()
	cfg.StateDir = t.TempDir()
	cfg.SnapshotEvery = 8 // cross at least one checkpoint mid-workload

	srv, conn := startServer(t, cfg)
	c := newClient(t, conn)
	if resp := c.call(map[string]interface{}{"op": "listen"}); resp["ok"] != true {
		t.Fatalf("listen: %v", resp)
	}
	key := subscribeDaemon(t, c, 0)
	acked := make(map[ackedEvent]bool)
	for i := 0; i < 12; i++ {
		publishMatch(t, c, 1+i%4, fmt.Sprintf("crash-%d", i))
		ev := c.nextEvent()
		if ev["query"] != key {
			t.Fatalf("event for %v, want %v", ev["query"], key)
		}
		acked[eventOf(ev)] = true
	}

	// kill -9: no checkpoint, no close, just the descriptor gone.
	srv.store.Abandon()
	_ = srv.Close()

	restarted, err := New(cfg)
	if err != nil {
		t.Fatalf("restart from state dir: %v", err)
	}
	info := restarted.Recovery()
	if info.SnapshotLSN == 0 && info.Replayed == 0 {
		t.Fatalf("nothing recovered: %+v", info)
	}
	got := notificationSet(restarted)
	for ev := range acked {
		if !got[ev] {
			t.Fatalf("acknowledged notification lost across crash: %+v (recovered %d)", ev, len(got))
		}
	}

	// The restored subscription still matches fresh tuples end to end.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = restarted.Serve(ln) }()
	t.Cleanup(func() { _ = restarted.Close() })
	conn2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { _ = conn2.Close() })
	c2 := newClient(t, conn2)
	if resp := c2.call(map[string]interface{}{"op": "listen"}); resp["ok"] != true {
		t.Fatalf("listen after restart: %v", resp)
	}
	publishMatch(t, c2, 2, "post-restart")
	ev := c2.nextEvent()
	if ev["query"] != key {
		t.Fatalf("restored subscription did not fire: %v", ev)
	}

	// The restored store keeps logging: a second unclean crash and restart
	// must still have everything, including the post-restart match.
	acked[eventOf(ev)] = true
	restarted.store.Abandon()
	_ = restarted.Close()
	again, err := New(cfg)
	if err != nil {
		t.Fatalf("second restart: %v", err)
	}
	t.Cleanup(func() { _ = again.Close() })
	got = notificationSet(again)
	for ev := range acked {
		if !got[ev] {
			t.Fatalf("notification lost across second crash: %+v", ev)
		}
	}
}

// TestDaemonShutdownZeroLoss pins the SIGINT/SIGTERM contract: Shutdown —
// the path cmd/cqjoind's signal handler runs — checkpoints and closes the
// store, so a signaled daemon loses zero acknowledged notifications and
// the next start replays nothing (the snapshot covers the whole log).
func TestDaemonShutdownZeroLoss(t *testing.T) {
	cfg := defaultConfig()
	cfg.StateDir = t.TempDir()

	srv, conn := startServer(t, cfg)
	c := newClient(t, conn)
	if resp := c.call(map[string]interface{}{"op": "listen"}); resp["ok"] != true {
		t.Fatalf("listen: %v", resp)
	}
	key := subscribeDaemon(t, c, 0)
	acked := make(map[ackedEvent]bool)
	for i := 0; i < 6; i++ {
		publishMatch(t, c, 1+i, fmt.Sprintf("sig-%d", i))
		ev := c.nextEvent()
		acked[eventOf(ev)] = true
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	restarted, err := New(cfg)
	if err != nil {
		t.Fatalf("restart after shutdown: %v", err)
	}
	t.Cleanup(func() { _ = restarted.Close() })
	info := restarted.Recovery()
	if info.Replayed != 0 {
		t.Fatalf("clean shutdown left %d unsnapshotted wal records", info.Replayed)
	}
	if info.SnapshotLSN == 0 {
		t.Fatalf("no snapshot after shutdown: %+v", info)
	}
	got := notificationSet(restarted)
	for ev := range acked {
		if !got[ev] {
			t.Fatalf("acknowledged notification lost across shutdown: %+v", ev)
		}
	}
	if len(got) != len(acked) {
		t.Fatalf("recovered %d notifications, acked %d", len(got), len(acked))
	}
	// The subscription itself survived: every recovered notification names
	// the key the pre-shutdown subscribe returned.
	for ev := range got {
		if ev.query != key {
			t.Fatalf("recovered notification for unknown query %q, want %q", ev.query, key)
		}
	}
}

// TestDaemonMultiProcessCrashRestart kills one process of a two-process
// overlay mid-workload and restarts it from its state directory under the
// same overlay address: the restarted process replays its log, re-owns the
// same arcs under the unchanged membership view, holds every notification
// it had acknowledged, and keeps evaluating — while its peer absorbs the
// replay-driven duplicate deliveries idempotently.
func TestDaemonMultiProcessCrashRestart(t *testing.T) {
	base := defaultConfig()
	lns := make([]net.Listener, 2)
	peers := make([]string, 2)
	dirs := []string{t.TempDir(), t.TempDir()}
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen overlay %d: %v", i, err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	procs := make([]*overlayProc, 2)
	for i, ln := range lns {
		cfg := base
		cfg.OverlayAddr = peers[i]
		cfg.Peers = peers
		cfg.StateDir = dirs[i]
		cfg.SnapshotEvery = 8
		procs[i] = startOverlayProc(t, cfg, ln)
	}
	a, b := procs[0], procs[1]

	// Subscribe on a node owned by B, publish through both processes.
	subNode := b.nodeOwnedBy(t)
	key := subscribeDaemon(t, b.c, subNode)
	for i := 0; i < 6; i++ {
		publishPair(t, procs, fmt.Sprintf("mp-%d", i))
	}
	before := notificationSet(b.srv)
	if len(before) == 0 {
		t.Fatal("no notifications delivered before the crash")
	}

	// kill -9 process B.
	b.srv.store.Abandon()
	_ = b.srv.Close()

	// Restart it from its state directory under the same overlay address.
	lnB, err := net.Listen("tcp", b.addr)
	if err != nil {
		t.Fatalf("rebind overlay addr %s: %v", b.addr, err)
	}
	cfgB := base
	cfgB.OverlayAddr = b.addr
	cfgB.Peers = peers
	cfgB.StateDir = dirs[1]
	cfgB.SnapshotEvery = 8
	b2 := startOverlayProc(t, cfgB, lnB)
	info := b2.srv.Recovery()
	if info.SnapshotLSN == 0 && info.Replayed == 0 {
		t.Fatalf("nothing recovered on restart: %+v", info)
	}
	after := notificationSet(b2.srv)
	for ev := range before {
		if !after[ev] {
			t.Fatalf("notification lost across process crash: %+v", ev)
		}
	}

	// The peer must not have double-delivered under the replay's re-sends.
	if d := a.srv.Cluster().Traffic().Duplicates("notification"); d != 0 {
		t.Fatalf("peer delivered %d duplicate notifications", d)
	}

	// The overlay keeps evaluating across the restart: a fresh matching
	// pair published through the survivor notifies the restored subscriber.
	live := []*overlayProc{a, b2}
	publishPair(t, live, "mp-post")
	count := 0
	for _, n := range b2.srv.Cluster().Notifications() {
		if n.QueryKey == key {
			count++
		}
	}
	if count != len(before)+1 {
		t.Fatalf("restored subscriber has %d notifications, want %d", count, len(before)+1)
	}
}
