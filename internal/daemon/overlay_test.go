package daemon

import (
	"net"
	"strings"
	"testing"
)

// TestDaemonMultiUnsubscribe is the regression test for the protocol bug
// where "subscribe-multi" never recorded the query, so "unsubscribe"
// always answered "unknown query" and the chain kept firing forever.
func TestDaemonMultiUnsubscribe(t *testing.T) {
	cfg := defaultConfig()
	cfg.SchemaDSL = "A(x,y);B(x,y);C(x,y)"
	_, conn := startServer(t, cfg)
	c := newClient(t, conn)

	resp := c.call(map[string]interface{}{
		"op": "subscribe-multi", "node": 0,
		"sql": `SELECT A.y, C.y FROM A, B, C WHERE A.x = B.y AND B.x = C.y`,
	})
	if resp["ok"] != true {
		t.Fatalf("subscribe-multi: %v", resp)
	}
	key, _ := resp["key"].(string)
	if key == "" {
		t.Fatalf("no query key in %v", resp)
	}
	// Drive the pipeline one stage deep before retracting.
	c.call(map[string]interface{}{"op": "publish", "node": 1, "relation": "A", "values": []interface{}{1, 10}})
	c.call(map[string]interface{}{"op": "publish", "node": 2, "relation": "B", "values": []interface{}{2, 1}})
	if resp := c.call(map[string]interface{}{"op": "unsubscribe", "key": key}); resp["ok"] != true {
		t.Fatalf("unsubscribe of a multi-way query: %v", resp)
	}
	// Neither the completing tuple nor a whole fresh chain may notify.
	c.call(map[string]interface{}{"op": "publish", "node": 3, "relation": "C", "values": []interface{}{0, 2}})
	c.call(map[string]interface{}{"op": "publish", "node": 4, "relation": "A", "values": []interface{}{1, 11}})
	c.call(map[string]interface{}{"op": "publish", "node": 5, "relation": "B", "values": []interface{}{2, 1}})
	c.call(map[string]interface{}{"op": "publish", "node": 6, "relation": "C", "values": []interface{}{0, 2}})
	stats := c.call(map[string]interface{}{"op": "stats"})
	if stats["notifications"].(float64) != 0 {
		t.Fatalf("retracted multi-way query still notified: %v", stats)
	}
	if resp := c.call(map[string]interface{}{"op": "unsubscribe", "key": key}); resp["ok"] != false {
		t.Fatalf("double unsubscribe accepted: %v", resp)
	}
}

// TestDaemonNodeOutOfRange is the regression test for req.Node reaching
// the cluster unvalidated: out-of-range ids used to wrap modulo the
// overlay size and silently act on some other node.
func TestDaemonNodeOutOfRange(t *testing.T) {
	_, conn := startServer(t, defaultConfig())
	c := newClient(t, conn)

	sql := `SELECT O.Customer, S.Depot FROM Orders AS O, Shipments AS S WHERE O.Product = S.Product`
	for _, node := range []int{-1, 48, 1 << 20} {
		for _, req := range []map[string]interface{}{
			{"op": "subscribe", "node": node, "sql": sql},
			{"op": "subscribe-multi", "node": node, "sql": sql},
			{"op": "publish", "node": node, "relation": "Orders", "values": []interface{}{1, "acme", "widget"}},
		} {
			resp := c.call(req)
			if resp["ok"] != false {
				t.Fatalf("%s with node %d accepted: %v", req["op"], node, resp)
			}
			if msg, _ := resp["error"].(string); !strings.Contains(msg, "out of range") {
				t.Fatalf("%s with node %d: error %q does not name the range", req["op"], node, msg)
			}
		}
	}
	// Nothing was subscribed or published along the way.
	stats := c.call(map[string]interface{}{"op": "stats"})
	if stats["ok"] != true || stats["notifications"].(float64) != 0 {
		t.Fatalf("stats after rejected ops: %v", stats)
	}
}

// TestDaemonLineTooLong is the regression test for the unchecked
// bufio.Scanner error: an oversized line used to kill the connection
// silently. Now it gets a structured error and the connection lives on.
func TestDaemonLineTooLong(t *testing.T) {
	_, conn := startServer(t, defaultConfig())
	c := newClient(t, conn)

	huge := make([]byte, maxLineBytes+16)
	for i := range huge {
		huge[i] = 'x'
	}
	huge[len(huge)-1] = '\n'
	if _, err := c.conn.Write(huge); err != nil {
		t.Fatalf("write oversized line: %v", err)
	}
	resp := c.read()
	if resp["ok"] != false || !strings.Contains(resp["error"].(string), "line too long") {
		t.Fatalf("oversized line: %v", resp)
	}
	// The same connection still serves requests.
	if resp := c.call(map[string]interface{}{"op": "stats"}); resp["ok"] != true {
		t.Fatalf("connection dead after oversized line: %v", resp)
	}
}

// overlayProc is one daemon process of a multi-process overlay test:
// the in-process server, a connected protocol client, and its overlay
// address.
type overlayProc struct {
	srv  *Server
	c    *client
	addr string
}

// ownsNode reports whether this process owns ring position i under its
// current membership view.
func (p *overlayProc) ownsNode(i int) bool {
	key := p.srv.Cluster().Node(i).Key()
	return p.srv.members.ownerOf(key) == p.addr
}

// nodeOwnedBy returns some ring position owned by this process, other
// than the excluded ones. Ownership is successor-based over the hashed
// process addresses, so tests discover positions instead of assuming a
// layout.
func (p *overlayProc) nodeOwnedBy(t *testing.T, exclude ...int) int {
	t.Helper()
	for i := 0; i < p.srv.Cluster().Size(); i++ {
		skip := false
		for _, e := range exclude {
			if i == e {
				skip = true
				break
			}
		}
		if !skip && p.ownsNode(i) {
			return i
		}
	}
	t.Fatalf("process %s owns no eligible node", p.addr)
	return -1
}

// startOverlayProc builds one daemon process around an already-bound
// overlay listener and connects a protocol client to it.
func startOverlayProc(t *testing.T, cfg Config, ln net.Listener) *overlayProc {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New server %s: %v", cfg.OverlayAddr, err)
	}
	if err := srv.StartOverlay(ln); err != nil {
		t.Fatalf("StartOverlay %s: %v", cfg.OverlayAddr, err)
	}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen client %s: %v", cfg.OverlayAddr, err)
	}
	go func() { _ = srv.Serve(cln) }()
	t.Cleanup(func() { _ = srv.Close() })
	conn, err := net.Dial("tcp", cln.Addr().String())
	if err != nil {
		t.Fatalf("dial %s: %v", cfg.OverlayAddr, err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return &overlayProc{srv: srv, c: newClient(t, conn), addr: cfg.OverlayAddr}
}

// startOverlayProcs builds count daemon processes sharing one overlay
// with a static initial membership.
func startOverlayProcs(t *testing.T, base Config, count int) []*overlayProc {
	t.Helper()
	lns := make([]net.Listener, count)
	peers := make([]string, count)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen overlay %d: %v", i, err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	procs := make([]*overlayProc, count)
	for i, ln := range lns {
		cfg := base
		cfg.OverlayAddr = peers[i]
		cfg.Peers = peers
		procs[i] = startOverlayProc(t, cfg, ln)
	}
	return procs
}

// startOverlayPair builds two daemon processes' worth of servers sharing
// one overlay. Returns one connected client per server.
func startOverlayPair(t *testing.T, base Config) (*client, *client) {
	t.Helper()
	procs := startOverlayProcs(t, base, 2)
	return procs[0].c, procs[1].c
}

// TestDaemonTwoProcessOverlay is the acceptance test for multi-process
// mode: two servers form one overlay; a query subscribed on a node owned
// by process A is matched by tuples published through process B, and the
// notification event surfaces at A's listener.
func TestDaemonTwoProcessOverlay(t *testing.T) {
	procs := startOverlayProcs(t, defaultConfig(), 2)
	a, b := procs[0], procs[1]
	cA, cB := a.c, b.c

	if resp := cA.call(map[string]interface{}{"op": "listen"}); resp["ok"] != true {
		t.Fatalf("listen: %v", resp)
	}
	// Ownership is successor-based over the hashed peer addresses, so the
	// test discovers who owns what instead of assuming a layout.
	subNode := a.nodeOwnedBy(t)
	resp := cA.call(map[string]interface{}{
		"op": "subscribe", "node": subNode,
		"sql": `SELECT O.Customer, S.Depot FROM Orders AS O, Shipments AS S WHERE O.Product = S.Product`,
	})
	if resp["ok"] != true {
		t.Fatalf("subscribe on A: %v", resp)
	}
	key := resp["key"].(string)

	// Ownership is enforced: B refuses to act through A's node.
	if resp := cB.call(map[string]interface{}{
		"op": "publish", "node": subNode, "relation": "Orders", "values": []interface{}{1, "x", "y"},
	}); resp["ok"] != false || !strings.Contains(resp["error"].(string), "hosted by peer") {
		t.Fatalf("B published through A's node: %v", resp)
	}

	pub1 := b.nodeOwnedBy(t)
	pub2 := b.nodeOwnedBy(t, pub1)
	if resp := cB.call(map[string]interface{}{
		"op": "publish", "node": pub1, "relation": "Orders", "values": []interface{}{1, "acme", "widget"},
	}); resp["ok"] != true {
		t.Fatalf("publish Orders on B: %v", resp)
	}
	if resp := cB.call(map[string]interface{}{
		"op": "publish", "node": pub2, "relation": "Shipments", "values": []interface{}{9, "widget", "rotterdam"},
	}); resp["ok"] != true {
		t.Fatalf("publish Shipments on B: %v", resp)
	}

	// The cross-process match surfaces at A's listener.
	event := cA.nextEvent()
	if event["event"] != "notification" || event["query"] != key {
		t.Fatalf("event = %v", event)
	}
	vals, _ := event["values"].([]interface{})
	if len(vals) != 2 || vals[0] != "acme" || vals[1] != "rotterdam" {
		t.Fatalf("event values = %v", vals)
	}

	// B's deliveries crossed real sockets: its stats carry transport
	// metrics with at least one dial and some frame traffic, plus the
	// membership view and a clean ring report.
	stats := cB.call(map[string]interface{}{"op": "stats"})
	tm, ok := stats["transport"].(map[string]interface{})
	if !ok {
		t.Fatalf("stats carry no transport metrics: %v", stats)
	}
	if tm["transport.dials"].(float64) == 0 || tm["transport.frame_bytes_out"].(float64) == 0 {
		t.Fatalf("no cross-process traffic in metrics: %v", tm)
	}
	mem, ok := stats["membership"].(map[string]interface{})
	if !ok {
		t.Fatalf("stats carry no membership: %v", stats)
	}
	if procsList, _ := mem["procs"].([]interface{}); len(procsList) != 2 {
		t.Fatalf("membership procs: %v", mem)
	}
	if stats["ring_ok"] != true {
		t.Fatalf("ring not ok: %v", stats["ring"])
	}
}

// publishPair publishes one Orders/Shipments pair matching the standing
// query through the first live process that owns a ring position. The
// product value is unique per call so each pair yields exactly one
// notification.
func publishPair(t *testing.T, procs []*overlayProc, tag string) {
	t.Helper()
	for _, p := range procs {
		for i := 0; i < p.srv.Cluster().Size(); i++ {
			if !p.ownsNode(i) {
				continue
			}
			if resp := p.c.call(map[string]interface{}{
				"op": "publish", "node": i, "relation": "Orders",
				"values": []interface{}{1, "cust-" + tag, "prod-" + tag},
			}); resp["ok"] != true {
				t.Fatalf("publish Orders %s via %s: %v", tag, p.addr, resp)
			}
			if resp := p.c.call(map[string]interface{}{
				"op": "publish", "node": i, "relation": "Shipments",
				"values": []interface{}{2, "prod-" + tag, "depot-" + tag},
			}); resp["ok"] != true {
				t.Fatalf("publish Shipments %s via %s: %v", tag, p.addr, resp)
			}
			return
		}
	}
	t.Fatal("no live process owns any node")
}

// TestDaemonJoinLeaveMidWorkload is the acceptance test for dynamic
// membership: a third process joins a running 2-process overlay between
// publishes, then one of the founders leaves, and across both transitions
// every published match is notified exactly once — nothing lost (state
// handed off with the moving arcs), nothing duplicated (idempotent merge
// plus the engine's dedup ledger).
func TestDaemonJoinLeaveMidWorkload(t *testing.T) {
	procs := startOverlayProcs(t, defaultConfig(), 2)
	a, b := procs[0], procs[1]

	// Subscribe through whichever founder owns a node.
	var subProc *overlayProc
	for _, p := range procs {
		for i := 0; i < p.srv.Cluster().Size(); i++ {
			if p.ownsNode(i) {
				subProc = p
				if resp := p.c.call(map[string]interface{}{
					"op": "subscribe", "node": i,
					"sql": `SELECT O.Customer, S.Depot FROM Orders AS O, Shipments AS S WHERE O.Product = S.Product`,
				}); resp["ok"] != true {
					t.Fatalf("subscribe: %v", resp)
				}
				break
			}
		}
		if subProc != nil {
			break
		}
	}
	if subProc == nil {
		t.Fatal("no process owns any node")
	}

	publishPair(t, procs, "pre-join")

	// A third process joins mid-workload, configured from a live peer.
	oc := a.c.call(map[string]interface{}{"op": "overlay-config"})
	if oc["ok"] != true {
		t.Fatalf("overlay-config: %v", oc)
	}
	lnC, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen overlay C: %v", err)
	}
	var peersC []string
	for _, p := range oc["peers"].([]interface{}) {
		peersC = append(peersC, p.(string))
	}
	cfgC := Config{
		Nodes:        int(oc["nodes"].(float64)),
		Algorithm:    oc["algorithm"].(string),
		SchemaDSL:    oc["schema"].(string),
		UseJFRT:      oc["jfrt"].(bool),
		Seed:         int64(oc["seed"].(float64)),
		OverlayAddr:  lnC.Addr().String(),
		Peers:        peersC,
		JoinExisting: true,
	}
	c := startOverlayProc(t, cfgC, lnC)
	if err := c.srv.JoinOverlay(a.addr); err != nil {
		t.Fatalf("JoinOverlay: %v", err)
	}
	procs = append(procs, c)

	publishPair(t, procs, "post-join")

	// Founder B leaves voluntarily; its arcs (and their state) move to the
	// remaining owners.
	if resp := b.c.call(map[string]interface{}{"op": "leave"}); resp["ok"] != true {
		t.Fatalf("leave: %v", resp)
	}
	live := []*overlayProc{a, c}

	publishPair(t, live, "post-leave")

	// Exactly one notification per published pair, across every process
	// that ever hosted the subscriber — none lost, none duplicated.
	total := 0
	for _, p := range procs {
		total += len(p.srv.Cluster().Notifications())
		if d := p.srv.Cluster().Traffic().Duplicates("notification"); d != 0 {
			t.Fatalf("process %s delivered %d duplicate notifications", p.addr, d)
		}
	}
	if total != 3 {
		t.Fatalf("published 3 matching pairs, delivered %d notifications", total)
	}

	// The membership converged on both survivors: version 3 (join, then
	// leave, over the initial view), two members, and a clean ring.
	for _, p := range live {
		stats := p.c.call(map[string]interface{}{"op": "stats"})
		mem, ok := stats["membership"].(map[string]interface{})
		if !ok {
			t.Fatalf("stats carry no membership: %v", stats)
		}
		if v := mem["version"].(float64); v != 3 {
			t.Fatalf("membership version = %v, want 3", v)
		}
		if members, _ := mem["procs"].([]interface{}); len(members) != 2 {
			t.Fatalf("membership procs = %v, want 2 members", members)
		}
		if stats["ring_ok"] != true {
			t.Fatalf("ring not ok on %s: %v", p.addr, stats["ring"])
		}
	}
}

// TestDaemonOverlayConfig checks the op "-join" uses to copy a peer's
// configuration, and that a misconfigured peer list is rejected.
func TestDaemonOverlayConfig(t *testing.T) {
	cA, _ := startOverlayPair(t, defaultConfig())
	resp := cA.call(map[string]interface{}{"op": "overlay-config"})
	if resp["ok"] != true {
		t.Fatalf("overlay-config: %v", resp)
	}
	if resp["nodes"].(float64) != 48 || resp["algorithm"] != "sai" || resp["seed"].(float64) != 1 {
		t.Fatalf("overlay-config fields: %v", resp)
	}
	if peers, _ := resp["peers"].([]interface{}); len(peers) != 2 {
		t.Fatalf("overlay-config peers: %v", resp)
	}
	if schema, _ := resp["schema"].(string); !strings.Contains(schema, "Orders") {
		t.Fatalf("overlay-config schema: %v", resp)
	}

	bad := defaultConfig()
	bad.OverlayAddr = "127.0.0.1:1"
	bad.Peers = []string{"127.0.0.1:2", "127.0.0.1:3"}
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), "not in the peer list") {
		t.Fatalf("self-less peer list accepted: %v", err)
	}
}

// TestDaemonSingleProcessStatsHaveNoTransport pins the single-process
// protocol surface: no overlay, no transport section in stats.
func TestDaemonSingleProcessStatsHaveNoTransport(t *testing.T) {
	_, conn := startServer(t, defaultConfig())
	c := newClient(t, conn)
	stats := c.call(map[string]interface{}{"op": "stats"})
	if _, has := stats["transport"]; has {
		t.Fatalf("single-process stats carry transport metrics: %v", stats)
	}
	if resp := c.call(map[string]interface{}{"op": "overlay-config"}); resp["ok"] != true {
		t.Fatalf("overlay-config: %v", resp)
	}
}
