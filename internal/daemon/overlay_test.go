package daemon

import (
	"net"
	"strings"
	"testing"
)

// TestDaemonMultiUnsubscribe is the regression test for the protocol bug
// where "subscribe-multi" never recorded the query, so "unsubscribe"
// always answered "unknown query" and the chain kept firing forever.
func TestDaemonMultiUnsubscribe(t *testing.T) {
	cfg := defaultConfig()
	cfg.SchemaDSL = "A(x,y);B(x,y);C(x,y)"
	_, conn := startServer(t, cfg)
	c := newClient(t, conn)

	resp := c.call(map[string]interface{}{
		"op": "subscribe-multi", "node": 0,
		"sql": `SELECT A.y, C.y FROM A, B, C WHERE A.x = B.y AND B.x = C.y`,
	})
	if resp["ok"] != true {
		t.Fatalf("subscribe-multi: %v", resp)
	}
	key, _ := resp["key"].(string)
	if key == "" {
		t.Fatalf("no query key in %v", resp)
	}
	// Drive the pipeline one stage deep before retracting.
	c.call(map[string]interface{}{"op": "publish", "node": 1, "relation": "A", "values": []interface{}{1, 10}})
	c.call(map[string]interface{}{"op": "publish", "node": 2, "relation": "B", "values": []interface{}{2, 1}})
	if resp := c.call(map[string]interface{}{"op": "unsubscribe", "key": key}); resp["ok"] != true {
		t.Fatalf("unsubscribe of a multi-way query: %v", resp)
	}
	// Neither the completing tuple nor a whole fresh chain may notify.
	c.call(map[string]interface{}{"op": "publish", "node": 3, "relation": "C", "values": []interface{}{0, 2}})
	c.call(map[string]interface{}{"op": "publish", "node": 4, "relation": "A", "values": []interface{}{1, 11}})
	c.call(map[string]interface{}{"op": "publish", "node": 5, "relation": "B", "values": []interface{}{2, 1}})
	c.call(map[string]interface{}{"op": "publish", "node": 6, "relation": "C", "values": []interface{}{0, 2}})
	stats := c.call(map[string]interface{}{"op": "stats"})
	if stats["notifications"].(float64) != 0 {
		t.Fatalf("retracted multi-way query still notified: %v", stats)
	}
	if resp := c.call(map[string]interface{}{"op": "unsubscribe", "key": key}); resp["ok"] != false {
		t.Fatalf("double unsubscribe accepted: %v", resp)
	}
}

// TestDaemonNodeOutOfRange is the regression test for req.Node reaching
// the cluster unvalidated: out-of-range ids used to wrap modulo the
// overlay size and silently act on some other node.
func TestDaemonNodeOutOfRange(t *testing.T) {
	_, conn := startServer(t, defaultConfig())
	c := newClient(t, conn)

	sql := `SELECT O.Customer, S.Depot FROM Orders AS O, Shipments AS S WHERE O.Product = S.Product`
	for _, node := range []int{-1, 48, 1 << 20} {
		for _, req := range []map[string]interface{}{
			{"op": "subscribe", "node": node, "sql": sql},
			{"op": "subscribe-multi", "node": node, "sql": sql},
			{"op": "publish", "node": node, "relation": "Orders", "values": []interface{}{1, "acme", "widget"}},
		} {
			resp := c.call(req)
			if resp["ok"] != false {
				t.Fatalf("%s with node %d accepted: %v", req["op"], node, resp)
			}
			if msg, _ := resp["error"].(string); !strings.Contains(msg, "out of range") {
				t.Fatalf("%s with node %d: error %q does not name the range", req["op"], node, msg)
			}
		}
	}
	// Nothing was subscribed or published along the way.
	stats := c.call(map[string]interface{}{"op": "stats"})
	if stats["ok"] != true || stats["notifications"].(float64) != 0 {
		t.Fatalf("stats after rejected ops: %v", stats)
	}
}

// TestDaemonLineTooLong is the regression test for the unchecked
// bufio.Scanner error: an oversized line used to kill the connection
// silently. Now it gets a structured error and the connection lives on.
func TestDaemonLineTooLong(t *testing.T) {
	_, conn := startServer(t, defaultConfig())
	c := newClient(t, conn)

	huge := make([]byte, maxLineBytes+16)
	for i := range huge {
		huge[i] = 'x'
	}
	huge[len(huge)-1] = '\n'
	if _, err := c.conn.Write(huge); err != nil {
		t.Fatalf("write oversized line: %v", err)
	}
	resp := c.read()
	if resp["ok"] != false || !strings.Contains(resp["error"].(string), "line too long") {
		t.Fatalf("oversized line: %v", resp)
	}
	// The same connection still serves requests.
	if resp := c.call(map[string]interface{}{"op": "stats"}); resp["ok"] != true {
		t.Fatalf("connection dead after oversized line: %v", resp)
	}
}

// startOverlayPair builds two daemon processes' worth of servers sharing
// one overlay: each owns every other ring position. Returns one connected
// client per server.
func startOverlayPair(t *testing.T, base Config) (*client, *client) {
	t.Helper()
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen overlay A: %v", err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen overlay B: %v", err)
	}
	peers := []string{lnA.Addr().String(), lnB.Addr().String()}

	clients := make([]*client, 2)
	for i, ln := range []net.Listener{lnA, lnB} {
		cfg := base
		cfg.OverlayAddr = peers[i]
		cfg.Peers = peers
		srv, err := New(cfg)
		if err != nil {
			t.Fatalf("New server %d: %v", i, err)
		}
		if err := srv.StartOverlay(ln); err != nil {
			t.Fatalf("StartOverlay %d: %v", i, err)
		}
		cln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen client %d: %v", i, err)
		}
		go func() { _ = srv.Serve(cln) }()
		t.Cleanup(func() { _ = srv.Close() })
		conn, err := net.Dial("tcp", cln.Addr().String())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		t.Cleanup(func() { _ = conn.Close() })
		clients[i] = newClient(t, conn)
	}
	return clients[0], clients[1]
}

// TestDaemonTwoProcessOverlay is the acceptance test for multi-process
// mode: two servers form one overlay; a query subscribed on a node owned
// by process A is matched by tuples published through process B, and the
// notification event surfaces at A's listener.
func TestDaemonTwoProcessOverlay(t *testing.T) {
	cA, cB := startOverlayPair(t, defaultConfig())

	if resp := cA.call(map[string]interface{}{"op": "listen"}); resp["ok"] != true {
		t.Fatalf("listen: %v", resp)
	}
	// Node 0 is owned by A (even ring index), node 1 by B.
	resp := cA.call(map[string]interface{}{
		"op": "subscribe", "node": 0,
		"sql": `SELECT O.Customer, S.Depot FROM Orders AS O, Shipments AS S WHERE O.Product = S.Product`,
	})
	if resp["ok"] != true {
		t.Fatalf("subscribe on A: %v", resp)
	}
	key := resp["key"].(string)

	// Ownership is enforced: B refuses to act through A's node.
	if resp := cB.call(map[string]interface{}{
		"op": "publish", "node": 0, "relation": "Orders", "values": []interface{}{1, "x", "y"},
	}); resp["ok"] != false || !strings.Contains(resp["error"].(string), "hosted by peer") {
		t.Fatalf("B published through A's node: %v", resp)
	}

	if resp := cB.call(map[string]interface{}{
		"op": "publish", "node": 1, "relation": "Orders", "values": []interface{}{1, "acme", "widget"},
	}); resp["ok"] != true {
		t.Fatalf("publish Orders on B: %v", resp)
	}
	if resp := cB.call(map[string]interface{}{
		"op": "publish", "node": 3, "relation": "Shipments", "values": []interface{}{9, "widget", "rotterdam"},
	}); resp["ok"] != true {
		t.Fatalf("publish Shipments on B: %v", resp)
	}

	// The cross-process match surfaces at A's listener.
	event := cA.nextEvent()
	if event["event"] != "notification" || event["query"] != key {
		t.Fatalf("event = %v", event)
	}
	vals, _ := event["values"].([]interface{})
	if len(vals) != 2 || vals[0] != "acme" || vals[1] != "rotterdam" {
		t.Fatalf("event values = %v", vals)
	}

	// B's deliveries crossed real sockets: its stats carry transport
	// metrics with at least one dial and some frame traffic.
	stats := cB.call(map[string]interface{}{"op": "stats"})
	tm, ok := stats["transport"].(map[string]interface{})
	if !ok {
		t.Fatalf("stats carry no transport metrics: %v", stats)
	}
	if tm["transport.dials"].(float64) == 0 || tm["transport.frame_bytes_out"].(float64) == 0 {
		t.Fatalf("no cross-process traffic in metrics: %v", tm)
	}
}

// TestDaemonOverlayConfig checks the op "-join" uses to copy a peer's
// configuration, and that a misconfigured peer list is rejected.
func TestDaemonOverlayConfig(t *testing.T) {
	cA, _ := startOverlayPair(t, defaultConfig())
	resp := cA.call(map[string]interface{}{"op": "overlay-config"})
	if resp["ok"] != true {
		t.Fatalf("overlay-config: %v", resp)
	}
	if resp["nodes"].(float64) != 48 || resp["algorithm"] != "sai" || resp["seed"].(float64) != 1 {
		t.Fatalf("overlay-config fields: %v", resp)
	}
	if peers, _ := resp["peers"].([]interface{}); len(peers) != 2 {
		t.Fatalf("overlay-config peers: %v", resp)
	}
	if schema, _ := resp["schema"].(string); !strings.Contains(schema, "Orders") {
		t.Fatalf("overlay-config schema: %v", resp)
	}

	bad := defaultConfig()
	bad.OverlayAddr = "127.0.0.1:1"
	bad.Peers = []string{"127.0.0.1:2", "127.0.0.1:3"}
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), "not in the peer list") {
		t.Fatalf("self-less peer list accepted: %v", err)
	}
}

// TestDaemonSingleProcessStatsHaveNoTransport pins the single-process
// protocol surface: no overlay, no transport section in stats.
func TestDaemonSingleProcessStatsHaveNoTransport(t *testing.T) {
	_, conn := startServer(t, defaultConfig())
	c := newClient(t, conn)
	stats := c.call(map[string]interface{}{"op": "stats"})
	if _, has := stats["transport"]; has {
		t.Fatalf("single-process stats carry transport metrics: %v", stats)
	}
	if resp := c.call(map[string]interface{}{"op": "overlay-config"}); resp["ok"] != true {
		t.Fatalf("overlay-config: %v", resp)
	}
}
