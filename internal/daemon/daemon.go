// Package daemon embeds a continuous-join cluster behind a TCP boundary:
// a newline-delimited JSON protocol for subscribing, publishing, streaming
// notifications and reading statistics. cmd/cqjoind is the thin CLI
// wrapper; the package is separate so the protocol is testable in-process.
package daemon

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"

	"cqjoin"
)

// Config parameterizes a daemon.
type Config struct {
	// Nodes is the overlay size.
	Nodes int
	// Algorithm is one of "sai", "daiq", "dait", "daiv" (case-insensitive).
	Algorithm string
	// SchemaDSL declares the catalog: "R(A,B);S(D,E)".
	SchemaDSL string
	// UseJFRT enables the Join Fingers Routing Table.
	UseJFRT bool
	// Seed drives deterministic behaviour.
	Seed int64
}

// Server owns one cluster and serves the JSON protocol.
type Server struct {
	cluster *cqjoin.Cluster

	mu        sync.Mutex
	queries   map[string]queryRef // query key -> owner + handle
	listeners map[*listener]struct{}
	listening net.Listener
}

type queryRef struct {
	nodeKey string
	q       *cqjoin.Query
}

type listener struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// New builds a server around a fresh cluster.
func New(cfg Config) (*Server, error) {
	catalog, err := ParseSchemaDSL(cfg.SchemaDSL)
	if err != nil {
		return nil, err
	}
	alg, err := parseAlgorithm(cfg.Algorithm)
	if err != nil {
		return nil, err
	}
	cluster, err := cqjoin.NewCluster(cqjoin.Config{
		Nodes:     cfg.Nodes,
		Catalog:   catalog,
		Algorithm: alg,
		UseJFRT:   cfg.UseJFRT,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cluster:   cluster,
		queries:   make(map[string]queryRef),
		listeners: make(map[*listener]struct{}),
	}
	cluster.OnNotify(s.broadcast)
	return s, nil
}

// Cluster exposes the embedded cluster (for tests and embedding).
func (s *Server) Cluster() *cqjoin.Cluster { return s.cluster }

// ParseSchemaDSL parses "R(A,B);S(D,E)" into a catalog.
func ParseSchemaDSL(dsl string) (*cqjoin.Catalog, error) {
	var schemas []*cqjoin.Schema
	for _, part := range strings.Split(dsl, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		open := strings.IndexByte(part, '(')
		if open <= 0 || !strings.HasSuffix(part, ")") {
			return nil, fmt.Errorf("daemon: bad schema %q, want Rel(A,B,...)", part)
		}
		name := strings.TrimSpace(part[:open])
		var attrs []string
		for _, a := range strings.Split(part[open+1:len(part)-1], ",") {
			attrs = append(attrs, strings.TrimSpace(a))
		}
		schema, err := cqjoin.NewSchema(name, attrs...)
		if err != nil {
			return nil, err
		}
		schemas = append(schemas, schema)
	}
	if len(schemas) == 0 {
		return nil, fmt.Errorf("daemon: empty schema")
	}
	return cqjoin.NewCatalog(schemas...)
}

func parseAlgorithm(name string) (cqjoin.Algorithm, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "sai":
		return cqjoin.SAI, nil
	case "daiq", "dai-q":
		return cqjoin.DAIQ, nil
	case "dait", "dai-t":
		return cqjoin.DAIT, nil
	case "daiv", "dai-v":
		return cqjoin.DAIV, nil
	default:
		return 0, fmt.Errorf("daemon: unknown algorithm %q", name)
	}
}

// ListenAndServe accepts connections until the listener is closed.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on an existing listener (tests pass a
// loopback listener with port 0).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.listening = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.handleConn(conn)
	}
}

// Close stops accepting connections.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.listening
	s.mu.Unlock()
	if ln != nil {
		return ln.Close()
	}
	return nil
}

// Addr returns the bound address once serving.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listening == nil {
		return nil
	}
	return s.listening.Addr()
}

// request is one protocol line from a client.
type request struct {
	Op       string        `json:"op"`
	Node     int           `json:"node"`
	SQL      string        `json:"sql,omitempty"`
	Relation string        `json:"relation,omitempty"`
	Values   []interface{} `json:"values,omitempty"`
	Key      string        `json:"key,omitempty"`
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	enc := json.NewEncoder(conn)
	lst := &listener{enc: enc}
	defer func() {
		s.mu.Lock()
		delete(s.listeners, lst)
		s.mu.Unlock()
	}()

	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		var req request
		if err := json.Unmarshal([]byte(line), &req); err != nil {
			lst.send(map[string]interface{}{"ok": false, "error": "bad json: " + err.Error()})
			continue
		}
		lst.send(s.dispatch(&req, lst))
	}
}

func (s *Server) dispatch(req *request, lst *listener) map[string]interface{} {
	fail := func(err error) map[string]interface{} {
		return map[string]interface{}{"ok": false, "error": err.Error()}
	}
	switch req.Op {
	case "subscribe":
		q, err := s.cluster.Node(req.Node).Subscribe(req.SQL)
		if err != nil {
			return fail(err)
		}
		s.mu.Lock()
		s.queries[q.Key()] = queryRef{nodeKey: s.cluster.Node(req.Node).Key(), q: q}
		s.mu.Unlock()
		return map[string]interface{}{"ok": true, "key": q.Key()}
	case "subscribe-multi":
		mq, err := s.cluster.Node(req.Node).SubscribeMulti(req.SQL)
		if err != nil {
			return fail(err)
		}
		return map[string]interface{}{"ok": true, "key": mq.Key()}
	case "unsubscribe":
		s.mu.Lock()
		ref, ok := s.queries[req.Key]
		delete(s.queries, req.Key)
		s.mu.Unlock()
		if !ok {
			return fail(fmt.Errorf("unknown query %q", req.Key))
		}
		node := s.cluster.NodeByKey(ref.nodeKey)
		if node == nil {
			return fail(fmt.Errorf("subscriber %s is offline", ref.nodeKey))
		}
		if err := node.Unsubscribe(ref.q); err != nil {
			return fail(err)
		}
		return map[string]interface{}{"ok": true}
	case "publish":
		vals := make([]interface{}, len(req.Values))
		copy(vals, req.Values)
		t, err := s.cluster.Node(req.Node).Publish(req.Relation, vals...)
		if err != nil {
			return fail(err)
		}
		return map[string]interface{}{"ok": true, "pubt": t.PubT()}
	case "listen":
		s.mu.Lock()
		s.listeners[lst] = struct{}{}
		s.mu.Unlock()
		return map[string]interface{}{"ok": true}
	case "stats":
		tr := s.cluster.Traffic()
		return map[string]interface{}{
			"ok":            true,
			"nodes":         s.cluster.Size(),
			"notifications": len(s.cluster.Notifications()),
			"hops":          tr.TotalHops(),
			"messages":      tr.TotalMessages(),
			"bytes":         tr.TotalBytes(),
		}
	default:
		return fail(fmt.Errorf("unknown op %q", req.Op))
	}
}

// broadcast pushes one notification to every listening connection.
func (s *Server) broadcast(n cqjoin.Notification) {
	vals := make([]interface{}, len(n.Values))
	for i, v := range n.Values {
		if v.Kind() == cqjoin.NumberKind {
			vals[i] = v.Num()
		} else {
			vals[i] = v.Str()
		}
	}
	event := map[string]interface{}{
		"event":      "notification",
		"query":      n.QueryKey,
		"subscriber": n.Subscriber,
		"values":     vals,
	}
	s.mu.Lock()
	targets := make([]*listener, 0, len(s.listeners))
	for l := range s.listeners {
		targets = append(targets, l)
	}
	s.mu.Unlock()
	for _, l := range targets {
		l.send(event)
	}
}

func (l *listener) send(v interface{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	_ = l.enc.Encode(v)
}
