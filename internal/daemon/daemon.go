// Package daemon embeds a continuous-join cluster behind a TCP boundary:
// a newline-delimited JSON protocol for subscribing, publishing, streaming
// notifications and reading statistics. cmd/cqjoind is the thin CLI
// wrapper; the package is separate so the protocol is testable in-process.
package daemon

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"

	"cqjoin"
	"cqjoin/internal/chord"
	"cqjoin/internal/durable"
	"cqjoin/internal/engine"
	"cqjoin/internal/obs"
	"cqjoin/internal/transport"
	"cqjoin/internal/wire"
)

// Config parameterizes a daemon.
type Config struct {
	// Nodes is the overlay size.
	Nodes int
	// Algorithm is one of "sai", "daiq", "dait", "daiv" (case-insensitive).
	Algorithm string
	// SchemaDSL declares the catalog: "R(A,B);S(D,E)".
	SchemaDSL string
	// UseJFRT enables the Join Fingers Routing Table.
	UseJFRT bool
	// Seed drives deterministic behaviour.
	Seed int64
	// HotKeyThreshold arms adaptive hot-key sharding (SAI only); 0
	// disables it. Every process of a multi-process overlay must agree on
	// the hot-key configuration — shard frames land on whichever process
	// owns the replica id — so overlay-config propagates it to joiners.
	HotKeyThreshold int
	// HotKeyReplicas is the promoted replica-group size (< 2 defaults
	// to 4).
	HotKeyReplicas int

	// OverlayAddr is this process's inter-node transport address
	// ("host:port"). Empty runs the classic single-process mode with
	// simulated delivery.
	OverlayAddr string
	// Peers lists the overlay processes' OverlayAddrs. Each process
	// builds the identical overlay from (Nodes, Algorithm, SchemaDSL,
	// Seed); node ownership is derived from the membership view by
	// consistent hashing (see membership.go), so list order does not
	// matter. Unless JoinExisting is set, Peers is this process's initial
	// membership and must contain OverlayAddr.
	Peers []string
	// JoinExisting marks this process as entering an already-running
	// overlay: Peers lists the current members (obtained from a running
	// daemon's overlay-config op) and must NOT contain OverlayAddr. After
	// StartOverlay/ListenAndServeOverlay, call JoinOverlay to enter the
	// ring; until then this process owns no nodes.
	JoinExisting bool

	// StateDir, when non-empty, arms per-process durability: every
	// acknowledged mutating operation and inbound overlay delivery is
	// appended to a write-ahead log under the directory, periodically
	// compacted into a snapshot, and replayed on the next start before the
	// process rejoins the overlay (DESIGN.md §14). Empty keeps the daemon
	// fully in-memory — byte-identical behaviour to earlier releases.
	StateDir string
	// SnapshotEvery overrides the checkpoint cadence in logged records
	// (tests use small values); 0 means the durable layer's default.
	SnapshotEvery int
}

// Server owns one cluster and serves the JSON protocol.
type Server struct {
	cfg      Config
	cluster  *cqjoin.Cluster
	catalog  *cqjoin.Catalog
	reg      *obs.Registry    // transport metrics; nil in single-process mode
	tr       *transport.TCP   // nil in single-process mode
	members  *membership      // nil in single-process mode
	codec    engine.WireCodec // re-encodes inbound deliveries for the WAL
	store    *durable.Store   // nil without Config.StateDir
	recovery durable.RecoveryInfo
	logf     func(format string, args ...interface{})

	mu        sync.Mutex
	queries   map[string]queryRef // query key -> owner + handle
	listeners map[*listener]struct{}
	listening net.Listener
	// conns tracks accepted client connections and connWG their handler
	// goroutines, so Close can tear both down instead of leaking blocked
	// readers; closed refuses handlers accepted during shutdown.
	conns  map[net.Conn]struct{}
	connWG sync.WaitGroup
	closed bool
}

// queryRef remembers who subscribed and which kind of query it was, so
// "unsubscribe" can route to Unsubscribe or UnsubscribeMulti. Exactly one
// of q and mq is non-nil.
type queryRef struct {
	nodeKey string
	q       *cqjoin.Query
	mq      *cqjoin.MultiQuery
}

type listener struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// New builds a server around a fresh cluster. With cfg.OverlayAddr set it
// also wires a TCP transport into the overlay so deliveries to ring
// positions owned by other processes cross the network; call
// StartOverlay or ListenAndServeOverlay before serving clients.
func New(cfg Config) (*Server, error) {
	catalog, err := ParseSchemaDSL(cfg.SchemaDSL)
	if err != nil {
		return nil, err
	}
	alg, err := parseAlgorithm(cfg.Algorithm)
	if err != nil {
		return nil, err
	}
	cfg.Algorithm = algorithmName(alg)
	cluster, err := cqjoin.NewCluster(cqjoin.Config{
		Nodes:           cfg.Nodes,
		Catalog:         catalog,
		Algorithm:       alg,
		UseJFRT:         cfg.UseJFRT,
		Seed:            cfg.Seed,
		HotKeyThreshold: cfg.HotKeyThreshold,
		HotKeyReplicas:  cfg.HotKeyReplicas,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		cluster:   cluster,
		catalog:   catalog,
		codec:     engine.NewWireCodec(catalog),
		logf:      log.Printf,
		queries:   make(map[string]queryRef),
		listeners: make(map[*listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	if cfg.OverlayAddr != "" {
		self := false
		for _, p := range cfg.Peers {
			if p == cfg.OverlayAddr {
				self = true
				break
			}
		}
		if cfg.JoinExisting {
			if self {
				return nil, fmt.Errorf("daemon: joining process %s must not be in the peer list %v", cfg.OverlayAddr, cfg.Peers)
			}
			if len(cfg.Peers) == 0 {
				return nil, fmt.Errorf("daemon: joining an existing overlay needs its current peer list")
			}
			// Version 0: any authoritative view handed back by the join
			// seed supersedes this placeholder. Until JoinOverlay runs,
			// this process owns no nodes.
			s.members = newMembership(cfg.OverlayAddr, cfg.Peers, 0)
		} else {
			if !self {
				return nil, fmt.Errorf("daemon: overlay address %s is not in the peer list %v", cfg.OverlayAddr, cfg.Peers)
			}
			s.members = newMembership(cfg.OverlayAddr, cfg.Peers, 1)
		}
		s.reg = obs.NewRegistry()
		tr, err := transport.New(transport.Config{
			Self:       cfg.OverlayAddr,
			OwnerOf:    s.members.ownerOf,
			Codec:      s.codec,
			Local:      s, // ownership-gated; see DeliverLocal
			Membership: s,
			Seed:       cfg.Seed,
			Obs:        s.reg,
		})
		if err != nil {
			return nil, err
		}
		s.tr = tr
		cluster.Overlay().SetTransport(tr)
	}
	if cfg.StateDir != "" {
		if err := s.openDurable(); err != nil {
			return nil, err
		}
	}
	cluster.OnNotify(s.broadcast)
	return s, nil
}

// openDurable loads the state directory and replays it into the fresh
// cluster before any traffic is served: the snapshot restores whole-node
// state, the WAL tail re-executes every acknowledged operation that
// followed it, and the latest logged membership view is re-adopted so the
// process rejoins the overlay owning exactly what it owned when it
// stopped. Afterwards the cluster routes mutating ops through the store.
func (s *Server) openDurable() error {
	opts := durable.Options{SnapshotEvery: s.cfg.SnapshotEvery, Logf: s.logf}
	if s.members != nil {
		opts.View = s.members.view
	}
	st, err := durable.Open(s.cfg.StateDir, s.catalog, opts)
	if err != nil {
		return err
	}
	info, err := st.Recover(s.cluster.Engine())
	if err != nil {
		st.Abandon()
		return fmt.Errorf("daemon: recover %s: %w", s.cfg.StateDir, err)
	}
	if info.View != nil && s.members != nil {
		s.members.apply(info.View)
	}
	s.store = st
	s.recovery = info
	s.cluster.SetDurable(st)
	return nil
}

// Recovery reports what the state directory restored (zero without one).
func (s *Server) Recovery() durable.RecoveryInfo { return s.recovery }

// StartOverlay begins serving inter-node traffic on an existing listener
// (tests bind port 0 first so the peer list can carry concrete ports).
func (s *Server) StartOverlay(ln net.Listener) error {
	if s.tr == nil {
		return fmt.Errorf("daemon: no overlay transport configured")
	}
	s.tr.Start(ln)
	return nil
}

// ListenAndServeOverlay binds Config.OverlayAddr and begins serving
// inter-node traffic. It returns immediately.
func (s *Server) ListenAndServeOverlay() error {
	if s.tr == nil {
		return fmt.Errorf("daemon: no overlay transport configured")
	}
	return s.tr.ListenAndServe()
}

// Cluster exposes the embedded cluster (for tests and embedding).
func (s *Server) Cluster() *cqjoin.Cluster { return s.cluster }

// DeliverLocal implements transport.LocalDeliverer with an ownership gate:
// a message for a node this process does not own (per the current
// membership view) is refused, which surfaces to the sender as a missing
// ack — its retry re-resolves the owner under the view it converges to.
// Without the gate, a delivery racing a membership change would run a
// handler on a process that no longer holds the node's authoritative
// state.
func (s *Server) DeliverLocal(dstKey string, msg chord.Message) bool {
	if s.members != nil && s.members.ownerOf(dstKey) != s.cfg.OverlayAddr {
		return false
	}
	if !s.cluster.Overlay().DeliverLocal(dstKey, msg) {
		return false
	}
	if s.store != nil {
		// Log after applying, before acking: an acked delivery is always
		// durable, and a delivery whose log append failed is re-sent by the
		// peer and absorbed idempotently.
		var w wire.Buffer
		if err := s.codec.Encode(&w, msg); err != nil {
			s.logf("daemon: encode delivery for wal: %v", err)
			return false
		}
		if err := s.store.LogDelivery(dstKey, w.Bytes()); err != nil {
			s.logf("daemon: log delivery to %s: %v", dstKey, err)
			return false
		}
	}
	return true
}

// HandleJoin implements transport.MembershipHandler: admit the joining
// process and return the authoritative post-join view. State movement is
// deliberately NOT triggered here — the joiner cannot accept handoffs
// until it has applied the new view, so it drives the hand-off phase
// itself (JoinOverlay gossips the view to every member, and each member
// exports on receipt).
func (s *Server) HandleJoin(addr string) (*wire.MemberView, error) {
	v, changed := s.members.add(addr)
	if changed {
		s.logf("daemon: admitted %s; membership v%d %v", addr, v.Version, v.Procs)
	}
	return v, nil
}

// HandleView implements transport.MembershipHandler: adopt the gossiped
// view if it wins the total order, then hand off every locally held node
// the view assigns elsewhere. The export also runs when the view merely
// re-confirms the current version: the join protocol gossips the same
// view to every member precisely to trigger exports after the joiner is
// ready, and re-exporting is idempotent (only non-empty misowned state
// moves). When adopting the winner orphaned a change this process
// originated (a concurrent same-version originator won the arbitration),
// the re-originated view is gossiped onward so the change lands in the
// winning lineage at a higher version.
func (s *Server) HandleView(v *wire.MemberView) uint64 {
	changed, cur, reissue := s.members.apply(v)
	if changed {
		s.logf("daemon: membership v%d %v", v.Version, v.Procs)
	}
	if reissue != nil {
		s.logf("daemon: re-originated concurrent change as v%d %v", reissue.Version, reissue.Procs)
		s.spread(reissue)
		if s.store != nil {
			if err := s.store.LogView(reissue); err != nil {
				s.logf("daemon: log reissued view: %v", err)
			}
		}
	}
	if s.store != nil && changed {
		if err := s.store.LogView(s.members.view()); err != nil {
			s.logf("daemon: log view: %v", err)
		}
	}
	if changed || v.Version == cur {
		s.exportMoved()
	}
	return cur
}

// JoinOverlay enters a running overlay through the member at seedAddr:
// request admission, adopt the returned view, then gossip it to every
// member so each hands over the nodes this process now owns. Call after
// the overlay transport is serving (StartOverlay), or inbound handoffs
// have nowhere to land.
func (s *Server) JoinOverlay(seedAddr string) error {
	if s.tr == nil {
		return fmt.Errorf("daemon: no overlay transport configured")
	}
	v, err := s.tr.SendJoin(seedAddr)
	if err != nil {
		return fmt.Errorf("daemon: join via %s: %w", seedAddr, err)
	}
	if _, err := s.applyAndSpread(v); err != nil {
		return err
	}
	return nil
}

// LeaveOverlay departs the overlay voluntarily: publish the view without
// this process first (so the remaining members accept the handoffs), then
// export every node held here to its new owner. The server keeps serving
// clients, but owns no nodes afterwards.
func (s *Server) LeaveOverlay() error {
	if s.tr == nil {
		return fmt.Errorf("daemon: no overlay transport configured")
	}
	v, ok := s.members.remove(s.cfg.OverlayAddr)
	if !ok {
		return fmt.Errorf("daemon: %s is not an overlay member", s.cfg.OverlayAddr)
	}
	if _, err := s.applyAndSpread(v); err != nil {
		return err
	}
	return nil
}

// applyAndSpread adopts v locally, gossips it to every other member of v,
// and exports locally held nodes the view assigns elsewhere. Gossip goes
// out before the local export so receivers' ownership gates accept the
// handoffs.
func (s *Server) applyAndSpread(v *wire.MemberView) (changed bool, err error) {
	changed, _, reissue := s.members.apply(v)
	firstErr := s.spread(v)
	if reissue != nil {
		s.logf("daemon: re-originated concurrent change as v%d %v", reissue.Version, reissue.Procs)
		if err := s.spread(reissue); err != nil && firstErr == nil {
			firstErr = err
		}
		v = reissue
	}
	if s.store != nil {
		if err := s.store.LogView(v); err != nil {
			s.logf("daemon: log view: %v", err)
		}
	}
	s.exportMoved()
	return changed, firstErr
}

// spread gossips v to every other member it lists.
func (s *Server) spread(v *wire.MemberView) error {
	var firstErr error
	for _, p := range v.Procs {
		if p == s.cfg.OverlayAddr {
			continue
		}
		if _, err := s.tr.SendView(p, v); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("daemon: gossip view v%d to %s: %w", v.Version, p, err)
		}
	}
	return firstErr
}

// exportMoved hands off every node whose owner under the current view is
// another process. Only nodes with non-empty movable state cross the
// wire; re-running after a partial failure is therefore cheap and safe.
// A handoff the new owner never acked is re-imported locally so state is
// never dropped on the floor — it re-exports on the next view event.
func (s *Server) exportMoved() {
	for _, n := range s.cluster.Overlay().Nodes() {
		owner := s.members.ownerOf(n.Key())
		if owner == s.cfg.OverlayAddr {
			continue
		}
		msg, ok := s.cluster.ExportHandoff(n)
		if !ok {
			continue
		}
		if !s.tr.Deliver(n, n, msg) {
			s.cluster.Overlay().DeliverLocal(n.Key(), msg)
			s.logf("daemon: handoff of %s to %s failed; state retained locally", n.Key(), owner)
		}
	}
}

// ParseSchemaDSL parses "R(A,B);S(D,E)" into a catalog.
func ParseSchemaDSL(dsl string) (*cqjoin.Catalog, error) {
	var schemas []*cqjoin.Schema
	for _, part := range strings.Split(dsl, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		open := strings.IndexByte(part, '(')
		if open <= 0 || !strings.HasSuffix(part, ")") {
			return nil, fmt.Errorf("daemon: bad schema %q, want Rel(A,B,...)", part)
		}
		name := strings.TrimSpace(part[:open])
		var attrs []string
		for _, a := range strings.Split(part[open+1:len(part)-1], ",") {
			attrs = append(attrs, strings.TrimSpace(a))
		}
		schema, err := cqjoin.NewSchema(name, attrs...)
		if err != nil {
			return nil, err
		}
		schemas = append(schemas, schema)
	}
	if len(schemas) == 0 {
		return nil, fmt.Errorf("daemon: empty schema")
	}
	return cqjoin.NewCatalog(schemas...)
}

func parseAlgorithm(name string) (cqjoin.Algorithm, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "sai":
		return cqjoin.SAI, nil
	case "daiq", "dai-q":
		return cqjoin.DAIQ, nil
	case "dait", "dai-t":
		return cqjoin.DAIT, nil
	case "daiv", "dai-v":
		return cqjoin.DAIV, nil
	default:
		return 0, fmt.Errorf("daemon: unknown algorithm %q", name)
	}
}

// algorithmName is the canonical protocol spelling, so "overlay-config"
// responses round-trip through parseAlgorithm.
func algorithmName(alg cqjoin.Algorithm) string {
	switch alg {
	case cqjoin.DAIQ:
		return "daiq"
	case cqjoin.DAIT:
		return "dait"
	case cqjoin.DAIV:
		return "daiv"
	default:
		return "sai"
	}
}

// ListenAndServe accepts connections until the listener is closed.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on an existing listener (tests pass a
// loopback listener with port 0).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.listening = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Shutdown is the graceful exit shared by SIGINT/SIGTERM and -leave: in
// multi-process mode the process departs the overlay first (handing every
// held node to the survivors), then client connections are closed and
// their handlers drained (Close), and finally the durable store takes its
// last checkpoint and closes — so every operation a client saw
// acknowledged is either handed off or in the state directory.
func (s *Server) Shutdown() error {
	var first error
	if s.members != nil && s.tr != nil {
		member := false
		for _, p := range s.members.view().Procs {
			if p == s.cfg.OverlayAddr {
				member = true
				break
			}
		}
		// A process that already left (the -leave op) has nothing to hand off.
		if member {
			if err := s.LeaveOverlay(); err != nil {
				first = err
			}
		}
	}
	if err := s.Close(); err != nil && first == nil {
		first = err
	}
	if s.store != nil {
		if err := s.store.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close stops accepting connections, closes every accepted client
// connection, waits for their handlers to drain, and shuts down the
// overlay transport if one is running.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listening
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	// Closing a connection unblocks its handler's readLine, so the drain
	// below terminates.
	for _, c := range conns {
		_ = c.Close()
	}
	s.connWG.Wait()
	if s.tr != nil {
		if terr := s.tr.Close(); err == nil {
			err = terr
		}
	}
	return err
}

// Addr returns the bound address once serving.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listening == nil {
		return nil
	}
	return s.listening.Addr()
}

// request is one protocol line from a client.
type request struct {
	Op       string        `json:"op"`
	Node     int           `json:"node"`
	SQL      string        `json:"sql,omitempty"`
	Relation string        `json:"relation,omitempty"`
	Values   []interface{} `json:"values,omitempty"`
	Key      string        `json:"key,omitempty"`
}

// maxLineBytes bounds one protocol line. Oversized lines get a structured
// error and the connection keeps serving; a Scanner would have bailed out
// silently (its token-too-long error was never checked).
const maxLineBytes = 1024 * 1024

var errLineTooLong = errors.New("daemon: line too long")

func (s *Server) handleConn(conn net.Conn) {
	defer s.connWG.Done()
	defer func() { _ = conn.Close() }()
	enc := json.NewEncoder(conn)
	lst := &listener{enc: enc}
	defer func() {
		s.mu.Lock()
		delete(s.listeners, lst)
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	br := bufio.NewReaderSize(conn, 64*1024)
	for {
		line, err := readLine(br, maxLineBytes)
		if err == errLineTooLong {
			lst.send(map[string]interface{}{
				"ok":    false,
				"error": fmt.Sprintf("line too long: limit is %d bytes", maxLineBytes),
			})
			continue
		}
		if err != nil {
			s.mu.Lock()
			closing := s.closed
			s.mu.Unlock()
			if err != io.EOF && !closing {
				s.logf("daemon: connection %s: read: %v", conn.RemoteAddr(), err)
				lst.send(map[string]interface{}{"ok": false, "error": "read: " + err.Error()})
			}
			return
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var req request
		if err := json.Unmarshal([]byte(line), &req); err != nil {
			lst.send(map[string]interface{}{"ok": false, "error": "bad json: " + err.Error()})
			continue
		}
		lst.send(s.dispatch(&req, lst))
	}
}

// readLine returns the next newline-terminated line (or a final
// unterminated one at EOF). A line exceeding max is drained fully and
// reported as errLineTooLong, leaving the reader at the next line.
func readLine(br *bufio.Reader, max int) (string, error) {
	var buf []byte
	for {
		chunk, err := br.ReadSlice('\n')
		buf = append(buf, chunk...)
		switch err {
		case nil:
			if len(buf) > max {
				return "", errLineTooLong
			}
			return string(buf), nil
		case bufio.ErrBufferFull:
			if len(buf) > max {
				if derr := drainLine(br); derr != nil {
					return "", derr
				}
				return "", errLineTooLong
			}
		case io.EOF:
			if len(buf) > max {
				return "", errLineTooLong
			}
			if len(buf) > 0 {
				return string(buf), nil
			}
			return "", io.EOF
		default:
			return "", err
		}
	}
}

// drainLine discards the remainder of the current line.
func drainLine(br *bufio.Reader) error {
	for {
		_, err := br.ReadSlice('\n')
		switch err {
		case nil:
			return nil
		case bufio.ErrBufferFull:
		default:
			return err
		}
	}
}

// localNode validates req.Node: in range, and — in multi-process mode —
// hosted by this process (subscribing or publishing through a node owned
// elsewhere would split that node's authoritative state).
func (s *Server) localNode(i int) (*cqjoin.Node, error) {
	if i < 0 || i >= s.cluster.Size() {
		return nil, fmt.Errorf("node %d out of range [0,%d)", i, s.cluster.Size())
	}
	n := s.cluster.Node(i)
	if s.members != nil {
		if o := s.members.ownerOf(n.Key()); o != s.cfg.OverlayAddr {
			return nil, fmt.Errorf("node %d (%s) is hosted by peer %s", i, n.Key(), o)
		}
	}
	return n, nil
}

// OwnsNode reports whether ring position i is hosted by this process
// under its current membership view. Single-process servers own every
// position. Load harnesses use it to route operations to the right
// daemon without probing for "hosted by peer" errors.
func (s *Server) OwnsNode(i int) bool {
	if i < 0 || i >= s.cluster.Size() {
		return false
	}
	if s.members == nil {
		return true
	}
	return s.members.ownerOf(s.cluster.Node(i).Key()) == s.cfg.OverlayAddr
}

func (s *Server) dispatch(req *request, lst *listener) map[string]interface{} {
	fail := func(err error) map[string]interface{} {
		return map[string]interface{}{"ok": false, "error": err.Error()}
	}
	switch req.Op {
	case "subscribe":
		node, err := s.localNode(req.Node)
		if err != nil {
			return fail(err)
		}
		q, err := node.Subscribe(req.SQL)
		if err != nil {
			return fail(err)
		}
		s.mu.Lock()
		s.queries[q.Key()] = queryRef{nodeKey: node.Key(), q: q}
		s.mu.Unlock()
		return map[string]interface{}{"ok": true, "key": q.Key()}
	case "subscribe-multi":
		node, err := s.localNode(req.Node)
		if err != nil {
			return fail(err)
		}
		mq, err := node.SubscribeMulti(req.SQL)
		if err != nil {
			return fail(err)
		}
		s.mu.Lock()
		s.queries[mq.Key()] = queryRef{nodeKey: node.Key(), mq: mq}
		s.mu.Unlock()
		return map[string]interface{}{"ok": true, "key": mq.Key()}
	case "unsubscribe":
		s.mu.Lock()
		ref, ok := s.queries[req.Key]
		delete(s.queries, req.Key)
		s.mu.Unlock()
		if !ok {
			return fail(fmt.Errorf("unknown query %q", req.Key))
		}
		node := s.cluster.NodeByKey(ref.nodeKey)
		if node == nil {
			return fail(fmt.Errorf("subscriber %s is offline", ref.nodeKey))
		}
		var err error
		if ref.mq != nil {
			err = node.UnsubscribeMulti(ref.mq)
		} else {
			err = node.Unsubscribe(ref.q)
		}
		if err != nil {
			return fail(err)
		}
		return map[string]interface{}{"ok": true}
	case "publish":
		node, err := s.localNode(req.Node)
		if err != nil {
			return fail(err)
		}
		vals := make([]interface{}, len(req.Values))
		copy(vals, req.Values)
		t, err := node.Publish(req.Relation, vals...)
		if err != nil {
			return fail(err)
		}
		return map[string]interface{}{"ok": true, "pubt": t.PubT()}
	case "listen":
		s.mu.Lock()
		s.listeners[lst] = struct{}{}
		s.mu.Unlock()
		return map[string]interface{}{"ok": true}
	case "stats":
		tr := s.cluster.Traffic()
		ring := chord.CheckRing(s.cluster.Overlay())
		eval := s.cluster.EvaluatorLoad()
		resp := map[string]interface{}{
			"ok":             true,
			"nodes":          s.cluster.Size(),
			"notifications":  len(s.cluster.Notifications()),
			"hops":           tr.TotalHops(),
			"messages":       tr.TotalMessages(),
			"bytes":          tr.TotalBytes(),
			"ring":           ring.String(),
			"ring_ok":        ring.OK(),
			"eval_load_max":  eval.Max,
			"eval_load_gini": eval.Gini,
			"hot_keys":       len(s.cluster.HotKeys()),
		}
		if s.reg != nil {
			resp["transport"] = s.reg.Snapshot()
		}
		if s.members != nil {
			v := s.members.view()
			resp["membership"] = map[string]interface{}{
				"version": v.Version,
				"procs":   v.Procs,
			}
		}
		return resp
	case "leave":
		if err := s.LeaveOverlay(); err != nil {
			return fail(err)
		}
		return map[string]interface{}{"ok": true}
	case "overlay-config":
		// Enough for `cqjoind -join` to build an identical overlay. Peers
		// reflects the live membership, not the boot-time list, so a
		// process can join after earlier joins and leaves.
		peers := s.cfg.Peers
		if s.members != nil {
			peers = s.members.view().Procs
		}
		return map[string]interface{}{
			"ok":            true,
			"nodes":         s.cfg.Nodes,
			"algorithm":     s.cfg.Algorithm,
			"schema":        s.cfg.SchemaDSL,
			"jfrt":          s.cfg.UseJFRT,
			"seed":          s.cfg.Seed,
			"hot_threshold": s.cfg.HotKeyThreshold,
			"hot_replicas":  s.cfg.HotKeyReplicas,
			"peers":         peers,
		}
	default:
		return fail(fmt.Errorf("unknown op %q", req.Op))
	}
}

// broadcast pushes one notification to every listening connection.
func (s *Server) broadcast(n cqjoin.Notification) {
	vals := make([]interface{}, len(n.Values))
	for i, v := range n.Values {
		if v.Kind() == cqjoin.NumberKind {
			vals[i] = v.Num()
		} else {
			vals[i] = v.Str()
		}
	}
	event := map[string]interface{}{
		"event":      "notification",
		"query":      n.QueryKey,
		"subscriber": n.Subscriber,
		"values":     vals,
	}
	s.mu.Lock()
	targets := make([]*listener, 0, len(s.listeners))
	for l := range s.listeners {
		targets = append(targets, l)
	}
	s.mu.Unlock()
	for _, l := range targets {
		l.send(event)
	}
}

func (l *listener) send(v interface{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	_ = l.enc.Encode(v)
}
