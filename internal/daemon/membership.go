package daemon

import (
	"sort"
	"sync"

	"cqjoin/internal/id"
	"cqjoin/internal/wire"
)

// Process membership for the multi-process overlay. Every daemon holds a
// versioned view — the sorted list of live process addresses — and derives
// node ownership from it by consistent hashing: each process occupies the
// ring position Hash(addr), and a node belongs to the process whose
// position is the clockwise successor of the node's identifier. The same
// view therefore yields the same owner map on every process, with no
// coordination beyond agreeing on the view, and a membership change moves
// only the arcs adjacent to the joining or leaving process.
//
// Views carry a deterministic total order: (Version, Hash(Origin)), the
// origin address itself as the final tie-break. A process adopts gossip
// iff it strictly succeeds what it holds, so replayed and reordered view
// frames are no-ops — and two changes originated concurrently at the same
// base version (two joiners admitted through different seed processes in
// the same instant) resolve to the same winner everywhere. The losing
// originator's change is not forgotten: the originator keeps the delta
// pending and re-originates it on top of any adopted view that does not
// reflect it, at a strictly higher version, so both concurrent changes
// land in a single linear version history (DESIGN.md §14.5).
type membership struct {
	mu      sync.Mutex
	self    string // this process's overlay address (origin of local changes)
	version uint64
	origin  string       // originator of the installed view
	procs   []string     // sorted addresses
	points  []ownerPoint // procs by ring position, ascending
	pending *pendingDelta
	history []viewStamp
}

// ownerPoint is one process's position on the identifier ring.
type ownerPoint struct {
	pos  id.ID
	addr string
}

// pendingDelta is a membership change this process originated and must
// see reflected in the winning view lineage before forgetting it.
type pendingDelta struct {
	add  bool   // admit addr (a join) vs depart addr (a leave)
	addr string // the address the change concerns
}

// viewStamp identifies one adopted view: its version and originator.
type viewStamp struct {
	version uint64
	origin  string
}

// maxViewHistory bounds the adopted-stamp history: convergence checks
// only ever need a recent suffix, and without a cap ongoing membership
// churn on a long-lived daemon grows the slice without bound.
const maxViewHistory = 64

// viewAfter reports whether view (version, origin) strictly succeeds the
// held (curVersion, curOrigin) in the total order.
func viewAfter(version uint64, origin string, curVersion uint64, curOrigin string) bool {
	if version != curVersion {
		return version > curVersion
	}
	if origin == curOrigin {
		return false
	}
	oh, ch := id.Hash(origin), id.Hash(curOrigin)
	if !oh.Equal(ch) {
		return ch.Less(oh)
	}
	return origin > curOrigin
}

// newMembership builds the initial view held by the process at self.
// Version 1 marks a configured (non-empty) member list; a process joining
// an existing overlay starts at version 0 with the current members, so
// any authoritative view it is handed applies. The boot view has no
// originator: every configured process holds an identical stamp.
func newMembership(self string, procs []string, version uint64) *membership {
	m := &membership{self: self}
	m.install(version, "", procs)
	return m
}

// install replaces the view and stamps the history. Callers hold m.mu (or
// own m exclusively).
func (m *membership) install(version uint64, origin string, procs []string) {
	sorted := append([]string(nil), procs...)
	sort.Strings(sorted)
	points := make([]ownerPoint, len(sorted))
	for i, p := range sorted {
		points[i] = ownerPoint{pos: id.Hash(p), addr: p}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].pos.Less(points[j].pos) })
	m.version = version
	m.origin = origin
	m.procs = sorted
	m.points = points
	m.history = append(m.history, viewStamp{version: version, origin: origin})
	if n := len(m.history); n > maxViewHistory {
		m.history = append(m.history[:0], m.history[n-maxViewHistory:]...)
	}
}

// viewLocked copies the current view. Callers hold m.mu.
func (m *membership) viewLocked() *wire.MemberView {
	return &wire.MemberView{Version: m.version, Origin: m.origin, Procs: append([]string(nil), m.procs...)}
}

// view returns a copy of the current view for gossiping.
func (m *membership) view() *wire.MemberView {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.viewLocked()
}

// currentVersion returns the view version.
func (m *membership) currentVersion() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// stamps returns the retained adopted-view history — the most recent
// maxViewHistory stamps (for convergence checks).
func (m *membership) stamps() []viewStamp {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]viewStamp(nil), m.history...)
}

// reflects reports whether procs embodies the pending change.
func (p *pendingDelta) reflects(procs []string) bool {
	for _, q := range procs {
		if q == p.addr {
			return p.add
		}
	}
	return !p.add
}

// apply adopts v iff it strictly succeeds the held view in the total
// order. It reports whether the view changed and the version held
// afterwards. When the adopted view fails to reflect a change this
// process originated (a concurrent originator won the same-version
// arbitration), the change is re-originated on top of the winner at a
// strictly higher version and returned as reissue — the caller must
// gossip it. The pending change is dropped instead when the adopted view
// already reflects it, or when the adopted view was originated by the
// very address the change concerns: a process that originates views
// speaks for its own membership, and resurrecting it against its will
// (e.g. re-adding a joiner that has since departed) would fork the
// lineage it started.
func (m *membership) apply(v *wire.MemberView) (changed bool, version uint64, reissue *wire.MemberView) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !viewAfter(v.Version, v.Origin, m.version, m.origin) {
		return false, m.version, nil
	}
	m.install(v.Version, v.Origin, v.Procs)
	if p := m.pending; p != nil {
		switch {
		case p.reflects(m.procs) || v.Origin == p.addr:
			m.pending = nil
		default:
			procs := make([]string, 0, len(m.procs)+1)
			for _, q := range m.procs {
				if q != p.addr {
					procs = append(procs, q)
				}
			}
			if p.add {
				procs = append(procs, p.addr)
			}
			m.install(m.version+1, m.self, procs)
			reissue = m.viewLocked()
		}
	}
	return true, m.version, reissue
}

// add admits addr and returns the resulting view. Re-admitting a current
// member returns the unchanged view, so replayed join frames are no-ops.
// The admission is held pending until a winning view reflects it.
func (m *membership) add(addr string) (*wire.MemberView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.procs {
		if p == addr {
			return m.viewLocked(), false
		}
	}
	m.install(m.version+1, m.self, append(append([]string(nil), m.procs...), addr))
	m.pending = &pendingDelta{add: true, addr: addr}
	return m.viewLocked(), true
}

// remove departs addr and returns the resulting view; ok is false when
// addr was not a member. The departure is held pending until a winning
// view reflects it.
func (m *membership) remove(addr string) (*wire.MemberView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rest := make([]string, 0, len(m.procs))
	for _, p := range m.procs {
		if p != addr {
			rest = append(rest, p)
		}
	}
	if len(rest) == len(m.procs) {
		return nil, false
	}
	m.install(m.version+1, m.self, rest)
	m.pending = &pendingDelta{add: false, addr: addr}
	return m.viewLocked(), true
}

// ownerOf maps a node key to the address of its owning process: the
// clockwise successor of Hash(nodeKey) among the member positions. Empty
// when the view has no members.
func (m *membership) ownerOf(nodeKey string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.points) == 0 {
		return ""
	}
	pos := id.Hash(nodeKey)
	i := sort.Search(len(m.points), func(i int) bool { return !m.points[i].pos.Less(pos) })
	if i == len(m.points) {
		i = 0 // wrapped past the highest position
	}
	return m.points[i].addr
}
