package daemon

import (
	"sort"
	"sync"

	"cqjoin/internal/id"
	"cqjoin/internal/wire"
)

// Process membership for the multi-process overlay. Every daemon holds a
// versioned view — the sorted list of live process addresses — and derives
// node ownership from it by consistent hashing: each process occupies the
// ring position Hash(addr), and a node belongs to the process whose
// position is the clockwise successor of the node's identifier. The same
// view therefore yields the same owner map on every process, with no
// coordination beyond agreeing on the view, and a membership change moves
// only the arcs adjacent to the joining or leaving process.
//
// Views are totally ordered by version. A process adopts gossip iff it is
// strictly newer than what it holds, so replayed and reordered view frames
// are no-ops. Changes originate at one process (the join seed, or the
// leaver) which increments the version; concurrent originators are not
// arbitrated — the daemon protocol drives joins and leaves one at a time.
type membership struct {
	mu      sync.Mutex
	version uint64
	procs   []string     // sorted addresses
	points  []ownerPoint // procs by ring position, ascending
}

// ownerPoint is one process's position on the identifier ring.
type ownerPoint struct {
	pos  id.ID
	addr string
}

// newMembership builds the initial view. Version 1 marks a configured
// (non-empty) member list; a process joining an existing overlay starts at
// version 0 with the current members, so any authoritative view it is
// handed applies.
func newMembership(procs []string, version uint64) *membership {
	m := &membership{}
	m.install(version, procs)
	return m
}

// install replaces the view. Callers hold m.mu (or own m exclusively).
func (m *membership) install(version uint64, procs []string) {
	sorted := append([]string(nil), procs...)
	sort.Strings(sorted)
	points := make([]ownerPoint, len(sorted))
	for i, p := range sorted {
		points[i] = ownerPoint{pos: id.Hash(p), addr: p}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].pos.Less(points[j].pos) })
	m.version = version
	m.procs = sorted
	m.points = points
}

// view returns a copy of the current view for gossiping.
func (m *membership) view() *wire.MemberView {
	m.mu.Lock()
	defer m.mu.Unlock()
	return &wire.MemberView{Version: m.version, Procs: append([]string(nil), m.procs...)}
}

// currentVersion returns the view version.
func (m *membership) currentVersion() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// apply adopts v iff it is strictly newer. It reports whether the view
// changed and the version held afterwards.
func (m *membership) apply(v *wire.MemberView) (changed bool, version uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v.Version <= m.version {
		return false, m.version
	}
	m.install(v.Version, v.Procs)
	return true, m.version
}

// add admits addr and returns the resulting view. Re-admitting a current
// member returns the unchanged view, so replayed join frames are no-ops.
func (m *membership) add(addr string) (*wire.MemberView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.procs {
		if p == addr {
			return &wire.MemberView{Version: m.version, Procs: append([]string(nil), m.procs...)}, false
		}
	}
	m.install(m.version+1, append(append([]string(nil), m.procs...), addr))
	return &wire.MemberView{Version: m.version, Procs: append([]string(nil), m.procs...)}, true
}

// remove departs addr and returns the resulting view; ok is false when
// addr was not a member.
func (m *membership) remove(addr string) (*wire.MemberView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rest := make([]string, 0, len(m.procs))
	for _, p := range m.procs {
		if p != addr {
			rest = append(rest, p)
		}
	}
	if len(rest) == len(m.procs) {
		return nil, false
	}
	m.install(m.version+1, rest)
	return &wire.MemberView{Version: m.version, Procs: append([]string(nil), m.procs...)}, true
}

// ownerOf maps a node key to the address of its owning process: the
// clockwise successor of Hash(nodeKey) among the member positions. Empty
// when the view has no members.
func (m *membership) ownerOf(nodeKey string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.points) == 0 {
		return ""
	}
	pos := id.Hash(nodeKey)
	i := sort.Search(len(m.points), func(i int) bool { return !m.points[i].pos.Less(pos) })
	if i == len(m.points) {
		i = 0 // wrapped past the highest position
	}
	return m.points[i].addr
}
