package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// WireSyncAnalyzer keeps codec.go and wiresize.go from drifting apart.
// Every encoder arm (a `case` in EncodeMessage or a helper like
// encodeRewritten) and every size arm (a `case` in wireSize or a helper
// like sizeRewritten) carries a directive in its doc position:
//
//	//wire:field enc queryMsg Q Attr Side Replica
//	case queryMsg:
//
//	//wire:field size queryMsg Q Attr Side Replica
//	case queryMsg:
//
// The analyzer then proves three things per message type:
//
//  1. the code matches its own directive — on the enc side the fields
//     accessed through the case/parameter variable, in source order, must
//     equal the declared list exactly (declared order IS wire order); on
//     the size side the accessed set must equal the declared set (size
//     terms sum, so order is free);
//  2. the two directives pair up — same type, identical field lists, one
//     of each side;
//  3. nothing escapes annotation — in any function containing at least
//     one case-attached directive, every single-type case arm must carry
//     one, so a new message type cannot be added to the codec silently.
//
// Deleting either directive of a pair, adding an encoded field without
// declaring it, or declaring a field without a size term all fail the
// build (acceptance criteria in ISSUE 4).
var WireSyncAnalyzer = &Analyzer{
	Name: "wiresync",
	Doc:  "pair //wire:field directives between encoders and size functions; flag drift either way",
	Run:  runWireSync,
}

const wireFieldPrefix = "//wire:field "

type wireDirective struct {
	side   string // "enc" or "size"
	typ    string // message/struct type name the arm handles
	fields []string
	pos    token.Pos
	file   string // filename the directive lives in
	line   int    // line of the directive comment
	node   ast.Node
}

// reportPos anchors diagnostics about a directive on the case arm or
// function it annotates (falling back to the comment itself when the
// directive attached to nothing).
func (d *wireDirective) reportPos() token.Pos {
	if d.node != nil {
		return d.node.Pos()
	}
	return d.pos
}

func runWireSync(pass *Pass) error {
	var directives []*wireDirective
	byLoc := make(map[string]*wireDirective) // "file:line" -> directive
	for _, f := range pass.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, wireFieldPrefix)
				if !ok {
					continue
				}
				fields := directiveFields(rest)
				if len(fields) < 3 || (fields[0] != "enc" && fields[0] != "size") {
					pass.Reportf(c.Pos(), "malformed //wire:field: want \"//wire:field <enc|size> <Type> <Field...>\"")
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				d := &wireDirective{
					side: fields[0], typ: fields[1], fields: fields[2:],
					pos: c.Pos(), file: pos.Filename, line: pos.Line,
				}
				directives = append(directives, d)
				byLoc[fmt.Sprintf("%s:%d", d.file, d.line)] = d
			}
		}
	}
	if len(directives) == 0 {
		return nil
	}

	// Attach each directive to the case arm or function declared on the
	// next line, check the arm's body against the declared field list, and
	// enforce that annotated functions have no unannotated arms.
	attach := func(node ast.Node) *wireDirective {
		pos := pass.Fset.Position(node.Pos())
		return byLoc[fmt.Sprintf("%s:%d", pos.Filename, pos.Line-1)]
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if d := attach(fd); d != nil {
				d.node = fd
				subject := paramNameForType(fd, d.typ)
				if subject == "" {
					pass.Reportf(d.reportPos(), "//wire:field %s %s: no parameter of type %s on %s", d.side, d.typ, d.typ, fd.Name.Name)
				} else {
					checkArm(pass, d, fd.Body, subject)
				}
			}
			// Case arms inside this function.
			annotated := false
			var caseArms []*ast.CaseClause
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sw, ok := n.(*ast.TypeSwitchStmt)
				if !ok {
					return true
				}
				subject := typeSwitchSubject(sw)
				for _, stmt := range sw.Body.List {
					cc := stmt.(*ast.CaseClause)
					caseArms = append(caseArms, cc)
					if d := attach(cc); d != nil {
						annotated = true
						d.node = cc
						if len(cc.List) != 1 {
							pass.Reportf(d.reportPos(), "//wire:field on a case arm with %d types; annotate single-type arms only", len(cc.List))
							continue
						}
						if got := typeName(cc.List[0]); got != d.typ {
							pass.Reportf(d.reportPos(), "//wire:field declares type %s but the case arm handles %s", d.typ, got)
							continue
						}
						if subject == "" {
							pass.Reportf(d.reportPos(), "//wire:field needs a bound type switch (switch m := x.(type))")
							continue
						}
						checkArm(pass, d, cc, subject)
					}
				}
				return true
			})
			if annotated {
				for _, cc := range caseArms {
					if cc.List == nil {
						continue // default arm (the codec's error path)
					}
					if len(cc.List) == 1 && attach(cc) == nil {
						pass.Reportf(cc.Pos(), "case %s has no //wire:field directive in an annotated codec function", typeName(cc.List[0]))
					}
				}
			}
		}
	}

	// Pair enc and size directives per type.
	paired := make(map[string][2]*wireDirective) // typ -> [enc, size]
	for _, d := range directives {
		if d.node == nil {
			pass.Reportf(d.pos, "//wire:field %s %s is not attached to a case arm or function (it must sit on the line directly above one)", d.side, d.typ)
			continue
		}
		entry := paired[d.typ]
		i := 0
		if d.side == "size" {
			i = 1
		}
		if entry[i] != nil {
			pass.Reportf(d.reportPos(), "duplicate //wire:field %s %s (first at %s:%d)", d.side, d.typ, entry[i].file, entry[i].line)
			continue
		}
		entry[i] = d
		paired[d.typ] = entry
	}
	for typ, pair := range paired {
		enc, size := pair[0], pair[1]
		switch {
		case enc == nil:
			pass.Reportf(size.reportPos(), "type %s has a size directive but no encoder //wire:field enc %s: codec.go and wiresize.go have drifted", typ, typ)
		case size == nil:
			pass.Reportf(enc.reportPos(), "type %s has an encoder directive but no size //wire:field size %s: every encoded field needs a size term in wiresize.go", typ, typ)
		case strings.Join(enc.fields, " ") != strings.Join(size.fields, " "):
			pass.Reportf(size.reportPos(), "wire fields of %s disagree: encoder declares [%s], size declares [%s]",
				typ, strings.Join(enc.fields, " "), strings.Join(size.fields, " "))
		}
	}
	return nil
}

// checkArm compares the fields the arm's body actually touches through
// subject against the directive's declared list.
func checkArm(pass *Pass, d *wireDirective, body ast.Node, subject string) {
	got := accessedFields(body, subject)
	if d.side == "enc" {
		// Declared order is the wire order; the encoder must touch the
		// fields in exactly that order.
		if strings.Join(got, " ") != strings.Join(d.fields, " ") {
			pass.Reportf(d.reportPos(), "%s encoder writes fields [%s] but //wire:field declares [%s]",
				d.typ, strings.Join(got, " "), strings.Join(d.fields, " "))
		}
		return
	}
	declared := make(map[string]bool, len(d.fields))
	for _, f := range d.fields {
		declared[f] = true
	}
	seen := make(map[string]bool, len(got))
	for _, f := range got {
		seen[f] = true
		if !declared[f] {
			pass.Reportf(d.reportPos(), "%s size function reads field %s that //wire:field does not declare", d.typ, f)
		}
	}
	for _, f := range d.fields {
		if !seen[f] {
			pass.Reportf(d.reportPos(), "%s size function has no size term for declared field %s", d.typ, f)
		}
	}
}

// accessedFields returns the names selected from subject (fields or
// methods) in source order, first occurrence only.
func accessedFields(body ast.Node, subject string) []string {
	var out []string
	seen := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == subject && !seen[sel.Sel.Name] {
			seen[sel.Sel.Name] = true
			out = append(out, sel.Sel.Name)
		}
		return true
	})
	return out
}

// typeSwitchSubject returns the ident bound by `switch m := x.(type)`, or
// "" for the unbound form.
func typeSwitchSubject(sw *ast.TypeSwitchStmt) string {
	assign, ok := sw.Assign.(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 {
		return ""
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return ""
	}
	return id.Name
}

// typeName renders the final identifier of a type expression: rewritten,
// *rewritten and *query.MultiQuery all yield their bare type name.
func typeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return typeName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// paramNameForType finds the parameter of fd whose type's final
// identifier matches typ, returning the parameter name.
func paramNameForType(fd *ast.FuncDecl, typ string) string {
	for _, field := range fd.Type.Params.List {
		if typeName(field.Type) == typ {
			for _, name := range field.Names {
				return name.Name
			}
		}
	}
	return ""
}
