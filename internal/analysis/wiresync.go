package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WireSyncAnalyzer keeps codec.go and wiresize.go — and since cqlint v2,
// the decode side — from drifting apart. Every encoder arm (a `case` in
// EncodeMessage or a helper like encodeRewritten), every size arm, and
// every decoder arm (a `case` in DecodeMessage's tag switch or a helper
// like decodeRewritten) carries a directive in its doc position:
//
//	//wire:field enc queryMsg Q Attr Side Replica
//	case queryMsg:
//
//	//wire:field size queryMsg Q Attr Side Replica
//	case queryMsg:
//
//	//wire:field dec queryMsg Q Attr Side Replica
//	case tagQuery:
//
// The analyzer then proves per message type:
//
//  1. the code matches its own directive — on the enc side the fields
//     accessed through the case/parameter variable, in source order, must
//     equal the declared list exactly (declared order IS wire order); on
//     the size side the accessed set must equal the declared set (size
//     terms sum, so order is free); on the dec side the keyed composite
//     literal of the type (or the fields assigned through a `var x T`
//     subject), in source order, must equal the declared list exactly —
//     decode order IS wire order too;
//  2. the directives pair up — same type, identical field lists, one of
//     each side. The dec side is required only in packages that have
//     adopted dec directives (at least one present), so enc/size-only
//     packages keep working;
//  3. nothing escapes annotation — in any switch containing at least one
//     attached directive, every non-default arm must carry one (decode
//     arms may instead delegate to a dec-annotated helper), so a new
//     message type cannot be added to the codec silently.
//
// Deleting any directive of a triple, adding an encoded field without
// declaring it, or decoding fields in a different order than the encoder
// writes them all fail the build.
var WireSyncAnalyzer = &Analyzer{
	Name: "wiresync",
	Doc:  "pair //wire:field directives between encoders, size functions and decoders; flag drift any way",
	Run:  runWireSync,
}

const wireFieldPrefix = "//wire:field "

// sideIndex maps a directive side to its slot in a pairing triple.
var sideIndex = map[string]int{"enc": 0, "size": 1, "dec": 2}

type wireDirective struct {
	side   string // "enc", "size" or "dec"
	typ    string // message/struct type name the arm handles
	fields []string
	pos    token.Pos
	file   string // filename the directive lives in
	line   int    // line of the directive comment
	node   ast.Node
	// nodeKind records what the directive attached to: "func",
	// "typearm" (type-switch case) or "valuearm" (value-switch case).
	nodeKind string
}

// reportPos anchors diagnostics about a directive on the case arm or
// function it annotates (falling back to the comment itself when the
// directive attached to nothing).
func (d *wireDirective) reportPos() token.Pos {
	if d.node != nil {
		return d.node.Pos()
	}
	return d.pos
}

// wireIndex is the parsed and attached directive set of one package,
// shared between wiresync (pairing and body checks) and wiretag (tag
// coverage).
type wireIndex struct {
	directives []*wireDirective
	byNode     map[ast.Node]*wireDirective
	// decFuncs are the function objects whose declaration carries a dec
	// directive; a decode arm may delegate to one instead of carrying
	// its own directive.
	decFuncs map[types.Object]*wireDirective
	// annotatedTypeSwitches / annotatedValueSwitches hold the switches
	// containing at least one attached directive, for coverage checks.
	annotatedTypeSwitches  map[*ast.TypeSwitchStmt]bool
	annotatedValueSwitches map[*ast.SwitchStmt]bool
}

// buildWireIndex parses every //wire:field directive in the package and
// attaches each to the function declaration, type-switch arm or
// value-switch arm beginning on the line directly below it. Malformed or
// misplaced directives are reported only when report is set (wiresync
// owns those findings; wiretag reuses the index silently).
func buildWireIndex(pass *Pass, report bool) *wireIndex {
	idx := &wireIndex{
		byNode:                 make(map[ast.Node]*wireDirective),
		decFuncs:               make(map[types.Object]*wireDirective),
		annotatedTypeSwitches:  make(map[*ast.TypeSwitchStmt]bool),
		annotatedValueSwitches: make(map[*ast.SwitchStmt]bool),
	}
	reportf := func(pos token.Pos, format string, args ...any) {
		if report {
			pass.Reportf(pos, format, args...)
		}
	}
	byLoc := make(map[string]*wireDirective) // "file:line" -> directive
	for _, f := range pass.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, wireFieldPrefix)
				if !ok {
					continue
				}
				fields := directiveFields(rest)
				if len(fields) < 3 || sideIndex[fields[0]] == 0 && fields[0] != "enc" {
					reportf(c.Pos(), "malformed //wire:field: want \"//wire:field <enc|size|dec> <Type> <Field...>\"")
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				d := &wireDirective{
					side: fields[0], typ: fields[1], fields: fields[2:],
					pos: c.Pos(), file: pos.Filename, line: pos.Line,
				}
				idx.directives = append(idx.directives, d)
				byLoc[fmt.Sprintf("%s:%d", d.file, d.line)] = d
			}
		}
	}
	if len(idx.directives) == 0 {
		return idx
	}

	attach := func(node ast.Node) *wireDirective {
		pos := pass.Fset.Position(node.Pos())
		return byLoc[fmt.Sprintf("%s:%d", pos.Filename, pos.Line-1)]
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if d := attach(fd); d != nil {
				d.node, d.nodeKind = fd, "func"
				idx.byNode[fd] = d
				if d.side == "dec" {
					if obj := pass.Pkg.Info.Defs[fd.Name]; obj != nil {
						idx.decFuncs[obj] = d
					}
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch sw := n.(type) {
				case *ast.TypeSwitchStmt:
					for _, stmt := range sw.Body.List {
						cc := stmt.(*ast.CaseClause)
						if d := attach(cc); d != nil {
							d.node, d.nodeKind = cc, "typearm"
							idx.byNode[cc] = d
							idx.annotatedTypeSwitches[sw] = true
							if d.side == "dec" {
								reportf(d.reportPos(), "//wire:field dec belongs on a decode (value) switch arm or a decode helper, not a type-switch arm")
							}
						}
					}
				case *ast.SwitchStmt:
					for _, stmt := range sw.Body.List {
						cc, ok := stmt.(*ast.CaseClause)
						if !ok {
							continue
						}
						if d := attach(cc); d != nil {
							d.node, d.nodeKind = cc, "valuearm"
							idx.byNode[cc] = d
							idx.annotatedValueSwitches[sw] = true
							if d.side != "dec" {
								reportf(d.reportPos(), "//wire:field %s belongs on an encoder/size arm, not a decode switch arm (use dec)", d.side)
							}
						}
					}
				}
				return true
			})
		}
	}
	return idx
}

func runWireSync(pass *Pass) error {
	idx := buildWireIndex(pass, true)
	if len(idx.directives) == 0 {
		return nil
	}
	hasDec := false
	for _, d := range idx.directives {
		if d.side == "dec" && d.node != nil {
			hasDec = true
		}
	}

	// Body checks per attached directive.
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if d := idx.byNode[fd]; d != nil {
				if d.side == "dec" {
					checkDecBody(pass, d, fd.Body)
				} else {
					subject := paramNameForType(fd, d.typ)
					if subject == "" {
						pass.Reportf(d.reportPos(), "//wire:field %s %s: no parameter of type %s on %s", d.side, d.typ, d.typ, fd.Name.Name)
					} else {
						checkArm(pass, d, fd.Body, subject)
					}
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch sw := n.(type) {
				case *ast.TypeSwitchStmt:
					subject := typeSwitchSubject(sw)
					annotated := idx.annotatedTypeSwitches[sw]
					for _, stmt := range sw.Body.List {
						cc := stmt.(*ast.CaseClause)
						d := idx.byNode[cc]
						if d == nil {
							if annotated && len(cc.List) == 1 {
								pass.Reportf(cc.Pos(), "case %s has no //wire:field directive in an annotated codec function", typeName(cc.List[0]))
							}
							continue
						}
						if d.side == "dec" {
							continue // misplacement already reported by the index
						}
						if len(cc.List) != 1 {
							pass.Reportf(d.reportPos(), "//wire:field on a case arm with %d types; annotate single-type arms only", len(cc.List))
							continue
						}
						if got := typeName(cc.List[0]); got != d.typ {
							pass.Reportf(d.reportPos(), "//wire:field declares type %s but the case arm handles %s", d.typ, got)
							continue
						}
						if subject == "" {
							pass.Reportf(d.reportPos(), "//wire:field needs a bound type switch (switch m := x.(type))")
							continue
						}
						checkArm(pass, d, cc, subject)
					}
				case *ast.SwitchStmt:
					if !idx.annotatedValueSwitches[sw] {
						return true
					}
					for _, stmt := range sw.Body.List {
						cc, ok := stmt.(*ast.CaseClause)
						if !ok || cc.List == nil {
							continue // default arm (the codec's error path)
						}
						d := idx.byNode[cc]
						if d == nil {
							if !armDelegatesToDecFunc(pass, cc, idx, "") {
								pass.Reportf(cc.Pos(), "decode arm has no //wire:field dec directive (directly or via a dec-annotated helper) in an annotated decode switch")
							}
							continue
						}
						if d.side == "dec" {
							checkDecBody(pass, d, cc)
						}
					}
				}
				return true
			})
		}
	}

	// Pair enc, size and dec directives per type.
	paired := make(map[string][3]*wireDirective)
	for _, d := range idx.directives {
		if d.node == nil {
			pass.Reportf(d.pos, "//wire:field %s %s is not attached to a case arm or function (it must sit on the line directly above one)", d.side, d.typ)
			continue
		}
		entry := paired[d.typ]
		i := sideIndex[d.side]
		if entry[i] != nil {
			pass.Reportf(d.reportPos(), "duplicate //wire:field %s %s (first at %s:%d)", d.side, d.typ, entry[i].file, entry[i].line)
			continue
		}
		entry[i] = d
		paired[d.typ] = entry
	}
	for typ, triple := range paired {
		enc, size, dec := triple[0], triple[1], triple[2]
		switch {
		case enc == nil && size != nil:
			pass.Reportf(size.reportPos(), "type %s has a size directive but no encoder //wire:field enc %s: codec.go and wiresize.go have drifted", typ, typ)
		case enc == nil && dec != nil:
			pass.Reportf(dec.reportPos(), "type %s has a decoder directive but no encoder //wire:field enc %s: the decode side has drifted from the codec", typ, typ)
		case size == nil:
			pass.Reportf(enc.reportPos(), "type %s has an encoder directive but no size //wire:field size %s: every encoded field needs a size term in wiresize.go", typ, typ)
		case strings.Join(enc.fields, " ") != strings.Join(size.fields, " "):
			pass.Reportf(size.reportPos(), "wire fields of %s disagree: encoder declares [%s], size declares [%s]",
				typ, strings.Join(enc.fields, " "), strings.Join(size.fields, " "))
		case dec == nil && hasDec:
			pass.Reportf(enc.reportPos(), "type %s has encoder and size directives but no decoder //wire:field dec %s: annotate its DecodeMessage arm or decode helper", typ, typ)
		case dec != nil && strings.Join(enc.fields, " ") != strings.Join(dec.fields, " "):
			pass.Reportf(dec.reportPos(), "wire fields of %s disagree: encoder declares [%s], decoder declares [%s]",
				typ, strings.Join(enc.fields, " "), strings.Join(dec.fields, " "))
		}
	}
	return nil
}

// armDelegatesToDecFunc reports whether a decode arm's body calls a
// function carrying a //wire:field dec directive (for wantTyp when
// non-empty). Pure-delegation arms like `case tagHandoff: return
// decodeHandoff(r, catalog)` are covered by the helper's directive.
func armDelegatesToDecFunc(pass *Pass, cc *ast.CaseClause, idx *wireIndex, wantTyp string) bool {
	found := false
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Pkg.Info, call)
			if fn == nil {
				return true
			}
			if d, ok := idx.decFuncs[fn]; ok && (wantTyp == "" || d.typ == wantTyp) {
				found = true
			}
			return !found
		})
		if found {
			break
		}
	}
	return found
}

// checkDecBody verifies a decode arm or helper against its directive.
// The subject is resolved in order of preference: a keyed composite
// literal of the type (decode order IS wire order, so the keys must
// match the declared list exactly), else a `var x T` local whose
// accessed fields are compared in source order, else the check is
// pairing-only (arms that re-parse, like decodeMultiQuery, or that only
// delegate).
func checkDecBody(pass *Pass, d *wireDirective, body ast.Node) {
	if keys, ok := keyedCompositeFields(body, d.typ); ok {
		if strings.Join(keys, " ") != strings.Join(d.fields, " ") {
			pass.Reportf(d.reportPos(), "%s decoder fills fields [%s] but //wire:field declares [%s]; decode order must match the encoder's wire order",
				d.typ, strings.Join(keys, " "), strings.Join(d.fields, " "))
		}
		return
	}
	if subject := varDeclSubject(body, d.typ); subject != "" {
		got := accessedFields(body, subject)
		if strings.Join(got, " ") != strings.Join(d.fields, " ") {
			pass.Reportf(d.reportPos(), "%s decoder fills fields [%s] but //wire:field declares [%s]; decode order must match the encoder's wire order",
				d.typ, strings.Join(got, " "), strings.Join(d.fields, " "))
		}
	}
}

// keyedCompositeFields finds the first fully keyed composite literal of
// typ inside body and returns its keys in source order.
func keyedCompositeFields(body ast.Node, typ string) ([]string, bool) {
	var keys []string
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		cl, ok := n.(*ast.CompositeLit)
		if !ok || cl.Type == nil || typeName(cl.Type) != typ || len(cl.Elts) == 0 {
			return true
		}
		var ks []string
		for _, elt := range cl.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				return true // positional literal: not checkable here
			}
			if id, ok := kv.Key.(*ast.Ident); ok {
				ks = append(ks, id.Name)
			}
		}
		keys, found = ks, true
		return false
	})
	return keys, found
}

// varDeclSubject finds `var x T` inside body for type T and returns x.
func varDeclSubject(body ast.Node, typ string) string {
	subject := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if subject != "" {
			return false
		}
		gd, ok := n.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || vs.Type == nil || typeName(vs.Type) != typ || len(vs.Names) != 1 {
				continue
			}
			subject = vs.Names[0].Name
		}
		return true
	})
	return subject
}

// checkArm compares the fields the arm's body actually touches through
// subject against the directive's declared list.
func checkArm(pass *Pass, d *wireDirective, body ast.Node, subject string) {
	got := accessedFields(body, subject)
	if d.side == "enc" {
		// Declared order is the wire order; the encoder must touch the
		// fields in exactly that order.
		if strings.Join(got, " ") != strings.Join(d.fields, " ") {
			pass.Reportf(d.reportPos(), "%s encoder writes fields [%s] but //wire:field declares [%s]",
				d.typ, strings.Join(got, " "), strings.Join(d.fields, " "))
		}
		return
	}
	declared := make(map[string]bool, len(d.fields))
	for _, f := range d.fields {
		declared[f] = true
	}
	seen := make(map[string]bool, len(got))
	for _, f := range got {
		seen[f] = true
		if !declared[f] {
			pass.Reportf(d.reportPos(), "%s size function reads field %s that //wire:field does not declare", d.typ, f)
		}
	}
	for _, f := range d.fields {
		if !seen[f] {
			pass.Reportf(d.reportPos(), "%s size function has no size term for declared field %s", d.typ, f)
		}
	}
}

// accessedFields returns the names selected from subject (fields or
// methods) in source order, first occurrence only.
func accessedFields(body ast.Node, subject string) []string {
	var out []string
	seen := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == subject && !seen[sel.Sel.Name] {
			seen[sel.Sel.Name] = true
			out = append(out, sel.Sel.Name)
		}
		return true
	})
	return out
}

// typeSwitchSubject returns the ident bound by `switch m := x.(type)`, or
// "" for the unbound form.
func typeSwitchSubject(sw *ast.TypeSwitchStmt) string {
	assign, ok := sw.Assign.(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 {
		return ""
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return ""
	}
	return id.Name
}

// typeName renders the final identifier of a type expression: rewritten,
// *rewritten and *query.MultiQuery all yield their bare type name.
func typeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return typeName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.UnaryExpr:
		return typeName(e.X)
	}
	return ""
}

// paramNameForType finds the parameter of fd whose type's final
// identifier matches typ, returning the parameter name.
func paramNameForType(fd *ast.FuncDecl, typ string) string {
	for _, field := range fd.Type.Params.List {
		if typeName(field.Type) == typ {
			for _, name := range field.Names {
				return name.Name
			}
		}
	}
	return ""
}
