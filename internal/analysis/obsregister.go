package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// registryMethods are the obs.Registry registration entry points.
var registryMethods = map[string]bool{
	"cqjoin/internal/obs.Registry.Counter":    true,
	"cqjoin/internal/obs.Registry.Gauge":      true,
	"cqjoin/internal/obs.Registry.Histogram":  true,
	"cqjoin/internal/obs.Registry.CounterVec": true,
}

// ObsRegisterAnalyzer enforces the metric-registration discipline:
//
//   - the metric name must be a compile-time constant, so the name space
//     of a run is closed and Snapshot/benchdiff keys are stable;
//   - histogram bounds must be constants or a single spread of a
//     package-level variable (the shared bucket tables), not values
//     computed at the call site;
//   - registration must not sit inside a loop (Registry methods take a
//     registry-wide lock and intern by name — a registration in a hot loop
//     is a lock acquisition per iteration for a value that never changes);
//   - each metric name is registered at exactly one call site per package,
//     so a metric's meaning has a single owner.
var ObsRegisterAnalyzer = &Analyzer{
	Name: "obsregister",
	Doc:  "metric registration must use constant names/bounds, happen outside loops, once per package",
	Run:  runObsRegister,
}

func runObsRegister(pass *Pass) error {
	info := pass.Pkg.Info
	firstSite := make(map[string]token.Position) // metric name -> first registration site
	for _, f := range pass.Pkg.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || !registryMethods[funcKey(fn)] || len(call.Args) == 0 {
				return true
			}
			if loop := enclosingLoop(stack); loop != nil {
				pass.Reportf(call.Pos(), "metric registration inside a loop: register once (e.g. in the constructor) and reuse the handle")
			}
			nameVal := constStringValue(info, call.Args[0])
			if nameVal == "" {
				pass.Reportf(call.Args[0].Pos(), "metric name must be a constant string (stable snapshot and regression-gate keys)")
			} else {
				pos := pass.Fset.Position(call.Pos())
				if prev, dup := firstSite[nameVal]; dup {
					pass.Reportf(call.Pos(), "metric %q already registered at %s:%d; register each metric at one site per package", nameVal, prev.Filename, prev.Line)
				} else {
					firstSite[nameVal] = pos
				}
			}
			// Histogram bounds: constants, or one spread package-level
			// bucket table (reg.Histogram(name, hopBuckets...)).
			if fn.Name() == "Histogram" {
				for _, arg := range call.Args[1:] {
					if isConstExpr(info, arg) || isPackageLevelSpread(info, call, arg) {
						continue
					}
					pass.Reportf(arg.Pos(), "histogram bounds must be constants or a spread package-level bucket table")
				}
			}
			return true
		})
	}
	return nil
}

// enclosingLoop returns the innermost for/range ancestor within the same
// function, or nil.
func enclosingLoop(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return stack[i]
		case *ast.FuncDecl, *ast.FuncLit:
			return nil
		}
	}
	return nil
}

// constStringValue returns the compile-time string value of e, or "".
func constStringValue(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return ""
	}
	return constant.StringVal(tv.Value)
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// isPackageLevelSpread reports whether arg is the final `v...` argument of
// call with v a package-level variable.
func isPackageLevelSpread(info *types.Info, call *ast.CallExpr, arg ast.Expr) bool {
	if call.Ellipsis == token.NoPos || arg != call.Args[len(call.Args)-1] {
		return false
	}
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := info.Uses[id].(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
