package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// WireTagAnalyzer checks the message-tag layer of a codec package: any
// package declaring two or more package-level constants named tag* with
// integer values (internal/engine's tagQuery..tagHotHandoff) must keep
// them
//
//  1. unique and dense — the values are exactly 1..N, so a deleted tag
//     cannot be silently reused and a gap cannot hide a dead frame;
//  2. encoded exactly once — each tag constant is written by exactly one
//     encoder arm (a case in the EncodeMessage type switch), which also
//     names the message type the tag stands for;
//  3. decoded exactly once, in order — each tag appears in exactly one
//     case label of a tag-valued switch (DecodeMessage), and the labels
//     of that switch are sorted by tag value, so reordering an arm (the
//     classic bad-merge artifact) fails the build;
//  4. decode-annotated — the decode arm carries a //wire:field dec
//     directive for the encoder arm's message type, directly or through
//     a dec-annotated helper it calls (delegating arms like tagHandoff),
//     closing the decode-side gap wiresync's pairing then checks;
//  5. sized — the tag's message type has a //wire:field size directive,
//     so the enc/size/dec triple is complete.
var WireTagAnalyzer = &Analyzer{
	Name: "wiretag",
	Doc:  "message tag constants are unique, dense, and carried by exactly one encoder arm, one ordered decoder arm with a dec directive, and one size directive",
	Run:  runWireTag,
}

// tagConst is one package-level tag* constant.
type tagConst struct {
	obj   *types.Const
	name  string
	value int64
	pos   token.Pos
}

func runWireTag(pass *Pass) error {
	tags := collectTagConsts(pass)
	if len(tags) < 2 {
		return nil // not a tagged codec package
	}
	checkTagValues(pass, tags)
	encTypes := checkEncoderArms(pass, tags)
	idx := buildWireIndex(pass, false)
	checkDecodeArms(pass, tags, encTypes, idx)
	checkSizeDirectives(pass, tags, encTypes, idx)
	return nil
}

// collectTagConsts gathers package-level constants named tag* with
// integer values, in declaration order. Function-local constants (like
// wiresize.go's tagLen) are out of scope.
func collectTagConsts(pass *Pass) []*tagConst {
	var tags []*tagConst
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "tag") {
						continue
					}
					c, ok := pass.Pkg.Info.Defs[name].(*types.Const)
					if !ok || c.Val().Kind() != constant.Int {
						continue
					}
					v, exact := constant.Int64Val(c.Val())
					if !exact {
						continue
					}
					tags = append(tags, &tagConst{obj: c, name: name.Name, value: v, pos: name.Pos()})
				}
			}
		}
	}
	return tags
}

// checkTagValues enforces uniqueness and density (values exactly 1..N).
func checkTagValues(pass *Pass, tags []*tagConst) {
	byValue := make(map[int64]*tagConst)
	for _, t := range tags {
		if first, dup := byValue[t.value]; dup {
			pass.Reportf(t.pos, "tag %s duplicates the wire value %d of %s; tag values must be unique", t.name, t.value, first.name)
		} else {
			byValue[t.value] = t
		}
	}
	values := make([]int64, 0, len(byValue))
	for v := range byValue {
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	dense := len(values) > 0 && values[0] == 1 && values[len(values)-1] == int64(len(values))
	if len(values) > 0 && !dense {
		pass.Reportf(tags[0].pos, "tag values are not dense 1..%d (got %v); renumber instead of leaving gaps a stale peer could misparse",
			len(values), values)
	}
}

// checkEncoderArms verifies each tag is written by exactly one
// type-switch encoder arm and maps tags to the message types those arms
// handle.
func checkEncoderArms(pass *Pass, tags []*tagConst) map[*tagConst]string {
	type armRef struct {
		cc  *ast.CaseClause
		typ string
	}
	uses := make(map[*tagConst][]armRef)
	byObj := make(map[types.Object]*tagConst, len(tags))
	for _, t := range tags {
		byObj[t.obj] = t
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sw, ok := n.(*ast.TypeSwitchStmt)
				if !ok {
					return true
				}
				for _, stmt := range sw.Body.List {
					cc := stmt.(*ast.CaseClause)
					typ := ""
					if len(cc.List) == 1 {
						typ = typeName(cc.List[0])
					}
					seen := make(map[*tagConst]bool)
					for _, body := range cc.Body {
						ast.Inspect(body, func(m ast.Node) bool {
							if id, ok := m.(*ast.Ident); ok {
								if t := byObj[pass.Pkg.Info.Uses[id]]; t != nil && !seen[t] {
									seen[t] = true
									uses[t] = append(uses[t], armRef{cc: cc, typ: typ})
								}
							}
							return true
						})
					}
				}
				return true
			})
		}
	}
	encTypes := make(map[*tagConst]string)
	for _, t := range tags {
		refs := uses[t]
		switch {
		case len(refs) == 0:
			pass.Reportf(t.pos, "tag %s is not written by any encoder arm; every tag needs exactly one EncodeMessage case", t.name)
		case len(refs) > 1:
			for _, ref := range refs[1:] {
				pass.Reportf(ref.cc.Pos(), "tag %s is written by more than one encoder arm; a tag maps to exactly one message type", t.name)
			}
		default:
			if refs[0].typ != "" {
				encTypes[t] = refs[0].typ
			}
		}
	}
	return encTypes
}

// checkDecodeArms verifies each tag labels exactly one value-switch arm,
// that the arms of the decode switch stay in ascending tag order, and
// that each arm is covered by a //wire:field dec directive for the
// encoder's message type (its own, or a dec-annotated helper's).
func checkDecodeArms(pass *Pass, tags []*tagConst, encTypes map[*tagConst]string, idx *wireIndex) {
	byObj := make(map[types.Object]*tagConst, len(tags))
	for _, t := range tags {
		byObj[t.obj] = t
	}
	type labelRef struct {
		cc *ast.CaseClause
		t  *tagConst
	}
	labels := make(map[*tagConst][]*ast.CaseClause)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok {
					return true
				}
				var ordered []labelRef
				for _, stmt := range sw.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, label := range cc.List {
						id, ok := ast.Unparen(label).(*ast.Ident)
						if !ok {
							continue
						}
						if t := byObj[pass.Pkg.Info.Uses[id]]; t != nil {
							labels[t] = append(labels[t], cc)
							ordered = append(ordered, labelRef{cc: cc, t: t})
						}
					}
				}
				for i := 1; i < len(ordered); i++ {
					if ordered[i].t.value < ordered[i-1].t.value {
						pass.Reportf(ordered[i].cc.Pos(), "decode arm for %s (tag %d) is out of order after %s (tag %d); keep DecodeMessage arms sorted by tag value",
							ordered[i].t.name, ordered[i].t.value, ordered[i-1].t.name, ordered[i-1].t.value)
					}
				}
				return true
			})
		}
	}
	for _, t := range tags {
		ccs := labels[t]
		switch {
		case len(ccs) == 0:
			pass.Reportf(t.pos, "tag %s has no decode arm; every tag needs exactly one DecodeMessage case", t.name)
			continue
		case len(ccs) > 1:
			for _, cc := range ccs[1:] {
				pass.Reportf(cc.Pos(), "tag %s is decoded by more than one arm; a tag maps to exactly one decoder", t.name)
			}
			continue
		}
		cc := ccs[0]
		wantTyp := encTypes[t]
		if d := idx.byNode[cc]; d != nil && d.side == "dec" {
			if wantTyp != "" && d.typ != wantTyp {
				pass.Reportf(cc.Pos(), "decode arm for %s carries //wire:field dec %s but the encoder arm handles %s", t.name, d.typ, wantTyp)
			}
			continue
		}
		if armDelegatesToDecFunc(pass, cc, idx, wantTyp) {
			continue
		}
		pass.Reportf(cc.Pos(), "decode arm for %s has no //wire:field dec directive (directly or via a dec-annotated helper)", t.name)
	}
}

// checkSizeDirectives closes the triple: every tag's message type must
// have a //wire:field size directive in the package.
func checkSizeDirectives(pass *Pass, tags []*tagConst, encTypes map[*tagConst]string, idx *wireIndex) {
	sized := make(map[string]bool)
	for _, d := range idx.directives {
		if d.side == "size" && d.node != nil {
			sized[d.typ] = true
		}
	}
	for _, t := range tags {
		if typ := encTypes[t]; typ != "" && !sized[typ] {
			pass.Reportf(t.pos, "tag %s message type %s has no //wire:field size directive; the enc/size/dec triple is incomplete", t.name, typ)
		}
	}
}
