package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterministicPackages are the packages whose behaviour must be a pure
// function of their inputs and seeds: everything the differential harness
// (parallel_test.go) fingerprints. cmd/cqjoind and the examples talk to
// wall clocks on purpose and are exempt, as are all _test.go files (which
// the loader never parses).
//
// internal/transport is deliberately NOT in this list: a real TCP
// transport needs wall-clock dial/IO deadlines, idle-connection reaping
// and jittered retry backoff, none of which can be driven by sim.Clock.
// The determinism boundary is the chord.Transport interface — everything
// above it (routing, accounting, the engine) stays in scope, and
// transport_diff_test.go proves the TCP path reproduces the simulated
// results exactly, so the relaxation below the interface is observable-
// behaviour-free.
var DeterministicPackages = []string{
	"cqjoin/internal/engine",
	"cqjoin/internal/chord",
	"cqjoin/internal/sim",
	"cqjoin/internal/chaos",
	"cqjoin/internal/exp",
	"cqjoin/internal/wire",
	"cqjoin/internal/workload",
}

func inDeterministicScope(pkgPath string) bool {
	for _, p := range DeterministicPackages {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// wallClockFuncs are the time package entry points that read the wall
// clock or the process scheduler; any of them makes a simulated run
// unreproducible. Deterministic code must use sim.Clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandConstructors are the math/rand package-level functions that do
// NOT draw from the unseeded global source: building an explicitly seeded
// generator is precisely the sanctioned path.
var globalRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// DeterminismAnalyzer forbids wall-clock reads and unseeded global
// math/rand draws inside the deterministic package set. Escape hatch:
// //lint:allow determinism <reason> on (or directly above) the line.
var DeterminismAnalyzer = &Analyzer{
	Name:   "determinism",
	Doc:    "forbid time.Now/time.Sleep/... and unseeded global math/rand in deterministic packages",
	Filter: inDeterministicScope,
	Run:    runDeterminism,
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are the seeded path
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(), "time.%s is non-deterministic; use the sim clock (sim.Clock) instead", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !globalRandConstructors[fn.Name()] {
					pass.Reportf(sel.Pos(), "rand.%s draws from the unseeded global source; use a seeded source (sim.NewSource / rand.New(rand.NewSource(seed)))", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
