package analysis_test

import (
	"testing"

	"cqjoin/internal/analysis"
	"cqjoin/internal/analysis/analysistest"
)

// The analyzer suites run against golden fixtures under
// testdata/src, each with positive (diagnostic expected) and suppressed
// (//lint:allow) cases. The determinism fixture lives under the
// cqjoin/internal/sim fixture path so the analyzer's package scope
// applies; determinism/outofscope proves the scope exemption by carrying
// a wall-clock read and no want comments.

func TestDeterminismAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.DeterminismAnalyzer,
		"cqjoin/internal/sim/detfix", "determinism/outofscope")
}

// TestDeterminismScopeExcludesTransport pins the determinism boundary:
// internal/transport lives below the chord.Transport interface and runs
// on wall clocks (deadlines, idle reaping, backoff) by design, while the
// packages above the interface stay in scope. See the comment on
// DeterministicPackages for the rationale.
func TestDeterminismScopeExcludesTransport(t *testing.T) {
	scope := analysis.DeterminismAnalyzer.Filter
	if scope("cqjoin/internal/transport") {
		t.Fatal("internal/transport must be outside the determinism scope")
	}
	for _, p := range []string{"cqjoin/internal/chord", "cqjoin/internal/engine", "cqjoin/internal/wire"} {
		if !scope(p) {
			t.Fatalf("%s must stay inside the determinism scope", p)
		}
	}
}

func TestMapOrderAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.MapOrderAnalyzer, "maporder/a")
}

// The wiresync/walrec and wiretag/walrec fixtures pin the analyzers on
// the WAL record codec's shape (internal/durable/record.go): value-typed
// records switched through an any parameter, typed iota tags, and a
// decode switch over a converted uvarint.
func TestWireSyncAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.WireSyncAnalyzer, "wiresync/a", "wiresync/walrec")
}

func TestSendUnderLockAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.SendUnderLockAnalyzer, "sendunderlock/a")
}

func TestObsRegisterAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.ObsRegisterAnalyzer, "obsregister/a")
}

func TestLockOrderAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.LockOrderAnalyzer, "lockorder/a")
}

// TestGoroLeakAnalyzer runs the goroleak fixture under a fixture path
// inside the analyzer's production scope (a transport subpackage), so the
// same filter that gates the real tree gates the fixture.
func TestGoroLeakAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.GoroLeakAnalyzer,
		"cqjoin/internal/transport/goroleakfix")
}

func TestPoolSafeAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.PoolSafeAnalyzer, "poolsafe/a")
}

func TestWireTagAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.WireTagAnalyzer, "wiretag/a", "wiretag/b", "wiretag/walrec")
}

// TestSuiteCleanOnTree is the in-repo form of the CI gate: the full suite
// over the whole module must produce zero diagnostics. Any regression a
// developer introduces fails `go test` before it ever reaches the cqlint
// CI job.
func TestSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader, err := analysis.NewLoader("../..", "")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	prog := analysis.NewProg(loader, pkgs)
	diags, err := prog.Run(analysis.All())
	if err != nil {
		t.Fatalf("run suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s (%s)", loader.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
}

// TestLoaderResolvesStdlibOffline pins the property the whole suite
// depends on: the loader type-checks module packages (and their stdlib
// closure) without network access or pre-compiled export data.
func TestLoaderResolvesStdlibOffline(t *testing.T) {
	loader, err := analysis.NewLoader("../..", "")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.Load("cqjoin/internal/wire")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if pkg.Types == nil || pkg.Info == nil || len(pkg.Files) == 0 {
		t.Fatalf("incomplete package: %+v", pkg)
	}
	if pkg.Types.Scope().Lookup("Buffer") == nil {
		t.Fatalf("wire.Buffer not found in type-checked package")
	}
}
