package analysis

// All returns the full cqlint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		MapOrderAnalyzer,
		WireSyncAnalyzer,
		SendUnderLockAnalyzer,
		ObsRegisterAnalyzer,
	}
}
