package analysis

// All returns the full cqlint suite in reporting order. The first five
// are the per-function PR-4 analyzers; lockorder, goroleak, poolsafe and
// wiretag are the interprocedural v2 additions built on the call graph.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		MapOrderAnalyzer,
		WireSyncAnalyzer,
		SendUnderLockAnalyzer,
		ObsRegisterAnalyzer,
		LockOrderAnalyzer,
		GoroLeakAnalyzer,
		PoolSafeAnalyzer,
		WireTagAnalyzer,
	}
}
