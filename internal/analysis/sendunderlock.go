package analysis

import (
	"go/ast"
	"go/types"
)

// networkSends are the overlay send entry points: each one can traverse
// O(log N) simulated hops, run delivery handlers on other nodes, and (in a
// socket deployment) block on the network. Holding a local mutex across
// one is a latency and deadlock hazard — delivery handlers may call back
// into the sending node.
var networkSends = map[string]bool{
	"cqjoin/internal/chord.Node.Send":               true,
	"cqjoin/internal/chord.Node.DirectSend":         true,
	"cqjoin/internal/chord.Node.Multisend":          true,
	"cqjoin/internal/chord.Node.MultisendIterative": true,
}

// SendUnderLockAnalyzer reports chord send calls made while a
// sync.Mutex/RWMutex locked in the same function is still held. The
// tracking is a source-order walk of the function body (the standard
// lock/unlock discipline in this tree is strictly linear): Lock/RLock
// raises the held count, Unlock/RUnlock lowers it, and a deferred unlock
// pins the lock for the remainder of the function. Sends made by callees
// of the function are not traced.
var SendUnderLockAnalyzer = &Analyzer{
	Name: "sendunderlock",
	Doc:  "report chord.Send/Multisend/MultisendIterative while a mutex acquired in the same function is held",
	Run:  runSendUnderLock,
}

// mutexMethod classifies a call as a lock or unlock on sync.Mutex or
// sync.RWMutex, returning +1 for acquisitions, -1 for releases, 0 for
// anything else.
func mutexMethod(info *types.Info, call *ast.CallExpr) int {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return 0
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return 0
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return +1
	case "Unlock", "RUnlock":
		return -1
	}
	return 0
}

func runSendUnderLock(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := 0
			deferred := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					return false // its body runs later, under its own discipline
				case *ast.DeferStmt:
					if mutexMethod(info, n.Call) == -1 {
						deferred = true
					}
					return false // the deferred call itself runs at exit
				case *ast.CallExpr:
					switch mutexMethod(info, n) {
					case +1:
						held++
					case -1:
						if held > 0 {
							held--
						}
					default:
						fn := calleeFunc(info, n)
						if fn == nil {
							return true
						}
						if (networkSends[funcKey(fn)] || pass.Prog.IsMarkedSink(fn)) && (held > 0 || deferred) {
							pass.Reportf(n.Pos(), "%s called while a mutex locked in this function is still held; release the lock before sending", fn.Name())
						}
					}
				}
				return true
			})
		}
	}
	return nil
}
