// Package analysis is a self-contained static-analysis framework plus the
// cqlint analyzer suite that proves the repository's determinism and
// protocol invariants at compile time (DESIGN.md §9).
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic, analysistest-style golden tests) but is
// built entirely on the standard library (go/build, go/parser, go/types):
// the build environment is offline and the module has no dependencies, so
// x/tools is deliberately not imported. Imported packages — including the
// standard library, type-checked from GOROOT sources — are loaded with
// IgnoreFuncBodies, so only the packages under analysis pay for full body
// checking.
package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully type-checked package under analysis.
type Package struct {
	Path  string // import path ("cqjoin/internal/engine")
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader resolves import paths to directories and type-checks packages
// without consulting a module proxy: module-local paths resolve against the
// module root, test fixtures resolve against SrcRoot, and everything else
// resolves against GOROOT/src (with the GOROOT vendor fallback the standard
// library needs for its golang.org/x/... imports).
type Loader struct {
	Fset *token.FileSet

	moduleDir  string // module root; "" when loading test fixtures only
	modulePath string // from go.mod; "" when moduleDir is ""
	srcRoot    string // extra source root (analysistest fixtures); "" in cqlint
	ctx        build.Context

	full    map[string]*Package       // fully checked packages (module + srcRoot)
	shallow map[string]*types.Package // signature-only imports (stdlib)
	loading map[string]bool           // cycle guard
}

// NewLoader builds a loader. moduleDir is the module root whose go.mod
// names the module path (may be "" for fixture-only loads); srcRoot is an
// optional extra root consulted before GOROOT, used by the analysistest
// harness to supply fake dependency packages.
func NewLoader(moduleDir, srcRoot string) (*Loader, error) {
	l := &Loader{
		Fset:    token.NewFileSet(),
		srcRoot: srcRoot,
		ctx:     build.Default,
		full:    make(map[string]*Package),
		shallow: make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
	// Pure-Go view of every package: the type checker cannot expand cgo,
	// and each package in this tree (and its stdlib closure) has a pure
	// variant behind the cgo build tag.
	l.ctx.CgoEnabled = false
	if moduleDir != "" {
		abs, err := filepath.Abs(moduleDir)
		if err != nil {
			return nil, err
		}
		mod, err := modulePathOf(abs)
		if err != nil {
			return nil, err
		}
		l.moduleDir = abs
		l.modulePath = mod
	}
	return l, nil
}

// modulePathOf reads the module path from dir/go.mod.
func modulePathOf(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: read go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", dir)
}

// Import implements types.Importer so a Loader can be handed straight to
// types.Config; it returns signature-complete packages for any import the
// packages under analysis mention.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.full[path]; ok {
		return p.Types, nil
	}
	if p, ok := l.shallow[path]; ok {
		return p, nil
	}
	dir, deep, err := l.resolve(path)
	if err != nil {
		return nil, err
	}
	if deep {
		p, err := l.loadFull(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.loadShallow(path, dir)
}

// resolve maps an import path to a directory and reports whether the
// package deserves a full (body-checked, Info-carrying) load.
func (l *Loader) resolve(path string) (dir string, deep bool, err error) {
	if l.modulePath != "" {
		if path == l.modulePath {
			return l.moduleDir, true, nil
		}
		if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
			return filepath.Join(l.moduleDir, filepath.FromSlash(rest)), true, nil
		}
	}
	if l.srcRoot != "" {
		d := filepath.Join(l.srcRoot, filepath.FromSlash(path))
		if fi, statErr := os.Stat(d); statErr == nil && fi.IsDir() {
			return d, true, nil
		}
	}
	goroot := l.ctx.GOROOT
	for _, d := range []string{
		filepath.Join(goroot, "src", filepath.FromSlash(path)),
		filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if fi, statErr := os.Stat(d); statErr == nil && fi.IsDir() {
			return d, false, nil
		}
	}
	return "", false, fmt.Errorf("analysis: cannot resolve import %q (offline loader: module, fixture and GOROOT roots only)", path)
}

// buildableGoFiles returns the build-constraint-filtered .go files of dir.
func (l *Loader) buildableGoFiles(dir string) ([]string, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files := make([]string, 0, len(bp.GoFiles))
	for _, f := range bp.GoFiles {
		files = append(files, filepath.Join(dir, f))
	}
	sort.Strings(files)
	return files, nil
}

func (l *Loader) parse(paths []string, mode parser.Mode) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(paths))
	for _, p := range paths {
		f, err := parser.ParseFile(l.Fset, p, nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// loadFull type-checks a package with function bodies and full type
// information; errors are fatal (the tree is expected to compile).
func (l *Loader) loadFull(path, dir string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	goFiles, err := l.buildableGoFiles(dir)
	if err != nil {
		return nil, err
	}
	files, err := l.parse(goFiles, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:     make(map[ast.Expr]types.TypeAndValue),
		Defs:      make(map[*ast.Ident]types.Object),
		Uses:      make(map[*ast.Ident]types.Object),
		Implicits: make(map[ast.Node]types.Object),
	}
	var errs []error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("analysis: type errors in %s: %v", path, errs[0])
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.full[path] = p
	return p, nil
}

// loadShallow type-checks an imported (non-analyzed) package from source
// with IgnoreFuncBodies. Errors are tolerated: an exotic corner of a
// stdlib package body or initializer must not block analysis of this
// module, and the resulting package is still signature-complete enough for
// the packages that import it (the tree is known to compile under the real
// toolchain).
func (l *Loader) loadShallow(path, dir string) (*types.Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	goFiles, err := l.buildableGoFiles(dir)
	if err != nil {
		return nil, err
	}
	files, err := l.parse(goFiles, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	conf := types.Config{
		Importer:         l,
		FakeImportC:      true,
		IgnoreFuncBodies: true,
		Error:            func(error) {}, // tolerate; see doc comment
	}
	tpkg, _ := conf.Check(path, l.Fset, files, nil)
	if tpkg == nil {
		return nil, fmt.Errorf("analysis: cannot type-check import %q", path)
	}
	tpkg.MarkComplete()
	l.shallow[path] = tpkg
	return tpkg, nil
}

// FullPackages returns every fully loaded package, including fixture
// dependencies pulled in transitively (used by the analysistest harness to
// scan directives across the whole fixture graph).
func (l *Loader) FullPackages() []*Package {
	out := make([]*Package, 0, len(l.full))
	for _, p := range l.full {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Load returns the fully checked package for an import path (resolving
// through the module or fixture root).
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.full[path]; ok {
		return p, nil
	}
	dir, deep, err := l.resolve(path)
	if err != nil {
		return nil, err
	}
	if !deep {
		return nil, fmt.Errorf("analysis: %q is not a module or fixture package", path)
	}
	return l.loadFull(path, dir)
}

// LoadPatterns expands package patterns relative to the module root.
// Supported forms: "./...", "./dir/...", "./dir", and plain import paths.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	if l.moduleDir == "" {
		return nil, fmt.Errorf("analysis: LoadPatterns requires a module root")
	}
	seen := make(map[string]bool)
	var pkgs []*Package
	add := func(path string) error {
		if seen[path] {
			return nil
		}
		seen[path] = true
		p, err := l.Load(path)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, p)
		return nil
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			paths, err := l.walkModule(l.moduleDir)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				if err := add(p); err != nil {
					return nil, err
				}
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(l.moduleDir, filepath.FromSlash(strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/...")))
			paths, err := l.walkModule(root)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				if err := add(p); err != nil {
					return nil, err
				}
			}
		case strings.HasPrefix(pat, "./"):
			rel, err := filepath.Rel(l.moduleDir, filepath.Join(l.moduleDir, filepath.FromSlash(pat[2:])))
			if err != nil {
				return nil, err
			}
			if err := add(l.importPathFor(rel)); err != nil {
				return nil, err
			}
		default:
			if err := add(pat); err != nil {
				return nil, err
			}
		}
	}
	return pkgs, nil
}

func (l *Loader) importPathFor(rel string) string {
	rel = filepath.ToSlash(rel)
	if rel == "." || rel == "" {
		return l.modulePath
	}
	return l.modulePath + "/" + rel
}

// walkModule finds every buildable package directory under root, skipping
// hidden directories and testdata trees.
func (l *Loader) walkModule(root string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if _, err := l.ctx.ImportDir(path, 0); err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil // directory without buildable Go files
			}
			return err
		}
		rel, err := filepath.Rel(l.moduleDir, path)
		if err != nil {
			return err
		}
		paths = append(paths, l.importPathFor(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
