package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named static check. The shape deliberately matches
// golang.org/x/tools/go/analysis so the suite could be rehosted on the real
// framework (and `go vet -vettool`) the day the dependency is available.
type Analyzer struct {
	Name string
	Doc  string
	// Filter, when non-nil, restricts the analyzer to packages for which
	// it returns true (import-path based; used by determinism's package
	// scope). A nil Filter means "every analyzed package".
	Filter func(pkgPath string) bool
	Run    func(*Pass) error
}

// Diagnostic is one finding, positioned in the shared FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	Prog     *Prog

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Prog is the whole-program context shared by every pass: all loaded
// packages plus the cross-package facts analyzers consult (the
// //cqlint:sink marker set).
type Prog struct {
	Loader   *Loader
	Packages []*Package

	// sinks holds every function object whose declaration carries a
	// //cqlint:sink directive. Calls to these are order-sensitive
	// consumers for maporder and network sends for sendunderlock.
	sinks map[types.Object]bool

	// cg caches the interprocedural call graph; built lazily by
	// CallGraph() the first time an interprocedural analyzer runs.
	cg *CallGraph
}

// NewProg assembles a program from loaded packages and scans declaration
// directives.
func NewProg(l *Loader, pkgs []*Package) *Prog {
	prog := &Prog{Loader: l, Packages: pkgs, sinks: make(map[types.Object]bool)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					if strings.TrimSpace(c.Text) == "//cqlint:sink" {
						if obj := pkg.Info.Defs[fd.Name]; obj != nil {
							prog.sinks[obj] = true
						}
					}
				}
			}
		}
	}
	return prog
}

// IsMarkedSink reports whether obj's declaration carries //cqlint:sink.
func (prog *Prog) IsMarkedSink(obj types.Object) bool { return prog.sinks[obj] }

// Run executes the analyzers over every package, applies //lint:allow
// suppression, and returns the surviving diagnostics in file/position
// order. Malformed allow directives (no analyzer name or no reason) are
// themselves reported under the pseudo-analyzer "lintdirective".
func (prog *Prog) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		allows, bad := collectAllows(prog.Loader.Fset, pkg)
		diags = append(diags, bad...)
		for _, a := range analyzers {
			if a.Filter != nil && !a.Filter(pkg.Path) {
				continue
			}
			var out []Diagnostic
			pass := &Pass{Analyzer: a, Fset: prog.Loader.Fset, Pkg: pkg, Prog: prog, diags: &out}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range out {
				if !allows.suppresses(prog.Loader.Fset, d) {
					diags = append(diags, d)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := prog.Loader.Fset.Position(diags[i].Pos), prog.Loader.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// directiveFields splits a directive's argument text into fields,
// truncating at an embedded "//" so a trailing comment (e.g. the test
// harness's `// want`) never leaks into the directive's arguments.
func directiveFields(rest string) []string {
	fields := strings.Fields(rest)
	for i, f := range fields {
		if strings.HasPrefix(f, "//") {
			return fields[:i]
		}
	}
	return fields
}

// allowSet maps "file:line" to the analyzer names allowed on that line.
type allowSet map[string]map[string]bool

const allowPrefix = "//lint:allow "

// collectAllows scans a package's comments for //lint:allow directives.
// A directive suppresses matching diagnostics on its own line (trailing
// comment) and on the line directly below (stand-alone comment line).
func collectAllows(fset *token.FileSet, pkg *Package) (allowSet, []Diagnostic) {
	allows := make(allowSet)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				fields := directiveFields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lintdirective",
						Message:  "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\"",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := fmt.Sprintf("%s:%d", pos.Filename, line)
					if allows[key] == nil {
						allows[key] = make(map[string]bool)
					}
					allows[key][fields[0]] = true
				}
			}
		}
	}
	return allows, bad
}

func (a allowSet) suppresses(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	names := a[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)]
	return names[d.Analyzer]
}

// funcKey renders a *types.Func as "pkgpath.Name" for package functions or
// "pkgpath.Recv.Name" for methods (pointerness of the receiver ignored),
// the form the analyzers' sink/send tables use.
func funcKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// calleeFunc resolves the *types.Func a call expression invokes, or nil
// for indirect calls, conversions and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// walkStack is ast.Inspect with an ancestor stack: fn receives each node
// with the path from the root (excluding n itself); returning false prunes
// the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false // pruned: Inspect sends no closing nil for n
		}
		stack = append(stack, n)
		return true
	})
}
