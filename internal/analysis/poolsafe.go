package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolSafeAnalyzer enforces the pooled-object hygiene the transport's
// zero-alloc hot path depends on (callPool, replyBufPool, timerPool,
// serveStatePool, frameBufPool). For every package-level sync.Pool it
// checks:
//
//  1. accessor discipline — at most one function calls <pool>.Get and at
//     most one calls <pool>.Put. Scattered Get/Put sites are how reset
//     and ownership bugs creep in; every other caller routes through the
//     accessor pair.
//  2. reset coverage — if the pooled type has a Reset method, the get or
//     put accessor must call it (this tree resets on Get: getBuf,
//     getTimer), so a recycled object can never leak a previous life.
//  3. use-after-Put / double-Put — within a function, a variable that
//     was released (directly, via a put accessor, or via a method that
//     puts its own receiver, like call.finish) must not be used or
//     released again on the same straight-line path. Branches fork the
//     tracking state; a branch that returns keeps its releases to
//     itself.
//  4. retained aliases — returning a pooled variable (or a slice of it)
//     while a deferred Put of that variable is pending hands the caller
//     a buffer the pool is about to recycle; copy it out instead, as
//     controlRoundTrip does.
var PoolSafeAnalyzer = &Analyzer{
	Name: "poolsafe",
	Doc:  "sync.Pool hygiene: single Get/Put accessors, reset coverage, use-after-Put, double Put, and escaping aliases of pooled buffers",
	Run:  runPoolSafe,
}

// poolFacts carries the per-package information the rules share.
type poolFacts struct {
	pass  *Pass
	pools map[types.Object]bool // package-level sync.Pool vars
	// putAccessors maps a function object to the pool it Puts into;
	// getAccessors likewise for Get. Filled by rule 1's site scan.
	putAccessors map[types.Object]types.Object
	getAccessors map[types.Object]types.Object
	// releasers are functions/methods a call to which releases one of
	// the caller's variables: put accessors release their first ident
	// argument, receiver-releasing methods release their receiver.
	releaserParam map[types.Object]bool // fn obj -> releases ident argument
	releaserRecv  map[types.Object]bool // method obj -> releases receiver
}

func runPoolSafe(pass *Pass) error {
	facts := &poolFacts{
		pass:          pass,
		pools:         make(map[types.Object]bool),
		putAccessors:  make(map[types.Object]types.Object),
		getAccessors:  make(map[types.Object]types.Object),
		releaserParam: make(map[types.Object]bool),
		releaserRecv:  make(map[types.Object]bool),
	}
	scope := pass.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		v, ok := scope.Lookup(name).(*types.Var)
		if ok && isSyncPoolType(v.Type()) {
			facts.pools[v] = true
		}
	}
	if len(facts.pools) == 0 {
		return nil
	}
	facts.checkAccessors()
	facts.checkReset()
	facts.resolveReleasers()
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				facts.checkFuncBody(fd)
			}
		}
	}
	return nil
}

func isSyncPoolType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

// poolMethodCall matches <pool>.Get() / <pool>.Put(x) on a tracked pool
// var, returning the pool object and the method name.
func (pf *poolFacts) poolMethodCall(call *ast.CallExpr) (pool types.Object, method string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Get" && sel.Sel.Name != "Put") {
		return nil, ""
	}
	var base types.Object
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		base = pf.pass.Pkg.Info.Uses[x]
	case *ast.SelectorExpr:
		base = pf.pass.Pkg.Info.Uses[x.Sel]
	}
	if base == nil || !pf.pools[base] {
		return nil, ""
	}
	return base, sel.Sel.Name
}

// poolSite is one Get or Put call with its enclosing function.
type poolSite struct {
	call *ast.CallExpr
	fn   *ast.FuncDecl
}

// checkAccessors implements rule 1 and records the accessor functions
// rules 2 and 3 build on.
func (pf *poolFacts) checkAccessors() {
	gets := make(map[types.Object][]poolSite)
	puts := make(map[types.Object][]poolSite)
	for _, f := range pf.pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if pool, method := pf.poolMethodCall(call); pool != nil {
					site := poolSite{call: call, fn: fd}
					if method == "Get" {
						gets[pool] = append(gets[pool], site)
					} else {
						puts[pool] = append(puts[pool], site)
					}
				}
				return true
			})
		}
	}
	info := pf.pass.Pkg.Info
	report := func(sites []poolSite, pool types.Object, method string) {
		accessor := sites[0].fn
		if obj := info.Defs[accessor.Name]; obj != nil {
			if method == "Get" {
				pf.getAccessors[obj] = pool
			} else {
				pf.putAccessors[obj] = pool
			}
		}
		for _, s := range sites[1:] {
			if s.fn != accessor {
				pf.pass.Reportf(s.call.Pos(), "%s.%s called in %s; route every %s through the single accessor %s",
					pool.Name(), method, s.fn.Name.Name, method, accessor.Name.Name)
			}
		}
	}
	for pool := range pf.pools {
		if sites := gets[pool]; len(sites) > 0 {
			report(sites, pool, "Get")
		}
		if sites := puts[pool]; len(sites) > 0 {
			report(sites, pool, "Put")
		}
	}
}

// checkReset implements rule 2: a pooled type with a Reset method must
// have it called by the get or put accessor.
func (pf *poolFacts) checkReset() {
	info := pf.pass.Pkg.Info
	for _, f := range pf.pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fnObj := info.Defs[fd.Name]
			pool, isPut := pf.putAccessors[fnObj]
			if !isPut {
				continue
			}
			pooled := pf.putArgType(fd)
			if pooled == nil || !hasResetMethod(pooled) {
				continue
			}
			get := pf.accessorDeclFor(pool, pf.getAccessors)
			if callsMethodNamed(fd.Body, "Reset") || (get != nil && callsMethodNamed(get.Body, "Reset")) {
				continue
			}
			pf.pass.Reportf(fd.Pos(), "pooled type %s has a Reset method but neither the Get nor the Put accessor of %s calls it; a recycled object can leak its previous contents",
				pooled.String(), pool.Name())
		}
	}
}

// putArgType returns the static type of the value this put accessor
// hands to <pool>.Put, pointers dereferenced.
func (pf *poolFacts) putArgType(fd *ast.FuncDecl) types.Type {
	var t types.Type
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || t != nil {
			return t == nil
		}
		if pool, method := pf.poolMethodCall(call); pool != nil && method == "Put" && len(call.Args) == 1 {
			if tv, ok := pf.pass.Pkg.Info.Types[call.Args[0]]; ok {
				t = tv.Type
			}
		}
		return true
	})
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return t
}

func hasResetMethod(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == "Reset" {
			return true
		}
	}
	return false
}

func callsMethodNamed(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}

// accessorDeclFor finds the FuncDecl registered as pool's accessor in m.
func (pf *poolFacts) accessorDeclFor(pool types.Object, m map[types.Object]types.Object) *ast.FuncDecl {
	info := pf.pass.Pkg.Info
	for _, f := range pf.pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if obj := info.Defs[fd.Name]; obj != nil && m[obj] == pool {
					return fd
				}
			}
		}
	}
	return nil
}

// resolveReleasers computes which package functions release a caller
// variable when called: put accessors release their ident argument, and
// methods whose body releases their own receiver (call.finish) release
// the receiver. Runs to a small fixpoint so a method delegating to
// another releaser is caught too.
func (pf *poolFacts) resolveReleasers() {
	info := pf.pass.Pkg.Info
	for obj := range pf.putAccessors {
		pf.releaserParam[obj] = true
	}
	for changed := true; changed; {
		changed = false
		for _, f := range pf.pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
					continue
				}
				obj := info.Defs[fd.Name]
				if obj == nil || pf.releaserRecv[obj] {
					continue
				}
				recvObj := info.Defs[fd.Recv.List[0].Names[0]]
				if recvObj == nil {
					continue
				}
				released := false
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if target := pf.releaseTarget(call); target == recvObj {
							released = true
						}
					}
					return !released
				})
				if released {
					pf.releaserRecv[obj] = true
					changed = true
				}
			}
		}
	}
}

// releaseTarget returns the variable object a call releases, or nil:
// <pool>.Put(v), putAccessor(v), or v.releasingMethod().
func (pf *poolFacts) releaseTarget(call *ast.CallExpr) types.Object {
	info := pf.pass.Pkg.Info
	if pool, method := pf.poolMethodCall(call); pool != nil && method == "Put" {
		if len(call.Args) == 1 {
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				return info.Uses[id]
			}
		}
		return nil
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil
	}
	if pf.releaserParam[fn] && len(call.Args) >= 1 {
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			return info.Uses[id]
		}
		return nil
	}
	if pf.releaserRecv[fn] {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				return info.Uses[id]
			}
		}
	}
	return nil
}

// poolTrack is the per-path tracking state for rules 3 and 4.
type poolTrack struct {
	released map[types.Object]token.Pos
	deferred map[types.Object]bool
}

func newPoolTrack() *poolTrack {
	return &poolTrack{released: make(map[types.Object]token.Pos), deferred: make(map[types.Object]bool)}
}

func (t *poolTrack) clone() *poolTrack {
	c := newPoolTrack()
	for k, v := range t.released {
		c.released[k] = v
	}
	for k, v := range t.deferred {
		c.deferred[k] = v
	}
	return c
}

// checkFuncBody implements rules 3 and 4 over one function.
func (pf *poolFacts) checkFuncBody(fd *ast.FuncDecl) {
	pf.walkStmts(fd.Body.List, newPoolTrack())
}

func (pf *poolFacts) walkStmts(stmts []ast.Stmt, st *poolTrack) {
	for _, stmt := range stmts {
		pf.walkStmt(stmt, st)
	}
}

func (pf *poolFacts) walkStmt(stmt ast.Stmt, st *poolTrack) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		pf.walkStmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			pf.walkStmt(s.Init, st)
		}
		pf.checkUses(s.Cond, st, nil)
		body := st.clone()
		pf.walkStmts(s.Body.List, body)
		var elseSt *poolTrack
		if s.Else != nil {
			elseSt = st.clone()
			pf.walkStmt(s.Else, elseSt)
		}
		// A branch that falls through propagates its releases; one that
		// returns keeps them to itself.
		if !terminates(s.Body.List) {
			for k, v := range body.released {
				st.released[k] = v
			}
		}
		if elseSt != nil {
			for k, v := range elseSt.released {
				st.released[k] = v
			}
		}
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt:
		// Loop and multi-way bodies fork the state and do not propagate
		// out: cross-iteration and cross-clause aliasing is out of scope
		// for the straight-line rule (conservative silence).
		pf.walkCompound(stmt, st)
	case *ast.DeferStmt:
		pf.noteDeferred(s, st)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			pf.checkUses(rhs, st, nil)
		}
		info := pf.pass.Pkg.Info
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				var obj types.Object
				if s.Tok == token.DEFINE {
					obj = info.Defs[id]
				} else {
					obj = info.Uses[id]
				}
				if obj != nil {
					delete(st.released, obj) // reassigned: a fresh object now
				}
			} else {
				pf.checkUses(lhs, st, nil)
			}
		}
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			pf.checkRetainedAlias(res, st)
			pf.checkUses(res, st, nil)
		}
	case *ast.ExprStmt:
		pf.checkReleasingExpr(s.X, st)
	case *ast.GoStmt:
		pf.checkUses(s.Call, st, nil)
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.BranchStmt, *ast.EmptyStmt:
		pf.checkUses(stmt, st, nil)
	default:
		pf.checkUses(stmt, st, nil)
	}
}

// walkCompound forks the state into each nested statement list of a
// loop/switch/select and discards the forks.
func (pf *poolFacts) walkCompound(stmt ast.Stmt, st *poolTrack) {
	switch s := stmt.(type) {
	case *ast.ForStmt:
		pf.walkStmts(s.Body.List, st.clone())
	case *ast.RangeStmt:
		pf.checkUses(s.X, st, nil)
		pf.walkStmts(s.Body.List, st.clone())
	case *ast.SwitchStmt:
		pf.checkUses(s.Tag, st, nil)
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				pf.walkStmts(cc.Body, st.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				pf.walkStmts(cc.Body, st.clone())
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				pf.walkStmts(cc.Body, st.clone())
			}
		}
	case *ast.LabeledStmt:
		pf.walkStmt(s.Stmt, st)
	}
}

// noteDeferred records pending deferred releases for the retained-alias
// rule; a deferred Put does not mark the variable released on the
// straight-line path (it runs at function exit).
func (pf *poolFacts) noteDeferred(s *ast.DeferStmt, st *poolTrack) {
	mark := func(call *ast.CallExpr) {
		if obj := pf.releaseTarget(call); obj != nil {
			st.deferred[obj] = true
		}
	}
	mark(s.Call)
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				mark(call)
			}
			return true
		})
	}
}

// checkReleasingExpr processes an expression statement: double-Put on an
// already-released variable, plain uses, then the release marking.
func (pf *poolFacts) checkReleasingExpr(expr ast.Expr, st *poolTrack) {
	var released types.Object
	var relPos token.Pos
	if call, ok := ast.Unparen(expr).(*ast.CallExpr); ok {
		if obj := pf.releaseTarget(call); obj != nil {
			released = obj
			relPos = call.Pos()
		}
	}
	if released != nil {
		if _, dead := st.released[released]; dead {
			pf.pass.Reportf(relPos, "pooled %s is released twice on this path (double Put corrupts the pool: two goroutines can Get the same object)", released.Name())
			return
		}
		pf.checkUses(expr, st, released)
		st.released[released] = relPos
		return
	}
	pf.checkUses(expr, st, nil)
}

// checkUses reports any use of a released pooled variable inside n,
// skipping closure interiors (they run on their own schedule) and the
// variable currently being released.
func (pf *poolFacts) checkUses(n ast.Node, st *poolTrack, releasing types.Object) {
	if n == nil || len(st.released) == 0 {
		return
	}
	info := pf.pass.Pkg.Info
	reported := false
	ast.Inspect(n, func(node ast.Node) bool {
		if reported {
			return false
		}
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || obj == releasing {
			return true
		}
		if _, dead := st.released[obj]; dead {
			pf.pass.Reportf(id.Pos(), "pooled %s used after Put; the pool may already have handed it to another goroutine", obj.Name())
			reported = true
		}
		return true
	})
}

// checkRetainedAlias implements rule 4 on one return result.
func (pf *poolFacts) checkRetainedAlias(res ast.Expr, st *poolTrack) {
	if len(st.deferred) == 0 {
		return
	}
	info := pf.pass.Pkg.Info
	var id *ast.Ident
	switch e := ast.Unparen(res).(type) {
	case *ast.Ident:
		id = e
	case *ast.SliceExpr:
		if base, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			id = base
		}
	}
	if id == nil {
		return
	}
	if obj := info.Uses[id]; obj != nil && st.deferred[obj] {
		pf.pass.Reportf(res.Pos(), "returning pooled %s while a deferred Put of it is pending; copy the bytes out before returning (the pool will recycle the buffer)", obj.Name())
	}
}

// terminates reports whether a statement list definitely ends the
// enclosing function (return or panic).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
