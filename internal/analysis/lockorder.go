package analysis

// LockOrderAnalyzer generalizes sendunderlock across call boundaries: it
// consumes the call graph's per-function lock summaries to report
//
//  1. transitive sends — a call made while a mutex acquired in the same
//     function is held, where the callee (through any chain of module
//     functions, interface dispatch included) reaches a chord overlay
//     send or a blocking transport entry point. This is the PR-7
//     deadlock class: batch handlers that called back into the overlay
//     while holding a connection lock head-of-line-cycled the in-order
//     reply protocol into timeouts.
//  2. lock-order cycles — an acquisition of class B while class A is
//     held (directly, or summarized through a callee) when B's holders
//     also, possibly transitively, acquire A.
//
// Lock classes are identified per struct field (pooledConn.wmu is one
// class across every instance) or per variable. The summary arithmetic
// is branch-insensitive and clamps held counts at zero, so asymmetric
// helpers (transport's writeAndAwait releases its caller's lock) bias
// toward silence rather than noise; sendunderlock retains the precise
// same-function check.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "report transitive overlay/transport sends under a held mutex and lock-order cycles, via call-graph lock summaries",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) error {
	g := pass.Prog.CallGraph()
	for _, f := range g.LockFindings(pass.Pkg) {
		pass.Reportf(f.pos, "%s", f.msg)
	}
	return nil
}
