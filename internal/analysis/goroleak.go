package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// goroLeakPackages are the packages whose goroutines must have a provable
// stop path: the long-lived server-side subsystems. Simulation packages
// are excluded — their concurrency is the exp worker pool, which is
// join-bounded by construction and checked by the determinism harness.
var goroLeakPackages = []string{
	"cqjoin/internal/transport",
	"cqjoin/internal/daemon",
	"cqjoin/internal/load",
	"cqjoin/internal/engine",
}

// GoroLeakAnalyzer requires every `go` statement in the scoped packages
// to have a provable stop path: the spawned body (or, for named
// functions and methods, anything the callee chain reaches) must contain
// a WaitGroup Done, a select with a receive clause, a channel receive, or
// a range over a channel. Context cancellation counts through its
// `<-ctx.Done()` receive. Spawns that cannot be resolved (calling a
// function value from a variable) are reported — if the target cannot be
// named, its stop path cannot be proven. `//lint:allow goroleak <why>`
// is the escape hatch for intentionally unbounded goroutines.
var GoroLeakAnalyzer = &Analyzer{
	Name:   "goroleak",
	Doc:    "every go statement in transport, daemon, load and engine needs a provable stop path (Done pairing, select/receive, channel range)",
	Filter: goroLeakScope,
	Run:    runGoroLeak,
}

func goroLeakScope(pkgPath string) bool {
	for _, p := range goroLeakPackages {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

func runGoroLeak(pass *Pass) error {
	g := pass.Prog.CallGraph()
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(gs.Call.Fun).(type) {
			case *ast.FuncLit:
				if !closureHasStopPath(g, info, fun.Body) {
					pass.Reportf(gs.Pos(), "goroutine has no provable stop path (no WaitGroup Done, select/receive, or channel range in the spawned closure or its callees)")
				}
			default:
				fn := calleeFunc(info, gs.Call)
				if fn == nil {
					pass.Reportf(gs.Pos(), "goroutine target cannot be resolved statically; spawn a named function or method so its stop path can be checked")
					return true
				}
				if node := g.Node(fn); node == nil || !node.HasStopReach {
					pass.Reportf(gs.Pos(), "goroutine %s has no provable stop path (no WaitGroup Done, select/receive, or channel range in its body or callees)", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// closureHasStopPath checks a spawned closure body directly: a stop
// marker anywhere inside (nested closures included — deferred closures
// run in the goroutine's extent), or a named callee whose summary
// reaches one.
func closureHasStopPath(g *CallGraph, info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			for _, clause := range n.Body.List {
				if comm, ok := clause.(*ast.CommClause); ok && isReceiveComm(comm.Comm) {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.Ident:
			if fn, ok := info.Uses[n].(*types.Func); ok {
				if isStopMarkerFunc(fn) {
					found = true
				} else if node := g.Node(fn); node != nil && node.HasStopReach {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
