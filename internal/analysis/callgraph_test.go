package analysis_test

import (
	"testing"

	"cqjoin/internal/analysis"
)

// fixtureGraph loads the callgraph fixture packages and builds the
// interprocedural graph over them.
func fixtureGraph(t *testing.T) *analysis.CallGraph {
	t.Helper()
	loader, err := analysis.NewLoader("", "testdata/src")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	if _, err := loader.Load("callgraph/a"); err != nil {
		t.Fatalf("load callgraph/a: %v", err)
	}
	prog := analysis.NewProg(loader, loader.FullPackages())
	return prog.CallGraph()
}

func node(t *testing.T, g *analysis.CallGraph, key string) *analysis.FuncNode {
	t.Helper()
	n := g.NodeByKey(key)
	if n == nil {
		t.Fatalf("no node for %s", key)
	}
	return n
}

func hasKey(keys []string, want string) bool {
	for _, k := range keys {
		if k == want {
			return true
		}
	}
	return false
}

func TestCallGraphRecursion(t *testing.T) {
	g := fixtureGraph(t)
	if keys := node(t, g, "callgraph/a.fact").CalleeKeys(); !hasKey(keys, "callgraph/a.fact") {
		t.Errorf("fact callees = %v, want self-edge", keys)
	}
	if keys := node(t, g, "callgraph/a.even").CalleeKeys(); !hasKey(keys, "callgraph/a.odd") {
		t.Errorf("even callees = %v, want odd", keys)
	}
	if keys := node(t, g, "callgraph/a.odd").CalleeKeys(); !hasKey(keys, "callgraph/a.even") {
		t.Errorf("odd callees = %v, want even", keys)
	}
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	g := fixtureGraph(t)
	keys := node(t, g, "callgraph/a.dispatch").CalleeKeys()
	for _, want := range []string{"callgraph/a.impl1.do", "callgraph/a.impl2.do"} {
		if !hasKey(keys, want) {
			t.Errorf("dispatch callees = %v, want %s", keys, want)
		}
	}
}

func TestCallGraphMethodValues(t *testing.T) {
	g := fixtureGraph(t)
	if keys := node(t, g, "callgraph/a.takeValue").CalleeKeys(); !hasKey(keys, "callgraph/a.worker.step") {
		t.Errorf("takeValue callees = %v, want worker.step value edge", keys)
	}
}

func TestCallGraphLockSummaries(t *testing.T) {
	g := fixtureGraph(t)
	step := node(t, g, "callgraph/a.worker.step")
	if nets := step.NetLockNames(g); len(nets) != 1 || nets["worker.mu"] != 0 {
		t.Errorf("step net locks = %v, want worker.mu balanced at 0", nets)
	}
	for _, key := range []string{"callgraph/a.helper", "callgraph/a.lockChain"} {
		if acq := node(t, g, key).TransitiveAcquireNames(g); len(acq) != 1 || acq[0] != "worker.mu" {
			t.Errorf("%s transitive acquires = %v, want [worker.mu]", key, acq)
		}
	}
}

func TestCallGraphStopReachSamePackageOnly(t *testing.T) {
	g := fixtureGraph(t)
	runs := node(t, g, "callgraph/a.runs")
	if runs.HasStop {
		t.Error("runs has no direct stop marker; HasStop should be false")
	}
	if !runs.HasStopReach {
		t.Error("runs reaches waitDone's receive in the same package; HasStopReach should be true")
	}
	if cross := node(t, g, "callgraph/a.crossWait"); cross.HasStopReach {
		t.Error("crossWait's only marker sits across a package boundary; HasStopReach should be false")
	}
}
