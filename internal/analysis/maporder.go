package analysis

import (
	"go/ast"
	"go/types"
)

// orderSensitiveSinks are the built-in order-sensitive consumers: anything
// whose observable output (wire bytes, hop ledger, notification order,
// manifest rows, conflict-wave partitions) depends on the order its inputs
// arrive in. Package-internal sinks are marked at their declaration with
// //cqlint:sink instead of being listed here.
var orderSensitiveSinks = map[string]bool{
	"cqjoin/internal/chord.Node.Send":               true,
	"cqjoin/internal/chord.Node.DirectSend":         true,
	"cqjoin/internal/chord.Node.Multisend":          true,
	"cqjoin/internal/chord.Node.MultisendIterative": true,
	"cqjoin/internal/engine.EncodeMessage":          true,
	"cqjoin/internal/wire.EncodeTuple":              true,
	"cqjoin/internal/wire.EncodeQuery":              true,
	"cqjoin/internal/wire.Buffer.PutUvarint":        true,
	"cqjoin/internal/wire.Buffer.PutVarint":         true,
	"cqjoin/internal/wire.Buffer.PutString":         true,
	"cqjoin/internal/wire.Buffer.PutValue":          true,
	"cqjoin/internal/obs.Collector.Add":             true,
	"cqjoin/internal/engine.Engine.partitionWaves":  true,
}

// MapOrderAnalyzer flags `range` statements over maps whose loop body
// feeds an order-sensitive sink directly: Go map iteration order is
// random, so such a loop leaks nondeterminism straight into wire traffic,
// notification order, manifest rows or conflict-wave partitions. The
// deterministic pattern is collect keys → sort → range the sorted slice
// (see engine/merge.go). The check is syntactic per loop body — calls made
// by functions the body invokes are not traced — so sinks reached through
// helpers should mark the helper itself with //cqlint:sink.
var MapOrderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration feeding wire encodes, sends, manifests or wave partitions without sorting",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			ast.Inspect(rng.Body, func(inner ast.Node) bool {
				call, ok := inner.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.Pkg.Info, call)
				if fn == nil {
					return true
				}
				if orderSensitiveSinks[funcKey(fn)] || pass.Prog.IsMarkedSink(fn) {
					pass.Reportf(call.Pos(), "%s called while ranging over a map: iteration order is random; collect keys, sort, then send", fn.Name())
				}
				return true
			})
			return true
		})
	}
	return nil
}
