// Package b is the cross-package half of the stop-path fixture: Wait has
// a stop marker, but callers in package a must not inherit it — stop
// reachability propagates through same-package callees only.
package b

func Wait(ch chan struct{}) {
	<-ch
}
