// Package a exercises the call-graph builder directly (no analyzer):
// recursion and mutual recursion terminate the fixpoint, method values
// become value edges, interface dispatch fans out to every module
// implementation, lock summaries propagate transitively, and stop-path
// reachability respects the same-package rule.
package a

import (
	"sync"

	"callgraph/b"
)

// fact is directly recursive: its callee set contains itself.
func fact(n int) int {
	if n <= 1 {
		return 1
	}
	return n * fact(n-1)
}

// even and odd are mutually recursive.
func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

// doer is dispatched through class-hierarchy analysis: calling do on the
// interface reaches both implementations.
type doer interface{ do() }

type impl1 struct{}
type impl2 struct{}

func (impl1) do() {}
func (impl2) do() {}

func dispatch(d doer) {
	d.do()
}

// worker carries the lock summary cases: step is lock-balanced (the
// deferred unlock nets the acquisition to zero), and lockChain reaches
// the acquisition two calls away.
type worker struct {
	mu sync.Mutex
}

func (w *worker) step() {
	w.mu.Lock()
	defer w.mu.Unlock()
}

// takeValue references step as a method value without calling it.
func takeValue(w *worker) func() {
	return w.step
}

func lockChain(w *worker) {
	helper(w)
}

func helper(w *worker) {
	w.step()
}

// waitDone holds a stop marker; runs proves it through a same-package
// call; crossWait must NOT inherit one through the package boundary.
func waitDone(ch chan struct{}) {
	<-ch
}

func runs(ch chan struct{}) {
	waitDone(ch)
}

func crossWait(ch chan struct{}) {
	b.Wait(ch)
}
