// Package b exercises the wiretag analyzer's value-level rules on a bare
// tag block: a duplicated wire value and a gap before 5 (dense would be
// 1..3). With no codec functions at all, every tag also lacks its encoder
// and decoder arms. Duplicate tags cannot carry decode arms anyway — two
// case labels with the same constant value do not compile — which is why
// these rules get their own fixture package.
package b

const (
	tagOne  = 1 // want "tag values are not dense" "tag tagOne is not written by any encoder arm" "tag tagOne has no decode arm"
	tagTwo  = 2 // want "tag tagTwo is not written by any encoder arm" "tag tagTwo has no decode arm"
	tagCopy = 2 // want "tag tagCopy duplicates the wire value 2 of tagTwo" "tag tagCopy is not written by any encoder arm" "tag tagCopy has no decode arm"
	tagFive = 5 // want "tag tagFive is not written by any encoder arm" "tag tagFive has no decode arm"
)
