// Package a exercises the wiretag analyzer's arm-level rules over a
// miniature codec: every tag constant needs exactly one encoder arm, one
// decode arm in ascending tag order carrying (or delegating to) a
// //wire:field dec directive, and a size directive for its message type.
// The values 1..4 are dense and unique, so the value-level rules stay
// silent here (wiretag/b covers them).
package a

type wbuf struct{ n int }

func (w *wbuf) putUvarint(v uint64) { w.n += 8 }

type rbuf struct{}

func (r *rbuf) uvarint() uint64 { return 0 }

type msgA struct{ X uint64 }
type msgB struct{ Y uint64 }
type msgC struct{ Z uint64 }

const (
	tagA = 1
	tagB = 2 // want "tag tagB message type msgB has no //wire:field size directive"
	tagC = 3
	tagD = 4 // want "tag tagD is not written by any encoder arm" "tag tagD has no decode arm"
)

// EncodeMessage writes one message behind its tag prefix; the type-switch
// arms bind each tag to its message type.
func EncodeMessage(w *wbuf, m interface{}) {
	switch m := m.(type) {
	case *msgA:
		w.putUvarint(tagA)
		w.putUvarint(m.X)
	case *msgB:
		w.putUvarint(tagB)
		w.putUvarint(m.Y)
	case *msgC:
		w.putUvarint(tagC)
		w.putUvarint(m.Z)
	}
}

// DecodeMessage reads one message by tag. The tagA arm is covered by its
// delegate's directive; the tagC arm carries a directive for the wrong
// type; the tagB arm is both out of order and unannotated.
func DecodeMessage(r *rbuf) interface{} {
	switch r.uvarint() {
	case tagA:
		return decodeA(r)
	//wire:field dec msgB Y
	case tagC: // want "decode arm for tagC carries //wire:field dec msgB but the encoder arm handles msgC"
		return decodeC(r)
	case tagB: // want "decode arm for tagB .tag 2. is out of order after tagC .tag 3." "decode arm for tagB has no //wire:field dec directive"
		return &msgB{Y: r.uvarint()}
	}
	return nil
}

//wire:field dec msgA X
func decodeA(r *rbuf) *msgA { return &msgA{X: r.uvarint()} }

func decodeC(r *rbuf) *msgC { return &msgC{Z: r.uvarint()} }

//wire:field size msgA X
func sizeA(m *msgA) int { return 8 }

//wire:field size msgC Z
func sizeC(m *msgC) int { return 8 }
