// Package walrec exercises the wiretag analyzer over the WAL record
// codec's shape (internal/durable/record.go): typed byte tags derived
// from iota, an any-typed record switch with error returns, and a decode
// switch over a converted uvarint. The clean triple (subRec/delRec)
// proves the shape itself is accepted; pubRec's missing size arm and the
// orphaned tagView pin the incomplete-triple diagnostics.
package walrec

type wbuf struct{ n int }

func (w *wbuf) putUvarint(v uint64) { w.n += 8 }
func (w *wbuf) putString(s string)  { w.n += len(s) }

type rbuf struct{}

func (r *rbuf) uvarint() uint64 { return 0 }
func (r *rbuf) str() string     { return "" }

type subRec struct{ SQL string }
type pubRec struct{ Node string }
type delRec struct{ Node string }
type viewRec struct{ Version uint64 }

// Record tags: dense, typed, iota-derived like the WAL's.
const (
	tagSub byte = iota + 1
	tagPub      // want "tag tagPub message type pubRec has no //wire:field size directive"
	tagDel
	tagView // want "tag tagView is not written by any encoder arm" "tag tagView has no decode arm"
)

// encodeRecord writes one record, tag first, like the WAL codec.
func encodeRecord(w *wbuf, rec any) error {
	switch m := rec.(type) {
	case subRec:
		w.putUvarint(uint64(tagSub))
		w.putString(m.SQL)
	case pubRec:
		w.putUvarint(uint64(tagPub))
		w.putString(m.Node)
	case delRec:
		w.putUvarint(uint64(tagDel))
		w.putString(m.Node)
	}
	return nil
}

// recordSize carries the size arms; pubRec's is deliberately missing.
func recordSize(rec any) int {
	switch m := rec.(type) {
	//wire:field size subRec SQL
	case subRec:
		return 1 + len(m.SQL)
	//wire:field size delRec Node
	case delRec:
		return 1 + len(m.Node)
	}
	return 0
}

// decodeRecord reads one record by tag, converting the uvarint the way
// the WAL decoder does.
func decodeRecord(r *rbuf) (any, error) {
	tag := r.uvarint()
	switch byte(tag) {
	//wire:field dec subRec SQL
	case tagSub:
		return subRec{SQL: r.str()}, nil
	//wire:field dec pubRec Node
	case tagPub:
		return pubRec{Node: r.str()}, nil
	//wire:field dec delRec Node
	case tagDel:
		return delRec{Node: r.str()}, nil
	}
	return nil, nil
}

var _ = viewRec{}
