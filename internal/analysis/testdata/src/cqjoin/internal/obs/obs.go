// Package obs is a fixture stand-in for the real metrics registry.
package obs

type Counter struct{}
type Gauge struct{}
type Histogram struct{}
type CounterVec struct{}

type Registry struct{}

func (r *Registry) Counter(name string) *Counter                      { return nil }
func (r *Registry) Gauge(name string) *Gauge                          { return nil }
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram { return nil }
func (r *Registry) CounterVec(name string) *CounterVec                { return nil }

type Entry struct{ Name string }

type Collector struct{}

func (c *Collector) Add(e Entry) {}
