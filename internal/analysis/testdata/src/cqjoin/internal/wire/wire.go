// Package wire is a fixture stand-in for the real codec buffer.
package wire

type Buffer struct{ b []byte }

func (w *Buffer) PutUvarint(v uint64) {}
func (w *Buffer) PutVarint(v int64)   {}
func (w *Buffer) PutString(s string)  {}
