// Package chord is a fixture stand-in for the real overlay package: the
// analyzers resolve sinks and sends by import path + receiver + method
// name, so only the shape matters, not the behaviour.
package chord

type Message interface{}

type Deliverable struct {
	Msg    Message
	Target uint64
}

type Node struct{}

func (n *Node) Send(msg Message, target uint64) (*Node, int, error) { return nil, 0, nil }
func (n *Node) DirectSend(msg Message, dst *Node) bool              { return false }
func (n *Node) Multisend(batch []Deliverable) ([]*Node, int, error) { return nil, 0, nil }
func (n *Node) MultisendIterative(batch []Deliverable) ([]*Node, int, error) {
	return nil, 0, nil
}
