// Package goroleakfix exercises the goroleak analyzer from inside its
// production scope (the package path sits under cqjoin/internal/transport,
// which the analyzer's filter covers): every go statement must have a
// provable stop path — a WaitGroup Done, a select with a receive, a
// channel receive or range — in the spawned body or its same-package
// callees.
package goroleakfix

import "sync"

type server struct {
	wg   sync.WaitGroup
	done chan struct{}
}

// leakyLoop has no stop marker anywhere: spawning it is a leak.
func (s *server) leakyLoop() {
	for i := 0; ; i++ {
		_ = i
	}
}

// stoppedLoop pairs a Done with a receive-terminated select.
func (s *server) stoppedLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		}
	}
}

// runHelper proves its stop path one call away: HasStopReach propagates
// through same-package callees.
func (s *server) runHelper() {
	s.run()
}

func (s *server) run() {
	<-s.done
}

// drain ranges over a channel, the third marker kind.
func drain(ch chan int) {
	for range ch {
	}
}

func spawns(s *server, ch chan int) {
	go s.leakyLoop() // want "goroutine leakyLoop has no provable stop path"
	go s.stoppedLoop()
	go s.runHelper()
	go drain(ch)
	go func() { // want "goroutine has no provable stop path"
		for {
		}
	}()
	go func() {
		defer s.wg.Done()
		<-s.done
	}()
	f := func() { <-s.done }
	go f() // want "goroutine target cannot be resolved statically"
	//lint:allow goroleak fixture documents the intentionally unbounded spawn
	go s.leakyLoop()
}
