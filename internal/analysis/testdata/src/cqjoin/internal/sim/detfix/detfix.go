// Package detfix exercises the determinism analyzer. Its fixture path
// sits under cqjoin/internal/sim so the analyzer's package scope applies,
// exactly as it would to real simulator code.
package detfix

import (
	"math/rand"
	"time"
)

func wallClock() int64 {
	t := time.Now()                            // want "time.Now is non-deterministic"
	return t.UnixNano() + int64(time.Since(t)) // want "time.Since is non-deterministic"
}

func sleepy() {
	time.Sleep(time.Second) // want "time.Sleep is non-deterministic"
}

func globalRand() int {
	rand.Seed(42)       // want "rand.Seed draws from the unseeded global source"
	return rand.Intn(7) // want "rand.Intn draws from the unseeded global source"
}

// seeded is the sanctioned pattern: an explicit seed threaded into a
// dedicated source. No diagnostics.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// suppressed shows the escape hatch: the wall clock is allowed here with a
// recorded reason.
func suppressed() int64 {
	//lint:allow determinism fixture demonstrating the escape hatch
	return time.Now().UnixNano()
}

func suppressedTrailing() {
	time.Sleep(time.Millisecond) //lint:allow determinism trailing-comment form
}
