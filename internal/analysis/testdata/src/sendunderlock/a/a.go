// Package a exercises the sendunderlock analyzer: overlay sends while a
// mutex locked in the same function is held.
package a

import (
	"sync"

	"cqjoin/internal/chord"
)

type state struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	node *chord.Node
}

func sendWhileLocked(st *state, msg chord.Message) {
	st.mu.Lock()
	st.node.Send(msg, 1) // want "Send called while a mutex locked in this function is still held"
	st.mu.Unlock()
}

func sendAfterUnlock(st *state, msg chord.Message) {
	st.mu.Lock()
	st.mu.Unlock()
	st.node.Send(msg, 1) // lock released: fine
}

func sendUnderDeferredUnlock(st *state, batch []chord.Deliverable) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.node.Multisend(batch) // want "Multisend called while a mutex locked in this function is still held"
}

func sendUnderReadLock(st *state, batch []chord.Deliverable) {
	st.rw.RLock()
	st.node.MultisendIterative(batch) // want "MultisendIterative called while a mutex locked in this function is still held"
	st.rw.RUnlock()
}

func directSendWhileLocked(st *state, msg chord.Message, dst *chord.Node) {
	st.mu.Lock()
	st.node.DirectSend(msg, dst) // want "DirectSend called while a mutex locked in this function is still held"
	st.mu.Unlock()
}

// collectThenSend is the sanctioned discipline: mutate under the lock,
// release, then talk to the network. No diagnostics.
func collectThenSend(st *state, pending []chord.Deliverable) {
	st.mu.Lock()
	batch := make([]chord.Deliverable, len(pending))
	copy(batch, pending)
	st.mu.Unlock()
	st.node.Multisend(batch)
}

// closureIsSeparate: a FuncLit body runs under its own discipline — the
// enclosing function's lock state does not leak into it, and its sends
// are not charged to the enclosing function.
func closureIsSeparate(st *state, msg chord.Message) func() {
	st.mu.Lock()
	defer st.mu.Unlock()
	return func() {
		st.node.Send(msg, 1)
	}
}

func suppressed(st *state, msg chord.Message) {
	st.mu.Lock()
	//lint:allow sendunderlock the in-process fixture cannot deadlock
	st.node.Send(msg, 1)
	st.mu.Unlock()
}
