// Package a exercises the obsregister analyzer: metric registration must
// use constant names and bounds, sit outside loops, and happen at one
// site per package.
package a

import "cqjoin/internal/obs"

const latencyName = "a.latency"

var bucketTable = []int64{1, 2, 4, 8}

type holder struct {
	reqs *obs.Counter
	lat  *obs.Histogram
}

// newHolder is the sanctioned shape: constant names, constant bounds or a
// shared bucket table, one site per metric. No diagnostics.
func newHolder(reg *obs.Registry) *holder {
	return &holder{
		reqs: reg.Counter("a.requests"),
		lat:  reg.Histogram(latencyName, bucketTable...),
	}
}

func registerInLoop(reg *obs.Registry) {
	for i := 0; i < 3; i++ {
		reg.Counter("a.loop") // want "metric registration inside a loop"
	}
}

func dynamicName(reg *obs.Registry, shard string) {
	reg.Gauge("a.shard." + shard) // want "metric name must be a constant string"
}

func duplicateName(reg *obs.Registry) {
	reg.Counter("a.requests") // want "metric \"a.requests\" already registered"
}

func dynamicBounds(reg *obs.Registry, max int64) {
	reg.Histogram("a.hist", 1, 2, max) // want "histogram bounds must be constants or a spread package-level bucket table"
}

func localSpread(reg *obs.Registry) {
	local := []int64{1, 2}
	reg.Histogram("a.hist2", local...) // want "histogram bounds must be constants or a spread package-level bucket table"
}

func suppressed(reg *obs.Registry, n int) {
	for i := 0; i < n; i++ {
		//lint:allow obsregister fixture: the loop registers distinct test registries
		reg.Counter("a.suppressed")
	}
}
