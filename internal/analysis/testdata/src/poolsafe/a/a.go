// Package a exercises the poolsafe analyzer: single-accessor routing,
// Reset coverage for pooled types that have one, path-sensitive double
// Put and use-after-Put, receiver-releasing methods, and the retained
// alias rule for returns under a deferred Put.
package a

import "sync"

// bufPool: accessor discipline. getBuf/putBuf are the accessors because
// they contain the first Get/Put sites in file order; every other direct
// call is a violation.
var bufPool = sync.Pool{New: func() interface{} { return new([]byte) }}

func getBuf() *[]byte  { return bufPool.Get().(*[]byte) }
func putBuf(b *[]byte) { bufPool.Put(b) }

func rogueGet() *[]byte {
	return bufPool.Get().(*[]byte) // want "bufPool.Get called in rogueGet; route every Get through the single accessor getBuf"
}

func roguePut(b *[]byte) {
	bufPool.Put(b) // want "bufPool.Put called in roguePut; route every Put through the single accessor putBuf"
}

// framePool: its pooled type has a Reset method that neither accessor
// calls, so recycled frames leak their previous contents.
type frame struct{ data []byte }

func (f *frame) Reset() { f.data = f.data[:0] }

var framePool = sync.Pool{New: func() interface{} { return new(frame) }}

func getFrame() *frame { return framePool.Get().(*frame) }

func putFrame(f *frame) { // want "has a Reset method but neither the Get nor the Put accessor of framePool calls it"
	framePool.Put(f)
}

// scratchPool: the fixed twin of framePool — the put accessor resets.
type scratch struct{ data []byte }

func (s *scratch) Reset() { s.data = s.data[:0] }

var scratchPool = sync.Pool{New: func() interface{} { return new(scratch) }}

func getScratch() *scratch { return scratchPool.Get().(*scratch) }

func putScratch(s *scratch) {
	s.Reset()
	scratchPool.Put(s)
}

// itemPool: release tracking through the accessor and through a
// receiver-releasing method.
type item struct{ n int }

var itemPool = sync.Pool{New: func() interface{} { return new(item) }}

func getItem() *item   { return itemPool.Get().(*item) }
func putItem(it *item) { itemPool.Put(it) }

// recycle releases its own receiver, so calling it counts as a Put.
func (it *item) recycle() { putItem(it) }

func doublePut(it *item) {
	putItem(it)
	putItem(it) // want "pooled it is released twice on this path"
}

func doubleViaMethod(it *item) {
	it.recycle()
	putItem(it) // want "pooled it is released twice on this path"
}

func useAfterPut(it *item) int {
	putItem(it)
	return it.n // want "pooled it used after Put"
}

// branchHygiene is clean: the releasing branch returns, so the fallthrough
// path still owns the object.
func branchHygiene(it *item, ok bool) {
	if ok {
		putItem(it)
		return
	}
	putItem(it)
}

// reassigned is clean: after a fresh Get the variable is a new object.
func reassigned(it *item) int {
	putItem(it)
	it = getItem()
	return it.n
}

// dataPool pools plain byte slices for the retained-alias rule.
var dataPool = sync.Pool{New: func() interface{} { return []byte(nil) }}

func getData() []byte  { return dataPool.Get().([]byte) }
func putData(b []byte) { dataPool.Put(b) }

func retained(n int) []byte {
	b := getData()
	defer putData(b)
	return b[:n] // want "returning pooled b while a deferred Put of it is pending"
}

// copied is the clean shape: the bytes leave the pooled buffer before it
// is recycled.
func copied(n int) []byte {
	b := getData()
	defer putData(b)
	out := make([]byte, n)
	copy(out, b[:n])
	return out
}

func suppressed(it *item) {
	putItem(it)
	//lint:allow poolsafe fixture re-gets the object before any reuse
	putItem(it)
}
