// Package walrec exercises the wiresync analyzer over the WAL record
// codec's shape (internal/durable/record.go): value-typed record structs
// switched through an any parameter, with an opaque []byte frame field.
// recGood is fully in sync; recDrift and recNoDec pin the drift
// diagnostics in this shape.
package walrec

type wbuf struct{ n int }

func (w *wbuf) putString(s string) { w.n += len(s) }
func (w *wbuf) putBytes(b []byte)  { w.n += len(b) }

type rbuf struct{}

func (r *rbuf) tag() byte     { return 0 }
func (r *rbuf) str() string   { return "" }
func (r *rbuf) bytes() []byte { return nil }

// recGood mirrors deliveryRec: a node key plus an opaque encoded frame.
type recGood struct {
	Node  string
	Frame []byte
}

// recDrift's encoder and size directives disagree on the field list.
type recDrift struct {
	Node string
	SQL  string
}

// recNoDec has the enc/size pair but no decode arm was ever annotated.
type recNoDec struct{ Node string }

func encodeRecord(w *wbuf, rec any) error {
	switch m := rec.(type) {
	//wire:field enc recGood Node Frame
	case recGood:
		w.putString(m.Node)
		w.putBytes(m.Frame)
	//wire:field enc recDrift Node SQL
	case recDrift:
		w.putString(m.Node)
		w.putString(m.SQL)
	//wire:field enc recNoDec Node
	case recNoDec: // want "type recNoDec has encoder and size directives but no decoder //wire:field dec recNoDec"
		w.putString(m.Node)
	}
	return nil
}

func recordSize(rec any) int {
	switch m := rec.(type) {
	//wire:field size recGood Node Frame
	case recGood:
		return len(m.Node) + len(m.Frame)
	//wire:field size recDrift Node
	case recDrift: // want "wire fields of recDrift disagree: encoder declares .Node SQL., size declares .Node."
		return len(m.Node)
	//wire:field size recNoDec Node
	case recNoDec:
		return len(m.Node)
	}
	return 0
}

func decodeRecord(r *rbuf) any {
	switch r.tag() {
	//wire:field dec recGood Node Frame
	case 1:
		return recGood{Node: r.str(), Frame: r.bytes()}
	//wire:field dec recDrift Node SQL
	case 2:
		return recDrift{Node: r.str(), SQL: r.str()}
	}
	return nil
}
