// Package a exercises the wiresync analyzer: paired //wire:field
// directives between an encoder type switch, a size type switch and a
// decode tag switch, with every drift direction represented.
package a

type buffer struct{ n int }

func (b *buffer) putInt(v int)       { b.n += 8 }
func (b *buffer) putString(s string) { b.n += len(s) }

type reader struct{}

func (r *reader) tag() byte    { return 0 }
func (r *reader) rint() int    { return 0 }
func (r *reader) rstr() string { return "" }
func (r *reader) rcount() int  { return 0 }

type message interface{ tag() byte }

// msgGood is fully in sync: no diagnostics anywhere.
type msgGood struct {
	X int
	Y string
}

func (msgGood) tag() byte { return 1 }

// msgDrift's two directives disagree on the field list.
type msgDrift struct {
	X int
	Y string
}

func (msgDrift) tag() byte { return 2 }

// msgEncOnly has an encoder directive but no size counterpart.
type msgEncOnly struct{ X int }

func (msgEncOnly) tag() byte { return 3 }

// msgSizeOnly has a size directive but no encoder counterpart.
type msgSizeOnly struct{ X int }

func (msgSizeOnly) tag() byte { return 4 }

// msgBadBody's encoder writes its fields in a different order than the
// directive declares.
type msgBadBody struct {
	X int
	Y string
}

func (msgBadBody) tag() byte { return 5 }

// msgUnannotated has a case arm in the annotated encoder but no directive.
type msgUnannotated struct{ X int }

func (msgUnannotated) tag() byte { return 6 }

// msgMissing declares field Y on both sides but the size arm never reads it.
type msgMissing struct {
	X int
	Y string
}

func (msgMissing) tag() byte { return 7 }

// sub is a nested struct encoded by a helper pair.
type sub struct {
	A int
	B string
}

// msgEpochFrame mirrors the hot-key sharding frames: a multi-scalar epoch
// header (Input Shard Version K) followed by two repeated payload fields,
// all in sync — no diagnostics.
type msgEpochFrame struct {
	Input   string
	Shard   int
	Version int
	K       int
	Entries []sub
	Tuples  []string
}

func (msgEpochFrame) tag() byte { return 8 }

func encode(w *buffer, msg message) {
	switch m := msg.(type) {
	//wire:field enc msgGood X Y
	case msgGood:
		w.putInt(m.X)
		w.putString(m.Y)
	//wire:field enc msgDrift X Y
	case msgDrift:
		w.putInt(m.X)
		w.putString(m.Y)
	//wire:field enc msgEncOnly X
	case msgEncOnly: // want "has an encoder directive but no size //wire:field"
		w.putInt(m.X)
	//wire:field enc msgBadBody X Y
	case msgBadBody: // want "msgBadBody encoder writes fields .Y X. but //wire:field declares .X Y."
		w.putString(m.Y)
		w.putInt(m.X)
	case msgUnannotated: // want "case msgUnannotated has no //wire:field directive"
		w.putInt(m.X)
	//wire:field enc msgMissing X Y
	case msgMissing: // want "type msgMissing has encoder and size directives but no decoder //wire:field dec msgMissing"
		w.putInt(m.X)
		w.putString(m.Y)
	//wire:field enc msgEpochFrame Input Shard Version K Entries Tuples
	case msgEpochFrame:
		w.putString(m.Input)
		w.putInt(m.Shard)
		w.putInt(m.Version)
		w.putInt(m.K)
		w.putInt(len(m.Entries))
		for _, e := range m.Entries {
			encodeSub(w, &e)
		}
		w.putInt(len(m.Tuples))
		for _, t := range m.Tuples {
			w.putString(t)
		}
	default:
		_ = m
	}
}

//wire:field enc sub A B
func encodeSub(w *buffer, s *sub) {
	w.putInt(s.A)
	w.putString(s.B)
}

func size(msg message) int {
	switch m := msg.(type) {
	//wire:field size msgGood X Y
	case msgGood:
		return 8 + len(m.Y) + zero(m.X)
	//wire:field size msgDrift X
	case msgDrift: // want "wire fields of msgDrift disagree: encoder declares .X Y., size declares .X."
		return zero(m.X)
	//wire:field size msgSizeOnly X
	case msgSizeOnly: // want "has a size directive but no encoder //wire:field"
		return zero(m.X)
	//wire:field size msgBadBody X Y
	case msgBadBody:
		return zero(m.X) + len(m.Y)
	//wire:field size msgMissing X Y
	case msgMissing: // want "msgMissing size function has no size term for declared field Y"
		return zero(m.X)
	//wire:field size msgEpochFrame Input Shard Version K Entries Tuples
	case msgEpochFrame:
		n := len(m.Input) + zero(m.Shard) + zero(m.Version) + zero(m.K) + 8
		for _, e := range m.Entries {
			n += sizeSub(&e)
		}
		n += 8
		for _, t := range m.Tuples {
			n += len(t)
		}
		return n
	default:
		return 0
	}
}

//wire:field size sub A B
func sizeSub(s *sub) int {
	return zero(s.A) + len(s.B)
}

// view mirrors the membership frame codecs: a version scalar plus a
// repeated string field, encoded and sized by a standalone helper pair.
type view struct {
	Version int
	Procs   []string
}

//wire:field enc view Version Procs
func encodeView(w *buffer, v *view) {
	w.putInt(v.Version)
	w.putInt(len(v.Procs))
	for _, p := range v.Procs {
		w.putString(p)
	}
}

//wire:field size view Version Procs
func sizeView(v *view) int {
	n := zero(v.Version) + 8
	for _, p := range v.Procs {
		n += len(p)
	}
	return n
}

// helperDrift's standalone helper pair disagrees on the field list — the
// same drift msgDrift pins for case arms, in function form.
type helperDrift struct {
	A int
	B int
}

//wire:field enc helperDrift A B
func encodeHelperDrift(w *buffer, h *helperDrift) {
	w.putInt(h.A)
	w.putInt(h.B)
}

//wire:field size helperDrift A
func sizeHelperDrift(h *helperDrift) int { // want "wire fields of helperDrift disagree: encoder declares .A B., size declares .A."
	return zero(h.A)
}

func zero(int) int { return 8 }

// decode mirrors the engine codec's DecodeMessage: a tag-valued switch
// whose arms carry dec directives or delegate to dec-annotated helpers.
// Annotating any arm makes the whole switch (and the pairing check)
// demand decode coverage, which is what pins msgMissing's missing dec
// directive above.
func decode(r *reader) message {
	switch r.tag() {
	//wire:field dec msgGood X Y
	case 1:
		return msgGood{X: r.rint(), Y: r.rstr()}
	//wire:field dec msgBadBody X Y
	case 5: // want "msgBadBody decoder fills fields .Y X. but //wire:field declares .X Y."
		return msgBadBody{Y: r.rstr(), X: r.rint()}
	case 6: // want "decode arm has no //wire:field dec directive"
		return msgUnannotated{X: r.rint()}
	case 8:
		return decodeEpochFrame(r)
	}
	return nil
}

// decodeEpochFrame fills its fields through a var subject; the accessed
// field order must match the directive (and so the encoder's wire order).
//
//wire:field dec msgEpochFrame Input Shard Version K Entries Tuples
func decodeEpochFrame(r *reader) message {
	var m msgEpochFrame
	m.Input = r.rstr()
	m.Shard = r.rint()
	m.Version = r.rint()
	m.K = r.rint()
	for i := 0; i < r.rcount(); i++ {
		m.Entries = append(m.Entries, decodeSub(r))
	}
	for i := 0; i < r.rcount(); i++ {
		m.Tuples = append(m.Tuples, r.rstr())
	}
	return m
}

//wire:field dec sub A B
func decodeSub(r *reader) sub {
	return sub{A: r.rint(), B: r.rstr()}
}

//wire:field dec view Version Procs
func decodeView(r *reader) *view {
	var v view
	v.Version = r.rint()
	for i := 0; i < r.rcount(); i++ {
		v.Procs = append(v.Procs, r.rstr())
	}
	return &v
}

// msgDecDrift's decode directive disagrees with the encoder's field list;
// the helper body is pairing-only (no composite, no var subject), so only
// the pairing check fires.
type msgDecDrift struct {
	A int
	B int
}

//wire:field enc msgDecDrift A B
func encodeDecDrift(w *buffer, m *msgDecDrift) {
	w.putInt(m.A)
	w.putInt(m.B)
}

//wire:field size msgDecDrift A B
func sizeDecDrift(m *msgDecDrift) int {
	return zero(m.A) + zero(m.B)
}

//wire:field dec msgDecDrift A
func decodeDecDrift(r *reader) *msgDecDrift { // want "wire fields of msgDecDrift disagree: encoder declares .A B., decoder declares .A."
	return nil
}

//wire:field enc ghost X // want "not attached to a case arm or function"
var unrelated = 0
