// Package outofscope sits outside the deterministic package set, so the
// determinism analyzer must stay silent here (cmd/cqjoind and the
// examples rely on this exemption).
package outofscope

import "time"

func WallClockIsFine() int64 { return time.Now().UnixNano() }
