// Package a exercises the lockorder analyzer: transitive sends reached
// through a call chain while a mutex is held, direct sends under a lock,
// lock-order cycles between two classes, and the //lint:allow escape
// hatch. The chord import resolves to the fixture fake under this
// testdata root, whose Node.Send et al carry the production funcKeys the
// analyzer's sink set matches on.
package a

import (
	"sync"

	"cqjoin/internal/chord"
)

type state struct {
	mu   sync.Mutex
	ack  sync.Mutex
	node *chord.Node
}

// sendHelper is the sink end of the transitive chain: it sends directly.
func (s *state) sendHelper() {
	s.node.Send(nil, 0)
}

// hop is the middle of the chain; it holds no lock itself.
func (s *state) hop() {
	s.sendHelper()
}

// transitiveSendUnderLock calls into a chain that reaches chord.Node.Send
// while mu is pinned by the deferred unlock.
func (s *state) transitiveSendUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hop() // want "call to hop reaches a blocking send .lockorder/a.state.hop -> lockorder/a.state.sendHelper -> cqjoin/internal/chord.Node.Send. while mutex state.mu is held"
}

// directSendUnderLock sends on the overlay with mu still held.
func (s *state) directSendUnderLock() {
	s.mu.Lock()
	s.node.Send(nil, 0) // want "Send blocks on the overlay/transport while mutex state.mu is held"
	s.mu.Unlock()
}

// sendAfterUnlock is the clean shape: the lock is released first.
func (s *state) sendAfterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.node.Send(nil, 0)
}

// lockAThenB and lockBThenA disagree on acquisition order, closing a
// cycle between the two classes; each inner acquisition is reported.
func (s *state) lockAThenB() {
	s.mu.Lock()
	s.ack.Lock() // want "acquiring state.ack while state.mu is held closes a lock-order cycle"
	s.ack.Unlock()
	s.mu.Unlock()
}

func (s *state) lockBThenA() {
	s.ack.Lock()
	s.mu.Lock() // want "acquiring state.mu while state.ack is held closes a lock-order cycle"
	s.mu.Unlock()
	s.ack.Unlock()
}

// suppressed documents the escape hatch: the finding on the next line is
// swallowed by the allow directive.
func (s *state) suppressed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow lockorder fixture documents the intentional-send escape hatch
	s.node.Send(nil, 0)
}
