// Package a exercises the maporder analyzer: map iteration feeding an
// order-sensitive sink is flagged; the collect-sort-send pattern and
// sink-free loops are not.
package a

import (
	"sort"

	"cqjoin/internal/chord"
	"cqjoin/internal/wire"
)

func rangeIntoSend(n *chord.Node, pending map[string]chord.Message) {
	for key, msg := range pending {
		n.Send(msg, uint64(len(key))) // want "Send called while ranging over a map"
	}
}

func rangeIntoEncode(w *wire.Buffer, fields map[string]string) {
	for k, v := range fields {
		w.PutString(k) // want "PutString called while ranging over a map"
		w.PutString(v) // want "PutString called while ranging over a map"
	}
}

// collectSortSend is the deterministic pattern: drain the map into a
// slice, sort, then feed the sink from the slice. No diagnostics.
func collectSortSend(n *chord.Node, pending map[string]chord.Message) {
	keys := make([]string, 0, len(pending))
	for k := range pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		n.Send(pending[k], uint64(len(k)))
	}
}

// localSink is an order-sensitive helper marked at its declaration.
//
//cqlint:sink
func localSink(v string) {}

func rangeIntoMarkedSink(m map[string]string) {
	for _, v := range m {
		localSink(v) // want "localSink called while ranging over a map"
	}
}

func rangeIntoSuppressedSink(m map[string]string) {
	for _, v := range m {
		//lint:allow maporder single-entry map populated by the caller
		localSink(v)
	}
}

// plainWork has no sink in the loop body; building intermediate state from
// a map in arbitrary order is fine.
func plainWork(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
