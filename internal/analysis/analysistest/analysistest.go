// Package analysistest is the golden-file harness for cqlint analyzer
// unit tests, mirroring golang.org/x/tools/go/analysis/analysistest on
// the standard library only: it loads fixture packages from a
// testdata/src root, runs one analyzer with //lint:allow suppression
// applied, and compares the diagnostics against `// want "regexp"`
// comments in the fixture sources.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"regexp"
	"strings"
	"testing"

	"cqjoin/internal/analysis"
)

// Run loads the named fixture packages from srcRoot, runs a over them,
// and reports any mismatch between diagnostics and want comments as test
// errors. Fixture packages may import fake dependency packages from the
// same srcRoot under their production import paths (e.g.
// cqjoin/internal/chord), which is how sink/send resolution is exercised
// without loading the real tree.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader, err := analysis.NewLoader("", srcRoot)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	var pkgs []*analysis.Package
	for _, path := range pkgPaths {
		p, err := loader.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		pkgs = append(pkgs, p)
	}
	// The Prog scans every loaded full package (fixture dependencies
	// included) for //cqlint:sink markers; the analyzer itself only runs
	// over the packages named by the test.
	prog := analysis.NewProg(loader, loader.FullPackages())
	prog.Packages = pkgs
	diags, err := prog.Run([]*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	wants := collectWants(t, loader.Fset, pkgs)
	matched := make(map[*want]bool)
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		var hit *want
		for _, w := range wants[key] {
			if !matched[w] && w.re.MatchString(d.Message) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
			continue
		}
		matched[hit] = true
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !matched[w] {
				t.Errorf("%s: no diagnostic matching %q", key, w.re)
			}
		}
	}
}

type want struct{ re *regexp.Regexp }

var wantRE = regexp.MustCompile(`// want (".*")\s*$`)
var wantStrRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants parses `// want "re" "re2"` comments, keyed by file:line.
// Scanning the raw source lines (rather than AST comments) keeps the
// harness independent of comment attachment rules.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*analysis.Package) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := fset.Position(f.Pos()).Filename
			if seen[name] {
				continue
			}
			seen[name] = true
			data, err := os.ReadFile(name)
			if err != nil {
				t.Fatalf("read %s: %v", name, err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				m := wantRE.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				key := fmt.Sprintf("%s:%d", name, i+1)
				for _, s := range wantStrRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(s[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, s[1], err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}
