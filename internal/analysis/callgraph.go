package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// callgraph.go is the interprocedural layer under lockorder, goroleak and
// poolsafe: an intra-module call graph over every fully loaded package,
// with a per-function summary of lock effects, send reachability and
// goroutine stop paths. The graph is built lazily, once per Prog, from
// the loader's full-package set (the module or fixture packages — stdlib
// imports are signature-only and contribute no nodes).
//
// The summaries are deliberately branch-insensitive: lock effects are the
// net sum of Lock/Unlock tokens in source order, so a function whose
// branches disagree (one path unlocks, another returns locked) summarizes
// to whichever direction releases more. Callers clamp the held count at
// zero, which biases every approximation toward fewer findings — the
// analyzers built on the graph are gates, and a gate that cries wolf gets
// deleted.

// blockingTransportCalls are the internal/transport entry points that
// block on sockets (dial, frame write, ack wait). Together with the
// chord overlay sends in networkSends they form lockorder's sink set.
var blockingTransportCalls = map[string]bool{
	"cqjoin/internal/transport.TCP.Deliver":      true,
	"cqjoin/internal/transport.TCP.DeliverBatch": true,
	"cqjoin/internal/transport.TCP.SendJoin":     true,
	"cqjoin/internal/transport.TCP.SendView":     true,
}

func isBlockingSend(fn *types.Func) bool {
	k := funcKey(fn)
	return networkSends[k] || blockingTransportCalls[k]
}

// FuncNode is one declared function or method with a body, plus the
// summary facts the interprocedural analyzers consume.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// NetLocks is the net Lock/Unlock count per lock class over the
	// body in source order (deferred unlocks included, closure bodies
	// excluded). A lock-balanced function nets zero; a function that
	// releases a caller-held lock (transport's writeAndAwait) nets
	// negative.
	NetLocks map[types.Object]int
	// Acquires are the lock classes this body locks directly.
	Acquires map[types.Object]bool
	// TransitiveAcquires adds every class any callee chain acquires.
	TransitiveAcquires map[types.Object]bool

	// DirectSend marks a body that calls a blocking send sink itself;
	// ReachesSend adds sends reached through callees. sendHop/sendSink
	// remember one representative path for diagnostics.
	DirectSend  bool
	ReachesSend bool
	sendHop     *FuncNode
	sendSink    *types.Func

	// HasStop marks a body containing a goroutine stop marker (WaitGroup
	// Done, select with a receive, channel receive or range); deferred
	// closures count, since they run in this function's extent.
	// HasStopReach adds markers reached through same-package callees
	// only: a receive buried in another subsystem (a transport RPC's
	// reply select) is incidental blocking, not this goroutine's
	// shutdown discipline.
	HasStop      bool
	HasStopReach bool

	calls        []*FuncNode // resolved calls outside closure bodies
	closureCalls []*FuncNode // resolved calls inside closure bodies
	valueRefs    []*FuncNode // method/function values referenced, not called
	guarded      []guardedCall
}

// guardedCall is a resolved call made while at least one lock class
// acquired in the same function is still held. targets carries the
// graph nodes the call can reach (several, for interface dispatch).
type guardedCall struct {
	pos     token.Pos
	fn      *types.Func
	targets []*FuncNode
	held    []types.Object
}

// Callees returns every function this node references (calls, deferred
// calls, closure-interior calls and method values), deduplicated, in
// funcKey order.
func (n *FuncNode) Callees() []*FuncNode {
	seen := make(map[*FuncNode]bool)
	var out []*FuncNode
	for _, group := range [][]*FuncNode{n.calls, n.closureCalls, n.valueRefs} {
		for _, c := range group {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return funcKey(out[i].Fn) < funcKey(out[j].Fn) })
	return out
}

// CalleeKeys renders Callees as funcKey strings (test helper).
func (n *FuncNode) CalleeKeys() []string {
	callees := n.Callees()
	keys := make([]string, len(callees))
	for i, c := range callees {
		keys[i] = funcKey(c.Fn)
	}
	return keys
}

// NetLockNames renders NetLocks keyed by display name (test helper).
func (n *FuncNode) NetLockNames(g *CallGraph) map[string]int {
	out := make(map[string]int, len(n.NetLocks))
	for obj, net := range n.NetLocks {
		out[g.LockName(obj)] = net
	}
	return out
}

// TransitiveAcquireNames renders TransitiveAcquires as sorted display
// names (test helper).
func (n *FuncNode) TransitiveAcquireNames(g *CallGraph) []string {
	out := make([]string, 0, len(n.TransitiveAcquires))
	for obj := range n.TransitiveAcquires {
		out = append(out, g.LockName(obj))
	}
	sort.Strings(out)
	return out
}

// finding is a pre-rendered diagnostic owned by a package; the lockorder
// pass re-reports it through its own Pass so //lint:allow applies.
type finding struct {
	pos token.Pos
	msg string
}

// lockEdge records "to was acquired while from was held" with the
// acquisition (or summary-carrying call) that created it.
type lockEdge struct {
	from, to types.Object
	pos      token.Pos
	pkg      *Package
}

// CallGraph is the whole-program graph plus the lockorder facts derived
// from it.
type CallGraph struct {
	prog     *Prog
	nodes    map[*types.Func]*FuncNode
	ordered  []*FuncNode // deterministic iteration order
	lockName map[types.Object]string

	edges      []lockEdge
	edgeSet    map[[2]types.Object]bool
	lockDiags  map[*Package][]finding
	ifaceImpls map[*types.Func][]*FuncNode // interface method -> implementations
}

// CallGraph returns the lazily built interprocedural graph for the
// program's full package set.
func (prog *Prog) CallGraph() *CallGraph {
	if prog.cg == nil {
		prog.cg = buildCallGraph(prog)
	}
	return prog.cg
}

// Node returns the graph node for a declared function, or nil.
func (g *CallGraph) Node(fn *types.Func) *FuncNode { return g.nodes[fn] }

// NodeByKey looks a node up by its funcKey ("pkgpath.Recv.Name").
func (g *CallGraph) NodeByKey(key string) *FuncNode {
	for _, n := range g.ordered {
		if funcKey(n.Fn) == key {
			return n
		}
	}
	return nil
}

// LockName is the human display name of a lock class: "pooledConn.wmu"
// for struct fields, the variable name otherwise.
func (g *CallGraph) LockName(obj types.Object) string {
	if name, ok := g.lockName[obj]; ok {
		return name
	}
	return obj.Name()
}

func buildCallGraph(prog *Prog) *CallGraph {
	g := &CallGraph{
		prog:      prog,
		nodes:     make(map[*types.Func]*FuncNode),
		lockName:  make(map[types.Object]string),
		edgeSet:   make(map[[2]types.Object]bool),
		lockDiags: make(map[*Package][]finding),
	}
	pkgs := prog.Loader.FullPackages()

	// Nodes: every declared function or method with a body.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[fn] = &FuncNode{
					Fn: fn, Decl: fd, Pkg: pkg,
					NetLocks:           make(map[types.Object]int),
					Acquires:           make(map[types.Object]bool),
					TransitiveAcquires: make(map[types.Object]bool),
				}
				g.ordered = append(g.ordered, g.nodes[fn])
			}
		}
	}
	sort.Slice(g.ordered, func(i, j int) bool {
		return g.ordered[i].Fn.Pos() < g.ordered[j].Fn.Pos()
	})

	g.resolveInterfaces(pkgs)
	for _, n := range g.ordered {
		g.summarizeBody(n)
	}
	g.fixpoint()
	g.deriveLockDiags()
	return g
}

// resolveInterfaces precomputes class-hierarchy dispatch targets, but only
// for interfaces declared in analyzed packages (chord.Transport,
// transport.Codec, ...). Stdlib interfaces (io.Writer et al) would fan
// out to every buffer in the module and drown the summaries in noise.
func (g *CallGraph) resolveInterfaces(pkgs []*Package) {
	g.ifaceImpls = make(map[*types.Func][]*FuncNode)
	var ifaces []*types.Named
	var concretes []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if iface, ok := named.Underlying().(*types.Interface); ok {
				if iface.NumMethods() > 0 {
					ifaces = append(ifaces, named)
				}
				continue
			}
			concretes = append(concretes, named)
		}
	}
	for _, iface := range ifaces {
		it := iface.Underlying().(*types.Interface)
		for _, impl := range concretes {
			recv := types.Type(impl)
			if !types.Implements(recv, it) {
				recv = types.NewPointer(impl)
				if !types.Implements(recv, it) {
					continue
				}
			}
			for i := 0; i < it.NumMethods(); i++ {
				m := it.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(recv, true, impl.Obj().Pkg(), m.Name())
				if concrete, ok := obj.(*types.Func); ok {
					if node := g.nodes[concrete]; node != nil {
						g.ifaceImpls[m] = append(g.ifaceImpls[m], node)
					}
				}
			}
		}
	}
}

// mutexClass resolves the lock-class object of a sync.(RW)Mutex method
// call: the struct-field object for x.mu.Lock() (unique per named type
// and field), the variable object for mu.Lock(). Returns nil and 0 for
// non-mutex calls; delta is +1 for Lock/RLock, -1 for Unlock/RUnlock.
func (g *CallGraph) mutexClass(info *types.Info, call *ast.CallExpr) (types.Object, int) {
	delta := mutexMethod(info, call)
	if delta == 0 {
		return nil, 0
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, 0
	}
	var obj types.Object
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		obj = info.Uses[recv]
	case *ast.SelectorExpr:
		obj = info.Uses[recv.Sel]
		if obj != nil {
			if _, known := g.lockName[obj]; !known {
				if tv, ok := info.Types[recv.X]; ok {
					g.lockName[obj] = namedTypeName(tv.Type) + "." + obj.Name()
				}
			}
		}
	}
	if obj == nil {
		return nil, 0
	}
	return obj, delta
}

// namedTypeName strips pointers and renders the named type's bare name.
func namedTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// resolveCallees expands one call expression to its possible targets:
// the statically resolved function, plus every module-declared
// implementation when the static target is an interface method.
func (g *CallGraph) resolveCallees(info *types.Info, call *ast.CallExpr) (*types.Func, []*FuncNode) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		return fn, g.ifaceImpls[fn]
	}
	if node := g.nodes[fn]; node != nil {
		return fn, []*FuncNode{node}
	}
	return fn, nil
}

// summarizeBody runs the single source-order walk that fills a node's
// direct facts: lock effects, guarded calls, call edges, stop markers and
// lock-order edges for acquisitions made while another class is held.
func (g *CallGraph) summarizeBody(n *FuncNode) {
	info := n.Pkg.Info
	held := make(map[types.Object]int)
	pinned := make(map[types.Object]bool)
	heldSnapshot := func() []types.Object {
		var out []types.Object
		for obj, count := range held {
			if count > 0 {
				out = append(out, obj)
			}
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Name() != out[j].Name() {
				return out[i].Name() < out[j].Name()
			}
			return out[i].Pos() < out[j].Pos()
		})
		return out
	}

	walkStack(n.Decl.Body, func(node ast.Node, stack []ast.Node) bool {
		inClosure := false
		for _, anc := range stack {
			if _, ok := anc.(*ast.FuncLit); ok {
				inClosure = true
				break
			}
		}
		switch node := node.(type) {
		case *ast.SelectStmt:
			for _, clause := range node.Body.List {
				if comm, ok := clause.(*ast.CommClause); ok && isReceiveComm(comm.Comm) {
					n.HasStop = true
				}
			}
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				n.HasStop = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[node.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					n.HasStop = true
				}
			}
		case *ast.Ident:
			if fn, ok := info.Uses[node].(*types.Func); ok {
				if callee := g.nodes[fn]; callee != nil {
					n.valueRefs = append(n.valueRefs, callee)
				}
			}
		case *ast.CallExpr:
			deferred := len(stack) > 0 && isDeferOf(stack[len(stack)-1], node)
			fn, targets := g.resolveCallees(info, node)
			if fn != nil && isStopMarkerFunc(fn) {
				n.HasStop = true
			}
			if obj, delta := g.mutexClass(info, node); obj != nil {
				if inClosure {
					return true // a closure's lock discipline is its own
				}
				n.NetLocks[obj] += delta
				if delta > 0 {
					n.Acquires[obj] = true
					if !deferred {
						for _, h := range heldSnapshot() {
							if h != obj {
								g.addEdge(h, obj, node.Pos(), n.Pkg)
							}
						}
						held[obj]++
					}
				} else if deferred {
					pinned[obj] = true
				} else if !pinned[obj] && held[obj] > 0 {
					held[obj]--
				}
				return true
			}
			if fn == nil {
				return true
			}
			switch {
			case inClosure:
				n.closureCalls = append(n.closureCalls, targets...)
			default:
				n.calls = append(n.calls, targets...)
				if !deferred {
					if snapshot := heldSnapshot(); len(snapshot) > 0 {
						n.guarded = append(n.guarded, guardedCall{pos: node.Pos(), fn: fn, targets: targets, held: snapshot})
					}
				}
			}
			if isBlockingSend(fn) && !inClosure {
				n.DirectSend = true
				if n.sendSink == nil {
					n.sendSink = fn
				}
			}
		}
		return true
	})
	for obj := range n.Acquires {
		n.TransitiveAcquires[obj] = true
	}
}

// isDeferOf reports whether parent is a DeferStmt whose call is exactly
// this expression (as opposed to a call nested in a deferred call's
// arguments).
func isDeferOf(parent ast.Node, call *ast.CallExpr) bool {
	d, ok := parent.(*ast.DeferStmt)
	return ok && d.Call == call
}

// isReceiveComm reports whether a select comm statement is a receive.
func isReceiveComm(comm ast.Stmt) bool {
	switch comm := comm.(type) {
	case *ast.ExprStmt:
		u, ok := comm.X.(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		if len(comm.Rhs) == 1 {
			u, ok := comm.Rhs[0].(*ast.UnaryExpr)
			return ok && u.Op == token.ARROW
		}
	}
	return false
}

// isStopMarkerFunc recognizes sync.WaitGroup.Done (the other markers are
// syntactic: selects, receives, channel ranges).
func isStopMarkerFunc(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "Done" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// fixpoint propagates TransitiveAcquires, ReachesSend and HasStopReach
// over the call edges until nothing changes. Recursion terminates because
// every fact only ever grows.
func (g *CallGraph) fixpoint() {
	for _, n := range g.ordered {
		n.ReachesSend = n.DirectSend
		n.HasStopReach = n.HasStop
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.ordered {
			for _, c := range n.calls {
				for obj := range c.TransitiveAcquires {
					if !n.TransitiveAcquires[obj] {
						n.TransitiveAcquires[obj] = true
						changed = true
					}
				}
				if !n.ReachesSend && c.ReachesSend {
					n.ReachesSend = true
					n.sendHop = c
					changed = true
				}
			}
			if !n.HasStopReach {
				for _, c := range append(n.calls, n.closureCalls...) {
					if c.HasStopReach && c.Pkg == n.Pkg {
						n.HasStopReach = true
						changed = true
						break
					}
				}
			}
		}
	}
}

// sendPath renders the representative call chain from n to its blocking
// send for diagnostics: "a -> b -> chord.Node.Send".
func (n *FuncNode) sendPath() string {
	var parts []string
	cur := n
	for depth := 0; cur != nil && depth < 32; depth++ {
		parts = append(parts, funcKey(cur.Fn))
		if cur.DirectSend {
			if cur.sendSink != nil {
				parts = append(parts, funcKey(cur.sendSink))
			}
			break
		}
		cur = cur.sendHop
	}
	return strings.Join(parts, " -> ")
}

func (g *CallGraph) addEdge(from, to types.Object, pos token.Pos, pkg *Package) {
	key := [2]types.Object{from, to}
	if from == to || g.edgeSet[key] {
		return
	}
	g.edgeSet[key] = true
	g.edges = append(g.edges, lockEdge{from: from, to: to, pos: pos, pkg: pkg})
}

// deriveLockDiags materializes lockorder's findings now that the
// fixpoint is known: transitive sends under held locks, summary-derived
// lock-order edges, and cycles over the class graph.
func (g *CallGraph) deriveLockDiags() {
	report := func(pkg *Package, pos token.Pos, format string, args ...any) {
		g.lockDiags[pkg] = append(g.lockDiags[pkg], finding{pos: pos, msg: fmt.Sprintf(format, args...)})
	}
	for _, n := range g.ordered {
		for _, gc := range n.guarded {
			heldNames := make([]string, len(gc.held))
			for i, obj := range gc.held {
				heldNames[i] = g.LockName(obj)
			}
			heldText := strings.Join(heldNames, ", ")
			if isBlockingSend(gc.fn) {
				report(n.Pkg, gc.pos, "%s blocks on the overlay/transport while mutex %s is held; release it before sending", gc.fn.Name(), heldText)
			} else {
				for _, target := range gc.targets {
					if target.ReachesSend {
						report(n.Pkg, gc.pos, "call to %s reaches a blocking send (%s) while mutex %s is held; release it before sending", gc.fn.Name(), target.sendPath(), heldText)
						break
					}
				}
			}
			for _, target := range gc.targets {
				for obj := range target.TransitiveAcquires {
					for _, h := range gc.held {
						g.addEdge(h, obj, gc.pos, n.Pkg)
					}
				}
			}
		}
	}

	// Cycle detection: an edge A->B closes a cycle iff B reaches A.
	adj := make(map[types.Object][]types.Object)
	for _, e := range g.edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	reaches := func(from, to types.Object) bool {
		seen := map[types.Object]bool{from: true}
		stack := []types.Object{from}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if cur == to {
				return true
			}
			for _, next := range adj[cur] {
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		return false
	}
	for _, e := range g.edges {
		if reaches(e.to, e.from) {
			report(e.pkg, e.pos, "acquiring %s while %s is held closes a lock-order cycle (%s is also acquired, possibly transitively, under %s)",
				g.LockName(e.to), g.LockName(e.from), g.LockName(e.from), g.LockName(e.to))
		}
	}
	for _, diags := range g.lockDiags {
		sort.Slice(diags, func(i, j int) bool { return diags[i].pos < diags[j].pos })
	}
}

// LockFindings returns the lockorder findings owned by pkg.
func (g *CallGraph) LockFindings(pkg *Package) []finding { return g.lockDiags[pkg] }
