package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"
)

// ManifestSchemaVersion identifies the manifest JSON layout. Readers reject
// files written under a different major layout so a stale baseline cannot
// be silently compared against a new schema.
const ManifestSchemaVersion = 1

// Manifest is one machine-readable benchmark/experiment run: the artifact
// committed as BENCH_baseline.json, uploaded from CI, and diffed by
// cmd/benchdiff. Entries are kept sorted by name so manifests are stable
// under `git diff`.
type Manifest struct {
	Schema    int     `json:"schema"`
	Label     string  `json:"label"`
	CreatedAt string  `json:"created_at,omitempty"` // RFC3339; informational only
	GoVersion string  `json:"go_version,omitempty"`
	GOOS      string  `json:"goos,omitempty"`
	GOARCH    string  `json:"goarch,omitempty"`
	Entries   []Entry `json:"entries"`
}

// ScaleInfo records the experiment scale a manifest entry ran at.
type ScaleInfo struct {
	Nodes   int   `json:"nodes,omitempty"`
	Queries int   `json:"queries,omitempty"`
	Tuples  int   `json:"tuples,omitempty"`
	Seed    int64 `json:"seed,omitempty"`
}

// Entry is one benchmark or experiment inside a manifest.
type Entry struct {
	// Name identifies the benchmark/experiment (e.g. "BenchmarkTable41" or
	// "F5.10"); entries are matched across manifests by this name.
	Name string `json:"name"`
	// Scale is the run's size and seed.
	Scale ScaleInfo `json:"scale"`
	// Iterations is b.N for benchmarks, 1 for one-shot experiment runs.
	Iterations int64 `json:"iterations,omitempty"`
	// WallNS is the measured wall time per iteration in nanoseconds. It is
	// always treated as a noisy metric by Compare.
	WallNS int64 `json:"wall_ns,omitempty"`
	// AllocsPerOp and BytesPerOp mirror -benchmem. Allocation counts are
	// deterministic for a fixed toolchain and seed, so Compare treats
	// AllocsPerOp as a hard metric; BytesPerOp is noisy (size classes).
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  int64 `json:"bytes_per_op,omitempty"`
	// Metrics holds the headline paper metrics (hops/tuple, TF, TS, Gini,
	// message counts) and anything else worth gating on.
	Metrics map[string]Metric `json:"metrics,omitempty"`
}

// Metric is one named measurement inside an entry.
type Metric struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
	// Deterministic marks metrics that are a pure function of code + seed
	// (message counts, hops, load totals in the simulator). Compare
	// hard-fails on these and only annotates on noisy ones.
	Deterministic bool `json:"deterministic,omitempty"`
	// LowerIsBetter is the regression direction; true for almost every
	// metric in this repo (hops, messages, loads, allocations). Metrics
	// where higher is better (e.g. a speedup ratio or achieved msgs/sec)
	// set it to false.
	LowerIsBetter bool `json:"lower_is_better"`
	// Threshold overrides the comparison's relative gate for this metric
	// alone (0 keeps the comparison-wide default). Tail latencies use it:
	// p999 across machines deserves a looser leash than ±15%. Additive
	// and omitted when zero, so the manifest schema stays at version 1.
	Threshold float64 `json:"threshold,omitempty"`
}

// Det builds a deterministic, lower-is-better metric.
func Det(v float64, unit string) Metric {
	return Metric{Value: v, Unit: unit, Deterministic: true, LowerIsBetter: true}
}

// Noisy builds a nondeterministic, lower-is-better metric.
func Noisy(v float64, unit string) Metric {
	return Metric{Value: v, Unit: unit, LowerIsBetter: true}
}

// Collector accumulates entries from many benchmarks in one process and
// writes them as a single manifest. Safe for concurrent use.
type Collector struct {
	mu      sync.Mutex
	entries map[string]Entry // by name; a re-run of a benchmark replaces its entry
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{entries: make(map[string]Entry)}
}

// Add records (or replaces) one entry. No-op on a nil collector.
func (c *Collector) Add(e Entry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[e.Name] = e
}

// Len returns the number of collected entries.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Manifest assembles the collected entries into a labelled manifest,
// sorted by entry name.
func (c *Collector) Manifest(label string) *Manifest {
	m := &Manifest{
		Schema:    ManifestSchemaVersion,
		Label:     label,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	c.mu.Lock()
	for _, e := range c.entries {
		m.Entries = append(m.Entries, e)
	}
	c.mu.Unlock()
	sort.Slice(m.Entries, func(i, j int) bool { return m.Entries[i].Name < m.Entries[j].Name })
	return m
}

// WriteFile marshals the manifest as indented JSON and writes it
// atomically (write-to-temp + rename) so a crashed run never leaves a
// half-written artifact behind.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal manifest: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	return nil
}

// ReadManifest loads and schema-checks a manifest file.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: parse manifest %s: %w", path, err)
	}
	if m.Schema != ManifestSchemaVersion {
		return nil, fmt.Errorf("obs: manifest %s has schema %d, this binary reads schema %d",
			path, m.Schema, ManifestSchemaVersion)
	}
	return &m, nil
}

// Entry returns the named entry and whether it exists.
func (m *Manifest) Entry(name string) (Entry, bool) {
	for _, e := range m.Entries {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}
