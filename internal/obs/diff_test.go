package obs

import (
	"strings"
	"testing"
)

// twoManifests builds a baseline and a copy with one deterministic metric
// regressed by `factor` (1.20 = +20%).
func twoManifests(factor float64) (*Manifest, *Manifest) {
	mk := func(msgs float64) *Manifest {
		c := NewCollector()
		c.Add(Entry{
			Name:        "BenchmarkTable41",
			WallNS:      100,
			AllocsPerOp: 1000,
			Metrics: map[string]Metric{
				"SAI-join-msgs": Det(msgs, "msgs"),
				"wallish":       Noisy(50, "ns"),
			},
		})
		return c.Manifest("t")
	}
	return mk(100), mk(100 * factor)
}

// The ISSUE acceptance criterion: an injected ≥15% regression on a
// deterministic metric must be detected and classified as a hard failure.
func TestCompareDetectsInjectedRegression(t *testing.T) {
	base, cur := twoManifests(1.20)
	res := Compare(base, cur, DiffOptions{Threshold: 0.15})
	if len(res.Regressions) != 1 {
		t.Fatalf("regressions = %d, want 1: %+v", len(res.Regressions), res.Regressions)
	}
	f := res.Regressions[0]
	if f.Entry != "BenchmarkTable41" || f.Metric != "SAI-join-msgs" {
		t.Fatalf("wrong finding: %+v", f)
	}
	if !f.Hard || !f.Regressed {
		t.Fatalf("deterministic regression must be hard: %+v", f)
	}
	if !res.HardFailure() {
		t.Fatal("HardFailure() must be true")
	}
	if !strings.Contains(f.String(), "REGRESSED(hard)") {
		t.Fatalf("rendering: %s", f)
	}
}

func TestCompareWithinThresholdIsClean(t *testing.T) {
	base, cur := twoManifests(1.10) // +10% < 15% gate
	res := Compare(base, cur, DiffOptions{Threshold: 0.15})
	if len(res.Regressions) != 0 || res.HardFailure() {
		t.Fatalf("within-threshold change must pass: %+v", res.Regressions)
	}
}

func TestCompareImprovementIsNotARegression(t *testing.T) {
	base, cur := twoManifests(0.70) // 30% fewer messages
	res := Compare(base, cur, DiffOptions{})
	if len(res.Regressions) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", res.Regressions)
	}
	if len(res.Improvements) != 1 {
		t.Fatalf("improvements = %d, want 1", len(res.Improvements))
	}
}

func TestCompareNoisyMetricIsSoft(t *testing.T) {
	base, cur := twoManifests(1.0)
	// Regress the noisy metric and the wall time by 3x.
	e := cur.Entries[0]
	m := e.Metrics["wallish"]
	m.Value *= 3
	e.Metrics["wallish"] = m
	e.WallNS *= 3
	cur.Entries[0] = e
	res := Compare(base, cur, DiffOptions{})
	if len(res.Regressions) != 2 {
		t.Fatalf("regressions = %d, want 2 (wall + wallish): %+v", len(res.Regressions), res.Regressions)
	}
	if res.HardFailure() {
		t.Fatal("noisy regressions must not be hard failures")
	}
}

func TestCompareAllocsAreHard(t *testing.T) {
	base, cur := twoManifests(1.0)
	cur.Entries[0].AllocsPerOp = 2000 // +100%
	res := Compare(base, cur, DiffOptions{})
	if !res.HardFailure() {
		t.Fatalf("alloc regression must hard-fail: %+v", res.Regressions)
	}
}

func TestCompareMissingEntriesAreNotes(t *testing.T) {
	base, cur := twoManifests(1.0)
	cur.Entries = append(cur.Entries, Entry{Name: "BenchmarkNew"})
	base.Entries = append(base.Entries, Entry{Name: "BenchmarkGone"})
	res := Compare(base, cur, DiffOptions{})
	if res.HardFailure() || len(res.Regressions) != 0 {
		t.Fatalf("membership drift must not gate: %+v", res.Regressions)
	}
	var missingNew, missingOld bool
	for _, n := range res.Notes {
		if n.Entry == "BenchmarkGone" {
			missingOld = true
		}
		if n.Entry == "BenchmarkNew" {
			missingNew = true
		}
	}
	if !missingOld || !missingNew {
		t.Fatalf("missing-entry notes absent: %+v", res.Notes)
	}
}

func TestCompareZeroBaselineHardMetric(t *testing.T) {
	base, cur := twoManifests(1.0)
	bm := base.Entries[0].Metrics["SAI-join-msgs"]
	bm.Value = 0
	base.Entries[0].Metrics["SAI-join-msgs"] = bm
	res := Compare(base, cur, DiffOptions{})
	// 0 -> 100 messages on a deterministic counter is a real regression.
	if !res.HardFailure() {
		t.Fatalf("zero-baseline hard metric appearing must hard-fail: %+v", res)
	}
}
