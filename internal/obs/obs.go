// Package obs is the repo's observability layer: a lightweight,
// allocation-conscious metrics registry (counters, gauges and fixed-bucket
// histograms) that the simulation substrate, the overlay and the engine
// hang their instrumentation on, plus the machine-readable run manifests
// (manifest.go) and the manifest comparison logic behind cmd/benchdiff
// (diff.go).
//
// The central design decision is that a disabled layer must be zero-cost:
// every handle type (*Counter, *Gauge, *Histogram, *CounterVec) is a no-op
// on a nil receiver, and a nil *Registry hands out nil handles. Hot paths
// therefore pay exactly one predictable nil-check branch per event when
// observability is off, allocate nothing, and — because recording never
// feeds back into behaviour — same-seed simulation runs stay bit-identical
// whether the layer is enabled or not.
//
// Metric names are dotted paths ("traffic.msgs", "sim.clock.ticks").
// Dimensions (per message kind, per algorithm, per node) are modelled by
// CounterVec, which interns one *Counter per label value so steady-state
// recording is a map read plus an atomic add, with no per-event formatting.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing (or explicitly reset) int64 metric.
// The zero Counter is ready to use; a nil *Counter discards all updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset sets the counter back to zero. No-op on a nil receiver.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.v.Store(0)
}

// Gauge is a settable int64 metric that also tracks its high-water mark
// (useful for queue depths). The zero Gauge is ready to use; a nil *Gauge
// discards all updates.
type Gauge struct {
	v   atomic.Int64
	hwm atomic.Int64
}

// Set stores v and raises the high-water mark if needed. No-op on nil.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.raise(v)
}

// Add moves the gauge by delta (negative deltas allowed) and raises the
// high-water mark if needed. No-op on nil.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.raise(g.v.Add(delta))
}

func (g *Gauge) raise(v int64) {
	for {
		cur := g.hwm.Load()
		if v <= cur || g.hwm.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge value; zero on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HighWater returns the largest value the gauge has held since creation or
// the last Reset; zero on a nil receiver.
func (g *Gauge) HighWater() int64 {
	if g == nil {
		return 0
	}
	return g.hwm.Load()
}

// Reset zeroes the value and the high-water mark. No-op on nil.
func (g *Gauge) Reset() {
	if g == nil {
		return
	}
	g.v.Store(0)
	g.hwm.Store(0)
}

// Histogram counts int64 observations into fixed buckets chosen at
// creation. Bounds are upper-inclusive ("≤ bound"); one implicit overflow
// bucket catches everything above the last bound. A nil *Histogram
// discards all observations.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	sum    atomic.Int64
	n      atomic.Int64
}

// newHistogram builds a histogram over ascending bounds.
func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations; zero on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observed values; zero on a nil receiver.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the mean observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Buckets returns the bucket bounds and their counts (the final count is
// the overflow bucket, reported with bound math.MaxInt64).
func (h *Histogram) Buckets() (bounds []int64, counts []int64) {
	if h == nil {
		return nil, nil
	}
	bounds = make([]int64, len(h.bounds)+1)
	copy(bounds, h.bounds)
	bounds[len(bounds)-1] = math.MaxInt64
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) of the
// observations: the smallest bucket bound whose cumulative count reaches
// q·n. Returns 0 with no observations; the overflow bucket reports
// math.MaxInt64.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.MaxInt64
		}
	}
	return math.MaxInt64
}

// Reset zeroes all buckets. No-op on nil.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
	h.n.Store(0)
}

// CounterVec is a family of counters sharing one name and distinguished by
// one label value (a message kind, an algorithm, a node key). Counters are
// interned on first use; the steady-state path is a read-locked map lookup
// plus an atomic add. A nil *CounterVec discards all updates.
type CounterVec struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// With returns the counter for the given label value, creating it on first
// use. Returns nil (the no-op counter) on a nil receiver.
func (v *CounterVec) With(label string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c, ok := v.m[label]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.m[label]; ok {
		return c
	}
	c = &Counter{}
	v.m[label] = c
	return c
}

// Add increments the counter for label by n. No-op on a nil receiver.
func (v *CounterVec) Add(label string, n int64) { v.With(label).Add(n) }

// Value returns the count for label without creating it.
func (v *CounterVec) Value(label string) int64 {
	if v == nil {
		return 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.m[label].Value()
}

// Total sums the counts across all labels.
func (v *CounterVec) Total() int64 {
	if v == nil {
		return 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	var n int64
	for _, c := range v.m {
		n += c.Value()
	}
	return n
}

// Snapshot copies the per-label counts.
func (v *CounterVec) Snapshot() map[string]int64 {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]int64, len(v.m))
	for label, c := range v.m {
		out[label] = c.Value()
	}
	return out
}

// Reset drops every interned counter. Handles previously returned by With
// keep working but are no longer reachable from the vec — callers that
// cache counters across Reset should re-fetch them.
func (v *CounterVec) Reset() {
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.m = make(map[string]*Counter)
}

// Registry is a namespace of metrics. A nil *Registry is the disabled
// layer: every constructor returns a nil handle and every handle method is
// a no-op. Construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	vecs     map[string]*CounterVec
}

// NewRegistry creates an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		vecs:     make(map[string]*CounterVec),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls reuse the existing buckets). Returns
// nil on a nil registry.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterVec returns the named counter family, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) CounterVec(name string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.vecs[name]
	if !ok {
		v = &CounterVec{m: make(map[string]*Counter)}
		r.vecs[name] = v
	}
	return v
}

// Snapshot renders every metric as a flat, sorted name→value map: counters
// as their count, gauges as value plus a ".hwm" entry, histograms as
// ".count"/".sum"/".p50"/".p99"/".p999" entries, and counter families as
// one entry per label ("name{kind}") plus a ".total". The flattening is
// what manifests and tests consume.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64)
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = float64(g.Value())
		out[name+".hwm"] = float64(g.HighWater())
	}
	for name, h := range r.hists {
		out[name+".count"] = float64(h.Count())
		out[name+".sum"] = float64(h.Sum())
		out[name+".p50"] = quantileOrZero(h, 0.50)
		out[name+".p99"] = quantileOrZero(h, 0.99)
		out[name+".p999"] = quantileOrZero(h, 0.999)
	}
	for name, v := range r.vecs {
		for label, n := range v.Snapshot() {
			out[fmt.Sprintf("%s{%s}", name, label)] = float64(n)
		}
		out[name+".total"] = float64(v.Total())
	}
	return out
}

// LatencyBounds returns a 1-2-5 log ladder from 10µs to 10s, in
// nanoseconds — the bucket table load harnesses spread into latency
// histograms. Quantiles resolve to a bucket upper bound, so at this
// spacing p50/p99/p999 land within one 1-2-5 step of truth across six
// decades; anything above 10s reports the overflow sentinel.
func LatencyBounds() []int64 {
	const top = int64(10_000_000_000)
	bounds := make([]int64, 0, 19)
	for decade := int64(10_000); decade <= top; decade *= 10 {
		for _, m := range []int64{1, 2, 5} {
			if b := decade * m; b <= top {
				bounds = append(bounds, b)
			}
		}
	}
	return bounds
}

// quantileOrZero clamps the overflow sentinel so snapshots stay finite.
func quantileOrZero(h *Histogram, q float64) float64 {
	v := h.Quantile(q)
	if v == math.MaxInt64 {
		return -1 // observation fell in the overflow bucket
	}
	return float64(v)
}

// Dump renders the snapshot as sorted "name value" lines for logs.
func (r *Registry) Dump() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s %g\n", n, snap[n])
	}
	return b.String()
}

// Reset zeroes every registered metric (keeping registrations). No-op on
// a nil registry.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.Reset()
	}
	for _, g := range r.gauges {
		g.Reset()
	}
	for _, h := range r.hists {
		h.Reset()
	}
	for _, v := range r.vecs {
		v.Reset()
	}
}
